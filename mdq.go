// Package mdq is a query processor for multi-domain queries over web
// services, reproducing Braga, Ceri, Daniel and Martinenghi,
// "Optimization of Multi-Domain Queries on the Web" (VLDB 2008).
//
// A multi-domain query combines knowledge from several domain
// services — "database conferences in warm cities reachable with a
// cheap flight and a luxury hotel" — expressed as a conjunctive query
// in datalog-like syntax over registered services. The library
//
//   - models exact and search services with access patterns, erspi,
//     response times, chunked results and decay;
//   - compiles queries into DAG-shaped plans with pipe and parallel
//     joins (nested loop / merge scan, rank-order preserving);
//   - optimizes with a three-phase branch and bound (access patterns,
//     plan topology, fetch factors) under pluggable cost metrics
//     (execution time, request–response, sum, bottleneck,
//     time-to-screen); the search fans out over a worker pool sharing
//     one incumbent bound (System.Parallelism: 0 = one worker per
//     CPU, 1 = sequential) and can memoize whole results in an LRU
//     plan cache keyed by the canonical query signature
//     (System.PlanCache, see NewPlanCache) — results are
//     deterministic at every parallelism level;
//   - executes plans concurrently with three levels of logical
//     caching, or deterministically on a virtual-time simulator;
//   - prices constants by per-attribute value distributions
//     (equi-depth histograms + most-common-value lists, profiled from
//     table relations or learned online from traffic), so each
//     binding of a template is re-costed individually
//     (System.UniformSelectivity reverts to the paper's uniform
//     model);
//   - wraps services over HTTP in both directions.
//
// The quickstart in examples/quickstart shows the whole lifecycle in
// about fifty lines.
package mdq

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"mdq/internal/abind"
	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/dist"
	"mdq/internal/exec"
	"mdq/internal/fetch"
	"mdq/internal/httpwrap"
	"mdq/internal/opt"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/serve"
	"mdq/internal/service"
	"mdq/internal/sim"
	"mdq/internal/tabsvc"
)

// Re-exported building blocks. The aliases expose the stable public
// surface of the internal packages.
type (
	// Value is a constant flowing through queries and results.
	Value = schema.Value
	// Stats carries profiled service characteristics.
	Stats = schema.Stats
	// Signature describes a service interface.
	Signature = schema.Signature
	// Attribute is one argument of a signature.
	Attribute = schema.Attribute
	// Domain is an abstract domain shared across services.
	Domain = schema.Domain
	// AccessPattern marks input/output argument positions.
	AccessPattern = schema.AccessPattern
	// Query is a parsed conjunctive query.
	Query = cq.Query
	// Plan is an executable query plan.
	Plan = plan.Plan
	// Topology is a partial order over query atoms.
	Topology = plan.Topology
	// Service is an invokable web service.
	Service = service.Service
	// Request is one service request.
	Request = service.Request
	// Response is one service response.
	Response = service.Response
	// Latency models simulated response times of table services.
	Latency = tabsvc.Latency
	// Metric is a plan cost metric.
	Metric = cost.Metric
	// CacheMode selects the logical caching level.
	CacheMode = card.CacheMode
	// ExecResult is the outcome of a concurrent execution.
	ExecResult = exec.Result
	// SimResult is the outcome of a simulated execution.
	SimResult = sim.Result
	// OptimizeResult carries the best plan and search statistics.
	OptimizeResult = opt.Result
	// Distribution is a per-attribute value distribution (equi-depth
	// histogram + most-common-value list + distinct count) consulted
	// by the value-sensitive selectivity estimator.
	Distribution = schema.Distribution
	// MCV is one most-common-value entry of a Distribution.
	MCV = schema.MCV
	// HistogramBucket is one equi-depth bucket of a Distribution.
	HistogramBucket = schema.Bucket
)

// Value constructors and pattern helpers.
var (
	// String builds a string value.
	String = schema.S
	// Number builds a numeric value.
	Number = schema.N
	// Date builds a date value.
	Date = schema.D
	// Pattern parses an access pattern such as "ioo".
	Pattern = schema.MustPattern
)

// Caching levels (§5.1 of the paper).
const (
	NoCache      = card.NoCache
	OneCallCache = card.OneCall
	OptimalCache = card.Optimal
)

// Value kinds for Domain definitions.
const (
	StringKind = schema.StringValue
	NumberKind = schema.NumberValue
	DateKind   = schema.DateValue
)

// Service kinds (§2.1: exact services return unranked tuples, search
// services return tuples in ranking order).
const (
	ExactService  = schema.Exact
	SearchService = schema.Search
)

// Metrics (§2.3 of the paper).
var (
	ExecTimeMetric        = cost.Metric(cost.ExecTime{})
	RequestResponseMetric = cost.Metric(cost.RequestResponse{})
	SumCostMetric         = cost.Metric(cost.SumCost{})
	BottleneckMetric      = cost.Metric(cost.Bottleneck{})
	TimeToScreenMetric    = cost.Metric(cost.TimeToScreen{})
)

// MetricByName resolves "etm", "rr", "sum", "bottleneck", "tts" and
// their long forms.
var MetricByName = cost.ByName

// System bundles a service registry with optimizer and executor
// defaults; it is the package's main entry point.
type System struct {
	registry *service.Registry
	// K is the number of answers optimized and executed for
	// (default 10); 0 means "all answers".
	K int
	// Metric is the optimization objective (default execution time).
	Metric Metric
	// Cache is the logical caching level (default one-call, the
	// paper's recommended trade-off).
	Cache CacheMode
	// Parallelism is the number of optimizer search workers: 0 (the
	// default) uses one worker per CPU, 1 forces the sequential
	// search, n > 1 uses n workers. The chosen plan is identical at
	// every level.
	Parallelism int
	// PlanCache, when non-nil, memoizes optimization results across
	// queries (see NewPlanCache and NewPlanCacheWith). Entries are
	// keyed by the canonical query signature, the optimizer settings
	// and the registry version, so registering a service or changing
	// a join method invalidates them automatically; in-place
	// statistics refreshes (observed services) invalidate or
	// revalidate entries through per-service stats epochs. Bound
	// template queries optimized via OptimizeBound additionally share
	// one template-level entry per template, so one search serves
	// every binding.
	PlanCache *PlanCache
	// Feedback, when non-nil, closes the adaptive serving loop: after
	// every Execute the observed per-service traffic is folded back
	// into the profiles of observed services (see ObserveAll) under
	// the policy's thresholds, bumping stats epochs so cached plans
	// revalidate against real traffic instead of stale registration
	// estimates.
	Feedback *FeedbackPolicy
	// RevalidateRatio bounds the cost divergence tolerated when a
	// cached template plan is re-costed for new bindings or fresh
	// statistics; beyond it a full search re-runs. 0 means the
	// optimizer default (4×).
	RevalidateRatio float64
	// UniformSelectivity disables the value-sensitive selectivity
	// layer: profiled per-attribute distributions are ignored and
	// every constant is priced under the paper's uniform model
	// (every value equally likely). Useful for A/B-ing the effect of
	// histograms; cache keys distinguish the two modes.
	UniformSelectivity bool
	// Workers, when non-empty, are the remote optimization workers
	// DistributedOptimize shards the search across (see NewDistWorker,
	// DistLocalTransport and DistHTTPTransport). Statistics-epoch
	// bumps reach their plan caches through StartGossip.
	Workers []DistTransport
	// Budget, when non-nil, bounds the next query end to end: the
	// optimizer checks its deadline during the search, and Execute
	// carries it into the runner, where every logical service call is
	// charged against the call cap. A tripped budget aborts with an
	// error matching ErrBudgetExceeded. Budgets are single-query:
	// build a fresh one per query (NewBudget) rather than sharing the
	// System field across concurrent callers.
	Budget *Budget
}

// NewSystem creates an empty system with the paper's default
// settings: execution-time metric, one-call cache, k=10.
func NewSystem() *System {
	return &System{
		registry: service.NewRegistry(),
		K:        10,
		Metric:   cost.ExecTime{},
		Cache:    card.OneCall,
	}
}

// Registry exposes the underlying registry for advanced use.
func (s *System) Registry() *service.Registry { return s.registry }

// Register adds a service implementation (§5 service registration).
func (s *System) Register(svc Service) error { return s.registry.Register(svc) }

// RegisterTable registers an in-memory table service: rows must be
// full-width tuples in ranking order for search services.
func (s *System) RegisterTable(sig *Signature, rows [][]Value, lat Latency) error {
	t, err := tabsvc.New(sig, rows, lat)
	if err != nil {
		return err
	}
	return s.registry.Register(t)
}

// SetJoinMethod fixes the parallel join strategy for a service pair
// (registration-time knowledge, §3.3): "NL" or "MS".
func (s *System) SetJoinMethod(a, b, method string) error {
	switch method {
	case "NL", "nl":
		s.registry.SetJoinMethod(a, b, plan.NestedLoop)
	case "MS", "ms":
		s.registry.SetJoinMethod(a, b, plan.MergeScan)
	default:
		return fmt.Errorf("mdq: unknown join method %q (want NL or MS)", method)
	}
	return nil
}

// Parse reads a conjunctive query in datalog-like syntax and
// resolves it against the registered services.
func (s *System) Parse(query string) (*Query, error) {
	q, err := cq.Parse(query)
	if err != nil {
		return nil, err
	}
	sch, err := s.registry.Schema()
	if err != nil {
		return nil, err
	}
	if err := q.Resolve(sch); err != nil {
		return nil, err
	}
	return q, nil
}

// optimizer assembles the optimizer for this system's settings and
// wires the plan cache into the registry's stats-epoch feed.
func (s *System) optimizer() *opt.Optimizer {
	p := s.Parallelism
	if p == 0 {
		p = opt.AutoParallelism
	}
	if s.PlanCache != nil {
		// Idempotent: re-subscribing the same cache replaces its
		// callback, so stats refreshes invalidate exactly the entries
		// touching the refreshed service.
		s.registry.SubscribeEpochs(s.PlanCache, s.PlanCache.InvalidateService)
	}
	return &opt.Optimizer{
		Metric:          s.Metric,
		Estimator:       card.Config{Mode: s.Cache, NoValueStats: s.UniformSelectivity},
		K:               s.K,
		ChooseMethod:    s.registry.MethodChooser(),
		Parallelism:     p,
		Cache:           s.PlanCache,
		CacheSalt:       s.registry.CacheSalt(),
		Epochs:          s.registry,
		RevalidateRatio: s.RevalidateRatio,
		Budget:          s.Budget,
	}
}

// Optimize runs the three-phase branch and bound and returns the
// cheapest executable plan together with search statistics. The
// search parallelizes over System.Parallelism workers and consults
// System.PlanCache when one is attached.
func (s *System) Optimize(q *Query) (*OptimizeResult, error) {
	return s.optimizer().Optimize(q)
}

// OptimizeBound binds a template and optimizes the bound query
// through the template level of the plan cache: all bindings of one
// template share a single branch-and-bound search, and each binding
// only re-runs the cheap cost phase (selectivity and fetch-vector
// re-estimation) on the cached plan skeleton. Without a PlanCache it
// degrades to Bind + Optimize. The bound, resolved query is returned
// alongside the result so the caller can execute the plan.
func (s *System) OptimizeBound(tpl *Template, values map[string]Value) (*Query, *OptimizeResult, error) {
	q, err := tpl.Bind(values)
	if err != nil {
		return nil, nil, err
	}
	if err := s.ResolveQuery(q); err != nil {
		return nil, nil, err
	}
	res, err := s.optimizer().OptimizeTemplate(q)
	if err != nil {
		return nil, nil, err
	}
	return q, res, nil
}

// AnswerBound optimizes a template binding through the template
// cache and executes the plan: the serving-loop analogue of Answer.
func (s *System) AnswerBound(ctx context.Context, tpl *Template, values map[string]Value) (*ExecResult, *OptimizeResult, error) {
	_, ores, err := s.OptimizeBound(tpl, values)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.Execute(ctx, ores.Best)
	if err != nil {
		return nil, nil, err
	}
	return res, ores, nil
}

// Execute runs a plan against the registered services with the
// system's caching level, stopping after K answers (0 drains). With
// System.Feedback set, observed services absorb the run's traffic
// into their profiles afterwards.
func (s *System) Execute(ctx context.Context, p *Plan) (*ExecResult, error) {
	if s.Budget != nil && serve.FromContext(ctx) == nil {
		ctx = serve.WithBudget(ctx, s.Budget)
	}
	r := &exec.Runner{Registry: s.registry, Cache: s.Cache, K: s.K, Feedback: s.Feedback}
	return r.Run(ctx, p)
}

// Answer optimizes and executes in one step: the paper's end-to-end
// pipeline from datalog text to ranked answers.
func (s *System) Answer(ctx context.Context, query string) (*ExecResult, *OptimizeResult, error) {
	q, err := s.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	ores, err := s.Optimize(q)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.Execute(ctx, ores.Best)
	if err != nil {
		return nil, nil, err
	}
	return res, ores, nil
}

// PlanCache is an LRU cache of optimization results; attach one to
// System.PlanCache so repeated queries skip the branch-and-bound
// search entirely. Safe for concurrent use.
type PlanCache = opt.PlanCache

// PlanCacheStats reports plan-cache hit/miss/revalidation/eviction
// counters and occupancy.
type PlanCacheStats = opt.CacheStats

// PlanCachePolicy configures capacity, byte-budget and TTL eviction
// for long-running servers.
type PlanCachePolicy = opt.Policy

// PlanCacheEntry describes one cached entry (key kind, epochs,
// staleness, hit counts) for introspection.
type PlanCacheEntry = opt.EntryInfo

// FeedbackPolicy gates the runtime feedback loop from execution
// traffic back into service profiles (see System.Feedback).
type FeedbackPolicy = service.FeedbackPolicy

// Observed is a service wrapper collecting live-traffic statistics
// (see System.ObserveAll).
type Observed = service.Observed

// Budget caps one query's wall-clock time and logical service calls;
// attach it to System.Budget (and, for execution, it rides the
// context automatically). Once either limit trips, every later check
// and charge fails with the same error. Safe for concurrent use
// within the one query it budgets.
type Budget = serve.Budget

// BudgetError reports which budget dimension tripped ("deadline" or
// "calls") and at what limit; it unwraps to ErrBudgetExceeded.
type BudgetError = serve.BudgetError

// ErrBudgetExceeded is the sentinel every budget violation matches
// via errors.Is, whether it tripped in the optimizer's search, the
// executor's service calls, or on a remote worker.
var ErrBudgetExceeded = serve.ErrBudgetExceeded

// NewBudget builds a per-query budget: d caps wall-clock time
// (0 = no deadline), maxCalls caps logical service calls
// (0 = uncapped; calls are still counted for accounting).
func NewBudget(d time.Duration, maxCalls int64) *Budget {
	return serve.NewBudget(d, maxCalls)
}

// NewPlanCache builds a plan cache holding up to capacity results
// (<= 0 means 128).
func NewPlanCache(capacity int) *PlanCache { return opt.NewPlanCache(capacity) }

// NewPlanCacheWith builds a plan cache with explicit eviction
// policies (entry capacity, byte budget, TTL).
func NewPlanCacheWith(p PlanCachePolicy) *PlanCache { return opt.NewPlanCacheWith(p) }

// ObserveAll wraps every registered service in a statistics observer
// wired to the registry's stats epochs, returning how many were
// wrapped. Combined with System.Feedback this turns execution
// traffic into profile refreshes and cache revalidation.
func (s *System) ObserveAll() int { return s.registry.ObserveAll() }

// RefreshStats folds all collected observations into the service
// profiles immediately (ignoring the feedback policy thresholds) and
// returns how many profiles changed — the manual re-profiling hook.
func (s *System) RefreshStats() int { return s.registry.RefreshObserved() }

// Epochs snapshots the statistics epoch of every service that has
// been refreshed at least once.
func (s *System) Epochs() map[string]uint64 { return s.registry.Epochs() }

// ServiceEpoch returns the statistics epoch of one service (0 until
// its first refresh).
func (s *System) ServiceEpoch(name string) uint64 { return s.registry.Epoch(name) }

// ServiceStats returns the current profiled statistics of a
// registered service.
func (s *System) ServiceStats(name string) (Stats, bool) {
	svc, ok := s.registry.Lookup(name)
	if !ok {
		return Stats{}, false
	}
	return svc.Signature().Statistics(), true
}

// ProfileValues computes exact per-attribute value distributions for
// a registered table service from its backing relation and installs
// them on the signature, so subsequent optimizations price constants
// by their actual frequency instead of uniformly. maxMCVs and
// maxBuckets bound the distribution size (≤ 0 means 8 each); the
// returned count is the number of attributes profiled. Non-table
// services learn distributions online instead, through ObserveAll +
// Feedback.
//
// The service's statistics epoch is bumped afterwards, so attached
// plan caches invalidate or revalidate entries priced under the old
// distributions — the same path an Observed refresh takes. Like
// every in-place statistics write, the install itself is not
// synchronized with concurrently running optimizations (see the
// copy-on-write note in ROADMAP); prefer profiling at registration
// time.
func (s *System) ProfileValues(name string, maxMCVs, maxBuckets int) (int, error) {
	svc, ok := s.registry.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("mdq: service %s not registered", name)
	}
	t, ok := svc.(*tabsvc.Table)
	if !ok {
		return 0, fmt.Errorf("mdq: service %s is not a table service (use ObserveAll + Feedback to learn value distributions online)", name)
	}
	n := t.ProfileValues(maxMCVs, maxBuckets)
	s.registry.BumpEpoch(name)
	return n, nil
}

// ServiceDistributions returns the per-attribute value distributions
// currently profiled for a service (nil entries for attributes
// without statistics), or ok=false for unknown services.
func (s *System) ServiceDistributions(name string) ([]*Distribution, bool) {
	svc, ok := s.registry.Lookup(name)
	if !ok {
		return nil, false
	}
	return svc.Signature().Statistics().Dists, true
}

// EstimateUniformCost is EstimateCost with the value-sensitive
// selectivity layer disabled: the cost the plan would be assigned
// under the paper's uniform model. Comparing it with EstimateCost
// shows how much the profiled histograms move a binding's estimate.
func (s *System) EstimateUniformCost(p *Plan) (planCost, tout float64) {
	tout = card.Config{Mode: s.Cache, NoValueStats: true}.Annotate(p)
	return s.Metric.Cost(p), tout
}

// Cache is a logical result cache (§5.1) that can be shared across
// executions to continue a query for more answers.
type Cache = exec.Cache

// NewCache builds a logical cache of the given level.
func NewCache(mode CacheMode) Cache { return exec.NewCache(mode) }

// ExecuteShared runs a plan with an externally owned cache, so
// subsequent continuations can reuse every call already made.
func (s *System) ExecuteShared(ctx context.Context, p *Plan, cache Cache) (*ExecResult, error) {
	r := &exec.Runner{Registry: s.registry, Cache: s.Cache, K: s.K, SharedCache: cache, Feedback: s.Feedback}
	return r.Run(ctx, p)
}

// Continue produces more answers for a previously executed plan
// (§2.2: "a user can either be satisfied with the first k answers,
// or ask for more results of the same query"): each chunked node's
// fetch factor grows by extraFetches and the plan re-runs against
// the same cache, so only the new fetches reach the services.
func (s *System) Continue(ctx context.Context, p *Plan, cache Cache, extraFetches int) (*ExecResult, error) {
	if extraFetches < 1 {
		extraFetches = 1
	}
	for _, n := range p.ChunkedNodes() {
		n.Fetches += extraFetches
	}
	return s.ExecuteShared(ctx, p, cache)
}

// Simulate executes the plan on the deterministic virtual-time
// simulator and reports call counts and the makespan.
func (s *System) Simulate(ctx context.Context, p *Plan) (*SimResult, error) {
	m := &sim.Simulator{Registry: s.registry, Cache: s.Cache, K: s.K}
	return m.Run(ctx, p)
}

// Profile samples a registered table service and returns estimated
// statistics (§5: registration gives estimates by sampling).
func (s *System) Profile(ctx context.Context, name string, samples int) (Stats, error) {
	svc, ok := s.registry.Lookup(name)
	if !ok {
		return Stats{}, fmt.Errorf("mdq: service %s not registered", name)
	}
	t, ok := svc.(*tabsvc.Table)
	if !ok {
		return Stats{}, fmt.Errorf("mdq: service %s is not profilable (no input sampler)", name)
	}
	p := &service.Profiler{Samples: samples, Seed: 1}
	return p.Profile(ctx, t, 0, t.Sampler())
}

// HTTPHandler exposes every registered service over HTTP (JSON
// protocol with chunk paging); mount it on any server. With
// sleepScale > 0 the server really sleeps the scaled simulated
// latency per request.
func (s *System) HTTPHandler(sleepScale float64) http.Handler {
	mux, _ := httpwrap.ServeRegistry(s.registry, httpwrap.HandlerOptions{SleepScale: sleepScale})
	return mux
}

// ConnectHTTP registers every service served by a remote mdq
// endpoint (see HTTPHandler) into this system.
func ConnectHTTP(ctx context.Context, baseURL string, hc *http.Client) (*System, error) {
	reg, err := httpwrap.DialRegistry(ctx, baseURL, hc)
	if err != nil {
		return nil, err
	}
	return &System{registry: reg, K: 10, Metric: cost.ExecTime{}, Cache: card.OneCall}, nil
}

// BuildPlan constructs a plan for an explicit topology and pattern
// assignment — the manual route used to reproduce the paper's named
// plans (S, P, O).
func (s *System) BuildPlan(q *Query, asn []AccessPattern, topo *Topology) (*Plan, error) {
	p, err := plan.Build(q, abind.Assignment(asn), topo, plan.Options{ChooseMethod: s.registry.MethodChooser()})
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// AssignFetches runs phase 3 alone on a plan: fetch factors for the
// system's K under its metric.
func (s *System) AssignFetches(p *Plan) (feasible bool, vector []int, planCost float64) {
	fa := &fetch.Assigner{Estimator: card.Config{Mode: s.Cache, NoValueStats: s.UniformSelectivity}, Metric: s.Metric, K: s.K}
	fr := fa.Assign(p)
	return fr.Feasible, fr.Vector, fr.Cost
}

// EstimateCost annotates the plan with the system's estimator and
// returns its cost under the system metric and the expected result
// size.
func (s *System) EstimateCost(p *Plan) (planCost, tout float64) {
	tout = card.Config{Mode: s.Cache, NoValueStats: s.UniformSelectivity}.Annotate(p)
	return s.Metric.Cost(p), tout
}

// Template is a parametrized query: $name placeholders bound per
// execution while the optimized plan structure is shared (§2.2).
type Template = cq.Template

// ParseTemplate parses a query with $param placeholders; bind it
// with Template.Bind and resolve the result with ResolveQuery.
func ParseTemplate(text string) (*Template, error) { return cq.ParseTemplate(text) }

// ResolveQuery resolves a query built outside Parse (e.g. from a
// template binding) against the registered services.
func (s *System) ResolveQuery(q *Query) error {
	sch, err := s.registry.Schema()
	if err != nil {
		return err
	}
	return q.Resolve(sch)
}

// ExpandQuery applies the §7 off-query expansion: when the query
// admits no permissible access-pattern sequence, services from the
// registry are added as extra atoms to seed the unbound inputs. The
// expanded query computes a subset of the original answers. The
// returned count is the number of atoms added (0 when the query was
// already executable).
func (s *System) ExpandQuery(q *Query, maxExtra int) (*Query, int, error) {
	sch, err := s.registry.Schema()
	if err != nil {
		return nil, 0, err
	}
	return opt.Expand(q, sch, maxExtra)
}

// Distributed optimization & execution surface: a coordinator (this
// system) shards the branch-and-bound across workers, shares the
// incumbent bound over the wire, gossips statistics epochs to remote
// plan caches, and executes winning plans as worker-side fragments
// with tuple streaming. See internal/dist for the protocol.
type (
	// DistWorker executes shard searches against a local registry and
	// plan cache — the server side of distributed optimization.
	DistWorker = dist.Worker
	// DistCoordinator fans searches out over workers and merges the
	// per-shard winners deterministically.
	DistCoordinator = dist.Coordinator
	// DistTransport is a coordinator's handle on one worker.
	DistTransport = dist.Transport
	// DistLocalTransport wires an in-process worker (tests, single
	// binary deployments).
	DistLocalTransport = dist.LocalTransport
	// DistHTTPTransport speaks the worker protocol to a remote
	// mdqworker over HTTP.
	DistHTTPTransport = dist.HTTPTransport
	// DistMembership is the health-checked view over a worker set:
	// probes plus RPC feedback walk each worker through
	// up/suspect/down, and dispatch skips down workers.
	DistMembership = dist.Membership
	// DistRetryPolicy bounds how transiently failed dispatches are
	// re-attempted (backoff, failover to another worker).
	DistRetryPolicy = dist.RetryPolicy
	// DistFaultTransport wraps any transport with deterministic fault
	// injection — the sanctioned seam for testing failover paths.
	DistFaultTransport = dist.FaultTransport
	// EpochBump is one gossiped (service, epoch) invalidation.
	EpochBump = service.EpochBump
	// PlanCacheWireEntry is a serialized template cache entry — the
	// unit of cache persistence (PlanCache.Save/Load) and worker
	// warmup.
	PlanCacheWireEntry = opt.TemplateWireEntry
)

// NewDistWorker builds an in-process optimization worker over this
// system's registry with a fresh plan cache of the given capacity
// (<= 0 means 128) — combine with DistLocalTransport to form an
// in-process cluster, e.g. for tests or to isolate cache pressure per
// shard inside one binary.
func (s *System) NewDistWorker(cacheCapacity int) *DistWorker {
	return dist.NewWorker(s.registry, opt.NewPlanCache(cacheCapacity))
}

// Coordinator assembles a distributed-optimization coordinator over
// System.Workers with this system's current settings. Most callers
// use DistributedOptimize directly; the coordinator is exposed for
// template-level distributed serving, warmup and gossip control.
func (s *System) Coordinator() *DistCoordinator {
	return &dist.Coordinator{
		Registry:        s.registry,
		Workers:         s.Workers,
		Metric:          s.Metric,
		Mode:            s.Cache,
		K:               s.K,
		RevalidateRatio: s.RevalidateRatio,
	}
}

// DistributedOptimize shards the three-phase search across
// System.Workers — each worker searches one congruence-class slice of
// the assignment space against its own registry and plan cache, with
// the incumbent bound min-merged between them while they run — and
// merges the winners deterministically: the returned plan is
// identical to Optimize's, provided the workers' service statistics
// agree with this system's. The query must be resolved (Parse does
// that).
func (s *System) DistributedOptimize(ctx context.Context, q *Query) (*OptimizeResult, error) {
	if len(s.Workers) == 0 {
		return nil, fmt.Errorf("mdq: no distributed workers attached (set System.Workers)")
	}
	return s.Coordinator().Optimize(ctx, q)
}

// DistributedOptimizeBound binds a template and optimizes it through
// the workers' template-level plan caches: repeated bindings serve
// re-costed skeletons from the remote caches instead of searching
// (the distributed analogue of OptimizeBound).
func (s *System) DistributedOptimizeBound(ctx context.Context, tpl *Template, values map[string]Value) (*Query, *OptimizeResult, error) {
	if len(s.Workers) == 0 {
		return nil, nil, fmt.Errorf("mdq: no distributed workers attached (set System.Workers)")
	}
	q, err := tpl.Bind(values)
	if err != nil {
		return nil, nil, err
	}
	if err := s.ResolveQuery(q); err != nil {
		return nil, nil, err
	}
	res, err := s.Coordinator().OptimizeTemplate(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	return q, res, nil
}

// DistributedExecute runs an optimized plan across System.Workers as
// plan fragments: the plan is partitioned into linear chains, each
// chain ships — with the tuples flowing into it — to a worker whose
// registry hosts its services and runs there with the stock executor,
// streaming its tail tuples back; this system joins the fragment
// streams, projects the head and truncates at K. The result is
// tuple-identical to Execute on the same plan (provided worker
// registries agree with this one). Workers with a feedback policy
// fold the fragment's traffic into their local profiles, and their
// epoch bumps flow back through the reverse gossip path.
func (s *System) DistributedExecute(ctx context.Context, p *Plan) (*ExecResult, error) {
	if len(s.Workers) == 0 {
		return nil, fmt.Errorf("mdq: no distributed workers attached (set System.Workers)")
	}
	return s.Coordinator().ExecutePlan(ctx, p)
}

// DistributedAnswer is Answer through the fleet: the search shards
// across System.Workers (DistributedOptimize) and the winning plan
// executes as worker-side fragments (DistributedExecute) — the whole
// pipeline from datalog text to ranked answers without this process
// invoking a single service itself.
func (s *System) DistributedAnswer(ctx context.Context, query string) (*ExecResult, *OptimizeResult, error) {
	q, err := s.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	ores, err := s.DistributedOptimize(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.DistributedExecute(ctx, ores.Best)
	if err != nil {
		return nil, nil, err
	}
	return res, ores, nil
}

// StartGossip forwards this registry's statistics-epoch bumps to
// every attached worker's plan cache until the returned stop function
// is called — cross-process cache invalidation riding the same epoch
// wire format local caches subscribe to.
func (s *System) StartGossip() (stop func()) {
	return s.Coordinator().GossipLoop(nil)
}

// WarmWorkers ships this system's plan-cache template entries to
// every attached worker, so remote caches start warm; it returns how
// many entries the workers accepted.
func (s *System) WarmWorkers(ctx context.Context) (int, error) {
	if s.PlanCache == nil {
		return 0, nil
	}
	return s.Coordinator().WarmWorkers(ctx, s.PlanCache)
}

// ChainTopology builds a serial topology over atom indexes.
func ChainTopology(order ...int) *Topology { return plan.Chain(order) }

// LayersTopology builds a layered topology (atoms inside a layer run
// in parallel).
func LayersTopology(layers ...[]int) *Topology { return plan.Layers(layers) }

// Milliseconds is a convenience for building latencies.
func Milliseconds(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

package fetch_test

import (
	"testing"

	"mdq/internal/card"
	"mdq/internal/cost"
	. "mdq/internal/fetch"
	"mdq/internal/plan"
	"mdq/internal/simweb"
)

func planO(t *testing.T) *plan.Plan {
	t.Helper()
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPaperClosedForms reproduces §5.3.1's arithmetic: for the
// Figure 8 plan with k=10, the bulk erspi with the join selectivity
// folded in is 20·0.05·0.01, so K′ = ⌈10/(1·0.01·25·5)⌉ = 8, and the
// paper's ⌈√·⌉ rounding of Eq. 6 with weights τ gives F_flight=3,
// F_hotel=4 — exactly the factors printed on Figure 8.
func TestPaperClosedForms(t *testing.T) {
	if got := PairProduct(10, 20*0.05*0.01, 25, 5); got != 8 {
		t.Fatalf("K′ = %d, want 8", got)
	}
	f1, f2 := PairParallelPaper(8, 9.7, 4.9)
	if f1 != 3 || f2 != 4 {
		t.Errorf("paper rounding = (%d,%d), want (3,4)", f1, f2)
	}
	// The exact integer optimum is cheaper: (2,4) costs 2·9.7+4·4.9 =
	// 39.0 versus (3,4) = 48.7. PairParallel finds it.
	g1, g2 := PairParallel(8, 9.7, 4.9)
	if g1*g2 < 8 {
		t.Fatalf("PairParallel infeasible: (%d,%d)", g1, g2)
	}
	if c, paper := float64(g1)*9.7+float64(g2)*4.9, 3*9.7+4*4.9; c > paper {
		t.Errorf("PairParallel cost %g worse than paper rounding %g", c, paper)
	}
	// Sequential case (Eq. 7).
	if f1, f2 := PairSequential(8); f1 != 1 || f2 != 8 {
		t.Errorf("PairSequential = (%d,%d), want (1,8)", f1, f2)
	}
	// Single chunked service (Eq. 5).
	if got := SingleChunked(10, 1.0, 5); got != 2 {
		t.Errorf("SingleChunked = %d, want 2", got)
	}
	if got := SingleChunked(10, 0.01, 25); got != 40 {
		t.Errorf("SingleChunked = %d, want 40", got)
	}
}

// TestAssignPlanO: phase 3 on the Figure 8 plan must reach k=10
// feasibly, and under the execution-time metric must not cost more
// than the paper's (3,4) choice.
func TestAssignPlanO(t *testing.T) {
	p := planO(t)
	a := &Assigner{
		Estimator: card.Config{Mode: card.OneCall},
		Metric:    cost.ExecTime{},
		K:         10,
	}
	res := a.Assign(p)
	if !res.Feasible {
		t.Fatal("k=10 should be reachable")
	}
	if res.TOut < 10 {
		t.Errorf("t_out = %g < k", res.TOut)
	}
	prod := res.Vector[0] * res.Vector[1]
	if prod < 8 {
		t.Errorf("fetch product = %d, need ≥ 8", prod)
	}
	// Paper's choice costs ETM 40.9; ours must be ≤.
	paper := planO(t)
	paper.ServiceNode[simweb.AtomFlight].Fetches = 3
	paper.ServiceNode[simweb.AtomHotel].Fetches = 4
	card.Config{Mode: card.OneCall}.Annotate(paper)
	if paperCost := (cost.ExecTime{}).Cost(paper); res.Cost > paperCost+1e-9 {
		t.Errorf("assigner cost %g worse than paper vector %g", res.Cost, paperCost)
	}
}

// TestGreedyAndSquareAgreeOnFeasibility: both heuristics reach k
// when k is reachable, and the exhaustive exploration can only
// improve on them.
func TestGreedyAndSquareAgreeOnFeasibility(t *testing.T) {
	for _, h := range []Heuristic{Greedy, Square} {
		p := planO(t)
		a := &Assigner{
			Estimator: card.Config{Mode: card.OneCall},
			Metric:    cost.RequestResponse{},
			K:         25,
			Heuristic: h,
		}
		res := a.Assign(p)
		if !res.Feasible {
			t.Errorf("%v: k=25 should be reachable", h)
		}
		if res.TOut < 25 {
			t.Errorf("%v: t_out %g < 25", h, res.TOut)
		}
	}
}

// TestAllOnesOptimal: when F=(1,…,1) already yields k results it is
// returned immediately (§4.3.2).
func TestAllOnesOptimal(t *testing.T) {
	p := planO(t)
	a := &Assigner{Estimator: card.Config{Mode: card.OneCall}, K: 1}
	res := a.Assign(p)
	if !res.Feasible || res.Vector[0] != 1 || res.Vector[1] != 1 {
		t.Errorf("all-ones should satisfy k=1: %+v", res)
	}
	if res.Explored != 1 {
		t.Errorf("explored %d vectors, want 1", res.Explored)
	}
}

// TestDecayCapsFeasibility: a decay small enough makes k unreachable
// (§4.3.2) and the assigner reports it.
func TestDecayCapsFeasibility(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	// Cripple both search services: only the first chunk is relevant.
	w.Flight.Signature().Stats.Decay = 25
	w.Hotel.Signature().Stats.Decay = 5
	defer func() {
		w.Flight.Signature().Stats.Decay = 0
		w.Hotel.Signature().Stats.Decay = 0
	}()
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := &Assigner{Estimator: card.Config{Mode: card.OneCall}, K: 10}
	res := a.Assign(p)
	// With F capped at (1,1): t_out = 1.25 < 10.
	if res.Feasible {
		t.Errorf("k=10 should be unreachable under decay caps, got %+v", res)
	}
}

// TestExhaustiveMatchesBruteForce: the pruned exploration finds the
// same optimum as a plain scan of the feasible grid.
func TestExhaustiveMatchesBruteForce(t *testing.T) {
	for _, k := range []int{5, 10, 40, 100} {
		p := planO(t)
		est := card.Config{Mode: card.OneCall}
		metric := cost.RequestResponse{}
		a := &Assigner{Estimator: est, Metric: metric, K: k}
		res := a.Assign(p)
		if !res.Feasible {
			t.Fatalf("k=%d should be feasible", k)
		}

		// Brute force over a generous grid.
		nodes := p.ChunkedNodes()
		best := -1.0
		for f1 := 1; f1 <= 120; f1++ {
			for f2 := 1; f2 <= 120; f2++ {
				nodes[0].Fetches, nodes[1].Fetches = f1, f2
				if est.Annotate(p) < float64(k) {
					continue
				}
				if c := metric.Cost(p); best < 0 || c < best {
					best = c
				}
			}
		}
		if best < 0 {
			t.Fatalf("brute force found nothing for k=%d", k)
		}
		if res.Cost != best {
			t.Errorf("k=%d: assigner cost %g, brute force %g", k, res.Cost, best)
		}
	}
}

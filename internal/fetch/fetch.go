// Package fetch assigns fetching factors to the chunked services of a
// query plan (§4.3 and §5.3.1 of Braga et al., VLDB 2008): the number
// of chunk requests each chunked service performs per input tuple,
// chosen so that the plan produces at least k answers at minimal
// cost.
//
// The package provides the two initialization heuristics of §4.3.1
// ("greedy" and "square is better"), the closed forms of Eq. 5–7 for
// one or two chunked services, and an exhaustive exploration of the
// fetch-vector space pruned by domination (§4.3.2).
package fetch

import (
	"fmt"
	"math"
	"sort"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/plan"
)

// Heuristic selects the initial assignment strategy of §4.3.1.
type Heuristic int

// Heuristics.
const (
	// Greedy starts from all-ones and repeatedly increments the
	// fetching factor with the highest sensitivity (output tuples
	// gained per unit of cost) until k answers are reached. It finds
	// a local optimum, which is global when the space is convex.
	Greedy Heuristic = iota
	// Square ("square is better") grows all factors together so that
	// every chunked service explores about the same number of
	// tuples, suiting quickly decaying rankings.
	Square
)

// String implements fmt.Stringer.
func (h Heuristic) String() string {
	switch h {
	case Greedy:
		return "greedy"
	case Square:
		return "square"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Result reports the outcome of a fetch assignment.
type Result struct {
	// Feasible is false when no assignment reaches k answers (for
	// instance because decay caps the useful fetches, §4.3.2).
	Feasible bool
	// Vector holds the assigned factor per chunked node, in plan
	// ChunkedNodes order.
	Vector []int
	// TOut is the estimated result size under the assignment.
	TOut float64
	// Cost is the plan cost under the assignment.
	Cost float64
	// Explored counts the fetch vectors evaluated.
	Explored int
}

// Assigner computes fetch factors for plans.
type Assigner struct {
	// Estimator provides cardinality annotation (cache model and
	// selectivities).
	Estimator card.Config
	// Metric is minimized; nil means cost.ExecTime.
	Metric cost.Metric
	// K is the desired number of answers.
	K int
	// Heuristic provides the initial upper bound; default Greedy.
	Heuristic Heuristic
	// MaxExplore caps the vectors evaluated during exhaustive
	// exploration; 0 means 100000. When exceeded, the best solution
	// found so far is returned.
	MaxExplore int
}

func (a *Assigner) metric() cost.Metric {
	if a.Metric == nil {
		return cost.ExecTime{}
	}
	return a.Metric
}

func (a *Assigner) maxExplore() int {
	if a.MaxExplore <= 0 {
		return 100000
	}
	return a.MaxExplore
}

// setVector installs a fetch vector and re-annotates, returning the
// estimated result size.
func (a *Assigner) setVector(p *plan.Plan, nodes []*plan.Node, v []int) float64 {
	for i, n := range nodes {
		n.Fetches = v[i]
	}
	return a.Estimator.Annotate(p)
}

// maxFetchBound caps any fetching factor: beyond it a plan is
// treated as unable to reach k (prevents unbounded exploration when
// selectivity estimates make k practically unreachable).
const maxFetchBound = 1 << 16

// capFor returns the decay-implied fetch cap for a node, bounded by
// maxFetchBound.
func capFor(n *plan.Node) int {
	if m := n.Atom.Sig.Statistics().MaxFetches(); m > 0 && m < maxFetchBound {
		return m
	}
	return maxFetchBound
}

// Assign computes the optimal fetch vector for the plan under the
// configured metric and installs it (mutating the plan's chunked
// nodes and annotations). If the plan has no chunked service the
// plan is annotated and returned as trivially feasible when its
// estimated output reaches k.
func (a *Assigner) Assign(p *plan.Plan) Result {
	nodes := p.ChunkedNodes()
	if len(nodes) == 0 {
		tout := a.Estimator.Annotate(p)
		return Result{
			Feasible: tout >= float64(a.K),
			TOut:     tout,
			Cost:     a.metric().Cost(p),
			Explored: 1,
		}
	}

	// §4.3.2: if the all-ones vector already yields k results it is
	// optimal (costs are monotone in every factor).
	ones := make([]int, len(nodes))
	for i := range ones {
		ones[i] = 1
	}
	tout := a.setVector(p, nodes, ones)
	if tout >= float64(a.K) {
		return Result{Feasible: true, Vector: ones, TOut: tout, Cost: a.metric().Cost(p), Explored: 1}
	}

	// Fast infeasibility check: t_out is monotone in every factor, so
	// if even the cap vector cannot reach k, nothing can.
	capVec := make([]int, len(nodes))
	for i, n := range nodes {
		capVec[i] = capFor(n)
	}
	if a.setVector(p, nodes, capVec) < float64(a.K) {
		best := a.maxVector(nodes)
		tout := a.setVector(p, nodes, best)
		return Result{Feasible: false, Vector: best, TOut: tout, Cost: a.metric().Cost(p), Explored: 2}
	}

	// Heuristic initial solution = upper bound.
	var init []int
	var explored int
	switch a.Heuristic {
	case Square:
		init, explored = a.square(p, nodes)
	default:
		init, explored = a.greedy(p, nodes)
	}
	if init == nil {
		// Decay caps make k unreachable (§4.3.2: "small upper bounds
		// determined by decays may sometimes even mean that k answers
		// can never be reached").
		best := a.maxVector(nodes)
		tout := a.setVector(p, nodes, best)
		return Result{Feasible: false, Vector: best, TOut: tout, Cost: a.metric().Cost(p), Explored: explored}
	}

	best, cost0, visited := a.explore(p, nodes, init)
	tout = a.setVector(p, nodes, best)
	return Result{
		Feasible: true,
		Vector:   best,
		TOut:     tout,
		Cost:     cost0,
		Explored: explored + visited,
	}
}

// maxVector returns the decay-capped maximal vector (for reporting
// infeasibility).
func (a *Assigner) maxVector(nodes []*plan.Node) []int {
	v := make([]int, len(nodes))
	for i, n := range nodes {
		if m := n.Atom.Sig.Statistics().MaxFetches(); m > 0 && m < maxFetchBound {
			v[i] = m
		} else {
			v[i] = 1
		}
	}
	return v
}

// greedy implements the greedy heuristics of §4.3.1: repeatedly
// increment the factor with the highest marginal tuples-per-cost
// gain until the estimated output reaches k. Returns nil if capped
// out before reaching k.
func (a *Assigner) greedy(p *plan.Plan, nodes []*plan.Node) ([]int, int) {
	v := make([]int, len(nodes))
	for i := range v {
		v[i] = 1
	}
	explored := 1
	tout := a.setVector(p, nodes, v)
	curCost := a.metric().Cost(p)
	// step accelerates geometrically when k is far away (the paper's
	// unit increments are kept while the target is near), so the
	// heuristic terminates quickly even when selectivities put k many
	// thousands of fetches away.
	step := 1
	for tout < float64(a.K) {
		if explored > a.maxExplore() {
			a.setVector(p, nodes, v)
			return nil, explored
		}
		bestIdx := -1
		bestGain := -1.0
		bestTOut, bestCost := 0.0, 0.0
		for i, n := range nodes {
			inc := step
			if v[i]+inc > capFor(n) {
				inc = capFor(n) - v[i]
			}
			if inc <= 0 {
				continue
			}
			v[i] += inc
			t := a.setVector(p, nodes, v)
			c := a.metric().Cost(p)
			explored++
			dc := c - curCost
			if dc <= 0 {
				dc = 1e-9
			}
			gain := (t - tout) / dc
			if gain > bestGain {
				bestGain, bestIdx = gain, i
				bestTOut, bestCost = t, c
			}
			v[i] -= inc
		}
		if bestIdx < 0 {
			a.setVector(p, nodes, v)
			return nil, explored
		}
		inc := step
		if v[bestIdx]+inc > capFor(nodes[bestIdx]) {
			inc = capFor(nodes[bestIdx]) - v[bestIdx]
		}
		v[bestIdx] += inc
		tout, curCost = bestTOut, bestCost
		if bestTOut > 0 && float64(a.K)/bestTOut > 2 {
			step *= 2
		} else {
			step = 1
		}
	}
	return v, explored
}

// square implements "square is better" (§4.3.1): all factors grow
// together so that F_i·cs_i (tuples explored per service) stays
// roughly equal across chunked services.
func (a *Assigner) square(p *plan.Plan, nodes []*plan.Node) ([]int, int) {
	minChunk := math.MaxInt
	for _, n := range nodes {
		if cs := n.Atom.Sig.Statistics().ChunkSize; cs < minChunk {
			minChunk = cs
		}
	}
	explored := 0
	v := make([]int, len(nodes))
	for round := 1; ; round++ {
		target := round * minChunk // tuples each service should explore
		capped := true
		for i, n := range nodes {
			cs := n.Atom.Sig.Statistics().ChunkSize
			f := (target + cs - 1) / cs
			if f < 1 {
				f = 1
			}
			if c := capFor(n); f > c {
				f = c
			} else {
				capped = false
			}
			v[i] = f
		}
		tout := a.setVector(p, nodes, v)
		explored++
		if tout >= float64(a.K) {
			return v, explored
		}
		if capped {
			return nil, explored
		}
		if explored > a.maxExplore() {
			return nil, explored
		}
	}
}

// explore searches the fetch-vector space seeded with the heuristic
// solution as upper bound (§4.3.2). Soundness rests on domination:
// costs and t_out are monotone in every coordinate, so
//
//   - a coordinate never needs to exceed the smallest value that
//     makes the plan feasible with all other coordinates at 1 (the
//     paper's F_max bound);
//   - a prefix whose optimistic completion (remaining coordinates at
//     1) costs more than the incumbent cannot improve on it;
//   - the final coordinate's optimum given a prefix is the minimal
//     feasible value (found by binary search).
//
// Coordinates are enumerated smallest-range first. Ranges are
// enumerated exactly up to exploreExact values; beyond that a
// geometric grid is used (documented approximation — real top-k
// workloads have fetch factors far below the threshold, and the
// brute-force comparison tests stay in the exact regime).
func (a *Assigner) explore(p *plan.Plan, nodes []*plan.Node, init []int) ([]int, float64, int) {
	metric := a.metric()
	best := append([]int(nil), init...)
	a.setVector(p, nodes, best)
	bestCost := metric.Cost(p)
	visited := 0

	v := make([]int, len(nodes))
	setRest := func(order []int, from int, val int) {
		for j := from; j < len(order); j++ {
			v[order[j]] = val
		}
	}

	// fMax per coordinate: minimal value reaching k with all others
	// at 1 (feasible by the cap pre-check in Assign when searched
	// alone may still fail; fall back to the cap).
	fMax := make([]int, len(nodes))
	for i, n := range nodes {
		for j := range v {
			v[j] = 1
		}
		lim := capFor(n)
		f, ok := a.minFeasible(p, nodes, v, i, lim)
		visited += bitsFor(lim)
		if !ok {
			f = lim
		}
		fMax[i] = f
	}

	// Iterate coordinates in increasing range; binary-search the last.
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		if fMax[order[x]] != fMax[order[y]] {
			return fMax[order[x]] < fMax[order[y]]
		}
		return order[x] < order[y]
	})

	var rec func(oi int)
	rec = func(oi int) {
		if visited > a.maxExplore() {
			return
		}
		idx := order[oi]
		if oi == len(order)-1 {
			f, ok := a.minFeasible(p, nodes, v, idx, capFor(nodes[idx]))
			visited += bitsFor(capFor(nodes[idx]))
			if !ok {
				return
			}
			v[idx] = f
			a.setVector(p, nodes, v)
			c := metric.Cost(p)
			if c < bestCost || (c == bestCost && lexLess(v, best)) {
				bestCost = c
				copy(best, v)
			}
			return
		}
		for _, f := range candidateValues(fMax[idx]) {
			v[idx] = f
			setRest(order, oi+1, 1)
			visited++
			feas := a.setVector(p, nodes, v) >= float64(a.K)
			if metric.Cost(p) > bestCost {
				// Optimistic completion already too expensive; larger
				// f only costs more.
				break
			}
			rec(oi + 1)
			if feas {
				// (…, f, 1, …) is feasible: larger f is dominated.
				break
			}
			if visited > a.maxExplore() {
				return
			}
		}
		v[idx] = 1
	}
	rec(0)
	return best, bestCost, visited
}

// exploreExact bounds the per-coordinate values enumerated
// exhaustively before switching to a geometric grid.
const exploreExact = 256

func candidateValues(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for f := 1; f <= max && f <= exploreExact; f++ {
		out = append(out, f)
	}
	if max > exploreExact {
		f := float64(exploreExact)
		for {
			f *= 1.5
			if int(f) >= max {
				break
			}
			out = append(out, int(f))
		}
		out = append(out, max)
	}
	return out
}

// minFeasible binary-searches the minimal value of coordinate idx
// (others already set in v) reaching k, up to lim.
func (a *Assigner) minFeasible(p *plan.Plan, nodes []*plan.Node, v []int, idx, lim int) (int, bool) {
	lo, hi := 1, 1
	for {
		v[idx] = hi
		if a.setVector(p, nodes, v) >= float64(a.K) {
			break
		}
		if hi >= lim {
			return 0, false
		}
		lo = hi + 1
		hi *= 2
		if hi > lim {
			hi = lim
		}
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		v[idx] = mid
		if a.setVector(p, nodes, v) >= float64(a.K) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	v[idx] = lo
	return lo, true
}

// bitsFor approximates the probes of a gallop+binary search to lim.
func bitsFor(lim int) int {
	n := 2
	for lim > 1 {
		lim >>= 1
		n += 2
	}
	return n
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// --- Closed forms (§5.3.1) ---

// SingleChunked computes Eq. 5: with a single chunked service and
// bulk erspi Ξ(G) (product of the effective erspi of all bulk
// services on the result path, including join selectivities), the
// factor needed for k answers is F = ⌈k / (Ξ · cs)⌉.
func SingleChunked(k int, bulkERSPI float64, chunkSize int) int {
	f := int(math.Ceil(float64(k) / (bulkERSPI * float64(chunkSize))))
	if f < 1 {
		f = 1
	}
	return f
}

// PairProduct computes K′ of §5.3.1 for two chunked services:
// F1·F2 ≥ K′ = ⌈k / (Ξ · cs1 · cs2)⌉. The bulk erspi must fold in
// the selectivity of the join combining the two chunked branches
// (this is what makes the paper's Figure 8 arithmetic work out:
// k=10, Ξ=1·0.01 ⇒ K′=8 with cs 25 and 5).
func PairProduct(k int, bulkERSPI float64, cs1, cs2 int) int {
	kp := int(math.Ceil(float64(k) / (bulkERSPI * float64(cs1) * float64(cs2))))
	if kp < 1 {
		kp = 1
	}
	return kp
}

// PairParallel computes Eq. 6: when the two chunked services are not
// on the same path, the cost F1·t1·c1 + F2·t2·c2 subject to
// F1·F2 ≥ K′ is minimized near F1 = √(K′·t2c2/t1c1),
// F2 = √(K′·t1c1/t2c2). The returned pair is the integer solution
// obtained by sweeping the ⌈·⌉ candidates around the real optimum.
func PairParallel(kPrime int, w1, w2 float64) (f1, f2 int) {
	if w1 <= 0 {
		w1 = 1e-9
	}
	if w2 <= 0 {
		w2 = 1e-9
	}
	bestCost := math.Inf(1)
	for c1 := 1; c1 <= kPrime; c1++ {
		c2 := (kPrime + c1 - 1) / c1
		cst := float64(c1)*w1 + float64(c2)*w2
		if cst < bestCost {
			bestCost, f1, f2 = cst, c1, c2
		}
	}
	// Also consider the analytic rounding (matches the paper's ⌈√·⌉
	// formulas when they are feasible).
	r1 := int(math.Ceil(math.Sqrt(float64(kPrime) * w2 / w1)))
	if r1 >= 1 {
		r2 := (kPrime + r1 - 1) / r1
		if cst := float64(r1)*w1 + float64(r2)*w2; cst < bestCost {
			f1, f2 = r1, r2
		}
	}
	return f1, f2
}

// PairParallelPaper applies Eq. 6 exactly as printed in the paper:
// both square roots are rounded up independently,
// F1 = ⌈√(K′·w2/w1)⌉ and F2 = ⌈√(K′·w1/w2)⌉. On the running example
// (K′=8, w1=τ_flight=9.7, w2=τ_hotel=4.9) this yields the (3,4) of
// Figure 8. The independent rounding can over-satisfy F1·F2 ≥ K′ —
// PairParallel finds the cheaper exact integer optimum — but it is
// kept verbatim for the Figure 8 reproduction.
func PairParallelPaper(kPrime int, w1, w2 float64) (f1, f2 int) {
	if w1 <= 0 {
		w1 = 1e-9
	}
	if w2 <= 0 {
		w2 = 1e-9
	}
	f1 = int(math.Ceil(math.Sqrt(float64(kPrime) * w2 / w1)))
	f2 = int(math.Ceil(math.Sqrt(float64(kPrime) * w1 / w2)))
	if f1 < 1 {
		f1 = 1
	}
	if f2 < 1 {
		f2 = 1
	}
	return f1, f2
}

// PairSequential computes Eq. 7: when the second chunked service
// consumes the first one's output on the same path, t_in2 grows
// linearly with F1, so the optimum pins F1 = 1 and F2 = ⌈K′⌉.
func PairSequential(kPrime int) (f1, f2 int) { return 1, kPrime }

// ChunkedWeights returns, for the two chunked nodes, the weights
// w_i = t_in_i · c_i used by Eq. 6 (per-fetch charge: invocation
// count times per-call cost). The plan must be annotated.
func ChunkedWeights(nodes []*plan.Node, metric cost.Metric) []float64 {
	w := make([]float64, len(nodes))
	for i, n := range nodes {
		st := n.Atom.Sig.Statistics()
		c := st.CostPerCall
		if _, isTime := metric.(cost.ExecTime); isTime {
			c = st.ResponseTime.Seconds()
		}
		if c <= 0 {
			c = 1
		}
		w[i] = n.Calls * c
	}
	return w
}

// SortNodesByID orders nodes deterministically (helper for callers
// pairing vectors with nodes).
func SortNodesByID(nodes []*plan.Node) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
}

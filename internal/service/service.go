// Package service defines the runtime interface of web services, the
// service registry of §5 (registration with profiled statistics and
// per-pair join methods), and the sampling profiler that derives the
// statistics of Table 1.
package service

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"mdq/internal/schema"
)

// Request is one request–response against a service: values for the
// input positions of the chosen access pattern, and a page index for
// chunked services (page 0 is the first fetch; sequential fetches
// increment it).
type Request struct {
	// Inputs holds one value per input position of the access
	// pattern, in pattern order.
	Inputs []schema.Value
	// Page is the chunk index requested (always 0 for bulk
	// services).
	Page int
}

// Key returns a canonical cache key for the request's inputs
// (excluding the page): two requests with equal keys address the
// same logical invocation.
func (r Request) Key() string {
	key := ""
	for _, v := range r.Inputs {
		key += v.Key() + "\x1f"
	}
	return key
}

// Response is the result of one request–response.
type Response struct {
	// Rows are full-width tuples (one value per signature argument,
	// echoing the inputs), in ranking order for search services.
	Rows [][]schema.Value
	// HasMore reports whether a further page may return rows; a
	// short or empty page with HasMore false ends fetching.
	HasMore bool
	// Elapsed is the simulated service time of this
	// request–response; executors account for it against their
	// clock (real executors sleep a scaled amount, the simulator
	// advances virtual time).
	Elapsed time.Duration
}

// Service is an invokable web service. Implementations must be safe
// for concurrent use: the execution engine dispatches invocations
// from multiple goroutines (§5: multi-threading).
type Service interface {
	// Signature describes the service.
	Signature() *schema.Signature
	// Invoke performs one request–response under the given feasible
	// access pattern (index into Signature().Patterns).
	Invoke(ctx context.Context, patternIdx int, req Request) (Response, error)
}

// PatternIndex locates a pattern within a signature, for callers
// holding a pattern value.
func PatternIndex(sig *schema.Signature, p schema.AccessPattern) (int, error) {
	for i, q := range sig.Patterns {
		if q.Equal(p) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("service: %s has no access pattern %s", sig.Name, p)
}

// Counter tracks invocations (logical calls) and fetches
// (request–responses, where a chunked call issues several); it is
// safe for concurrent use.
type Counter struct {
	calls   atomic.Int64
	fetches atomic.Int64
}

// AddCall records one logical invocation.
func (c *Counter) AddCall() { c.calls.Add(1) }

// AddFetch records one request–response.
func (c *Counter) AddFetch() { c.fetches.Add(1) }

// Calls returns the number of logical invocations recorded.
func (c *Counter) Calls() int64 { return c.calls.Load() }

// Fetches returns the number of request–responses recorded.
func (c *Counter) Fetches() int64 { return c.fetches.Load() }

// Reset zeroes both counters.
func (c *Counter) Reset() {
	c.calls.Store(0)
	c.fetches.Store(0)
}

package service

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"mdq/internal/schema"
)

// InputSampler supplies plausible input combinations for profiling a
// service. Implementations typically draw uniformly from the
// distinct input combinations of the underlying source, so that
// skewed sources do not bias the expected result size (a topic with
// many conferences must not be over-sampled).
type InputSampler interface {
	Sample(rng *rand.Rand, patternIdx int) []schema.Value
}

// SamplerFunc adapts a function to InputSampler.
type SamplerFunc func(rng *rand.Rand, patternIdx int) []schema.Value

// Sample implements InputSampler.
func (f SamplerFunc) Sample(rng *rand.Rand, patternIdx int) []schema.Value {
	return f(rng, patternIdx)
}

// Profiler estimates service statistics by sampling (§5: service
// registration "gives estimates (by sampling) of its erspi, average
// response time, and chunk values"). The resulting Stats reproduce
// the paper's Table 1 on the simulated travel services.
type Profiler struct {
	// Samples is the number of probe invocations (default 50).
	Samples int
	// Seed drives the sampling RNG (deterministic profiles).
	Seed int64
	// MaxPages caps the fetches per probe when draining chunked
	// services (default 40).
	MaxPages int
	// Filter, when set, drops response rows before counting; use it
	// to profile a query atom with its template predicates folded
	// into the erspi (§3.4 — this is how Table 1's weather shows an
	// expected result size of 0.05).
	Filter func(row []schema.Value) bool
}

// Profile probes the service with sampled inputs and returns the
// estimated statistics: expected result size per invocation, average
// response time per request–response, and the detected chunk size (0
// when the service answers in bulk).
func (p *Profiler) Profile(ctx context.Context, svc Service, patternIdx int, sampler InputSampler) (schema.Stats, error) {
	samples := p.Samples
	if samples <= 0 {
		samples = 50
	}
	maxPages := p.MaxPages
	if maxPages <= 0 {
		maxPages = 40
	}
	rng := rand.New(rand.NewSource(p.Seed))

	var (
		totalRows    float64
		totalTime    time.Duration
		fetches      int
		chunked      bool
		maxPageRows  int
		estChunkSize int
	)
	for s := 0; s < samples; s++ {
		inputs := sampler.Sample(rng, patternIdx)
		for page := 0; page < maxPages; page++ {
			resp, err := svc.Invoke(ctx, patternIdx, Request{Inputs: inputs, Page: page})
			if err != nil {
				return schema.Stats{}, fmt.Errorf("service: profiling %s: %w", svc.Signature().Name, err)
			}
			fetches++
			totalTime += resp.Elapsed
			n := 0
			for _, row := range resp.Rows {
				if p.Filter == nil || p.Filter(row) {
					n++
				}
			}
			totalRows += float64(n)
			if len(resp.Rows) > maxPageRows {
				maxPageRows = len(resp.Rows)
			}
			if resp.HasMore {
				chunked = true
				if len(resp.Rows) > estChunkSize {
					estChunkSize = len(resp.Rows)
				}
			}
			if !resp.HasMore {
				break
			}
		}
	}
	stats := schema.Stats{
		ERSPI:        totalRows / float64(samples),
		ResponseTime: totalTime / time.Duration(fetches),
	}
	if chunked {
		stats.ChunkSize = estChunkSize
	}
	return stats, nil
}

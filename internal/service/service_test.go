package service_test

import (
	"context"
	"math"
	"testing"
	"time"

	"mdq/internal/plan"
	"mdq/internal/schema"
	. "mdq/internal/service"
	"mdq/internal/simweb"
)

// TestProfilerReproducesTable1 is the Table 1 reproduction: sampling
// the four simulated services yields the paper's profile — conf
// exact with expected result size 20 and 1.2 s responses, weather
// exact with 0.05 (with the template's temperature filter folded in)
// and 1.5 s, flight search chunked at 25 with 9.7 s, hotel search
// chunked at 5 with 4.9 s.
func TestProfilerReproducesTable1(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{DisableServerCache: true})
	ctx := context.Background()

	profile := func(svc interface {
		Signature() *schema.Signature
	}, filter func([]schema.Value) bool) schema.Stats {
		t.Helper()
		p := &Profiler{Samples: 200, Seed: 1, Filter: filter}
		table, _ := w.Registry.Lookup(svc.Signature().Name)
		st, err := p.Profile(ctx, table, 0, table.(interface{ Sampler() InputSampler }).Sampler())
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	conf := profile(w.Conf, nil)
	if math.Abs(conf.ERSPI-20) > 3 {
		t.Errorf("conf erspi = %g, want ≈20 (Table 1)", conf.ERSPI)
	}
	if conf.ResponseTime != 1200*time.Millisecond {
		t.Errorf("conf τ = %v, want 1.2s", conf.ResponseTime)
	}
	if conf.ChunkSize != 0 {
		t.Errorf("conf chunk = %d, want bulk", conf.ChunkSize)
	}

	// Table 1 profiles the weather atom with the query template's
	// Temperature ≥ 28 predicate folded into the erspi (§3.4).
	weather := profile(w.Weather, func(row []schema.Value) bool {
		return row[1].Num >= simweb.HotTemperature
	})
	if math.Abs(weather.ERSPI-0.05) > 0.02 {
		t.Errorf("weather erspi = %g, want ≈0.05 (Table 1)", weather.ERSPI)
	}
	if weather.ResponseTime != 1500*time.Millisecond {
		t.Errorf("weather τ = %v, want 1.5s", weather.ResponseTime)
	}

	flight := profile(w.Flight, nil)
	if flight.ChunkSize != 25 {
		t.Errorf("flight chunk = %d, want 25 (Table 1)", flight.ChunkSize)
	}
	if flight.ResponseTime != 9700*time.Millisecond {
		t.Errorf("flight τ = %v, want 9.7s", flight.ResponseTime)
	}

	hotel := profile(w.Hotel, nil)
	if hotel.ChunkSize != 5 {
		t.Errorf("hotel chunk = %d, want 5 (Table 1)", hotel.ChunkSize)
	}
	if hotel.ResponseTime != 4900*time.Millisecond {
		t.Errorf("hotel τ = %v, want 4.9s", hotel.ResponseTime)
	}
}

func TestRegistry(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	if _, ok := w.Registry.Lookup("conf"); !ok {
		t.Error("conf not registered")
	}
	if _, ok := w.Registry.Lookup("nope"); ok {
		t.Error("nope registered")
	}
	if got := len(w.Registry.Services()); got != 4 {
		t.Errorf("services = %d, want 4", got)
	}
	if err := w.Registry.Register(w.Conf); err == nil {
		t.Error("duplicate registration accepted")
	}
	sch, err := w.Registry.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if sch.Len() != 4 {
		t.Errorf("schema len = %d", sch.Len())
	}
}

// TestMethodChooserUsesRegistration: the flight/hotel pair is
// registered as merge-scan; unknown pairs fall back to the default
// rule.
func TestMethodChooserUsesRegistration(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.JoinNodes()[0].Method != plan.MergeScan {
		t.Error("registered MS choice ignored")
	}
	// Flip the registration and rebuild.
	w.Registry.SetJoinMethod("hotel", "flight", plan.NestedLoop)
	p2, err := w.BuildPlan(q, simweb.PlanOTopology(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p2.JoinNodes()[0].Method != plan.NestedLoop {
		t.Error("re-registered NL choice ignored")
	}
}

func TestRequestKey(t *testing.T) {
	a := Request{Inputs: []schema.Value{schema.S("x"), schema.N(1)}}
	b := Request{Inputs: []schema.Value{schema.S("x"), schema.N(1)}, Page: 3}
	if a.Key() != b.Key() {
		t.Error("page must not affect the logical key")
	}
	c := Request{Inputs: []schema.Value{schema.S("x"), schema.S("1")}}
	if a.Key() == c.Key() {
		t.Error("value kinds must be distinguished")
	}
}

func TestPatternIndex(t *testing.T) {
	conf, _, _, _ := simweb.TravelSignatures()
	i, err := PatternIndex(conf, schema.MustPattern("ooooi"))
	if err != nil || i != 1 {
		t.Errorf("PatternIndex = %d, %v", i, err)
	}
	if _, err := PatternIndex(conf, schema.MustPattern("iiiii")); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.AddCall()
	c.AddFetch()
	c.AddFetch()
	if c.Calls() != 1 || c.Fetches() != 2 {
		t.Errorf("counter = %d/%d", c.Calls(), c.Fetches())
	}
	c.Reset()
	if c.Calls() != 0 || c.Fetches() != 0 {
		t.Error("reset failed")
	}
}

// TestObservedStatsRefresh: §5's periodic profile update — live
// traffic through an Observed wrapper refines the registered erspi,
// response time and chunk size.
func TestObservedStatsRefresh(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{DisableServerCache: true})
	obs := Observe(w.Conf)
	ctx := context.Background()

	// Drive traffic: one call per topic.
	for _, topic := range []string{"DB", "AI", "SE", "OS", "NET"} {
		if _, err := obs.Invoke(ctx, 0, Request{Inputs: []schema.Value{schema.S(topic)}}); err != nil {
			t.Fatal(err)
		}
	}
	calls, fetches, rows := obs.Observations()
	if calls != 5 || fetches != 5 {
		t.Fatalf("observed %d calls / %d fetches, want 5/5", calls, fetches)
	}
	if rows != 100 {
		t.Fatalf("observed %d rows, want 100 (all conferences)", rows)
	}
	st := obs.ObservedStats()
	if st.ERSPI != 20 {
		t.Errorf("observed erspi = %g, want 20", st.ERSPI)
	}
	if st.ResponseTime != 1200*time.Millisecond {
		t.Errorf("observed τ = %v, want 1.2s", st.ResponseTime)
	}

	// Refresh publishes the observed profile as the new snapshot.
	w.Conf.Signature().Stats.ERSPI = 999
	if !obs.Refresh() {
		t.Fatal("refresh with observations returned false")
	}
	if got := w.Conf.Signature().Statistics().ERSPI; got != 20 {
		t.Errorf("refreshed erspi = %g, want 20", got)
	}
	w.Conf.Signature().SetStats(st) // restore for other tests

	// An untouched observer refuses to refresh.
	fresh := Observe(w.Weather)
	if fresh.Refresh() {
		t.Error("refresh without observations should return false")
	}

	// Reset clears the window.
	obs.Reset()
	if c, _, _ := obs.Observations(); c != 0 {
		t.Error("reset failed")
	}
}

// TestObservedChunkDetection: paging through an observed search
// service reveals its chunk size.
func TestObservedChunkDetection(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{DisableServerCache: true})
	obs := Observe(w.Hotel)
	ctx := context.Background()
	// Any conference city has 40 luxury hotels: pages of 5.
	resp, err := w.Conf.Invoke(ctx, 0, Request{Inputs: []schema.Value{schema.S("DB")}})
	if err != nil {
		t.Fatal(err)
	}
	row := resp.Rows[0]
	req := Request{Inputs: []schema.Value{row[4], schema.S("luxury"), row[2], row[3]}}
	for page := 0; page < 3; page++ {
		req.Page = page
		if _, err := obs.Invoke(ctx, 0, req); err != nil {
			t.Fatal(err)
		}
	}
	if st := obs.ObservedStats(); st.ChunkSize != 5 {
		t.Errorf("observed chunk = %d, want 5", st.ChunkSize)
	}
}

// TestRegistryVersion: every mutation bumps the version (the plan
// cache's invalidation signal); reads do not.
func TestRegistryVersion(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	r := NewRegistry()
	v0 := r.Version()
	r.MustRegister(w.Conf)
	v1 := r.Version()
	if v1 <= v0 {
		t.Fatalf("Register did not bump version: %d -> %d", v0, v1)
	}
	r.SetJoinMethod("a", "b", plan.MergeScan)
	v2 := r.Version()
	if v2 <= v1 {
		t.Fatalf("SetJoinMethod did not bump version: %d -> %d", v1, v2)
	}
	r.Lookup("conf")
	r.Services()
	_ = r.MethodChooser()
	if r.Version() != v2 {
		t.Errorf("read operations changed the version")
	}
}

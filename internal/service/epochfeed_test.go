package service_test

import (
	"testing"
	"time"

	. "mdq/internal/service"
	"mdq/internal/simweb"
)

// TestEpochFeedCoalesces: the feed delivers every service that
// bumped, keeping only the latest epoch per service, in sorted order.
func TestEpochFeedCoalesces(t *testing.T) {
	r := NewRegistry()
	f := r.NewEpochFeed()
	defer f.Close()

	r.BumpEpoch("b")
	r.BumpEpoch("a")
	r.BumpEpoch("b")
	r.BumpEpoch("b")

	select {
	case <-f.Wait():
	case <-time.After(time.Second):
		t.Fatal("no signal after bumps")
	}
	got := f.Next()
	want := []EpochBump{{Service: "a", Epoch: 1}, {Service: "b", Epoch: 3}}
	if len(got) != len(want) {
		t.Fatalf("bumps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bumps = %v, want %v", got, want)
		}
	}
	if again := f.Next(); again != nil {
		t.Fatalf("second Next returned %v, want nil", again)
	}

	// After Close, further bumps are ignored.
	f.Close()
	r.BumpEpoch("c")
	if got := f.Next(); got != nil {
		t.Fatalf("closed feed delivered %v", got)
	}
}

// TestDistFingerprint: profiled services fingerprint stably; the
// fingerprint moves with the distributions and is empty for services
// without value statistics.
func TestDistFingerprint(t *testing.T) {
	w := simweb.NewZipfWorld(8, 100, 1.1)
	fp := w.Registry.DistFingerprint("catalog")
	if fp == "" {
		t.Fatal("profiled catalog has no fingerprint")
	}
	if again := w.Registry.DistFingerprint("catalog"); again != fp {
		t.Fatalf("fingerprint not stable: %s vs %s", fp, again)
	}
	// A fresh world with different skew fingerprints differently.
	other := simweb.NewZipfWorld(8, 100, 2.0)
	if ofp := other.Registry.DistFingerprint("catalog"); ofp == fp {
		t.Fatal("different distributions share a fingerprint")
	}
	if got := w.Registry.DistFingerprint("nope"); got != "" {
		t.Fatalf("unknown service fingerprints as %q", got)
	}

	tw := simweb.NewTravelWorld(simweb.TravelOptions{})
	if got := tw.Registry.DistFingerprint("conf"); got != "" {
		t.Fatalf("unprofiled service fingerprints as %q, want empty", got)
	}
}

package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mdq/internal/plan"
	"mdq/internal/schema"
)

// Registry is the service registration facility of §5: it makes
// services known to the optimizer together with their signatures,
// patterns, profiled statistics, and — for each pair of services —
// the parallel join method to employ.
type Registry struct {
	mu       sync.RWMutex
	services map[string]Service
	methods  map[[2]string]plan.JoinMethod
	// id distinguishes registry instances within the process;
	// version counts mutations (registrations, join-method changes).
	// Plan caches mix both into their keys (see CacheSalt) so
	// entries computed against another registry, or an older state
	// of this one, are never served.
	id      uint64
	version uint64
}

// registryIDs hands each registry a process-unique identity.
var registryIDs atomic.Uint64

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		services: map[string]Service{},
		methods:  map[[2]string]plan.JoinMethod{},
		id:       registryIDs.Add(1),
	}
}

// Register adds a service; its signature must validate and its name
// must be fresh.
func (r *Registry) Register(svc Service) error {
	sig := svc.Signature()
	if err := sig.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.services[sig.Name]; dup {
		return fmt.Errorf("service: duplicate registration of %s", sig.Name)
	}
	r.services[sig.Name] = svc
	r.version++
	return nil
}

// Version returns a counter that increases on every registry
// mutation. Optimization caches keyed on it are invalidated by any
// registration or join-method change. Statistics refreshed in place
// on an already-registered signature (service.Observed) do not bump
// it; the canonical query key fingerprints those directly.
func (r *Registry) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// CacheSalt returns an opaque token identifying this registry
// instance and its current mutation state — the value optimizer plan
// caches should mix into their keys. Two different registries, or
// the same registry before and after a mutation, never share a salt,
// so a cache shared across systems cannot serve a plan whose join
// methods were chosen by another registry.
func (r *Registry) CacheSalt() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fmt.Sprintf("reg%d@%d", r.id, r.version)
}

// MustRegister is Register that panics on error.
func (r *Registry) MustRegister(svc Service) {
	if err := r.Register(svc); err != nil {
		panic(err)
	}
}

// Lookup finds a registered service.
func (r *Registry) Lookup(name string) (Service, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	svc, ok := r.services[name]
	return svc, ok
}

// Services returns all registered services sorted by name.
func (r *Registry) Services() []Service {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Service, 0, len(r.services))
	for _, s := range r.services {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Signature().Name < out[j].Signature().Name
	})
	return out
}

// Schema assembles the schema of all registered signatures.
func (r *Registry) Schema() (*schema.Schema, error) {
	sigs := make([]*schema.Signature, 0)
	for _, s := range r.Services() {
		sigs = append(sigs, s.Signature())
	}
	return schema.NewSchema(sigs...)
}

// SetJoinMethod records the parallel join method to use when
// combining results of the two named services, in either order
// (registration-time knowledge, §3.3).
func (r *Registry) SetJoinMethod(a, b string, m plan.JoinMethod) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.methods[pairKey(a, b)] = m
	r.version++
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// MethodChooser returns a plan.MethodChooser that consults the
// registered pair table and falls back to plan.DefaultMethodChooser.
func (r *Registry) MethodChooser() plan.MethodChooser {
	return func(left, right *plan.Node) plan.JoinMethod {
		if left.Kind == plan.Service && right.Kind == plan.Service {
			r.mu.RLock()
			m, ok := r.methods[pairKey(left.Atom.Service, right.Atom.Service)]
			r.mu.RUnlock()
			if ok {
				return m
			}
		}
		return plan.DefaultMethodChooser(left, right)
	}
}

package service

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"mdq/internal/plan"
	"mdq/internal/schema"
)

// Registry is the service registration facility of §5: it makes
// services known to the optimizer together with their signatures,
// patterns, profiled statistics, and — for each pair of services —
// the parallel join method to employ.
type Registry struct {
	mu       sync.RWMutex
	services map[string]Service
	methods  map[[2]string]plan.JoinMethod
	// version counts mutations (registrations, join-method changes)
	// for Version(); plan caches fingerprint the join-method table by
	// content instead (see CacheSalt), so keys stay portable across
	// processes holding the same logical registry.
	version uint64
	// epochs counts in-place statistics refreshes per service: an
	// Observed wrapper that absorbs live traffic into its signature
	// bumps the service's epoch without touching the registry
	// version, and subscribers (plan caches) invalidate or
	// revalidate exactly the entries that depend on that service.
	epochs map[string]uint64
	subs   map[any]func(service string, epoch uint64)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		services: map[string]Service{},
		methods:  map[[2]string]plan.JoinMethod{},
		epochs:   map[string]uint64{},
		subs:     map[any]func(string, uint64){},
	}
}

// Register adds a service; its signature must validate and its name
// must be fresh.
func (r *Registry) Register(svc Service) error {
	sig := svc.Signature()
	if err := sig.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.services[sig.Name]; dup {
		return fmt.Errorf("service: duplicate registration of %s", sig.Name)
	}
	r.services[sig.Name] = svc
	r.version++
	if ob, ok := svc.(*Observed); ok {
		name := sig.Name
		ob.setNotify(func() { r.BumpEpoch(name) })
	}
	return nil
}

// Version returns a counter that increases on every registry
// mutation. Optimization caches keyed on it are invalidated by any
// registration or join-method change. Statistics refreshed in place
// on an already-registered signature (service.Observed) do not bump
// it; the canonical query key fingerprints those directly.
func (r *Registry) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// CacheSalt returns an opaque token fingerprinting the one piece of
// registry state the optimizer consults that query cache keys cannot
// express themselves: the registered join-method pair table behind
// MethodChooser. (Signatures, patterns, domains and statistics are
// fingerprinted by the canonical query key directly.)
//
// The salt is content-based, not identity-based: two registries with
// the same pair table — in particular, the same logical registry
// rebuilt in another process, or after a restart — produce the same
// salt, which is what lets template cache entries travel across
// processes (dist.Coordinator.WarmWorkers) and survive restarts
// (PlanCache.Save/Load): a serialized entry's key can actually be
// hit by the importer. Changing any pair's method changes the salt,
// so entries planned under other join methods are never served.
func (r *Registry) CacheSalt() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.methods) == 0 {
		return "jm0"
	}
	keys := make([]string, 0, len(r.methods))
	for k, m := range r.methods {
		keys = append(keys, k[0]+"\x1f"+k[1]+"\x1f"+m.String())
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return "jm" + strconv.FormatUint(h.Sum64(), 36)
}

// BumpEpoch advances the statistics epoch of a service and notifies
// every subscriber. It is called by Observed wrappers after an
// in-place statistics refresh, and may be called directly by callers
// that mutate a registered signature's statistics by hand. Unlike
// registrations and join-method changes it does not bump the registry
// version: the epoch is a finer-grained signal that lets plan caches
// drop or revalidate only the entries touching the refreshed service
// instead of everything.
func (r *Registry) BumpEpoch(name string) uint64 {
	r.mu.Lock()
	r.epochs[name]++
	epoch := r.epochs[name]
	fns := make([]func(string, uint64), 0, len(r.subs))
	for _, fn := range r.subs {
		fns = append(fns, fn)
	}
	r.mu.Unlock()
	// Subscribers run outside the registry lock so they may call back
	// into the registry freely.
	for _, fn := range fns {
		fn(name, epoch)
	}
	return epoch
}

// Epoch returns the current statistics epoch of a service (0 until
// the first refresh).
func (r *Registry) Epoch(name string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epochs[name]
}

// Epochs returns a snapshot of every service's statistics epoch;
// services never refreshed are omitted (epoch 0).
func (r *Registry) Epochs() map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]uint64, len(r.epochs))
	for name, e := range r.epochs {
		out[name] = e
	}
	return out
}

// SubscribeEpochs registers fn to be called after every epoch bump.
// The key identifies the subscriber: subscribing the same key again
// replaces its callback, so wiring a long-lived cache to the registry
// on every optimization is idempotent.
func (r *Registry) SubscribeEpochs(key any, fn func(service string, epoch uint64)) {
	if key == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs[key] = fn
}

// UnsubscribeEpochs removes a subscriber.
func (r *Registry) UnsubscribeEpochs(key any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.subs, key)
}

// ObserveAll wraps every registered service that is not already
// observed in an Observed collector wired to this registry's epochs,
// and returns the number of services wrapped. Signatures, statistics
// and plans are untouched (the wrapper is transparent), so the
// registry version does not change; but from now on live traffic
// accumulates per-service observations that Refresh — or the
// executor's feedback policy — can fold back into the profile.
func (r *Registry) ObserveAll() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for name, svc := range r.services {
		if _, ok := svc.(*Observed); ok {
			continue
		}
		ob := Observe(svc)
		name := name
		ob.setNotify(func() { r.BumpEpoch(name) })
		r.services[name] = ob
		n++
	}
	return n
}

// Observer returns the Observed wrapper of a service, if it is
// observed.
func (r *Registry) Observer(name string) (*Observed, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ob, ok := r.services[name].(*Observed)
	return ob, ok
}

// RefreshObserved folds the collected observations of every observed
// service into its registered profile (bumping the epochs of the
// services whose statistics actually changed) and returns how many
// profiles changed — the manual counterpart of the executor's
// per-run feedback.
func (r *Registry) RefreshObserved() int {
	var obs []*Observed
	r.mu.RLock()
	for _, svc := range r.services {
		if ob, ok := svc.(*Observed); ok {
			obs = append(obs, ob)
		}
	}
	r.mu.RUnlock()
	n := 0
	for _, ob := range obs {
		if ob.Refresh() {
			n++
		}
	}
	return n
}

// MustRegister is Register that panics on error.
func (r *Registry) MustRegister(svc Service) {
	if err := r.Register(svc); err != nil {
		panic(err)
	}
}

// Lookup finds a registered service.
func (r *Registry) Lookup(name string) (Service, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	svc, ok := r.services[name]
	return svc, ok
}

// Services returns all registered services sorted by name.
func (r *Registry) Services() []Service {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Service, 0, len(r.services))
	for _, s := range r.services {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Signature().Name < out[j].Signature().Name
	})
	return out
}

// Schema assembles the schema of all registered signatures.
func (r *Registry) Schema() (*schema.Schema, error) {
	sigs := make([]*schema.Signature, 0)
	for _, s := range r.Services() {
		sigs = append(sigs, s.Signature())
	}
	return schema.NewSchema(sigs...)
}

// SetJoinMethod records the parallel join method to use when
// combining results of the two named services, in either order
// (registration-time knowledge, §3.3).
func (r *Registry) SetJoinMethod(a, b string, m plan.JoinMethod) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.methods[pairKey(a, b)] = m
	r.version++
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// MethodChooser returns a plan.MethodChooser that consults the
// registered pair table and falls back to plan.DefaultMethodChooser.
func (r *Registry) MethodChooser() plan.MethodChooser {
	return func(left, right *plan.Node) plan.JoinMethod {
		if left.Kind == plan.Service && right.Kind == plan.Service {
			r.mu.RLock()
			m, ok := r.methods[pairKey(left.Atom.Service, right.Atom.Service)]
			r.mu.RUnlock()
			if ok {
				return m
			}
		}
		return plan.DefaultMethodChooser(left, right)
	}
}

package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"mdq/internal/schema"
)

// statService is a minimal service with a mutable signature for
// epoch tests.
type statService struct {
	sig  *schema.Signature
	rows [][]schema.Value
}

func newStatService(name string, erspi float64) *statService {
	return &statService{
		sig: &schema.Signature{
			Name: name,
			Attrs: []schema.Attribute{
				{Name: "X", Domain: schema.Domain{Name: "D", Kind: schema.NumberValue}},
			},
			Patterns: []schema.AccessPattern{schema.MustPattern("o")},
			Stats:    schema.Stats{ERSPI: erspi, ResponseTime: time.Second},
		},
		rows: [][]schema.Value{{schema.N(1)}, {schema.N(2)}, {schema.N(3)}},
	}
}

func (s *statService) Signature() *schema.Signature { return s.sig }

func (s *statService) Invoke(ctx context.Context, patternIdx int, req Request) (Response, error) {
	return Response{Rows: s.rows, Elapsed: 10 * time.Millisecond}, nil
}

// TestEpochBumpOnRefresh: an observed registered service bumps its
// epoch when (and only when) a refresh changes the statistics; the
// registry version is untouched.
func TestEpochBumpOnRefresh(t *testing.T) {
	r := NewRegistry()
	ob := Observe(newStatService("a", 99)) // registered profile is wrong on purpose
	r.MustRegister(ob)
	version := r.Version()

	if r.Epoch("a") != 0 {
		t.Fatal("fresh service has nonzero epoch")
	}
	if ob.Refresh() {
		t.Fatal("refresh with no observations reported a change")
	}
	if _, err := ob.Invoke(context.Background(), 0, Request{}); err != nil {
		t.Fatal(err)
	}
	if !ob.Refresh() {
		t.Fatal("refresh after traffic reported no change")
	}
	if got := r.Epoch("a"); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	if ob.Signature().Statistics().ERSPI != 3 {
		t.Fatalf("erspi = %g, want 3 (observed)", ob.Signature().Statistics().ERSPI)
	}
	// A second refresh with no new divergence must not bump again.
	if ob.Refresh() {
		t.Fatal("refresh without change reported a change")
	}
	if got := r.Epoch("a"); got != 1 {
		t.Fatalf("epoch after no-op refresh = %d, want 1", got)
	}
	if r.Version() != version {
		t.Fatal("epoch bump mutated the registry version")
	}
}

// TestEpochSubscription: subscribers see every bump; re-subscribing
// the same key replaces the callback; unsubscribe stops delivery.
func TestEpochSubscription(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var got []string
	key := struct{ int }{1}
	r.SubscribeEpochs(key, func(name string, epoch uint64) {
		mu.Lock()
		got = append(got, name)
		mu.Unlock()
	})
	r.SubscribeEpochs(key, func(name string, epoch uint64) { // replaces, not adds
		mu.Lock()
		got = append(got, name+"!")
		mu.Unlock()
	})
	r.BumpEpoch("x")
	r.UnsubscribeEpochs(key)
	r.BumpEpoch("x")
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "x!" {
		t.Fatalf("deliveries = %v, want [x!]", got)
	}
	if r.Epoch("x") != 2 {
		t.Fatalf("epoch = %d, want 2", r.Epoch("x"))
	}
}

// TestObserveAll wraps registered services transparently: lookups
// resolve to observers, signatures are unchanged, traffic through
// the registry is recorded, and RefreshObserved folds it back.
func TestObserveAll(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(newStatService("a", 99))
	r.MustRegister(Observe(newStatService("b", 99))) // already observed
	if n := r.ObserveAll(); n != 1 {
		t.Fatalf("ObserveAll wrapped %d services, want 1", n)
	}
	if n := r.ObserveAll(); n != 0 {
		t.Fatalf("second ObserveAll wrapped %d services, want 0", n)
	}
	svc, ok := r.Lookup("a")
	if !ok {
		t.Fatal("service a lost")
	}
	ob, ok := svc.(*Observed)
	if !ok {
		t.Fatal("lookup does not resolve to the observer")
	}
	if ob.Signature().Name != "a" {
		t.Fatal("observer signature mismatch")
	}
	if _, err := ob.Invoke(context.Background(), 0, Request{}); err != nil {
		t.Fatal(err)
	}
	if n := r.RefreshObserved(); n != 1 {
		t.Fatalf("RefreshObserved changed %d profiles, want 1", n)
	}
	if r.Epoch("a") != 1 {
		t.Fatalf("epoch = %d, want 1", r.Epoch("a"))
	}
}

// TestMaybeRefreshPolicy: MinCalls and MinDrift gate the feedback.
func TestMaybeRefreshPolicy(t *testing.T) {
	r := NewRegistry()
	ob := Observe(newStatService("a", 3)) // profile matches traffic: erspi 3
	r.MustRegister(ob)

	if _, err := ob.Invoke(context.Background(), 0, Request{}); err != nil {
		t.Fatal(err)
	}
	if ob.MaybeRefresh(FeedbackPolicy{MinCalls: 5}) {
		t.Fatal("refresh taken below MinCalls")
	}
	// erspi matches (3 == 3) but response time differs wildly
	// (profile 1s vs observed 10ms), so drift is high; a huge
	// MinDrift still suppresses it.
	if ob.MaybeRefresh(FeedbackPolicy{MinDrift: 1e9}) {
		t.Fatal("refresh taken below MinDrift")
	}
	if !ob.MaybeRefresh(FeedbackPolicy{}) {
		t.Fatal("zero policy did not refresh on drift")
	}
	if r.Epoch("a") != 1 {
		t.Fatalf("epoch = %d, want 1", r.Epoch("a"))
	}
	// The window resets after a refresh: nothing new observed, no
	// further refresh.
	if ob.MaybeRefresh(FeedbackPolicy{}) {
		t.Fatal("refresh taken on an empty window")
	}
}

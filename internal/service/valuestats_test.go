package service

import (
	"context"
	"testing"
	"time"

	"mdq/internal/schema"
)

// skewService returns skewed single-attribute rows: 'hot' dominates.
type skewService struct {
	sig *schema.Signature
}

func newSkewService() *skewService {
	return &skewService{sig: &schema.Signature{
		Name: "skew",
		Attrs: []schema.Attribute{
			{Name: "K", Domain: schema.Domain{Name: "K", Kind: schema.StringValue}},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("o")},
		Stats:    schema.Stats{ERSPI: 1, ResponseTime: time.Second},
	}}
}

func (s *skewService) Signature() *schema.Signature { return s.sig }

func (s *skewService) Invoke(ctx context.Context, patternIdx int, req Request) (Response, error) {
	rows := [][]schema.Value{
		{schema.S("hot")}, {schema.S("hot")}, {schema.S("hot")},
		{schema.S("cold")},
	}
	return Response{Rows: rows, Elapsed: time.Millisecond}, nil
}

// TestObservedLearnsDistributions: live traffic through an Observed
// wrapper accumulates value sketches, and Refresh publishes them as
// per-attribute distributions on the signature, bumping the epoch.
func TestObservedLearnsDistributions(t *testing.T) {
	r := NewRegistry()
	ob := Observe(newSkewService())
	r.MustRegister(ob)

	for i := 0; i < 5; i++ {
		if _, err := ob.Invoke(context.Background(), 0, Request{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ob.Signature().Statistics().Distribution(0); !got.Empty() {
		t.Fatal("distribution must not be published before a refresh")
	}
	if !ob.Refresh() {
		t.Fatal("refresh after traffic reported no change")
	}
	if r.Epoch("skew") != 1 {
		t.Fatalf("epoch = %d, want 1", r.Epoch("skew"))
	}
	d := ob.Signature().Statistics().Distribution(0)
	if d.Empty() {
		t.Fatal("refresh must publish the observed value distribution")
	}
	hot, ok := d.EqSelectivity(schema.S("hot"))
	if !ok || hot < 0.7 || hot > 0.8 {
		t.Fatalf("hot frequency ≈ 0.75 expected, got %v (ok=%v)", hot, ok)
	}

	// A second refresh with no new evidence must not re-bump: the
	// cumulative sketches rebuild the same distribution and the
	// scalar stats are unchanged.
	if ob.Refresh() {
		t.Fatal("refresh without new traffic reported a change")
	}
	if r.Epoch("skew") != 1 {
		t.Fatalf("epoch re-bumped without change: %d", r.Epoch("skew"))
	}

	// Sketches survive window resets (MaybeRefresh) so distributions
	// keep improving across feedback windows.
	if _, err := ob.Invoke(context.Background(), 0, Request{}); err != nil {
		t.Fatal(err)
	}
	ob.Reset()
	if _, err := ob.Invoke(context.Background(), 0, Request{}); err != nil {
		t.Fatal(err)
	}
	st := ob.ObservedStats()
	if d2 := st.Distribution(0); d2.Empty() || d2.Total < d.Total {
		t.Fatalf("sketches must accumulate across windows: %v", d2.Summary())
	}
}

package service

import (
	"context"
	"sync"
	"time"

	"mdq/internal/schema"
)

// Observed wraps a service and keeps running statistics over the
// live traffic that flows through it. §5: registration estimates
// are "periodically updated, also taking advantage of subsequent
// invocations" — wrap a service with Observe, register the wrapper,
// and call Refresh whenever the profile should absorb what execution
// has learned.
type Observed struct {
	inner Service

	mu          sync.Mutex
	calls       int64
	fetches     int64
	rows        int64
	elapsed     time.Duration
	maxPageRows int
	sawMore     bool
}

// Observe wraps a service for statistics collection.
func Observe(svc Service) *Observed {
	return &Observed{inner: svc}
}

// Signature implements Service.
func (o *Observed) Signature() *schema.Signature { return o.inner.Signature() }

// Invoke implements Service, recording result sizes and service
// times.
func (o *Observed) Invoke(ctx context.Context, patternIdx int, req Request) (Response, error) {
	resp, err := o.inner.Invoke(ctx, patternIdx, req)
	if err != nil {
		return resp, err
	}
	o.mu.Lock()
	if req.Page == 0 {
		o.calls++
	}
	o.fetches++
	o.rows += int64(len(resp.Rows))
	o.elapsed += resp.Elapsed
	if len(resp.Rows) > o.maxPageRows {
		o.maxPageRows = len(resp.Rows)
	}
	if resp.HasMore {
		o.sawMore = true
	}
	o.mu.Unlock()
	return resp, nil
}

// Observations returns the raw counters collected so far.
func (o *Observed) Observations() (calls, fetches, rows int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.calls, o.fetches, o.rows
}

// ObservedStats derives service statistics from the collected
// traffic: erspi as rows per logical invocation, response time as
// mean per request–response, and the chunk size when paging was
// observed. Fields with no evidence keep the registered values.
func (o *Observed) ObservedStats() schema.Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.inner.Signature().Stats
	if o.calls > 0 {
		st.ERSPI = float64(o.rows) / float64(o.calls)
	}
	if o.fetches > 0 {
		st.ResponseTime = o.elapsed / time.Duration(o.fetches)
	}
	if o.sawMore && o.maxPageRows > 0 {
		st.ChunkSize = o.maxPageRows
	}
	return st
}

// Refresh writes the observed statistics into the service's
// signature, so subsequent optimizations use the refined profile
// (the periodic update of §5). It reports whether anything was
// observed at all.
func (o *Observed) Refresh() bool {
	st := o.ObservedStats()
	o.mu.Lock()
	observed := o.calls > 0
	o.mu.Unlock()
	if !observed {
		return false
	}
	o.inner.Signature().Stats = st
	return true
}

// Reset clears the collected counters (e.g. after a Refresh, to
// observe a fresh window).
func (o *Observed) Reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.calls, o.fetches, o.rows, o.elapsed = 0, 0, 0, 0
	o.maxPageRows, o.sawMore = 0, false
}

package service

import (
	"context"
	"math"
	"sync"
	"time"

	"mdq/internal/schema"
)

// Observed wraps a service and keeps running statistics over the
// live traffic that flows through it. §5: registration estimates
// are "periodically updated, also taking advantage of subsequent
// invocations" — wrap a service with Observe, register the wrapper,
// and call Refresh whenever the profile should absorb what execution
// has learned.
type Observed struct {
	inner Service

	mu          sync.Mutex
	calls       int64
	fetches     int64
	rows        int64
	elapsed     time.Duration
	maxPageRows int
	sawMore     bool
	// sketches accumulate the values returned per attribute position
	// (full-width rows only), from which Refresh builds per-attribute
	// value distributions. Unlike the scalar counters they are NOT
	// reset per feedback window: distributions improve monotonically
	// with traffic, and a refresh publishes the cumulative picture.
	sketches []*schema.ValueSketch
	// notify is called (outside the lock) after a Refresh that
	// changed the signature's statistics; the registry wires it to
	// BumpEpoch at registration so plan caches learn about the
	// refresh.
	notify func()
}

// Distribution-building defaults for refreshed profiles: a handful of
// most-common values plus a small equi-depth histogram keeps the cost
// model sharp on skew without bloating signatures.
const (
	refreshMCVs    = 8
	refreshBuckets = 8
)

// Observe wraps a service for statistics collection.
func Observe(svc Service) *Observed {
	return &Observed{inner: svc}
}

// Signature implements Service.
func (o *Observed) Signature() *schema.Signature { return o.inner.Signature() }

// Invoke implements Service, recording result sizes and service
// times.
func (o *Observed) Invoke(ctx context.Context, patternIdx int, req Request) (Response, error) {
	resp, err := o.inner.Invoke(ctx, patternIdx, req)
	if err != nil {
		return resp, err
	}
	o.mu.Lock()
	if req.Page == 0 {
		o.calls++
	}
	o.fetches++
	o.rows += int64(len(resp.Rows))
	o.elapsed += resp.Elapsed
	if len(resp.Rows) > o.maxPageRows {
		o.maxPageRows = len(resp.Rows)
	}
	if resp.HasMore {
		o.sawMore = true
	}
	o.observeValuesLocked(resp.Rows)
	o.mu.Unlock()
	return resp, nil
}

// observeValuesLocked feeds full-width result rows into the
// per-attribute value sketches. Rows of unexpected width are skipped:
// only positionally attributable values can sharpen an attribute's
// distribution.
func (o *Observed) observeValuesLocked(rows [][]schema.Value) {
	arity := o.inner.Signature().Arity()
	if arity == 0 {
		return
	}
	if o.sketches == nil {
		o.sketches = make([]*schema.ValueSketch, arity)
		for i := range o.sketches {
			o.sketches[i] = schema.NewValueSketch(0)
		}
	}
	for _, row := range rows {
		if len(row) != arity {
			continue
		}
		for i, v := range row {
			o.sketches[i].Add(v)
		}
	}
}

// Observations returns the raw counters collected so far.
func (o *Observed) Observations() (calls, fetches, rows int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.calls, o.fetches, o.rows
}

// ObservedStats derives service statistics from the collected
// traffic: erspi as rows per logical invocation, response time as
// mean per request–response, and the chunk size when paging was
// observed. Fields with no evidence keep the registered values.
func (o *Observed) ObservedStats() schema.Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.observedStatsLocked()
}

// observedStatsLocked is ObservedStats with o.mu already held.
func (o *Observed) observedStatsLocked() schema.Stats {
	st := o.inner.Signature().Statistics()
	if o.calls > 0 {
		st.ERSPI = float64(o.rows) / float64(o.calls)
	}
	if o.fetches > 0 {
		st.ResponseTime = o.elapsed / time.Duration(o.fetches)
	}
	if o.sawMore && o.maxPageRows > 0 {
		st.ChunkSize = o.maxPageRows
	}
	// Fold the observed value sketches into per-attribute
	// distributions. The most informative snapshot wins, measured by
	// *distinct* values seen, not raw row counts: row totals would be
	// the wrong yardstick — a hot key queried in a loop accumulates
	// unbounded duplicate rows without learning anything. An Exact
	// distribution (registration-time profiling over the full
	// relation) is only displaced when traffic has seen strictly more
	// distinct values (the relation outgrew the profile); an earlier
	// online snapshot is replaced whenever coverage has not shrunk,
	// so learned frequencies keep tracking traffic. Attributes
	// without traffic keep whatever the registration profiled. Each
	// refresh builds fresh Distribution snapshots (copy-on-write),
	// never mutating the published ones.
	if o.sketches != nil {
		dists := make([]*schema.Distribution, len(o.sketches))
		observed := false
		for i, sk := range o.sketches {
			cur := st.Distribution(i)
			dists[i] = cur
			if sk == nil || sk.Total() <= 0 {
				continue
			}
			built := sk.Build(refreshMCVs, refreshBuckets)
			replace := cur.Empty() ||
				(cur.Exact && built.Distinct > cur.Distinct) ||
				(!cur.Exact && built.Distinct >= cur.Distinct)
			if replace {
				dists[i] = built
				observed = true
			}
		}
		if observed {
			st.Dists = dists
		}
	}
	return st
}

// setNotify installs the refresh callback (the registry's epoch
// bump).
func (o *Observed) setNotify(fn func()) {
	o.mu.Lock()
	o.notify = fn
	o.mu.Unlock()
}

// Refresh publishes the observed statistics as the service's current
// snapshot, so subsequent optimizations use the refined profile (the
// periodic update of §5), and notifies the registry's epoch subsystem
// when the profile actually changed. It reports whether the
// signature's statistics changed.
//
// The publication is an atomic copy-on-write swap
// (schema.Signature.SetStats): statistics stay readable lock-free
// throughout the cost model, and a concurrent optimization never
// observes a half-applied refresh — each read sees one consistent
// snapshot, before or after. The epoch bump that follows the swap
// tells plan caches to invalidate or revalidate entries priced under
// the previous snapshot.
func (o *Observed) Refresh() bool {
	o.mu.Lock()
	observed := o.calls > 0
	st := o.observedStatsLocked()
	notify := o.notify
	o.mu.Unlock()
	if !observed {
		return false
	}
	return o.apply(st, notify)
}

// apply installs refreshed statistics as an atomic snapshot and fires
// the epoch notification when they differ from the current profile.
func (o *Observed) apply(st schema.Stats, notify func()) bool {
	sig := o.inner.Signature()
	if sig.Statistics().Same(st) {
		return false
	}
	sig.SetStats(st)
	if notify != nil {
		notify()
	}
	return true
}

// Drift measures how far the observed statistics have moved from the
// registered profile: the largest relative deviation across erspi,
// response time and chunk size (0 when nothing was observed). The
// executor's feedback policy uses it to refresh only when traffic
// contradicts the profile enough to matter.
func (o *Observed) Drift() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.calls == 0 {
		return 0
	}
	return driftBetween(o.observedStatsLocked(), o.inner.Signature().Statistics())
}

// driftBetween is the largest relative deviation between an observed
// and a registered statistics snapshot: over the scalar profile
// (erspi, response time, chunk size) and over the per-attribute value
// distributions. Distribution drift is summarized by two cheap
// proxies — the relative change in the distinct-value estimate and
// in the most common value's frequency — and a newly learned
// distribution where none existed counts as full (1.0) drift, so a
// MinDrift-gated feedback policy still publishes first-time value
// statistics.
func driftBetween(st, cur schema.Stats) float64 {
	rel := func(got, ref float64) float64 {
		d := math.Abs(got - ref)
		if d == 0 {
			return 0
		}
		if ref == 0 {
			return math.Inf(1)
		}
		return d / math.Abs(ref)
	}
	drift := rel(st.ERSPI, cur.ERSPI)
	drift = math.Max(drift, rel(st.ResponseTime.Seconds(), cur.ResponseTime.Seconds()))
	drift = math.Max(drift, rel(float64(st.ChunkSize), float64(cur.ChunkSize)))
	n := len(st.Dists)
	if len(cur.Dists) > n {
		n = len(cur.Dists)
	}
	topFrac := func(d *schema.Distribution) float64 {
		if len(d.MCVs) > 0 {
			return d.MCVs[0].Frac
		}
		if d.Distinct > 0 {
			return 1 / d.Distinct
		}
		return 0
	}
	for i := 0; i < n; i++ {
		a, b := st.Distribution(i), cur.Distribution(i)
		switch {
		case a.Empty() && b.Empty():
		case a.Empty() != b.Empty():
			drift = math.Max(drift, 1)
		default:
			drift = math.Max(drift, rel(a.Distinct, b.Distinct))
			drift = math.Max(drift, rel(topFrac(a), topFrac(b)))
		}
	}
	return drift
}

// FeedbackPolicy gates the runtime feedback loop: after a plan
// execution the runner offers each observed service a refresh, which
// is taken only when enough traffic accumulated and the profile
// drifted enough to matter. The zero value refreshes after every
// observed call, on any change.
type FeedbackPolicy struct {
	// MinCalls is the number of observed logical invocations required
	// before a refresh is considered (≤ 1 means every run).
	MinCalls int64
	// MinDrift is the relative statistics deviation (see Drift)
	// required before a refresh is taken; 0 refreshes on any change.
	MinDrift float64
}

// MaybeRefresh applies the policy: when the observation window is
// large enough and has drifted enough, the profile is refreshed and
// the window reset so the next decision sees fresh traffic. The
// snapshot and the reset happen under one lock acquisition, so
// observations arriving concurrently land in the next window instead
// of being silently discarded between them. It reports whether the
// profile changed.
func (o *Observed) MaybeRefresh(pol FeedbackPolicy) bool {
	min := pol.MinCalls
	if min < 1 {
		min = 1
	}
	o.mu.Lock()
	if o.calls < min {
		o.mu.Unlock()
		return false
	}
	st := o.observedStatsLocked()
	if pol.MinDrift > 0 && driftBetween(st, o.inner.Signature().Statistics()) < pol.MinDrift {
		o.mu.Unlock()
		return false
	}
	notify := o.notify
	o.resetLocked()
	o.mu.Unlock()
	return o.apply(st, notify)
}

// Reset clears the collected counters (e.g. after a Refresh, to
// observe a fresh window).
func (o *Observed) Reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.resetLocked()
}

func (o *Observed) resetLocked() {
	o.calls, o.fetches, o.rows, o.elapsed = 0, 0, 0, 0
	o.maxPageRows, o.sawMore = 0, false
}

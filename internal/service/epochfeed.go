package service

import (
	"strings"
	"sync"
)

// EpochBump is one (service, epoch) statistics notification — the
// unit of the cross-process cache-invalidation wire format: a
// coordinator gossips exactly these to remote plan caches, which
// apply them through PlanCache.InvalidateService just as a local
// subscriber would.
type EpochBump struct {
	Service string `json:"service"`
	Epoch   uint64 `json:"epoch"`
}

// EpochFeed is an asynchronous, coalescing fan-out of a registry's
// epoch bumps, for consumers that forward them somewhere slow (e.g.
// a gossip loop POSTing to remote workers). The registry's
// synchronous SubscribeEpochs callback must not block — an epoch
// bump fires on the statistics-refresh path — so the feed buffers
// bumps behind a mutex and signals a waiting consumer.
//
// Bumps are coalesced per service, keeping only the highest epoch:
// epochs are monotone and InvalidateService only compares for
// inequality, so delivering the latest bump subsumes any skipped
// intermediates. The feed therefore needs no unbounded queue: its
// pending state is at most one epoch per service.
type EpochFeed struct {
	mu      sync.Mutex
	pending map[string]uint64
	signal  chan struct{}
	reg     *Registry
	closed  bool
}

// NewEpochFeed subscribes a feed to the registry's epoch bumps.
// Close it to unsubscribe.
func (r *Registry) NewEpochFeed() *EpochFeed {
	f := &EpochFeed{
		pending: map[string]uint64{},
		signal:  make(chan struct{}, 1),
		reg:     r,
	}
	r.SubscribeEpochs(f, f.offer)
	return f
}

// offer records one bump and signals the consumer (non-blocking: the
// signal channel has capacity one and a pending signal is enough).
func (f *EpochFeed) offer(service string, epoch uint64) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	if old, ok := f.pending[service]; !ok || epoch > old {
		f.pending[service] = epoch
	}
	f.mu.Unlock()
	select {
	case f.signal <- struct{}{}:
	default:
	}
}

// Wait returns a channel that receives after new bumps arrive. One
// receive may cover many bumps; drain them with Next.
func (f *EpochFeed) Wait() <-chan struct{} { return f.signal }

// Next returns the coalesced pending bumps (sorted by service name,
// for deterministic delivery order) and clears them. It returns nil
// when nothing is pending.
func (f *EpochFeed) Next() []EpochBump {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.pending) == 0 {
		return nil
	}
	out := make([]EpochBump, 0, len(f.pending))
	for name, e := range f.pending {
		out = append(out, EpochBump{Service: name, Epoch: e})
	}
	f.pending = map[string]uint64{}
	sortBumps(out)
	return out
}

// Close unsubscribes the feed from the registry; pending bumps are
// discarded and further offers are ignored.
func (f *EpochFeed) Close() {
	f.mu.Lock()
	f.closed = true
	f.pending = nil
	f.mu.Unlock()
	f.reg.UnsubscribeEpochs(f)
}

// sortBumps orders bumps by service name (insertion sort: the slice
// is small — one entry per refreshed service).
func sortBumps(b []EpochBump) {
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && b[j].Service < b[j-1].Service; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}

// DistFingerprint returns a stable fingerprint of a service's current
// per-attribute value distributions — empty when the service is
// unknown or carries no value statistics. Serialized template cache
// entries record it per service, so an importing cache can tell
// whether its local statistics agree with the exporter's: matching
// fingerprints admit the warm skeleton as fresh, anything else enters
// stale and revalidates on first use. It implements the optimizer's
// FingerprintSource.
func (r *Registry) DistFingerprint(name string) string {
	svc, ok := r.Lookup(name)
	if !ok {
		return ""
	}
	st := svc.Signature().Statistics()
	if len(st.Dists) == 0 {
		return ""
	}
	var b strings.Builder
	empty := true
	for i, d := range st.Dists {
		if i > 0 {
			b.WriteByte(',')
		}
		if !d.Empty() {
			b.WriteString(d.Fingerprint())
			empty = false
		}
	}
	if empty {
		return ""
	}
	return b.String()
}

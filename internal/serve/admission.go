package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrSaturated reports that a request waited MaxQueueWait for an
// in-flight slot and none freed up: the server is saturated and the
// client should back off (HTTP 429 with Retry-After).
var ErrSaturated = errors.New("serve: server saturated, retry later")

// ErrDraining reports that the server is shutting down and admits no
// new work (HTTP 503).
var ErrDraining = errors.New("serve: server draining, not admitting requests")

// Admission is the bounded-concurrency gate in front of the serving
// endpoints: at most MaxInFlight requests execute at once, an
// arriving request waits at most MaxQueueWait for a slot (backpressure
// instead of unbounded queueing), and a draining server sheds
// everything immediately so graceful shutdown terminates. The zero
// value admits everything (no limit); use NewAdmission for a bounded
// gate.
type Admission struct {
	// MaxQueueWait bounds how long an arriving request may wait for a
	// slot; 0 rejects immediately when all slots are busy.
	MaxQueueWait time.Duration

	sem      chan struct{} // nil = unlimited
	mu       sync.Mutex
	inflight int
	draining bool
	idle     chan struct{} // closed when draining and inflight hits 0
}

// NewAdmission builds a gate admitting at most maxInFlight concurrent
// requests (≤ 0 means unlimited), shedding arrivals that would wait
// longer than maxQueueWait.
func NewAdmission(maxInFlight int, maxQueueWait time.Duration) *Admission {
	a := &Admission{MaxQueueWait: maxQueueWait}
	if maxInFlight > 0 {
		a.sem = make(chan struct{}, maxInFlight)
	}
	return a
}

// InFlight returns the number of admitted, unreleased requests.
func (a *Admission) InFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// Draining reports whether StartDrain has been called.
func (a *Admission) Draining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// note tracks one admitted request; returns false when draining won
// the race and the request must be shed.
func (a *Admission) note() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return false
	}
	a.inflight++
	return true
}

// Acquire admits one request, blocking up to MaxQueueWait for a free
// slot. On success it returns a release function the caller must
// invoke exactly once when the request finishes. It fails fast with
// ErrDraining during shutdown, ErrSaturated when no slot frees up in
// time, or the context's error if that expires first.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if a.Draining() {
		return nil, ErrDraining
	}
	if a.sem != nil {
		select {
		case a.sem <- struct{}{}:
		default:
			// All slots busy: wait, bounded.
			var timeout <-chan time.Time
			if a.MaxQueueWait > 0 {
				t := time.NewTimer(a.MaxQueueWait)
				defer t.Stop()
				timeout = t.C
			} else {
				ch := make(chan time.Time)
				close(ch)
				timeout = ch
			}
			select {
			case a.sem <- struct{}{}:
			case <-timeout:
				return nil, ErrSaturated
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	if !a.note() {
		if a.sem != nil {
			<-a.sem
		}
		return nil, ErrDraining
	}
	var once sync.Once
	return func() { once.Do(a.release) }, nil
}

// release returns one slot and signals the drain waiter when the last
// in-flight request finishes.
func (a *Admission) release() {
	if a.sem != nil {
		<-a.sem
	}
	a.mu.Lock()
	a.inflight--
	if a.draining && a.inflight == 0 && a.idle != nil {
		close(a.idle)
		a.idle = nil
	}
	a.mu.Unlock()
}

// StartDrain flips the gate into draining: every subsequent Acquire
// fails with ErrDraining; requests already admitted run to
// completion. Idempotent.
func (a *Admission) StartDrain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.draining = true
}

// Drain starts draining and waits until every admitted request has
// released, or until ctx expires (returning its error with work still
// in flight).
func (a *Admission) Drain(ctx context.Context) error {
	a.mu.Lock()
	a.draining = true
	if a.inflight == 0 {
		a.mu.Unlock()
		return nil
	}
	if a.idle == nil {
		a.idle = make(chan struct{})
	}
	idle := a.idle
	a.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

package serve

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestSlowLogRingEviction(t *testing.T) {
	l := NewSlowLog(3, 0)
	for i := 0; i < 5; i++ {
		l.Record(RequestRecord{Endpoint: "/query", Rows: i, Elapsed: 0.1})
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3 (ring capacity)", len(got))
	}
	// Newest first: rows 4, 3, 2 survive.
	for i, want := range []int{4, 3, 2} {
		if got[i].Rows != want {
			t.Fatalf("snapshot[%d].Rows = %d, want %d", i, got[i].Rows, want)
		}
	}
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(8, 50*time.Millisecond)
	l.Record(RequestRecord{Endpoint: "fast", Elapsed: 0.01})
	l.Record(RequestRecord{Endpoint: "slow", Elapsed: 0.2})
	got := l.Snapshot()
	if len(got) != 1 || got[0].Endpoint != "slow" {
		t.Fatalf("threshold kept %+v, want only the slow record", got)
	}
}

func TestSlowLogHandler(t *testing.T) {
	l := NewSlowLog(4, 0)
	l.Record(RequestRecord{Endpoint: "/query", Status: 200, Elapsed: 0.3, Calls: 7})
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []RequestRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Calls != 7 || recs[0].Status != 200 {
		t.Fatalf("handler returned %+v", recs)
	}
}

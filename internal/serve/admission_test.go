package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionUnlimitedZeroValue(t *testing.T) {
	var a Admission
	for i := 0; i < 100; i++ {
		release, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatalf("zero-value gate rejected: %v", err)
		}
		defer release()
	}
	if got := a.InFlight(); got != 100 {
		t.Fatalf("InFlight = %d, want 100", got)
	}
}

// TestAdmissionShedsWhenFull pins the deterministic shed: with every
// slot held and no queue wait, the next request is rejected with
// ErrSaturated immediately.
func TestAdmissionShedsWhenFull(t *testing.T) {
	a := NewAdmission(2, 0)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("full gate error = %v, want ErrSaturated", err)
	}
	r1()
	r1() // double release must be a no-op
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("freed slot still rejected: %v", err)
	}
	release()
	r2()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after all releases, want 0", got)
	}
}

func TestAdmissionQueueWait(t *testing.T) {
	a := NewAdmission(1, time.Second)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A queued request admits as soon as the holder releases.
	done := make(chan error, 1)
	go func() {
		release, err := a.Acquire(context.Background())
		if err == nil {
			release()
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r1()
	if err := <-done; err != nil {
		t.Fatalf("queued request rejected: %v", err)
	}

	// A queued request whose wait exceeds the bound is shed.
	a2 := NewAdmission(1, 20*time.Millisecond)
	hold, err := a2.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	start := time.Now()
	if _, err := a2.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("timed-out wait error = %v, want ErrSaturated", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("shed after only %v, wait bound is 20ms", waited)
	}
}

func TestAdmissionDrain(t *testing.T) {
	a := NewAdmission(4, 0)
	var releases []func()
	for i := 0; i < 3; i++ {
		release, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, release)
	}
	a.StartDrain()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining gate error = %v, want ErrDraining", err)
	}
	// Drain returns once the in-flight requests release.
	var wg sync.WaitGroup
	wg.Add(1)
	drainErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainErr <- a.Drain(ctx)
	}()
	for _, r := range releases {
		r()
	}
	wg.Wait()
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain = %v", err)
	}
	// Draining an idle gate returns immediately.
	if err := a.Drain(context.Background()); err != nil {
		t.Fatalf("idle Drain = %v", err)
	}
}

func TestAdmissionDrainTimeout(t *testing.T) {
	a := NewAdmission(1, 0)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := a.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck Drain = %v, want DeadlineExceeded", err)
	}
}

package serve

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// RequestRecord is one request's accounting entry: what ran, how long
// each phase took, what it cost in service calls, and how it ended.
// Records feed the slow-query log and are the unit the /metrics
// aggregates are derived from.
type RequestRecord struct {
	// Time is the request arrival time.
	Time time.Time `json:"time"`
	// Endpoint is the serving endpoint ("/query", "/optimize", …).
	Endpoint string `json:"endpoint"`
	// Query summarizes the request (template text or query text).
	Query string `json:"query,omitempty"`
	// Status is the HTTP status returned.
	Status int `json:"status"`
	// Elapsed is the total wall-clock duration in seconds.
	Elapsed float64 `json:"elapsed_seconds"`
	// OptimizeSeconds is the time spent in plan search/re-costing.
	OptimizeSeconds float64 `json:"optimize_seconds,omitempty"`
	// ExecuteSeconds is the time spent executing the plan.
	ExecuteSeconds float64 `json:"execute_seconds,omitempty"`
	// FirstRowMillis is the time from the start of plan execution to
	// its first result row, in milliseconds (absent when the
	// execution produced no rows) — the streaming runtime's
	// time-to-first-answer signal.
	FirstRowMillis float64 `json:"first_row_ms,omitempty"`
	// Calls is the total logical service calls the request issued.
	Calls int64 `json:"calls,omitempty"`
	// CacheClass classifies how the optimizer answered: "exact",
	// "template", "revalidated" or "miss".
	CacheClass string `json:"cache_class,omitempty"`
	// Rows is the number of result rows returned.
	Rows int `json:"rows,omitempty"`
	// Bytes is the response body size streamed to the client.
	Bytes int64 `json:"bytes,omitempty"`
	// Error carries the error message of a failed request.
	Error string `json:"error,omitempty"`
	// TraceID links the record to its stored span tree (GET
	// /trace/{id}) when the request was traced.
	TraceID string `json:"trace_id,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of the most recent request
// records at or above a latency threshold. It trades completeness for
// bounded memory: under heavy traffic the log always holds the latest
// Cap slow requests, and recording is O(1) with one short lock — an
// event-queue shape rather than a synchronous sink, so the serving
// path never blocks on observability.
type SlowLog struct {
	// Threshold is the minimum Elapsed for a record to enter the log;
	// 0 logs every request.
	Threshold time.Duration

	mu    sync.Mutex
	ring  []RequestRecord
	next  int
	count int
}

// NewSlowLog builds a log keeping the last cap qualifying records
// (cap ≤ 0 means 128).
func NewSlowLog(cap int, threshold time.Duration) *SlowLog {
	if cap <= 0 {
		cap = 128
	}
	return &SlowLog{Threshold: threshold, ring: make([]RequestRecord, cap)}
}

// Record offers one request record to the log; records faster than
// the threshold are dropped.
func (l *SlowLog) Record(r RequestRecord) {
	if time.Duration(r.Elapsed*float64(time.Second)) < l.Threshold {
		return
	}
	l.mu.Lock()
	l.ring[l.next] = r
	l.next = (l.next + 1) % len(l.ring)
	if l.count < len(l.ring) {
		l.count++
	}
	l.mu.Unlock()
}

// Len returns the number of records currently held.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Snapshot returns the held records newest-first.
func (l *SlowLog) Snapshot() []RequestRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RequestRecord, 0, l.count)
	for i := 1; i <= l.count; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Handler serves GET /slowlog as a JSON array, newest first.
func (l *SlowLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(l.Snapshot())
	})
}

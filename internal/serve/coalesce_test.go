package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// leadGate builds an fn whose execution the test controls: it signals
// started when the leader enters it (the flight is then registered,
// so later Do calls are guaranteed to join as waiters) and blocks
// until release closes.
func leadGate(executions *atomic.Int64, started chan<- struct{}, release <-chan struct{}, val any, err error) func() (any, error) {
	return func() (any, error) {
		executions.Add(1)
		close(started)
		<-release
		return val, err
	}
}

func TestCoalescerSharesOneExecution(t *testing.T) {
	var c Coalescer
	var executions atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	type out struct {
		val    any
		shared bool
		err    error
	}
	leaderDone := make(chan out, 1)
	go func() {
		v, s, err := c.Do(context.Background(), "k", leadGate(&executions, started, release, "answer", nil))
		leaderDone <- out{v, s, err}
	}()
	<-started

	const waiters = 8
	waiterDone := make(chan out, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, s, err := c.Do(context.Background(), "k", func() (any, error) {
				executions.Add(1)
				return "wrong leader", nil
			})
			waiterDone <- out{v, s, err}
		}()
	}
	// Give the waiters a moment to block on the flight, then let the
	// leader finish. Even if one raced past the flight's lifetime it
	// would only re-lead — caught by the executions counter below.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	lead := <-leaderDone
	if lead.shared || lead.err != nil || lead.val != "answer" {
		t.Fatalf("leader got (%v, shared=%v, %v), want (answer, false, nil)", lead.val, lead.shared, lead.err)
	}
	for i := 0; i < waiters; i++ {
		w := <-waiterDone
		if !w.shared || w.err != nil || w.val != "answer" {
			t.Fatalf("waiter %d got (%v, shared=%v, %v), want (answer, true, nil)", i, w.val, w.shared, w.err)
		}
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("fn executed %d times for %d callers, want 1", n, waiters+1)
	}
}

func TestCoalescerLeaderPrivateErrorElectsNewLeader(t *testing.T) {
	var c Coalescer
	var executions atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	budgetErr := &BudgetError{Reason: "deadline", Limit: "10ms"}

	leaderErr := make(chan error, 1)
	go func() {
		_, shared, err := c.Do(context.Background(), "k", leadGate(&executions, started, release, nil, budgetErr))
		if shared {
			t.Error("first leader reported shared=true")
		}
		leaderErr <- err
	}()
	<-started

	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, shared, err := c.Do(context.Background(), "k", func() (any, error) {
			executions.Add(1)
			return "retried", nil
		})
		// The waiter must not inherit the leader's budget trip: it
		// re-enters, leads its own execution and succeeds.
		if err != nil || v != "retried" || shared {
			t.Errorf("waiter got (%v, shared=%v, %v), want (retried, false, nil)", v, shared, err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)

	if err := <-leaderErr; !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("leader error = %v, want budget violation", err)
	}
	<-waiterDone
	if n := executions.Load(); n != 2 {
		t.Fatalf("fn executed %d times, want 2 (failed leader + re-elected waiter)", n)
	}
}

func TestCoalescerSharedErrorInherited(t *testing.T) {
	var c Coalescer
	var executions atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	svcErr := errors.New("service unavailable")

	go func() {
		c.Do(context.Background(), "k", leadGate(&executions, started, release, nil, svcErr))
	}()
	<-started

	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		_, shared, err := c.Do(context.Background(), "k", func() (any, error) {
			executions.Add(1)
			return nil, nil
		})
		if !errors.Is(err, svcErr) || !shared {
			t.Errorf("waiter got (shared=%v, %v), want the leader's shared error", shared, err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	<-waiterDone
	if n := executions.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1 — a shared error must not trigger re-election", n)
	}
}

func TestCoalescerWaiterDetachesOnCancel(t *testing.T) {
	var c Coalescer
	var executions atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", leadGate(&executions, started, release, "late answer", nil))
		leaderDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, shared, err := c.Do(ctx, "k", func() (any, error) { return nil, nil })
		if !shared {
			t.Error("detaching waiter reported shared=false")
		}
		waiterDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("detached waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter did not detach after its context was cancelled")
	}
	// The flight must keep running for the leader: it finishes cleanly
	// after the waiter left.
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader error after waiter detached: %v", err)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
}

func TestCoalescerWaiterDetachReportsBudget(t *testing.T) {
	var c Coalescer
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	var executions atomic.Int64

	go func() {
		c.Do(context.Background(), "k", leadGate(&executions, started, release, nil, nil))
	}()
	<-started

	b := NewBudget(0, 1)
	b.Charge(2) // trip the call budget
	if b.Err() == nil {
		t.Fatal("budget did not trip")
	}
	ctx, cancel := context.WithCancel(WithBudget(context.Background(), b))
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", func() (any, error) { return nil, nil })
		waiterDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case err := <-waiterDone:
		// The waiter's own budget violation wins over the bare
		// context error, so the client sees budget_exceeded JSON.
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("detached waiter error = %v, want its budget violation", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter did not detach")
	}
}

func TestCoalescerDistinctKeysDoNotShare(t *testing.T) {
	var c Coalescer
	var executions atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		key := string(rune('a' + i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := c.Do(context.Background(), key, func() (any, error) {
				executions.Add(1)
				return key, nil
			})
			if err != nil || shared || v != key {
				t.Errorf("key %q got (%v, shared=%v, %v)", key, v, shared, err)
			}
		}()
	}
	wg.Wait()
	if n := executions.Load(); n != 4 {
		t.Fatalf("fn executed %d times for 4 distinct keys, want 4", n)
	}
}

package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBudgetUnlimited(t *testing.T) {
	b := NewBudget(0, 0)
	if err := b.Check(); err != nil {
		t.Fatalf("unlimited budget tripped: %v", err)
	}
	if err := b.Charge(1_000_000); err != nil {
		t.Fatalf("unlimited budget tripped on charge: %v", err)
	}
	if got := b.Calls(); got != 1_000_000 {
		t.Fatalf("Calls = %d, want 1000000", got)
	}
	if _, ok := b.CallsLeft(); ok {
		t.Fatal("uncapped budget reported CallsLeft ok")
	}
	if _, ok := b.Deadline(); ok {
		t.Fatal("deadline-free budget reported a deadline")
	}
}

func TestBudgetCallCap(t *testing.T) {
	b := NewBudget(0, 3)
	if err := b.Charge(2); err != nil {
		t.Fatalf("within cap: %v", err)
	}
	if left, ok := b.CallsLeft(); !ok || left != 1 {
		t.Fatalf("CallsLeft = %d,%v, want 1,true", left, ok)
	}
	if err := b.Charge(1); err != nil {
		t.Fatalf("at cap: %v", err)
	}
	err := b.Charge(1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over cap error = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != "calls" {
		t.Fatalf("reason = %+v, want calls", err)
	}
	// Sticky: a later Check reports the same violation.
	if err := b.Check(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("tripped budget Check = %v", err)
	}
}

func TestBudgetDeadline(t *testing.T) {
	b := NewBudget(time.Nanosecond, 0)
	time.Sleep(time.Millisecond)
	err := b.Check()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expired deadline Check = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != "deadline" {
		t.Fatalf("reason = %+v, want deadline", err)
	}
}

func TestBudgetConcurrentChargeTripsOnce(t *testing.T) {
	b := NewBudget(0, 50)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if err := b.Charge(1); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	first := b.Check()
	if !errors.Is(first, ErrBudgetExceeded) {
		t.Fatalf("over-charged budget not tripped: %v", first)
	}
	for i, err := range errs {
		if err != nil && err != first {
			t.Fatalf("goroutine %d saw a different violation: %v vs %v", i, err, first)
		}
	}
}

func TestBudgetContext(t *testing.T) {
	b := NewBudget(time.Hour, 5)
	ctx, cancel := b.Context(context.Background())
	defer cancel()
	if got := FromContext(ctx); got != b {
		t.Fatalf("FromContext = %p, want %p", got, b)
	}
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("budget deadline not applied to context")
	}
	want, _ := b.Deadline()
	if !dl.Equal(want) {
		t.Fatalf("context deadline %v != budget deadline %v", dl, want)
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context returned a budget")
	}
}

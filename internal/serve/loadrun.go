package serve

import "sort"

// LoadRun is the JSON report of one closed-loop load run against a
// serving fleet (`mdqbench -load`), and the committed-baseline format
// `loadgate` compares runs against. Latencies are client-observed,
// reconciliation fields are read back from the server's /metrics after
// the run.
type LoadRun struct {
	// Note documents provenance (machine, date, command).
	Note string `json:"note,omitempty"`
	// URL is the coordinator the run drove.
	URL string `json:"url,omitempty"`
	// Clients is the closed-loop concurrency.
	Clients int `json:"clients"`
	// WarmupSeconds / DurationSeconds are the configured phases; only
	// requests completed inside the measured window are sampled.
	WarmupSeconds   float64 `json:"warmup_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
	// Requests / Errors / Shed count measured-window completions:
	// successes, failures, and admission rejections (429/503).
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Shed     int64 `json:"shed"`
	// TotalSent counts every request the run issued, warmup included —
	// the number that must reconcile with the server's
	// mdq_requests_total for the driven endpoint.
	TotalSent int64 `json:"total_sent"`
	// Throughput is measured successes per measured second.
	Throughput float64 `json:"throughput_rps"`
	// Latency summary of measured successes, milliseconds.
	MeanMillis float64 `json:"mean_ms"`
	P50Millis  float64 `json:"p50_ms"`
	P95Millis  float64 `json:"p95_ms"`
	P99Millis  float64 `json:"p99_ms"`
	// FirstByteP50Millis / FirstByteP95Millis summarize the
	// client-observed time to first response byte of measured
	// successes — the wire-side counterpart of the server's
	// first_row_ms slowlog field (server first row necessarily
	// precedes the response's first byte).
	FirstByteP50Millis float64 `json:"first_byte_p50_ms,omitempty"`
	FirstByteP95Millis float64 `json:"first_byte_p95_ms,omitempty"`
	// Calls / Rows sum the per-response service-call and answer-row
	// accounting of measured successes.
	Calls int64 `json:"service_calls"`
	Rows  int64 `json:"rows"`
	// ServerRequests / ServerCalls are read from GET /metrics after
	// the run (0 when the snapshot was unavailable): total requests
	// the server counted on the driven endpoint, and total logical
	// service calls it charged.
	ServerRequests float64 `json:"server_requests,omitempty"`
	ServerCalls    float64 `json:"server_calls,omitempty"`
}

// Percentile returns the q-th percentile (0 < q ≤ 100) of samples by
// the nearest-rank method; 0 on an empty slice. The input is sorted in
// place.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	rank := int(q/100*float64(len(samples)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(samples) {
		rank = len(samples)
	}
	return samples[rank-1]
}

package serve

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestEventBusOrderingAndCursor(t *testing.T) {
	b := NewEventBus(8)
	b.Publish("retry", map[string]string{"op": "search"})
	b.Publish("membership", map[string]string{"to": "down"})
	b.PublishRecord(RequestRecord{Endpoint: "/query", Elapsed: 1.5})

	all := b.Snapshot(0)
	if len(all) != 3 {
		t.Fatalf("got %d events, want 3", len(all))
	}
	for i, e := range all {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Time.IsZero() {
			t.Fatalf("event %d has zero time", i)
		}
	}
	if all[0].Type != "retry" || all[1].Type != "membership" || all[2].Type != "slow_query" {
		t.Fatalf("types = %s %s %s", all[0].Type, all[1].Type, all[2].Type)
	}
	if all[2].Record == nil || all[2].Record.Endpoint != "/query" {
		t.Fatalf("slow_query record = %+v", all[2].Record)
	}

	// The after-cursor resumes past already-seen events.
	tail := b.Snapshot(2)
	if len(tail) != 1 || tail[0].Seq != 3 {
		t.Fatalf("Snapshot(2) = %+v, want just seq 3", tail)
	}
	if got := b.Snapshot(99); len(got) != 0 {
		t.Fatalf("Snapshot(99) = %+v, want empty", got)
	}
}

func TestEventBusDropCounter(t *testing.T) {
	b := NewEventBus(4)
	var hookTotal int
	b.OnDrop = func(n int) { hookTotal += n }
	for i := 0; i < 10; i++ {
		b.Publish("retry", nil)
	}
	if d := b.Dropped(); d != 6 {
		t.Fatalf("Dropped() = %d, want 6", d)
	}
	if hookTotal != 6 {
		t.Fatalf("OnDrop saw %d, want 6", hookTotal)
	}
	evs := b.Snapshot(0)
	if len(evs) != 4 {
		t.Fatalf("buffer holds %d, want 4", len(evs))
	}
	// The survivors are the newest four, still in order.
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("survivor seqs %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}
}

// TestEventBusNilSafety: a nil bus swallows publishes, so call sites
// never need to guard.
func TestEventBusNilSafety(t *testing.T) {
	var b *EventBus
	b.Publish("retry", nil)
	b.PublishRecord(RequestRecord{})
	if b.Dropped() != 0 || b.Snapshot(0) != nil {
		t.Fatal("nil bus not inert")
	}
}

func TestEventBusHandlerNDJSON(t *testing.T) {
	b := NewEventBus(8)
	b.Publish("budget", map[string]string{"reason": "calls"})
	b.Publish("retry", map[string]string{"op": "execute"})
	b.PublishRecord(RequestRecord{Endpoint: "/query", Time: time.Now()})

	rr := httptest.NewRecorder()
	b.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/events", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var lines []Event
	sc := bufio.NewScanner(rr.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 3 {
		t.Fatalf("handler streamed %d events, want 3", len(lines))
	}
	if lines[0].Fields["reason"] != "calls" {
		t.Fatalf("first event fields = %v", lines[0].Fields)
	}

	// ?after=N resumes mid-stream.
	rr = httptest.NewRecorder()
	b.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/events?after=2", nil))
	lines = nil
	sc = bufio.NewScanner(rr.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 1 || lines[0].Seq != 3 || lines[0].Type != "slow_query" {
		t.Fatalf("?after=2 = %+v, want just the slow_query", lines)
	}
}

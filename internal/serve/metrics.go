package serve

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a dependency-free metrics registry rendering the
// Prometheus text exposition format (counters, gauges, cumulative
// histograms). It exists so the serving layer can expose GET /metrics
// without pulling a client library into a module that otherwise has
// no external dependencies. All instruments are safe for concurrent
// use; registration is idempotent (asking for an existing name
// returns the existing instrument, so handlers and middleware can
// re-resolve instruments without plumbing).
type Metrics struct {
	mu     sync.Mutex
	order  []string // registration order of metric family names
	family map[string]*family
}

// family is one metric name: its help text, kind, and the per-label
// children (the empty label set is the "" child).
type family struct {
	name string
	help string
	kind string // "counter", "gauge", "histogram"
	mu   sync.Mutex
	keys []string // insertion order of label keys
	kids map[string]instrument
	// bounds apply to histogram children.
	bounds []float64
}

// instrument is what a family's children have in common: they render
// themselves as exposition lines.
type instrument interface {
	render(w *strings.Builder, name, labels string)
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{family: map[string]*family{}}
}

// lookup returns (creating if needed) the named family, enforcing
// kind consistency.
func (m *Metrics) lookup(name, help, kind string, bounds []float64) *family {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.family[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, kids: map[string]instrument{}, bounds: bounds}
		m.family[name] = f
		m.order = append(m.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("serve: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// child returns (creating if needed) one labeled instrument of a
// family. labels is the rendered {k="v",…} string, "" for none.
func (f *family) child(labels string, make func() instrument) instrument {
	f.mu.Lock()
	defer f.mu.Unlock()
	in, ok := f.kids[labels]
	if !ok {
		in = make()
		f.kids[labels] = in
		f.keys = append(f.keys, labels)
	}
	return in
}

// Labels renders a label set deterministically (sorted by key), so
// the same set always maps to the same child.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("serve: Labels takes key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing float64.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by v (v must be ≥ 0).
func (c *Counter) Add(v float64) {
	for {
		cur := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(cur) + v)
		if c.bits.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// render implements instrument.
func (c *Counter) render(w *strings.Builder, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(c.Value()))
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) {
	for {
		cur := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(cur) + v)
		if g.bits.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// render implements instrument.
func (g *Gauge) render(w *strings.Builder, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// Histogram is a cumulative histogram over fixed bucket upper bounds
// (exclusive of +Inf, which is implicit). Observations are atomic;
// rendering takes a consistent-enough snapshot for monitoring use.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sumBits
}

// sumBits is an atomic float64 accumulator shared by Histogram.
type sumBits struct {
	bits atomic.Uint64
}

func (s *sumBits) add(v float64) {
	for {
		cur := s.bits.Load()
		next := math.Float64bits(math.Float64frombits(cur) + v)
		if s.bits.CompareAndSwap(cur, next) {
			return
		}
	}
}

func (s *sumBits) value() float64 { return math.Float64frombits(s.bits.Load()) }

// DefaultLatencyBuckets covers 1 ms to ~2 minutes in powers of ~3 —
// wide enough for both in-memory optimizations and scaled simulated
// service time.
var DefaultLatencyBuckets = []float64{
	0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 120,
}

// newHistogram builds a histogram over sorted bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
		}
	}
	h.count.Add(1)
	h.add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.value() }

// render implements instrument: cumulative _bucket lines, then _sum
// and _count.
func (h *Histogram) render(w *strings.Builder, name, labels string) {
	base := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	bucketLabels := func(le string) string {
		if base == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", base, le)
	}
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(formatFloat(b)), h.counts[i].Load())
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels("+Inf"), h.count.Load())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Counter returns the named unlabeled counter, registering it on
// first use.
func (m *Metrics) Counter(name, help string) *Counter {
	return m.CounterL(name, help)
}

// CounterL returns the named counter child for a label set rendered
// by Labels (none for the unlabeled child).
func (m *Metrics) CounterL(name, help string, labels ...string) *Counter {
	f := m.lookup(name, help, "counter", nil)
	return f.child(Labels(labels...), func() instrument { return &Counter{} }).(*Counter)
}

// Gauge returns the named unlabeled gauge, registering it on first
// use.
func (m *Metrics) Gauge(name, help string) *Gauge {
	return m.GaugeL(name, help)
}

// GaugeL returns the named gauge child for a label set rendered by
// Labels (none for the unlabeled child) — e.g. the per-state fleet
// membership gauges mdq_fleet_workers{state="up"|"suspect"|"down"}.
func (m *Metrics) GaugeL(name, help string, labels ...string) *Gauge {
	f := m.lookup(name, help, "gauge", nil)
	return f.child(Labels(labels...), func() instrument { return &Gauge{} }).(*Gauge)
}

// Histogram returns the named unlabeled histogram over bounds (the
// bounds of the first registration win), registering it on first use.
func (m *Metrics) Histogram(name, help string, bounds []float64) *Histogram {
	return m.HistogramL(name, help, bounds)
}

// HistogramL returns the named histogram child for a label set.
func (m *Metrics) HistogramL(name, help string, bounds []float64, labels ...string) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	f := m.lookup(name, help, "histogram", bounds)
	return f.child(Labels(labels...), func() instrument { return newHistogram(f.bounds) }).(*Histogram)
}

// WriteTo renders the whole registry in Prometheus text exposition
// format, families in registration order, children in creation order.
func (m *Metrics) WriteTo(w *strings.Builder) {
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = m.family[n]
	}
	m.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		kids := make([]instrument, len(keys))
		for i, k := range keys {
			kids[i] = f.kids[k]
		}
		f.mu.Unlock()
		for i, in := range kids {
			in.render(w, f.name, keys[i])
		}
	}
}

// Render returns the exposition text.
func (m *Metrics) Render() string {
	var b strings.Builder
	m.WriteTo(&b)
	return b.String()
}

// Handler serves GET /metrics.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, m.Render())
	})
}

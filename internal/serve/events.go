package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Event is one entry of the structured audit stream: a slow query, a
// membership transition, a dispatch retry, a budget trip. Events are
// totally ordered by Seq (assigned at publish under one lock), so
// consumers can correlate cause and effect across subsystems — a
// worker going suspect, the retries it caused, and the slow queries
// that resulted appear in publication order.
type Event struct {
	// Seq is the event's position in the stream (1-based, gapless
	// except across drops).
	Seq uint64 `json:"seq"`
	// Time is when the event was published.
	Time time.Time `json:"time"`
	// Type classifies the event ("slow_query", "membership", "retry",
	// "budget", …).
	Type string `json:"type"`
	// Fields carries the event payload as flat key→value pairs.
	Fields map[string]string `json:"fields,omitempty"`
	// Record carries the full request record of a "slow_query" event.
	Record *RequestRecord `json:"record,omitempty"`
}

// EventBus is a bounded, ordered, in-memory event stream — the
// audit-queue shape the slowlog alone lacked: one merged, sequenced
// feed of everything operationally notable. Publishing is O(1) under
// one short lock and never blocks the serving path; past capacity
// the oldest events are overwritten and counted as dropped, so slow
// consumers lose history, never throughput. The zero bus is not
// usable; build one with NewEventBus. A nil bus drops everything,
// so instrumented paths publish unconditionally.
type EventBus struct {
	// OnDrop, when set, is called with the number of events evicted
	// before a consumer could have seen them (mdqserve counts these
	// as mdq_events_dropped_total). Called under the bus lock; keep
	// it O(1).
	OnDrop func(n int)

	mu      sync.Mutex
	ring    []Event
	next    int
	count   int
	seq     uint64
	dropped uint64
}

// NewEventBus builds a bus keeping the last cap events (cap ≤ 0
// means 256).
func NewEventBus(cap int) *EventBus {
	if cap <= 0 {
		cap = 256
	}
	return &EventBus{ring: make([]Event, cap)}
}

// Publish appends an event with the given type and payload fields.
// Nil-safe: a nil bus drops the event.
func (b *EventBus) Publish(typ string, fields map[string]string) {
	b.publish(Event{Type: typ, Fields: fields})
}

// PublishRecord appends a "slow_query" event carrying a full request
// record. Nil-safe.
func (b *EventBus) PublishRecord(rec RequestRecord) {
	b.publish(Event{Type: "slow_query", Record: &rec})
}

func (b *EventBus) publish(e Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	e.Time = time.Now()
	if b.count == len(b.ring) {
		// Overwriting the oldest buffered event: it is gone before any
		// future consumer can read it.
		b.dropped++
		if b.OnDrop != nil {
			b.OnDrop(1)
		}
	}
	b.ring[b.next] = e
	b.next = (b.next + 1) % len(b.ring)
	if b.count < len(b.ring) {
		b.count++
	}
	b.mu.Unlock()
}

// Dropped returns the total number of events evicted unread.
func (b *EventBus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Snapshot returns the buffered events with Seq > after, oldest
// first. after=0 returns everything buffered.
func (b *EventBus) Snapshot(after uint64) []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, b.count)
	for i := 0; i < b.count; i++ {
		e := b.ring[(b.next-b.count+i+len(b.ring))%len(b.ring)]
		if e.Seq > after {
			out = append(out, e)
		}
	}
	return out
}

// Handler serves GET /events as newline-delimited JSON, oldest
// buffered event first. ?after=N resumes past a previously seen
// sequence number, so a polling consumer reads each event once;
// events evicted before the consumer returned are reflected in the
// bus's drop counter, not silently skipped sequence numbers alone.
func (b *EventBus) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		var after uint64
		if s := r.URL.Query().Get("after"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad after", http.StatusBadRequest)
				return
			}
			after = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range b.Snapshot(after) {
			if enc.Encode(e) != nil {
				return
			}
		}
	})
}

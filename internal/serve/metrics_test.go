package serve

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestMetricsRender(t *testing.T) {
	m := NewMetrics()
	m.Counter("mdq_requests_total", "Requests served.").Add(3)
	m.CounterL("mdq_errors_total", "Errors by code.", "code", "429").Inc()
	m.CounterL("mdq_errors_total", "Errors by code.", "code", "503").Add(2)
	m.Gauge("mdq_inflight", "In-flight requests.").Set(7)
	h := m.Histogram("mdq_request_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	text := m.Render()
	for _, want := range []string{
		"# HELP mdq_requests_total Requests served.",
		"# TYPE mdq_requests_total counter",
		"mdq_requests_total 3",
		`mdq_errors_total{code="429"} 1`,
		`mdq_errors_total{code="503"} 2`,
		"# TYPE mdq_inflight gauge",
		"mdq_inflight 7",
		"# TYPE mdq_request_seconds histogram",
		`mdq_request_seconds_bucket{le="0.1"} 1`,
		`mdq_request_seconds_bucket{le="1"} 2`,
		`mdq_request_seconds_bucket{le="+Inf"} 3`,
		"mdq_request_seconds_sum 5.55",
		"mdq_request_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestMetricsIdempotentRegistration(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("c", "help")
	b := m.Counter("c", "help")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registered counter does not share state")
	}
}

func TestMetricsLabelsDeterministic(t *testing.T) {
	if Labels("b", "2", "a", "1") != Labels("a", "1", "b", "2") {
		t.Fatal("label order changed the rendered set")
	}
	if got := Labels("svc", `he"llo`); got != `{svc="he\"llo"}` {
		t.Fatalf("quoting = %s", got)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Counter("c", "h").Inc()
				m.Histogram("h", "h", nil).Observe(0.01)
				m.Gauge("g", "h").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("c", "h").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %v, want 8000", got)
	}
	if got := m.Histogram("h", "h", nil).Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %v, want 8000", got)
	}
}

func TestMetricsHandler(t *testing.T) {
	m := NewMetrics()
	m.Counter("x_total", "x").Inc()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %s", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x_total 1") {
		t.Fatalf("handler body missing sample:\n%s", buf[:n])
	}
}

package serve

import (
	"context"
	"errors"
	"sync"
)

// Coalescer deduplicates identical in-flight work: concurrent Do
// calls with the same key attach to one execution of fn (the first
// caller leads, the rest wait) and share its outcome — the
// singleflight layer behind `mdqserve -coalesce`, where N users
// asking the same question at the same moment cost one
// optimize+execute instead of N.
//
// Per-caller budget semantics are preserved: a waiter whose context
// ends (budget deadline, client disconnect) detaches with its own
// error while the leader keeps running for the remaining waiters; and
// a leader that fails for reasons private to its own request — its
// budget tripped, its client cancelled — does not poison the flight:
// those waiters retry, electing a new leader among themselves.
// Errors that would hit any caller alike (a service failure, an
// infeasible plan) are shared.
type Coalescer struct {
	// Private, when non-nil, overrides the classification of leader
	// errors: a private error makes waiters retry instead of
	// inheriting it. The default treats context cancellation,
	// context deadline expiry and budget violations as private.
	Private func(error) bool

	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one in-progress execution; val/err are written before
// done closes, so waiters read them race-free.
type flight struct {
	done    chan struct{}
	val     any
	err     error
	private bool
}

// Do executes fn once among concurrent callers sharing key and
// returns its outcome. shared reports whether this caller waited on
// another's execution (true) or led its own (false); the serving
// layer counts shared returns as mdq_query_coalesced_total. A waiter
// whose ctx ends before the flight finishes returns its budget's
// violation (or ctx.Err()) with shared=true — the flight continues
// without it. fn runs under the leader's own context; Do itself never
// cancels it.
func (c *Coalescer) Do(ctx context.Context, key string, fn func() (any, error)) (val any, shared bool, err error) {
	for {
		c.mu.Lock()
		if c.flights == nil {
			c.flights = map[string]*flight{}
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.private {
					// The leader aborted for reasons of its own
					// (budget, cancellation); its outcome says nothing
					// about ours. Re-enter: we may lead now.
					continue
				}
				return f.val, true, f.err
			case <-ctx.Done():
				return nil, true, detachErr(ctx)
			}
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		val, err = fn()
		f.val, f.err = val, err
		f.private = err != nil && c.isPrivate(err)
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
		return val, false, err
	}
}

// isPrivate reports whether a leader error is specific to the
// leader's own request rather than the shared work.
func (c *Coalescer) isPrivate(err error) bool {
	if c.Private != nil {
		return c.Private(err)
	}
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrBudgetExceeded)
}

// detachErr resolves what a detaching waiter reports: its budget's
// violation when one tripped (clean budget_exceeded JSON upstream),
// otherwise the bare context error.
func detachErr(ctx context.Context) error {
	if b := FromContext(ctx); b != nil {
		if err := b.Err(); err != nil {
			return err
		}
	}
	return ctx.Err()
}

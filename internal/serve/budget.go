// Package serve is the production serving layer shared by mdqserve
// and mdqworker: per-query execution budgets (deadline + service-call
// caps) carried on the request context and enforced deep inside the
// optimizer and executor, admission control with backpressure for a
// saturated fleet, a ring-buffered slow-query log, and a
// dependency-free Prometheus-text metrics registry. The package
// imports nothing from the rest of the module, so every layer —
// internal/opt, internal/exec, internal/dist, the CLIs — can depend
// on it without cycles.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrBudgetExceeded is the sentinel every budget violation wraps:
// errors.Is(err, ErrBudgetExceeded) detects an aborted query whatever
// layer tripped the limit.
var ErrBudgetExceeded = errors.New("serve: query budget exceeded")

// BudgetError reports which limit a query ran out of. It wraps
// ErrBudgetExceeded.
type BudgetError struct {
	// Reason is "deadline" or "calls".
	Reason string
	// Limit echoes the configured limit (the deadline's duration or
	// the call cap) for the error message.
	Limit string
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("serve: query budget exceeded: %s limit %s reached", e.Reason, e.Limit)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) true.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Budget is one query's execution budget: an absolute deadline and a
// cap on the logical service calls the query may issue. The zero
// limits mean "unlimited". A Budget is carried on the request context
// (WithBudget/FromContext) and consulted by the optimizer's search
// walk, the executor's service invoker, and the distributed
// coordinator's fragment dispatch, so an expired deadline or an
// exhausted call budget aborts the query cleanly wherever it happens
// to be. All methods are safe for concurrent use — execution charges
// calls from many goroutines at once.
//
// Once a limit trips, the budget stays tripped (Err is sticky): every
// later Check/Charge in any goroutine reports the same violation, so
// a query's partial work cannot race past the first abort.
type Budget struct {
	deadline time.Time     // zero = no deadline
	dur      time.Duration // the configured relative deadline, for messages
	maxCalls int64         // 0 = unlimited
	calls    atomic.Int64
	tripped  atomic.Pointer[BudgetError]
}

// NewBudget builds a budget from relative limits: d > 0 sets the
// deadline d from now, maxCalls > 0 caps the logical service calls.
// Both zero returns a budget that never trips (still usable for call
// accounting).
func NewBudget(d time.Duration, maxCalls int64) *Budget {
	b := &Budget{maxCalls: maxCalls, dur: d}
	if d > 0 {
		b.deadline = time.Now().Add(d)
	}
	return b
}

// Deadline returns the absolute deadline and whether one is set.
func (b *Budget) Deadline() (time.Time, bool) {
	return b.deadline, !b.deadline.IsZero()
}

// Remaining returns the time left before the deadline; ok is false
// when no deadline is set.
func (b *Budget) Remaining() (time.Duration, bool) {
	if b.deadline.IsZero() {
		return 0, false
	}
	return time.Until(b.deadline), true
}

// Calls returns the logical service calls charged so far.
func (b *Budget) Calls() int64 { return b.calls.Load() }

// CallsLeft returns the remaining call budget; ok is false when the
// budget is uncapped.
func (b *Budget) CallsLeft() (int64, bool) {
	if b.maxCalls <= 0 {
		return 0, false
	}
	left := b.maxCalls - b.calls.Load()
	if left < 0 {
		left = 0
	}
	return left, true
}

// trip records the first violation and returns the sticky error.
func (b *Budget) trip(reason, limit string) error {
	e := &BudgetError{Reason: reason, Limit: limit}
	b.tripped.CompareAndSwap(nil, e)
	return b.tripped.Load()
}

// Err returns the budget violation if one has occurred: the sticky
// record of an earlier trip, or a deadline that has passed since.
// nil means the query may keep working.
func (b *Budget) Err() error {
	if e := b.tripped.Load(); e != nil {
		return e
	}
	if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
		return b.trip("deadline", b.dur.String())
	}
	return nil
}

// Check is Err under a name that reads as a verb at call sites
// (`if err := budget.Check(); err != nil { … }`).
func (b *Budget) Check() error { return b.Err() }

// Charge accounts n logical service calls against the budget and
// returns the violation if the cap (or the deadline) is now exceeded.
// The calls are recorded even when uncapped, so per-request
// accounting can read Calls afterwards.
func (b *Budget) Charge(n int64) error {
	total := b.calls.Add(n)
	if b.maxCalls > 0 && total > b.maxCalls {
		return b.trip("calls", fmt.Sprintf("%d", b.maxCalls))
	}
	return b.Err()
}

// Context returns a child context that carries the budget and — when
// a deadline is set — expires with it, so everything downstream that
// honors context cancellation (service invocations, fragment streams
// over HTTP) aborts when the budget does. The CancelFunc must be
// called to release the timer.
func (b *Budget) Context(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx = WithBudget(ctx, b)
	if b.deadline.IsZero() {
		return context.WithCancel(ctx)
	}
	return context.WithDeadline(ctx, b.deadline)
}

// budgetKey is the context key for the request budget.
type budgetKey struct{}

// WithBudget attaches a budget to a context.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// FromContext returns the context's budget, or nil when the request
// carries none.
func FromContext(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}

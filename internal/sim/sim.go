// Package sim is a deterministic discrete-event simulator of plan
// execution: it replays exactly the semantics of the exec package
// (logical caching, chunked fetching, join strategies) while
// advancing a virtual clock by the simulated service times reported
// by the services. It produces the makespan measurements of the
// paper's Figure 11 reproducibly, without sleeping.
//
// The model: every service node is a station. In sequential mode
// (the paper's base setting) a station serves one invocation at a
// time from a FIFO queue; in parallel-dispatch mode (§6's separate
// multithreading test) every queued invocation is served
// immediately by its own thread. Parallel branches of the plan
// overlap naturally. Join nodes take no service time; they fire
// when both input branches have completed, traversing the Cartesian
// plane in the strategy's order.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"mdq/internal/card"
	"mdq/internal/cq"
	"mdq/internal/exec"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/service"
)

// Simulator configures a virtual-time execution.
type Simulator struct {
	// Registry resolves services (their Invoke must be pure
	// computation reporting Elapsed, as tabsvc does).
	Registry *service.Registry
	// Cache is the logical caching level (§5.1).
	Cache card.CacheMode
	// K stops the simulation after k results reach the output; 0
	// drains the plan.
	K int
	// ParallelCalls serves every queued invocation of a station
	// concurrently (infinite servers) instead of one at a time.
	ParallelCalls bool
	// Pipelined lets a station start serving as soon as tuples
	// arrive. The paper's engine materializes each node before its
	// dependents start (plan S's measured 374 s is the exact serial
	// sum of its calls), so the faithful default is stage-synchronous
	// execution; pipelining is the ablation our engine adds.
	Pipelined bool
}

// Result reports a simulated execution.
type Result struct {
	// Rows are the head projections in production order.
	Rows [][]schema.Value
	// Makespan is the virtual time at which the run completed (the
	// k-th answer for k-limited runs, otherwise full drain).
	Makespan time.Duration
	// FirstAnswer is the virtual time at which the first result
	// reached the output — the quantity the time-to-screen metric
	// estimates (§2.3).
	FirstAnswer time.Duration
	// Stats carries per-service invocation and fetch counts.
	Stats exec.Stats
	// BusyTime sums all service time spent (the sequential-execution
	// total).
	BusyTime time.Duration
}

// event is a scheduled simulator action.
type event struct {
	at   time.Duration
	seq  int64
	node int
	act  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// station is the simulation state of one plan node.
type station struct {
	node *plan.Node
	iv   *exec.NodeInvoker

	queue  []exec.Tuple
	busy   int
	open   []int // per in-edge: number of open upstream producers
	closed bool
	// join buffers, indexed by in-edge.
	buf [2][]exec.Tuple
}

type simulation struct {
	sim   *Simulator
	plan  *plan.Plan
	ix    *exec.VarIndex
	cache exec.Cache

	now      time.Duration
	seq      int64
	events   eventQueue
	stations []*station
	calls    map[string]*service.Counter

	rows     [][]schema.Value
	first    time.Duration
	busy     time.Duration
	finished bool
	err      error
}

// Run simulates the plan and returns rows, call counts and the
// virtual makespan.
func (s *Simulator) Run(ctx context.Context, p *plan.Plan) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sm := &simulation{
		sim:   s,
		plan:  p,
		ix:    exec.NewVarIndex(p),
		cache: exec.NewCache(s.Cache),
		calls: map[string]*service.Counter{},
	}
	sm.stations = make([]*station, len(p.Nodes))
	for _, n := range p.Nodes {
		st := &station{node: n, open: make([]int, len(n.In))}
		for i, m := range n.In {
			_ = m
			st.open[i] = 1
		}
		if n.Kind == plan.Service {
			c, ok := sm.calls[n.Atom.Service]
			if !ok {
				c = &service.Counter{}
				sm.calls[n.Atom.Service] = c
			}
			iv, err := exec.NewNodeInvoker(s.Registry, n, sm.ix, sm.cache, c)
			if err != nil {
				return nil, err
			}
			st.iv = iv
		}
		sm.stations[n.ID] = st
	}

	// Kick off: the input node emits one tuple at time zero and
	// closes.
	sm.schedule(0, p.InputNode().ID, func() {
		sm.emit(ctx, p.InputNode(), exec.NewTuple(sm.ix))
		sm.closeNode(ctx, p.InputNode())
	})
	for len(sm.events) > 0 && !sm.finished && sm.err == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e := heap.Pop(&sm.events).(*event)
		sm.now = e.at
		e.act()
	}
	if sm.err != nil {
		return nil, sm.err
	}
	res := &Result{
		Rows:        sm.rows,
		Makespan:    sm.now,
		FirstAnswer: sm.first,
		BusyTime:    sm.busy,
		Stats:       exec.Stats{Calls: map[string]int64{}, Fetches: map[string]int64{}},
	}
	for name, c := range sm.calls {
		res.Stats.Calls[name] = c.Calls()
		res.Stats.Fetches[name] = c.Fetches()
	}
	return res, nil
}

func (sm *simulation) schedule(at time.Duration, node int, act func()) {
	sm.seq++
	heap.Push(&sm.events, &event{at: at, seq: sm.seq, node: node, act: act})
}

// emit delivers a tuple to every successor of n at the current time.
func (sm *simulation) emit(ctx context.Context, n *plan.Node, t exec.Tuple) {
	for _, m := range n.Out {
		edgeIdx := inEdgeIndex(m, n)
		sm.arrive(ctx, m, edgeIdx, t)
	}
}

func inEdgeIndex(to, from *plan.Node) int {
	for i, m := range to.In {
		if m.ID == from.ID {
			return i
		}
	}
	return 0
}

// arrive processes a tuple arriving at a node.
func (sm *simulation) arrive(ctx context.Context, n *plan.Node, edgeIdx int, t exec.Tuple) {
	st := sm.stations[n.ID]
	switch n.Kind {
	case plan.Output:
		head, err := t.Project(sm.ix, sm.plan.Query.Head)
		if err != nil {
			sm.err = err
			return
		}
		if len(sm.rows) == 0 {
			sm.first = sm.now
		}
		sm.rows = append(sm.rows, head)
		if sm.sim.K > 0 && len(sm.rows) >= sm.sim.K {
			sm.finished = true
		}
	case plan.Join:
		st.buf[edgeIdx] = append(st.buf[edgeIdx], t)
	case plan.Service:
		st.queue = append(st.queue, t)
		sm.pump(ctx, st)
	}
}

func (st *station) inputsClosed() bool {
	for _, o := range st.open {
		if o > 0 {
			return false
		}
	}
	return true
}

// pump starts service work if the station has capacity. In
// stage-synchronous mode (the default) a station only starts once
// every upstream producer has closed.
func (sm *simulation) pump(ctx context.Context, st *station) {
	if !sm.sim.Pipelined && !st.inputsClosed() {
		return
	}
	for len(st.queue) > 0 && (st.busy == 0 || sm.sim.ParallelCalls) {
		t := st.queue[0]
		st.queue = st.queue[1:]
		st.busy++
		rows, _, elapsed, err := st.iv.Call(ctx, t)
		if err != nil {
			sm.err = err
			return
		}
		sm.busy += elapsed
		tt := t
		sm.schedule(sm.now+elapsed, st.node.ID, func() {
			st.busy--
			results, err := st.iv.Expand(tt, rows)
			if err != nil {
				sm.err = err
				return
			}
			for _, rt := range results {
				sm.emit(ctx, st.node, rt)
			}
			sm.pump(ctx, st)
			sm.maybeClose(ctx, st)
		})
		if !sm.sim.ParallelCalls {
			return // sequential station: one in flight
		}
	}
}

// closeNode marks one upstream producer of each successor edge as
// done and propagates closure.
func (sm *simulation) closeNode(ctx context.Context, n *plan.Node) {
	st := sm.stations[n.ID]
	if st.closed {
		return
	}
	st.closed = true
	for _, m := range n.Out {
		edgeIdx := inEdgeIndex(m, n)
		ms := sm.stations[m.ID]
		ms.open[edgeIdx]--
		sm.maybeClose(ctx, ms)
	}
}

// maybeClose fires when a station has no open inputs and no pending
// work: joins flush their buffers, services propagate closure.
func (sm *simulation) maybeClose(ctx context.Context, st *station) {
	if st.closed || sm.finished {
		return
	}
	for _, o := range st.open {
		if o > 0 {
			return
		}
	}
	n := st.node
	switch n.Kind {
	case plan.Service:
		if len(st.queue) > 0 || st.busy > 0 {
			sm.pump(ctx, st) // stage-sync: inputs just closed, start serving
			return
		}
		sm.closeNode(ctx, n)
	case plan.Join:
		merged, err := exec.JoinPairs(n.Method, st.buf[0], st.buf[1], n.JoinPreds, sm.ix)
		if err != nil {
			sm.err = err
			return
		}
		for _, m := range merged {
			if sm.finished {
				break
			}
			sm.emit(ctx, n, m)
		}
		sm.closeNode(ctx, n)
	case plan.Output:
		// nothing to do
	case plan.Input:
		sm.closeNode(ctx, n)
	}
}

// Describe returns a short label for reports.
func (s *Simulator) Describe() string {
	mode := "sequential"
	if s.ParallelCalls {
		mode = "parallel-dispatch"
	}
	return fmt.Sprintf("sim(%s, %s)", s.Cache, mode)
}

// HeadIndex is a convenience for reading result rows by head
// variable name.
func HeadIndex(head []cq.Var) map[string]int {
	m := map[string]int{}
	for i, v := range head {
		m[string(v)] = i
	}
	return m
}

package sim_test

import (
	"context"
	"testing"
	"time"

	"mdq/internal/card"
	"mdq/internal/exec"
	"mdq/internal/plan"
	. "mdq/internal/sim"
	"mdq/internal/simweb"
)

func run(t *testing.T, topo *plan.Topology, mode card.CacheMode, opts simweb.TravelOptions, parallel bool) *Result {
	t.Helper()
	w := simweb.NewTravelWorld(opts)
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, topo, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := &Simulator{Registry: w.Registry, Cache: mode, ParallelCalls: parallel}
	res, err := s.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSimulatorMatchesRunnerCounts: the discrete-event simulator and
// the concurrent runner implement the same semantics — identical
// call counts and result rows for every plan and caching level.
func TestSimulatorMatchesRunnerCounts(t *testing.T) {
	topos := map[string]*plan.Topology{
		"S": simweb.PlanSTopology(), "P": simweb.PlanPTopology(), "O": simweb.PlanOTopology(),
	}
	for name, topo := range topos {
		for _, mode := range []card.CacheMode{card.NoCache, card.OneCall, card.Optimal} {
			simRes := run(t, topo, mode, simweb.TravelOptions{}, false)

			w := simweb.NewTravelWorld(simweb.TravelOptions{})
			q, err := simweb.RunningExampleQuery(w.Schema)
			if err != nil {
				t.Fatal(err)
			}
			p, err := w.BuildPlan(q, topo, 3, 4)
			if err != nil {
				t.Fatal(err)
			}
			r := &exec.Runner{Registry: w.Registry, Cache: mode}
			runRes, err := r.Run(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			for _, svc := range []string{"conf", "weather", "flight", "hotel"} {
				if simRes.Stats.Calls[svc] != runRes.Stats.Calls[svc] {
					t.Errorf("%s/%v %s: sim %d calls, runner %d",
						name, mode, svc, simRes.Stats.Calls[svc], runRes.Stats.Calls[svc])
				}
			}
			if len(simRes.Rows) != len(runRes.Rows) {
				t.Errorf("%s/%v: sim %d rows, runner %d", name, mode, len(simRes.Rows), len(runRes.Rows))
			}
		}
	}
}

// TestFigure11TimeShape: the virtual makespans reproduce the shape
// of Figure 11's time panel:
//
//   - O is fastest and P slowest in every caching setting;
//   - caching never hurts: t(optimal) ≤ t(one-call) ≤ t(no-cache);
//   - the one-call cache helps plan S a lot but O and P not at all
//     (the paper: "no improvement can be observed for O (and,
//     similarly, for P) between the no-cache and the one-call
//     setting");
//   - plan S under no cache lands on the paper's 374 s (the serial
//     sum of its calls with the hotel server answering duplicates
//     from its own cache).
func TestFigure11TimeShape(t *testing.T) {
	times := map[string]map[card.CacheMode]time.Duration{}
	for name, topo := range map[string]*plan.Topology{
		"S": simweb.PlanSTopology(), "P": simweb.PlanPTopology(), "O": simweb.PlanOTopology(),
	} {
		times[name] = map[card.CacheMode]time.Duration{}
		for _, mode := range []card.CacheMode{card.NoCache, card.OneCall, card.Optimal} {
			times[name][mode] = run(t, topo, mode, simweb.TravelOptions{}, false).Makespan
		}
	}
	for _, mode := range []card.CacheMode{card.NoCache, card.OneCall, card.Optimal} {
		o, s, p := times["O"][mode], times["S"][mode], times["P"][mode]
		if !(o < s && s < p) {
			t.Errorf("%v: want O < S < P, got O=%v S=%v P=%v", mode, o, s, p)
		}
	}
	for name := range times {
		no, one, opt := times[name][card.NoCache], times[name][card.OneCall], times[name][card.Optimal]
		if one > no || opt > one {
			t.Errorf("%s: caching must not slow down: no=%v one=%v opt=%v", name, no, one, opt)
		}
	}
	// S gains a lot from the one-call cache (284 hotel calls → 15).
	if gain := times["S"][card.NoCache] - times["S"][card.OneCall]; gain < 30*time.Second {
		t.Errorf("S one-call gain = %v, want ≥ 30s", gain)
	}
	// O and P gain nothing (no consecutive duplicates reach any
	// service).
	if times["O"][card.NoCache] != times["O"][card.OneCall] {
		t.Errorf("O: no-cache %v != one-call %v", times["O"][card.NoCache], times["O"][card.OneCall])
	}
	if times["P"][card.NoCache] != times["P"][card.OneCall] {
		t.Errorf("P: no-cache %v != one-call %v", times["P"][card.NoCache], times["P"][card.OneCall])
	}
	// Absolute anchor: S/no-cache = 1.2 + (54·1.5 + 17·0.075) +
	// 16·9.7 + (10·(4.9+3·0.075) + 274·4·0.075) = 372.125 s ≈ the
	// paper's 374 s.
	want := 372125 * time.Millisecond
	if got := times["S"][card.NoCache]; got != want {
		t.Errorf("S/no-cache makespan = %v, want %v (paper: 374 s)", got, want)
	}
}

// TestMultithreadedDispatch: §6's separate test — dispatching all
// calls of a stage on parallel threads collapses the makespan to
// roughly the sum of the slowest calls per stage. With jittered
// latencies the paper measured 76 s for plan S (vs 374 s
// sequentially).
func TestMultithreadedDispatch(t *testing.T) {
	seq := run(t, simweb.PlanSTopology(), card.NoCache, simweb.TravelOptions{JitterSigma: 0.75}, false)
	par := run(t, simweb.PlanSTopology(), card.NoCache, simweb.TravelOptions{JitterSigma: 0.75}, true)
	if par.Makespan >= seq.Makespan/2 {
		t.Errorf("parallel dispatch %v not ≪ sequential %v", par.Makespan, seq.Makespan)
	}
	// Order of magnitude of the paper's 76 s: between 20 s and 200 s.
	if par.Makespan < 20*time.Second || par.Makespan > 200*time.Second {
		t.Errorf("parallel-dispatch makespan = %v, want tens of seconds (paper: 76 s)", par.Makespan)
	}
	// Deterministic: same run, same makespan.
	again := run(t, simweb.PlanSTopology(), card.NoCache, simweb.TravelOptions{JitterSigma: 0.75}, true)
	if again.Makespan != par.Makespan {
		t.Errorf("simulation not deterministic: %v vs %v", again.Makespan, par.Makespan)
	}
}

// TestPipelinedAblation: our engine's pipelined mode (stations start
// as tuples arrive) strictly improves on the paper's
// stage-synchronous execution for the serial plan.
func TestPipelinedAblation(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanSTopology(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	sync := &Simulator{Registry: w.Registry, Cache: card.NoCache}
	rSync, err := sync.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := w.BuildPlan(q, simweb.PlanSTopology(), 3, 4)
	pipe := &Simulator{Registry: w.Registry, Cache: card.NoCache, Pipelined: true}
	rPipe, err := pipe.Run(context.Background(), p2)
	if err != nil {
		t.Fatal(err)
	}
	if rPipe.Makespan >= rSync.Makespan {
		t.Errorf("pipelining did not help: %v vs %v", rPipe.Makespan, rSync.Makespan)
	}
	if rPipe.Stats.Calls["hotel"] != rSync.Stats.Calls["hotel"] {
		t.Errorf("pipelining changed call counts")
	}
	if len(rPipe.Rows) != len(rSync.Rows) {
		t.Errorf("pipelining changed results")
	}
}

// TestKLimitedSimulation: stopping at k answers yields an earlier
// makespan and a prefix of the full result.
func TestKLimitedSimulation(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := &Simulator{Registry: w.Registry, Cache: card.NoCache, K: 10}
	res, err := s.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	full := run(t, simweb.PlanOTopology(), card.NoCache, simweb.TravelOptions{}, false)
	if res.Makespan > full.Makespan {
		t.Errorf("k-limited makespan %v exceeds full drain %v", res.Makespan, full.Makespan)
	}
	for i := range res.Rows {
		for j := range res.Rows[i] {
			if !res.Rows[i][j].Equal(full.Rows[i][j]) {
				t.Fatalf("row %d is not a prefix of the full result", i)
			}
		}
	}
}

// TestFirstAnswerVsTimeToScreen: the simulator's measured
// time-to-first-answer is at least the conf+weather pipe fill and
// at most the makespan; the TTS metric estimates the pipe
// traversal.
func TestFirstAnswerVsTimeToScreen(t *testing.T) {
	res := run(t, simweb.PlanOTopology(), card.NoCache, simweb.TravelOptions{}, false)
	if res.FirstAnswer <= 0 || res.FirstAnswer > res.Makespan {
		t.Fatalf("first answer at %v, makespan %v", res.FirstAnswer, res.Makespan)
	}
	// The first answer cannot appear before one traversal of the
	// pipe: conf (1.2) + first weather call (1.5).
	if res.FirstAnswer < 2700*time.Millisecond {
		t.Errorf("first answer at %v is before the pipe could fill", res.FirstAnswer)
	}
}

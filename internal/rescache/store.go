// Package rescache implements the fleet-wide service-call result
// cache of the cross-query sharing layer: a bounded, epoch-aware
// store of logical invocation results keyed by service name and
// input-binding fingerprint. It sits *under* the per-run logical
// cache of §5.1 (exec.NewTieredCache): within one execution the run
// cache answers repeats, and across executions — other queries, other
// requests, other fragments on the same worker — the store makes a
// repeated invocation with identical bindings free after the first.
//
// Correctness rests on the statistics-epoch machinery: every entry is
// stamped with the service's registry epoch at insertion, a lookup
// whose stamp disagrees with the current epoch misses (and drops the
// entry), and Bind subscribes the store to the registry's epoch feed
// so a bump evicts eagerly. A service re-profile, a gossip-delivered
// remote bump, or an explicit invalidation therefore can never be
// served stale rows — the differential suite pins this.
package rescache

import (
	"container/list"
	"sync"
	"time"

	"mdq/internal/exec"
	"mdq/internal/schema"
	"mdq/internal/serve"
	"mdq/internal/service"
)

// Event classifies a store transition for the Observer hook.
type Event string

// Store events, in the order a metric scrape usually wants them.
const (
	// Hit: a lookup was answered from the store.
	Hit Event = "hit"
	// Miss: a lookup found nothing usable.
	Miss Event = "miss"
	// EvictLRU: an entry was dropped to respect MaxEntries/MaxBytes.
	EvictLRU Event = "evict_lru"
	// EvictTTL: an entry was dropped because it outlived TTL.
	EvictTTL Event = "evict_ttl"
	// Invalidate: an entry was dropped because its service's
	// statistics epoch moved past the entry's stamp.
	Invalidate Event = "invalidate"
)

// EpochSource yields the current statistics epoch of a service; a
// *service.Registry satisfies it. A nil source disables epoch checks
// (entries then age out only by LRU/TTL pressure).
type EpochSource interface {
	// Epoch returns the current statistics epoch of a service.
	Epoch(name string) uint64
}

// Config bounds a Store. Zero values select the defaults noted on
// each field.
type Config struct {
	// MaxEntries caps the number of cached invocations (default
	// 4096; negative means unbounded).
	MaxEntries int
	// MaxBytes caps the approximate memory footprint of cached rows
	// (default 32 MiB; negative means unbounded).
	MaxBytes int64
	// TTL expires entries by age regardless of epoch stability
	// (default 0: no age limit).
	TTL time.Duration
	// Epochs supplies per-service statistics epochs; nil disables
	// epoch validation. Bind sets it from a registry.
	Epochs EpochSource
}

// DefaultMaxEntries is the entry cap when Config.MaxEntries is 0.
const DefaultMaxEntries = 4096

// DefaultMaxBytes is the byte cap when Config.MaxBytes is 0.
const DefaultMaxBytes int64 = 32 << 20

// Stats is a point-in-time snapshot of store accounting.
type Stats struct {
	// Hits counts lookups answered from the store.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that found nothing usable.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped by LRU/byte/TTL pressure.
	Evictions uint64 `json:"evictions"`
	// Invalidations counts entries dropped by epoch movement.
	Invalidations uint64 `json:"invalidations"`
	// Entries is the current number of cached invocations.
	Entries int `json:"entries"`
	// Bytes is the approximate memory footprint of cached rows.
	Bytes int64 `json:"bytes"`
}

type item struct {
	key     string // service + "\x00" + input key
	service string
	entry   exec.Entry
	epoch   uint64
	bytes   int64
	added   time.Time
}

// Store is the shared result cache. It implements exec.Cache, so it
// plugs into exec.Runner.ResultCache and is consulted by the node
// invoker before a logical call is charged against the request
// budget. All methods are safe for concurrent use. A nil *Store is a
// valid no-op cache — every Get misses and every Put is dropped — so
// wiring code may pass an unconfigured store straight through
// (beware that a nil *Store stored in an exec.Cache interface is not
// ==nil at the interface level).
type Store struct {
	// Observer, when non-nil, is invoked (outside the store lock)
	// after every classified transition with the post-transition
	// entry/byte occupancy — the hook the binaries use to keep
	// /metrics counters and gauges live. It must be set before the
	// store is shared between goroutines.
	Observer func(ev Event, entries int, bytes int64)

	mu      sync.Mutex
	cfg     Config
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	bytes   int64
	hits    uint64
	misses  uint64
	evicts  uint64
	invalid uint64
	now     func() time.Time
}

// New builds a Store with the config's bounds (zero fields take the
// documented defaults).
func New(cfg Config) *Store {
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	return &Store{
		cfg:   cfg,
		ll:    list.New(),
		items: map[string]*list.Element{},
		now:   time.Now,
	}
}

// Bind points epoch validation at reg and subscribes the store to its
// epoch feed, so a BumpEpoch (local re-profile or gossip-delivered)
// evicts the service's entries eagerly instead of waiting for the
// next lookup. Call once, before serving traffic.
func (s *Store) Bind(reg *service.Registry) {
	s.mu.Lock()
	s.cfg.Epochs = reg
	s.mu.Unlock()
	reg.SubscribeEpochs(s, func(svc string, epoch uint64) {
		s.InvalidateService(svc, epoch)
	})
}

// Get returns the cached entry for a service/input-key pair, cloned
// so the caller may extend it (resumed fetches append to Rows)
// without mutating the shared copy. Entries whose epoch stamp or TTL
// no longer holds are dropped and reported as misses.
func (s *Store) Get(svc, key string) (exec.Entry, bool) {
	if s == nil {
		return exec.Entry{}, false
	}
	s.mu.Lock()
	el, ok := s.items[svc+"\x00"+key]
	if !ok {
		s.misses++
		s.notifyLocked(Miss)
		s.mu.Unlock()
		return exec.Entry{}, false
	}
	it := el.Value.(*item)
	if s.cfg.Epochs != nil && it.epoch != s.cfg.Epochs.Epoch(svc) {
		s.removeLocked(el)
		s.invalid++
		s.notifyLocked(Invalidate)
		s.misses++
		s.notifyLocked(Miss)
		s.mu.Unlock()
		return exec.Entry{}, false
	}
	if s.cfg.TTL > 0 && s.now().Sub(it.added) > s.cfg.TTL {
		s.removeLocked(el)
		s.evicts++
		s.notifyLocked(EvictTTL)
		s.misses++
		s.notifyLocked(Miss)
		s.mu.Unlock()
		return exec.Entry{}, false
	}
	s.ll.MoveToFront(el)
	s.hits++
	entry := it.entry
	s.notifyLocked(Hit)
	s.mu.Unlock()
	// Clone the outer row slice at exact capacity: an invoker that
	// resumes fetching appends to Rows, which must reallocate rather
	// than scribble into the shared backing array. Row contents are
	// never mutated in place, so the inner slices can be shared.
	rows := make([][]schema.Value, len(entry.Rows))
	copy(rows, entry.Rows)
	entry.Rows = rows
	return entry, true
}

// Put records the entry of an invocation, stamped with the service's
// current statistics epoch, and evicts from the cold end until the
// entry/byte bounds hold again.
func (s *Store) Put(svc, key string, e exec.Entry) {
	if s == nil {
		return
	}
	size := entryBytes(svc, key, e)
	if s.cfg.MaxBytes > 0 && size > s.cfg.MaxBytes {
		return // larger than the whole cache; don't thrash it
	}
	var epoch uint64
	s.mu.Lock()
	if s.cfg.Epochs != nil {
		epoch = s.cfg.Epochs.Epoch(svc)
	}
	k := svc + "\x00" + key
	if el, ok := s.items[k]; ok {
		s.removeLocked(el)
	}
	it := &item{key: k, service: svc, entry: e, epoch: epoch, bytes: size, added: s.now()}
	s.items[k] = s.ll.PushFront(it)
	s.bytes += size
	for s.overLocked() && s.ll.Len() > 1 {
		s.removeLocked(s.ll.Back())
		s.evicts++
		s.notifyLocked(EvictLRU)
	}
	s.mu.Unlock()
}

// InvalidateService drops every cached entry of a service whose epoch
// stamp disagrees with the given epoch (the same inequality the plan
// cache uses, so uncoordinated epoch numberings still invalidate). It
// is the eager path behind Bind; calling it directly with
// Registry.Epoch's value is equivalent.
func (s *Store) InvalidateService(svc string, epoch uint64) {
	s.dropService(svc, &epoch)
}

// DropService unconditionally drops every cached entry of a service —
// the remote-bump path (dist.Worker.Gossip): a bump gossiped from
// another process carries that process's epoch numbering, which says
// nothing about local stamps beyond "this service's statistics
// moved", so everything cached for it goes.
func (s *Store) DropService(svc string) {
	s.dropService(svc, nil)
}

func (s *Store) dropService(svc string, epoch *uint64) {
	s.mu.Lock()
	var next *list.Element
	for el := s.ll.Front(); el != nil; el = next {
		next = el.Next()
		it := el.Value.(*item)
		if it.service == svc && (epoch == nil || it.epoch != *epoch) {
			s.removeLocked(el)
			s.invalid++
			s.notifyLocked(Invalidate)
		}
	}
	s.mu.Unlock()
}

// Stats snapshots the store's counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:          s.hits,
		Misses:        s.misses,
		Evictions:     s.evicts,
		Invalidations: s.invalid,
		Entries:       s.ll.Len(),
		Bytes:         s.bytes,
	}
}

// Len returns the current number of cached invocations.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

func (s *Store) overLocked() bool {
	if s.ll.Len() == 0 {
		return false
	}
	if s.cfg.MaxEntries > 0 && s.ll.Len() > s.cfg.MaxEntries {
		return true
	}
	if s.cfg.MaxBytes > 0 && s.bytes > s.cfg.MaxBytes {
		return true
	}
	return false
}

func (s *Store) removeLocked(el *list.Element) {
	it := el.Value.(*item)
	s.ll.Remove(el)
	delete(s.items, it.key)
	s.bytes -= it.bytes
}

// notifyLocked invokes the Observer synchronously, under the store
// lock, to keep transitions and occupancy readings consistent.
// Observers must therefore not call back into the store — the
// binaries only bump atomic metric counters, which is the intended
// shape of the hook.
func (s *Store) notifyLocked(ev Event) {
	if s.Observer != nil {
		s.Observer(ev, s.ll.Len(), s.bytes)
	}
}

// MetricsObserver adapts a serving-layer metrics registry into an
// Observer: every transition bumps
// mdq_result_cache_events_total{event=...} and refreshes the
// mdq_result_cache_entries / mdq_result_cache_bytes gauges. Both
// binaries wire their stores through this.
func MetricsObserver(m *serve.Metrics) func(ev Event, entries int, bytes int64) {
	return func(ev Event, entries int, bytes int64) {
		m.CounterL("mdq_result_cache_events_total",
			"Result cache transitions by kind (hit, miss, evict_lru, evict_ttl, invalidate).",
			"event", string(ev)).Inc()
		m.Gauge("mdq_result_cache_entries", "Cached service invocations resident in the result cache.").Set(float64(entries))
		m.Gauge("mdq_result_cache_bytes", "Approximate bytes of rows resident in the result cache.").Set(float64(bytes))
	}
}

// entryBytes approximates the resident size of a cached invocation:
// map/list bookkeeping plus per-row and per-value overheads and
// string payloads.
func entryBytes(svc, key string, e exec.Entry) int64 {
	size := int64(len(svc) + len(key) + 96)
	for _, row := range e.Rows {
		size += 24
		for _, v := range row {
			size += 40 + int64(len(v.Str))
		}
	}
	return size
}

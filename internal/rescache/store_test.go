package rescache

import (
	"testing"
	"time"

	"mdq/internal/exec"
	"mdq/internal/schema"
	"mdq/internal/service"
)

func entry(rows int, tag string) exec.Entry {
	e := exec.Entry{Pages: 1, Exhausted: true}
	for i := 0; i < rows; i++ {
		e.Rows = append(e.Rows, []schema.Value{schema.S(tag), schema.N(float64(i))})
	}
	return e
}

type fixedEpochs map[string]uint64

func (f fixedEpochs) Epoch(name string) uint64 { return f[name] }

func TestStoreHitMissAndClone(t *testing.T) {
	s := New(Config{})
	if _, ok := s.Get("svc", "k"); ok {
		t.Fatal("hit on empty store")
	}
	s.Put("svc", "k", entry(2, "a"))
	got, ok := s.Get("svc", "k")
	if !ok || len(got.Rows) != 2 || !got.Exhausted {
		t.Fatalf("expected exhausted 2-row hit, got %+v ok=%v", got, ok)
	}
	// Appending to a returned entry must not leak into the store.
	got.Rows = append(got.Rows, []schema.Value{schema.S("extra")})
	again, _ := s.Get("svc", "k")
	if len(again.Rows) != 2 {
		t.Fatalf("caller append mutated stored rows: %d", len(again.Rows))
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreEpochInvalidation(t *testing.T) {
	eps := fixedEpochs{"svc": 1}
	s := New(Config{Epochs: eps})
	s.Put("svc", "k", entry(1, "a"))
	if _, ok := s.Get("svc", "k"); !ok {
		t.Fatal("expected hit at stable epoch")
	}
	eps["svc"] = 2
	if _, ok := s.Get("svc", "k"); ok {
		t.Fatal("served stale entry across an epoch bump")
	}
	if st := s.Stats(); st.Invalidations != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreBindEvictsEagerly(t *testing.T) {
	reg := service.NewRegistry()
	s := New(Config{})
	s.Bind(reg)
	s.Put("svc", "k", entry(1, "a"))
	s.Put("other", "k", entry(1, "b"))
	reg.BumpEpoch("svc")
	if s.Len() != 1 {
		t.Fatalf("eager invalidation left %d entries", s.Len())
	}
	if _, ok := s.Get("other", "k"); !ok {
		t.Fatal("unrelated service evicted")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := New(Config{MaxEntries: 2})
	s.Put("svc", "a", entry(1, "a"))
	s.Put("svc", "b", entry(1, "b"))
	if _, ok := s.Get("svc", "a"); !ok { // refresh a; b is now coldest
		t.Fatal("expected hit on a")
	}
	s.Put("svc", "c", entry(1, "c"))
	if _, ok := s.Get("svc", "b"); ok {
		t.Fatal("coldest entry survived over capacity")
	}
	if _, ok := s.Get("svc", "a"); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreByteBound(t *testing.T) {
	small := entryBytes("svc", "a", entry(1, "x"))
	s := New(Config{MaxEntries: -1, MaxBytes: 3 * small})
	s.Put("svc", "a", entry(1, "x"))
	s.Put("svc", "b", entry(1, "x"))
	s.Put("svc", "c", entry(1, "x"))
	s.Put("svc", "d", entry(1, "x"))
	if st := s.Stats(); st.Bytes > 3*small || st.Evictions == 0 {
		t.Fatalf("byte bound not enforced: %+v (limit %d)", st, 3*small)
	}
	// An entry larger than the whole cache is refused outright.
	if s.Put("svc", "huge", entry(1000, "xxxxxxxxxxxxxxxx")); s.Len() == 1 {
		t.Fatal("oversized entry flushed the cache")
	}
}

func TestStoreTTL(t *testing.T) {
	s := New(Config{TTL: time.Minute})
	base := time.Unix(1000, 0)
	s.now = func() time.Time { return base }
	s.Put("svc", "k", entry(1, "a"))
	if _, ok := s.Get("svc", "k"); !ok {
		t.Fatal("expected hit within TTL")
	}
	s.now = func() time.Time { return base.Add(2 * time.Minute) }
	if _, ok := s.Get("svc", "k"); ok {
		t.Fatal("entry served past TTL")
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreObserverEvents(t *testing.T) {
	s := New(Config{MaxEntries: 1})
	events := map[Event]int{}
	s.Observer = func(ev Event, entries int, bytes int64) { events[ev]++ }
	s.Put("svc", "a", entry(1, "a"))
	s.Put("svc", "b", entry(1, "b")) // evicts a
	s.Get("svc", "b")
	s.Get("svc", "a")
	if events[Hit] != 1 || events[Miss] != 1 || events[EvictLRU] != 1 {
		t.Fatalf("events = %v", events)
	}
}

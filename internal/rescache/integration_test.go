package rescache_test

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/exec"
	"mdq/internal/opt"
	"mdq/internal/rescache"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/simweb"
	"mdq/internal/tabsvc"
)

// optimizeTravel builds the travel world and optimizes its running
// example, returning everything a Runner needs.
func optimizeTravel(t *testing.T) (*service.Registry, *opt.Result) {
	t.Helper()
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := cq.Parse(simweb.RunningExampleText)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve(w.Schema); err != nil {
		t.Fatal(err)
	}
	o := &opt.Optimizer{
		Metric:       cost.ExecTime{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            10,
		ChooseMethod: w.Registry.MethodChooser(),
	}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return w.Registry, res
}

func totalCalls(r *exec.Result) int64 {
	var n int64
	for _, c := range r.Stats.Calls {
		n += c
	}
	return n
}

// TestRunnerResultCacheDifferential is the single-process half of the
// sharing gate: two executions of the same plan through fresh Runners
// sharing one Store return rows byte-identical to uncached runs,
// with the repeat charging strictly fewer logical calls.
func TestRunnerResultCacheDifferential(t *testing.T) {
	reg, res := optimizeTravel(t)
	run := func(store *rescache.Store) *exec.Result {
		// K=0 (exhaustive) keeps the call accounting deterministic; a
		// top-K run stops streaming at a timing-dependent point. A nil
		// store is passed as a typed-nil exec.Cache on purpose — the
		// store's nil-receiver guards make that a no-op cache.
		r := &exec.Runner{Registry: reg, Cache: card.OneCall, K: 0, ResultCache: store}
		out, err := r.Run(context.Background(), res.Best.Clone())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	base1, base2 := run(nil), run(nil)
	if !reflect.DeepEqual(base1.Rows, base2.Rows) {
		t.Fatal("uncached runs disagree — world not deterministic")
	}

	store := rescache.New(rescache.Config{})
	store.Bind(reg)
	got1, got2 := run(store), run(store)
	if !reflect.DeepEqual(base1.Rows, got1.Rows) || !reflect.DeepEqual(base1.Head, got1.Head) {
		t.Fatalf("cold shared run diverged from uncached rows")
	}
	if !reflect.DeepEqual(base2.Rows, got2.Rows) {
		t.Fatalf("warm shared run diverged from uncached rows")
	}
	// The cold run may already charge fewer calls than the uncached
	// baseline (the store dedupes identical invocations across plan
	// nodes within one execution too), but never more.
	if c, b := totalCalls(got1), totalCalls(base1); c > b {
		t.Fatalf("cold shared run charged %d calls, uncached %d", c, b)
	}
	if c, b := totalCalls(got2), totalCalls(base2); c >= b {
		t.Fatalf("warm shared run charged %d calls, uncached %d — want strictly fewer", c, b)
	}
	if st := store.Stats(); st.Hits == 0 {
		t.Fatalf("no store hits on the warm run: %+v", st)
	}
}

// swapTable is a service whose backing relation the test replaces
// mid-run — a stand-in for a live service whose data (and profiled
// statistics) change under traffic. Both tables share one Signature.
type swapTable struct {
	mu    sync.Mutex
	inner *tabsvc.Table
}

func (s *swapTable) Signature() *schema.Signature {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Signature()
}

func (s *swapTable) Invoke(ctx context.Context, pat int, req service.Request) (service.Response, error) {
	s.mu.Lock()
	t := s.inner
	s.mu.Unlock()
	return t.Invoke(ctx, pat, req)
}

func (s *swapTable) swap(t *tabsvc.Table) {
	s.mu.Lock()
	s.inner = t
	s.mu.Unlock()
}

// TestEpochBumpNeverServesStale is the staleness pin of the
// acceptance gate, in three acts: (1) a cold run populates the store;
// (2) the service's data changes but no epoch moves — the store still
// serves the old rows, proving the cache is actually on the read
// path; (3) the registry bumps the service's epoch, and the very next
// run returns the new rows — an epoch bump can never be followed by a
// stale serve.
func TestEpochBumpNeverServesStale(t *testing.T) {
	sig := &schema.Signature{
		Name: "score",
		Attrs: []schema.Attribute{
			{Name: "Player", Domain: schema.Domain{Name: "Player", Kind: schema.StringValue, DistinctValues: 4}},
			{Name: "Points", Domain: schema.Domain{Name: "Points", Kind: schema.NumberValue}},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("io")},
		Kind:     schema.Exact,
		Stats:    schema.Stats{ERSPI: 1, ResponseTime: time.Millisecond},
	}
	rowsAt := func(pts float64) [][]schema.Value {
		return [][]schema.Value{{schema.S("alice"), schema.N(pts)}}
	}
	svc := &swapTable{inner: tabsvc.MustNew(sig, rowsAt(1), tabsvc.Latency{})}
	reg := service.NewRegistry()
	reg.MustRegister(svc)
	sch, err := reg.Schema()
	if err != nil {
		t.Fatal(err)
	}
	q, err := cq.Parse(`ans(P) :- score('alice', P).`)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve(sch); err != nil {
		t.Fatal(err)
	}
	o := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall}, ChooseMethod: reg.MethodChooser()}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}

	store := rescache.New(rescache.Config{})
	store.Bind(reg)
	points := func() float64 {
		r := &exec.Runner{Registry: reg, Cache: card.OneCall, ResultCache: store}
		out, err := r.Run(context.Background(), res.Best.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Rows) != 1 || len(out.Rows[0]) != 1 {
			t.Fatalf("rows = %v, want one single-value row", out.Rows)
		}
		return out.Rows[0][0].Num
	}

	if got := points(); got != 1 {
		t.Fatalf("cold run returned %v, want 1", got)
	}
	svc.swap(tabsvc.MustNew(sig, rowsAt(2), tabsvc.Latency{}))
	if got := points(); got != 1 {
		t.Fatalf("pre-bump run returned %v — the store was not on the read path", got)
	}
	reg.BumpEpoch("score")
	if got := points(); got != 2 {
		t.Fatalf("post-bump run returned %v, want the fresh value 2 — stale serve after an epoch bump", got)
	}
	if st := store.Stats(); st.Invalidations == 0 {
		t.Fatalf("no invalidations recorded: %+v", st)
	}
}

package plan

import (
	"encoding/json"
	"testing"
)

// TestTopologyJSONRoundTrip: the wire encoding used by distributed
// optimization reproduces the exact partial order.
func TestTopologyJSONRoundTrip(t *testing.T) {
	cases := []*Topology{
		NewTopology(0),
		NewTopology(1),
		NewTopology(3),
		Chain([]int{2, 0, 1}),
		Layers([][]int{{0, 2}, {1, 3}}),
	}
	for _, topo := range cases {
		data, err := json.Marshal(topo)
		if err != nil {
			t.Fatalf("marshal %s: %v", topo, err)
		}
		var back Topology
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s (%s): %v", topo, data, err)
		}
		if !topo.Equal(&back) {
			t.Fatalf("round trip changed the order: %s -> %s", topo, &back)
		}
	}
}

// TestTopologyJSONRejectsInvalid: wire input is untrusted — cyclic or
// malformed relations must not decode.
func TestTopologyJSONRejectsInvalid(t *testing.T) {
	for _, bad := range []string{
		`{"n":2,"bits":"011"}`,  // wrong length
		`{"n":2,"bits":"0ab0"}`, // bad characters
		`{"n":2,"bits":"0110"}`, // 0<1 and 1<0: a cycle
		`{"n":1,"bits":"1"}`,    // reflexive
		`{"n":-1,"bits":""}`,    // negative size
	} {
		var topo Topology
		if err := json.Unmarshal([]byte(bad), &topo); err == nil {
			t.Errorf("decoded invalid topology %s", bad)
		}
	}
}

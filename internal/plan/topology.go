// Package plan models query plans as directed acyclic graphs (§3.3
// of Braga et al., VLDB 2008): nodes are service invocations or
// parallel joins, arcs are precedences and parameter passing. A plan
// is built from three ingredients fixed by the optimizer's three
// phases: an access-pattern assignment, a topology (a partial order
// over the query atoms), and fetch factors for chunked services.
package plan

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Topology is a strict partial order over the atoms of a query: the
// relative invocation order of services. Incomparable atoms run in
// parallel. The paper's Example 5.1 counts 19 alternative plans for
// three unconstrained atoms: exactly the number of partial orders on
// three labeled elements.
type Topology struct {
	n    int
	less []bool // row-major n×n; less[i*n+j] ⇒ atom i precedes atom j
}

// NewTopology creates the empty (all-parallel) order over n atoms.
func NewTopology(n int) *Topology {
	return &Topology{n: n, less: make([]bool, n*n)}
}

// Chain builds the total order ord[0] < ord[1] < … (a serial plan).
func Chain(ord []int) *Topology {
	t := NewTopology(len(ord))
	for i := 0; i < len(ord); i++ {
		for j := i + 1; j < len(ord); j++ {
			t.less[ord[i]*t.n+ord[j]] = true
		}
	}
	return t
}

// Layers builds the layered order l1 < l2 < … where atoms inside a
// layer are mutually parallel and every atom of layer k precedes
// every atom of layer k+1.
func Layers(layers [][]int) *Topology {
	n := 0
	for _, l := range layers {
		n += len(l)
	}
	t := NewTopology(n)
	for a := 0; a < len(layers); a++ {
		for b := a + 1; b < len(layers); b++ {
			for _, i := range layers[a] {
				for _, j := range layers[b] {
					t.less[i*n+j] = true
				}
			}
		}
	}
	return t
}

// Size returns the number of atoms.
func (t *Topology) Size() int { return t.n }

// Less reports whether atom i strictly precedes atom j.
func (t *Topology) Less(i, j int) bool { return t.less[i*t.n+j] }

// SetLess records i < j. The caller must re-establish transitive
// closure with Close before using the topology.
func (t *Topology) SetLess(i, j int) { t.less[i*t.n+j] = true }

// Clone deep-copies the topology.
func (t *Topology) Clone() *Topology {
	c := &Topology{n: t.n, less: make([]bool, len(t.less))}
	copy(c.less, t.less)
	return c
}

// Close computes the transitive closure in place and reports whether
// the relation is acyclic (a valid strict partial order).
func (t *Topology) Close() bool {
	n := t.n
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !t.less[i*n+k] {
				continue
			}
			for j := 0; j < n; j++ {
				if t.less[k*n+j] {
					t.less[i*n+j] = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if t.less[i*n+i] {
			return false
		}
	}
	return true
}

// IsPartialOrder reports whether the relation is irreflexive and
// transitively closed.
func (t *Topology) IsPartialOrder() bool {
	n := t.n
	for i := 0; i < n; i++ {
		if t.less[i*n+i] {
			return false
		}
		for j := 0; j < n; j++ {
			if !t.less[i*n+j] {
				continue
			}
			for k := 0; k < n; k++ {
				if t.less[j*n+k] && !t.less[i*n+k] {
					return false
				}
			}
		}
	}
	return true
}

// CoverPreds returns the immediate (transitively reduced)
// predecessors of atom j: atoms i with i < j and no k such that
// i < k < j. Cover predecessors are pairwise incomparable.
func (t *Topology) CoverPreds(j int) []int {
	var out []int
	n := t.n
	for i := 0; i < n; i++ {
		if !t.less[i*n+j] {
			continue
		}
		covered := false
		for k := 0; k < n; k++ {
			if t.less[i*n+k] && t.less[k*n+j] {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, i)
		}
	}
	return out
}

// Minimal returns the atoms with no predecessor.
func (t *Topology) Minimal() []int {
	var out []int
	for j := 0; j < t.n; j++ {
		has := false
		for i := 0; i < t.n; i++ {
			if t.Less(i, j) {
				has = true
				break
			}
		}
		if !has {
			out = append(out, j)
		}
	}
	return out
}

// Maximal returns the atoms with no successor.
func (t *Topology) Maximal() []int {
	var out []int
	for i := 0; i < t.n; i++ {
		has := false
		for j := 0; j < t.n; j++ {
			if t.Less(i, j) {
				has = true
				break
			}
		}
		if !has {
			out = append(out, i)
		}
	}
	return out
}

// TopoOrder returns atom indexes in a deterministic topological
// order (smallest index first among ready atoms).
func (t *Topology) TopoOrder() []int {
	placed := make([]bool, t.n)
	var order []int
	for len(order) < t.n {
		for j := 0; j < t.n; j++ {
			if placed[j] {
				continue
			}
			ready := true
			for i := 0; i < t.n; i++ {
				if t.Less(i, j) && !placed[i] {
					ready = false
					break
				}
			}
			if ready {
				placed[j] = true
				order = append(order, j)
				break
			}
		}
	}
	return order
}

// Key returns a canonical string identifying the partial order, used
// to deduplicate topologies during enumeration.
func (t *Topology) Key() string {
	var b strings.Builder
	b.Grow(t.n * t.n)
	for _, v := range t.less {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Equal reports whether two topologies encode the same order.
func (t *Topology) Equal(u *Topology) bool {
	if t.n != u.n {
		return false
	}
	for i := range t.less {
		if t.less[i] != u.less[i] {
			return false
		}
	}
	return true
}

// wireTopology is the JSON encoding of a Topology: the atom count
// and the row-major less-than matrix as a '0'/'1' string (the same
// encoding Key uses). It is the wire format distributed optimization
// ships plan skeletons in.
type wireTopology struct {
	N    int    `json:"n"`
	Bits string `json:"bits"`
}

// MarshalJSON implements json.Marshaler.
func (t *Topology) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireTopology{N: t.n, Bits: t.Key()})
}

// UnmarshalJSON implements json.Unmarshaler, validating that the
// decoded relation is a strict partial order (irreflexive and
// transitively closed) — wire input is untrusted.
func (t *Topology) UnmarshalJSON(data []byte) error {
	var w wireTopology
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.N < 0 || len(w.Bits) != w.N*w.N {
		return fmt.Errorf("plan: topology wire format has %d bits for n=%d", len(w.Bits), w.N)
	}
	less := make([]bool, len(w.Bits))
	for i := 0; i < len(w.Bits); i++ {
		switch w.Bits[i] {
		case '1':
			less[i] = true
		case '0':
		default:
			return fmt.Errorf("plan: topology wire format has invalid bit %q", w.Bits[i])
		}
	}
	decoded := Topology{n: w.N, less: less}
	if !decoded.IsPartialOrder() {
		return fmt.Errorf("plan: topology wire format is not a strict partial order: %s", w.Bits)
	}
	*t = decoded
	return nil
}

// String renders the order as its cover edges, e.g.
// "0<1 1<2 1<3" (atom indexes).
func (t *Topology) String() string {
	var parts []string
	for j := 0; j < t.n; j++ {
		for _, i := range t.CoverPreds(j) {
			parts = append(parts, fmt.Sprintf("%d<%d", i, j))
		}
	}
	if len(parts) == 0 {
		return "(all parallel)"
	}
	return strings.Join(parts, " ")
}

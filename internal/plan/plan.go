package plan

import (
	"fmt"
	"sort"
	"strings"

	"mdq/internal/abind"
	"mdq/internal/cq"
	"mdq/internal/schema"
)

// NodeKind discriminates plan nodes.
type NodeKind int

// Node kinds. Every plan has exactly one Input node (the user
// query's input) and one Output node (the query result), per §3.3.
const (
	Input NodeKind = iota
	Output
	Service
	Join
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case Input:
		return "IN"
	case Output:
		return "OUT"
	case Service:
		return "service"
	case Join:
		return "join"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// JoinMethod is the strategy of a parallel join node (§3.3, [4]).
type JoinMethod int

// Parallel join methods.
const (
	// MergeScan traverses the Cartesian product of the two ranked
	// inputs diagonally, producing output consistent with both
	// partial orders; used when neither side is known to dominate.
	MergeScan JoinMethod = iota
	// NestedLoop first drains the selective side entirely, then
	// scans the other side as its tuples arrive.
	NestedLoop
)

// String implements fmt.Stringer.
func (m JoinMethod) String() string {
	switch m {
	case MergeScan:
		return "MS"
	case NestedLoop:
		return "NL"
	default:
		return fmt.Sprintf("JoinMethod(%d)", int(m))
	}
}

// Node is a vertex of the plan DAG.
type Node struct {
	ID   int
	Kind NodeKind

	// Service node fields.
	Atom    *cq.Atom
	Pattern schema.AccessPattern
	// Fetches is F_n, the fetching factor for chunked services
	// (number of chunk requests per input tuple). 1 for bulk
	// services and for chunked services before phase 3 assigns it.
	Fetches int
	// Preds are the selection predicates evaluated at this node;
	// they fold into the node's effective erspi (§3.4).
	Preds []*cq.Predicate

	// Join node fields.
	Method JoinMethod
	// JoinPreds are predicates spanning the two joined branches,
	// evaluated at the join; their selectivity is the join's σp.
	JoinPreds []*cq.Predicate

	// Graph structure.
	In  []*Node
	Out []*Node

	// Annotations filled by the cardinality estimator (§3.4): the
	// expected number of input tuples (each a priori requiring one
	// invocation), the estimated number of actual invocations after
	// the caching model, and the total output tuples.
	TIn, Calls, TOut float64
}

// Label returns a short display name.
func (n *Node) Label() string {
	switch n.Kind {
	case Input:
		return "IN"
	case Output:
		return "OUT"
	case Service:
		return n.Atom.Service
	case Join:
		return "⋈" + n.Method.String()
	default:
		return "?"
	}
}

// Chunked reports whether the node is a chunked service invocation.
func (n *Node) Chunked() bool {
	return n.Kind == Service && n.Atom.Sig != nil && n.Atom.Sig.Statistics().Chunked()
}

// IsSearch reports whether the node invokes a search service.
func (n *Node) IsSearch() bool {
	return n.Kind == Service && n.Atom.Sig != nil && n.Atom.Sig.Kind == schema.Search
}

// InputVars returns the variables in input position under the node's
// access pattern (service nodes only).
func (n *Node) InputVars() cq.VarSet {
	if n.Kind != Service {
		return cq.VarSet{}
	}
	return abind.InputVars(n.Atom, n.Pattern)
}

// OutputVars returns the variables in output position (service nodes
// only).
func (n *Node) OutputVars() cq.VarSet {
	if n.Kind != Service {
		return cq.VarSet{}
	}
	return abind.OutputVars(n.Atom, n.Pattern)
}

// Plan is a query plan: a DAG with one Input and one Output node,
// complying with the precedences induced by the access-pattern
// assignment (§3.3).
type Plan struct {
	Query      *cq.Query
	Assignment abind.Assignment
	Topology   *Topology
	Nodes      []*Node // Nodes[0] is Input; last is Output
	// ServiceNode maps atom index to its plan node.
	ServiceNode []*Node

	// anc caches per-node ancestor sets; the graph is immutable
	// after Build, only annotations and fetch factors change.
	anc []map[int]bool
}

// InputNode returns the unique start node.
func (p *Plan) InputNode() *Node { return p.Nodes[0] }

// OutputNode returns the unique end node.
func (p *Plan) OutputNode() *Node { return p.Nodes[len(p.Nodes)-1] }

// JoinNodes returns the parallel-join nodes in ID order.
func (p *Plan) JoinNodes() []*Node {
	var out []*Node
	for _, n := range p.Nodes {
		if n.Kind == Join {
			out = append(out, n)
		}
	}
	return out
}

// ChunkedNodes returns the chunked service nodes in ID order; these
// are the nodes whose fetching factors phase 3 assigns (§4.3).
func (p *Plan) ChunkedNodes() []*Node {
	var out []*Node
	for _, n := range p.Nodes {
		if n.Chunked() {
			out = append(out, n)
		}
	}
	return out
}

// Clone deep-copies the plan (graph structure, fetch factors and
// annotations); the query, atoms and predicates are shared.
func (p *Plan) Clone() *Plan {
	c := &Plan{
		Query:       p.Query,
		Assignment:  p.Assignment,
		Topology:    p.Topology.Clone(),
		Nodes:       make([]*Node, len(p.Nodes)),
		ServiceNode: make([]*Node, len(p.ServiceNode)),
	}
	for i, n := range p.Nodes {
		cp := *n
		cp.In = nil
		cp.Out = nil
		c.Nodes[i] = &cp
	}
	for i, n := range p.Nodes {
		for _, m := range n.In {
			c.Nodes[i].In = append(c.Nodes[i].In, c.Nodes[m.ID])
		}
		for _, m := range n.Out {
			c.Nodes[i].Out = append(c.Nodes[i].Out, c.Nodes[m.ID])
		}
	}
	for i, n := range p.ServiceNode {
		c.ServiceNode[i] = c.Nodes[n.ID]
	}
	return c
}

// TopoNodes returns all nodes in a topological order (Input first,
// Output last), deterministic by node ID.
func (p *Plan) TopoNodes() []*Node {
	indeg := make([]int, len(p.Nodes))
	for _, n := range p.Nodes {
		for range n.In {
			indeg[n.ID]++
		}
	}
	var ready []int
	for _, n := range p.Nodes {
		if indeg[n.ID] == 0 {
			ready = append(ready, n.ID)
		}
	}
	var order []*Node
	for len(ready) > 0 {
		sort.Ints(ready)
		id := ready[0]
		ready = ready[1:]
		n := p.Nodes[id]
		order = append(order, n)
		for _, m := range n.Out {
			indeg[m.ID]--
			if indeg[m.ID] == 0 {
				ready = append(ready, m.ID)
			}
		}
	}
	return order
}

// Paths enumerates all simple node paths from Input to Output. The
// execution time metric maximizes over these (Eq. 4).
func (p *Plan) Paths() [][]*Node {
	var (
		paths [][]*Node
		walk  func(n *Node, acc []*Node)
	)
	walk = func(n *Node, acc []*Node) {
		acc = append(acc, n)
		if n.Kind == Output {
			cp := make([]*Node, len(acc))
			copy(cp, acc)
			paths = append(paths, cp)
			return
		}
		for _, m := range n.Out {
			walk(m, acc)
		}
	}
	walk(p.InputNode(), nil)
	return paths
}

// Ancestors returns the set of node IDs with a directed path to n
// (excluding n itself). The result is cached and must not be
// mutated.
func (p *Plan) Ancestors(n *Node) map[int]bool {
	if p.anc == nil {
		p.anc = make([]map[int]bool, len(p.Nodes))
		for _, m := range p.TopoNodes() {
			seen := map[int]bool{}
			for _, a := range m.In {
				seen[a.ID] = true
				for id := range p.anc[a.ID] {
					seen[id] = true
				}
			}
			p.anc[m.ID] = seen
		}
	}
	return p.anc[n.ID]
}

// AvailableVars returns the variables bound in tuples flowing out of
// n: the input and output variables of n and of all its ancestors.
func (p *Plan) AvailableVars(n *Node) cq.VarSet {
	vs := cq.VarSet{}
	add := func(m *Node) {
		if m.Kind == Service {
			vs.AddAll(m.InputVars())
			vs.AddAll(m.OutputVars())
		}
	}
	add(n)
	for id := range p.Ancestors(n) {
		add(p.Nodes[id])
	}
	return vs
}

// Signature returns a canonical string identifying the plan's
// structure (assignment, topology, join methods, fetch factors);
// plans with equal signatures are operationally identical.
func (p *Plan) Signature() string {
	var b strings.Builder
	b.WriteString(p.Assignment.String())
	b.WriteByte('|')
	b.WriteString(p.Topology.Key())
	for _, n := range p.Nodes {
		if n.Kind == Join {
			fmt.Fprintf(&b, "|J%d:%s", n.ID, n.Method)
		}
		if n.Chunked() {
			fmt.Fprintf(&b, "|F%s=%d", n.Atom.Label(), n.Fetches)
		}
	}
	return b.String()
}

package plan

import (
	"fmt"
	"sort"
	"strings"

	"mdq/internal/abind"
	"mdq/internal/cq"
)

// MethodChooser selects the parallel join method for two branches,
// given the terminal nodes being combined. The paper fixes the
// method per pair of services at registration time (§3.3).
type MethodChooser func(left, right *Node) JoinMethod

// DefaultMethodChooser uses merge-scan when both branches end in
// chunked search services (no a priori selectivity distinction) and
// nested loop when one side is a bulk service or known selective
// (few tuples, fetched first).
func DefaultMethodChooser(left, right *Node) JoinMethod {
	leftSearch := left.Kind == Service && left.IsSearch()
	rightSearch := right.Kind == Service && right.IsSearch()
	if leftSearch && rightSearch {
		return MergeScan
	}
	if left.Kind == Join || right.Kind == Join {
		return MergeScan
	}
	return NestedLoop
}

// Options configures plan construction.
type Options struct {
	// ChooseMethod picks parallel join methods; nil means
	// DefaultMethodChooser.
	ChooseMethod MethodChooser
	// DefaultFetches is the initial fetching factor for chunked
	// services (phase 3 reassigns it); 0 means 1.
	DefaultFetches int
}

// Build assembles the plan DAG for a query under a given
// access-pattern assignment and topology (§3.3):
//
//   - one service node per atom, wired by the topology's cover
//     edges; a node with several incomparable predecessors receives
//     their combination through a parallel join (cascaded pairwise in
//     atom order, reusing join nodes across consumers);
//   - maximal branches are combined by parallel joins before the
//     Output node;
//   - every selection predicate is attached to the earliest node at
//     which all its variables are bound: a service node (folding into
//     its erspi, §3.4) or the join node where the carrying branches
//     first meet.
//
// Build validates that the topology is a partial order and that every
// atom's input fields are bound by constants or by outputs of its
// ancestors (callability, Definition 3.1).
func Build(q *cq.Query, asn abind.Assignment, topo *Topology, opts Options) (*Plan, error) {
	if len(asn) != len(q.Atoms) {
		return nil, fmt.Errorf("plan: assignment has %d patterns for %d atoms", len(asn), len(q.Atoms))
	}
	if topo.Size() != len(q.Atoms) {
		return nil, fmt.Errorf("plan: topology has %d atoms, query has %d", topo.Size(), len(q.Atoms))
	}
	if !topo.IsPartialOrder() {
		return nil, fmt.Errorf("plan: topology %s is not a strict partial order", topo)
	}
	if err := checkBindings(q, asn, topo); err != nil {
		return nil, err
	}
	chooser := opts.ChooseMethod
	if chooser == nil {
		chooser = DefaultMethodChooser
	}
	defFetch := opts.DefaultFetches
	if defFetch <= 0 {
		defFetch = 1
	}

	p := &Plan{
		Query:       q,
		Assignment:  asn,
		Topology:    topo.Clone(),
		ServiceNode: make([]*Node, len(q.Atoms)),
	}
	newNode := func(kind NodeKind) *Node {
		n := &Node{ID: len(p.Nodes), Kind: kind, Fetches: 1}
		p.Nodes = append(p.Nodes, n)
		return n
	}
	arc := func(from, to *Node) {
		from.Out = append(from.Out, to)
		to.In = append(to.In, from)
	}

	in := newNode(Input)

	// Join cache: combination of a set of branch-terminal node IDs
	// to the join node already built for them.
	joinCache := map[string]*Node{}
	combine := func(sources []*Node) *Node {
		sort.Slice(sources, func(i, j int) bool { return sources[i].ID < sources[j].ID })
		cur := sources[0]
		for _, next := range sources[1:] {
			key := fmt.Sprintf("%d+%d", cur.ID, next.ID)
			if j, ok := joinCache[key]; ok {
				cur = j
				continue
			}
			j := newNode(Join)
			j.Method = chooser(cur, next)
			arc(cur, j)
			arc(next, j)
			joinCache[key] = j
			cur = j
		}
		return cur
	}

	for _, ai := range topo.TopoOrder() {
		atom := q.Atoms[ai]
		n := newNode(Service)
		n.Atom = atom
		n.Pattern = asn[ai]
		if atom.Sig != nil && atom.Sig.Statistics().Chunked() {
			n.Fetches = defFetch
		}
		p.ServiceNode[ai] = n
		preds := topo.CoverPreds(ai)
		if len(preds) == 0 {
			arc(in, n)
			continue
		}
		sources := make([]*Node, len(preds))
		for i, pi := range preds {
			sources[i] = p.ServiceNode[pi]
		}
		arc(combine(sources), n)
	}

	// Combine the maximal branches into the output.
	var sinks []*Node
	for _, n := range p.Nodes {
		if n.Kind != Input && len(n.Out) == 0 {
			sinks = append(sinks, n)
		}
	}
	out := &Node{ID: -1, Kind: Output, Fetches: 1}
	if len(sinks) == 1 {
		p.Nodes = append(p.Nodes, out)
		out.ID = len(p.Nodes) - 1
		arc(sinks[0], out)
	} else {
		top := combine(sinks)
		p.Nodes = append(p.Nodes, out)
		out.ID = len(p.Nodes) - 1
		arc(top, out)
	}

	placePredicates(p)
	return p, nil
}

// checkBindings verifies that under the topology each atom's input
// variables are produced by ancestor atoms (or are constants).
func checkBindings(q *cq.Query, asn abind.Assignment, topo *Topology) error {
	for j, atom := range q.Atoms {
		bound := cq.VarSet{}
		for i := range q.Atoms {
			if topo.Less(i, j) {
				bound.AddAll(abind.OutputVars(q.Atoms[i], asn[i]))
			}
		}
		if !abind.InputsBound(atom, asn[j], bound) {
			return fmt.Errorf("plan: atom %s is not callable after its topology predecessors (bound %s)",
				atom, bound)
		}
	}
	return nil
}

// placePredicates attaches each query predicate to the earliest node
// where all its variables are bound.
func placePredicates(p *Plan) {
	order := p.TopoNodes()
	avail := make(map[int]cq.VarSet, len(order))
	for _, n := range order {
		vs := cq.VarSet{}
		for _, m := range n.In {
			vs.AddAll(avail[m.ID])
		}
		if n.Kind == Service {
			vs.AddAll(n.InputVars())
			vs.AddAll(n.OutputVars())
		}
		avail[n.ID] = vs
	}
	for _, pred := range p.Query.Preds {
		vars := pred.Vars()
		for _, n := range order {
			if n.Kind == Input || n.Kind == Output {
				continue
			}
			if !avail[n.ID].ContainsAll(vars) {
				continue
			}
			// Earliest: no single predecessor already covers vars.
			early := true
			for _, m := range n.In {
				if avail[m.ID].ContainsAll(vars) {
					early = false
					break
				}
			}
			if !early {
				continue
			}
			if n.Kind == Join {
				n.JoinPreds = append(n.JoinPreds, pred)
			} else {
				n.Preds = append(n.Preds, pred)
			}
			break
		}
	}
}

// Validate checks structural invariants of a built plan: unique
// input/output, acyclicity, join nodes binary, service callability,
// and every query predicate attached exactly once.
func (p *Plan) Validate() error {
	if len(p.Nodes) < 2 {
		return fmt.Errorf("plan: too few nodes")
	}
	if p.InputNode().Kind != Input || p.OutputNode().Kind != Output {
		return fmt.Errorf("plan: first node must be Input, last must be Output")
	}
	if len(p.TopoNodes()) != len(p.Nodes) {
		return fmt.Errorf("plan: graph has a cycle")
	}
	for _, n := range p.Nodes {
		switch n.Kind {
		case Input:
			if len(n.In) != 0 {
				return fmt.Errorf("plan: input node has predecessors")
			}
		case Output:
			if len(n.Out) != 0 {
				return fmt.Errorf("plan: output node has successors")
			}
			if len(n.In) != 1 {
				return fmt.Errorf("plan: output node must have exactly one predecessor, has %d", len(n.In))
			}
		case Join:
			if len(n.In) != 2 {
				return fmt.Errorf("plan: join node %d must have exactly two inputs, has %d", n.ID, len(n.In))
			}
		case Service:
			if n.Atom == nil || len(n.Pattern) == 0 {
				return fmt.Errorf("plan: service node %d missing atom or pattern", n.ID)
			}
			if n.Fetches < 1 {
				return fmt.Errorf("plan: service node %s has fetch factor %d", n.Label(), n.Fetches)
			}
			bound := cq.VarSet{}
			for id := range p.Ancestors(n) {
				m := p.Nodes[id]
				if m.Kind == Service {
					bound.AddAll(m.OutputVars())
				}
			}
			if !abind.InputsBound(n.Atom, n.Pattern, bound) {
				return fmt.Errorf("plan: node %s not callable from ancestors", n.Label())
			}
		}
	}
	attached := 0
	for _, n := range p.Nodes {
		attached += len(n.Preds) + len(n.JoinPreds)
	}
	if attached != len(p.Query.Preds) {
		return fmt.Errorf("plan: %d of %d predicates attached", attached, len(p.Query.Preds))
	}
	return nil
}

// Describe returns a one-line summary such as
// "conf → weather → (flight ∥ hotel) ⋈MS".
func (p *Plan) Describe() string {
	var parts []string
	for _, n := range p.TopoNodes() {
		switch n.Kind {
		case Service:
			s := n.Atom.Service
			if n.Chunked() && n.Fetches > 0 {
				s += fmt.Sprintf("[F=%d]", n.Fetches)
			}
			parts = append(parts, s)
		case Join:
			parts = append(parts, "⋈"+n.Method.String())
		}
	}
	return strings.Join(parts, " → ")
}

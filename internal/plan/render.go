package plan

import (
	"fmt"
	"sort"
	"strings"
)

// ASCII renders the plan as an indented adjacency listing in
// topological order, reproducing the content of the paper's plan
// figures (Figs. 6–9) textually. With annotations present (after
// cost estimation) each node also shows t_in/t_out.
//
//	IN
//	└─ conf(1) [exact ξ=20] tin=1 tout=20
//	   └─ weather [exact ξ=0.05] tin=20 tout=1
//	      ├─ flight [search cs=25 F=3] tin=1 tout=75
//	      ├─ hotel [search cs=5 F=4] tin=1 tout=20
//	      └─ ⋈MS tout=15
//	         └─ OUT
func (p *Plan) ASCII() string {
	var b strings.Builder
	order := p.TopoNodes()
	depth := map[int]int{}
	for _, n := range order {
		d := 0
		for _, m := range n.In {
			if depth[m.ID]+1 > d {
				d = depth[m.ID] + 1
			}
		}
		depth[n.ID] = d
	}
	for _, n := range order {
		indent := strings.Repeat("   ", depth[n.ID])
		prefix := "└─ "
		if depth[n.ID] == 0 {
			prefix = ""
		}
		b.WriteString(indent)
		b.WriteString(prefix)
		b.WriteString(describeNode(n))
		if len(n.In) > 1 {
			var from []string
			for _, m := range n.In {
				from = append(from, m.Label())
			}
			sort.Strings(from)
			fmt.Fprintf(&b, "  (inputs: %s)", strings.Join(from, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func describeNode(n *Node) string {
	var b strings.Builder
	switch n.Kind {
	case Input:
		return "IN"
	case Output:
		b.WriteString("OUT")
	case Join:
		b.WriteString("⋈")
		b.WriteString(n.Method.String())
		for _, pr := range n.JoinPreds {
			fmt.Fprintf(&b, " [%s]", pr)
		}
	case Service:
		b.WriteString(n.Atom.Service)
		fmt.Fprintf(&b, "(%s)", n.Pattern)
		if n.Atom.Sig != nil {
			st := n.Atom.Sig.Statistics()
			if st.Chunked() {
				fmt.Fprintf(&b, " [%s cs=%d F=%d]", n.Atom.Sig.Kind, st.ChunkSize, n.Fetches)
			} else {
				fmt.Fprintf(&b, " [%s ξ=%g]", n.Atom.Sig.Kind, st.ERSPI)
			}
		}
		for _, pr := range n.Preds {
			fmt.Fprintf(&b, " [%s]", pr)
		}
	}
	if n.TOut > 0 {
		fmt.Fprintf(&b, " tin=%s calls=%s tout=%s", trimFloat(n.TIn), trimFloat(n.Calls), trimFloat(n.TOut))
	}
	return b.String()
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// DOT renders the plan in Graphviz syntax, with the paper's visual
// conventions approximated: search services as trapezia, exact
// proliferative services with an asterisk, joins as diamonds.
func (p *Plan) DOT() string {
	var b strings.Builder
	b.WriteString("digraph plan {\n  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n")
	for _, n := range p.Nodes {
		attrs := ""
		label := n.Label()
		switch n.Kind {
		case Input:
			attrs = "shape=circle, label=\"IN\""
		case Output:
			attrs = "shape=doublecircle, label=\"OUT\""
		case Join:
			attrs = fmt.Sprintf("shape=diamond, label=\"%s\"", n.Method)
		case Service:
			shape := "box"
			if n.IsSearch() {
				shape = "trapezium"
			}
			if n.Atom.Sig != nil && !n.Atom.Sig.Statistics().Chunked() && n.Atom.Sig.Statistics().Proliferative() {
				label += "*"
			}
			if n.Chunked() {
				label += fmt.Sprintf("\\nF=%d", n.Fetches)
			}
			if n.TOut > 0 {
				label += fmt.Sprintf("\\ntin=%s tout=%s", trimFloat(n.TIn), trimFloat(n.TOut))
			}
			attrs = fmt.Sprintf("shape=%s, label=\"%s\"", shape, label)
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, attrs)
	}
	for _, n := range p.Nodes {
		for _, m := range n.Out {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", n.ID, m.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

package plan_test

import (
	"strings"
	"testing"

	"mdq/internal/cq"

	. "mdq/internal/plan"
	"mdq/internal/simweb"
)

func TestTopologyBasics(t *testing.T) {
	c := Chain([]int{2, 0, 1})
	if !c.Less(2, 0) || !c.Less(2, 1) || !c.Less(0, 1) {
		t.Error("chain order wrong")
	}
	if c.Less(1, 0) {
		t.Error("chain should be antisymmetric")
	}
	if !c.IsPartialOrder() {
		t.Error("chain is a partial order")
	}
	if got := c.TopoOrder(); got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Errorf("TopoOrder = %v", got)
	}
	if got := c.Minimal(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Minimal = %v", got)
	}
	if got := c.Maximal(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Maximal = %v", got)
	}
}

func TestTopologyClose(t *testing.T) {
	tp := NewTopology(3)
	tp.SetLess(0, 1)
	tp.SetLess(1, 2)
	if tp.IsPartialOrder() {
		t.Error("not transitively closed yet")
	}
	if !tp.Close() {
		t.Fatal("Close reported a cycle")
	}
	if !tp.Less(0, 2) {
		t.Error("transitive edge missing")
	}
	// Cycle detection.
	cy := NewTopology(2)
	cy.SetLess(0, 1)
	cy.SetLess(1, 0)
	if cy.Close() {
		t.Error("cycle not detected")
	}
}

func TestTopologyCoverPreds(t *testing.T) {
	// Diamond: 0 < 1, 0 < 2, 1 < 3, 2 < 3.
	tp := NewTopology(4)
	tp.SetLess(0, 1)
	tp.SetLess(0, 2)
	tp.SetLess(1, 3)
	tp.SetLess(2, 3)
	tp.Close()
	cp := tp.CoverPreds(3)
	if len(cp) != 2 || cp[0] != 1 || cp[1] != 2 {
		t.Errorf("CoverPreds(3) = %v, want [1 2]", cp)
	}
	if cp0 := tp.CoverPreds(0); len(cp0) != 0 {
		t.Errorf("CoverPreds(0) = %v, want empty", cp0)
	}
}

func TestLayersTopology(t *testing.T) {
	tp := Layers([][]int{{2}, {3}, {0, 1}})
	if !tp.Less(2, 3) || !tp.Less(2, 0) || !tp.Less(3, 1) {
		t.Error("layer precedence missing")
	}
	if tp.Less(0, 1) || tp.Less(1, 0) {
		t.Error("same-layer atoms must be incomparable")
	}
	if !tp.IsPartialOrder() {
		t.Error("layers must produce a partial order")
	}
}

func fixture(t *testing.T) (*simweb.TravelWorld, *Plan) {
	t.Helper()
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	return w, p
}

// TestBuildPlanO checks that the plan of Figure 8 comes out of the
// constructor: IN → conf → weather → (flight ∥ hotel) → ⋈MS → OUT.
func TestBuildPlanO(t *testing.T) {
	_, p := fixture(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	joins := p.JoinNodes()
	if len(joins) != 1 {
		t.Fatalf("join nodes = %d, want 1", len(joins))
	}
	j := joins[0]
	if j.Method != MergeScan {
		t.Errorf("join method = %v, want MS (registered for flight/hotel)", j.Method)
	}
	if len(j.JoinPreds) != 1 || !strings.Contains(j.JoinPreds[0].String(), "FPrice") {
		t.Errorf("price predicate should sit on the join, got %v", j.JoinPreds)
	}
	// flight and hotel feed the join.
	var feeders []string
	for _, in := range j.In {
		feeders = append(feeders, in.Atom.Service)
	}
	if !(contains(feeders, "flight") && contains(feeders, "hotel")) {
		t.Errorf("join inputs = %v", feeders)
	}
	// conf holds the date predicates, weather the temperature.
	confNode := p.ServiceNode[simweb.AtomConf]
	if len(confNode.Preds) != 2 {
		t.Errorf("conf preds = %v, want the two date windows", confNode.Preds)
	}
	weatherNode := p.ServiceNode[simweb.AtomWeather]
	if len(weatherNode.Preds) != 1 || !strings.Contains(weatherNode.Preds[0].String(), "Temperature") {
		t.Errorf("weather preds = %v", weatherNode.Preds)
	}
	// Fetch factors as requested.
	if p.ServiceNode[simweb.AtomFlight].Fetches != 3 || p.ServiceNode[simweb.AtomHotel].Fetches != 4 {
		t.Error("fetch factors not installed")
	}
	// Chunked nodes are flight and hotel.
	if got := len(p.ChunkedNodes()); got != 2 {
		t.Errorf("chunked nodes = %d, want 2", got)
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func TestPlanPaths(t *testing.T) {
	_, p := fixture(t)
	paths := p.Paths()
	// Plan O has two IN→OUT paths: through flight and through hotel.
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	for _, path := range paths {
		if path[0].Kind != Input || path[len(path)-1].Kind != Output {
			t.Error("path must run from IN to OUT")
		}
	}
}

func TestPlanClone(t *testing.T) {
	_, p := fixture(t)
	c := p.Clone()
	if c.Signature() != p.Signature() {
		t.Error("clone changes signature")
	}
	c.ServiceNode[simweb.AtomFlight].Fetches = 9
	if p.ServiceNode[simweb.AtomFlight].Fetches == 9 {
		t.Error("clone shares nodes with original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestBuildRejectsUnboundTopology(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	// weather before conf: City/Start unbound at weather.
	bad := Chain([]int{simweb.AtomWeather, simweb.AtomConf, simweb.AtomFlight, simweb.AtomHotel})
	if _, err := Build(q, simweb.AssignmentAlpha1(), bad, Options{}); err == nil {
		t.Error("Build accepted a topology violating callability")
	}
}

func TestBuildSerialAndParallelShapes(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	s, err := w.BuildPlan(q, simweb.PlanSTopology(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.JoinNodes()) != 0 {
		t.Errorf("serial plan has %d joins, want 0 (all pipe)", len(s.JoinNodes()))
	}
	if len(s.Paths()) != 1 {
		t.Errorf("serial plan paths = %d, want 1", len(s.Paths()))
	}
	p, err := w.BuildPlan(q, simweb.PlanPTopology(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.JoinNodes()) != 2 {
		t.Errorf("parallel plan joins = %d, want 2 (cascade of 3 branches)", len(p.JoinNodes()))
	}
	if len(p.Paths()) != 3 {
		t.Errorf("parallel plan paths = %d, want 3", len(p.Paths()))
	}
}

func TestRenderers(t *testing.T) {
	_, p := fixture(t)
	ascii := p.ASCII()
	for _, want := range []string{"IN", "OUT", "conf", "weather", "flight", "hotel", "⋈MS", "F=3", "F=4"} {
		if !strings.Contains(ascii, want) {
			t.Errorf("ASCII rendering missing %q:\n%s", want, ascii)
		}
	}
	dot := p.DOT()
	for _, want := range []string{"digraph", "trapezium", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT rendering missing %q", want)
		}
	}
	if !strings.Contains(p.Describe(), "⋈MS") {
		t.Errorf("Describe = %s", p.Describe())
	}
}

func TestSignatureDistinguishesPlans(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
	b, _ := w.BuildPlan(q, simweb.PlanOTopology(), 2, 4)
	c, _ := w.BuildPlan(q, simweb.PlanSTopology(), 3, 4)
	if a.Signature() == b.Signature() {
		t.Error("fetch factors must show in the signature")
	}
	if a.Signature() == c.Signature() {
		t.Error("topology must show in the signature")
	}
}

func TestAvailableVars(t *testing.T) {
	_, p := fixture(t)
	flight := p.ServiceNode[simweb.AtomFlight]
	av := p.AvailableVars(flight)
	for _, v := range []string{"City", "Start", "End", "FPrice", "Conf", "Temperature"} {
		if !av.Has(cqVar(v)) {
			t.Errorf("flight availability missing %s", v)
		}
	}
	if av.Has("HPrice") {
		t.Error("HPrice is not available on the flight branch")
	}
}

// cqVar avoids importing cq just for the Var conversion.
func cqVar(s string) cq.Var { return cq.Var(s) }

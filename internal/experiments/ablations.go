package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/exec"
	"mdq/internal/fetch"
	"mdq/internal/opt"
	"mdq/internal/plan"
	"mdq/internal/sim"
	"mdq/internal/simweb"
	"mdq/internal/wsms"
)

// AblationHeuristics measures the quality of the §4.2.1 seed
// heuristics against the exact optimum, per metric: how close the
// "selective" (serial) and "parallel" seeds land, which is what
// makes the branch and bound converge quickly.
func AblationHeuristics() (*Report, error) {
	fx, err := newTravelFixture(simweb.TravelOptions{})
	if err != nil {
		return nil, err
	}
	asn := simweb.AssignmentAlpha1()
	est := card.Config{Mode: card.OneCall}

	rep := &Report{
		Title: "Ablation — seed heuristics vs exact optimum (α1, k=10)",
		Cols:  []string{"metric", "serial seed", "parallel seed", "optimum", "best seed gap"},
	}
	for _, metric := range []cost.Metric{cost.ExecTime{}, cost.RequestResponse{}, cost.SumCost{}} {
		evalTopo := func(t *plan.Topology) float64 {
			p, err := plan.Build(fx.Query, asn, t, plan.Options{ChooseMethod: fx.World.Registry.MethodChooser()})
			if err != nil {
				return cost.Infinite
			}
			fa := &fetch.Assigner{Estimator: est, Metric: metric, K: 10}
			return fa.Assign(p).Cost
		}
		serial := evalTopo(opt.SerialHeuristic(fx.Query, asn, est))
		parallel := evalTopo(opt.ParallelHeuristic(fx.Query, asn))
		o := &opt.Optimizer{Metric: metric, Estimator: est, K: 10,
			ChooseMethod: fx.World.Registry.MethodChooser()}
		res, err := o.Optimize(fx.Query)
		if err != nil {
			return nil, err
		}
		bestSeed := serial
		if parallel < bestSeed {
			bestSeed = parallel
		}
		gap := "0%"
		if res.Cost > 0 {
			gap = fmt.Sprintf("%.0f%%", 100*(bestSeed-res.Cost)/res.Cost)
		}
		rep.AddRow(metric.Name(), f1(serial), f1(parallel), f1(res.Cost), gap)
	}
	rep.AddNote("a good seed gives the branch and bound a tight initial upper bound (§4)")
	return rep, nil
}

// AblationFetchHeuristics compares the greedy and square-is-better
// initializations of §4.3.1 on the running example across k.
func AblationFetchHeuristics() (*Report, error) {
	rep := &Report{
		Title: "Ablation — fetch heuristics (plan O, ETM)",
		Cols:  []string{"k", "greedy vector", "greedy cost", "square vector", "square cost", "exact optimum"},
	}
	for _, k := range []int{10, 25, 50, 100} {
		row := []string{fmt.Sprintf("%d", k)}
		var exact float64
		for _, h := range []fetch.Heuristic{fetch.Greedy, fetch.Square} {
			fx, err := newTravelFixture(simweb.TravelOptions{})
			if err != nil {
				return nil, err
			}
			p, err := fx.World.BuildPlan(fx.Query, simweb.PlanOTopology(), 1, 1)
			if err != nil {
				return nil, err
			}
			fa := &fetch.Assigner{Estimator: card.Config{Mode: card.OneCall},
				Metric: cost.ExecTime{}, K: k, Heuristic: h}
			fr := fa.Assign(p)
			row = append(row, fmt.Sprintf("%v", fr.Vector), f1(fr.Cost))
			exact = fr.Cost // both end at the exact optimum after exploration
		}
		row = append(row, f1(exact))
		rep.AddRow(row...)
	}
	rep.AddNote("both heuristics seed the same exhaustive exploration; the table shows the final vectors")
	return rep, nil
}

// AblationCacheEstimates compares the three invocation estimates of
// §5.2 (Eq. 1 no-cache, Eq. 2 one-call, distinct-input optimal)
// against the executor's measured calls, per plan.
func AblationCacheEstimates(ctx context.Context) (*Report, error) {
	rep := &Report{
		Title: "Ablation — invocation estimates (Eq. 1 / Eq. 2) vs measured calls",
		Cols:  []string{"plan", "service", "est no-cache", "meas", "est one-call", "meas", "est optimal", "meas"},
	}
	for _, pl := range []struct {
		name string
		topo *plan.Topology
	}{
		{"S", simweb.PlanSTopology()}, {"O", simweb.PlanOTopology()},
	} {
		type cell struct{ est, meas float64 }
		table := map[string]map[card.CacheMode]cell{}
		for _, mode := range []card.CacheMode{card.NoCache, card.OneCall, card.Optimal} {
			fx, err := newTravelFixture(simweb.TravelOptions{})
			if err != nil {
				return nil, err
			}
			p, err := fx.World.BuildPlan(fx.Query, pl.topo, 3, 4)
			if err != nil {
				return nil, err
			}
			card.Config{Mode: mode}.Annotate(p)
			est := map[string]float64{}
			for _, n := range p.Nodes {
				if n.Kind == plan.Service {
					est[n.Atom.Service] = n.Calls
				}
			}
			r := &exec.Runner{Registry: fx.World.Registry, Cache: mode}
			res, err := r.Run(ctx, p)
			if err != nil {
				return nil, err
			}
			for svc, e := range est {
				if table[svc] == nil {
					table[svc] = map[card.CacheMode]cell{}
				}
				table[svc][mode] = cell{est: e, meas: float64(res.Stats.Calls[svc])}
			}
		}
		for _, svc := range []string{"weather", "flight", "hotel"} {
			rep.AddRow(pl.name, svc,
				f1(table[svc][card.NoCache].est), f1(table[svc][card.NoCache].meas),
				f1(table[svc][card.OneCall].est), f1(table[svc][card.OneCall].meas),
				f1(table[svc][card.Optimal].est), f1(table[svc][card.Optimal].meas),
			)
		}
	}
	rep.AddNote("estimates use Table 1 statistics (erspi 20 for conf); measurements see the actual 71 'DB' tuples, " +
		"so absolute values differ while the block-collapse structure matches (cf. Figure 8 vs Figure 11)")
	return rep, nil
}

// AblationJoinStrategies sweeps the size of the selective (left)
// join side and reports how many tuples each strategy consumes from
// the two ranked inputs before k matches are produced — the NL vs MS
// trade-off of Figure 5. Nested loop must fully drain the left side
// before emitting anything, so it is the right choice exactly when
// that side is small ("one service that is highly selective, and
// produces the highly ranked tuples with few fetches", §3.3);
// merge-scan's anti-diagonals consume both sides evenly and win when
// neither side dominates.
func AblationJoinStrategies() (*Report, error) {
	const (
		rightSize = 100
		k         = 10
		sel       = 0.05
	)
	match := func(i, j int) bool {
		h := fnv.New32a()
		fmt.Fprintf(h, "%d/%d", i, j)
		return float64(h.Sum32()%1000) < sel*1000
	}
	rep := &Report{
		Title: "Ablation — tuples consumed until k=10 join matches (σ=0.05)",
		Cols:  []string{"left size", "NL left+right", "NL total", "MS left+right", "MS total", "winner"},
	}
	for _, nLeft := range []int{2, 5, 10, 25, 50, 100} {
		// Nested loop: all left fetches up front, then right tuples
		// in rank order, each scanned against the resident left side.
		nlRight, found := 0, 0
		for j := 0; j < rightSize && found < k; j++ {
			nlRight++
			for i := 0; i < nLeft && found < k; i++ {
				if match(i, j) {
					found++
				}
			}
		}
		nlCost := nLeft + nlRight

		// Merge-scan: anti-diagonals; consumption is the deepest
		// index reached on each side.
		msL, msR, found2 := 0, 0, 0
	outer:
		for d := 0; d < nLeft+rightSize-1; d++ {
			i0 := d - rightSize + 1
			if i0 < 0 {
				i0 = 0
			}
			for i := i0; i <= d && i < nLeft; i++ {
				j := d - i
				if i+1 > msL {
					msL = i + 1
				}
				if j+1 > msR {
					msR = j + 1
				}
				if match(i, j) {
					found2++
					if found2 >= k {
						break outer
					}
				}
			}
		}
		msCost := msL + msR
		winner := "MS"
		if nlCost <= msCost {
			winner = "NL" // ties go to the simpler schedule
		}
		rep.AddRow(fmt.Sprintf("%d", nLeft),
			fmt.Sprintf("%d+%d", nLeft, nlRight), fmt.Sprintf("%d", nlCost),
			fmt.Sprintf("%d+%d", msL, msR), fmt.Sprintf("%d", msCost),
			winner)
	}
	rep.AddNote("NL pays the whole left side before the first output; MS balances both sides — the paper " +
		"fixes the method per service pair at registration time (§3.3)")
	return rep, nil
}

// AblationPipelining compares the paper's stage-synchronous engine
// with our pipelined mode on all three plans (our engine's
// improvement over the reproduced system).
func AblationPipelining(ctx context.Context) (*Report, error) {
	rep := &Report{
		Title: "Ablation — stage-synchronous (paper's engine) vs pipelined execution (no cache)",
		Cols:  []string{"plan", "stage-sync", "pipelined", "speedup"},
	}
	for _, pl := range []struct {
		name string
		topo *plan.Topology
	}{
		{"S", simweb.PlanSTopology()}, {"P", simweb.PlanPTopology()}, {"O", simweb.PlanOTopology()},
	} {
		var spans [2]time.Duration
		for i, pipelined := range []bool{false, true} {
			fx, err := newTravelFixture(simweb.TravelOptions{})
			if err != nil {
				return nil, err
			}
			p, err := fx.World.BuildPlan(fx.Query, pl.topo, 3, 4)
			if err != nil {
				return nil, err
			}
			s := &sim.Simulator{Registry: fx.World.Registry, Cache: card.NoCache, Pipelined: pipelined}
			res, err := s.Run(ctx, p)
			if err != nil {
				return nil, err
			}
			spans[i] = res.Makespan
		}
		rep.AddRow(pl.name,
			fmt.Sprintf("%.0fs", spans[0].Seconds()),
			fmt.Sprintf("%.0fs", spans[1].Seconds()),
			fmt.Sprintf("%.2f×", spans[0].Seconds()/spans[1].Seconds()))
	}
	return rep, nil
}

// AblationBaseline compares the paper's optimizer with the WSMS
// baseline of [16] on the running example under both metrics.
func AblationBaseline() (*Report, error) {
	fx, err := newTravelFixture(simweb.TravelOptions{})
	if err != nil {
		return nil, err
	}
	base := &wsms.Optimizer{}
	bres, err := base.Optimize(fx.Query)
	if err != nil {
		return nil, err
	}
	baseline := bres.Plan.Clone()
	fa := &fetch.Assigner{Estimator: card.Config{Mode: card.OneCall}, Metric: cost.ExecTime{}, K: 10}
	fr := fa.Assign(baseline)

	ours := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: fx.World.Registry.MethodChooser()}
	ores, err := ours.Optimize(fx.Query)
	if err != nil {
		return nil, err
	}
	// The bottleneck-optimal chain can be pathological: the metric
	// does not charge for producing too few answers, so a chain that
	// starves its own output looks "fast" — exactly the §2.3
	// criticism. Also show the baseline's greedy chain on the most
	// cogent assignment for a softer comparison.
	greedy, err := wsms.GreedyChain(fx.Query, simweb.AssignmentAlpha1(), card.Config{})
	if err != nil {
		return nil, err
	}
	fg := fa.Assign(greedy)

	rep := &Report{
		Title: "Baseline — WSMS (Srivastava et al. [16], bottleneck metric) vs this paper",
		Cols:  []string{"optimizer", "plan", "ETM for k=10"},
	}
	rep.AddRow("WSMS bottleneck-optimal chain", baseline.Describe(), f1(fr.Cost)+"s")
	rep.AddRow("WSMS greedy chain on α1", greedy.Describe(), f1(fg.Cost)+"s")
	rep.AddRow("this paper", ores.Best.Describe(), f1(ores.Cost)+"s")
	rep.AddNote("WSMS assumes exact services without chunking and minimizes the bottleneck metric (§2.3); " +
		"its chains cannot parallelize flight and hotel")
	rep.AddNote("the bottleneck metric does not charge for result starvation, so the metric-optimal chain " +
		"accesses hotels without bindings and needs enormous fetch factors to reach k — the paper's argument " +
		"for why that metric 'is not advised in our context'")
	return rep, nil
}

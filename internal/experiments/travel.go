package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mdq/internal/abind"
	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/exec"
	"mdq/internal/fetch"
	"mdq/internal/opt"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/sim"
	"mdq/internal/simweb"
)

// travelFixture bundles the world and resolved query.
type travelFixture struct {
	World *simweb.TravelWorld
	Query *cq.Query
}

func newTravelFixture(opts simweb.TravelOptions) (*travelFixture, error) {
	w := simweb.NewTravelWorld(opts)
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		return nil, err
	}
	return &travelFixture{World: w, Query: q}, nil
}

// Table1 reproduces the service characterization of Table 1 by
// sampling the simulated services (§5: estimates by sampling; §3.4:
// template predicates folded into the erspi, which is how weather
// profiles at 0.05).
func Table1(ctx context.Context) (*Report, error) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{DisableServerCache: true})
	rep := &Report{
		Title: "Table 1 — Characterization of the example services",
		Cols:  []string{"service", "type", "chunk (paper)", "chunk (ours)", "erspi (paper)", "erspi (ours)", "τ (paper)", "τ (ours)"},
	}
	profile := func(tab interface {
		service.Service
		Sampler() service.InputSampler
	}, filter func([]schema.Value) bool) (schema.Stats, error) {
		p := &service.Profiler{Samples: 200, Seed: 1, Filter: filter}
		return p.Profile(ctx, tab, 0, tab.Sampler())
	}
	confStats, err := profile(w.Conf, nil)
	if err != nil {
		return nil, err
	}
	weatherStats, err := profile(w.Weather, func(row []schema.Value) bool {
		return row[1].Num >= simweb.HotTemperature
	})
	if err != nil {
		return nil, err
	}
	flightStats, err := profile(w.Flight, nil)
	if err != nil {
		return nil, err
	}
	hotelStats, err := profile(w.Hotel, nil)
	if err != nil {
		return nil, err
	}
	add := func(name, kind string, paperChunk string, st schema.Stats, paperERSPI string, erspi string, paperTau float64) {
		chunk := "-"
		if st.ChunkSize > 0 {
			chunk = fmt.Sprintf("%d", st.ChunkSize)
		}
		rep.AddRow(name, kind, paperChunk, chunk, paperERSPI, erspi, f1(paperTau)+"s", f2(st.ResponseTime.Seconds())+"s")
	}
	add("conf", "exact", "-", confStats, "20", f1(confStats.ERSPI), 1.2)
	add("weather", "exact", "-", weatherStats, "0.05", f2(weatherStats.ERSPI), 1.5)
	add("flight", "search", "25", flightStats, "-", "-", 9.7)
	add("hotel", "search", "5", hotelStats, "-", "-", 4.9)
	rep.AddNote("weather profiled with the query template's Temperature ≥ 28 predicate folded in (§3.4)")
	return rep, nil
}

// Example41 reproduces the access-pattern analysis of Example 4.1.
func Example41() (*Report, error) {
	fx, err := newTravelFixture(simweb.TravelOptions{})
	if err != nil {
		return nil, err
	}
	all, err := abind.EnumerateAll(fx.Query)
	if err != nil {
		return nil, err
	}
	perm, err := abind.Enumerate(fx.Query)
	if err != nil {
		return nil, err
	}
	frontier := abind.MostCogent(perm)
	rep := &Report{
		Title: "Example 4.1 — Access-pattern selection",
		Cols:  []string{"quantity", "paper", "ours"},
	}
	rep.AddRow("candidate sequences", "4", fmt.Sprintf("%d", len(all)))
	rep.AddRow("permissible sequences", "3 (α3 excluded)", fmt.Sprintf("%d", len(perm)))
	rep.AddRow("most cogent sequences", "2 (α1, α4)", fmt.Sprintf("%d", len(frontier)))
	for _, a := range frontier {
		rep.AddNote("most cogent: %s", a)
	}
	return rep, nil
}

// Example51 reproduces the plan-space analysis of Example 5.1: the
// 19 alternative plans under α1 with their execution-time costs, the
// optimum, and the branch-and-bound pruning statistics.
func Example51() (*Report, error) {
	fx, err := newTravelFixture(simweb.TravelOptions{})
	if err != nil {
		return nil, err
	}
	asn := simweb.AssignmentAlpha1()
	topos := opt.EnumerateTopologies(fx.Query, asn)

	est := card.Config{Mode: card.OneCall}
	type scored struct {
		topo *plan.Topology
		cost float64
		desc string
	}
	var plans []scored
	for _, topo := range topos {
		p, err := plan.Build(fx.Query, asn, topo, plan.Options{ChooseMethod: fx.World.Registry.MethodChooser()})
		if err != nil {
			continue
		}
		fa := &fetch.Assigner{Estimator: est, Metric: cost.ExecTime{}, K: 10}
		fr := fa.Assign(p)
		plans = append(plans, scored{topo: topo, cost: fr.Cost, desc: p.Describe()})
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].cost < plans[j].cost })

	o := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: est, K: 10,
		ChooseMethod: fx.World.Registry.MethodChooser()}
	res, err := o.Optimize(fx.Query)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Title: "Example 5.1 — Plan space under α1 (ETM, one-call estimates, k=10)",
		Cols:  []string{"rank", "plan", "ETM (s)"},
	}
	for i, s := range plans {
		rep.AddRow(fmt.Sprintf("%d", i+1), s.desc, f1(s.cost))
	}
	rep.AddNote("alternative plans: %d (paper: 19)", len(plans))
	rep.AddNote("optimal topology: %s (paper: plan O, conf→weather→(flight∥hotel))", res.Best.Describe())
	rep.AddNote("branch and bound: %d states visited, %d pruned, %d complete plans costed",
		res.Stats.StatesVisited, res.Stats.StatesPruned, res.Stats.Leaves)
	return rep, nil
}

// Figure8 reproduces the physical access plan of Figure 8: the
// optimizer's plan O with the paper's Eq. 6 fetch factors and the
// t_in/t_out annotations.
func Figure8() (*Report, error) {
	fx, err := newTravelFixture(simweb.TravelOptions{})
	if err != nil {
		return nil, err
	}
	p, err := fx.World.BuildPlan(fx.Query, simweb.PlanOTopology(), 1, 1)
	if err != nil {
		return nil, err
	}
	est := card.Config{Mode: card.OneCall}
	toutOnes := est.Annotate(p)
	// K′ = ⌈k / t_out(1,1)⌉ (§5.3.1 with the join selectivity folded
	// into the bulk erspi).
	k := 10
	kPrime := int(float64(k)/toutOnes + 0.999999)
	flight := p.ServiceNode[simweb.AtomFlight]
	hotel := p.ServiceNode[simweb.AtomHotel]
	fF, fH := fetch.PairParallelPaper(kPrime,
		flight.Calls*flight.Atom.Sig.Statistics().ResponseTime.Seconds(),
		hotel.Calls*hotel.Atom.Sig.Statistics().ResponseTime.Seconds())
	flight.Fetches, hotel.Fetches = fF, fH
	tout := est.Annotate(p)

	rep := &Report{
		Title: "Figure 8 — Physical access plan for plan O (k=10)",
		Cols:  []string{"quantity", "paper", "ours"},
	}
	rep.AddRow("K′ = F_flight·F_hotel lower bound", "8", fmt.Sprintf("%d", kPrime))
	rep.AddRow("F_flight (Eq. 6)", "3", fmt.Sprintf("%d", fF))
	rep.AddRow("F_hotel (Eq. 6)", "4", fmt.Sprintf("%d", fH))
	rep.AddRow("t_out(conf)", "20", f1(p.ServiceNode[simweb.AtomConf].TOut))
	rep.AddRow("t_in(weather)", "20", f1(p.ServiceNode[simweb.AtomWeather].Calls))
	rep.AddRow("t_out(weather)", "1", f1(p.ServiceNode[simweb.AtomWeather].TOut))
	rep.AddRow("t_in(flight)", "1", f1(flight.Calls))
	rep.AddRow("t_out(flight)", "75", f1(flight.TOut))
	rep.AddRow("t_in(hotel)", "1", f1(hotel.Calls))
	rep.AddRow("t_out(hotel)", "20", f1(hotel.TOut))
	rep.AddRow("t_MS (Cartesian)", "1500", f1(p.JoinNodes()[0].TOut/0.01))
	rep.AddRow("t_MS (after σ=0.01)", "15", f1(tout))
	fa := &fetch.Assigner{Estimator: est, Metric: cost.ExecTime{}, K: k}
	p2, _ := fx.World.BuildPlan(fx.Query, simweb.PlanOTopology(), 1, 1)
	fr := fa.Assign(p2)
	rep.AddNote("exact phase-3 optimum: F=%v with ETM %.1f s — the paper's independent ⌈√·⌉ rounding "+
		"(3,4) over-satisfies K′ (see EXPERIMENTS.md)", fr.Vector, fr.Cost)
	return rep, nil
}

// PaperFig11Calls is the call-count panel of Figure 11 as printed in
// the paper, indexed by [plan][cache] → (weather, flight, hotel).
var PaperFig11Calls = map[string]map[card.CacheMode][3]int64{
	"S": {card.NoCache: {71, 16, 284}, card.OneCall: {71, 16, 15}, card.Optimal: {54, 11, 10}},
	"P": {card.NoCache: {71, 71, 71}, card.OneCall: {71, 71, 71}, card.Optimal: {54, 54, 54}},
	"O": {card.NoCache: {71, 16, 16}, card.OneCall: {71, 16, 16}, card.Optimal: {54, 11, 11}},
}

// PaperFig11Times is the total-time panel of Figure 11 (seconds).
var PaperFig11Times = map[string]map[card.CacheMode]float64{
	"S": {card.NoCache: 374, card.OneCall: 266, card.Optimal: 176},
	"P": {card.NoCache: 596, card.OneCall: 598, card.Optimal: 512},
	"O": {card.NoCache: 218, card.OneCall: 219, card.Optimal: 155},
}

// Figure11Cell is one measured cell of the experiment.
type Figure11Cell struct {
	Plan     string
	Cache    card.CacheMode
	Calls    map[string]int64
	Makespan time.Duration
}

// Figure11Data runs the nine cells on the discrete-event simulator
// and returns the raw measurements (used by both the report and the
// benchmarks).
func Figure11Data(ctx context.Context) ([]Figure11Cell, error) {
	var cells []Figure11Cell
	for _, pl := range []struct {
		name string
		topo *plan.Topology
	}{
		{"S", simweb.PlanSTopology()},
		{"P", simweb.PlanPTopology()},
		{"O", simweb.PlanOTopology()},
	} {
		for _, mode := range []card.CacheMode{card.NoCache, card.OneCall, card.Optimal} {
			fx, err := newTravelFixture(simweb.TravelOptions{})
			if err != nil {
				return nil, err
			}
			p, err := fx.World.BuildPlan(fx.Query, pl.topo, 3, 4)
			if err != nil {
				return nil, err
			}
			s := &sim.Simulator{Registry: fx.World.Registry, Cache: mode}
			res, err := s.Run(ctx, p)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Figure11Cell{
				Plan: pl.name, Cache: mode, Calls: res.Stats.Calls, Makespan: res.Makespan,
			})
		}
	}
	return cells, nil
}

// Figure11 reproduces both panels of Figure 11: service calls per
// plan and caching setting, and total execution times.
func Figure11(ctx context.Context) (*Report, error) {
	cells, err := Figure11Data(ctx)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title: "Figure 11 — Calls per service and total times (plans S, P, O × cache settings)",
		Cols: []string{"plan", "cache", "conf", "weather (paper)", "flight (paper)", "hotel (paper)",
			"time (paper)"},
	}
	for _, c := range cells {
		paper := PaperFig11Calls[c.Plan][c.Cache]
		pt := PaperFig11Times[c.Plan][c.Cache]
		rep.AddRow(c.Plan, c.Cache.String(),
			d0(c.Calls["conf"]),
			fmt.Sprintf("%d (%d)", c.Calls["weather"], paper[0]),
			fmt.Sprintf("%d (%d)", c.Calls["flight"], paper[1]),
			fmt.Sprintf("%d (%d)", c.Calls["hotel"], paper[2]),
			fmt.Sprintf("%.0fs (%.0fs)", c.Makespan.Seconds(), pt),
		)
	}
	rep.AddNote("calls match the paper exactly in all nine cells; times preserve every ordering " +
		"(O < S < P per setting; caching monotone; one-call flat for O and P)")
	return rep, nil
}

// Multithread reproduces the §6 multithreading test: parallel
// dispatch of all calls in a stage (deterministic makespans from the
// simulator with jittered latencies, plus the one-call cache
// degradation measured on the concurrent runner).
func Multithread(ctx context.Context) (*Report, error) {
	jitter := simweb.TravelOptions{JitterSigma: 0.75}
	fx, err := newTravelFixture(jitter)
	if err != nil {
		return nil, err
	}
	runSim := func(parallel bool) (*sim.Result, error) {
		p, err := fx.World.BuildPlan(fx.Query, simweb.PlanSTopology(), 3, 4)
		if err != nil {
			return nil, err
		}
		s := &sim.Simulator{Registry: fx.World.Registry, Cache: card.NoCache, ParallelCalls: parallel}
		return s.Run(ctx, p)
	}
	seq, err := runSim(false)
	if err != nil {
		return nil, err
	}
	par, err := runSim(true)
	if err != nil {
		return nil, err
	}

	// One-call cache degradation under real concurrency: the runner
	// interleaves result tuples across blocks, so hotel misses climb
	// from 15 toward 284 (the paper measured 212).
	fx2, err := newTravelFixture(simweb.TravelOptions{})
	if err != nil {
		return nil, err
	}
	p, err := fx2.World.BuildPlan(fx2.Query, simweb.PlanSTopology(), 3, 4)
	if err != nil {
		return nil, err
	}
	r := &exec.Runner{Registry: fx2.World.Registry, Cache: card.OneCall, ParallelCalls: true, MaxParallel: 16}
	rres, err := r.Run(ctx, p)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Title: "§6 multithreading — parallel dispatch of stage calls (plan S)",
		Cols:  []string{"quantity", "paper", "ours"},
	}
	rep.AddRow("sequential makespan", "374s", fmt.Sprintf("%.0fs", seq.Makespan.Seconds()))
	rep.AddRow("parallel-dispatch makespan", "76s", fmt.Sprintf("%.0fs", par.Makespan.Seconds()))
	rep.AddRow("hotel calls, one-call cache, multithreaded", "212 (vs 15 sequential)", d0(rres.Stats.Calls["hotel"]))
	rep.AddNote("parallel makespan ≈ sum of the slowest calls per stage (jittered latencies, log-σ 0.75)")
	rep.AddNote("the runner's interleaving is scheduler-dependent; the measured degradation varies per run " +
		"between 15 and 284")
	return rep, nil
}

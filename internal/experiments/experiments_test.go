package experiments_test

import (
	"context"
	"strings"
	"testing"

	"mdq/internal/card"
	. "mdq/internal/experiments"
)

// TestFigure11MatchesPaperCalls: every one of the nine cells matches
// the paper's call counts exactly, and the time panel preserves the
// paper's orderings.
func TestFigure11MatchesPaperCalls(t *testing.T) {
	cells, err := Figure11Data(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(cells))
	}
	times := map[string]map[card.CacheMode]float64{}
	for _, c := range cells {
		paper := PaperFig11Calls[c.Plan][c.Cache]
		if c.Calls["conf"] != 1 {
			t.Errorf("%s/%v: conf calls = %d", c.Plan, c.Cache, c.Calls["conf"])
		}
		if c.Calls["weather"] != paper[0] || c.Calls["flight"] != paper[1] || c.Calls["hotel"] != paper[2] {
			t.Errorf("%s/%v: calls (w/f/h) = %d/%d/%d, paper %d/%d/%d",
				c.Plan, c.Cache, c.Calls["weather"], c.Calls["flight"], c.Calls["hotel"],
				paper[0], paper[1], paper[2])
		}
		if times[c.Plan] == nil {
			times[c.Plan] = map[card.CacheMode]float64{}
		}
		times[c.Plan][c.Cache] = c.Makespan.Seconds()
	}
	for _, mode := range []card.CacheMode{card.NoCache, card.OneCall, card.Optimal} {
		if !(times["O"][mode] < times["S"][mode] && times["S"][mode] < times["P"][mode]) {
			t.Errorf("%v: want O < S < P, got O=%.0f S=%.0f P=%.0f",
				mode, times["O"][mode], times["S"][mode], times["P"][mode])
		}
		// Paper ordering across cache settings within each plan.
		paperO := PaperFig11Times["O"][mode]
		if paperO <= 0 {
			t.Fatalf("paper reference missing")
		}
	}
}

func TestReportsRender(t *testing.T) {
	ctx := context.Background()
	reports := []func() (*Report, error){
		func() (*Report, error) { return Table1(ctx) },
		Example41,
		Figure8,
		AblationJoinStrategies,
	}
	for _, gen := range reports {
		rep, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		s := rep.String()
		if !strings.Contains(s, "==") || len(s) < 40 {
			t.Errorf("report too small:\n%s", s)
		}
	}
}

// TestTable1Report: the rendered Table 1 carries the paper's
// headline values.
func TestTable1Report(t *testing.T) {
	rep, err := Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"conf", "20", "0.05", "25", "5", "1.20s", "9.70s"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

// TestExample51Report: 19 plans, plan O optimal.
func TestExample51Report(t *testing.T) {
	rep, err := Example51()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 19 {
		t.Errorf("plan rows = %d, want 19", len(rep.Rows))
	}
	s := rep.String()
	if !strings.Contains(s, "alternative plans: 19") {
		t.Errorf("report must count 19 plans:\n%s", s)
	}
	if !strings.Contains(s, "optimal topology: conf → weather") {
		t.Errorf("plan O must be optimal:\n%s", s)
	}
}

// TestFigure8Report: the paper's fetch factors and annotations.
func TestFigure8Report(t *testing.T) {
	rep, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, row := range rep.Rows {
		got[row[0]] = row[2]
	}
	checks := map[string]string{
		"K′ = F_flight·F_hotel lower bound": "8",
		"F_flight (Eq. 6)":                  "3",
		"F_hotel (Eq. 6)":                   "4",
		"t_out(flight)":                     "75.0",
		"t_out(hotel)":                      "20.0",
		"t_MS (after σ=0.01)":               "15.0",
	}
	for k, want := range checks {
		if got[k] != want {
			t.Errorf("%s = %q, want %q", k, got[k], want)
		}
	}
}

// TestJoinAblationCrossover: NL must win for tiny left sides, MS for
// balanced ones.
func TestJoinAblationCrossover(t *testing.T) {
	rep, err := AblationJoinStrategies()
	if err != nil {
		t.Fatal(err)
	}
	first := rep.Rows[0]
	last := rep.Rows[len(rep.Rows)-1]
	if first[len(first)-1] != "NL" {
		t.Errorf("small left side: winner = %s, want NL\n%s", first[len(first)-1], rep)
	}
	if last[len(last)-1] != "MS" {
		t.Errorf("balanced sides: winner = %s, want MS\n%s", last[len(last)-1], rep)
	}
}

// TestMultithreadReport: parallel dispatch lands in the paper's
// order of magnitude and degrades the one-call cache.
func TestMultithreadReport(t *testing.T) {
	rep, err := Multithread(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	s := rep.String()
	if !strings.Contains(s, "76s") {
		t.Errorf("paper reference missing:\n%s", s)
	}
}

// TestDomainReports: the two extra domains execute end to end.
func TestDomainReports(t *testing.T) {
	ctx := context.Background()
	bio, err := Bioinformatics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bio.String(), "kegg") {
		t.Error("bio report incomplete")
	}
	mash, err := Mashup(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mash.String(), "book") {
		t.Error("mashup report incomplete")
	}
}

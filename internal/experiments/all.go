package experiments

import "context"

// All runs every experiment in paper order and returns the reports.
func All(ctx context.Context) ([]*Report, error) {
	type gen func() (*Report, error)
	gens := []gen{
		func() (*Report, error) { return Table1(ctx) },
		Example41,
		Example51,
		Figure8,
		func() (*Report, error) { return Figure11(ctx) },
		func() (*Report, error) { return Multithread(ctx) },
		func() (*Report, error) { return Bioinformatics(ctx) },
		func() (*Report, error) { return Mashup(ctx) },
		AblationHeuristics,
		AblationFetchHeuristics,
		func() (*Report, error) { return AblationCacheEstimates(ctx) },
		AblationJoinStrategies,
		func() (*Report, error) { return AblationPipelining(ctx) },
		AblationBaseline,
	}
	var out []*Report
	for _, g := range gens {
		r, err := g()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

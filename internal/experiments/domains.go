package experiments

import (
	"context"
	"fmt"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/exec"
	"mdq/internal/opt"
	"mdq/internal/simweb"
)

// Bioinformatics reproduces the §6 generalization: the protein query
// over InterPro, UniProt, BLAST and KEGG, optimized and executed end
// to end.
func Bioinformatics(ctx context.Context) (*Report, error) {
	w := simweb.NewBioWorld()
	q, err := w.BioQuery()
	if err != nil {
		return nil, err
	}
	o := &opt.Optimizer{
		Metric:       cost.ExecTime{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            10,
		ChooseMethod: w.Registry.MethodChooser(),
	}
	res, err := o.Optimize(q)
	if err != nil {
		return nil, err
	}
	r := &exec.Runner{Registry: w.Registry, Cache: card.OneCall, K: 10}
	out, err := r.Run(ctx, res.Best)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title: "§6 bioinformatics — human/mouse homologs in glycolysis with repeated domains",
		Cols:  []string{"quantity", "value"},
	}
	rep.AddRow("query", q.Name)
	rep.AddRow("optimal plan", res.Best.Describe())
	rep.AddRow("estimated ETM", f1(res.Cost)+"s")
	rep.AddRow("answers produced", fmt.Sprintf("%d (k=10)", len(out.Rows)))
	for _, svc := range []string{"kegg", "uniprot", "interpro", "blast"} {
		rep.AddRow(svc+" calls", d0(out.Stats.Calls[svc]))
	}
	rep.AddNote("plan starts from kegg (only directly callable atom), search service blast is fetch-bounded by its decay")
	return rep, nil
}

// Mashup runs the end-user mash-up scenario of §1: news about
// authors of well-reviewed database books.
func Mashup(ctx context.Context) (*Report, error) {
	w := simweb.NewMashupWorld()
	q, err := w.MashupQuery()
	if err != nil {
		return nil, err
	}
	o := &opt.Optimizer{
		Metric:       cost.RequestResponse{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            8,
		ChooseMethod: w.Registry.MethodChooser(),
	}
	res, err := o.Optimize(q)
	if err != nil {
		return nil, err
	}
	r := &exec.Runner{Registry: w.Registry, Cache: card.Optimal, K: 8}
	out, err := r.Run(ctx, res.Best)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title: "§1 mash-up — news about authors of well-reviewed database books",
		Cols:  []string{"quantity", "value"},
	}
	rep.AddRow("optimal plan", res.Best.Describe())
	rep.AddRow("estimated requests", f1(res.Cost))
	rep.AddRow("answers produced", fmt.Sprintf("%d (k=8)", len(out.Rows)))
	for _, svc := range []string{"book", "review", "news"} {
		rep.AddRow(svc+" calls", d0(out.Stats.Calls[svc]))
	}
	return rep, nil
}

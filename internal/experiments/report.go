// Package experiments regenerates every empirical table and figure
// of the paper (§6): Table 1, the analyses of Examples 4.1 and 5.1,
// the Figure 8 physical plan, both panels of Figure 11, the
// multithreading test, the bioinformatics generalization — plus the
// ablations of the design choices called out in DESIGN.md. Each
// experiment returns a report with our measured values next to the
// paper's, and cmd/mdqbench prints them all.
package experiments

import (
	"fmt"
	"strings"
)

// Report is a titled text table with paper-vs-measured rows.
type Report struct {
	Title string
	Notes []string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-text note rendered under the table.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString("== ")
	b.WriteString(r.Title)
	b.WriteString(" ==\n")
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len([]rune(c))
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for p := len([]rune(cell)); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	line(r.Cols)
	sep := make([]string, len(r.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		b.WriteString("  · ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func d0(v int64) string   { return fmt.Sprintf("%d", v) }

package schema

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestParsePattern(t *testing.T) {
	p, err := ParsePattern("ioo")
	if err != nil {
		t.Fatalf("ParsePattern: %v", err)
	}
	if got := p.String(); got != "ioo" {
		t.Errorf("String() = %q, want ioo", got)
	}
	if got := p.Inputs(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Inputs() = %v, want [0]", got)
	}
	if got := p.Outputs(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Outputs() = %v, want [1 2]", got)
	}
	if _, err := ParsePattern("ixo"); err == nil {
		t.Error("ParsePattern(ixo) should fail")
	}
}

func TestPatternCogency(t *testing.T) {
	tests := []struct {
		p, q           string
		more, strictly bool
	}{
		{"iio", "ioo", true, true},
		{"ioo", "iio", false, false},
		{"ioo", "ioo", true, false},
		{"iii", "ooo", true, true},
		{"ooo", "iii", false, false},
		{"ioo", "oio", false, false}, // incomparable
		{"io", "ioo", false, false},  // different arity
	}
	for _, tc := range tests {
		p, q := MustPattern(tc.p), MustPattern(tc.q)
		if got := p.MoreCogent(q); got != tc.more {
			t.Errorf("%s MoreCogent %s = %v, want %v", tc.p, tc.q, got, tc.more)
		}
		if got := p.StrictlyMoreCogent(q); got != tc.strictly {
			t.Errorf("%s StrictlyMoreCogent %s = %v, want %v", tc.p, tc.q, got, tc.strictly)
		}
	}
}

// TestCogencyPartialOrder checks reflexivity, antisymmetry and
// transitivity of ⊑IO on random patterns (property-based).
func TestCogencyPartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randPattern := func(n int) AccessPattern {
		p := make(AccessPattern, n)
		for i := range p {
			if rng.Intn(2) == 0 {
				p[i] = In
			} else {
				p[i] = Out
			}
		}
		return p
	}
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(6)
		a, b, c := randPattern(n), randPattern(n), randPattern(n)
		if !a.MoreCogent(a) {
			t.Fatalf("reflexivity violated for %s", a)
		}
		if a.MoreCogent(b) && b.MoreCogent(a) && !a.Equal(b) {
			t.Fatalf("antisymmetry violated for %s, %s", a, b)
		}
		if a.MoreCogent(b) && b.MoreCogent(c) && !a.MoreCogent(c) {
			t.Fatalf("transitivity violated for %s, %s, %s", a, b, c)
		}
	}
}

func TestStatsClassification(t *testing.T) {
	if !(Stats{ERSPI: 20}).Proliferative() {
		t.Error("erspi 20 should be proliferative")
	}
	if !(Stats{ERSPI: 0.05}).Selective() {
		t.Error("erspi 0.05 should be selective")
	}
	if (Stats{ChunkSize: 0}).Chunked() {
		t.Error("chunk size 0 is bulk")
	}
	if !(Stats{ChunkSize: 25}).Chunked() {
		t.Error("chunk size 25 is chunked")
	}
}

func TestStatsMaxFetches(t *testing.T) {
	tests := []struct {
		decay, chunk, want int
	}{
		{0, 25, 0},   // unknown decay
		{100, 25, 4}, // exact division
		{101, 25, 5}, // round up
		{10, 25, 1},
		{100, 0, 0}, // bulk
	}
	for _, tc := range tests {
		s := Stats{Decay: tc.decay, ChunkSize: tc.chunk}
		if got := s.MaxFetches(); got != tc.want {
			t.Errorf("MaxFetches(decay=%d, cs=%d) = %d, want %d", tc.decay, tc.chunk, got, tc.want)
		}
	}
}

func TestSignatureValidate(t *testing.T) {
	good := &Signature{
		Name: "svc",
		Attrs: []Attribute{
			{Name: "A", Domain: DomString},
			{Name: "B", Domain: DomNumber},
		},
		Patterns: []AccessPattern{MustPattern("io"), MustPattern("oo")},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	bad := []*Signature{
		{Name: "", Attrs: good.Attrs, Patterns: good.Patterns},
		{Name: "x", Attrs: good.Attrs},                                                                // no patterns
		{Name: "x", Attrs: good.Attrs, Patterns: []AccessPattern{MustPattern("i")}},                   // arity mismatch
		{Name: "x", Attrs: good.Attrs, Patterns: []AccessPattern{good.Patterns[0], good.Patterns[0]}}, // duplicate
	}
	for i, sig := range bad {
		if err := sig.Validate(); err == nil {
			t.Errorf("bad signature %d accepted", i)
		}
	}
}

func TestSchemaLookup(t *testing.T) {
	sig := &Signature{
		Name:     "conf",
		Attrs:    []Attribute{{Name: "Topic", Domain: DomTopic}},
		Patterns: []AccessPattern{MustPattern("i")},
	}
	s, err := NewSchema(sig)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup("conf"); !ok {
		t.Error("conf not found")
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("nope found")
	}
	if err := s.Add(sig); err == nil {
		t.Error("duplicate Add accepted")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestSignatureString(t *testing.T) {
	sig := &Signature{
		Name: "conf",
		Attrs: []Attribute{
			{Name: "Topic"}, {Name: "Name"}, {Name: "Start"}, {Name: "End"}, {Name: "City"},
		},
		Patterns: []AccessPattern{MustPattern("ioooo"), MustPattern("ooooi")},
	}
	want := "conf{ioooo,ooooi}(Topic, Name, Start, End, City)"
	if got := sig.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestValueDates(t *testing.T) {
	d, ok := ParseDate("2007/03/14")
	if !ok {
		t.Fatal("ParseDate failed")
	}
	if d.Kind != DateValue {
		t.Fatalf("kind = %v", d.Kind)
	}
	plus, err := d.Add(N(180))
	if err != nil {
		t.Fatal(err)
	}
	if plus.Kind != DateValue {
		t.Errorf("date+number kind = %v, want date", plus.Kind)
	}
	if got := plus.Time().Format("2006/01/02"); got != "2007/09/10" {
		t.Errorf("2007/03/14 + 180 = %s, want 2007/09/10", got)
	}
	diff, err := plus.Sub(d)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Kind != NumberValue || diff.Num != 180 {
		t.Errorf("date-date = %v, want number 180", diff)
	}
	if _, ok := ParseDate("not a date"); ok {
		t.Error("ParseDate accepted garbage")
	}
	if _, ok := ParseDate("2007/13/40"); ok {
		t.Error("ParseDate accepted month 13")
	}
}

func TestValueCompare(t *testing.T) {
	if S("a").Compare(S("b")) >= 0 {
		t.Error("a should sort before b")
	}
	if N(1).Compare(N(2)) >= 0 {
		t.Error("1 should sort before 2")
	}
	if N(1).Compare(S("a")) >= 0 {
		t.Error("numbers sort before strings")
	}
	if !D(2007, time.March, 14).Equal(DateFromDays(D(2007, time.March, 14).Num)) {
		t.Error("date equality by days failed")
	}
	// Date and number with same numeric content are Equal (needed for
	// joining computed dates).
	if !D(1970, time.January, 11).Equal(N(10)) {
		t.Error("date 1970/01/11 should equal number 10 (days)")
	}
}

// TestValueCompareConsistency: Compare is antisymmetric and agrees
// with Equal on random values.
func TestValueCompareConsistency(t *testing.T) {
	gen := func(r *rand.Rand) Value {
		switch r.Intn(3) {
		case 0:
			return S(string(rune('a' + r.Intn(5))))
		case 1:
			return N(float64(r.Intn(5)))
		default:
			return DateFromDays(float64(r.Intn(5)))
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		if a.Equal(b) != (a.Compare(b) == 0 && b.Compare(a) == 0) {
			// Equal treats date/number as interchangeable; Compare
			// must agree for numerics.
			return !a.Numeric() || !b.Numeric()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValueKeyDistinguishesKinds(t *testing.T) {
	if S("1").Key() == N(1).Key() {
		t.Error("string '1' and number 1 must have distinct keys")
	}
	if N(10).Key() == DateFromDays(10).Key() {
		t.Error("number and date keys must differ")
	}
}

func TestDomainAccepts(t *testing.T) {
	if !DomCity.Accepts(S("Milano")) {
		t.Error("city should accept string")
	}
	if DomCity.Accepts(N(3)) {
		t.Error("city should reject number")
	}
	if !DomDate.Accepts(N(3)) {
		t.Error("date should accept numeric (date arithmetic)")
	}
	if DomPrice.Accepts(Null) {
		t.Error("no domain accepts null")
	}
}

package schema

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Distribution is the per-attribute value distribution of a service
// attribute: a most-common-value list plus an equi-depth histogram
// over the remaining values, with the total observed row count and
// the estimated number of distinct values. It refines the uniform
// assumption of §2.2 (every constant equally likely, selectivity 1/V)
// into per-value selectivities, in the spirit of the shared
// cost-estimation statistics of Roy et al. (Efficient and Extensible
// Algorithms for Multi Query Optimization).
//
// A nil or empty Distribution means "no value statistics": every
// estimator consulting it must fall back to the uniform model. The
// struct is immutable after construction — refreshes build a new
// Distribution and swap the pointer (copy-on-write), so the cost
// model may read it lock-free while observers accumulate the next
// window.
type Distribution struct {
	// Total is the number of observed rows the distribution was built
	// from; 0 means the distribution is empty (uniform fallback).
	Total float64
	// Distinct estimates the number of distinct values, MCVs included.
	Distinct float64
	// MCVs lists the most common values with their frequency fraction
	// of Total, most frequent first. MCV mass is excluded from the
	// buckets.
	MCVs []MCV
	// Buckets is the equi-depth histogram over the non-MCV values,
	// ordered by upper boundary. Bucket fractions plus MCV fractions
	// sum to ~1.
	Buckets []Bucket
	// Exact marks a distribution computed from the full relation
	// (registration-time profiling) rather than from a traffic
	// sample. Online refreshes never overwrite an exact distribution
	// unless the traffic has seen strictly more distinct values —
	// evidence the relation outgrew the profile.
	Exact bool
}

// MCV is one most-common-value entry: a value and its frequency as a
// fraction of the distribution's total row count.
type MCV struct {
	Value Value
	// Frac is the fraction of rows holding exactly Value.
	Frac float64
}

// Bucket is one equi-depth histogram bucket: the closed value range
// [Lo, Hi], the fraction of total rows falling in it, and the number
// of distinct non-MCV values it holds.
type Bucket struct {
	Lo, Hi Value
	// Frac is the fraction of total rows in the bucket.
	Frac float64
	// Distinct is the number of distinct values in the bucket.
	Distinct float64
}

// Empty reports whether the distribution carries no value statistics
// (nil, or built from zero observations); estimators must then use
// the uniform fallback.
func (d *Distribution) Empty() bool {
	return d == nil || d.Total <= 0 || (len(d.MCVs) == 0 && len(d.Buckets) == 0)
}

// MinSelectivity is the floor for per-value selectivities: an
// out-of-range or unseen constant is priced as if a single row could
// still match, never as an impossible zero (which would collapse
// downstream cardinalities — and cost ratios — to meaningless
// zeros). Estimators composing range selectivities from EqSelectivity
// and LeSelectivity must apply the same floor.
func (d *Distribution) MinSelectivity() float64 {
	if d.Empty() {
		return 0
	}
	return 1 / (2 * d.Total)
}

func (d *Distribution) clamp(s float64) float64 {
	if min := d.MinSelectivity(); s < min {
		return min
	}
	if s > 1 {
		return 1
	}
	return s
}

// EqSelectivity estimates the fraction of rows whose value equals v.
// MCV entries answer exactly; other in-range values interpolate
// within their bucket (bucket mass divided by the bucket's distinct
// count); out-of-range constants get the minimum selectivity (one
// potential matching row). ok is false when the distribution is empty
// and the caller must use the uniform model instead.
func (d *Distribution) EqSelectivity(v Value) (sel float64, ok bool) {
	if d.Empty() {
		return 0, false
	}
	for _, m := range d.MCVs {
		if m.Value.Equal(v) {
			return d.clamp(m.Frac), true
		}
	}
	for _, b := range d.Buckets {
		if v.Compare(b.Lo) >= 0 && v.Compare(b.Hi) <= 0 {
			if b.Distinct > 0 {
				return d.clamp(b.Frac / b.Distinct), true
			}
			return d.clamp(b.Frac), true
		}
	}
	// Unseen value: out of every bucket range and not an MCV.
	return d.clamp(0), true
}

// LeSelectivity estimates the fraction of rows with value ≤ v: MCV
// mass at or below v plus full buckets below v plus a linear
// interpolation inside the bucket containing v (numeric ranges
// interpolate by position; string buckets count half their mass).
// ok is false when the distribution is empty.
func (d *Distribution) LeSelectivity(v Value) (sel float64, ok bool) {
	if d.Empty() {
		return 0, false
	}
	s := 0.0
	for _, m := range d.MCVs {
		if m.Value.Compare(v) <= 0 {
			s += m.Frac
		}
	}
	for _, b := range d.Buckets {
		switch {
		case b.Hi.Compare(v) <= 0:
			s += b.Frac
		case b.Lo.Compare(v) > 0:
			// Entirely above v.
		default:
			s += b.Frac * bucketFractionBelow(b, v)
		}
	}
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s, true
}

// bucketFractionBelow estimates the fraction of a bucket's rows at or
// below v, for Lo ≤ v ≤ Hi.
func bucketFractionBelow(b Bucket, v Value) float64 {
	if b.Lo.Numeric() && b.Hi.Numeric() && v.Numeric() && b.Hi.Num > b.Lo.Num {
		f := (v.Num - b.Lo.Num) / (b.Hi.Num - b.Lo.Num)
		if f < 0 {
			return 0
		}
		if f > 1 {
			return 1
		}
		return f
	}
	// Non-numeric (or degenerate) bucket: assume half the mass.
	return 0.5
}

// Fingerprint returns a compact stable token identifying the
// distribution's content, for cache-key fingerprints: two
// distributions with different observed statistics never share one.
// The empty distribution fingerprints as "-".
func (d *Distribution) Fingerprint() string {
	if d.Empty() {
		return "-"
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "t%g;d%g;e%t", d.Total, d.Distinct, d.Exact)
	for _, m := range d.MCVs {
		fmt.Fprintf(h, "|m%s=%g", m.Value.Key(), m.Frac)
	}
	for _, b := range d.Buckets {
		fmt.Fprintf(h, "|b%s..%s=%g/%g", b.Lo.Key(), b.Hi.Key(), b.Frac, b.Distinct)
	}
	return strconv.FormatUint(h.Sum64(), 36)
}

// Summary renders a short human-readable description ("1000 rows, 50
// distinct, 3 MCVs, 4 buckets") for CLI and stats endpoints.
func (d *Distribution) Summary() string {
	if d.Empty() {
		return "no value statistics"
	}
	return fmt.Sprintf("%.0f rows, %.0f distinct, %d MCVs, %d buckets",
		d.Total, d.Distinct, len(d.MCVs), len(d.Buckets))
}

// SameDistribution reports whether two distributions carry the same
// statistics (both empty, or equal fingerprints).
func SameDistribution(a, b *Distribution) bool {
	if a.Empty() && b.Empty() {
		return true
	}
	if a.Empty() != b.Empty() {
		return false
	}
	return a.Fingerprint() == b.Fingerprint()
}

// DefaultSketchCapacity bounds the number of distinct values a
// ValueSketch tracks exactly. Beyond it new values are only counted
// in aggregate, so the sketch's memory stays bounded under arbitrary
// traffic while frequency fractions of the tracked values stay
// honest (they divide by the true total).
const DefaultSketchCapacity = 1024

// ValueSketch accumulates a streaming sample of one attribute's
// values, from which Build derives a Distribution. It tracks exact
// counts for up to cap distinct values; once full, unseen values are
// counted only toward the total (and the distinct estimate), keeping
// memory bounded. The zero value is not usable; call NewValueSketch.
//
// ValueSketch is not synchronized: callers (service.Observed) must
// hold their own lock around Add and Build.
type ValueSketch struct {
	cap     int
	total   float64
	counts  map[string]*sketchCell
	dropped float64             // observations of values beyond the capacity
	seen    map[string]struct{} // distinct untracked values (bounded)
}

type sketchCell struct {
	val   Value
	count float64
}

// NewValueSketch creates a sketch tracking up to capacity distinct
// values exactly (≤ 0 means DefaultSketchCapacity).
func NewValueSketch(capacity int) *ValueSketch {
	if capacity <= 0 {
		capacity = DefaultSketchCapacity
	}
	return &ValueSketch{
		cap:    capacity,
		counts: make(map[string]*sketchCell),
		seen:   make(map[string]struct{}),
	}
}

// Add feeds one observed value. Null values are ignored (they carry
// no selectivity information).
func (s *ValueSketch) Add(v Value) {
	if v.IsNull() {
		return
	}
	s.total++
	key := v.Key()
	if c, ok := s.counts[key]; ok {
		c.count++
		return
	}
	if len(s.counts) < s.cap {
		s.counts[key] = &sketchCell{val: v, count: 1}
		return
	}
	// Capacity reached: count toward the total and the distinct
	// estimate only.
	s.dropped++
	if _, ok := s.seen[key]; !ok && len(s.seen) < 4*s.cap {
		s.seen[key] = struct{}{}
	}
}

// Total returns the number of values observed so far.
func (s *ValueSketch) Total() float64 { return s.total }

// Build derives a Distribution: the maxMCVs most frequent values
// become the MCV list, the rest fill at most maxBuckets equi-depth
// buckets. Returns nil when nothing was observed.
func (s *ValueSketch) Build(maxMCVs, maxBuckets int) *Distribution {
	if s.total <= 0 || len(s.counts) == 0 {
		return nil
	}
	if maxMCVs < 0 {
		maxMCVs = 0
	}
	if maxBuckets < 1 {
		maxBuckets = 1
	}
	cells := make([]*sketchCell, 0, len(s.counts))
	for _, c := range s.counts {
		cells = append(cells, c)
	}
	// Most frequent first; ties by value order for determinism.
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].count != cells[j].count {
			return cells[i].count > cells[j].count
		}
		return cells[i].val.Compare(cells[j].val) < 0
	})
	d := &Distribution{
		Total:    s.total,
		Distinct: float64(len(s.counts)) + float64(len(s.seen)),
	}
	n := maxMCVs
	if n > len(cells) {
		n = len(cells)
	}
	for _, c := range cells[:n] {
		d.MCVs = append(d.MCVs, MCV{Value: c.val, Frac: c.count / s.total})
	}
	rest := cells[n:]
	sort.Slice(rest, func(i, j int) bool { return rest[i].val.Compare(rest[j].val) < 0 })
	var restRows float64
	for _, c := range rest {
		restRows += c.count
	}
	restRows += s.dropped
	if len(rest) > 0 {
		depth := restRows / float64(maxBuckets)
		var cur *Bucket
		var curRows float64
		flush := func() {
			if cur != nil {
				cur.Frac = curRows / s.total
				d.Buckets = append(d.Buckets, *cur)
				cur, curRows = nil, 0
			}
		}
		for _, c := range rest {
			if cur == nil {
				cur = &Bucket{Lo: c.val, Hi: c.val}
			}
			cur.Hi = c.val
			cur.Distinct++
			curRows += c.count
			if curRows >= depth && len(d.Buckets) < maxBuckets-1 {
				flush()
			}
		}
		// Dropped (untracked) observations land in the last bucket so
		// the total mass stays honest.
		if cur != nil {
			curRows += s.dropped
			flush()
		} else if s.dropped > 0 && len(d.Buckets) > 0 {
			last := &d.Buckets[len(d.Buckets)-1]
			last.Frac += s.dropped / s.total
		}
	}
	return d
}

// Reset clears the sketch for a fresh observation window.
func (s *ValueSketch) Reset() {
	s.total, s.dropped = 0, 0
	s.counts = make(map[string]*sketchCell)
	s.seen = make(map[string]struct{})
}

// DistributionFromValues builds an exact distribution from a
// concrete value column — the registration-time profiling path (§5:
// estimates by sampling) used by table-backed services, which know
// their full relation. The result is marked Exact, shielding it from
// being overwritten by traffic-biased online sketches.
func DistributionFromValues(values []Value, maxMCVs, maxBuckets int) *Distribution {
	sk := NewValueSketch(len(values) + 1)
	for _, v := range values {
		sk.Add(v)
	}
	d := sk.Build(maxMCVs, maxBuckets)
	if d != nil {
		d.Exact = true
	}
	return d
}

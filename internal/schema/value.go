package schema

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ValueKind discriminates the runtime representation of a constant.
type ValueKind int

const (
	// NullValue is the zero Value; it compares less than everything.
	NullValue ValueKind = iota
	// StringValue holds free text (city names, titles, …).
	StringValue
	// NumberValue holds a float64 (prices, temperatures, counts, …).
	NumberValue
	// DateValue holds a calendar date, stored as days since
	// 1970-01-01 so that date arithmetic ('2007/3/14' + 180) is
	// plain numeric arithmetic.
	DateValue
)

// Value is a constant flowing through queries and plans. Values are
// small and comparable; they are passed by value everywhere.
type Value struct {
	Kind ValueKind
	Str  string
	Num  float64 // number, or days since epoch for dates
}

// Null is the absent value.
var Null = Value{}

// S builds a string value.
func S(s string) Value { return Value{Kind: StringValue, Str: s} }

// N builds a number value.
func N(f float64) Value { return Value{Kind: NumberValue, Num: f} }

// D builds a date value from year, month, day.
func D(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{Kind: DateValue, Num: float64(t.Unix() / 86400)}
}

// DateFromDays builds a date value from a days-since-epoch count.
func DateFromDays(days float64) Value {
	return Value{Kind: DateValue, Num: days}
}

// ParseDate recognizes 'YYYY/MM/DD' and 'YYYY-MM-DD'.
func ParseDate(s string) (Value, bool) {
	norm := strings.ReplaceAll(s, "/", "-")
	parts := strings.Split(norm, "-")
	if len(parts) != 3 {
		return Null, false
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return Null, false
	}
	if y < 1000 || m < 1 || m > 12 || d < 1 || d > 31 {
		return Null, false
	}
	return D(y, time.Month(m), d), true
}

// IsNull reports whether the value is absent.
func (v Value) IsNull() bool { return v.Kind == NullValue }

// Numeric reports whether the value participates in arithmetic.
func (v Value) Numeric() bool { return v.Kind == NumberValue || v.Kind == DateValue }

// Time converts a date value back to a time.Time (UTC midnight).
func (v Value) Time() time.Time {
	return time.Unix(int64(v.Num)*86400, 0).UTC()
}

// String implements fmt.Stringer with the paper's literal syntax.
func (v Value) String() string {
	switch v.Kind {
	case NullValue:
		return "null"
	case StringValue:
		return "'" + v.Str + "'"
	case NumberValue:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case DateValue:
		return "'" + v.Time().Format("2006/01/02") + "'"
	default:
		return fmt.Sprintf("Value(%d)", int(v.Kind))
	}
}

// Key returns a compact representation usable as a map key component;
// unlike String it distinguishes kinds unambiguously.
func (v Value) Key() string {
	switch v.Kind {
	case NullValue:
		return "∅"
	case StringValue:
		return "s:" + v.Str
	case NumberValue:
		return "n:" + strconv.FormatFloat(v.Num, 'g', -1, 64)
	case DateValue:
		return "d:" + strconv.FormatFloat(v.Num, 'g', -1, 64)
	default:
		return "?"
	}
}

// Equal reports value equality. Numbers and dates compare by their
// numeric content regardless of kind, so that a date bound through a
// numeric expression still joins with a stored date.
func (v Value) Equal(w Value) bool {
	if v.Kind == NullValue || w.Kind == NullValue {
		return v.Kind == w.Kind
	}
	if v.Numeric() && w.Numeric() {
		return v.Num == w.Num
	}
	return v.Kind == w.Kind && v.Str == w.Str
}

// Compare orders values: nulls first, then numerics by value, then
// strings lexicographically; numerics sort before strings.
func (v Value) Compare(w Value) int {
	rank := func(x Value) int {
		switch {
		case x.Kind == NullValue:
			return 0
		case x.Numeric():
			return 1
		default:
			return 2
		}
	}
	rv, rw := rank(v), rank(w)
	if rv != rw {
		if rv < rw {
			return -1
		}
		return 1
	}
	switch rv {
	case 0:
		return 0
	case 1:
		switch {
		case v.Num < w.Num:
			return -1
		case v.Num > w.Num:
			return 1
		}
		return 0
	default:
		return strings.Compare(v.Str, w.Str)
	}
}

// Add returns v + w for numeric values (date + number = date).
func (v Value) Add(w Value) (Value, error) {
	if !v.Numeric() || !w.Numeric() {
		return Null, fmt.Errorf("schema: cannot add %s and %s", v, w)
	}
	kind := NumberValue
	if v.Kind == DateValue || w.Kind == DateValue {
		kind = DateValue
	}
	if v.Kind == DateValue && w.Kind == DateValue {
		// date + date is meaningless; degrade to number of days.
		kind = NumberValue
	}
	return Value{Kind: kind, Num: v.Num + w.Num}, nil
}

// Sub returns v - w for numeric values (date - date = number of days).
func (v Value) Sub(w Value) (Value, error) {
	if !v.Numeric() || !w.Numeric() {
		return Null, fmt.Errorf("schema: cannot subtract %s from %s", w, v)
	}
	kind := NumberValue
	if v.Kind == DateValue && w.Kind != DateValue {
		kind = DateValue
	}
	return Value{Kind: kind, Num: v.Num - w.Num}, nil
}

package schema

import (
	"math"
	"testing"
)

// buildDist makes a distribution from (value, count) pairs.
func buildDist(t *testing.T, maxMCVs, maxBuckets int, pairs ...struct {
	v Value
	n int
}) *Distribution {
	t.Helper()
	sk := NewValueSketch(0)
	for _, p := range pairs {
		for i := 0; i < p.n; i++ {
			sk.Add(p.v)
		}
	}
	return sk.Build(maxMCVs, maxBuckets)
}

func pair(v Value, n int) struct {
	v Value
	n int
} {
	return struct {
		v Value
		n int
	}{v, n}
}

func TestDistributionEdgeCases(t *testing.T) {
	uniformOnly := func(d *Distribution) bool {
		_, ok := d.EqSelectivity(N(1))
		return !ok
	}
	t.Run("empty histogram falls back to uniform", func(t *testing.T) {
		var nilDist *Distribution
		if !nilDist.Empty() || !uniformOnly(nilDist) {
			t.Fatalf("nil distribution must be empty and refuse estimates")
		}
		empty := NewValueSketch(0).Build(4, 4)
		if empty != nil {
			t.Fatalf("sketch with no observations must build nil, got %+v", empty)
		}
		if _, ok := (&Distribution{}).LeSelectivity(N(1)); ok {
			t.Fatalf("zero-total distribution must refuse range estimates")
		}
	})

	t.Run("single bucket", func(t *testing.T) {
		// No MCVs: everything lands in one bucket of 4 distinct values.
		d := buildDist(t, 0, 1, pair(N(1), 5), pair(N(2), 5), pair(N(3), 5), pair(N(4), 5))
		if len(d.Buckets) != 1 || len(d.MCVs) != 0 {
			t.Fatalf("want 1 bucket, 0 MCVs, got %d/%d", len(d.Buckets), len(d.MCVs))
		}
		sel, ok := d.EqSelectivity(N(3))
		if !ok || math.Abs(sel-0.25) > 1e-9 {
			t.Fatalf("in-bucket equality: want 0.25, got %v (ok=%v)", sel, ok)
		}
		le, _ := d.LeSelectivity(N(4))
		if math.Abs(le-1) > 1e-9 {
			t.Fatalf("Le(max) should be 1, got %v", le)
		}
	})

	t.Run("out-of-range constant gets the floor, not zero", func(t *testing.T) {
		d := buildDist(t, 1, 2, pair(N(10), 40), pair(N(20), 30), pair(N(30), 30))
		sel, ok := d.EqSelectivity(N(999))
		if !ok {
			t.Fatalf("non-empty distribution must answer")
		}
		want := 1 / (2 * d.Total)
		if math.Abs(sel-want) > 1e-12 {
			t.Fatalf("out-of-range equality: want floor %v, got %v", want, sel)
		}
		if le, _ := d.LeSelectivity(N(-5)); le != 0 {
			t.Fatalf("Le below the range should be 0, got %v", le)
		}
		if le, _ := d.LeSelectivity(N(999)); math.Abs(le-1) > 1e-9 {
			t.Fatalf("Le above the range should be 1, got %v", le)
		}
	})

	t.Run("MCV hit vs bucket interpolation", func(t *testing.T) {
		// 'hot' holds 60% of the rows and becomes the MCV; the four
		// cool values share the rest via one bucket.
		d := buildDist(t, 1, 1,
			pair(S("hot"), 60), pair(S("a"), 10), pair(S("b"), 10), pair(S("c"), 10), pair(S("d"), 10))
		hot, _ := d.EqSelectivity(S("hot"))
		if math.Abs(hot-0.6) > 1e-9 {
			t.Fatalf("MCV hit: want 0.6, got %v", hot)
		}
		cool, _ := d.EqSelectivity(S("b"))
		if math.Abs(cool-0.1) > 1e-9 {
			t.Fatalf("bucket interpolation: want 0.4/4=0.1, got %v", cool)
		}
		if hot <= cool {
			t.Fatalf("MCV must dominate interpolated values: %v vs %v", hot, cool)
		}
	})

	t.Run("zipf data diverges from the uniform assumption", func(t *testing.T) {
		// Zipf-ish skew over 20 values.
		sk := NewValueSketch(0)
		for i := 0; i < 20; i++ {
			n := 1000 / (i + 1)
			for j := 0; j < n; j++ {
				sk.Add(N(float64(i)))
			}
		}
		d := sk.Build(4, 4)
		uniform := 1 / d.Distinct
		head, _ := d.EqSelectivity(N(0))
		tail, _ := d.EqSelectivity(N(19))
		if head < 3*uniform {
			t.Fatalf("head value must be far above uniform 1/V=%v, got %v", uniform, head)
		}
		if tail > uniform {
			t.Fatalf("tail value must be at or below uniform 1/V=%v, got %v", uniform, tail)
		}
		if head/tail < 10 {
			t.Fatalf("skew must be visible: head/tail = %v", head/tail)
		}
	})

	t.Run("range estimates from buckets", func(t *testing.T) {
		d := buildDist(t, 0, 4,
			pair(N(1), 25), pair(N(2), 25), pair(N(3), 25), pair(N(4), 25))
		le, _ := d.LeSelectivity(N(2))
		if le < 0.4 || le > 0.6 {
			t.Fatalf("Le(2) over 1..4 should be ≈0.5, got %v", le)
		}
	})

	t.Run("sketch capacity keeps totals honest", func(t *testing.T) {
		sk := NewValueSketch(4)
		for i := 0; i < 100; i++ {
			sk.Add(N(float64(i % 10))) // 10 distinct, capacity 4
		}
		if sk.Total() != 100 {
			t.Fatalf("total must count dropped values: %v", sk.Total())
		}
		d := sk.Build(2, 2)
		if d.Total != 100 {
			t.Fatalf("distribution total: want 100, got %v", d.Total)
		}
		if d.Distinct < 4 {
			t.Fatalf("distinct must include tracked values: %v", d.Distinct)
		}
		mass := 0.0
		for _, m := range d.MCVs {
			mass += m.Frac
		}
		for _, b := range d.Buckets {
			mass += b.Frac
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Fatalf("total mass must stay ≈1 despite drops, got %v", mass)
		}
	})
}

func TestStatsSame(t *testing.T) {
	a := Stats{ERSPI: 2}
	b := Stats{ERSPI: 2}
	if !a.Same(b) {
		t.Fatalf("scalar-equal stats must be Same")
	}
	b.Dists = []*Distribution{DistributionFromValues([]Value{N(1), N(1), N(2)}, 2, 2)}
	if a.Same(b) {
		t.Fatalf("adding a distribution must break Same")
	}
	a.Dists = []*Distribution{DistributionFromValues([]Value{N(1), N(1), N(2)}, 2, 2)}
	if !a.Same(b) {
		t.Fatalf("equal distributions must be Same")
	}
	a.Dists[0] = DistributionFromValues([]Value{N(3), N(3), N(3)}, 2, 2)
	if a.Same(b) {
		t.Fatalf("different distributions must not be Same")
	}
}

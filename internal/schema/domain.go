package schema

import "fmt"

// Domain is an abstract domain (§3.1): a named universe of values
// shared across services. Two attributes of different services with
// the same domain can exchange bindings; the optimizer also uses the
// domain's estimated size of distinct values for the optimal-cache
// invocation estimate (§5.2) and the query-expansion analysis (§7).
type Domain struct {
	// Name identifies the domain, e.g. "City", "Date", "Price".
	Name string
	// Kind is the value representation carried by the domain.
	Kind ValueKind
	// DistinctValues estimates the number of distinct constants in
	// the domain; zero means unknown/unbounded.
	DistinctValues int
}

// Compatible reports whether values of d can bind attributes of e:
// same name, or either side unnamed with matching kinds.
func (d Domain) Compatible(e Domain) bool {
	if d.Name != "" && e.Name != "" {
		return d.Name == e.Name
	}
	return d.Kind == e.Kind
}

// Accepts reports whether v is a plausible member of the domain.
// Numbers are accepted by date domains and vice versa because date
// arithmetic produces numeric intermediates.
func (d Domain) Accepts(v Value) bool {
	if v.IsNull() {
		return false
	}
	switch d.Kind {
	case StringValue:
		return v.Kind == StringValue
	case NumberValue, DateValue:
		return v.Numeric()
	default:
		return true
	}
}

// String implements fmt.Stringer.
func (d Domain) String() string {
	if d.Name != "" {
		return d.Name
	}
	return fmt.Sprintf("<%v>", d.Kind)
}

// Common reusable domains for the travel and bioinformatics examples.
var (
	DomCity   = Domain{Name: "City", Kind: StringValue, DistinctValues: 220}
	DomTopic  = Domain{Name: "Topic", Kind: StringValue, DistinctValues: 5}
	DomName   = Domain{Name: "Name", Kind: StringValue}
	DomDate   = Domain{Name: "Date", Kind: DateValue, DistinctValues: 365}
	DomTime   = Domain{Name: "TimeOfDay", Kind: StringValue, DistinctValues: 24}
	DomPrice  = Domain{Name: "Price", Kind: NumberValue}
	DomTemp   = Domain{Name: "Temperature", Kind: NumberValue}
	DomCat    = Domain{Name: "Category", Kind: StringValue, DistinctValues: 4}
	DomString = Domain{Name: "", Kind: StringValue}
	DomNumber = Domain{Name: "", Kind: NumberValue}
)

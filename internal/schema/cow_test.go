package schema

import (
	"sync"
	"testing"
	"time"
)

// TestStatisticsSnapshotConsistency pins the copy-on-write contract of
// Signature.SetStats/Statistics: a reader racing a refresh sees either
// the old snapshot or the new one, never a mix of fields from both.
// (Before the snapshot layer, a concurrent in-place refresh could feed
// an optimization ERSPI from one generation and Dists from another;
// under -race this test also proves the swap is properly synchronized.)
func TestStatisticsSnapshotConsistency(t *testing.T) {
	sig := &Signature{
		Name:     "s",
		Attrs:    []Attribute{{Name: "A", Domain: Domain{Name: "D", Kind: NumberValue}}},
		Patterns: []AccessPattern{MustPattern("o")},
		Stats:    Stats{ERSPI: 1, ResponseTime: 1 * time.Second},
	}
	distA := DistributionFromValues([]Value{N(1), N(1), N(2)}, 2, 2)
	distB := DistributionFromValues([]Value{N(3), N(4), N(5), N(6)}, 2, 2)
	gens := []Stats{
		{ERSPI: 1, ResponseTime: 1 * time.Second, Dists: []*Distribution{distA}},
		{ERSPI: 2, ResponseTime: 2 * time.Second, Dists: []*Distribution{distB}},
	}

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sig.SetStats(gens[i%2])
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				st := sig.Statistics()
				switch st.ERSPI {
				case 1:
					if st.ResponseTime != 1*time.Second || (st.Dists != nil && st.Distribution(0) != distA) {
						t.Error("mixed snapshot: generation-1 erspi with foreign fields")
						return
					}
				case 2:
					if st.ResponseTime != 2*time.Second || st.Distribution(0) != distB {
						t.Error("mixed snapshot: generation-2 erspi with foreign fields")
						return
					}
				default:
					t.Errorf("impossible erspi %g", st.ERSPI)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-writerDone

	// Before any SetStats, Statistics falls back to the literal field.
	fresh := &Signature{Name: "f", Stats: Stats{ERSPI: 7}}
	if got := fresh.Statistics().ERSPI; got != 7 {
		t.Fatalf("fallback Statistics().ERSPI = %g, want 7", got)
	}
}

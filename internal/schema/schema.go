// Package schema models the information sources of a multi-domain
// query: web service signatures with access patterns, abstract
// domains, and the per-service statistics (erspi, response time,
// chunk size, decay) that drive optimization.
//
// It corresponds to §2.1 and §3.1 of Braga et al., "Optimization of
// Multi-Domain Queries on the Web" (VLDB 2008). A service signature
// has the form
//
//	sα(A1, ..., An)
//
// where each Ai is an abstract domain and α is a set of feasible
// access patterns, each a string over {i, o} indicating which
// arguments are input (must be bound to call the service) and which
// are output (returned by the service).
package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Mode says whether an argument position is an input or an output of
// a service under a given access pattern.
type Mode byte

const (
	// In marks an argument that must be bound before invocation.
	In Mode = 'i'
	// Out marks an argument produced by the service.
	Out Mode = 'o'
)

// AccessPattern is a sequence of modes, one per argument of a service
// signature. The k-th argument is an input argument if the k-th mode
// is In, an output argument otherwise (§3.1).
type AccessPattern []Mode

// ParsePattern converts a string such as "ioo" into an AccessPattern.
func ParsePattern(s string) (AccessPattern, error) {
	p := make(AccessPattern, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 'i', 'I':
			p[i] = In
		case 'o', 'O':
			p[i] = Out
		default:
			return nil, fmt.Errorf("schema: invalid access pattern %q: byte %d is %q, want 'i' or 'o'", s, i, s[i])
		}
	}
	return p, nil
}

// MustPattern is ParsePattern that panics on malformed input. It is
// intended for statically known patterns in tests and examples.
func MustPattern(s string) AccessPattern {
	p, err := ParsePattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the pattern in the paper's "ioo…" notation.
func (p AccessPattern) String() string {
	b := make([]byte, len(p))
	for i, m := range p {
		b[i] = byte(m)
	}
	return string(b)
}

// Inputs returns the indexes of the input arguments.
func (p AccessPattern) Inputs() []int {
	var idx []int
	for i, m := range p {
		if m == In {
			idx = append(idx, i)
		}
	}
	return idx
}

// Outputs returns the indexes of the output arguments.
func (p AccessPattern) Outputs() []int {
	var idx []int
	for i, m := range p {
		if m == Out {
			idx = append(idx, i)
		}
	}
	return idx
}

// Equal reports whether two patterns have the same modes.
func (p AccessPattern) Equal(q AccessPattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// MoreCogent reports whether p ⊒IO q, i.e. every field marked as
// input in q is also marked as input in p (§4.1.1, "bound is
// better"). The relation is a partial order; patterns of different
// arity are incomparable.
func (p AccessPattern) MoreCogent(q AccessPattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range q {
		if q[i] == In && p[i] != In {
			return false
		}
	}
	return true
}

// StrictlyMoreCogent reports p ≻IO q: p ⊒IO q and not q ⊒IO p.
func (p AccessPattern) StrictlyMoreCogent(q AccessPattern) bool {
	return p.MoreCogent(q) && !q.MoreCogent(p)
}

// Kind classifies a service as exact or search (§2.1).
type Kind int

const (
	// Exact services return a single tuple or an unranked set.
	Exact Kind = iota
	// Search services return tuples in ranking order, according to
	// an opaque measure of relevance.
	Search
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Exact:
		return "exact"
	case Search:
		return "search"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Stats carries the profiled characteristics of a service used by the
// cost model (§3.1 notation: ξ, τ, cs, d).
type Stats struct {
	// ERSPI is ξ, the expected result size per invocation: the
	// average number of tuples produced by one invocation. Services
	// with ERSPI > 1 are proliferative, with 0 < ERSPI < 1 selective.
	// For chunked services ERSPI is not used to size results (the
	// fetch schedule is), but it still characterizes the underlying
	// relation.
	ERSPI float64
	// ResponseTime is τ, the average time of one request–response.
	ResponseTime time.Duration
	// ChunkSize is cs: tuples returned by each fetch. Zero means the
	// service is bulk (all results in a single request).
	ChunkSize int
	// Decay is d: the number of tuples after which ranking is known
	// to fall below the threshold of interest. Zero means unknown.
	// It upper-bounds useful fetches at ceil(d/cs) (§4.3.2).
	Decay int
	// CostPerCall is m(n), the abstract per-invocation cost charged
	// under the sum cost metric. The request–response metric fixes
	// it to 1.
	CostPerCall float64
	// Dists holds the per-attribute value distributions, indexed by
	// argument position; nil (or a nil element) means no value
	// statistics for that attribute and the estimator falls back to
	// the uniform model over the domain's distinct count. Entries are
	// immutable Distribution snapshots swapped whole on refresh
	// (copy-on-write), so the cost model reads them lock-free.
	Dists []*Distribution
}

// Distribution returns the value distribution of the i-th attribute,
// or nil when none is known (out-of-range indexes included).
func (s Stats) Distribution(i int) *Distribution {
	if i < 0 || i >= len(s.Dists) {
		return nil
	}
	return s.Dists[i]
}

// Same reports whether two statistics snapshots are equivalent: equal
// scalar profile fields and matching per-attribute distributions. It
// replaces plain struct equality, which the Dists slice rules out.
func (s Stats) Same(t Stats) bool {
	if s.ERSPI != t.ERSPI || s.ResponseTime != t.ResponseTime ||
		s.ChunkSize != t.ChunkSize || s.Decay != t.Decay || s.CostPerCall != t.CostPerCall {
		return false
	}
	n := len(s.Dists)
	if len(t.Dists) > n {
		n = len(t.Dists)
	}
	for i := 0; i < n; i++ {
		if !SameDistribution(s.Distribution(i), t.Distribution(i)) {
			return false
		}
	}
	return true
}

// Chunked reports whether the service pages its results.
func (s Stats) Chunked() bool { return s.ChunkSize > 0 }

// Proliferative reports ξ > 1 (§2.1, after [16]).
func (s Stats) Proliferative() bool { return s.ERSPI > 1 }

// Selective reports 0 ≤ ξ ≤ 1.
func (s Stats) Selective() bool { return s.ERSPI <= 1 }

// MaxFetches returns the fetch upper bound implied by the decay, or 0
// if no decay is known (§4.3.2: after d/cs fetches no relevant data).
func (s Stats) MaxFetches() int {
	if s.Decay <= 0 || s.ChunkSize <= 0 {
		return 0
	}
	return (s.Decay + s.ChunkSize - 1) / s.ChunkSize
}

// Attribute is one argument position of a service signature: a name
// (for readability; the paper uses positional notation) and an
// abstract domain.
type Attribute struct {
	Name   string
	Domain Domain
}

// Signature describes a service: name, typed argument list, feasible
// access patterns, kind, and statistics.
//
// The Stats field holds the registration-time statistics and may be
// filled (or adjusted) freely while the signature is still private to
// one goroutine. Once the service is registered and concurrent
// optimizations may be reading it, statistics change only through
// SetStats, which publishes a whole immutable snapshot atomically
// (copy-on-write); Statistics returns the current snapshot. Readers
// therefore never observe a half-applied refresh — a mix of old and
// new scalar fields, or a Dists slice header from a different
// generation than the scalars next to it.
type Signature struct {
	Name     string
	Attrs    []Attribute
	Patterns []AccessPattern
	Kind     Kind
	Stats    Stats

	// snap, when non-nil, is the current statistics snapshot installed
	// by SetStats; it supersedes the Stats field. Snapshots are
	// immutable after publication.
	snap atomic.Pointer[Stats]
}

// Statistics returns the current statistics of the service: the last
// snapshot published by SetStats, or the registration-time Stats
// field before any refresh. The returned value is a consistent whole
// — every field comes from the same snapshot — and is safe to read
// concurrently with SetStats.
func (s *Signature) Statistics() Stats {
	if p := s.snap.Load(); p != nil {
		return *p
	}
	return s.Stats
}

// SetStats publishes a new statistics snapshot atomically. The caller
// must not mutate st (or anything reachable from st.Dists) after the
// call: concurrent readers hold references to it. Refresh paths
// (service.Observed, value profiling) funnel through here so the cost
// model can keep reading statistics lock-free.
func (s *Signature) SetStats(st Stats) {
	s.snap.Store(&st)
}

// Arity returns the number of arguments.
func (s *Signature) Arity() int { return len(s.Attrs) }

// Pattern returns the i-th feasible access pattern.
func (s *Signature) Pattern(i int) AccessPattern { return s.Patterns[i] }

// AttrIndex returns the position of the named attribute, or -1.
func (s *Signature) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural consistency: non-empty name, at least
// one pattern, every pattern of the right arity, chunked search
// services have positive chunk size.
func (s *Signature) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("schema: signature with empty name")
	}
	if len(s.Patterns) == 0 {
		return fmt.Errorf("schema: service %s has no feasible access pattern", s.Name)
	}
	for i, p := range s.Patterns {
		if len(p) != len(s.Attrs) {
			return fmt.Errorf("schema: service %s pattern %d has arity %d, want %d", s.Name, i, len(p), len(s.Attrs))
		}
		for j := i + 1; j < len(s.Patterns); j++ {
			if p.Equal(s.Patterns[j]) {
				return fmt.Errorf("schema: service %s has duplicate pattern %s", s.Name, p)
			}
		}
	}
	if s.Stats.ChunkSize < 0 {
		return fmt.Errorf("schema: service %s has negative chunk size", s.Name)
	}
	if s.Stats.ERSPI < 0 {
		return fmt.Errorf("schema: service %s has negative erspi", s.Name)
	}
	seen := map[string]bool{}
	for _, a := range s.Attrs {
		if a.Name != "" && seen[a.Name] {
			return fmt.Errorf("schema: service %s has duplicate attribute %q", s.Name, a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// String renders the signature in the paper's notation, e.g.
// conf{ioooo,ooooi}(Topic, Name, Start, End, City).
func (s *Signature) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, p := range s.Patterns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.String())
	}
	b.WriteString("}(")
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
	}
	b.WriteByte(')')
	return b.String()
}

// Schema is a set of signatures for different services (§3.1).
type Schema struct {
	byName map[string]*Signature
}

// NewSchema builds a schema from signatures, validating each and
// rejecting duplicates.
func NewSchema(sigs ...*Signature) (*Schema, error) {
	s := &Schema{byName: make(map[string]*Signature, len(sigs))}
	for _, sig := range sigs {
		if err := s.Add(sig); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Add registers a signature.
func (s *Schema) Add(sig *Signature) error {
	if err := sig.Validate(); err != nil {
		return err
	}
	if _, dup := s.byName[sig.Name]; dup {
		return fmt.Errorf("schema: duplicate service %s", sig.Name)
	}
	s.byName[sig.Name] = sig
	return nil
}

// Lookup returns the signature for a service name.
func (s *Schema) Lookup(name string) (*Signature, bool) {
	sig, ok := s.byName[name]
	return sig, ok
}

// Services returns all signatures sorted by name.
func (s *Schema) Services() []*Signature {
	out := make([]*Signature, 0, len(s.byName))
	for _, sig := range s.byName {
		out = append(out, sig)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered services.
func (s *Schema) Len() int { return len(s.byName) }

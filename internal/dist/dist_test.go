package dist_test

import (
	"context"
	"testing"
	"time"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	. "mdq/internal/dist"
	"mdq/internal/opt"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/simweb"
)

// threeAtomTravelText keeps the travel-world differential fast while
// exercising chunked services, both join kinds and a cross-atom
// predicate.
const threeAtomTravelText = `
q(Conf, City, Hotel, HPrice, FPrice) :-
    flight('Milano', City, Start, End, StartTime, EndTime, FPrice),
    hotel(Hotel, City, 'luxury', Start, End, HPrice),
    conf('DB', Conf, Start, End, City),
    FPrice + HPrice < 2000 {0.01}.`

// world bundles a registry+schema constructor for the differential
// matrix.
type world struct {
	name string
	make func() (*service.Registry, *schema.Schema)
	text string
}

func zipfWorld() (*service.Registry, *schema.Schema) {
	w := simweb.NewZipfWorld(10, 200, 1.1)
	return w.Registry, w.Schema
}

func travelWorld() (*service.Registry, *schema.Schema) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	return w.Registry, w.Schema
}

func bioWorld() (*service.Registry, *schema.Schema) {
	w := simweb.NewBioWorld()
	sch, err := w.Registry.Schema()
	if err != nil {
		panic(err)
	}
	return w.Registry, sch
}

var worlds = []world{
	{name: "travel", make: travelWorld, text: threeAtomTravelText},
	{name: "bioinfo", make: bioWorld, text: simweb.BioExampleText},
	{name: "zipf", make: zipfWorld, text: simweb.ZipfExampleText},
}

// resolve parses and resolves text against a schema.
func resolve(t *testing.T, text string, sch *schema.Schema) *cq.Query {
	t.Helper()
	q, err := cq.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve(sch); err != nil {
		t.Fatal(err)
	}
	return q
}

// localCluster builds a coordinator over n in-process workers, each
// with its own registry built by the same world constructor (the
// multi-process topology, minus the sockets) and a fresh plan cache.
func localCluster(t *testing.T, w world, n int) (*Coordinator, []*Worker) {
	t.Helper()
	reg, _ := w.make()
	co := &Coordinator{
		Registry: reg,
		Metric:   cost.ExecTime{},
		Mode:     card.OneCall,
		K:        10,
	}
	var workers []*Worker
	for i := 0; i < n; i++ {
		wreg, _ := w.make()
		wk := NewWorker(wreg, opt.NewPlanCache(16))
		wk.Parallelism = 1
		workers = append(workers, wk)
		co.Workers = append(co.Workers, LocalTransport{Worker: wk})
	}
	return co, workers
}

// TestDistributedMatchesSequential: the acceptance differential — a
// LocalTransport cluster of two and three workers returns plans
// byte-identical (canonical signature, cost, feasibility) to the
// sequential in-process optimizer, on all three simweb worlds.
func TestDistributedMatchesSequential(t *testing.T) {
	for _, w := range worlds {
		t.Run(w.name, func(t *testing.T) {
			reg, sch := w.make()
			q := resolve(t, w.text, sch)
			seq := &opt.Optimizer{
				Metric:       cost.ExecTime{},
				Estimator:    card.Config{Mode: card.OneCall},
				K:            10,
				ChooseMethod: reg.MethodChooser(),
			}
			want, err := seq.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{2, 3} {
				co, _ := localCluster(t, w, n)
				cq2 := resolve(t, w.text, mustSchema(t, co.Registry))
				got, err := co.Optimize(context.Background(), cq2)
				if err != nil {
					t.Fatalf("%d workers: %v", n, err)
				}
				if got.Cost != want.Cost || got.Feasible != want.Feasible {
					t.Fatalf("%d workers: cost %g/%v, sequential %g/%v",
						n, got.Cost, got.Feasible, want.Cost, want.Feasible)
				}
				if gs, ws := got.Best.Signature(), want.Best.Signature(); gs != ws {
					t.Fatalf("%d workers: plan %s, sequential %s", n, gs, ws)
				}
				if got.Stats.PermissibleAssignments != want.Stats.PermissibleAssignments ||
					got.Stats.CandidateAssignments != want.Stats.CandidateAssignments {
					t.Fatalf("%d workers: assignment counts %+v, sequential %+v", n, got.Stats, want.Stats)
				}
			}
		})
	}
}

func mustSchema(t *testing.T, reg *service.Registry) *schema.Schema {
	t.Helper()
	sch, err := reg.Schema()
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// TestDistributedMoreWorkersThanAssignments: shards beyond the
// assignment count come back empty (Found=false) and the merge still
// returns the sequential optimum.
func TestDistributedMoreWorkersThanAssignments(t *testing.T) {
	w := worlds[2] // zipf: two atoms, very few assignments
	reg, sch := w.make()
	q := resolve(t, w.text, sch)
	seq := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: reg.MethodChooser()}
	want, err := seq.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	co, _ := localCluster(t, w, 6)
	got, err := co.Optimize(context.Background(), resolve(t, w.text, mustSchema(t, co.Registry)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.Signature() != want.Best.Signature() || got.Cost != want.Cost {
		t.Fatalf("6-worker merge (%g, %s), sequential (%g, %s)",
			got.Cost, got.Best.Signature(), want.Cost, want.Best.Signature())
	}
}

// TestDistributedTemplateServing: repeated template optimizations hit
// the workers' template caches — the second distributed call performs
// zero fresh searches across the cluster — and serve the same plan.
func TestDistributedTemplateServing(t *testing.T) {
	w := worlds[2]
	co, workers := localCluster(t, w, 2)
	q := resolve(t, w.text, mustSchema(t, co.Registry))

	r1, err := co.OptimizeTemplate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TemplateHit {
		t.Fatal("first distributed template call claimed a hit on cold caches")
	}
	searchesAfterFirst := clusterSearches(workers)
	if searchesAfterFirst == 0 {
		t.Fatal("cold call ran no searches")
	}
	r2, err := co.OptimizeTemplate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.TemplateHit {
		t.Fatal("second distributed template call missed the worker caches")
	}
	if got := clusterSearches(workers); got != searchesAfterFirst {
		t.Fatalf("second call ran %d fresh searches", got-searchesAfterFirst)
	}
	if r1.Best.Signature() != r2.Best.Signature() {
		t.Fatalf("template hit changed the plan: %s vs %s", r2.Best.Signature(), r1.Best.Signature())
	}
}

func clusterSearches(workers []*Worker) uint64 {
	var n uint64
	for _, wk := range workers {
		n += wk.Cache().Stats().Searches
	}
	return n
}

// TestWarmWorkersFromUnshardedCache: the primary warmup path — a
// coordinator's local (unsharded) template entries must be servable
// by sharded worker searches, i.e. template keys are shard-blind.
func TestWarmWorkersFromUnshardedCache(t *testing.T) {
	w := worlds[2]
	co, workers := localCluster(t, w, 2)
	q := resolve(t, w.text, mustSchema(t, co.Registry))

	// Populate a local, unsharded cache on the coordinator's side —
	// what a single-node mdqserve would have persisted.
	local := opt.NewPlanCache(16)
	seq := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: co.Registry.MethodChooser(), Cache: local,
		CacheSalt: co.Registry.CacheSalt(), Epochs: co.Registry}
	if _, err := seq.OptimizeTemplate(q); err != nil {
		t.Fatal(err)
	}
	n, err := co.WarmWorkers(context.Background(), local)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("unsharded entries were not importable")
	}
	r, err := co.OptimizeTemplate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !r.TemplateHit {
		t.Fatal("sharded worker search did not serve the unsharded warm skeleton")
	}
	if got := clusterSearches(workers); got != 0 {
		t.Fatalf("warmed cluster ran %d searches, want 0", got)
	}
}

// TestConcurrentSearchesIsolated: two coordinators sharing one worker
// fleet run different queries concurrently; search IDs must keep
// their incumbent bounds apart (a shared ID would min-merge one
// query's bound into the other's search and corrupt its result).
func TestConcurrentSearchesIsolated(t *testing.T) {
	w := worlds[0] // travel: costs large enough that cross-talk would prune wrongly
	reg, sch := w.make()
	cheap := resolve(t, threeAtomTravelText, sch)
	costly := resolve(t, `
q(Conf, City, Hotel, HPrice) :-
    conf('DB', Conf, Start, End, City),
    hotel(Hotel, City, 'luxury', Start, End, HPrice).`, sch)
	seq := func(q *cq.Query) *opt.Result {
		o := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
			K: 10, ChooseMethod: reg.MethodChooser()}
		res, err := o.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	wantCheap, wantCostly := seq(cheap), seq(costly)

	co, _ := localCluster(t, w, 2)
	co.SyncInterval = time.Millisecond
	sch2 := mustSchema(t, co.Registry)
	co2 := &Coordinator{Registry: co.Registry, Workers: co.Workers,
		Metric: cost.ExecTime{}, Mode: card.OneCall, K: 10,
		SyncInterval: time.Millisecond}
	q1 := resolve(t, threeAtomTravelText, sch2)
	q2 := resolve(t, costly.String(), sch2)

	type out struct {
		res *opt.Result
		err error
	}
	ch1, ch2 := make(chan out, 1), make(chan out, 1)
	go func() { r, err := co.Optimize(context.Background(), q1); ch1 <- out{r, err} }()
	go func() { r, err := co2.Optimize(context.Background(), q2); ch2 <- out{r, err} }()
	o1, o2 := <-ch1, <-ch2
	if o1.err != nil || o2.err != nil {
		t.Fatalf("concurrent searches errored: %v / %v", o1.err, o2.err)
	}
	if o1.res.Cost != wantCheap.Cost || o1.res.Best.Signature() != wantCheap.Best.Signature() {
		t.Fatalf("concurrent cheap query (%g, %s), sequential (%g, %s)",
			o1.res.Cost, o1.res.Best.Signature(), wantCheap.Cost, wantCheap.Best.Signature())
	}
	if o2.res.Cost != wantCostly.Cost || o2.res.Best.Signature() != wantCostly.Best.Signature() {
		t.Fatalf("concurrent costly query (%g, %s), sequential (%g, %s)",
			o2.res.Cost, o2.res.Best.Signature(), wantCostly.Cost, wantCostly.Best.Signature())
	}
}

// TestWarmWorkers: template entries exported from one cache warm a
// whole cluster; matching statistics admit them fresh.
func TestWarmWorkers(t *testing.T) {
	w := worlds[2]
	co, workers := localCluster(t, w, 2)
	q := resolve(t, w.text, mustSchema(t, co.Registry))

	// Populate the cluster's caches once, then export a worker's
	// entries and warm a second, cold cluster with them.
	if _, err := co.OptimizeTemplate(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	entries := workers[0].ExportTemplates()
	if len(entries) == 0 {
		t.Fatal("populated worker exported no template entries")
	}

	co2, workers2 := localCluster(t, w, 2)
	n, err := co2.WarmWorkers(context.Background(), workers[0].Cache())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2*len(entries) {
		t.Fatalf("warmed %d entries across 2 workers, want %d", n, 2*len(entries))
	}
	// The warm cluster serves without a single fresh search: the
	// imported skeleton's fingerprints match the workers' local
	// statistics (identical world constructors), so entries are
	// fresh.
	r, err := co2.OptimizeTemplate(context.Background(), resolve(t, w.text, mustSchema(t, co2.Registry)))
	if err != nil {
		t.Fatal(err)
	}
	if !r.TemplateHit {
		t.Fatal("warmed cluster did not serve from imported skeletons")
	}
	if got := clusterSearches(workers2); got != 0 {
		t.Fatalf("warmed cluster ran %d searches, want 0", got)
	}
}

package dist_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"mdq/internal/card"
	"mdq/internal/cost"
	. "mdq/internal/dist"
	"mdq/internal/opt"
	"mdq/internal/service"
)

// httpCluster runs n workers behind real HTTP servers (loopback) and
// returns a coordinator speaking HTTPTransport to them.
func httpCluster(t *testing.T, w world, n int) (*Coordinator, []*Worker) {
	t.Helper()
	reg, _ := w.make()
	co := &Coordinator{
		Registry: reg,
		Metric:   cost.ExecTime{},
		Mode:     card.OneCall,
		K:        10,
	}
	var workers []*Worker
	for i := 0; i < n; i++ {
		wreg, _ := w.make()
		wk := NewWorker(wreg, opt.NewPlanCache(16))
		wk.Parallelism = 1
		srv := httptest.NewServer(wk.Handler())
		t.Cleanup(srv.Close)
		workers = append(workers, wk)
		co.Workers = append(co.Workers, &HTTPTransport{Base: srv.URL})
	}
	return co, workers
}

// TestHTTPTransportDifferential: the full protocol over real HTTP —
// sharded search, skeleton wire format, bound sync — returns the
// sequential optimizer's plan.
func TestHTTPTransportDifferential(t *testing.T) {
	w := worlds[2] // zipf keeps the HTTP round-trips cheap
	reg, sch := w.make()
	q := resolve(t, w.text, sch)
	seq := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: reg.MethodChooser()}
	want, err := seq.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}

	co, _ := httpCluster(t, w, 2)
	got, err := co.Optimize(context.Background(), resolve(t, w.text, mustSchema(t, co.Registry)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost || got.Best.Signature() != want.Best.Signature() {
		t.Fatalf("http cluster (%g, %s), sequential (%g, %s)",
			got.Cost, got.Best.Signature(), want.Cost, want.Best.Signature())
	}
}

// TestHTTPGossipAndWarmup: epoch bumps and template entries travel
// over the wire endpoints.
func TestHTTPGossipAndWarmup(t *testing.T) {
	w := worlds[2]
	co, workers := httpCluster(t, w, 2)
	q := resolve(t, w.text, mustSchema(t, co.Registry))
	ctx := context.Background()

	if _, err := co.OptimizeTemplate(ctx, q); err != nil {
		t.Fatal(err)
	}
	epoch := co.Registry.BumpEpoch("review")
	if err := co.Gossip(ctx, []service.EpochBump{{Service: "review", Epoch: epoch}}); err != nil {
		t.Fatal(err)
	}
	stale := 0
	for _, wk := range workers {
		for _, e := range wk.Cache().Entries() {
			if e.Stale {
				stale++
			}
		}
	}
	if stale == 0 {
		t.Fatal("HTTP gossip marked nothing stale")
	}

	// Warm a second HTTP cluster from the first worker's cache.
	co2, workers2 := httpCluster(t, w, 2)
	n, err := co2.WarmWorkers(ctx, workers[0].Cache())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("HTTP warmup imported nothing")
	}
	imported := 0
	for _, wk := range workers2 {
		imported += len(wk.Cache().Entries())
	}
	if imported == 0 {
		t.Fatal("warmed caches are empty")
	}

	// A malformed request gets the JSON error envelope, not a hang.
	tr := co.Workers[0]
	if _, err := tr.Search(ctx, SearchRequest{Query: "not a query", ShardCount: 2}); err == nil {
		t.Fatal("malformed query did not error over HTTP")
	}
}

package dist_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	. "mdq/internal/dist"
	"mdq/internal/opt"
	"mdq/internal/serve"
)

// wrapFaults replaces every coordinator transport with a FaultTransport
// around it (the sanctioned fault-injection seam) and speeds the retry
// backoff up to test time scales.
func wrapFaults(co *Coordinator) []*FaultTransport {
	faults := make([]*FaultTransport, len(co.Workers))
	for i, tr := range co.Workers {
		faults[i] = NewFaultTransport(tr)
		co.Workers[i] = faults[i]
	}
	co.Retry = RetryPolicy{Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	return faults
}

// TestFaultTransportScript pins the fault script semantics: refusal,
// fail-next with recovery, flapping, and the call counters the tests
// lean on.
func TestFaultTransportScript(t *testing.T) {
	co, _ := localCluster(t, worlds[2], 1)
	ft := wrapFaults(co)[0]
	ctx := context.Background()

	// Refuse: every operation fails transiently.
	ft.Refuse(true)
	if err := ft.Probe(ctx); !IsTransient(err) {
		t.Fatalf("refused probe: %v, want transient", err)
	}
	if _, err := ft.Services(ctx); !IsTransient(err) {
		t.Fatalf("refused services: %v, want transient", err)
	}
	ft.Refuse(false)
	if err := ft.Probe(ctx); err != nil {
		t.Fatalf("recovered probe: %v", err)
	}

	// FailNext: exactly n failures, then recovery.
	ft.FailNext(OpProbe, 2)
	for i := 0; i < 2; i++ {
		if err := ft.Probe(ctx); !IsTransient(err) {
			t.Fatalf("fail-next probe %d: %v, want transient", i, err)
		}
	}
	if err := ft.Probe(ctx); err != nil {
		t.Fatalf("probe after fail-next drained: %v", err)
	}

	// FlapEvery: every k-th call fails.
	ft.FlapEvery(OpGossip, 2)
	if err := ft.Gossip(ctx, nil); err != nil {
		t.Fatalf("flap call 1: %v", err)
	}
	if err := ft.Gossip(ctx, nil); !IsTransient(err) {
		t.Fatalf("flap call 2: %v, want transient", err)
	}
	ft.FlapEvery(OpGossip, 0)
	if err := ft.Gossip(ctx, nil); err != nil {
		t.Fatalf("flap cleared: %v", err)
	}

	// 5 probes above: 1 refused, 1 recovered, 2 fail-next, 1 drained.
	if got := ft.Calls(OpProbe); got != 5 {
		t.Fatalf("probe calls = %d, want 5", got)
	}
	// Injected: refused probe + refused services + 2 fail-next + 1 flap.
	if got := ft.Injected(); got != 5 {
		t.Fatalf("injected = %d, want 5", got)
	}
}

// TestFaultTransportStall: a stalled operation blocks until the
// caller's context expires and surfaces the context's own error —
// which must NOT be classified transient (retrying a cancelled call is
// never right).
func TestFaultTransportStall(t *testing.T) {
	co, _ := localCluster(t, worlds[2], 1)
	ft := wrapFaults(co)[0]
	ft.Stall(OpSearch, true)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := ft.Search(ctx, SearchRequest{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled search: %v, want deadline exceeded", err)
	}
	if IsTransient(err) {
		t.Fatal("a context expiry mid-call must not be transient")
	}
}

// TestFaultTransportKillConsumesOnlyOnFire: an execution shorter than
// the kill point completes normally and does not consume the scripted
// kill — the contract frame-boundary sweeps depend on.
func TestFaultTransportKillConsumesOnlyOnFire(t *testing.T) {
	w := worlds[2]
	co, _ := localCluster(t, w, 1)
	co.BatchSize = 2
	ft := wrapFaults(co)[0]
	p := optimizeOn(t, co, w.text)

	// A kill point far beyond any real stream never fires.
	ft.KillExecuteAfter(1_000_000, 1)
	if _, err := co.ExecutePlan(context.Background(), p); err != nil {
		t.Fatalf("execution with unreachable kill point: %v", err)
	}
	if ft.Kills() != 0 {
		t.Fatalf("unreachable kill point fired %d times", ft.Kills())
	}
	if ft.MaxFrames() == 0 {
		t.Fatal("MaxFrames recorded no frames for a completed execution")
	}
}

// TestTransientErrorUnwrap: the typed error chain works with
// errors.Is/As through fmt wrapping, and IsTransient sees through
// nesting.
func TestTransientErrorUnwrap(t *testing.T) {
	inner := errors.New("connection refused")
	te := &TransientError{Err: inner}
	wrapped := fmt.Errorf("dist: worker w1: %w", te)
	if !IsTransient(wrapped) {
		t.Fatal("IsTransient missed a wrapped TransientError")
	}
	if !errors.Is(wrapped, inner) {
		t.Fatal("TransientError hid the underlying failure from errors.Is")
	}
	if IsTransient(inner) {
		t.Fatal("a bare error claimed to be transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil claimed to be transient")
	}
}

// TestHTTPTransportClassification pins the wire-level taxonomy: refused
// connections and 5xx responses are transient; 4xx responses are
// permanent; probe failures are always transient.
func TestHTTPTransportClassification(t *testing.T) {
	ctx := context.Background()

	status := http.StatusInternalServerError
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		code := status
		mu.Unlock()
		http.Error(w, "scripted failure", code)
	}))
	defer srv.Close()
	tr := &HTTPTransport{Base: srv.URL}

	// 5xx: the worker is broken, not the request — transient.
	if _, err := tr.Search(ctx, SearchRequest{}); !IsTransient(err) {
		t.Fatalf("500 search: %v, want transient", err)
	}
	if _, err := tr.Sync(ctx, "s", 0); !IsTransient(err) {
		t.Fatalf("500 sync: %v, want transient", err)
	}
	if _, err := tr.ExecuteFragment(ctx, ExecuteRequest{}, nil); !IsTransient(err) {
		t.Fatalf("500 execute: %v, want transient", err)
	}
	if _, err := tr.Services(ctx); !IsTransient(err) {
		t.Fatalf("500 services: %v, want transient", err)
	}
	if err := tr.Probe(ctx); !IsTransient(err) {
		t.Fatalf("500 probe: %v, want transient", err)
	}

	// 4xx: the request is wrong — permanent.
	mu.Lock()
	status = http.StatusBadRequest
	mu.Unlock()
	if _, err := tr.Search(ctx, SearchRequest{}); err == nil || IsTransient(err) {
		t.Fatalf("400 search: %v, want permanent error", err)
	}
	if _, err := tr.ExecuteFragment(ctx, ExecuteRequest{}, nil); err == nil || IsTransient(err) {
		t.Fatalf("400 execute: %v, want permanent error", err)
	}
	// ... except the probe, where any failure is exactly the signal.
	if err := tr.Probe(ctx); !IsTransient(err) {
		t.Fatalf("400 probe: %v, want transient", err)
	}

	// A dead server: every operation is transient.
	deadSrv := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadSrv.URL
	deadSrv.Close()
	dead := &HTTPTransport{Base: deadURL}
	if _, err := dead.Search(ctx, SearchRequest{}); !IsTransient(err) {
		t.Fatalf("refused search: %v, want transient", err)
	}
	if err := dead.Gossip(ctx, nil); !IsTransient(err) {
		t.Fatalf("refused gossip: %v, want transient", err)
	}
	if _, err := dead.ImportTemplates(ctx, []opt.TemplateWireEntry{{}}); !IsTransient(err) {
		t.Fatalf("refused templates: %v, want transient", err)
	}
	if err := dead.Probe(ctx); !IsTransient(err) {
		t.Fatalf("refused probe: %v, want transient", err)
	}
}

// TestHTTPExecuteStreamFaults drives the execute stream decoder with
// scripted wire shapes: a sequence gap and a truncated stream are
// transient (re-dispatchable); a worker-reported error frame is
// permanent; a budget frame keeps its type.
func TestHTTPExecuteStreamFaults(t *testing.T) {
	ctx := context.Background()
	var mode string
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		m := mode
		mu.Unlock()
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		switch m {
		case "gap":
			enc.Encode(ExecuteFrame{Batch: []WireTuple{{}}, Seq: 0})
			enc.Encode(ExecuteFrame{Batch: []WireTuple{{}}, Seq: 2})
			enc.Encode(ExecuteFrame{Done: &ExecuteResult{Tuples: 2}})
		case "truncated":
			enc.Encode(ExecuteFrame{Batch: []WireTuple{{}}, Seq: 0})
			// no Done frame: the worker vanished mid-stream
		case "error":
			enc.Encode(ExecuteFrame{Batch: []WireTuple{{}}, Seq: 0})
			enc.Encode(ExecuteFrame{Error: "dist: fragment exploded"})
		case "budget":
			enc.Encode(ExecuteFrame{Error: "budget tripped", BudgetExceeded: true,
				BudgetReason: "calls", BudgetLimit: "20"})
		}
	}))
	defer srv.Close()
	tr := &HTTPTransport{Base: srv.URL}
	run := func(m string) error {
		mu.Lock()
		mode = m
		mu.Unlock()
		_, err := tr.ExecuteFragment(ctx, ExecuteRequest{}, func([]WireTuple) error { return nil })
		return err
	}

	if err := run("gap"); !IsTransient(err) {
		t.Fatalf("seq gap: %v, want transient", err)
	}
	if err := run("truncated"); !IsTransient(err) {
		t.Fatalf("truncated stream: %v, want transient", err)
	}
	if err := run("error"); err == nil || IsTransient(err) {
		t.Fatalf("worker error frame: %v, want permanent", err)
	}
	err := run("budget")
	var be *serve.BudgetError
	if !errors.As(err, &be) || be.Reason != "calls" {
		t.Fatalf("budget frame: %v, want *serve.BudgetError{calls}", err)
	}
	if IsTransient(err) {
		t.Fatal("a budget trip must never be transient")
	}
}

// TestMembershipStateMachine walks the up → suspect → down → up cycle
// with explicit outcome reports and checks the OnChange notifications,
// snapshot rows and state counts along the way.
func TestMembershipStateMachine(t *testing.T) {
	co, _ := localCluster(t, worlds[2], 2)
	m := NewMembership(co.Workers)
	m.SuspectAfter = 1
	m.DownAfter = 3
	type change struct {
		worker   string
		from, to WorkerState
	}
	var mu sync.Mutex
	var changes []change
	m.OnChange = func(w string, from, to WorkerState) {
		mu.Lock()
		changes = append(changes, change{w, from, to})
		mu.Unlock()
	}

	if m.State(0) != StateUp || !m.Alive(0) {
		t.Fatal("workers must start up")
	}
	m.ReportFailure(0, errors.New("boom 1"))
	if m.State(0) != StateSuspect || !m.Alive(0) {
		t.Fatalf("after 1 failure: %v, want suspect (still dispatchable)", m.State(0))
	}
	m.ReportFailure(0, errors.New("boom 2"))
	if m.State(0) != StateSuspect {
		t.Fatalf("after 2 failures: %v, want suspect", m.State(0))
	}
	m.ReportFailure(0, errors.New("boom 3"))
	if m.State(0) != StateDown || m.Alive(0) {
		t.Fatalf("after 3 failures: %v, want down", m.State(0))
	}
	// Another failure keeps it down, no spurious transition.
	m.ReportFailure(0, errors.New("boom 4"))
	if m.State(0) != StateDown {
		t.Fatalf("down worker moved to %v on a further failure", m.State(0))
	}

	if got := m.Counts(); got["up"] != 1 || got["down"] != 1 || got["suspect"] != 0 {
		t.Fatalf("counts = %v, want 1 up / 1 down", got)
	}
	snap := m.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d rows, want 2", len(snap))
	}
	if snap[0].State != "down" || snap[0].ConsecutiveFailures != 4 || snap[0].LastError == "" {
		t.Fatalf("down row = %+v", snap[0])
	}
	if snap[1].State != "up" || snap[1].ConsecutiveFailures != 0 {
		t.Fatalf("up row = %+v", snap[1])
	}

	// One success resurrects.
	m.ReportSuccess(0)
	if m.State(0) != StateUp {
		t.Fatalf("after success: %v, want up", m.State(0))
	}

	mu.Lock()
	defer mu.Unlock()
	want := []change{
		{"local", StateUp, StateSuspect},
		{"local", StateSuspect, StateDown},
		{"local", StateDown, StateUp},
	}
	if len(changes) != len(want) {
		t.Fatalf("OnChange fired %d times (%v), want %d", len(changes), changes, len(want))
	}
	for i, c := range changes {
		if c != want[i] {
			t.Fatalf("change %d = %+v, want %+v", i, c, want[i])
		}
	}
}

// TestMembershipCheck: one active probe round feeds the state machine
// from Transport.Probe and stamps LastProbe; a refused worker degrades
// and a recovered one resurrects.
func TestMembershipCheck(t *testing.T) {
	co, _ := localCluster(t, worlds[2], 2)
	faults := wrapFaults(co)
	m := NewMembership(co.Workers)
	m.SuspectAfter = 1
	m.DownAfter = 2

	if up := m.Check(context.Background()); up != 2 {
		t.Fatalf("healthy fleet: %d up, want 2", up)
	}
	faults[1].Refuse(true)
	m.Check(context.Background())
	if m.State(1) != StateSuspect {
		t.Fatalf("after 1 failed probe: %v, want suspect", m.State(1))
	}
	if up := m.Check(context.Background()); up != 1 || m.State(1) != StateDown {
		t.Fatalf("after 2 failed probes: %d up, state %v; want 1 up, down", up, m.State(1))
	}
	if m.Snapshot()[1].LastProbe.IsZero() {
		t.Fatal("probe did not stamp LastProbe")
	}
	faults[1].Refuse(false)
	m.Check(context.Background())
	if m.State(1) != StateUp {
		t.Fatalf("after recovery probe: %v, want up", m.State(1))
	}
}

// TestMembershipHealthLoop: the probe loop notices a death and a
// recovery on its own, and stop is idempotent and blocks until the
// loop exits.
func TestMembershipHealthLoop(t *testing.T) {
	co, _ := localCluster(t, worlds[2], 2)
	faults := wrapFaults(co)
	m := NewMembership(co.Workers)
	m.SuspectAfter = 1
	m.DownAfter = 1
	stop := m.HealthLoop(2 * time.Millisecond)
	defer stop()

	faults[0].Refuse(true)
	waitFor(t, time.Second, func() bool { return m.State(0) == StateDown })
	faults[0].Refuse(false)
	waitFor(t, time.Second, func() bool { return m.State(0) == StateUp })
	stop()
	stop() // idempotent
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWorkerStateString pins the metric/fleet label names.
func TestWorkerStateString(t *testing.T) {
	if StateUp.String() != "up" || StateSuspect.String() != "suspect" || StateDown.String() != "down" {
		t.Fatalf("state labels: %s/%s/%s", StateUp, StateSuspect, StateDown)
	}
	if WorkerState(42).String() != "unknown" {
		t.Fatalf("out-of-range state renders %q", WorkerState(42).String())
	}
}

// TestWorkerHealthEndpoint: GET /dist/health answers 200 with the
// worker's serving status, and HTTPTransport.Probe accepts it.
func TestWorkerHealthEndpoint(t *testing.T) {
	co, workers := httpCluster(t, worlds[2], 1)
	tr := co.Workers[0]
	if err := tr.Probe(context.Background()); err != nil {
		t.Fatalf("probe against a live worker: %v", err)
	}
	base := tr.Name()
	resp, err := http.Get(base + "/dist/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || !hr.Executing {
		t.Fatalf("health = %+v, want ok/executing", hr)
	}
	if hr.ActiveSearches != 0 {
		t.Fatalf("idle worker reports %d active searches", hr.ActiveSearches)
	}
	_ = workers
}

package dist_test

import (
	"context"
	"testing"

	. "mdq/internal/dist"
	"mdq/internal/exec"
	"mdq/internal/plan"
	"mdq/internal/rescache"
	"mdq/internal/service"
)

// shareStores wires a fresh result cache into every worker of a
// cluster, bound to the worker's own registry — the mdqworker
// -rescache topology.
func shareStores(workers []*Worker) []*rescache.Store {
	var stores []*rescache.Store
	for _, wk := range workers {
		st := rescache.New(rescache.Config{})
		st.Bind(wk.Registry())
		wk.ResultCache = st
		stores = append(stores, st)
	}
	return stores
}

// totalCalls sums the logical service calls of one execution.
func totalCalls(r *exec.Result) int64 {
	var n int64
	for _, c := range r.Stats.Calls {
		n += c
	}
	return n
}

// execTwice runs the same plan through the coordinator twice (cloned
// per run, as two independent requests would be) and returns both
// results. The coordinator must run with K=0: exhaustive execution
// makes the per-service call accounting deterministic, where a top-K
// run stops streaming at a timing-dependent point.
func execTwice(t *testing.T, co *Coordinator, p *plan.Plan) (*exec.Result, *exec.Result) {
	t.Helper()
	r1, err := co.ExecutePlan(context.Background(), p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := co.ExecutePlan(context.Background(), p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	return r1, r2
}

// TestResultCacheDifferentialLocal is the cross-query sharing gate on
// LocalTransport: with every worker holding a result cache, repeated
// execution of the same plan returns rows byte-identical to the
// uncached cluster on all three worlds, while the second execution
// charges strictly fewer logical service calls.
func TestResultCacheDifferentialLocal(t *testing.T) {
	for _, w := range worlds {
		w := w
		t.Run(w.name, func(t *testing.T) {
			plain, _ := localCluster(t, w, 2)
			plain.K = 0
			p := optimizeOn(t, plain, w.text)
			base1, base2 := execTwice(t, plain, p)
			assertSameExecution(t, base1, base2) // uncached runs are deterministic

			shared, workers := localCluster(t, w, 2)
			shared.K = 0
			stores := shareStores(workers)
			got1, got2 := execTwice(t, shared, p)
			assertSameExecution(t, base1, got1)
			assertSameExecution(t, base2, got2)

			if s, b := totalCalls(got2), totalCalls(base2); s >= b {
				t.Fatalf("second shared run charged %d calls, uncached %d — no sharing win", s, b)
			}
			var hits uint64
			for _, st := range stores {
				hits += st.Stats().Hits
			}
			if hits == 0 {
				t.Fatal("no result-cache hits across repeated executions")
			}
		})
	}
}

// TestResultCacheDifferentialHTTP repeats the differential over real
// loopback HTTP workers: frame decoding and worker-side accounting
// must not leak cached state into the rows.
func TestResultCacheDifferentialHTTP(t *testing.T) {
	for _, w := range []world{worlds[0], worlds[2]} { // travel (join-rich), zipf (cheap)
		w := w
		t.Run(w.name, func(t *testing.T) {
			plain, _ := httpCluster(t, w, 2)
			plain.K = 0
			p := optimizeOn(t, plain, w.text)
			base1, base2 := execTwice(t, plain, p)

			shared, workers := httpCluster(t, w, 2)
			shared.K = 0
			shareStores(workers)
			got1, got2 := execTwice(t, shared, p)
			assertSameExecution(t, base1, got1)
			assertSameExecution(t, base2, got2)

			if s, b := totalCalls(got2), totalCalls(base2); s >= b {
				t.Fatalf("second shared run charged %d calls, uncached %d — no sharing win", s, b)
			}
		})
	}
}

// TestResultCacheEpochBumpRefetches pins the invalidation path at the
// fleet level: after every worker's registry bumps a service's epoch
// (a re-profile), the cached entries for it are evicted eagerly and
// the next execution re-invokes the services — with unchanged data it
// must still produce identical rows, never an error or a short result
// from a half-dropped cache.
func TestResultCacheEpochBumpRefetches(t *testing.T) {
	w := worlds[0] // travel: multiple services, chunked fetches
	plain, _ := localCluster(t, w, 2)
	plain.K = 0
	p := optimizeOn(t, plain, w.text)
	want, err := plain.ExecutePlan(context.Background(), p.Clone())
	if err != nil {
		t.Fatal(err)
	}

	shared, workers := localCluster(t, w, 2)
	shared.K = 0
	stores := shareStores(workers)
	if _, err := shared.ExecutePlan(context.Background(), p.Clone()); err != nil {
		t.Fatal(err)
	}
	svc := p.ServiceNode[0].Atom.Service
	for _, wk := range workers {
		wk.Registry().BumpEpoch(svc)
	}
	var invalidated uint64
	for _, st := range stores {
		invalidated += st.Stats().Invalidations
	}
	if invalidated == 0 {
		t.Fatalf("epoch bump of %s invalidated nothing", svc)
	}
	got, err := shared.ExecutePlan(context.Background(), p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	assertSameExecution(t, want, got)
	if got.Stats.Calls[svc] == 0 {
		t.Fatalf("post-bump execution did not re-invoke %s", svc)
	}
}

// TestWorkerGossipDropsResultCache pins the remote-bump path: a
// gossip-delivered epoch bump must drop every result-cache entry of
// the bumped service unconditionally (remote epoch numbers are
// uncoordinated with local stamps), and leave other services alone.
func TestWorkerGossipDropsResultCache(t *testing.T) {
	w := worlds[2]
	_, workers := localCluster(t, w, 1)
	wk := workers[0]
	st := rescache.New(rescache.Config{})
	st.Bind(wk.Registry())
	wk.ResultCache = st
	st.Put("catalog", "k1", exec.Entry{Exhausted: true})
	st.Put("review", "k2", exec.Entry{Exhausted: true})

	wk.Gossip([]service.EpochBump{{Service: "catalog", Epoch: 99}})
	if _, ok := st.Get("catalog", "k1"); ok {
		t.Fatal("gossiped bump left the service's entry cached")
	}
	if _, ok := st.Get("review", "k2"); !ok {
		t.Fatal("gossiped bump evicted an unrelated service")
	}
}

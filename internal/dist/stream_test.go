package dist_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mdq/internal/card"
	. "mdq/internal/dist"
	"mdq/internal/exec"
	"mdq/internal/serve"
)

// TestExecutePlanEarlyK: reaching K at the coordinator's output
// cancels the in-flight fragment streams, and the truncated result is
// still byte-identical to a coordinator-local K-limited run — over
// both transports.
func TestExecutePlanEarlyK(t *testing.T) {
	w := worlds[0] // travel: proliferative enough that K stops mid-stream
	clusters := []struct {
		name string
		mk   func(t *testing.T, w world, n int) (*Coordinator, []*Worker)
	}{
		{"local", localCluster},
		{"http", httpCluster},
	}
	for _, cl := range clusters {
		cl := cl
		t.Run(cl.name, func(t *testing.T) {
			co, _ := cl.mk(t, w, 2)
			co.K = 2
			p := optimizeOn(t, co, w.text)
			local := &exec.Runner{Registry: co.Registry, Cache: card.OneCall, K: 2}
			want, err := local.Run(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := co.ExecutePlan(context.Background(), p)
			if err != nil {
				t.Fatalf("early-K execution failed: %v", err)
			}
			assertSameExecution(t, want, got)
			if len(got.Rows) != 2 {
				t.Fatalf("rows = %d, want 2", len(got.Rows))
			}
			if got.FirstRow <= 0 || got.FirstRow > got.Elapsed {
				t.Fatalf("FirstRow = %v (elapsed %v), want within the run", got.FirstRow, got.Elapsed)
			}
		})
	}
}

// TestExecutePlanEarlyKSavesWork: the K-satisfied cancellation
// reaches the workers — the fleet's recorded call accounting for a
// K=2 run stays below the full drain's (stats count completed
// fragments, so cancelled siblings never inflate them).
func TestExecutePlanEarlyKSavesWork(t *testing.T) {
	w := worlds[0]
	full, _ := localCluster(t, w, 2)
	full.K = 0
	p := optimizeOn(t, full, w.text)
	fres, err := full.ExecutePlan(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	var fullCalls int64
	for _, v := range fres.Stats.Calls {
		fullCalls += v
	}

	lim, _ := localCluster(t, w, 2)
	lim.K = 2
	lres, err := lim.ExecutePlan(context.Background(), optimizeOn(t, lim, w.text))
	if err != nil {
		t.Fatal(err)
	}
	var limCalls int64
	for _, v := range lres.Stats.Calls {
		limCalls += v
	}
	if limCalls >= fullCalls {
		t.Fatalf("K=2 run recorded %d calls, full drain %d — early termination saved nothing",
			limCalls, fullCalls)
	}
}

// TestExecutePlanMidStreamBudgetTrip: a budget that trips while
// fragments are streaming cancels the sibling branches and surfaces
// as the typed *serve.BudgetError — over both transports — and the
// fleet does nowhere near a full drain's work.
func TestExecutePlanMidStreamBudgetTrip(t *testing.T) {
	w := worlds[0]
	full, _ := localCluster(t, w, 2)
	full.K = 0
	p := optimizeOn(t, full, w.text)
	fres, err := full.ExecutePlan(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	var fullCalls int64
	for _, v := range fres.Stats.Calls {
		fullCalls += v
	}

	clusters := []struct {
		name string
		mk   func(t *testing.T, w world, n int) (*Coordinator, []*Worker)
	}{
		{"local", localCluster},
		{"http", httpCluster},
	}
	for _, cl := range clusters {
		cl := cl
		t.Run(cl.name, func(t *testing.T) {
			co, _ := cl.mk(t, w, 2)
			callCap := int64(20) // trips mid-stream: the travel drain needs far more
			b := serve.NewBudget(0, callCap)
			ctx, cancel := b.Context(context.Background())
			defer cancel()
			res, err := co.ExecutePlan(ctx, optimizeOn(t, co, w.text))
			if res != nil {
				t.Fatal("tripped run still produced a result")
			}
			var be *serve.BudgetError
			if !errors.As(err, &be) || be.Reason != "calls" {
				t.Fatalf("err = %v, want *serve.BudgetError with calls reason", err)
			}
			// Concurrent branches each carry the remaining cap at their
			// dispatch, so the fleet can overshoot by a branch — but a
			// cancelled sibling must not run to completion.
			if got := b.Calls(); got >= fullCalls {
				t.Fatalf("fleet charged %d calls after the trip; full drain is %d — siblings were not cancelled",
					got, fullCalls)
			}
		})
	}
}

// TestExecutePlanBufferBound: with per-arc buffers squeezed to 2
// tuples, the dataflow still returns the byte-identical result, and
// the joins' excess gauge stays far below the travel world's
// intermediate-result cardinality (hundreds of tuples) — coordinator
// memory tracks the configured buffers, not what the fleet produces.
func TestExecutePlanBufferBound(t *testing.T) {
	w := worlds[0]
	co, _ := localCluster(t, w, 2)
	var peak atomic.Int64
	co.BufferSize = 2
	co.JoinExcessPeak = &peak
	p := optimizeOn(t, co, w.text)
	local := &exec.Runner{Registry: co.Registry, Cache: card.OneCall, K: 10}
	want, err := local.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.ExecutePlan(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	assertSameExecution(t, want, got)
	if peak.Load() > 64 {
		t.Fatalf("join excess peak = %d tuples buffered beyond the frontier — not bounded", peak.Load())
	}
}

// TestExecutePlanSettlesNoGoroutineLeak: the distributed dataflow's
// early exits — satisfied at K, a mid-stream budget trip, an external
// cancellation — leave no dangling node goroutines or fragment
// streams behind.
func TestExecutePlanSettlesNoGoroutineLeak(t *testing.T) {
	w := worlds[0]
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		co, _ := localCluster(t, w, 2)
		co.K = 2
		p := optimizeOn(t, co, w.text)
		if _, err := co.ExecutePlan(context.Background(), p); err != nil {
			t.Fatalf("run %d: early-K: %v", i, err)
		}

		b := serve.NewBudget(0, 10)
		bctx, bcancel := b.Context(context.Background())
		if _, err := co.ExecutePlan(bctx, p); !errors.Is(err, serve.ErrBudgetExceeded) {
			t.Fatalf("run %d: budget trip: %v", i, err)
		}
		bcancel()

		cctx, ccancel := context.WithCancel(context.Background())
		go func() { time.Sleep(time.Duration(i) * 200 * time.Microsecond); ccancel() }()
		if _, err := co.ExecutePlan(cctx, p); err != nil &&
			!errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: external cancel: %v", i, err)
		}
		ccancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle to baseline %d\n%s",
				before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package dist_test

import (
	"context"
	"reflect"
	"testing"

	"mdq/internal/card"
	"mdq/internal/cost"
	. "mdq/internal/dist"
	"mdq/internal/exec"
	"mdq/internal/opt"
	"mdq/internal/plan"
)

// optimizeOn runs a plain sequential optimization against a registry
// (the coordinator's), returning the plan distributed execution and
// the local reference both run.
func optimizeOn(t *testing.T, co *Coordinator, text string) *plan.Plan {
	t.Helper()
	o := &opt.Optimizer{
		Metric:       cost.ExecTime{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            10,
		ChooseMethod: co.Registry.MethodChooser(),
	}
	res, err := o.Optimize(resolve(t, text, mustSchema(t, co.Registry)))
	if err != nil {
		t.Fatal(err)
	}
	return res.Best
}

// assertSameExecution pins the byte-identical contract: head, row
// values and full tuple bindings must match the local reference.
func assertSameExecution(t *testing.T, want, got *exec.Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Head, got.Head) {
		t.Fatalf("head %v, local reference %v", got.Head, want.Head)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("rows diverge:\n distributed: %v\n local:       %v", got.Rows, want.Rows)
	}
	if !reflect.DeepEqual(want.Tuples, got.Tuples) {
		t.Fatalf("tuples diverge:\n distributed: %v\n local:       %v", got.Tuples, want.Tuples)
	}
}

// TestDistributedExecutionMatchesLocal is the tentpole differential:
// fragment execution across 2 and 3 LocalTransport workers returns
// tuple-identical results to a coordinator-local exec.Runner run, on
// all three simweb worlds.
func TestDistributedExecutionMatchesLocal(t *testing.T) {
	for _, w := range worlds {
		w := w
		t.Run(w.name, func(t *testing.T) {
			for _, n := range []int{2, 3} {
				co, _ := localCluster(t, w, n)
				p := optimizeOn(t, co, w.text)
				local := &exec.Runner{Registry: co.Registry, Cache: card.OneCall, K: 10}
				want, err := local.Run(context.Background(), p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := co.ExecutePlan(context.Background(), p)
				if err != nil {
					t.Fatalf("%d workers: %v", n, err)
				}
				assertSameExecution(t, want, got)
				if len(got.Rows) == 0 {
					t.Fatalf("%d workers: no rows produced", n)
				}
				if len(got.Stats.Calls) == 0 {
					t.Fatalf("%d workers: no worker-side call accounting", n)
				}
			}
		})
	}
}

// TestDistributedExecutionHTTP runs the same differential over real
// loopback HTTP: streamed tuple batches, frame decoding, accounting.
func TestDistributedExecutionHTTP(t *testing.T) {
	for _, w := range []world{worlds[0], worlds[2]} { // travel (join-rich), zipf (cheap)
		w := w
		t.Run(w.name, func(t *testing.T) {
			co, _ := httpCluster(t, w, 2)
			p := optimizeOn(t, co, w.text)
			local := &exec.Runner{Registry: co.Registry, Cache: card.OneCall, K: 10}
			want, err := local.Run(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := co.ExecutePlan(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			assertSameExecution(t, want, got)
		})
	}
}

// TestPartitionPlan pins the partitioning rule: fragments cover every
// atom exactly once, are contiguous chains of the plan DAG, only land
// on workers hosting all their services, and spread deterministically.
func TestPartitionPlan(t *testing.T) {
	w := worlds[0]
	co, _ := localCluster(t, w, 2)
	p := optimizeOn(t, co, w.text)

	hostAll := map[string]bool{}
	for _, svc := range co.Registry.Services() {
		hostAll[svc.Signature().Name] = true
	}

	frags, err := PartitionPlan(p, []map[string]bool{hostAll, hostAll})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, f := range frags {
		if len(f.Atoms) == 0 {
			t.Fatal("empty fragment")
		}
		if f.Worker < 0 || f.Worker > 1 {
			t.Fatalf("fragment assigned to worker %d", f.Worker)
		}
		for i, ai := range f.Atoms {
			if seen[ai] {
				t.Fatalf("atom %d in two fragments", ai)
			}
			seen[ai] = true
			if i > 0 {
				prev, cur := p.ServiceNode[f.Atoms[i-1]], p.ServiceNode[ai]
				if len(cur.In) != 1 || cur.In[0] != prev {
					t.Fatalf("fragment %v not a chain at atom %d", f.Atoms, ai)
				}
			}
		}
	}
	if len(seen) != len(p.ServiceNode) {
		t.Fatalf("fragments cover %d of %d atoms", len(seen), len(p.ServiceNode))
	}

	// Determinism: partitioning the same plan again yields the same
	// fragments and worker assignments.
	again, err := PartitionPlan(p, []map[string]bool{hostAll, hostAll})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(frags, again) {
		t.Fatalf("partition not deterministic: %v vs %v", frags, again)
	}

	// A service nobody hosts is an explicit error.
	if _, err := PartitionPlan(p, []map[string]bool{{}, {}}); err == nil {
		t.Fatal("partition with no hosting worker did not error")
	}

	// Hosting constraints route fragments: with one worker hosting
	// everything and one hosting nothing, all fragments land on the
	// capable worker.
	frags, err = PartitionPlan(p, []map[string]bool{{}, hostAll})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		if f.Worker != 1 {
			t.Fatalf("fragment %v landed on non-hosting worker %d", f.Atoms, f.Worker)
		}
	}
}

// TestExecuteFragmentDisabled: a worker with execution disabled
// refuses fragment requests instead of running them.
func TestExecuteFragmentDisabled(t *testing.T) {
	w := worlds[2]
	co, workers := localCluster(t, w, 2)
	for _, wk := range workers {
		wk.ExecuteDisabled = true
	}
	p := optimizeOn(t, co, w.text)
	if _, err := co.ExecutePlan(context.Background(), p); err == nil {
		t.Fatal("execution against disabled workers did not error")
	}
}

package dist

// Fault taxonomy and fault injection. The fleet lifecycle (membership,
// retry, failover — see membership.go and the retry loops in
// coordinator.go / execute.go) hinges on one classification: is a
// failure *transient* (the worker or the wire hiccupped; the same work
// retried on the same or another worker can still succeed) or
// *permanent* (the request itself is wrong, or the query's own budget
// tripped; retrying would repeat the failure or, worse, mask it)?
// TransientError is that classification made typed, and FaultTransport
// is the sanctioned seam for injecting deterministic transient faults
// around any Transport, so every failover path is reproducibly
// testable without real process kills.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mdq/internal/opt"
	"mdq/internal/service"
)

// TransientError marks a transport failure as retryable: connection
// refused or reset, a timeout, a dropped stream, a 5xx response — the
// classes of failure where the worker (or another worker) may well
// serve the identical request a moment later. Budget violations and
// query errors are never wrapped: retrying cannot fix a malformed
// query, and retrying past an exhausted budget would hide the trip.
// Detect with IsTransient (or errors.As).
type TransientError struct {
	// Err is the underlying transport failure.
	Err error
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("dist: transient: %v", e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// IsTransient reports whether err is (or wraps) a retryable transport
// failure — the coordinator's retry loops failover exactly on these
// and surface everything else unchanged.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// ErrNoLiveWorkers reports that a dispatch found every candidate
// worker marked down (or exhausted them all with transient failures):
// the fleet cannot serve the request until a worker recovers. Detect
// with errors.Is.
var ErrNoLiveWorkers = errors.New("dist: no live workers")

// transientUnless classifies a transport-layer failure: retryable,
// unless the caller's own context is what failed (an external cancel
// or an expired budget deadline must surface as itself — retrying a
// cancelled request is never right).
func transientUnless(ctx context.Context, err error) error {
	if err == nil || ctx.Err() != nil {
		return err
	}
	return &TransientError{Err: err}
}

// Retry defaults.
const (
	// DefaultMaxRetries is how many times a transiently-failed dispatch
	// is re-attempted when RetryPolicy.MaxRetries is unset.
	DefaultMaxRetries = 2
	// DefaultRetryBackoff is the first-retry backoff when
	// RetryPolicy.Backoff is unset.
	DefaultRetryBackoff = 10 * time.Millisecond
	// DefaultRetryMaxBackoff caps the exponential backoff when
	// RetryPolicy.MaxBackoff is unset.
	DefaultRetryMaxBackoff = 500 * time.Millisecond
)

// RetryPolicy bounds how the coordinator re-attempts transiently
// failed dispatches (search shards, fragment executions). The zero
// value means the defaults; MaxRetries < 0 disables retries entirely
// (a transient failure then surfaces on the first occurrence, which is
// what differential tests pin the taxonomy with).
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure
	// (0 means DefaultMaxRetries; negative means none).
	MaxRetries int
	// Backoff is the wait before the first retry, doubling per attempt
	// (0 means DefaultRetryBackoff).
	Backoff time.Duration
	// MaxBackoff caps the doubling (0 means DefaultRetryMaxBackoff).
	MaxBackoff time.Duration
}

func (r RetryPolicy) maxRetries() int {
	if r.MaxRetries < 0 {
		return 0
	}
	if r.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return r.MaxRetries
}

// wait blocks for attempt's backoff (exponential, capped), or returns
// early with the context's error.
func (r RetryPolicy) wait(ctx context.Context, attempt int) error {
	d := r.Backoff
	if d <= 0 {
		d = DefaultRetryBackoff
	}
	max := r.MaxBackoff
	if max <= 0 {
		max = DefaultRetryMaxBackoff
	}
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Fault-injection operation names, as FaultTransport scripts them —
// one per Transport method.
const (
	// OpSearch scripts Transport.Search.
	OpSearch = "search"
	// OpSync scripts Transport.Sync.
	OpSync = "sync"
	// OpGossip scripts Transport.Gossip.
	OpGossip = "gossip"
	// OpTemplates scripts Transport.ImportTemplates.
	OpTemplates = "templates"
	// OpServices scripts Transport.Services.
	OpServices = "services"
	// OpExecute scripts Transport.ExecuteFragment.
	OpExecute = "execute"
	// OpProbe scripts Transport.Probe.
	OpProbe = "probe"
)

// errInjectedKill distinguishes FaultTransport's own mid-stream abort
// from errors the wrapped sink produced.
var errInjectedKill = errors.New("dist: injected mid-stream kill")

// FaultTransport wraps any Transport with deterministic, scripted
// failure injection — the sanctioned seam for testing the fleet's
// failover paths. Faults are scripted by call counts, not randomness,
// so a failing test replays byte-identically. Four fault shapes cover
// the lifecycle:
//
//   - refuse-connection (Refuse): every call fails immediately with a
//     TransientError, like a killed process's port;
//   - fail-next (FailNext): the next n calls of one operation fail
//     transiently, then the worker "recovers" — a crash+restart, or a
//     load-balancer blip;
//   - flap (FlapEvery): every k-th call of an operation fails — a
//     worker that intermittently drops requests;
//   - kill-after-frames (KillExecuteAfter): a fragment execution
//     streams exactly n batch frames and then dies mid-stream — the
//     shape that exercises the coordinator's resume-cursor dedup.
//
// Stall (Stall) additionally blocks an operation until the caller's
// context expires, for deadline-interaction tests. All methods are
// safe for concurrent use. The zero fault script passes everything
// through unchanged.
type FaultTransport struct {
	// Inner is the wrapped transport.
	Inner Transport

	mu        sync.Mutex
	refuse    bool
	failNext  map[string]int
	flapEvery map[string]int
	stall     map[string]bool
	calls     map[string]int
	injected  int
	kills     int
	maxFrames int // most batch frames one execution delivered
	killAfter int // batch frames to pass before the injected kill; -1 = none
	killTimes int // executions still to kill; -1 = every execution
}

// NewFaultTransport wraps inner with an empty fault script.
func NewFaultTransport(inner Transport) *FaultTransport {
	return &FaultTransport{
		Inner:     inner,
		failNext:  map[string]int{},
		flapEvery: map[string]int{},
		stall:     map[string]bool{},
		calls:     map[string]int{},
		killAfter: -1,
	}
}

// Refuse turns whole-worker refusal on or off: while set, every
// operation fails immediately with a TransientError, like dialing a
// dead process.
func (f *FaultTransport) Refuse(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.refuse = on
}

// FailNext makes the next n calls of op fail with a TransientError
// before reaching the inner transport; the operation recovers
// afterwards.
func (f *FaultTransport) FailNext(op string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failNext[op] = n
}

// FlapEvery makes every k-th call of op (the k-th, 2k-th, …) fail with
// a TransientError; k <= 0 clears the flap.
func (f *FaultTransport) FlapEvery(op string, k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if k <= 0 {
		delete(f.flapEvery, op)
		return
	}
	f.flapEvery[op] = k
}

// Stall makes op block until the caller's context is done, then return
// the context's error (classified non-transient, exactly like a real
// deadline expiry mid-call).
func (f *FaultTransport) Stall(op string, on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stall[op] = on
}

// KillExecuteAfter scripts the mid-stream crash: the next `times`
// fragment executions that reach `frames` batch frames forward
// exactly that many to the caller's sink and then die with a
// TransientError (times < 0 kills every such execution; frames = 0
// dies on the first frame). An execution whose stream is shorter than
// the kill point completes normally and does not consume a kill. The
// inner execution is cancelled when the kill fires, so the worker
// side aborts too — as it would when a real peer vanishes.
func (f *FaultTransport) KillExecuteAfter(frames, times int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.killAfter = frames
	f.killTimes = times
}

// Calls returns how many times op was attempted through this
// transport (including injected failures).
func (f *FaultTransport) Calls(op string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// Injected returns how many transient failures the script injected
// (refusals, fail-nexts, flaps and kills combined).
func (f *FaultTransport) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Kills returns how many mid-stream execution kills fired.
func (f *FaultTransport) Kills() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.kills
}

// MaxFrames returns the largest number of batch frames any single
// fragment execution through this transport delivered — what a
// frame-boundary kill sweep iterates over.
func (f *FaultTransport) MaxFrames() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxFrames
}

// gate consumes one scripted call of op: it returns the injected
// transient error, blocks for a scripted stall, or admits the call.
func (f *FaultTransport) gate(ctx context.Context, op string) error {
	f.mu.Lock()
	f.calls[op]++
	n := f.calls[op]
	fail := f.refuse
	if !fail && f.failNext[op] > 0 {
		f.failNext[op]--
		fail = true
	}
	if !fail {
		if k := f.flapEvery[op]; k > 0 && n%k == 0 {
			fail = true
		}
	}
	stall := f.stall[op]
	if fail {
		f.injected++
	}
	f.mu.Unlock()
	if fail {
		return &TransientError{Err: fmt.Errorf("injected %s failure on %s (call %d)", op, f.Name(), n)}
	}
	if stall {
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

// Name implements Transport, keeping the inner worker's name so logs
// and errors still identify the real peer.
func (f *FaultTransport) Name() string { return f.Inner.Name() }

// Search implements Transport.
func (f *FaultTransport) Search(ctx context.Context, req SearchRequest) (*SearchResult, error) {
	if err := f.gate(ctx, OpSearch); err != nil {
		return nil, err
	}
	return f.Inner.Search(ctx, req)
}

// Sync implements Transport.
func (f *FaultTransport) Sync(ctx context.Context, id string, bound float64) (float64, error) {
	if err := f.gate(ctx, OpSync); err != nil {
		return 0, err
	}
	return f.Inner.Sync(ctx, id, bound)
}

// Gossip implements Transport.
func (f *FaultTransport) Gossip(ctx context.Context, bumps []service.EpochBump) error {
	if err := f.gate(ctx, OpGossip); err != nil {
		return err
	}
	return f.Inner.Gossip(ctx, bumps)
}

// ImportTemplates implements Transport.
func (f *FaultTransport) ImportTemplates(ctx context.Context, entries []opt.TemplateWireEntry) (int, error) {
	if err := f.gate(ctx, OpTemplates); err != nil {
		return 0, err
	}
	return f.Inner.ImportTemplates(ctx, entries)
}

// Services implements Transport.
func (f *FaultTransport) Services(ctx context.Context) ([]string, error) {
	if err := f.gate(ctx, OpServices); err != nil {
		return nil, err
	}
	return f.Inner.Services(ctx)
}

// Probe implements Transport.
func (f *FaultTransport) Probe(ctx context.Context) error {
	if err := f.gate(ctx, OpProbe); err != nil {
		return err
	}
	return f.Inner.Probe(ctx)
}

// ExecuteFragment implements Transport: the scripted kill forwards
// exactly killAfter batch frames, then cancels the inner execution and
// reports a TransientError — a worker dying mid-stream, as seen from
// the coordinator. Every execution (killed or not) records its frame
// count for MaxFrames.
func (f *FaultTransport) ExecuteFragment(ctx context.Context, req ExecuteRequest, sink func(batch []WireTuple) error) (*ExecuteResult, error) {
	if err := f.gate(ctx, OpExecute); err != nil {
		return nil, err
	}
	f.mu.Lock()
	kill := -1
	if f.killAfter >= 0 && f.killTimes != 0 {
		kill = f.killAfter
		if f.killTimes > 0 {
			f.killTimes--
		}
	}
	f.mu.Unlock()
	frames := 0
	defer func() {
		f.mu.Lock()
		if frames > f.maxFrames {
			f.maxFrames = frames
		}
		f.mu.Unlock()
	}()
	forward := sink
	if forward == nil {
		forward = func([]WireTuple) error { return nil }
	}
	if kill < 0 {
		return f.Inner.ExecuteFragment(ctx, req, func(batch []WireTuple) error {
			frames++
			return forward(batch)
		})
	}

	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	killed := false
	res, err := f.Inner.ExecuteFragment(ictx, req, func(batch []WireTuple) error {
		if frames >= kill {
			killed = true
			cancel()
			return errInjectedKill
		}
		frames++
		return forward(batch)
	})
	// The kill is detected by its own flag, not the returned error: the
	// inner executor is free to translate the sink's abort into its own
	// cancellation error on the way out.
	if killed {
		f.mu.Lock()
		f.kills++
		f.injected++
		f.mu.Unlock()
		return nil, &TransientError{Err: fmt.Errorf("injected kill after %d frames on %s", kill, f.Name())}
	}
	// The stream was shorter than the kill point: the kill never fired,
	// so restore the un-consumed budget and pass the outcome through.
	f.mu.Lock()
	if f.killTimes >= 0 {
		f.killTimes++
	}
	f.mu.Unlock()
	return res, err
}

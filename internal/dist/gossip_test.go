package dist_test

import (
	"context"
	"testing"
	"time"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/opt"
	"mdq/internal/service"
)

// driftReview raises the review service's response time on a
// registry by a factor within the revalidation ratio, through the
// copy-on-write snapshot (no local epoch bump: the test simulates a
// worker whose local statistics were synced out-of-band, with the
// coordinator's epoch gossip as the only invalidation signal).
func driftReview(t *testing.T, reg *service.Registry, factor float64) {
	t.Helper()
	svc, ok := reg.Lookup("review")
	if !ok {
		t.Fatal("review not registered")
	}
	sig := svc.Signature()
	st := sig.Statistics()
	st.ResponseTime = time.Duration(float64(st.ResponseTime) * factor)
	sig.SetStats(st)
}

// TestEpochGossipInvalidation is the satellite acceptance test: a
// worker holding a cached template must never serve a plan priced
// against pre-bump statistics once the coordinator gossips the
// epoch. After a statistics change on every node and one gossiped
// (service, epoch) bump, the next distributed optimization
// revalidates the skeleton and prices it exactly like a cache-less
// search under the fresh statistics.
func TestEpochGossipInvalidation(t *testing.T) {
	w := worlds[2] // zipf
	co, workers := localCluster(t, w, 2)
	q := resolve(t, w.text, mustSchema(t, co.Registry))
	ctx := context.Background()

	// Populate the worker caches and capture the pre-drift cost.
	r1, err := co.OptimizeTemplate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := co.OptimizeTemplate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.TemplateHit || r2.Revalidated {
		t.Fatalf("warm call hit=%v revalidated=%v, want fresh hit", r2.TemplateHit, r2.Revalidated)
	}

	// The world drifts: every node's local statistics move (as a
	// worker-side profile sync would), modestly enough that the cached
	// skeleton stays within the revalidation ratio.
	driftReview(t, co.Registry, 2.5)
	for _, wk := range workers {
		driftReview(t, wk.Registry(), 2.5)
	}

	// The coordinator's registry notices (epoch bump) and gossips the
	// bump to every worker cache.
	epoch := co.Registry.BumpEpoch("review")
	if err := co.Gossip(ctx, []service.EpochBump{{Service: "review", Epoch: epoch}}); err != nil {
		t.Fatal(err)
	}
	stale := 0
	for _, wk := range workers {
		for _, e := range wk.Cache().Entries() {
			if e.Kind == "template" && e.Stale {
				stale++
			}
		}
	}
	if stale == 0 {
		t.Fatal("gossip marked no template entry stale")
	}

	// Next optimization: served by revalidation, priced with the
	// fresh statistics — byte-identical to a cache-less search.
	r3, err := co.OptimizeTemplate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.TemplateHit || !r3.Revalidated {
		t.Fatalf("post-gossip call hit=%v revalidated=%v, want revalidated hit", r3.TemplateHit, r3.Revalidated)
	}
	ref := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: co.Registry.MethodChooser()}
	want, err := ref.Optimize(resolve(t, w.text, mustSchema(t, co.Registry)))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cost != want.Cost {
		t.Fatalf("post-gossip cost %g, cache-less reference %g — stale pricing served", r3.Cost, want.Cost)
	}
	if r3.Cost == r1.Cost {
		t.Fatal("cost unchanged across the statistics drift — pre-bump pricing served")
	}
	if r3.Best.Signature() != want.Best.Signature() {
		t.Fatalf("post-gossip plan %s, reference %s", r3.Best.Signature(), want.Best.Signature())
	}
	reval := uint64(0)
	for _, wk := range workers {
		reval += wk.Cache().Stats().Revalidations
	}
	if reval == 0 {
		t.Fatal("no worker cache recorded a revalidation")
	}
}

// TestGossipLoop: the pushed path — a statistics epoch bump on the
// coordinator's registry reaches worker caches asynchronously through
// the epoch feed, with no explicit Gossip call.
func TestGossipLoop(t *testing.T) {
	w := worlds[2]
	co, workers := localCluster(t, w, 2)
	q := resolve(t, w.text, mustSchema(t, co.Registry))
	ctx := context.Background()

	if _, err := co.OptimizeTemplate(ctx, q); err != nil {
		t.Fatal(err)
	}
	stop := co.GossipLoop(nil)
	defer stop()

	co.Registry.BumpEpoch("catalog")
	deadline := time.Now().Add(5 * time.Second)
	for {
		stale := 0
		for _, wk := range workers {
			for _, e := range wk.Cache().Entries() {
				if e.Stale {
					stale++
				}
			}
		}
		if stale > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("gossip loop delivered no invalidation within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package dist_test

import (
	"context"
	"testing"
	"time"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/opt"
	"mdq/internal/service"
)

// driftReview raises the review service's response time on a
// registry by a factor within the revalidation ratio, through the
// copy-on-write snapshot (no local epoch bump: the test simulates a
// worker whose local statistics were synced out-of-band, with the
// coordinator's epoch gossip as the only invalidation signal).
func driftReview(t *testing.T, reg *service.Registry, factor float64) {
	t.Helper()
	svc, ok := reg.Lookup("review")
	if !ok {
		t.Fatal("review not registered")
	}
	sig := svc.Signature()
	st := sig.Statistics()
	st.ResponseTime = time.Duration(float64(st.ResponseTime) * factor)
	sig.SetStats(st)
}

// TestEpochGossipInvalidation is the satellite acceptance test: a
// worker holding a cached template must never serve a plan priced
// against pre-bump statistics once the coordinator gossips the
// epoch. After a statistics change on every node and one gossiped
// (service, epoch) bump, the next distributed optimization
// revalidates the skeleton and prices it exactly like a cache-less
// search under the fresh statistics.
func TestEpochGossipInvalidation(t *testing.T) {
	w := worlds[2] // zipf
	co, workers := localCluster(t, w, 2)
	q := resolve(t, w.text, mustSchema(t, co.Registry))
	ctx := context.Background()

	// Populate the worker caches and capture the pre-drift cost.
	r1, err := co.OptimizeTemplate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := co.OptimizeTemplate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.TemplateHit || r2.Revalidated {
		t.Fatalf("warm call hit=%v revalidated=%v, want fresh hit", r2.TemplateHit, r2.Revalidated)
	}

	// The world drifts: every node's local statistics move (as a
	// worker-side profile sync would), modestly enough that the cached
	// skeleton stays within the revalidation ratio.
	driftReview(t, co.Registry, 2.5)
	for _, wk := range workers {
		driftReview(t, wk.Registry(), 2.5)
	}

	// The coordinator's registry notices (epoch bump) and gossips the
	// bump to every worker cache.
	epoch := co.Registry.BumpEpoch("review")
	if err := co.Gossip(ctx, []service.EpochBump{{Service: "review", Epoch: epoch}}); err != nil {
		t.Fatal(err)
	}
	stale := 0
	for _, wk := range workers {
		for _, e := range wk.Cache().Entries() {
			if e.Kind == "template" && e.Stale {
				stale++
			}
		}
	}
	if stale == 0 {
		t.Fatal("gossip marked no template entry stale")
	}

	// Next optimization: served by revalidation, priced with the
	// fresh statistics — byte-identical to a cache-less search.
	r3, err := co.OptimizeTemplate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.TemplateHit || !r3.Revalidated {
		t.Fatalf("post-gossip call hit=%v revalidated=%v, want revalidated hit", r3.TemplateHit, r3.Revalidated)
	}
	ref := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: co.Registry.MethodChooser()}
	want, err := ref.Optimize(resolve(t, w.text, mustSchema(t, co.Registry)))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cost != want.Cost {
		t.Fatalf("post-gossip cost %g, cache-less reference %g — stale pricing served", r3.Cost, want.Cost)
	}
	if r3.Cost == r1.Cost {
		t.Fatal("cost unchanged across the statistics drift — pre-bump pricing served")
	}
	if r3.Best.Signature() != want.Best.Signature() {
		t.Fatalf("post-gossip plan %s, reference %s", r3.Best.Signature(), want.Best.Signature())
	}
	reval := uint64(0)
	for _, wk := range workers {
		reval += wk.Cache().Stats().Revalidations
	}
	if reval == 0 {
		t.Fatal("no worker cache recorded a revalidation")
	}
}

// TestReverseEpochGossip is the worker-originated round trip: an
// executing worker's feedback refresh bumps its own epochs; the
// fragment result piggybacks the bumps to the coordinator, which
// re-bumps its registry (invalidating its local template cache) and —
// through the running gossip loop — fans the invalidation out to the
// sibling worker. Every template cache in the fleet converges.
func TestReverseEpochGossip(t *testing.T) {
	w := worlds[2] // zipf: catalog → review, one serial fragment on worker 0
	co, workers := localCluster(t, w, 2)
	q := resolve(t, w.text, mustSchema(t, co.Registry))
	ctx := context.Background()

	// Coordinator-side template cache, wired to its registry's epochs
	// like any mdqserve cache.
	pc := opt.NewPlanCache(16)
	co.Registry.SubscribeEpochs(pc, pc.InvalidateService)
	local := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: co.Registry.MethodChooser(), Cache: pc,
		CacheSalt: co.Registry.CacheSalt(), Epochs: co.Registry}
	res, err := local.OptimizeTemplate(q)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both workers so the sibling demonstrably holds an entry.
	if n, werr := co.WarmWorkers(ctx, pc); werr != nil || n == 0 {
		t.Fatalf("warmup shipped %d entries (%v)", n, werr)
	}

	staleTemplates := func(c *opt.PlanCache) int {
		n := 0
		for _, e := range c.Entries() {
			if e.Kind == "template" && e.Stale {
				n++
			}
		}
		return n
	}
	if staleTemplates(pc) != 0 {
		t.Fatal("coordinator cache stale before any refresh")
	}

	stop := co.GossipLoop(nil)
	defer stop()

	// Worker 0 executes under a zero-threshold feedback policy; its
	// registered review profile is shifted first (no epoch bump, as a
	// worker-side out-of-band sync would), so the observed traffic
	// must contradict the profile and force a refresh.
	workers[0].Registry().ObserveAll()
	workers[0].Feedback = &service.FeedbackPolicy{}
	driftReview(t, workers[0].Registry(), 2.0)
	if _, err := co.ExecutePlan(ctx, res.Best); err != nil {
		t.Fatal(err)
	}

	// The executing worker refreshed locally…
	if len(workers[0].Registry().Epochs()) == 0 {
		t.Fatal("execution feedback produced no worker-local epoch bump")
	}
	// …the coordinator absorbed the piggybacked bumps into its own
	// epochs, invalidating its template cache…
	if len(co.Registry.Epochs()) == 0 {
		t.Fatal("coordinator absorbed no worker-originated bumps")
	}
	if staleTemplates(pc) == 0 {
		t.Fatal("worker-originated bump did not invalidate the coordinator's template cache")
	}
	// …and the gossip loop fans the invalidation out to the sibling.
	deadline := time.Now().Add(5 * time.Second)
	for staleTemplates(workers[1].Cache()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sibling worker's template cache did not converge within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGossipLoop: the pushed path — a statistics epoch bump on the
// coordinator's registry reaches worker caches asynchronously through
// the epoch feed, with no explicit Gossip call.
func TestGossipLoop(t *testing.T) {
	w := worlds[2]
	co, workers := localCluster(t, w, 2)
	q := resolve(t, w.text, mustSchema(t, co.Registry))
	ctx := context.Background()

	if _, err := co.OptimizeTemplate(ctx, q); err != nil {
		t.Fatal(err)
	}
	stop := co.GossipLoop(nil)
	defer stop()

	co.Registry.BumpEpoch("catalog")
	deadline := time.Now().Add(5 * time.Second)
	for {
		stale := 0
		for _, wk := range workers {
			for _, e := range wk.Cache().Entries() {
				if e.Stale {
					stale++
				}
			}
		}
		if stale > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("gossip loop delivered no invalidation within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/exec"
	"mdq/internal/opt"
	"mdq/internal/serve"
	"mdq/internal/service"
	"mdq/internal/trace"
)

// Worker executes shard searches against a local service registry
// and plan cache — the server side of the subsystem. One worker
// serves many concurrent searches; each search registers its
// incumbent bound under the request ID so mid-flight Sync calls can
// merge bounds both ways.
//
// The worker's cache is wired to its own registry's epoch bumps at
// construction (local statistics refreshes invalidate locally, as in
// a single-process server); Gossip applies remote bumps through the
// identical path, so cross-process coherence reuses the cache's
// stale-marking and revalidation machinery unchanged.
type Worker struct {
	reg   *service.Registry
	cache *opt.PlanCache
	// Parallelism is the in-process search parallelism per shard
	// (opt.Optimizer.Parallelism; 0 means one worker per CPU).
	Parallelism int
	// Feedback, when non-nil, is the worker-local feedback policy
	// fragment executions run under: traffic that flowed through this
	// worker's observed services is folded back into its profiles
	// after each fragment, bumping worker-local statistics epochs.
	// Those bumps are what the reverse gossip path reports upstream
	// (see DrainBumps).
	Feedback *service.FeedbackPolicy
	// ExecuteDisabled refuses fragment-execution requests — the
	// server side of `mdqworker -execute=false`, for deployments that
	// shard only the search.
	ExecuteDisabled bool
	// BufferSize is the per-arc channel capacity of fragment
	// executions (exec.Runner.BufferSize; 0 means the executor
	// default) — the worker half of the streaming runtime's
	// memory/latency dial.
	BufferSize int
	// ResultCache, when set, is the worker's shared service-call
	// result store (exec.Runner.ResultCache), consulted by every
	// fragment execution so identical invocations across fragments —
	// and across the queries that dispatched them — reach each
	// service once. Point it at a rescache.Store bound to the
	// worker's registry so local feedback refreshes and incoming
	// Gossip epoch bumps both evict eagerly (`mdqworker -rescache`).
	ResultCache exec.Cache

	// feed collects the worker registry's own epoch bumps (local
	// statistics refreshes, e.g. from execution feedback) for
	// reporting back to the coordinator; incoming Gossip never lands
	// here, so reverse gossip cannot echo.
	feed *service.EpochFeed

	mu     sync.Mutex
	active map[string]*activeSearch
}

// activeSearch is one running search's shared incumbent bound,
// refcounted because failover can land two shards of the same search
// on one worker: both must sync through one bound, and the entry must
// survive until the last shard finishes.
type activeSearch struct {
	bound *opt.Bound
	refs  int
}

// NewWorker builds a worker over a registry and plan cache. The
// cache may be nil (searches then run uncached and gossip is a
// no-op); when present it is subscribed to the registry's epoch
// bumps.
func NewWorker(reg *service.Registry, cache *opt.PlanCache) *Worker {
	if cache != nil {
		reg.SubscribeEpochs(cache, cache.InvalidateService)
	}
	return &Worker{
		reg:    reg,
		cache:  cache,
		feed:   reg.NewEpochFeed(),
		active: map[string]*activeSearch{},
	}
}

// DrainBumps returns the coalesced worker-local statistics-epoch
// bumps accumulated since the last drain — the payload of the
// reverse gossip path. A worker's own refreshes (execution feedback,
// manual re-profiling) land here; bumps received via Gossip do not,
// since Gossip only touches the plan cache. Fragment-execution
// results piggyback these so the coordinator can re-bump its own
// epochs and fan the invalidation out to the rest of the fleet.
func (w *Worker) DrainBumps() []service.EpochBump {
	return w.feed.Next()
}

// Registry exposes the worker's local registry.
func (w *Worker) Registry() *service.Registry { return w.reg }

// Cache exposes the worker's plan cache (nil when uncached).
func (w *Worker) Cache() *opt.PlanCache { return w.cache }

// Search runs one shard search: parse and resolve the query against
// the local registry, seed the incumbent with the coordinator's
// bound, and run the ordinary optimizer over the shard. An empty
// shard is not an error — it returns Found=false.
func (w *Worker) Search(ctx context.Context, req SearchRequest) (*SearchResult, error) {
	metric, mode, k, err := searchKnobs(req)
	if err != nil {
		return nil, err
	}
	q, err := cq.Parse(req.Query)
	if err != nil {
		return nil, fmt.Errorf("dist: parsing shipped query: %w", err)
	}
	sch, err := w.reg.Schema()
	if err != nil {
		return nil, err
	}
	if err := q.Resolve(sch); err != nil {
		return nil, fmt.Errorf("dist: resolving shipped query: %w", err)
	}

	bound := opt.NewBound()
	if req.ID != "" {
		// Two shards of one search can run here at once (failover moves
		// a dead worker's shard to a live one): share one bound per
		// search ID so their syncs min-merge, and drop the entry only
		// when the last shard finishes.
		w.mu.Lock()
		if as, ok := w.active[req.ID]; ok {
			bound = as.bound
			as.refs++
		} else {
			w.active[req.ID] = &activeSearch{bound: bound, refs: 1}
		}
		w.mu.Unlock()
		defer func() {
			w.mu.Lock()
			if as, ok := w.active[req.ID]; ok {
				as.refs--
				if as.refs <= 0 {
					delete(w.active, req.ID)
				}
			}
			w.mu.Unlock()
		}()
	}
	if req.Bound > 0 {
		bound.Offer(req.Bound)
	}

	o := &opt.Optimizer{
		Metric:          metric,
		Estimator:       card.Config{Mode: mode},
		K:               k,
		ChooseMethod:    w.reg.MethodChooser(),
		Parallelism:     w.Parallelism,
		Cache:           w.cache,
		CacheSalt:       w.reg.CacheSalt(),
		Epochs:          w.reg,
		RevalidateRatio: req.RevalidateRatio,
		Shard:           opt.Shard{Index: req.ShardIndex, Count: req.ShardCount},
		Bound:           bound,
	}
	// A traced search records into a worker-local trace seeded with
	// the shipped ID. The local root has parent 0 — never a
	// coordinator-side span ID, which could collide with worker-local
	// IDs (both sequences start at 1) and corrupt the splice remap —
	// so Splice reparents it under the dispatching span.
	var wtr *trace.Trace
	var rootSp *trace.Span
	if req.TraceID != "" {
		wtr = trace.New(req.TraceID)
		rootSp = wtr.Root("worker.search")
		rootSp.Set("shard", strconv.Itoa(req.ShardIndex))
		o.Span = rootSp
	}
	var res *opt.Result
	if req.Template {
		res, err = o.OptimizeTemplate(q)
	} else {
		res, err = o.Optimize(q)
	}
	rootSp.End()
	if errors.Is(err, opt.ErrNoPlanInShard) {
		return &SearchResult{Found: false, Bound: toWireBound(bound.Load()), Spans: wtr.Spans()}, nil
	}
	if err != nil {
		return nil, err
	}
	out := &SearchResult{
		Found:       true,
		Cost:        res.Cost,
		Feasible:    res.Feasible,
		Signature:   res.Best.Signature(),
		Topology:    res.Best.Topology.Clone(),
		Stats:       res.Stats,
		Cached:      res.Cached,
		TemplateHit: res.TemplateHit,
		Revalidated: res.Revalidated,
		Bound:       toWireBound(bound.Load()),
		Spans:       wtr.Spans(),
	}
	for _, p := range res.Best.Assignment {
		out.Assignment = append(out.Assignment, p.String())
	}
	return out, nil
}

// searchKnobs resolves the named metric, cache mode and k.
func searchKnobs(req SearchRequest) (cost.Metric, card.CacheMode, int, error) {
	name := req.Metric
	if name == "" {
		name = "etm"
	}
	metric, ok := cost.ByName(name)
	if !ok {
		return nil, 0, 0, fmt.Errorf("dist: unknown metric %q", req.Metric)
	}
	mode, ok := card.ModeByName(req.CacheMode)
	if !ok {
		return nil, 0, 0, fmt.Errorf("dist: unknown cache mode %q", req.CacheMode)
	}
	return metric, mode, req.K, nil
}

// Sync merges an offered bound into the named search's incumbent and
// returns the worker's current bound for it (0 when the search is
// unknown — finished, not started, or a stale ID; the caller learns
// nothing from it). Both directions are monotone, so syncs commute.
func (w *Worker) Sync(id string, bound float64) float64 {
	w.mu.Lock()
	as, ok := w.active[id]
	w.mu.Unlock()
	if !ok {
		return 0
	}
	if bound > 0 {
		as.bound.Offer(bound)
	}
	return toWireBound(as.bound.Load())
}

// Gossip applies remote statistics-epoch bumps to the worker's plan
// cache — exact entries touching a bumped service are dropped,
// template entries marked stale for revalidation, the identical
// machinery a local epoch bump drives — and to the shared result
// cache, where every entry of a bumped service is dropped outright
// (remote epoch numbers say nothing about local stamps, so nothing
// survivable can be distinguished).
func (w *Worker) Gossip(bumps []service.EpochBump) {
	dropper, _ := w.ResultCache.(interface{ DropService(string) })
	for _, b := range bumps {
		w.cache.InvalidateService(b.Service, b.Epoch)
		if dropper != nil {
			dropper.DropService(b.Service)
		}
	}
}

// ImportTemplates installs serialized template entries into the
// worker's cache; entries whose distribution fingerprints do not
// match the worker's local statistics enter stale and revalidate on
// first use.
func (w *Worker) ImportTemplates(entries []opt.TemplateWireEntry) int {
	if w.cache == nil {
		return 0
	}
	return w.cache.ImportTemplates(entries, w.reg)
}

// ExportTemplates snapshots the worker's template entries in wire
// form.
func (w *Worker) ExportTemplates() []opt.TemplateWireEntry {
	return w.cache.ExportTemplates()
}

// HealthResponse is what GET /dist/health returns — deliberately
// tiny: the probe's job is liveness, and a worker buried in work must
// still answer it cheaply.
type HealthResponse struct {
	// Status is "ok" whenever the handler answers at all.
	Status string `json:"status"`
	// Executing reports whether fragment execution is enabled.
	Executing bool `json:"executing"`
	// ActiveSearches counts the searches currently holding an
	// incumbent bound here.
	ActiveSearches int `json:"active_searches"`
}

// apiError is the JSON error envelope of every worker endpoint.
type apiError struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
	// BudgetExceeded marks the error as a query-budget violation so
	// HTTP clients can map the envelope back to the typed
	// serve.ErrBudgetExceeded; BudgetReason and BudgetLimit carry the
	// violated dimension for the reconstruction.
	BudgetExceeded bool   `json:"budget_exceeded,omitempty"`
	BudgetReason   string `json:"budget_reason,omitempty"`
	BudgetLimit    string `json:"budget_limit,omitempty"`
}

func writeError(rw http.ResponseWriter, status int, format string, args ...any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(apiError{Error: fmt.Sprintf(format, args...), Status: status})
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(v)
}

// Handler exposes the worker protocol over HTTP:
//
//	POST /dist/search    SearchRequest → SearchResult
//	POST /dist/sync      SyncRequest → SyncResponse
//	POST /dist/gossip    GossipRequest → ImportResponse (bumps applied)
//	POST /dist/templates []opt.TemplateWireEntry → ImportResponse
//	GET  /dist/templates → []opt.TemplateWireEntry
//	GET  /dist/info      → worker summary (services, epochs, cache)
//	GET  /dist/health    → HealthResponse (the membership probe target)
//
// Mount it next to httpwrap.ServeRegistry to serve both the services
// and the optimization protocol from one listener (cmd/mdqworker).
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/dist/search", func(rw http.ResponseWriter, r *http.Request) {
		var req SearchRequest
		if !decodePost(rw, r, &req) {
			return
		}
		res, err := w.Search(r.Context(), req)
		if err != nil {
			writeError(rw, http.StatusUnprocessableEntity, "search: %v", err)
			return
		}
		writeJSON(rw, res)
	})
	mux.HandleFunc("/dist/sync", func(rw http.ResponseWriter, r *http.Request) {
		var req SyncRequest
		if !decodePost(rw, r, &req) {
			return
		}
		writeJSON(rw, SyncResponse{Bound: w.Sync(req.ID, req.Bound)})
	})
	mux.HandleFunc("/dist/gossip", func(rw http.ResponseWriter, r *http.Request) {
		var req GossipRequest
		if !decodePost(rw, r, &req) {
			return
		}
		w.Gossip(req.Bumps)
		writeJSON(rw, ImportResponse{Imported: len(req.Bumps)})
	})
	mux.HandleFunc("/dist/templates", func(rw http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			entries := w.ExportTemplates()
			if entries == nil {
				entries = []opt.TemplateWireEntry{}
			}
			writeJSON(rw, entries)
		case http.MethodPost:
			var entries []opt.TemplateWireEntry
			if err := json.NewDecoder(r.Body).Decode(&entries); err != nil {
				writeError(rw, http.StatusBadRequest, "decoding entries: %v", err)
				return
			}
			writeJSON(rw, ImportResponse{Imported: w.ImportTemplates(entries)})
		default:
			writeError(rw, http.StatusMethodNotAllowed, "GET or POST required")
		}
	})
	mux.HandleFunc("/dist/execute", func(rw http.ResponseWriter, r *http.Request) {
		var req ExecuteRequest
		if !decodePost(rw, r, &req) {
			return
		}
		if w.ExecuteDisabled {
			writeError(rw, http.StatusForbidden, "fragment execution is disabled on this worker")
			return
		}
		rw.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(rw)
		flusher, _ := rw.(http.Flusher)
		streamed := false
		seq := 0
		res, err := w.ExecuteFragment(r.Context(), req, func(batch []WireTuple) error {
			streamed = true
			fr := ExecuteFrame{Batch: batch, Seq: seq}
			seq++
			if err := enc.Encode(fr); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
		if err != nil {
			budget := errors.Is(err, serve.ErrBudgetExceeded)
			var reason, limit string
			var be *serve.BudgetError
			if errors.As(err, &be) {
				reason, limit = be.Reason, be.Limit
			}
			if !streamed {
				status := http.StatusUnprocessableEntity
				if budget {
					status = http.StatusGatewayTimeout
				}
				rw.Header().Set("Content-Type", "application/json")
				rw.WriteHeader(status)
				json.NewEncoder(rw).Encode(apiError{Error: fmt.Sprintf("execute: %v", err), Status: status,
					BudgetExceeded: budget, BudgetReason: reason, BudgetLimit: limit})
				return
			}
			// The stream is already committed (200 + batches on the
			// wire); the error travels as a frame instead.
			enc.Encode(ExecuteFrame{Error: err.Error(), BudgetExceeded: budget, BudgetReason: reason, BudgetLimit: limit})
			return
		}
		enc.Encode(ExecuteFrame{Done: res})
	})
	mux.HandleFunc("/dist/health", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		searches := len(w.active)
		w.mu.Unlock()
		writeJSON(rw, HealthResponse{
			Status:         "ok",
			Executing:      !w.ExecuteDisabled,
			ActiveSearches: searches,
		})
	})
	mux.HandleFunc("/dist/info", func(rw http.ResponseWriter, r *http.Request) {
		type info struct {
			Services []string          `json:"services"`
			Epochs   map[string]uint64 `json:"epochs"`
			Cache    opt.CacheStats    `json:"cache"`
		}
		var names []string
		for _, svc := range w.reg.Services() {
			names = append(names, svc.Signature().Name)
		}
		writeJSON(rw, info{Services: names, Epochs: w.reg.Epochs(), Cache: w.cache.Stats()})
	})
	return mux
}

// decodePost enforces POST + JSON body; it reports success.
func decodePost(rw http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(rw, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

package dist

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/fetch"
	"mdq/internal/opt"
	"mdq/internal/plan"
	"mdq/internal/service"
	"mdq/internal/trace"
)

// DefaultSyncInterval is the bound-sync period when
// Coordinator.SyncInterval is unset: how often the coordinator
// exchanges incumbent bounds with every searching worker. Shorter
// intervals propagate pruning faster at the price of more round
// trips; syncing is pure optimization, so even a very slow interval
// only wastes search effort, never correctness.
const DefaultSyncInterval = 25 * time.Millisecond

// Coordinator fans a query's phase-1 assignment space out over
// workers (one congruence-class shard each), runs the bound-sync loop
// while they search, and merges the per-shard winners into the final
// plan with the optimizer's deterministic (feasible, cost,
// plan-signature) order. It also forwards the local registry's
// statistics-epoch bumps to every worker (Gossip / GossipLoop) and
// warms worker caches with serialized template entries (WarmWorkers).
type Coordinator struct {
	// Registry is the coordinator's local service view: winning
	// skeletons are rebuilt and priced against it, and its epoch
	// bumps are what gossip forwards.
	Registry *service.Registry
	// Workers are the transports to fan out over, one shard each.
	Workers []Transport
	// Metric is the optimization objective (nil means execution
	// time).
	Metric cost.Metric
	// Mode is the logical caching level assumed by the estimator.
	Mode card.CacheMode
	// K is the number of answers optimized for.
	K int
	// RevalidateRatio is passed through to worker template caches (0
	// means the optimizer default).
	RevalidateRatio float64
	// SyncInterval is the bound-sync period (0 means
	// DefaultSyncInterval).
	SyncInterval time.Duration
	// Hosts, when non-nil, is the per-worker service hosting
	// ExecutePlan partitions fragments by, index-aligned with
	// Workers. Leave nil to discover it via Transport.Services on
	// every execution; long-lived deployments with a fixed fleet
	// should DiscoverHosts once and reuse the result, saving one
	// round-trip per worker per execution.
	Hosts []map[string]bool
	// BufferSize is the per-arc channel capacity of ExecutePlan's
	// coordinator-side dataflow (0 means exec.DefaultBufferSize): each
	// inter-fragment stream buffers at most this many decoded tuples
	// between a worker's frame stream and the join consuming it, which
	// is what bounds coordinator memory by buffer size instead of
	// intermediate-result cardinality.
	BufferSize int
	// JoinExcessPeak, when non-nil, is raised to the largest number of
	// tuples any coordinator-side streaming join buffered beyond its
	// still-needed frontier (see exec.StreamJoin). Test
	// instrumentation for the bounded-memory contract.
	JoinExcessPeak *atomic.Int64
	// Membership, when non-nil, is the fleet health view dispatch
	// consults: workers marked down are skipped (search shards and
	// fragments fail over to live candidates), and every RPC outcome
	// the coordinator sees feeds back in as passive health evidence.
	// Nil means every worker is presumed alive — the single-process
	// and test default.
	Membership *Membership
	// Retry bounds how transiently failed dispatches (search shards,
	// fragment executions) are re-attempted; the zero value means the
	// package defaults, MaxRetries < 0 disables retries.
	Retry RetryPolicy
	// OnRetry, when non-nil, is called once per re-attempt with the
	// operation (an Op* constant) and the failed worker's name — the
	// serving layer's retry-counter hook.
	OnRetry func(op, worker string)
	// BatchSize overrides the tuple batch size of fragment result
	// streams (ExecuteRequest.BatchSize; 0 means DefaultExecuteBatch).
	// Smaller batches mean more frame boundaries — chiefly a dial for
	// the frame-boundary failover sweeps in tests.
	BatchSize int
}

// alive reports whether worker i may be dispatched to (no membership
// view means yes).
func (c *Coordinator) alive(i int) bool {
	return c.Membership == nil || c.Membership.Alive(i)
}

// reportOutcome feeds one RPC outcome into the membership view.
// Only transport-level evidence moves the state machine: a success
// resurrects, a transient failure counts against the worker, and a
// permanent error (bad query, tripped budget) says nothing about the
// worker's health.
func (c *Coordinator) reportOutcome(i int, err error) {
	if c.Membership == nil {
		return
	}
	switch {
	case err == nil:
		c.Membership.ReportSuccess(i)
	case IsTransient(err):
		c.Membership.ReportFailure(i, err)
	}
}

// noteRetry reports one re-attempt to the OnRetry hook.
func (c *Coordinator) noteRetry(op string, worker int) {
	if c.OnRetry != nil {
		c.OnRetry(op, c.Workers[worker].Name())
	}
}

// searchSeq and processToken make search IDs globally unique: workers
// key their active incumbent bounds by ID, and one worker typically
// serves many coordinators (mdqserve builds one per request, and
// several coordinator processes may share a fleet). A per-instance
// counter would hand every request the same "search-1", letting
// concurrent searches min-merge each other's bounds — which prunes
// against a bound from a different query and silently corrupts
// results.
var searchSeq atomic.Uint64

var processToken = func() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err)
	}
	return hex.EncodeToString(b[:])
}()

// nextID returns a globally unique search ID.
func (c *Coordinator) nextID() string {
	return fmt.Sprintf("s%s-%d", processToken, searchSeq.Add(1))
}

func (c *Coordinator) metric() cost.Metric {
	if c.Metric == nil {
		return cost.ExecTime{}
	}
	return c.Metric
}

func (c *Coordinator) syncInterval() time.Duration {
	if c.SyncInterval <= 0 {
		return DefaultSyncInterval
	}
	return c.SyncInterval
}

// Optimize distributes one full search and returns the merged
// result. The query must be resolved (against the coordinator's
// registry). The returned plan is identical to what a sequential
// in-process search would return, provided the workers'
// registries agree with the coordinator's on services and statistics.
func (c *Coordinator) Optimize(ctx context.Context, q *cq.Query) (*opt.Result, error) {
	return c.optimize(ctx, q, false)
}

// OptimizeTemplate distributes a search through the workers'
// template-level plan caches: each worker serves its shard from a
// re-costed cached skeleton when one is within the revalidation
// ratio, searching only on misses or divergence — many bindings, one
// distributed search.
func (c *Coordinator) OptimizeTemplate(ctx context.Context, q *cq.Query) (*opt.Result, error) {
	return c.optimize(ctx, q, true)
}

// optimize is the shared fan-out / sync / merge path.
func (c *Coordinator) optimize(ctx context.Context, q *cq.Query, template bool) (*opt.Result, error) {
	if len(c.Workers) == 0 {
		return nil, errors.New("dist: coordinator has no workers")
	}
	for _, a := range q.Atoms {
		if a.Sig == nil {
			return nil, fmt.Errorf("dist: query %s is not resolved", q.Name)
		}
	}
	n := len(c.Workers)
	id := c.nextID()
	base := SearchRequest{
		ID:              id,
		Query:           q.String(),
		Metric:          c.metric().Name(),
		CacheMode:       c.Mode.String(),
		K:               c.K,
		ShardCount:      n,
		Template:        template,
		RevalidateRatio: c.RevalidateRatio,
	}

	searchCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*SearchResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range c.Workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := base
			req.ShardIndex = i
			results[i], errs[i] = c.searchShard(searchCtx, req)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	c.syncLoop(searchCtx, id, done)

	select {
	case <-ctx.Done():
		cancel()
		<-done
		return nil, ctx.Err()
	case <-done:
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	msp := trace.From(ctx).Child("dist.merge")
	res, err := c.merge(q, results)
	if msp != nil {
		msp.Set("shards", strconv.Itoa(n))
		msp.End()
	}
	return res, err
}

// searchShard runs one shard search with failover. The shard's home
// worker is its index; each transient failure rotates it to the next
// live worker — the shard travels whole inside the request, and
// template cache keys are shard-blind, so the re-run is warm wherever
// it lands and returns the identical shard result. Permanent errors
// surface immediately; a fleet with every worker down fails with
// ErrNoLiveWorkers.
func (c *Coordinator) searchShard(ctx context.Context, req SearchRequest) (*SearchResult, error) {
	n := len(c.Workers)
	qsp := trace.From(ctx)
	var lastErr error
	for attempt := 0; ; attempt++ {
		target := -1
		for off := 0; off < n; off++ {
			if w := (req.ShardIndex + attempt + off) % n; c.alive(w) {
				target = w
				break
			}
		}
		if target < 0 {
			if lastErr != nil {
				return nil, fmt.Errorf("dist: search shard %d: %w (last failure: %v)", req.ShardIndex, ErrNoLiveWorkers, lastErr)
			}
			return nil, fmt.Errorf("dist: search shard %d: %w", req.ShardIndex, ErrNoLiveWorkers)
		}
		// One dispatch span per attempt; the successful one carries the
		// worker's spliced search spans.
		dsp := qsp.Child("dist.search.dispatch")
		dsp.Set("worker", c.Workers[target].Name())
		dsp.Set("shard", strconv.Itoa(req.ShardIndex))
		dsp.Set("attempt", strconv.Itoa(attempt))
		req.TraceID, req.TraceSpan = dsp.TraceID(), dsp.SpanID()
		res, err := c.Workers[target].Search(ctx, req)
		c.reportOutcome(target, err)
		if err == nil {
			dsp.Splice(res.Spans)
			dsp.End()
			return res, nil
		}
		dsp.Set("error", err.Error())
		dsp.End()
		if !IsTransient(err) || ctx.Err() != nil || attempt >= c.Retry.maxRetries() {
			return nil, fmt.Errorf("dist: worker %s: %w", c.Workers[target].Name(), err)
		}
		lastErr = err
		c.noteRetry(OpSearch, target)
		if werr := c.Retry.wait(ctx, attempt); werr != nil {
			return nil, fmt.Errorf("dist: worker %s: %w", c.Workers[target].Name(), lastErr)
		}
	}
}

// syncLoop exchanges bounds with every live worker until the searches
// finish: offer the global minimum, min-merge what each worker
// reports back. Both directions are monotone, so the loop needs no
// locking discipline beyond the bound semantics themselves. A failed
// sync is a missed heartbeat, never a failed search — syncing is pure
// pruning optimization — so transport errors here only feed the
// membership view (down workers are skipped until a probe or RPC
// resurrects them).
func (c *Coordinator) syncLoop(ctx context.Context, id string, done <-chan struct{}) {
	global := math.Inf(1)
	ticker := time.NewTicker(c.syncInterval())
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
			for i, tr := range c.Workers {
				if !c.alive(i) {
					continue
				}
				b, err := tr.Sync(ctx, id, toWireBound(global))
				if err != nil {
					if ctx.Err() == nil {
						c.reportOutcome(i, err)
					}
					continue
				}
				c.reportOutcome(i, nil)
				if b > 0 {
					global = math.Min(global, b)
				}
			}
		}
	}
}

// merge picks the winner among the shard results under the same
// deterministic order the in-process search uses — feasible first,
// then cost, then canonical plan signature — and rebuilds it against
// the coordinator's registry.
func (c *Coordinator) merge(q *cq.Query, results []*SearchResult) (*opt.Result, error) {
	var winner *SearchResult
	var stats opt.Stats
	found := 0
	for _, r := range results {
		if r == nil || !r.Found {
			continue
		}
		found++
		// Candidate/permissible counts describe the full space and
		// agree across shards; the effort counters add up.
		stats.StatesVisited += r.Stats.StatesVisited
		stats.StatesPruned += r.Stats.StatesPruned
		stats.Leaves += r.Stats.Leaves
		stats.FetchVectors += r.Stats.FetchVectors
		if r.Stats.CandidateAssignments > stats.CandidateAssignments {
			stats.CandidateAssignments = r.Stats.CandidateAssignments
		}
		if r.Stats.PermissibleAssignments > stats.PermissibleAssignments {
			stats.PermissibleAssignments = r.Stats.PermissibleAssignments
		}
		if winner == nil {
			winner = r
			continue
		}
		better := false
		switch {
		case r.Feasible != winner.Feasible:
			better = r.Feasible
		case r.Cost != winner.Cost:
			better = r.Cost < winner.Cost
		default:
			better = r.Signature < winner.Signature
		}
		if better {
			winner = r
		}
	}
	if winner == nil {
		return nil, fmt.Errorf("dist: no executable plan found for query %s in any shard", q.Name)
	}

	p, err := c.rebuild(q, winner)
	if err != nil {
		return nil, err
	}
	assigner := &fetch.Assigner{
		Estimator: card.Config{Mode: c.Mode},
		Metric:    c.metric(),
		K:         c.K,
	}
	fr := assigner.Assign(p)
	// The canonical signature covers the assigned fetch factors, so
	// the cross-check against the worker's report runs after phase 3:
	// a mismatch means the two sides priced the query off different
	// service definitions or statistics, which would silently break
	// the determinism contract.
	if sig := p.Signature(); sig != winner.Signature {
		return nil, fmt.Errorf("dist: rebuilt plan signature %s != worker-reported %s (registries disagree?)", sig, winner.Signature)
	}
	return &opt.Result{
		Best:        p,
		Cost:        fr.Cost,
		Feasible:    fr.Feasible || c.K <= 0,
		Stats:       stats,
		Cached:      winner.Cached,
		TemplateHit: winner.TemplateHit,
		Revalidated: winner.Revalidated,
	}, nil
}

// rebuild reconstructs the winning skeleton against the
// coordinator's registry (the signature cross-check happens in merge,
// after fetch factors are assigned).
func (c *Coordinator) rebuild(q *cq.Query, r *SearchResult) (*plan.Plan, error) {
	var chooser plan.MethodChooser
	if c.Registry != nil {
		chooser = c.Registry.MethodChooser()
	}
	return buildSkeleton(q, r.Assignment, r.Topology, chooser)
}

// Gossip synchronously delivers epoch bumps to every live worker,
// returning the first error (delivery to the remaining workers still
// proceeds — invalidation must not stop at the first slow worker).
// Down workers are skipped without error: a worker that missed a bump
// serves a stale-marked-late entry at worst, and the next bump after
// it rejoins repairs it.
func (c *Coordinator) Gossip(ctx context.Context, bumps []service.EpochBump) error {
	if len(bumps) == 0 {
		return nil
	}
	var first error
	for i, tr := range c.Workers {
		if !c.alive(i) {
			continue
		}
		err := tr.Gossip(ctx, bumps)
		c.reportOutcome(i, err)
		if err != nil && first == nil {
			first = fmt.Errorf("dist: gossip to %s: %w", tr.Name(), err)
		}
	}
	return first
}

// GossipLoop subscribes to the coordinator registry's epoch feed and
// forwards coalesced bumps to every worker until stop is called —
// the push half of cross-process cache coherence. Delivery errors
// are dropped after onError (which may be nil): a worker that missed
// a bump serves a stale-marked-late entry at worst, and the next
// bump for the service repairs it (epoch compares are by inequality,
// not order).
func (c *Coordinator) GossipLoop(onError func(error)) (stop func()) {
	feed := c.Registry.NewEpochFeed()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			case <-feed.Wait():
				if bumps := feed.Next(); bumps != nil {
					if err := c.Gossip(context.Background(), bumps); err != nil && onError != nil {
						onError(err)
					}
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			feed.Close()
			close(done)
			<-finished
		})
	}
}

// WarmWorkers ships a cache's template entries to every live worker
// (see opt.PlanCache.ExportTemplates); it returns the total number of
// entries accepted across workers. Warming is best-effort per worker:
// a worker that fails transiently (or is down) is skipped rather than
// aborting the remaining deliveries — a cold cache costs one search,
// not correctness — and the first failure is still reported so the
// caller can log it.
func (c *Coordinator) WarmWorkers(ctx context.Context, cache *opt.PlanCache) (int, error) {
	entries := cache.ExportTemplates()
	if len(entries) == 0 {
		return 0, nil
	}
	total := 0
	var first error
	for i, tr := range c.Workers {
		if !c.alive(i) {
			continue
		}
		n, err := tr.ImportTemplates(ctx, entries)
		c.reportOutcome(i, err)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("dist: warming %s: %w", tr.Name(), err)
			}
			continue
		}
		total += n
	}
	return total, first
}

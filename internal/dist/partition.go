package dist

import (
	"fmt"

	"mdq/internal/plan"
)

// Fragment is one unit of distributed plan execution: a maximal
// linear chain of service nodes (identified by their atom indexes in
// topological order) together with the worker that executes it.
//
// The partitioning rule cuts the plan DAG exactly where its tuple
// streams must be materialized anyway: at parallel joins (both
// branches are buffered before the Cartesian traversal, so the
// coordinator joining the two streamed-back branches reproduces the
// in-plan join verbatim) and at nodes feeding several consumers
// (every consumer needs the intermediate stream). What remains are
// single-producer single-consumer chains — pipe joins in the paper's
// terms — which a worker can run end to end with the stock
// exec.Runner, seeing only the chain's seed tuples and returning only
// its tail stream. A chain additionally breaks where no single worker
// hosts all its services, so every fragment ships to a worker whose
// registry can invoke the whole chain locally.
type Fragment struct {
	// Atoms are the chain's atom indexes, in execution order.
	Atoms []int
	// Worker indexes the coordinator's Workers slice.
	Worker int
	// Candidates are all workers hosting every service of the chain
	// (Worker is one of them) — the failover set a coordinator
	// re-dispatches to when Worker dies mid-execution.
	Candidates []int
}

// PartitionPlan cuts a plan into executable fragments. hosts[i] is
// the set of service names worker i hosts; a fragment's candidate
// workers are those hosting every service of the chain, and among
// candidates the assignment rotates deterministically by fragment
// ordinal, so repeated executions of one plan land on the same
// workers while a multi-fragment plan spreads across the fleet. An
// error reports a service no worker hosts.
func PartitionPlan(p *plan.Plan, hosts []map[string]bool) ([]Fragment, error) {
	candidates := func(name string, within []int) []int {
		var out []int
		for _, wi := range within {
			if hosts[wi][name] {
				out = append(out, wi)
			}
		}
		return out
	}
	all := make([]int, len(hosts))
	for i := range hosts {
		all[i] = i
	}

	var frags []Fragment
	taken := make([]bool, len(p.ServiceNode))
	for _, n := range p.TopoNodes() {
		if n.Kind != plan.Service || taken[n.Atom.Index] {
			continue
		}
		cand := candidates(n.Atom.Service, all)
		if len(cand) == 0 {
			return nil, fmt.Errorf("dist: no worker hosts service %s", n.Atom.Service)
		}
		f := Fragment{Atoms: []int{n.Atom.Index}}
		taken[n.Atom.Index] = true
		// Extend the chain while the tail has exactly one consumer,
		// that consumer is a service node fed only by the tail, and
		// some worker still hosts the whole chain.
		for tail := n; ; {
			if len(tail.Out) != 1 {
				break
			}
			next := tail.Out[0]
			if next.Kind != plan.Service || len(next.In) != 1 {
				break
			}
			shrunk := candidates(next.Atom.Service, cand)
			if len(shrunk) == 0 {
				break
			}
			cand = shrunk
			f.Atoms = append(f.Atoms, next.Atom.Index)
			taken[next.Atom.Index] = true
			tail = next
		}
		f.Worker = cand[len(frags)%len(cand)]
		f.Candidates = cand
		frags = append(frags, f)
	}
	return frags, nil
}

package dist

import (
	"fmt"

	"mdq/internal/exec"
	"mdq/internal/schema"
)

// WireValue is the JSON encoding of one schema.Value on the
// fragment-execution wire. Kind discriminates: "" null, "s" string,
// "n" number, "d" date (days since epoch in N).
type WireValue struct {
	// Kind is the value kind tag ("", "s", "n" or "d").
	Kind string `json:"k,omitempty"`
	// Str carries string payloads.
	Str string `json:"s,omitempty"`
	// Num carries numeric and date payloads.
	Num float64 `json:"n,omitempty"`
}

// WireTuple is one tuple on the fragment-execution wire: slot values
// in the plan's VarIndex order (sorted query variables — both sides
// derive the identical layout from the shipped query, and requests
// carry the variable list as a cross-check).
type WireTuple []WireValue

// encodeValue converts a schema value to its wire form.
func encodeValue(v schema.Value) WireValue {
	switch v.Kind {
	case schema.StringValue:
		return WireValue{Kind: "s", Str: v.Str}
	case schema.NumberValue:
		return WireValue{Kind: "n", Num: v.Num}
	case schema.DateValue:
		return WireValue{Kind: "d", Num: v.Num}
	default:
		return WireValue{}
	}
}

// decodeValue converts a wire value back; unknown kinds are wire
// corruption, not data.
func decodeValue(w WireValue) (schema.Value, error) {
	switch w.Kind {
	case "":
		return schema.Null, nil
	case "s":
		return schema.S(w.Str), nil
	case "n":
		return schema.N(w.Num), nil
	case "d":
		return schema.DateFromDays(w.Num), nil
	default:
		return schema.Null, fmt.Errorf("dist: unknown wire value kind %q", w.Kind)
	}
}

// encodeTuple converts an execution tuple to its wire form.
func encodeTuple(t exec.Tuple) WireTuple {
	vals := t.Values()
	out := make(WireTuple, len(vals))
	for i, v := range vals {
		out[i] = encodeValue(v)
	}
	return out
}

// decodeTuple converts a wire tuple back, validating the slot width
// against the local plan layout.
func decodeTuple(w WireTuple, width int) (exec.Tuple, error) {
	if len(w) != width {
		return exec.Tuple{}, fmt.Errorf("dist: wire tuple has %d slots, plan layout has %d", len(w), width)
	}
	vals := make([]schema.Value, len(w))
	for i, wv := range w {
		v, err := decodeValue(wv)
		if err != nil {
			return exec.Tuple{}, err
		}
		vals[i] = v
	}
	return exec.TupleOf(vals), nil
}

// encodeTuples maps encodeTuple over a batch.
func encodeTuples(ts []exec.Tuple) []WireTuple {
	out := make([]WireTuple, len(ts))
	for i, t := range ts {
		out[i] = encodeTuple(t)
	}
	return out
}

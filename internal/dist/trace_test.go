package dist_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	. "mdq/internal/dist"
	"mdq/internal/serve"
	"mdq/internal/trace"
)

// tracedCtx returns a context carrying a fresh trace root plus the
// trace itself.
func tracedCtx(ctx context.Context) (context.Context, *trace.Trace, *trace.Span) {
	tr := trace.New("")
	root := tr.Root("query")
	return trace.With(ctx, root), tr, root
}

// TestTracedExecutionDifferential is the tracing-is-free contract:
// running the same plan with tracing on and off returns byte-identical
// rows, tuples and head, and charges the identical number of logical
// service calls to the request budget — on every simweb world, over
// LocalTransport and over real loopback HTTP. Tracing observes the
// pipeline; it must never add, remove or reorder work.
func TestTracedExecutionDifferential(t *testing.T) {
	type clusterFn func(t *testing.T, w world, n int) (*Coordinator, []*Worker)
	transports := []struct {
		name string
		make clusterFn
	}{
		{"local", localCluster},
		{"http", httpCluster},
	}
	for _, tp := range transports {
		tp := tp
		for _, w := range worlds {
			w := w
			t.Run(tp.name+"/"+w.name, func(t *testing.T) {
				// Untraced reference run on its own fresh cluster, under an
				// uncapped accounting budget. Full drain (K=0): top-K early
				// termination cancels producers at racy times, so charged
				// calls are only deterministic run to run without it.
				plain, _ := tp.make(t, w, 2)
				plain.K = 0
				p := optimizeOn(t, plain, w.text)
				bPlain := serve.NewBudget(time.Minute, 0)
				ctxPlain, cancelPlain := bPlain.Context(context.Background())
				defer cancelPlain()
				want, err := plain.ExecutePlan(ctxPlain, p)
				if err != nil {
					t.Fatal(err)
				}

				// Traced run on an identically fresh cluster.
				traced, _ := tp.make(t, w, 2)
				traced.K = 0
				p2 := optimizeOn(t, traced, w.text)
				bTraced := serve.NewBudget(time.Minute, 0)
				ctxTraced, cancelTraced := bTraced.Context(context.Background())
				defer cancelTraced()
				ctxTraced, tr, root := tracedCtx(ctxTraced)
				got, err := traced.ExecutePlan(ctxTraced, p2)
				if err != nil {
					t.Fatal(err)
				}
				root.End()

				assertSameExecution(t, want, got)
				if bPlain.Calls() == 0 {
					t.Fatal("reference run charged no calls")
				}
				if bPlain.Calls() != bTraced.Calls() {
					t.Fatalf("tracing changed the budget charge: untraced %d calls, traced %d",
						bPlain.Calls(), bTraced.Calls())
				}
				if len(tr.Spans()) < 2 {
					t.Fatalf("traced run recorded %d spans", len(tr.Spans()))
				}
			})
		}
	}
}

// TestTracedDistributedSpanTree pins the tentpole's tree shape on a
// LocalTransport fleet: one tree rooted at the query span, worker
// search spans spliced under their dist.search.dispatch spans, worker
// fragment spans spliced under their dist.execute.dispatch spans, and
// every plan-node span carrying both the optimizer estimate and the
// observed counters.
func TestTracedDistributedSpanTree(t *testing.T) {
	w := worlds[0]
	co, _ := localCluster(t, w, 2)
	ctx, tr, root := tracedCtx(context.Background())
	res, err := co.OptimizeTemplate(ctx, resolve(t, w.text, mustSchema(t, co.Registry)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.ExecutePlan(ctx, res.Best); err != nil {
		t.Fatal(err)
	}
	root.End()

	roots := trace.Tree(tr.Spans())
	if len(roots) != 1 || roots[0].Name != "query" {
		t.Fatalf("trace has %d roots (first %q), want the single query root",
			len(roots), roots[0].Name)
	}
	var searchDispatches, searchSpliced, execDispatches, fragSpliced, nodeSpans int
	trace.Walk(roots, func(n *trace.TreeNode) {
		switch n.Name {
		case "dist.search.dispatch":
			searchDispatches++
			for _, c := range n.Children {
				if c.Name == "worker.search" {
					searchSpliced++
				}
			}
		case "dist.execute.dispatch":
			execDispatches++
			for _, c := range n.Children {
				if c.Name == "worker.fragment" {
					fragSpliced++
				}
			}
		}
		if len(n.Name) > 5 && n.Name[:5] == "node:" {
			nodeSpans++
			if n.Est == nil {
				t.Errorf("plan-node span %s has no estimate", n.Name)
			}
			if n.Obs == nil {
				t.Errorf("plan-node span %s has no observations", n.Name)
			}
		}
	})
	if searchDispatches != 2 {
		t.Fatalf("%d search dispatch spans, want 2 (one per shard)", searchDispatches)
	}
	if searchSpliced != 2 {
		t.Fatalf("%d worker.search spans spliced under dispatches, want 2", searchSpliced)
	}
	if execDispatches == 0 || fragSpliced == 0 {
		t.Fatalf("execute dispatches %d / spliced fragments %d, want both > 0",
			execDispatches, fragSpliced)
	}
	if nodeSpans == 0 {
		t.Fatal("no plan-node spans recorded")
	}
}

// TestTracedFailureSettlesNoGoroutineLeak extends the settle contract
// to traced queries: a traced run that trips its call budget and a
// traced run that fails over mid-stream must both unwind every relay
// goroutine, exactly like their untraced counterparts.
func TestTracedFailureSettlesNoGoroutineLeak(t *testing.T) {
	w := worlds[2]
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		// Budget trip mid-execution under tracing.
		co, _ := localCluster(t, w, 2)
		p := optimizeOn(t, co, w.text)
		b := serve.NewBudget(0, 2)
		ctx, cancel := b.Context(context.Background())
		ctx, _, root := tracedCtx(ctx)
		if _, err := co.ExecutePlan(ctx, p); !errors.Is(err, serve.ErrBudgetExceeded) {
			t.Fatalf("run %d: traced budget trip: %v", i, err)
		}
		root.End()
		cancel()

		// Mid-stream worker death with failover, traced.
		co2, _ := localCluster(t, w, 2)
		faults := wrapFaults(co2)
		co2.BatchSize = 2
		p2 := optimizeOn(t, co2, w.text)
		faults[0].KillExecuteAfter(0, -1)
		ctx2, _, root2 := tracedCtx(context.Background())
		if _, err := co2.ExecutePlan(ctx2, p2); err != nil {
			t.Fatalf("run %d: traced mid-stream failover: %v", i, err)
		}
		root2.End()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle to baseline %d\n%s",
				before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTracedFailoverAnnotatesAttempts: when a fragment fails over, the
// trace narrates it — one dispatch span per attempt, the failed one
// carrying an error attribute, the final one carrying the spliced
// worker spans.
func TestTracedFailoverAnnotatesAttempts(t *testing.T) {
	w := worlds[2]
	co, _ := localCluster(t, w, 2)
	faults := wrapFaults(co)
	p := optimizeOn(t, co, w.text)
	faults[0].FailNext(OpExecute, 1)
	ctx, tr, root := tracedCtx(context.Background())
	if _, err := co.ExecutePlan(ctx, p); err != nil {
		t.Fatal(err)
	}
	root.End()

	var failed, retried int
	trace.Walk(trace.Tree(tr.Spans()), func(n *trace.TreeNode) {
		if n.Name != "dist.execute.dispatch" {
			return
		}
		if n.Attrs["error"] != "" {
			failed++
		}
		if n.Attrs["attempt"] != "0" && n.Attrs["attempt"] != "" {
			retried++
		}
	})
	if failed == 0 {
		t.Fatal("no dispatch span carries the injected failure")
	}
	if retried == 0 {
		t.Fatal("no dispatch span records a retry attempt")
	}
}

// Package dist distributes the three-phase branch-and-bound and the
// execution of its winning plans across processes: a Coordinator
// shards the phase-1 assignment space over remote Workers, shares the
// incumbent bound between them while they search (periodic bound-sync
// with monotone min-merge), merges the per-shard winners
// deterministically, gossips statistics-epoch bumps so remote plan
// caches invalidate and revalidate exactly like local ones, and
// executes winning plans as worker-side fragments — linear chains of
// the plan DAG shipped to the workers hosting their services, tuples
// streamed back, joins performed at the coordinator (see
// PartitionPlan, Coordinator.ExecutePlan and the reverse gossip notes
// on Worker.DrainBumps).
//
// The division of labor:
//
//   - each Worker owns a service.Registry (its local view of the
//     services' signatures and statistics) and an opt.PlanCache; a
//     search request names a shard, and the worker runs the ordinary
//     opt.Optimizer over that slice of the assignment space;
//   - the Coordinator ships the query as datalog text (Query.String
//     round-trips through cq.Parse), so workers resolve it against
//     their own registries — plans are priced with worker-local
//     statistics and revalidated there, never shipped pre-priced;
//   - winning plans travel as skeletons — access-pattern assignment
//     plus topology, the same wire form template cache entries use —
//     and the coordinator rebuilds and re-prices the winner against
//     its own registry, verifying the plan signature matches what the
//     worker reported;
//   - cache coherence rides the statistics-epoch wire format: the
//     coordinator forwards (service, epoch) bumps from its registry's
//     epoch feed, and each worker applies PlanCache.InvalidateService,
//     so the existing stale-marking/revalidation machinery runs
//     unchanged on remote caches.
//
// Transports are pluggable: HTTPTransport speaks JSON over HTTP to a
// Worker.Handler (the cmd/mdqworker server), and LocalTransport wires
// a Worker in-process so the full protocol — sharding, bound-sync,
// gossip, warmup — is exercised by ordinary tests without sockets.
//
// Determinism: a distributed full search returns exactly the
// sequential optimizer's plan. Sharding partitions the assignment
// space; a shared bound only prunes states that cannot complete into
// an optimal-cost plan; per-shard winners and the coordinator's merge
// use the same (feasible, cost, plan-signature) order the in-process
// parallel search uses — so the merge is associative and
// timing-independent, provided coordinator and workers agree on the
// service statistics. (Template-level serving relaxes this the same
// way single-node template caching does: a cached skeleton within the
// revalidation ratio is served without re-searching.)
package dist

import (
	"math"

	"mdq/internal/opt"
	"mdq/internal/plan"
	"mdq/internal/service"
	"mdq/internal/trace"
)

// SearchRequest asks a worker to search one shard of a query's
// assignment space. All fields ride the HTTP/JSON wire.
type SearchRequest struct {
	// ID names the search for mid-flight bound-sync calls; unique per
	// coordinator optimization.
	ID string `json:"id"`
	// Query is the resolved query rendered as datalog text
	// (cq.Query.String); the worker parses and re-resolves it against
	// its local registry.
	Query string `json:"query"`
	// Metric is the cost metric name (cost.ByName).
	Metric string `json:"metric"`
	// CacheMode is the logical caching level name (card.ModeByName).
	CacheMode string `json:"cache_mode"`
	// K is the number of answers optimized for.
	K int `json:"k"`
	// ShardIndex / ShardCount name the slice of the assignment space
	// to search (opt.Shard).
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`
	// Bound seeds the worker's incumbent with a bound already known
	// to the coordinator (0 means none; bounds are costs of feasible
	// plans and therefore positive).
	Bound float64 `json:"bound,omitempty"`
	// Template routes the search through the worker's template-level
	// plan cache (opt.Optimizer.OptimizeTemplate): repeated bindings
	// of one template serve re-costed skeletons instead of searching.
	Template bool `json:"template,omitempty"`
	// RevalidateRatio is the template-cache divergence bound (0 means
	// the optimizer default).
	RevalidateRatio float64 `json:"revalidate_ratio,omitempty"`
	// TraceID and TraceSpan propagate the coordinator's trace context
	// over the wire — the trace header of the search RPC, honored
	// identically by LocalTransport (the struct travels as-is) and
	// HTTPTransport (JSON body, mirrored in an X-Mdq-Trace-Id header
	// for HTTP-level correlation). A non-empty TraceID makes the
	// worker record its shard search into a local trace seeded with it
	// and ship the spans back on SearchResult.Spans; TraceSpan names
	// the dispatching span for correlation (the coordinator reparents
	// the shipped spans under it when splicing).
	TraceID   string `json:"trace_id,omitempty"`
	TraceSpan uint64 `json:"trace_span,omitempty"`
}

// SearchResult is a worker's answer for one shard.
type SearchResult struct {
	// Found is false when the shard contained no executable plan
	// (opt.ErrNoPlanInShard) — an expected outcome when shards
	// outnumber permissible assignments, merged as an empty
	// contribution.
	Found bool `json:"found"`
	// Cost and Feasible describe the shard's winning plan under the
	// worker's local statistics.
	Cost     float64 `json:"cost,omitempty"`
	Feasible bool    `json:"feasible,omitempty"`
	// Signature is the winning plan's canonical signature — the
	// deterministic tie-break key of the coordinator's merge, and the
	// cross-check for the coordinator's local rebuild.
	Signature string `json:"signature,omitempty"`
	// Assignment and Topology are the winning plan's skeleton, enough
	// for the coordinator to rebuild the full plan against its own
	// registry (the same wire form template cache entries use).
	Assignment []string       `json:"assignment,omitempty"`
	Topology   *plan.Topology `json:"topology,omitempty"`
	// Stats are the worker's search-effort counters for the shard.
	Stats opt.Stats `json:"stats"`
	// Cached / TemplateHit / Revalidated report how the worker's plan
	// cache served the shard (see opt.Result).
	Cached      bool `json:"cached,omitempty"`
	TemplateHit bool `json:"template_hit,omitempty"`
	Revalidated bool `json:"revalidated,omitempty"`
	// Bound is the worker's final incumbent bound (0 means +Inf).
	Bound float64 `json:"bound,omitempty"`
	// Spans are the worker-side search spans of a traced request
	// (SearchRequest.TraceID), in worker-local ID space; the
	// coordinator splices them under its per-shard dispatch span
	// (trace.Trace.Splice).
	Spans []trace.Span `json:"spans,omitempty"`
}

// SyncRequest is one bound-sync exchange: the coordinator offers the
// global minimum, the worker merges it into the named search's
// incumbent and returns its own current bound. Both directions are
// monotone min-merges, so lost or reordered syncs only delay pruning,
// never corrupt it.
type SyncRequest struct {
	// ID names the search (SearchRequest.ID).
	ID string `json:"id"`
	// Bound is the coordinator's global minimum (0 means none yet).
	Bound float64 `json:"bound,omitempty"`
}

// SyncResponse returns the worker's current incumbent for the search
// (0 means +Inf or unknown search — either way, no information).
type SyncResponse struct {
	// Bound is the worker's incumbent after the merge.
	Bound float64 `json:"bound,omitempty"`
}

// GossipRequest carries coalesced statistics-epoch bumps to a
// worker's plan cache.
type GossipRequest struct {
	// Bumps are the (service, epoch) pairs to apply, exactly as
	// service.Registry.SubscribeEpochs would deliver them locally.
	Bumps []service.EpochBump `json:"bumps"`
}

// ImportResponse reports how many template entries a worker accepted.
type ImportResponse struct {
	// Imported counts accepted entries.
	Imported int `json:"imported"`
}

// toWireBound encodes a bound for the wire: +Inf (no bound) becomes
// the JSON-friendly 0.
func toWireBound(b float64) float64 {
	if math.IsInf(b, 1) {
		return 0
	}
	return b
}

// fromWireBound decodes a wire bound: 0 or less means none (+Inf).
func fromWireBound(b float64) float64 {
	if b <= 0 {
		return math.Inf(1)
	}
	return b
}

package dist_test

// Differential failover suite: every injected fault — refused
// connections, mid-stream kills at each frame boundary, sync flaps,
// whole-fleet outages — must either leave the result byte-identical to
// the no-fault run (failover succeeded) or surface the documented
// typed error (ErrNoLiveWorkers, *serve.BudgetError). FaultTransport
// scripts are deterministic, so a failing case replays exactly.

import (
	"context"
	"errors"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"mdq/internal/card"
	"mdq/internal/cost"
	. "mdq/internal/dist"
	"mdq/internal/exec"
	"mdq/internal/opt"
	"mdq/internal/serve"
	"mdq/internal/service"
)

// seqReference runs the plain in-process optimizer for a world — the
// no-fault ground truth every failover search is compared against.
func seqReference(t *testing.T, w world) *opt.Result {
	t.Helper()
	reg, sch := w.make()
	q := resolve(t, w.text, sch)
	seq := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: reg.MethodChooser()}
	res, err := seq.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertSameOptimize pins the byte-identical search contract: cost,
// feasibility, and canonical plan signature.
func assertSameOptimize(t *testing.T, want, got *opt.Result) {
	t.Helper()
	if got.Cost != want.Cost || got.Feasible != want.Feasible {
		t.Fatalf("cost %g/%v, reference %g/%v", got.Cost, got.Feasible, want.Cost, want.Feasible)
	}
	if gs, ws := got.Best.Signature(), want.Best.Signature(); gs != ws {
		t.Fatalf("plan %s, reference %s", gs, ws)
	}
}

// downMembership attaches a membership view that marks a worker down
// on its first failure — the fastest deterministic eviction for tests.
func downMembership(co *Coordinator) *Membership {
	m := NewMembership(co.Workers)
	m.DownAfter = 1
	co.Membership = m
	return m
}

// TestSearchFailoverDifferential: killing each worker in turn (a
// refused connection from the first call on) must leave the
// distributed search result byte-identical to the sequential
// reference, on every world at 2 and 3 workers — the dead worker's
// shard re-runs whole on a live worker.
func TestSearchFailoverDifferential(t *testing.T) {
	for _, w := range worlds {
		w := w
		t.Run(w.name, func(t *testing.T) {
			want := seqReference(t, w)
			for _, n := range []int{2, 3} {
				for victim := 0; victim < n; victim++ {
					co, _ := localCluster(t, w, n)
					faults := wrapFaults(co)
					m := downMembership(co)
					faults[victim].Refuse(true)
					got, err := co.Optimize(context.Background(), resolve(t, w.text, mustSchema(t, co.Registry)))
					if err != nil {
						t.Fatalf("%d workers, victim %d: %v", n, victim, err)
					}
					assertSameOptimize(t, want, got)
					if faults[victim].Injected() == 0 {
						t.Fatalf("%d workers, victim %d: no fault was ever injected", n, victim)
					}
					if m.State(victim) != StateDown {
						t.Fatalf("%d workers, victim %d: state %v, want down", n, victim, m.State(victim))
					}
				}
			}
		})
	}
}

// TestSearchFailoverHTTPDeadWorker: the same differential over real
// HTTP against a genuinely dead server (closed socket, real
// connection-refused classification through the transport).
func TestSearchFailoverHTTPDeadWorker(t *testing.T) {
	w := worlds[2]
	want := seqReference(t, w)
	co, _ := httpCluster(t, w, 2)
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	co.Workers[1] = &HTTPTransport{Base: deadURL}
	m := downMembership(co)
	co.Retry = RetryPolicy{Backoff: time.Millisecond}

	got, err := co.Optimize(context.Background(), resolve(t, w.text, mustSchema(t, co.Registry)))
	if err != nil {
		t.Fatal(err)
	}
	assertSameOptimize(t, want, got)
	if m.State(1) != StateDown {
		t.Fatalf("dead worker state %v, want down", m.State(1))
	}
	snap := m.Snapshot()
	if snap[1].LastError == "" {
		t.Fatal("dead worker's snapshot row carries no error")
	}
}

// TestExecuteFailoverDifferential: with each worker in turn refusing
// every fragment execution (search still works — the executor died,
// not the process), ExecutePlan must stay byte-identical to the local
// reference: the victim's fragments re-dispatch to live hosting
// candidates.
func TestExecuteFailoverDifferential(t *testing.T) {
	for _, w := range worlds {
		w := w
		t.Run(w.name, func(t *testing.T) {
			for _, n := range []int{2, 3} {
				injected := false
				for victim := 0; victim < n; victim++ {
					co, _ := localCluster(t, w, n)
					faults := wrapFaults(co)
					faults[victim].FailNext(OpExecute, 1<<20)
					p := optimizeOn(t, co, w.text)
					local := &exec.Runner{Registry: co.Registry, Cache: card.OneCall, K: 10}
					want, err := local.Run(context.Background(), p)
					if err != nil {
						t.Fatal(err)
					}
					got, err := co.ExecutePlan(context.Background(), p)
					if err != nil {
						t.Fatalf("%d workers, victim %d: %v", n, victim, err)
					}
					assertSameExecution(t, want, got)
					if faults[victim].Injected() > 0 {
						injected = true
					}
				}
				// Fragments cover the plan, so over a full victim sweep at
				// least one run must actually have exercised failover.
				if !injected {
					t.Fatalf("%d workers: no victim ever received a fragment", n)
				}
			}
		})
	}
}

// TestExecuteFailoverMidStreamKill: a worker dying *mid-stream* (exact
// frame boundaries scripted) re-dispatches the fragment to another
// candidate, and the resume cursor splices the two streams without
// duplicating or dropping tuples — byte-identical over both
// transports.
func TestExecuteFailoverMidStreamKill(t *testing.T) {
	w := worlds[0] // travel: proliferative fragments, many frames
	clusters := []struct {
		name string
		mk   func(t *testing.T, w world, n int) (*Coordinator, []*Worker)
	}{
		{"local", localCluster},
		{"http", httpCluster},
	}
	for _, cl := range clusters {
		cl := cl
		t.Run(cl.name, func(t *testing.T) {
			kills := 0
			for victim := 0; victim < 2; victim++ {
				co, _ := cl.mk(t, w, 2)
				faults := wrapFaults(co)
				downMembership(co)
				co.BatchSize = 2
				faults[victim].KillExecuteAfter(1, -1)
				p := optimizeOn(t, co, w.text)
				local := &exec.Runner{Registry: co.Registry, Cache: card.OneCall, K: 10}
				want, err := local.Run(context.Background(), p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := co.ExecutePlan(context.Background(), p)
				if err != nil {
					t.Fatalf("victim %d: %v", victim, err)
				}
				assertSameExecution(t, want, got)
				kills += faults[victim].Kills()
			}
			if kills == 0 {
				t.Fatal("no mid-stream kill ever fired across the victim sweep")
			}
		})
	}
}

// TestFailoverFrameBoundarySweep kills the victim at *every* frame
// boundary of its fragment streams (sampled when there are many) and
// demands a byte-identical result each time — the resume-cursor dedup
// exercised at every splice point.
func TestFailoverFrameBoundarySweep(t *testing.T) {
	w := worlds[2] // zipf: cheap enough to run the whole sweep
	mk := func() (*Coordinator, []*FaultTransport) {
		co, _ := localCluster(t, w, 2)
		faults := wrapFaults(co)
		co.BatchSize = 2
		co.K = 0 // full drain: deterministic frame counts run to run
		return co, faults
	}

	// Clean instrumented run: reference rows and the frame-count
	// envelope the sweep iterates over.
	co, faults := mk()
	p := optimizeOn(t, co, w.text)
	local := &exec.Runner{Registry: co.Registry, Cache: card.OneCall, K: 0}
	want, err := local.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := co.ExecutePlan(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	assertSameExecution(t, want, clean)
	maxFrames := 0
	for _, ft := range faults {
		if ft.MaxFrames() > maxFrames {
			maxFrames = ft.MaxFrames()
		}
	}
	if maxFrames == 0 {
		t.Fatal("clean run streamed no batch frames — the sweep would test nothing")
	}

	// Every boundary 0..maxFrames, sampled down to 8 points (always
	// keeping both ends) when the stream is long.
	var points []int
	if maxFrames <= 7 {
		for k := 0; k <= maxFrames; k++ {
			points = append(points, k)
		}
	} else {
		t.Logf("sampling 8 of %d frame boundaries", maxFrames+1)
		for i := 0; i < 8; i++ {
			points = append(points, i*maxFrames/7)
		}
	}

	kills := 0
	for _, k := range points {
		for victim := 0; victim < 2; victim++ {
			co, faults := mk()
			faults[victim].KillExecuteAfter(k, 1)
			got, err := co.ExecutePlan(context.Background(), optimizeOn(t, co, w.text))
			if err != nil {
				t.Fatalf("kill at frame %d on victim %d: %v", k, victim, err)
			}
			assertSameExecution(t, want, got)
			kills += faults[victim].Kills()
		}
	}
	if kills == 0 {
		t.Fatal("no kill fired anywhere in the sweep")
	}
}

// TestSyncFlapTolerated: a worker dropping every bound-sync exchange
// (a missed heartbeat, not a failed search) must not change the search
// result — syncing is pure pruning optimization.
func TestSyncFlapTolerated(t *testing.T) {
	w := worlds[0] // travel: long enough a search that syncs actually happen
	want := seqReference(t, w)
	co, _ := localCluster(t, w, 2)
	faults := wrapFaults(co)
	co.SyncInterval = time.Millisecond
	faults[1].FlapEvery(OpSync, 1)

	got, err := co.Optimize(context.Background(), resolve(t, w.text, mustSchema(t, co.Registry)))
	if err != nil {
		t.Fatal(err)
	}
	assertSameOptimize(t, want, got)
	t.Logf("sync attempts against the flapping worker: %d", faults[1].Calls(OpSync))
}

// TestSyncFailureFeedsMembership: a mid-sync transport error counts as
// a missed heartbeat against the worker — passive health evidence —
// while a successful search RPC resurrects it.
func TestSyncFailureFeedsMembership(t *testing.T) {
	co, _ := localCluster(t, worlds[2], 2)
	faults := wrapFaults(co)
	m := NewMembership(co.Workers)
	co.Membership = m
	faults[1].FlapEvery(OpSync, 1)
	co.SyncInterval = time.Millisecond

	if _, err := co.Optimize(context.Background(), resolve(t, worlds[2].text, mustSchema(t, co.Registry))); err != nil {
		t.Fatal(err)
	}
	// The search against worker 1 succeeded, so whatever sync failures
	// accumulated mid-flight, a success resets the count — the worker
	// must not be down after a successful search.
	if m.State(1) == StateDown {
		t.Fatal("successful search left the worker down")
	}
	// Direct evidence: a sync failure alone degrades the worker.
	m2 := NewMembership(co.Workers)
	m2.ReportFailure(1, errors.New("sync: connection reset"))
	if m2.State(1) != StateSuspect {
		t.Fatalf("one missed heartbeat: %v, want suspect", m2.State(1))
	}
}

// TestAllWorkersDown: a fleet with every worker down fails fast with
// the typed ErrNoLiveWorkers — for both the search and the execution
// plane — instead of timing out against dead sockets.
func TestAllWorkersDown(t *testing.T) {
	w := worlds[2]
	co, _ := localCluster(t, w, 2)
	wrapFaults(co)
	m := downMembership(co)

	// Precompute hosting and the plan while the fleet is up (the
	// long-lived deployment shape), then take everything down.
	hosts, err := co.DiscoverHosts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	co.Hosts = hosts
	p := optimizeOn(t, co, w.text)
	m.ReportFailure(0, errors.New("probe: connection refused"))
	m.ReportFailure(1, errors.New("probe: connection refused"))

	if _, err := co.Optimize(context.Background(), resolve(t, w.text, mustSchema(t, co.Registry))); !errors.Is(err, ErrNoLiveWorkers) {
		t.Fatalf("search on a dead fleet: %v, want ErrNoLiveWorkers", err)
	}
	if _, err := co.ExecutePlan(context.Background(), p); !errors.Is(err, ErrNoLiveWorkers) {
		t.Fatalf("execution on a dead fleet: %v, want ErrNoLiveWorkers", err)
	}
}

// TestRetryBudgetExhausted: when every attempt up to the retry cap
// fails transiently, the last transient error surfaces (still typed
// transient, so callers can tell it from a permanent failure).
func TestRetryBudgetExhausted(t *testing.T) {
	co, _ := localCluster(t, worlds[2], 2)
	faults := wrapFaults(co)
	faults[0].Refuse(true)
	faults[1].Refuse(true)

	_, err := co.Optimize(context.Background(), resolve(t, worlds[2].text, mustSchema(t, co.Registry)))
	if err == nil {
		t.Fatal("search against a fully refusing fleet succeeded")
	}
	if !IsTransient(err) {
		t.Fatalf("exhausted retries surfaced %v, want a transient-typed error", err)
	}
	// Default policy: 1 initial + 2 retries per shard, 2 shards.
	if got := faults[0].Calls(OpSearch) + faults[1].Calls(OpSearch); got != 6 {
		t.Fatalf("search attempts = %d, want 6 (3 per shard)", got)
	}
}

// TestRetryDisabled: MaxRetries < 0 means a transient failure surfaces
// on first occurrence — the dial differential tests pin the taxonomy
// with.
func TestRetryDisabled(t *testing.T) {
	co, _ := localCluster(t, worlds[2], 2)
	faults := wrapFaults(co)
	co.Retry = RetryPolicy{MaxRetries: -1}
	faults[0].FailNext(OpSearch, 1)

	_, err := co.Optimize(context.Background(), resolve(t, worlds[2].text, mustSchema(t, co.Registry)))
	if err == nil || !IsTransient(err) {
		t.Fatalf("no-retry policy: %v, want the first transient failure", err)
	}
	if got := faults[0].Calls(OpSearch); got != 1 {
		t.Fatalf("worker 0 saw %d search attempts, want exactly 1", got)
	}
}

// TestRetryHook: every re-attempt reports (operation, worker) to the
// OnRetry hook — what mdqserve's retry counters are built on.
func TestRetryHook(t *testing.T) {
	w := worlds[2]
	co, _ := localCluster(t, w, 2)
	faults := wrapFaults(co)
	type retry struct{ op, worker string }
	var mu sync.Mutex
	var retries []retry
	co.OnRetry = func(op, worker string) {
		mu.Lock()
		retries = append(retries, retry{op, worker})
		mu.Unlock()
	}

	faults[0].FailNext(OpSearch, 1)
	if _, err := co.Optimize(context.Background(), resolve(t, w.text, mustSchema(t, co.Registry))); err != nil {
		t.Fatal(err)
	}
	faults[0].FailNext(OpExecute, 1)
	faults[1].FailNext(OpExecute, 1)
	if _, err := co.ExecutePlan(context.Background(), optimizeOn(t, co, w.text)); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	var searches, executes int
	for _, r := range retries {
		switch r.op {
		case OpSearch:
			searches++
		case OpExecute:
			executes++
		default:
			t.Fatalf("unexpected retry op %q", r.op)
		}
		if r.worker == "" {
			t.Fatal("retry reported an empty worker name")
		}
	}
	if searches != 1 {
		t.Fatalf("search retries = %d, want 1", searches)
	}
	if executes == 0 {
		t.Fatal("no execute retry was ever reported")
	}
}

// TestGossipDegradedFleet: gossip to a refusing worker reports the
// failure but still delivers to the rest; a worker the membership
// marks down is skipped without error (it repairs on rejoin).
func TestGossipDegradedFleet(t *testing.T) {
	co, _ := localCluster(t, worlds[2], 2)
	faults := wrapFaults(co)
	svc := co.Registry.Services()[0].Signature().Name
	bumps := []service.EpochBump{{Service: svc, Epoch: 1}}

	faults[0].Refuse(true)
	err := co.Gossip(context.Background(), bumps)
	if !IsTransient(err) {
		t.Fatalf("gossip to a refusing worker: %v, want transient", err)
	}
	if faults[1].Calls(OpGossip) != 1 {
		t.Fatalf("live worker saw %d gossip deliveries, want 1 (delivery must not stop at the first failure)", faults[1].Calls(OpGossip))
	}

	m := downMembership(co)
	m.ReportFailure(0, errors.New("probe failed"))
	if err := co.Gossip(context.Background(), bumps); err != nil {
		t.Fatalf("gossip with the dead worker skipped: %v", err)
	}
	if faults[0].Calls(OpGossip) != 1 {
		t.Fatal("gossip dialed a worker marked down")
	}
}

// TestRetryNoDoubleCharge: a fragment killed mid-stream and re-run
// elsewhere charges the query budget exactly once — only the completed
// attempt reports calls, and the resume cursor keeps replayed tuples
// out of the result. Clean run and failover run must agree on rows
// AND on every charged call.
func TestRetryNoDoubleCharge(t *testing.T) {
	w := worlds[2]
	run := func(script func([]*FaultTransport)) (*exec.Result, int64, int) {
		co, _ := localCluster(t, w, 2)
		faults := wrapFaults(co)
		co.BatchSize = 1 // every tuple its own frame: kills fire early
		co.K = 0         // full drain: deterministic call accounting
		if script != nil {
			script(faults)
		}
		b := serve.NewBudget(0, 0)
		ctx, cancel := b.Context(context.Background())
		defer cancel()
		res, err := co.ExecutePlan(ctx, optimizeOn(t, co, w.text))
		if err != nil {
			t.Fatal(err)
		}
		kills := 0
		for _, ft := range faults {
			kills += ft.Kills()
		}
		return res, b.Calls(), kills
	}

	want, cleanCalls, _ := run(nil)
	if cleanCalls == 0 {
		t.Fatal("clean run charged no calls — the comparison would be vacuous")
	}
	totalKills := 0
	for victim := 0; victim < 2; victim++ {
		victim := victim
		got, gotCalls, kills := run(func(faults []*FaultTransport) {
			faults[victim].KillExecuteAfter(1, 1)
		})
		assertSameExecution(t, want, got)
		if gotCalls != cleanCalls {
			t.Fatalf("victim %d: failover run charged %d calls, clean run %d — retries double-charged",
				victim, gotCalls, cleanCalls)
		}
		totalKills += kills
	}
	if totalKills == 0 {
		t.Fatal("no kill fired — the no-double-charge claim was never exercised")
	}
}

// TestBudgetDeadlineDuringStall: a deadline expiring while a dispatch
// is stalled mid-call surfaces as the typed *serve.BudgetError — never
// as a transport failure or a retry-exhaustion error.
func TestBudgetDeadlineDuringStall(t *testing.T) {
	w := worlds[2]
	co, _ := localCluster(t, w, 2)
	faults := wrapFaults(co)
	p := optimizeOn(t, co, w.text)
	faults[0].Stall(OpExecute, true)
	faults[1].Stall(OpExecute, true)

	b := serve.NewBudget(50*time.Millisecond, 0)
	ctx, cancel := b.Context(context.Background())
	defer cancel()
	_, err := co.ExecutePlan(ctx, p)
	var be *serve.BudgetError
	if !errors.As(err, &be) || be.Reason != "deadline" {
		t.Fatalf("stalled dispatch under a deadline: %v, want *serve.BudgetError{deadline}", err)
	}
	if IsTransient(err) {
		t.Fatal("a budget trip must never surface as transient")
	}
}

// TestBudgetDeadlineDuringBackoff: the deadline tripping while the
// retry loop is *waiting between attempts* also surfaces as the typed
// budget error, not as the transient failure that triggered the retry.
func TestBudgetDeadlineDuringBackoff(t *testing.T) {
	w := worlds[2]
	co, _ := localCluster(t, w, 2)
	faults := wrapFaults(co)
	p := optimizeOn(t, co, w.text)
	faults[0].FailNext(OpExecute, 1<<20)
	faults[1].FailNext(OpExecute, 1<<20)
	co.Retry = RetryPolicy{Backoff: 500 * time.Millisecond, MaxBackoff: 500 * time.Millisecond}

	b := serve.NewBudget(40*time.Millisecond, 0)
	ctx, cancel := b.Context(context.Background())
	defer cancel()
	_, err := co.ExecutePlan(ctx, p)
	var be *serve.BudgetError
	if !errors.As(err, &be) || be.Reason != "deadline" {
		t.Fatalf("deadline during retry backoff: %v, want *serve.BudgetError{deadline}", err)
	}
}

// TestFailoverSettlesNoGoroutineLeak drives every new failure path —
// pre-dispatch refusal, mid-stream kill, sync flap, gossip failure,
// retry exhaustion, a whole-fleet outage, a stalled dispatch under a
// deadline — and then requires the goroutine count to settle back to
// baseline (the PR 7 settle contract extended to failover).
func TestFailoverSettlesNoGoroutineLeak(t *testing.T) {
	w := worlds[2]
	ctx := context.Background()
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		// Worker dies pre-dispatch; fragment fails over.
		co, _ := localCluster(t, w, 2)
		faults := wrapFaults(co)
		faults[0].FailNext(OpExecute, 1)
		if _, err := co.ExecutePlan(ctx, optimizeOn(t, co, w.text)); err != nil {
			t.Fatalf("run %d: pre-dispatch failover: %v", i, err)
		}

		// Worker dies mid-stream; resume cursor splices the retry.
		co2, _ := localCluster(t, w, 2)
		faults2 := wrapFaults(co2)
		co2.BatchSize = 2
		faults2[0].KillExecuteAfter(0, -1)
		if _, err := co2.ExecutePlan(ctx, optimizeOn(t, co2, w.text)); err != nil {
			t.Fatalf("run %d: mid-stream failover: %v", i, err)
		}

		// Worker dies during the sync loop; search completes anyway.
		co3, _ := localCluster(t, w, 2)
		faults3 := wrapFaults(co3)
		co3.SyncInterval = time.Millisecond
		faults3[1].FlapEvery(OpSync, 1)
		if _, err := co3.Optimize(ctx, resolve(t, w.text, mustSchema(t, co3.Registry))); err != nil {
			t.Fatalf("run %d: sync flap: %v", i, err)
		}

		// Worker dies during gossip; delivery continues elsewhere.
		co4, _ := localCluster(t, w, 2)
		faults4 := wrapFaults(co4)
		faults4[0].Refuse(true)
		svc := co4.Registry.Services()[0].Signature().Name
		if err := co4.Gossip(ctx, []service.EpochBump{{Service: svc, Epoch: 1}}); !IsTransient(err) {
			t.Fatalf("run %d: gossip failure: %v", i, err)
		}

		// Retry budget exhausted: the error path must also settle.
		co5, _ := localCluster(t, w, 2)
		faults5 := wrapFaults(co5)
		faults5[0].Refuse(true)
		faults5[1].Refuse(true)
		if _, err := co5.Optimize(ctx, resolve(t, w.text, mustSchema(t, co5.Registry))); err == nil {
			t.Fatalf("run %d: fully refusing fleet succeeded", i)
		}

		// Whole fleet down: typed fast-fail on both planes.
		co6, _ := localCluster(t, w, 2)
		wrapFaults(co6)
		hosts, err := co6.DiscoverHosts(ctx)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		co6.Hosts = hosts
		p6 := optimizeOn(t, co6, w.text)
		m6 := downMembership(co6)
		m6.ReportFailure(0, errors.New("down"))
		m6.ReportFailure(1, errors.New("down"))
		if _, err := co6.Optimize(ctx, resolve(t, w.text, mustSchema(t, co6.Registry))); !errors.Is(err, ErrNoLiveWorkers) {
			t.Fatalf("run %d: dead-fleet search: %v", i, err)
		}
		if _, err := co6.ExecutePlan(ctx, p6); !errors.Is(err, ErrNoLiveWorkers) {
			t.Fatalf("run %d: dead-fleet execute: %v", i, err)
		}

		// Stalled dispatch under a budget deadline.
		co7, _ := localCluster(t, w, 2)
		faults7 := wrapFaults(co7)
		p7 := optimizeOn(t, co7, w.text)
		faults7[0].Stall(OpExecute, true)
		faults7[1].Stall(OpExecute, true)
		b := serve.NewBudget(25*time.Millisecond, 0)
		bctx, bcancel := b.Context(ctx)
		if _, err := co7.ExecutePlan(bctx, p7); !errors.Is(err, serve.ErrBudgetExceeded) {
			t.Fatalf("run %d: stalled dispatch: %v", i, err)
		}
		bcancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle to baseline %d\n%s",
				before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRejoinRefreshesStaleHosts: a worker that was down when the
// hosting snapshot was discovered carries an empty hosting set; once
// it is alive again, ExecutePlan must refresh the snapshot and use it
// — found live when a coordinator's cached snapshot outlived a worker
// restart and the *other* worker then died, stranding the query with
// ErrNoLiveWorkers despite a healthy fleet member.
func TestRejoinRefreshesStaleHosts(t *testing.T) {
	w := worlds[2]
	co, _ := localCluster(t, w, 2)
	wrapFaults(co)
	m := downMembership(co)
	p := optimizeOn(t, co, w.text)
	local := &exec.Runner{Registry: co.Registry, Cache: card.OneCall, K: 10}
	want, err := local.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	// The snapshot was taken while worker 0 was unreachable…
	hosts, err := co.DiscoverHosts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	hosts[0] = map[string]bool{}
	co.Hosts = hosts
	// …worker 0 is back up, and worker 1 has since died.
	m.ReportFailure(1, errors.New("probe: connection refused"))
	if m.State(1) != StateDown {
		t.Fatalf("worker 1 state %v, want down", m.State(1))
	}

	got, err := co.ExecutePlan(context.Background(), p)
	if err != nil {
		t.Fatalf("stale snapshot was not refreshed for the rejoined worker: %v", err)
	}
	assertSameExecution(t, want, got)
}

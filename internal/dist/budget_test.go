package dist_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mdq/internal/serve"
)

// TestExecutePlanBudgetCallCap: a call-capped budget on the
// coordinator's context aborts distributed execution with the typed
// budget error — the worker's derived budget trips near the
// services, and LocalTransport hands the typed error straight back.
func TestExecutePlanBudgetCallCap(t *testing.T) {
	w := worlds[0] // travel: needs dozens of calls
	co, _ := localCluster(t, w, 2)
	p := optimizeOn(t, co, w.text)
	b := serve.NewBudget(0, 2)
	ctx, cancel := b.Context(context.Background())
	defer cancel()
	res, err := co.ExecutePlan(ctx, p)
	if res != nil {
		t.Fatal("capped distributed run still produced a result")
	}
	if !errors.Is(err, serve.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestExecutePlanBudgetExpiredDeadline: an expired deadline is caught
// at dispatch before any fragment ships.
func TestExecutePlanBudgetExpiredDeadline(t *testing.T) {
	w := worlds[2] // zipf: cheapest world
	co, _ := localCluster(t, w, 2)
	p := optimizeOn(t, co, w.text)
	b := serve.NewBudget(time.Nanosecond, 0)
	time.Sleep(time.Millisecond)
	ctx, cancel := b.Context(context.Background())
	defer cancel()
	if _, err := co.ExecutePlan(ctx, p); !errors.Is(err, serve.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *serve.BudgetError
	if !errors.As(b.Err(), &be) || be.Reason != "deadline" {
		t.Fatalf("budget err = %v, want deadline violation", b.Err())
	}
}

// TestExecutePlanBudgetHTTP: a worker-side budget trip survives the
// HTTP wire as a typed error — the envelope/frame carries the
// budget marker and HTTPTransport re-wraps ErrBudgetExceeded, so the
// coordinator detects the violation even though its own budget
// never charged a call.
func TestExecutePlanBudgetHTTP(t *testing.T) {
	w := worlds[0]
	co, _ := httpCluster(t, w, 2)
	p := optimizeOn(t, co, w.text)
	b := serve.NewBudget(0, 1)
	ctx, cancel := b.Context(context.Background())
	defer cancel()
	_, err := co.ExecutePlan(ctx, p)
	if !errors.Is(err, serve.ErrBudgetExceeded) {
		t.Fatalf("err over HTTP = %v, want ErrBudgetExceeded", err)
	}
	// The violated dimension survives the wire too: the transport
	// rebuilds the typed *serve.BudgetError from the error frame.
	var be *serve.BudgetError
	if !errors.As(err, &be) || be.Reason != "calls" {
		t.Fatalf("err over HTTP = %v, want *BudgetError with reason \"calls\"", err)
	}
}

// TestExecutePlanBudgetAccounting: an uncapped budget rides along
// without interfering, and afterwards holds the total logical calls
// the fleet issued — the serving layer's per-request accounting.
func TestExecutePlanBudgetAccounting(t *testing.T) {
	w := worlds[0]
	co, _ := localCluster(t, w, 2)
	p := optimizeOn(t, co, w.text)
	b := serve.NewBudget(time.Minute, 0)
	ctx, cancel := b.Context(context.Background())
	defer cancel()
	res, err := co.ExecutePlan(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, v := range res.Stats.Calls {
		want += v
	}
	if want == 0 {
		t.Fatal("distributed run recorded no calls")
	}
	if got := b.Calls(); got != want {
		t.Fatalf("budget charged %d calls, fleet accounting says %d", got, want)
	}
}

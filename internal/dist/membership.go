package dist

// Fleet membership: a health-checked view over the coordinator's
// worker set. Each worker walks a three-state machine
//
//	up ──(SuspectAfter consecutive failures)──▶ suspect
//	suspect ──(DownAfter consecutive failures)──▶ down
//	any ──(one success)──▶ up
//
// fed from two sources: an active probe loop (Transport.Probe on a
// timer) and passive RPC feedback (the coordinator reports every
// search/sync/execute outcome it sees). Down workers are skipped by
// the dispatch paths — a dead worker costs one failed probe per
// interval instead of one timeout per query — and a single success
// resurrects them, so a restarted worker rejoins without operator
// action.

import (
	"context"
	"sync"
	"time"
)

// WorkerState is one worker's position in the membership state
// machine.
type WorkerState int

// The membership states, in order of degradation.
const (
	// StateUp marks a worker answering its probes and RPCs.
	StateUp WorkerState = iota
	// StateSuspect marks a worker with recent consecutive failures —
	// still dispatched to (it may just be slow), but on notice.
	StateSuspect
	// StateDown marks a worker past the failure threshold: dispatch
	// paths skip it until a probe or RPC succeeds again.
	StateDown
)

// String renders the state as its /fleet and metrics label.
func (s WorkerState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// Default membership thresholds and timings.
const (
	// DefaultSuspectAfter is the consecutive-failure count that moves
	// a worker up → suspect when Membership.SuspectAfter is unset.
	DefaultSuspectAfter = 1
	// DefaultDownAfter is the consecutive-failure count that moves a
	// worker to down when Membership.DownAfter is unset.
	DefaultDownAfter = 3
	// DefaultProbeTimeout bounds one health probe when
	// Membership.ProbeTimeout is unset.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultHealthInterval is the probe period HealthLoop uses when
	// given a non-positive interval.
	DefaultHealthInterval = 2 * time.Second
)

// WorkerHealth is one worker's row in a Membership snapshot — what
// GET /fleet serves.
type WorkerHealth struct {
	// Worker is the transport's name (URL or label).
	Worker string `json:"worker"`
	// State is "up", "suspect" or "down".
	State string `json:"state"`
	// ConsecutiveFailures counts failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastProbe is when the active prober last checked this worker
	// (zero if only passive feedback has been seen).
	LastProbe time.Time `json:"last_probe,omitempty"`
	// LastError is the most recent failure, if the worker is not up.
	LastError string `json:"last_error,omitempty"`
}

// Membership tracks the health of a fixed worker set. Construct with
// NewMembership; all methods are safe for concurrent use. State moves
// on *consecutive* failures only — one success resets the count — so
// an occasionally-flapping worker hovers between up and suspect
// instead of being evicted.
type Membership struct {
	// SuspectAfter is the consecutive failures before up → suspect
	// (0 means DefaultSuspectAfter).
	SuspectAfter int
	// DownAfter is the consecutive failures before → down (0 means
	// DefaultDownAfter).
	DownAfter int
	// ProbeTimeout bounds each active probe (0 means
	// DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// OnChange, when non-nil, is called (outside the membership lock)
	// on every state transition.
	OnChange func(worker string, from, to WorkerState)

	workers []Transport
	mu      sync.Mutex
	states  []WorkerState
	fails   []int
	lastErr []string
	probed  []time.Time
}

// NewMembership builds a membership view over workers (index-aligned
// with a Coordinator's Workers slice); everyone starts up.
func NewMembership(workers []Transport) *Membership {
	return &Membership{
		workers: workers,
		states:  make([]WorkerState, len(workers)),
		fails:   make([]int, len(workers)),
		lastErr: make([]string, len(workers)),
		probed:  make([]time.Time, len(workers)),
	}
}

func (m *Membership) suspectAfter() int {
	if m.SuspectAfter <= 0 {
		return DefaultSuspectAfter
	}
	return m.SuspectAfter
}

func (m *Membership) downAfter() int {
	if m.DownAfter <= 0 {
		return DefaultDownAfter
	}
	return m.DownAfter
}

func (m *Membership) probeTimeout() time.Duration {
	if m.ProbeTimeout <= 0 {
		return DefaultProbeTimeout
	}
	return m.ProbeTimeout
}

// State returns worker i's current state.
func (m *Membership) State(i int) WorkerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.states[i]
}

// Alive reports whether worker i may be dispatched to (anything but
// down).
func (m *Membership) Alive(i int) bool {
	return m.State(i) != StateDown
}

// ReportSuccess records a successful probe or RPC against worker i: a
// single success returns the worker to up.
func (m *Membership) ReportSuccess(i int) {
	m.mu.Lock()
	from := m.states[i]
	m.fails[i] = 0
	m.lastErr[i] = ""
	m.states[i] = StateUp
	cb := m.OnChange
	m.mu.Unlock()
	if cb != nil && from != StateUp {
		cb(m.workers[i].Name(), from, StateUp)
	}
}

// ReportFailure records a failed probe or RPC against worker i,
// advancing it through suspect to down at the consecutive-failure
// thresholds.
func (m *Membership) ReportFailure(i int, err error) {
	m.mu.Lock()
	from := m.states[i]
	m.fails[i]++
	if err != nil {
		m.lastErr[i] = err.Error()
	}
	to := from
	switch {
	case m.fails[i] >= m.downAfter():
		to = StateDown
	case m.fails[i] >= m.suspectAfter():
		if from != StateDown {
			to = StateSuspect
		}
	}
	m.states[i] = to
	cb := m.OnChange
	m.mu.Unlock()
	if cb != nil && to != from {
		cb(m.workers[i].Name(), from, to)
	}
}

// Check runs one active probe round: every worker is probed in
// parallel (each bounded by ProbeTimeout) and the outcomes are fed
// into the state machine. It returns how many workers are up
// afterwards.
func (m *Membership) Check(ctx context.Context) int {
	var wg sync.WaitGroup
	for i, tr := range m.workers {
		wg.Add(1)
		go func(i int, tr Transport) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, m.probeTimeout())
			defer cancel()
			err := tr.Probe(pctx)
			m.mu.Lock()
			m.probed[i] = time.Now()
			m.mu.Unlock()
			if err != nil {
				m.ReportFailure(i, err)
			} else {
				m.ReportSuccess(i)
			}
		}(i, tr)
	}
	wg.Wait()
	up := 0
	m.mu.Lock()
	for _, s := range m.states {
		if s == StateUp {
			up++
		}
	}
	m.mu.Unlock()
	return up
}

// HealthLoop probes the fleet every interval (non-positive means
// DefaultHealthInterval) until the returned stop function is called.
// Stop blocks until the loop (including any in-flight probe round)
// has exited.
func (m *Membership) HealthLoop(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultHealthInterval
	}
	ctx, cancel := context.WithCancel(context.Background())
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				m.Check(ctx)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-finished
		})
	}
}

// Snapshot returns every worker's current health row, index-aligned
// with the worker set.
func (m *Membership) Snapshot() []WorkerHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerHealth, len(m.workers))
	for i, tr := range m.workers {
		out[i] = WorkerHealth{
			Worker:              tr.Name(),
			State:               m.states[i].String(),
			ConsecutiveFailures: m.fails[i],
			LastProbe:           m.probed[i],
			LastError:           m.lastErr[i],
		}
	}
	return out
}

// Counts returns how many workers are in each state, keyed by the
// state's string — what the mdq_fleet_workers gauges export.
func (m *Membership) Counts() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts := map[string]int{"up": 0, "suspect": 0, "down": 0}
	for _, s := range m.states {
		counts[s.String()]++
	}
	return counts
}

package dist

// Fragment execution: the plane that runs a *winning* plan across the
// fleet instead of on the coordinator. The coordinator partitions the
// plan DAG into linear chains (see PartitionPlan), ships each chain —
// as the familiar skeleton wire form plus the tuples flowing into it —
// to a worker hosting the chain's services, and the worker runs it
// with the stock executor, streaming the tail's tuples back in
// batches. Cross-chain combination (parallel joins, head projection,
// k-truncation) happens at the coordinator with the executor's own
// join machinery, so the distributed result is byte-identical to a
// coordinator-local run. Fragment results also piggyback the worker's
// pending statistics-epoch bumps — the reverse gossip path: an
// executing worker whose feedback refreshed a profile reports it
// upstream, the coordinator re-bumps its own epochs, and a running
// GossipLoop fans the invalidation out to the rest of the fleet.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mdq/internal/abind"
	"mdq/internal/card"
	"mdq/internal/cq"
	"mdq/internal/exec"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/serve"
	"mdq/internal/service"
	"mdq/internal/trace"
)

// DefaultExecuteBatch is the tuple batch size of the fragment
// streaming wire when ExecuteRequest.BatchSize is unset.
const DefaultExecuteBatch = 64

// ExecuteRequest ships one plan fragment for worker-side execution.
// The full plan travels as its skeleton (query text, access-pattern
// assignment, topology, per-atom fetch factors) so the worker can
// rebuild it against its own registry; Atoms names the chain this
// worker actually runs, and Seeds carries the tuples flowing into the
// chain's head.
type ExecuteRequest struct {
	// Query is the resolved query as datalog text (cq.Query.String).
	Query string `json:"query"`
	// Assignment is the plan's access-pattern assignment, one pattern
	// string per atom.
	Assignment []string `json:"assignment"`
	// Topology is the plan's partial order over atoms.
	Topology *plan.Topology `json:"topology"`
	// Fetches is the phase-3 fetch factor per atom (0 keeps the
	// built default of 1).
	Fetches []int `json:"fetches"`
	// Atoms is the fragment chain, as atom indexes in execution order.
	Atoms []int `json:"atoms"`
	// CacheMode is the logical caching level name (card.ModeByName).
	CacheMode string `json:"cache_mode"`
	// Vars is the plan's variable layout in slot order — a cross-check
	// that both sides derived the same VarIndex for the tuple wire.
	Vars []string `json:"vars"`
	// Seeds are the tuples flowing into the chain's head.
	Seeds []WireTuple `json:"seeds"`
	// BatchSize overrides the streaming batch size (0 means
	// DefaultExecuteBatch).
	BatchSize int `json:"batch_size,omitempty"`
	// BudgetMillis is the time remaining in the coordinator's query
	// budget at dispatch, in milliseconds (0 = no deadline). Shipped
	// as a relative duration rather than an absolute instant so clock
	// skew between processes cannot inflate or collapse the limit; the
	// worker rebuilds a local serve.Budget from it, which aborts the
	// fragment when it expires.
	BudgetMillis int64 `json:"budget_millis,omitempty"`
	// BudgetCalls is the number of logical service calls remaining in
	// the coordinator's budget at dispatch (0 = uncapped). The worker
	// charges its fragment's calls against it.
	BudgetCalls int64 `json:"budget_calls,omitempty"`
	// TraceID and TraceSpan propagate the coordinator's trace context
	// over the wire — the trace header of the execute RPC, honored
	// identically by LocalTransport and HTTPTransport (which also
	// mirrors the ID in an X-Mdq-Trace-Id header). A non-empty TraceID
	// makes the worker record its fragment execution into a local
	// trace seeded with it and ship the spans back on
	// ExecuteResult.Spans; TraceSpan names the dispatching span for
	// correlation (the coordinator reparents the shipped spans under
	// it when splicing).
	TraceID   string `json:"trace_id,omitempty"`
	TraceSpan uint64 `json:"trace_span,omitempty"`
	// Est carries the coordinator's per-atom plan estimates,
	// index-aligned with the query's atoms. The worker rebuilds the
	// skeleton unpriced (buildSkeleton does not annotate), so without
	// this the worker-side node spans would audit against zeros; only
	// traced requests ship it.
	Est []trace.Estimate `json:"est,omitempty"`
}

// ExecuteResult is the final accounting frame of one fragment
// execution.
type ExecuteResult struct {
	// Tuples counts the tuples streamed back (a cross-check against
	// what the caller received).
	Tuples int `json:"tuples"`
	// Calls and Fetches are the worker-side per-service invocation
	// counters for the fragment.
	Calls   map[string]int64 `json:"calls,omitempty"`
	Fetches map[string]int64 `json:"fetches,omitempty"`
	// Bumps are the worker's pending local statistics-epoch bumps
	// (Worker.DrainBumps), piggybacked for the reverse gossip path.
	Bumps []service.EpochBump `json:"bumps,omitempty"`
	// Spans are the worker-side execution spans of a traced request
	// (ExecuteRequest.TraceID), in worker-local ID space — piggybacked
	// on the accounting frame exactly like the epoch bumps above; the
	// coordinator splices them under its dispatch span
	// (trace.Trace.Splice).
	Spans []trace.Span `json:"spans,omitempty"`
}

// ExecuteFrame is one line of the streamed fragment-execution HTTP
// response (newline-delimited JSON): zero or more Batch frames, then
// exactly one Done frame — or an Error frame if execution failed
// after streaming began.
type ExecuteFrame struct {
	// Batch is one batch of produced tuples.
	Batch []WireTuple `json:"batch,omitempty"`
	// Seq numbers the batch frames of one execution 0, 1, 2, … so the
	// receiving transport can detect a gap (lost frames) and the
	// coordinator's failover resume cursor has a contiguity guarantee
	// to lean on.
	Seq int `json:"seq,omitempty"`
	// Done carries the final accounting; its presence ends the stream.
	Done *ExecuteResult `json:"done,omitempty"`
	// Error aborts the stream with a worker-side failure.
	Error string `json:"error,omitempty"`
	// BudgetExceeded marks Error as a query-budget violation (the
	// worker's rebuilt serve.Budget tripped), so the coordinator's
	// transport can reconstruct the typed serve.ErrBudgetExceeded that
	// JSON stringification would otherwise lose. BudgetReason and
	// BudgetLimit carry the tripped *serve.BudgetError's fields so the
	// reconstruction keeps the violated dimension too.
	BudgetExceeded bool   `json:"budget_exceeded,omitempty"`
	BudgetReason   string `json:"budget_reason,omitempty"`
	BudgetLimit    string `json:"budget_limit,omitempty"`
}

// buildSkeleton rebuilds a plan from its wire skeleton (assignment
// pattern strings + topology) for a resolved query, using the local
// registry's join-method chooser. Both the coordinator's winner
// rebuild and the worker's fragment rebuild go through it, which is
// what keeps the two sides' plan DAGs — node IDs, join methods,
// predicate placement — structurally identical.
func buildSkeleton(q *cq.Query, assignment []string, topo *plan.Topology, chooser plan.MethodChooser) (*plan.Plan, error) {
	if topo == nil || len(assignment) != len(q.Atoms) {
		return nil, fmt.Errorf("dist: skeleton has %d patterns for %d atoms", len(assignment), len(q.Atoms))
	}
	asn := make(abind.Assignment, len(assignment))
	for i, s := range assignment {
		pat, err := schema.ParsePattern(s)
		if err != nil {
			return nil, fmt.Errorf("dist: skeleton assignment: %w", err)
		}
		asn[i] = pat
	}
	p, err := plan.Build(q, asn, topo, plan.Options{ChooseMethod: chooser})
	if err != nil {
		return nil, fmt.Errorf("dist: rebuilding skeleton: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dist: rebuilt skeleton invalid: %w", err)
	}
	return p, nil
}

// ExecuteFragment rebuilds the shipped plan skeleton against the
// worker's registry and runs the named fragment chain with the stock
// executor (exec.Runner.RunFragment), streaming produced tuples to
// sink in batches as the chain's tail emits them. The final result
// carries the worker-side call accounting and the worker's pending
// statistics-epoch bumps: with a Feedback policy set, the fragment's
// traffic has just been folded into the local profiles, and the bumps
// report that upstream (reverse gossip). A nil sink discards tuples
// (counting only).
func (w *Worker) ExecuteFragment(ctx context.Context, req ExecuteRequest, sink func(batch []WireTuple) error) (*ExecuteResult, error) {
	if w.ExecuteDisabled {
		return nil, errors.New("dist: fragment execution is disabled on this worker")
	}
	mode, ok := card.ModeByName(req.CacheMode)
	if !ok {
		return nil, fmt.Errorf("dist: unknown cache mode %q", req.CacheMode)
	}
	q, err := cq.Parse(req.Query)
	if err != nil {
		return nil, fmt.Errorf("dist: parsing shipped query: %w", err)
	}
	sch, err := w.reg.Schema()
	if err != nil {
		return nil, err
	}
	if err := q.Resolve(sch); err != nil {
		return nil, fmt.Errorf("dist: resolving shipped query: %w", err)
	}
	p, err := buildSkeleton(q, req.Assignment, req.Topology, w.reg.MethodChooser())
	if err != nil {
		return nil, err
	}
	if len(req.Fetches) != len(p.ServiceNode) {
		return nil, fmt.Errorf("dist: fragment has %d fetch factors for %d atoms", len(req.Fetches), len(p.ServiceNode))
	}
	for i, n := range p.ServiceNode {
		if f := req.Fetches[i]; f > 0 {
			n.Fetches = f
		}
	}
	// A rebuilt skeleton is unpriced; a traced request ships the
	// coordinator's estimates so node spans carry them (the audit
	// compares against the same numbers the plan was chosen by).
	if len(req.Est) == len(p.ServiceNode) {
		for i, n := range p.ServiceNode {
			n.TIn, n.Calls, n.TOut = req.Est[i].TIn, req.Est[i].Calls, req.Est[i].TOut
		}
	}
	ix := exec.NewVarIndex(p)
	if len(req.Vars) != ix.Len() {
		return nil, fmt.Errorf("dist: fragment layout has %d vars, local plan has %d (registries disagree?)", len(req.Vars), ix.Len())
	}
	for i, v := range ix.Vars() {
		if string(v) != req.Vars[i] {
			return nil, fmt.Errorf("dist: fragment layout slot %d is %s, local plan has %s (registries disagree?)", i, req.Vars[i], v)
		}
	}
	seeds := make([]exec.Tuple, len(req.Seeds))
	for i, wt := range req.Seeds {
		if seeds[i], err = decodeTuple(wt, ix.Len()); err != nil {
			return nil, err
		}
	}

	// The coordinator ships the remaining query budget with the
	// fragment; rebuild it locally so the stock invoker charge path
	// enforces it near the services (and the fragment aborts cleanly —
	// not just when the coordinator drops the connection). Any budget
	// already riding the context is detached first: over LocalTransport
	// the coordinator's own Budget would flow straight into the invoker
	// and be charged per call — double-counting everything the
	// coordinator charges again when the accounting frame lands, and
	// leaking charges from attempts that die mid-stream and replay
	// elsewhere. The shipped envelope is the whole contract, exactly as
	// over the wire.
	ctx = serve.WithBudget(ctx, nil)
	if req.BudgetMillis > 0 || req.BudgetCalls > 0 {
		wb := serve.NewBudget(time.Duration(req.BudgetMillis)*time.Millisecond, req.BudgetCalls)
		var cancel context.CancelFunc
		ctx, cancel = wb.Context(ctx)
		defer cancel()
	}
	// The trace context detaches the same way the budget does: over
	// LocalTransport the coordinator's span would flow straight into
	// the runner and record worker node spans directly into the
	// coordinator's trace — bypassing the piggyback path the wire uses,
	// so local and HTTP fleets would produce different trees. Instead
	// the worker always records into its own trace (seeded with the
	// shipped ID, parent 0 — a coordinator span ID could collide with
	// worker-local IDs and corrupt the splice remap) and ships the
	// snapshot back on the result, exactly as over the wire; Splice
	// reparents the root under the dispatching span.
	ctx = trace.With(ctx, nil)
	var wtr *trace.Trace
	var rootSp *trace.Span
	if req.TraceID != "" {
		wtr = trace.New(req.TraceID)
		rootSp = wtr.Root("worker.fragment")
		rootSp.Set("atoms", fmt.Sprint(req.Atoms))
		ctx = trace.With(ctx, rootSp)
	}

	batchSize := req.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultExecuteBatch
	}
	var batch []WireTuple
	count := 0
	flush := func() error {
		if len(batch) == 0 || sink == nil {
			batch = nil
			return nil
		}
		err := sink(batch)
		batch = nil
		return err
	}
	runner := &exec.Runner{Registry: w.reg, Cache: mode, Feedback: w.Feedback, BufferSize: w.BufferSize, ResultCache: w.ResultCache}
	res, err := runner.RunFragment(ctx, p, req.Atoms, seeds, func(t exec.Tuple) error {
		batch = append(batch, encodeTuple(t))
		count++
		if len(batch) >= batchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	rootSp.End()
	return &ExecuteResult{
		Tuples:  count,
		Calls:   res.Stats.Calls,
		Fetches: res.Stats.Fetches,
		Bumps:   w.DrainBumps(),
		Spans:   wtr.Spans(),
	}, nil
}

// DiscoverHosts queries every live worker's service list (one
// Transport.Services call each) and returns the hosting sets
// ExecutePlan partitions fragments by, index-aligned with Workers.
// Assign the result to Coordinator.Hosts to skip re-discovery on
// subsequent executions — hosting is static for a fleet's lifetime in
// the common deployment (mdqserve does exactly this at startup). A
// worker the membership view marks down gets an empty hosting set (it
// is no candidate for anything until it rejoins) rather than failing
// the discovery.
func (c *Coordinator) DiscoverHosts(ctx context.Context) ([]map[string]bool, error) {
	hosts := make([]map[string]bool, len(c.Workers))
	for i, tr := range c.Workers {
		if !c.alive(i) {
			hosts[i] = map[string]bool{}
			continue
		}
		names, err := tr.Services(ctx)
		c.reportOutcome(i, err)
		if err != nil {
			return nil, fmt.Errorf("dist: listing services of %s: %w", tr.Name(), err)
		}
		hosts[i] = make(map[string]bool, len(names))
		for _, n := range names {
			hosts[i][n] = true
		}
	}
	return hosts, nil
}

// AbsorbBumps applies worker-originated statistics-epoch bumps to the
// coordinator's registry: each reported service gets a local epoch
// bump, which invalidates the coordinator's subscribed plan caches
// and — through a running GossipLoop — fans the invalidation out to
// every worker in the fleet. This is the coordinator half of the
// reverse gossip path (worker → coordinator → fleet). The epoch
// numbers a worker reports are meaningless across processes (every
// registry counts its own refreshes), so only the service names
// travel onward, renumbered by the coordinator's registry.
func (c *Coordinator) AbsorbBumps(bumps []service.EpochBump) {
	for _, b := range bumps {
		c.Registry.BumpEpoch(b.Service)
	}
}

// sharesRegistry reports whether a transport's worker runs over the
// coordinator's own registry (in-process fleets built from one
// System share it). Such a worker's epoch bumps are already local:
// absorbing them again would re-bump the shared counters on every
// execution, keeping every cache perpetually stale.
func (c *Coordinator) sharesRegistry(tr Transport) bool {
	switch t := tr.(type) {
	case LocalTransport:
		return t.Worker.Registry() == c.Registry
	case *LocalTransport:
		return t.Worker.Registry() == c.Registry
	default:
		return false
	}
}

// ExecutePlan executes a winning plan across the fleet as a
// coordinator-side streaming dataflow: the plan is partitioned into
// linear fragments (PartitionPlan), and every coordinator-visible
// node — the input, each fragment, each parallel join, the output —
// runs as its own goroutine connected by bounded channels
// (BufferSize tuples per arc). Incomparable fragments (parallel join
// branches) therefore dispatch concurrently, each worker's ndjson
// batch stream is decoded into its arc as frames arrive, and the
// joins consume those arcs incrementally (exec.StreamJoin), so
// wall-clock for a bushy plan tracks the slowest branch rather than
// the sum and coordinator memory is bounded by buffer size rather
// than intermediate-result size. Reaching K at the output cancels the
// in-flight fragment streams (early termination, §2.2). A fragment's
// seed tuples are still materialized before dispatch — the execute
// wire is request-then-stream — so the bounded-memory claim covers
// fragment *result* streams, which is where proliferative cardinality
// lives.
//
// Because fragments reproduce their nodes' in-plan tuple streams
// exactly and the streaming joins apply the identical plane
// traversals, the result is byte-identical to running the plan on the
// coordinator with exec.Runner (differential-tested on the simweb
// worlds over both transports).
//
// Worker-side fragment executions run under each worker's own
// feedback policy; bumps they report are absorbed into this registry
// (AbsorbBumps) unless the worker shares it.
func (c *Coordinator) ExecutePlan(ctx context.Context, p *plan.Plan) (*exec.Result, error) {
	if len(c.Workers) == 0 {
		return nil, errors.New("dist: coordinator has no workers")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// The request budget travels with the context: the deadline is
	// applied to ctx (so in-flight fragment streams abort over the
	// wire when it expires), fragments ship the remaining budget for
	// worker-side enforcement, and the worker-reported call counts are
	// charged here so the cap is global across fragments.
	budget := serve.FromContext(ctx)
	if budget != nil {
		if err := budget.Err(); err != nil {
			return nil, err
		}
		var cancel context.CancelFunc
		ctx, cancel = budget.Context(ctx)
		defer cancel()
	}
	start := time.Now()
	hosts := c.Hosts
	if hosts == nil {
		var err error
		if hosts, err = c.DiscoverHosts(ctx); err != nil {
			return nil, err
		}
	} else {
		// Self-heal a stale hosting snapshot: a worker that was
		// unreachable when Hosts was discovered carries an empty set,
		// and would stay excluded from every candidate list forever —
		// even after rejoining. If such a worker is alive now, refresh
		// so it hosts fragments again (best-effort: on a discovery
		// error the stale snapshot still dispatches to the rest).
		for i := range hosts {
			if len(hosts[i]) == 0 && c.alive(i) {
				if fresh, err := c.DiscoverHosts(ctx); err == nil {
					hosts = fresh
				}
				break
			}
		}
	}
	if len(hosts) != len(c.Workers) {
		return nil, fmt.Errorf("dist: %d hosting sets for %d workers", len(hosts), len(c.Workers))
	}
	frags, err := PartitionPlan(p, hosts)
	if err != nil {
		return nil, err
	}
	headFrag := make(map[int]Fragment, len(frags))
	for _, f := range frags {
		headFrag[p.ServiceNode[f.Atoms[0]].ID] = f
	}

	ix := exec.NewVarIndex(p)
	vars := make([]string, ix.Len())
	for i, v := range ix.Vars() {
		vars[i] = string(v)
	}
	asn := make([]string, len(p.Assignment))
	for i, pat := range p.Assignment {
		asn[i] = pat.String()
	}
	fetches := make([]int, len(p.ServiceNode))
	for i, n := range p.ServiceNode {
		fetches[i] = n.Fetches
	}
	base := ExecuteRequest{
		Query:      p.Query.String(),
		Assignment: asn,
		Topology:   p.Topology,
		Fetches:    fetches,
		CacheMode:  c.Mode.String(),
		Vars:       vars,
		BatchSize:  c.BatchSize,
	}
	// Under a traced context, fragments ship the coordinator plan's
	// estimates (the worker rebuilds unpriced) and each dispatch gets
	// its own span; untraced executions ship neither.
	qsp := trace.From(ctx)
	if qsp != nil {
		base.Est = make([]trace.Estimate, len(p.ServiceNode))
		for i, n := range p.ServiceNode {
			base.Est[i] = trace.Estimate{TIn: n.TIn, Calls: n.Calls, TOut: n.TOut}
		}
	}

	bufSize := c.BufferSize
	if bufSize <= 0 {
		bufSize = exec.DefaultBufferSize
	}

	// The coordinator-visible dataflow nodes are the input, each
	// fragment (standing in for its whole chain, producing as its
	// tail), each parallel join, and the output. Chain-interior nodes
	// live inside a fragment and never carry a coordinator arc.
	tailFrag := make(map[int]Fragment, len(frags))
	for _, f := range frags {
		tailFrag[p.ServiceNode[f.Atoms[len(f.Atoms)-1]].ID] = f
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One bounded channel per coordinator arc, indexed by (from, to).
	type arcKey struct{ from, to int }
	arcs := map[arcKey]chan exec.Tuple{}
	var output *plan.Node
	for _, n := range p.Nodes {
		switch n.Kind {
		case plan.Output:
			output = n
			continue
		case plan.Service:
			if _, ok := tailFrag[n.ID]; !ok {
				continue // chain-interior: no coordinator arc
			}
		}
		for _, m := range n.Out {
			arcs[arcKey{n.ID, m.ID}] = make(chan exec.Tuple, bufSize)
		}
	}
	if output == nil {
		return nil, fmt.Errorf("dist: plan for query %s has no output node", p.Query.Name)
	}
	outsOf := func(n *plan.Node) []chan exec.Tuple {
		outs := make([]chan exec.Tuple, len(n.Out))
		for i, m := range n.Out {
			outs[i] = arcs[arcKey{n.ID, m.ID}]
		}
		return outs
	}
	send := func(outs []chan exec.Tuple, t exec.Tuple) error {
		for _, ch := range outs {
			select {
			case ch <- t:
			case <-ctx.Done():
				return context.Canceled
			}
		}
		return nil
	}
	closeArcs := func(outs []chan exec.Tuple) {
		for _, ch := range outs {
			close(ch)
		}
	}

	res := &exec.Result{
		Head:  p.Query.Head,
		Stats: exec.Stats{Calls: map[string]int64{}, Fetches: map[string]int64{}},
	}
	var (
		mu       sync.Mutex
		rows     [][]schema.Value
		tuples   []exec.Tuple
		firstRow time.Duration
	)
	// reached distinguishes our own k-satisfied cancellation from an
	// external abort: once set, sibling fragments cancelled mid-stream
	// are an orderly shutdown, not a failure — their errors (and any
	// late budget charge the cap would reject) are swallowed, because
	// the answer is already complete.
	var reached atomic.Bool

	// runFragment collects the chain's seed tuples (the execute wire
	// ships them with the request), dispatches, and feeds the worker's
	// batch stream into the tail's arcs tuple by tuple as frames
	// arrive. Calls are charged against the budget when the fragment's
	// accounting frame lands — a fragment cancelled mid-stream never
	// reports, so exec.Stats counts exactly the completed fragments,
	// and a retried fragment charges exactly once (only the completed
	// attempt reports).
	//
	// Failover: a transiently failed dispatch re-runs on the next live
	// hosting candidate. `sent` is the resume cursor — how many tuples
	// earlier attempts already forwarded downstream. Fragment
	// executions are deterministic (same seeds, same skeleton, same
	// per-worker registry contract), so the replacement worker's stream
	// reproduces the dead worker's tuple order exactly; skipping the
	// first `sent` tuples splices the two streams without duplicates,
	// and the joins downstream never notice the failure.
	runFragment := func(f Fragment) error {
		head := p.ServiceNode[f.Atoms[0]]
		tail := p.ServiceNode[f.Atoms[len(f.Atoms)-1]]
		outs := outsOf(tail)
		defer closeArcs(outs)
		var seeds []exec.Tuple
		for t := range arcs[arcKey{head.In[0].ID, head.ID}] {
			seeds = append(seeds, t)
		}
		if ctx.Err() != nil {
			return context.Canceled
		}
		req := base
		req.Atoms = f.Atoms
		req.Seeds = encodeTuples(seeds)
		cands := f.Candidates
		if len(cands) == 0 {
			cands = []int{f.Worker}
		}
		home := 0
		for i, w := range cands {
			if w == f.Worker {
				home = i
				break
			}
		}
		sent := 0 // resume cursor: tuples already forwarded downstream
		var lastErr error
		for attempt := 0; ; attempt++ {
			target := -1
			for off := 0; off < len(cands); off++ {
				if w := cands[(home+attempt+off)%len(cands)]; c.alive(w) {
					target = w
					break
				}
			}
			if target < 0 {
				if reached.Load() || ctx.Err() != nil {
					return context.Canceled
				}
				if lastErr != nil {
					return fmt.Errorf("dist: fragment %v: %w (last failure: %v)", f.Atoms, ErrNoLiveWorkers, lastErr)
				}
				return fmt.Errorf("dist: fragment %v: %w", f.Atoms, ErrNoLiveWorkers)
			}
			tr := c.Workers[target]
			// One dispatch span per attempt: a retried fragment shows up
			// as sibling spans whose attempt/error attrs narrate the
			// failover; the completed attempt carries the spliced worker
			// spans.
			dsp := qsp.Child("dist.execute.dispatch")
			dsp.Set("worker", tr.Name())
			dsp.Set("atoms", fmt.Sprint(f.Atoms))
			dsp.Set("attempt", strconv.Itoa(attempt))
			req.TraceID, req.TraceSpan = dsp.TraceID(), dsp.SpanID()
			req.BudgetMillis, req.BudgetCalls = 0, 0
			if budget != nil {
				if err := budget.Err(); err != nil {
					return err
				}
				if rem, ok := budget.Remaining(); ok {
					req.BudgetMillis = int64(rem / time.Millisecond)
					if req.BudgetMillis < 1 {
						req.BudgetMillis = 1
					}
				}
				if left, ok := budget.CallsLeft(); ok {
					if left == 0 && len(req.Seeds) > 0 {
						// The cap is exactly consumed and this fragment
						// has tuples to process: the call it would issue
						// trips the budget, so abort before shipping.
						return budget.Charge(1)
					}
					req.BudgetCalls = left
				}
			}
			skip := sent
			streamed := 0
			fres, err := tr.ExecuteFragment(ctx, req, func(batch []WireTuple) error {
				for _, wt := range batch {
					streamed++
					if skip > 0 {
						// Replayed prefix: an earlier attempt already
						// forwarded this tuple before dying.
						skip--
						continue
					}
					t, derr := decodeTuple(wt, ix.Len())
					if derr != nil {
						return derr
					}
					if serr := send(outs, t); serr != nil {
						return serr
					}
					sent++
				}
				return nil
			})
			c.reportOutcome(target, err)
			if err != nil {
				dsp.Set("error", err.Error())
				dsp.End()
				if reached.Load() {
					return context.Canceled
				}
				// A budget trip surfaces as the budget error, not as the
				// transport failure it caused (cancelled stream, worker
				// abort) and never as a retry-exhausted transport error:
				// the serving layer maps it to a clean JSON
				// budget-exceeded response.
				if budget != nil {
					if berr := budget.Err(); berr != nil {
						return berr
					}
				}
				if ctx.Err() != nil {
					return context.Canceled
				}
				if IsTransient(err) && attempt < c.Retry.maxRetries() {
					lastErr = err
					c.noteRetry(OpExecute, target)
					if werr := c.Retry.wait(ctx, attempt); werr != nil {
						return context.Canceled
					}
					continue
				}
				return fmt.Errorf("dist: fragment %v on %s: %w", f.Atoms, tr.Name(), err)
			}
			dsp.Splice(fres.Spans)
			dsp.Set("tuples", strconv.Itoa(fres.Tuples))
			dsp.End()
			if fres.Tuples != streamed {
				return fmt.Errorf("dist: fragment %v on %s reported %d tuples, streamed %d", f.Atoms, tr.Name(), fres.Tuples, streamed)
			}
			if streamed < sent {
				// The replay produced fewer tuples than the cursor says
				// were already forwarded: the replacement worker did not
				// reproduce the dead one's stream (registries disagree?) —
				// fail loudly rather than join a corrupted splice.
				return fmt.Errorf("dist: fragment %v on %s replayed %d tuples below resume cursor %d", f.Atoms, tr.Name(), streamed, sent)
			}
			var fragCalls int64
			mu.Lock()
			for name, v := range fres.Calls {
				res.Stats.Calls[name] += v
				fragCalls += v
			}
			for name, v := range fres.Fetches {
				res.Stats.Fetches[name] += v
			}
			mu.Unlock()
			if budget != nil {
				if err := budget.Charge(fragCalls); err != nil && !reached.Load() {
					return err
				}
			}
			if len(fres.Bumps) > 0 && !c.sharesRegistry(tr) {
				c.AbsorbBumps(fres.Bumps)
			}
			return nil
		}
	}

	errc := make(chan error, len(p.Nodes))
	var wg sync.WaitGroup
	spawn := func(run func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := run(); err != nil && err != context.Canceled {
				select {
				case errc <- err:
				default:
				}
				cancel()
			}
		}()
	}
	for _, n := range p.Nodes {
		n := n
		switch n.Kind {
		case plan.Input:
			spawn(func() error {
				outs := outsOf(n)
				defer closeArcs(outs)
				return send(outs, exec.NewTuple(ix))
			})
		case plan.Service:
			f, ok := headFrag[n.ID]
			if !ok {
				continue // chain-interior: runs inside its fragment
			}
			spawn(func() error { return runFragment(f) })
		case plan.Join:
			spawn(func() error {
				outs := outsOf(n)
				defer closeArcs(outs)
				// Coordinator-side joins get the same node spans the
				// in-process runner records, so the distributed tree audits
				// every plan node, not just the shipped chains.
				jsp := qsp.Child("node:" + n.Label())
				jsp.SetEst(n.TIn, n.Calls, n.TOut)
				jsp.AddObs(0, 0, 0, 0)
				defer jsp.End()
				in0 := arcs[arcKey{n.In[0].ID, n.ID}]
				in1 := arcs[arcKey{n.In[1].ID, n.ID}]
				return exec.StreamJoin(ctx, n.Method, in0, in1, n.JoinPreds, ix, func(t exec.Tuple) error {
					jsp.AddObs(0, 1, 0, 0)
					return send(outs, t)
				}, c.JoinExcessPeak)
			})
		case plan.Output:
			spawn(func() error {
				for t := range arcs[arcKey{n.In[0].ID, n.ID}] {
					row, perr := t.Project(ix, p.Query.Head)
					if perr != nil {
						return perr
					}
					mu.Lock()
					if !reached.Load() {
						rows = append(rows, row)
						tuples = append(tuples, t)
						if len(rows) == 1 {
							firstRow = time.Since(start)
						}
						if c.K > 0 && len(rows) >= c.K {
							reached.Store(true)
							cancel()
						}
					}
					mu.Unlock()
				}
				return nil
			})
		}
	}
	wg.Wait()
	select {
	case err := <-errc:
		if budget != nil {
			if berr := budget.Err(); berr != nil {
				return nil, berr
			}
		}
		return nil, err
	default:
	}
	// Distinguish our own k-satisfied cancellation from an external
	// one (caller cancel, budget deadline): an externally cancelled
	// run must not pass as a complete result.
	if ctx.Err() != nil && !reached.Load() {
		if budget != nil {
			if berr := budget.Err(); berr != nil {
				return nil, berr
			}
		}
		return nil, ctx.Err()
	}
	res.Rows = rows
	res.Tuples = tuples
	res.FirstRow = firstRow
	res.Elapsed = time.Since(start)
	return res, nil
}

package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"mdq/internal/opt"
	"mdq/internal/serve"
	"mdq/internal/service"
)

// Transport is a coordinator's handle on one worker. HTTPTransport
// speaks the wire protocol to a remote Worker.Handler; LocalTransport
// calls an in-process Worker directly, so tests drive the whole
// protocol without sockets.
type Transport interface {
	// Name identifies the worker in errors and logs.
	Name() string
	// Search runs one shard search to completion.
	Search(ctx context.Context, req SearchRequest) (*SearchResult, error)
	// Sync performs one bound exchange for a running search: offer
	// the coordinator's bound, learn the worker's (0 = no info).
	Sync(ctx context.Context, id string, bound float64) (float64, error)
	// Gossip delivers statistics-epoch bumps to the worker's cache.
	Gossip(ctx context.Context, bumps []service.EpochBump) error
	// ImportTemplates ships serialized template entries for warmup.
	ImportTemplates(ctx context.Context, entries []opt.TemplateWireEntry) (int, error)
	// Services lists the service names the worker's registry hosts —
	// what the coordinator partitions plan fragments by.
	Services(ctx context.Context) ([]string, error)
	// ExecuteFragment runs one plan fragment on the worker, streaming
	// tuple batches to sink as the fragment's tail produces them, and
	// returns the final accounting frame.
	ExecuteFragment(ctx context.Context, req ExecuteRequest, sink func(batch []WireTuple) error) (*ExecuteResult, error)
	// Probe checks the worker is alive and serving — the health check
	// Membership feeds its state machine with. It must be cheap: no
	// search, no execution, just liveness.
	Probe(ctx context.Context) error
}

// LocalTransport runs a Worker in-process. It is the transport tier-1
// tests exercise the full coordinator/worker protocol through —
// sharded search, bound-sync, gossip, warmup — with no sockets (the
// dev environments are single-CPU, so correctness, not wall-clock, is
// what in-process distribution demonstrates).
type LocalTransport struct {
	// Worker is the in-process worker.
	Worker *Worker
	// Label names the worker (defaults to "local").
	Label string
}

// Name implements Transport.
func (t LocalTransport) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return "local"
}

// Search implements Transport.
func (t LocalTransport) Search(ctx context.Context, req SearchRequest) (*SearchResult, error) {
	return t.Worker.Search(ctx, req)
}

// Sync implements Transport.
func (t LocalTransport) Sync(_ context.Context, id string, bound float64) (float64, error) {
	return t.Worker.Sync(id, bound), nil
}

// Gossip implements Transport.
func (t LocalTransport) Gossip(_ context.Context, bumps []service.EpochBump) error {
	t.Worker.Gossip(bumps)
	return nil
}

// ImportTemplates implements Transport.
func (t LocalTransport) ImportTemplates(_ context.Context, entries []opt.TemplateWireEntry) (int, error) {
	return t.Worker.ImportTemplates(entries), nil
}

// Services implements Transport.
func (t LocalTransport) Services(_ context.Context) ([]string, error) {
	var names []string
	for _, svc := range t.Worker.Registry().Services() {
		names = append(names, svc.Signature().Name)
	}
	return names, nil
}

// ExecuteFragment implements Transport.
func (t LocalTransport) ExecuteFragment(ctx context.Context, req ExecuteRequest, sink func(batch []WireTuple) error) (*ExecuteResult, error) {
	return t.Worker.ExecuteFragment(ctx, req, sink)
}

// Probe implements Transport: an in-process worker is alive by
// construction.
func (t LocalTransport) Probe(context.Context) error { return nil }

// HTTPTransport speaks the worker protocol over HTTP (JSON bodies,
// mdqserve-style error envelopes). The zero value of HTTP means
// http.DefaultClient.
type HTTPTransport struct {
	// Base is the worker's base URL (no trailing slash), e.g.
	// "http://worker-1:8090".
	Base string
	// HTTP overrides the client (nil means http.DefaultClient).
	HTTP *http.Client
}

// Name implements Transport.
func (t *HTTPTransport) Name() string { return t.Base }

func (t *HTTPTransport) client() *http.Client {
	if t.HTTP != nil {
		return t.HTTP
	}
	return http.DefaultClient
}

// classifyStatus wraps err as transient when the status is a server
// failure (5xx: a crashed handler, an overloaded proxy, a restarting
// worker) and leaves client errors permanent (4xx: the request itself
// is wrong; retrying repeats the failure).
func classifyStatus(ctx context.Context, status int, err error) error {
	if status >= 500 {
		return transientUnless(ctx, err)
	}
	return err
}

// post sends one JSON request and decodes the JSON response,
// surfacing the worker's error envelope on non-200s. A non-empty
// traceID is mirrored in an X-Mdq-Trace-Id header so HTTP-level
// middleware (access logs, proxies) can correlate the RPC with the
// query trace without parsing the body. Transport-layer failures
// (refused, reset, timed out, 5xx) come back wrapped in
// TransientError so the coordinator's retry loops can classify them;
// protocol errors stay permanent.
func (t *HTTPTransport) post(ctx context.Context, path, traceID string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set("X-Mdq-Trace-Id", traceID)
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return transientUnless(ctx, fmt.Errorf("dist: %s%s: %w", t.Base, path, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env apiError
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&env) == nil && env.Error != "" {
			return classifyStatus(ctx, resp.StatusCode, fmt.Errorf("dist: %s%s: %s", t.Base, path, env.Error))
		}
		return classifyStatus(ctx, resp.StatusCode, fmt.Errorf("dist: %s%s returned %s", t.Base, path, resp.Status))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A 200 whose body dies mid-decode is a dropped connection.
		return transientUnless(ctx, fmt.Errorf("dist: %s%s response: %w", t.Base, path, err))
	}
	return nil
}

// Search implements Transport.
func (t *HTTPTransport) Search(ctx context.Context, req SearchRequest) (*SearchResult, error) {
	var res SearchResult
	if err := t.post(ctx, "/dist/search", req.TraceID, req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Sync implements Transport.
func (t *HTTPTransport) Sync(ctx context.Context, id string, bound float64) (float64, error) {
	var res SyncResponse
	if err := t.post(ctx, "/dist/sync", "", SyncRequest{ID: id, Bound: bound}, &res); err != nil {
		return 0, err
	}
	return res.Bound, nil
}

// Gossip implements Transport.
func (t *HTTPTransport) Gossip(ctx context.Context, bumps []service.EpochBump) error {
	var res ImportResponse
	return t.post(ctx, "/dist/gossip", "", GossipRequest{Bumps: bumps}, &res)
}

// ImportTemplates implements Transport.
func (t *HTTPTransport) ImportTemplates(ctx context.Context, entries []opt.TemplateWireEntry) (int, error) {
	var res ImportResponse
	if err := t.post(ctx, "/dist/templates", "", entries, &res); err != nil {
		return 0, err
	}
	return res.Imported, nil
}

// Services implements Transport (GET /dist/info).
func (t *HTTPTransport) Services(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+"/dist/info", nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, transientUnless(ctx, fmt.Errorf("dist: %s/dist/info: %w", t.Base, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, classifyStatus(ctx, resp.StatusCode,
			fmt.Errorf("dist: %s/dist/info returned %s", t.Base, resp.Status))
	}
	var info struct {
		Services []string `json:"services"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, transientUnless(ctx, err)
	}
	return info.Services, nil
}

// Probe implements Transport: GET /dist/health. Any failure — refused
// connection, timeout, non-200 — is transient: health is exactly the
// condition expected to change.
func (t *HTTPTransport) Probe(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+"/dist/health", nil)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return transientUnless(ctx, fmt.Errorf("dist: %s/dist/health: %w", t.Base, err))
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return transientUnless(ctx, fmt.Errorf("dist: %s/dist/health returned %s", t.Base, resp.Status))
	}
	return nil
}

// retypeBudget rebuilds the typed budget violation a worker's JSON
// response stringified: the result always matches
// errors.Is(serve.ErrBudgetExceeded), and when the violated dimension
// traveled on the wire it matches errors.As(*serve.BudgetError) too.
func retypeBudget(msg, reason, limit string) error {
	if reason == "" {
		return fmt.Errorf("%s: %w", msg, serve.ErrBudgetExceeded)
	}
	return fmt.Errorf("%s: %w", msg, &serve.BudgetError{Reason: reason, Limit: limit})
}

// ExecuteFragment implements Transport: POST /dist/execute, reading
// the newline-delimited frame stream — tuple batches to sink as they
// arrive, then the final accounting frame.
func (t *HTTPTransport) ExecuteFragment(ctx context.Context, req ExecuteRequest, sink func(batch []WireTuple) error) (*ExecuteResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+"/dist/execute", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if req.TraceID != "" {
		hreq.Header.Set("X-Mdq-Trace-Id", req.TraceID)
	}
	resp, err := t.client().Do(hreq)
	if err != nil {
		return nil, transientUnless(ctx, fmt.Errorf("dist: %s/dist/execute: %w", t.Base, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env apiError
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&env) == nil && env.Error != "" {
			if env.BudgetExceeded {
				// Re-type the worker's budget trip: stringified over the
				// wire, it must still satisfy errors.Is (and errors.As,
				// when the violated dimension traveled too) on this side.
				// Budget trips are never transient — the envelope check
				// runs before the 5xx classification so the worker's 504
				// cannot be mistaken for a retryable server failure.
				return nil, fmt.Errorf("dist: %s/dist/execute: %w",
					t.Base, retypeBudget(env.Error, env.BudgetReason, env.BudgetLimit))
			}
			return nil, classifyStatus(ctx, resp.StatusCode,
				fmt.Errorf("dist: %s/dist/execute: %s", t.Base, env.Error))
		}
		return nil, classifyStatus(ctx, resp.StatusCode,
			fmt.Errorf("dist: %s/dist/execute returned %s", t.Base, resp.Status))
	}
	dec := json.NewDecoder(resp.Body)
	seq := 0
	for {
		var fr ExecuteFrame
		if err := dec.Decode(&fr); err != nil {
			// A stream that dies before its final frame is a vanished
			// worker (SIGKILL closes the socket mid-body): transient, so
			// the coordinator can re-dispatch the fragment elsewhere.
			if err == io.EOF {
				return nil, transientUnless(ctx,
					fmt.Errorf("dist: %s/dist/execute stream ended without a final frame", t.Base))
			}
			return nil, transientUnless(ctx, fmt.Errorf("dist: %s/dist/execute stream: %w", t.Base, err))
		}
		if fr.Error != "" {
			if fr.BudgetExceeded {
				return nil, fmt.Errorf("dist: %s/dist/execute: %w",
					t.Base, retypeBudget(fr.Error, fr.BudgetReason, fr.BudgetLimit))
			}
			return nil, fmt.Errorf("dist: %s/dist/execute: %s", t.Base, fr.Error)
		}
		if len(fr.Batch) > 0 {
			// Batch frames carry sequence numbers; a gap means frames
			// were lost in transit (a proxy truncated and respliced the
			// stream), which only a re-dispatch can repair.
			if fr.Seq != seq {
				return nil, transientUnless(ctx,
					fmt.Errorf("dist: %s/dist/execute stream gap: frame %d arrived, expected %d", t.Base, fr.Seq, seq))
			}
			seq++
			if sink != nil {
				if err := sink(fr.Batch); err != nil {
					return nil, err
				}
			}
		}
		if fr.Done != nil {
			return fr.Done, nil
		}
	}
}

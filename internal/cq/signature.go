package cq

import (
	"fmt"
	"strings"
)

// CanonicalKey returns a canonical string identifying the resolved
// query for plan caching: two queries with equal keys describe the
// same optimization problem, so they admit the same optimal plan
// under the same optimizer settings.
//
// The key covers everything phase 1–3 of the optimizer can observe:
// the head, every atom with its terms (constants by value — queries
// differing only in a constant never share a key), the resolved
// signature fingerprint of each atom (feasible patterns, kind,
// profiled statistics and attribute domains, so a re-profiled
// service invalidates old entries), and every predicate with its
// selectivity annotation. The query name is deliberately excluded:
// it does not influence the plan.
//
// The key is undefined for unresolved queries (it panics if an atom
// has no signature); resolve against a schema first.
func (q *Query) CanonicalKey() string {
	var b strings.Builder
	b.WriteString("h:")
	for i, v := range q.Head {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(v))
	}
	for _, a := range q.Atoms {
		if a.Sig == nil {
			panic(fmt.Sprintf("cq: CanonicalKey on unresolved atom %s", a))
		}
		b.WriteString("|a:")
		b.WriteString(a.Service)
		b.WriteByte('(')
		for i, t := range a.Terms {
			if i > 0 {
				b.WriteByte(',')
			}
			if t.IsVar() {
				b.WriteString("v:")
				b.WriteString(string(t.Var))
			} else {
				b.WriteString("c:")
				b.WriteString(t.Const.Key())
			}
		}
		b.WriteByte(')')
		writeSigFingerprint(&b, a)
	}
	for _, p := range q.Preds {
		b.WriteString("|p:")
		b.WriteString(p.String()) // includes operator and selectivity
	}
	return b.String()
}

// writeSigFingerprint appends the plan-relevant parts of the atom's
// resolved signature: feasible patterns, service kind, statistics and
// attribute domains all feed the cost model, so any change must yield
// a distinct key.
func writeSigFingerprint(b *strings.Builder, a *Atom) {
	sig := a.Sig
	b.WriteString("{P:")
	for i, p := range sig.Patterns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.String())
	}
	st := sig.Stats
	fmt.Fprintf(b, ";k%d;x%g;t%d;cs%d;d%d;m%g;D:", int(sig.Kind), st.ERSPI,
		st.ResponseTime.Nanoseconds(), st.ChunkSize, st.Decay, st.CostPerCall)
	for i, at := range sig.Attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%s#%d", at.Domain.Name, at.Domain.DistinctValues)
	}
	b.WriteByte('}')
}

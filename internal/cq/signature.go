package cq

import (
	"fmt"
	"strings"
)

// CanonicalKey returns a canonical string identifying the resolved
// query for plan caching: two queries with equal keys describe the
// same optimization problem, so they admit the same optimal plan
// under the same optimizer settings.
//
// The key covers everything phase 1–3 of the optimizer can observe:
// the head, every atom with its terms (constants by value — queries
// differing only in a constant never share a key), the resolved
// signature fingerprint of each atom (feasible patterns, kind,
// profiled statistics and attribute domains, so a re-profiled
// service invalidates old entries), and every predicate with its
// selectivity annotation. The query name is deliberately excluded:
// it does not influence the plan.
//
// The key is undefined for unresolved queries (it panics if an atom
// has no signature); resolve against a schema first.
func (q *Query) CanonicalKey() string {
	return q.canonicalKey(false)
}

// TemplateKey returns the canonical signature of the query's
// constant-free template: constants are masked down to their value
// kind and the profiled statistics are left out of the signature
// fingerprint. All bindings of one cq.Template — and, more generally,
// any two queries differing only in constant values — share a
// template key, which is what lets a plan cache serve one branch-and-
// bound search to every binding (the plan structure depends on
// patterns, topology and fetch factors, never on constant values).
// Statistics drift is deliberately invisible to the key; the caller
// tracks it separately through per-service stats epochs.
//
// Like CanonicalKey, it panics on unresolved queries.
func (q *Query) TemplateKey() string {
	return q.canonicalKey(true)
}

func (q *Query) canonicalKey(masked bool) string {
	var b strings.Builder
	b.WriteString("h:")
	for i, v := range q.Head {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(v))
	}
	for _, a := range q.Atoms {
		if a.Sig == nil {
			panic(fmt.Sprintf("cq: CanonicalKey on unresolved atom %s", a))
		}
		b.WriteString("|a:")
		b.WriteString(a.Service)
		b.WriteByte('(')
		for i, t := range a.Terms {
			if i > 0 {
				b.WriteByte(',')
			}
			writeTermKey(&b, t, masked)
		}
		b.WriteByte(')')
		writeSigFingerprint(&b, a, masked)
	}
	for _, p := range q.Preds {
		b.WriteString("|p:")
		if masked {
			writeMaskedPred(&b, p)
		} else {
			b.WriteString(p.String()) // includes operator and selectivity
		}
	}
	return b.String()
}

// writeTermKey renders one term; with masked set, constants collapse
// to a kind-tagged placeholder so all bindings agree.
func writeTermKey(b *strings.Builder, t Term, masked bool) {
	if t.IsVar() {
		b.WriteString("v:")
		b.WriteString(string(t.Var))
		return
	}
	if masked {
		fmt.Fprintf(b, "c:?%d", int(t.Const.Kind))
		return
	}
	b.WriteString("c:")
	b.WriteString(t.Const.Key())
}

// writeMaskedPred renders a predicate with constants masked but the
// operator, structure and selectivity annotation intact (selectivity
// is structural: it is part of the query text, not of a binding).
func writeMaskedPred(b *strings.Builder, p *Predicate) {
	writeMaskedExpr(b, p.L)
	b.WriteByte(' ')
	b.WriteString(p.Op.String())
	b.WriteByte(' ')
	writeMaskedExpr(b, p.R)
	if p.Selectivity > 0 {
		fmt.Fprintf(b, " {%g}", p.Selectivity)
	}
}

func writeMaskedExpr(b *strings.Builder, e *Expr) {
	if e == nil {
		return
	}
	switch e.Kind {
	case ETerm:
		writeTermKey(b, e.Term, true)
	case EAdd:
		writeMaskedExpr(b, e.L)
		b.WriteString(" + ")
		writeMaskedExpr(b, e.R)
	case ESub:
		writeMaskedExpr(b, e.L)
		b.WriteString(" - ")
		writeMaskedExpr(b, e.R)
	}
}

// writeSigFingerprint appends the plan-relevant parts of the atom's
// resolved signature: feasible patterns, service kind, statistics and
// attribute domains all feed the cost model, so any change must yield
// a distinct key. With maskStats set the profiled statistics are
// omitted (template keys stay stable across in-place stats refreshes;
// staleness is tracked by epochs instead), while the structural parts
// — patterns, kind, domains — remain.
func writeSigFingerprint(b *strings.Builder, a *Atom, maskStats bool) {
	sig := a.Sig
	b.WriteString("{P:")
	for i, p := range sig.Patterns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.String())
	}
	if maskStats {
		fmt.Fprintf(b, ";k%d;D:", int(sig.Kind))
	} else {
		st := sig.Statistics()
		fmt.Fprintf(b, ";k%d;x%g;t%d;cs%d;d%d;m%g", int(sig.Kind), st.ERSPI,
			st.ResponseTime.Nanoseconds(), st.ChunkSize, st.Decay, st.CostPerCall)
		// Per-attribute value distributions feed value-sensitive
		// selectivities, so refreshed histograms must change the key
		// like any other statistic.
		for i := range sig.Attrs {
			if d := st.Distribution(i); !d.Empty() {
				fmt.Fprintf(b, ";v%d=%s", i, d.Fingerprint())
			}
		}
		b.WriteString(";D:")
	}
	for i, at := range sig.Attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%s#%d", at.Domain.Name, at.Domain.DistinctValues)
	}
	b.WriteByte('}')
}

// Package cq models conjunctive queries over web services in the
// datalog-like notation of §3.1 of Braga et al. (VLDB 2008):
//
//	q(X) ← conj(X, Y)
//
// where the body is a comma-separated conjunction of service atoms
// and comparison predicates, e.g.
//
//	q(Conf, City) :- conf('DB', Conf, Start, End, City),
//	                 weather(City, Temp, Start),
//	                 Temp >= 28, Start >= '2007/03/14'.
//
// Atoms over different services make the query multi-domain.
package cq

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mdq/internal/schema"
)

// Var is a query variable (identifiers starting with an uppercase
// letter in the concrete syntax).
type Var string

// Term is either a variable or a constant (§3.1: "variables and
// constants are collectively called terms").
type Term struct {
	Var   Var          // non-empty when the term is a variable
	Const schema.Value // used when Var == ""
}

// V builds a variable term.
func V(name string) Term { return Term{Var: Var(name)} }

// C builds a constant term.
func C(v schema.Value) Term { return Term{Const: v} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String implements fmt.Stringer.
func (t Term) String() string {
	if t.IsVar() {
		return string(t.Var)
	}
	return t.Const.String()
}

// Equal reports syntactic equality of terms.
func (t Term) Equal(u Term) bool {
	if t.IsVar() != u.IsVar() {
		return false
	}
	if t.IsVar() {
		return t.Var == u.Var
	}
	return t.Const.Equal(u.Const)
}

// Atom is a service invocation pattern: a service name applied to
// terms. Index distinguishes multiple occurrences of the same
// service in one query body.
type Atom struct {
	Service string
	Terms   []Term
	// Index is the position of the atom in the query body; it names
	// the atom uniquely (a service may occur more than once).
	Index int
	// Sig is the resolved signature; set by Query.Resolve.
	Sig *schema.Signature
}

// Label returns a unique, human-readable identifier for the atom
// within its query, e.g. "conf" or "hotel#2" for a second occurrence.
func (a *Atom) Label() string {
	return fmt.Sprintf("%s@%d", a.Service, a.Index)
}

// Vars returns the set of variables occurring in the atom.
func (a *Atom) Vars() VarSet {
	vs := VarSet{}
	for _, t := range a.Terms {
		if t.IsVar() {
			vs.Add(t.Var)
		}
	}
	return vs
}

// VarsAt returns the variables occurring at the given argument
// positions (used to split input/output variables per access pattern).
func (a *Atom) VarsAt(positions []int) VarSet {
	vs := VarSet{}
	for _, i := range positions {
		if i < len(a.Terms) && a.Terms[i].IsVar() {
			vs.Add(a.Terms[i].Var)
		}
	}
	return vs
}

// String implements fmt.Stringer.
func (a *Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return a.Service + "(" + strings.Join(parts, ", ") + ")"
}

// CmpOp is a comparison operator in a selection predicate.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Negate returns the complementary operator.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	default:
		return Lt
	}
}

// Eval applies the comparison to two values.
func (op CmpOp) Eval(l, r schema.Value) bool {
	switch op {
	case Eq:
		return l.Equal(r)
	case Ne:
		return !l.Equal(r)
	}
	c := l.Compare(r)
	switch op {
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	default:
		return false
	}
}

// ExprKind discriminates expression nodes.
type ExprKind int

// Expression node kinds.
const (
	ETerm ExprKind = iota
	EAdd
	ESub
)

// Expr is an arithmetic expression over terms, supporting the
// additive forms used by the paper ('2007/3/14' + 180,
// FPrice + HPrice).
type Expr struct {
	Kind ExprKind
	Term Term  // for ETerm
	L, R *Expr // for EAdd, ESub
}

// TermExpr wraps a term as an expression.
func TermExpr(t Term) *Expr { return &Expr{Kind: ETerm, Term: t} }

// Add builds l + r.
func Add(l, r *Expr) *Expr { return &Expr{Kind: EAdd, L: l, R: r} }

// Sub builds l - r.
func Sub(l, r *Expr) *Expr { return &Expr{Kind: ESub, L: l, R: r} }

// Vars returns the variables mentioned by the expression.
func (e *Expr) Vars() VarSet {
	vs := VarSet{}
	e.addVars(vs)
	return vs
}

func (e *Expr) addVars(vs VarSet) {
	if e == nil {
		return
	}
	if e.Kind == ETerm {
		if e.Term.IsVar() {
			vs.Add(e.Term.Var)
		}
		return
	}
	e.L.addVars(vs)
	e.R.addVars(vs)
}

// Eval computes the expression under a binding of variables to
// values. It fails if a variable is unbound or the arithmetic is
// ill-typed.
func (e *Expr) Eval(binding func(Var) (schema.Value, bool)) (schema.Value, error) {
	switch e.Kind {
	case ETerm:
		if !e.Term.IsVar() {
			return e.Term.Const, nil
		}
		v, ok := binding(e.Term.Var)
		if !ok {
			return schema.Null, fmt.Errorf("cq: unbound variable %s", e.Term.Var)
		}
		return v, nil
	case EAdd, ESub:
		l, err := e.L.Eval(binding)
		if err != nil {
			return schema.Null, err
		}
		r, err := e.R.Eval(binding)
		if err != nil {
			return schema.Null, err
		}
		if e.Kind == EAdd {
			return l.Add(r)
		}
		return l.Sub(r)
	default:
		return schema.Null, fmt.Errorf("cq: bad expression kind %d", int(e.Kind))
	}
}

// String implements fmt.Stringer.
func (e *Expr) String() string {
	switch e.Kind {
	case ETerm:
		return e.Term.String()
	case EAdd:
		return e.L.String() + " + " + e.R.String()
	case ESub:
		return e.L.String() + " - " + e.R.String()
	default:
		return "?"
	}
}

// Predicate is a comparison between two expressions, optionally
// annotated with an estimated selectivity σ (§3.1: σp). A zero
// Selectivity means "use the estimator's default for this operator".
type Predicate struct {
	L, R        *Expr
	Op          CmpOp
	Selectivity float64
}

// Vars returns the variables mentioned by the predicate.
func (p *Predicate) Vars() VarSet {
	vs := p.L.Vars()
	for v := range p.R.Vars() {
		vs.Add(v)
	}
	return vs
}

// Eval applies the predicate under a binding.
func (p *Predicate) Eval(binding func(Var) (schema.Value, bool)) (bool, error) {
	l, err := p.L.Eval(binding)
	if err != nil {
		return false, err
	}
	r, err := p.R.Eval(binding)
	if err != nil {
		return false, err
	}
	return p.Op.Eval(l, r), nil
}

// String implements fmt.Stringer.
func (p *Predicate) String() string {
	s := p.L.String() + " " + p.Op.String() + " " + p.R.String()
	if p.Selectivity > 0 {
		s += " {" + strconv.FormatFloat(p.Selectivity, 'g', -1, 64) + "}"
	}
	return s
}

// Query is a conjunctive query: head variables, body atoms, and
// selection predicates (§3.1).
type Query struct {
	Name  string
	Head  []Var
	Atoms []*Atom
	Preds []*Predicate
}

// Vars returns all variables of the query body.
func (q *Query) Vars() VarSet {
	vs := VarSet{}
	for _, a := range q.Atoms {
		for v := range a.Vars() {
			vs.Add(v)
		}
	}
	for _, p := range q.Preds {
		for v := range p.Vars() {
			vs.Add(v)
		}
	}
	return vs
}

// Resolve binds every atom to its signature in the schema and
// validates arity and constant domains.
func (q *Query) Resolve(s *schema.Schema) error {
	for _, a := range q.Atoms {
		sig, ok := s.Lookup(a.Service)
		if !ok {
			return fmt.Errorf("cq: query %s: unknown service %s", q.Name, a.Service)
		}
		if len(a.Terms) != sig.Arity() {
			return fmt.Errorf("cq: query %s: atom %s has %d terms, service %s has arity %d",
				q.Name, a, len(a.Terms), a.Service, sig.Arity())
		}
		for i, t := range a.Terms {
			if !t.IsVar() && !sig.Attrs[i].Domain.Accepts(t.Const) {
				return fmt.Errorf("cq: query %s: constant %s is not in domain %s of %s argument %d",
					q.Name, t.Const, sig.Attrs[i].Domain, a.Service, i+1)
			}
		}
		a.Sig = sig
	}
	return nil
}

// Validate checks safety (§3.1: each variable appears in at least one
// body atom) and that atoms are indexed consistently.
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq: query %s has no atoms", q.Name)
	}
	atomVars := VarSet{}
	for i, a := range q.Atoms {
		if a.Index != i {
			return fmt.Errorf("cq: query %s: atom %d has index %d", q.Name, i, a.Index)
		}
		for v := range a.Vars() {
			atomVars.Add(v)
		}
	}
	for _, h := range q.Head {
		if !atomVars.Has(h) {
			return fmt.Errorf("cq: query %s is unsafe: head variable %s not in any body atom", q.Name, h)
		}
	}
	for _, p := range q.Preds {
		for v := range p.Vars() {
			if !atomVars.Has(v) {
				return fmt.Errorf("cq: query %s is unsafe: predicate variable %s not in any body atom", q.Name, v)
			}
		}
	}
	return nil
}

// String renders the query in the concrete datalog-like syntax
// accepted by Parse.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.Name)
	b.WriteByte('(')
	for i, v := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(v))
	}
	b.WriteString(") :- ")
	first := true
	for _, a := range q.Atoms {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(a.String())
	}
	for _, p := range q.Preds {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(p.String())
	}
	b.WriteByte('.')
	return b.String()
}

// VarSet is a set of variables.
type VarSet map[Var]struct{}

// NewVarSet builds a set from variables.
func NewVarSet(vars ...Var) VarSet {
	vs := VarSet{}
	for _, v := range vars {
		vs.Add(v)
	}
	return vs
}

// Add inserts a variable.
func (s VarSet) Add(v Var) { s[v] = struct{}{} }

// Has reports membership.
func (s VarSet) Has(v Var) bool { _, ok := s[v]; return ok }

// AddAll inserts every variable of t.
func (s VarSet) AddAll(t VarSet) {
	for v := range t {
		s.Add(v)
	}
}

// ContainsAll reports whether every variable of t is in s.
func (s VarSet) ContainsAll(t VarSet) bool {
	for v := range t {
		if !s.Has(v) {
			return false
		}
	}
	return true
}

// Intersects reports whether the sets share a variable.
func (s VarSet) Intersects(t VarSet) bool {
	small, big := s, t
	if len(big) < len(small) {
		small, big = big, small
	}
	for v := range small {
		if big.Has(v) {
			return true
		}
	}
	return false
}

// Sorted returns the variables in lexicographic order.
func (s VarSet) Sorted() []Var {
	out := make([]Var, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String implements fmt.Stringer.
func (s VarSet) String() string {
	vars := s.Sorted()
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = string(v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

package cq

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"mdq/internal/schema"
)

// Template is a parametrized conjunctive query (§2.2 of the paper:
// "Constant values appearing in a query are either presented by the
// user through a form or set within a query template; optimization
// is performed for each query template"). Parameters are written
// $name in term positions:
//
//	q(Conf, City) :- conf($topic, Conf, Start, End, City),
//	                 weather(City, T, Start), T >= $minTemp.
//
// A template is optimized once; each Bind produces a concrete query
// sharing the same plan structure, which is what makes template
// optimization worthwhile: the plan depends on patterns, topology
// and fetch factors, not on the parameter values.
type Template struct {
	query  *Query
	params map[string][]paramSlot
}

type paramSlot struct {
	atom int // -1: predicate expression
	pos  int
	// for predicate slots:
	pred *Expr
}

// ParseTemplate parses a query with $param placeholders.
func ParseTemplate(input string) (*Template, error) {
	// Rewrite $name into a recognizable string constant, parse, then
	// record the slots.
	rewritten := rewriteParams(input)
	q, err := Parse(rewritten)
	if err != nil {
		return nil, err
	}
	t := &Template{query: q, params: map[string][]paramSlot{}}
	for ai, a := range q.Atoms {
		for pi, term := range a.Terms {
			if name, ok := paramName(term); ok {
				t.params[name] = append(t.params[name], paramSlot{atom: ai, pos: pi})
			}
		}
	}
	for _, p := range q.Preds {
		for _, e := range []*Expr{p.L, p.R} {
			collectParamExprs(e, t)
		}
	}
	if len(t.params) == 0 {
		return nil, fmt.Errorf("cq: template has no $parameters; use Parse for plain queries")
	}
	return t, nil
}

const paramMarker = "\x02param:"

func rewriteParams(input string) string {
	var b strings.Builder
	runes := []rune(input)
	for i := 0; i < len(runes); i++ {
		c := runes[i]
		if c != '$' {
			b.WriteRune(c)
			continue
		}
		j := i + 1
		for j < len(runes) && (isIdentRune(runes[j])) {
			j++
		}
		name := string(runes[i+1 : j])
		if name == "" {
			b.WriteRune(c)
			continue
		}
		fmt.Fprintf(&b, "'%s%s'", paramMarker, name)
		i = j - 1
	}
	return b.String()
}

func isIdentRune(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
}

func paramName(t Term) (string, bool) {
	if t.IsVar() || t.Const.Kind != schema.StringValue {
		return "", false
	}
	if strings.HasPrefix(t.Const.Str, paramMarker) {
		return strings.TrimPrefix(t.Const.Str, paramMarker), true
	}
	return "", false
}

func collectParamExprs(e *Expr, t *Template) {
	if e == nil {
		return
	}
	if e.Kind == ETerm {
		if name, ok := paramName(e.Term); ok {
			t.params[name] = append(t.params[name], paramSlot{atom: -1, pred: e})
		}
		return
	}
	collectParamExprs(e.L, t)
	collectParamExprs(e.R, t)
}

// Params lists the template's parameter names, sorted.
func (t *Template) Params() []string {
	out := make([]string, 0, len(t.params))
	for name := range t.params {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Query returns the underlying parametrized query; its parameter
// slots hold marker constants, so it must not be executed directly —
// it is however the right input for template-level optimization
// (constants only affect values, never callability or structure).
func (t *Template) Query() *Query { return t.query }

// Bind substitutes every parameter and returns an executable query.
// All parameters must be supplied.
func (t *Template) Bind(values map[string]schema.Value) (*Query, error) {
	for name := range t.params {
		if _, ok := values[name]; !ok {
			return nil, fmt.Errorf("cq: template parameter $%s not bound", name)
		}
	}
	for name := range values {
		if _, ok := t.params[name]; !ok {
			return nil, fmt.Errorf("cq: unknown template parameter $%s", name)
		}
	}
	q := &Query{Name: t.query.Name, Head: t.query.Head}
	// Deep-copy atoms (terms are replaced in place per binding).
	for i, a := range t.query.Atoms {
		terms := make([]Term, len(a.Terms))
		copy(terms, a.Terms)
		q.Atoms = append(q.Atoms, &Atom{Service: a.Service, Terms: terms, Index: i, Sig: a.Sig})
	}
	for _, p := range t.query.Preds {
		q.Preds = append(q.Preds, &Predicate{L: copyExpr(p.L), R: copyExpr(p.R), Op: p.Op, Selectivity: p.Selectivity})
	}
	for name, slots := range t.params {
		v := values[name]
		for _, s := range slots {
			if s.atom >= 0 {
				q.Atoms[s.atom].Terms[s.pos] = C(v)
			}
		}
	}
	// Predicate slots: walk the copied expressions and substitute the
	// markers.
	for _, p := range q.Preds {
		substituteParams(p.L, values)
		substituteParams(p.R, values)
	}
	return q, nil
}

func copyExpr(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	c := *e
	c.L = copyExpr(e.L)
	c.R = copyExpr(e.R)
	return &c
}

func substituteParams(e *Expr, values map[string]schema.Value) {
	if e == nil {
		return
	}
	if e.Kind == ETerm {
		if name, ok := paramName(e.Term); ok {
			e.Term = C(values[name])
		}
		return
	}
	substituteParams(e.L, values)
	substituteParams(e.R, values)
}

// MustBind is Bind that panics on error.
func (t *Template) MustBind(values map[string]schema.Value) *Query {
	q, err := t.Bind(values)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseBindings reads a textual binding list of the form
// "name=value,name2=value2" (the CLI syntax of mdqopt/mdqrun) into
// template binding values, typing each literal with
// ParseBindingValue. Empty segments are skipped.
func ParseBindings(s string) (map[string]schema.Value, error) {
	values := map[string]schema.Value{}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		name, raw, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("cq: binding %q is not name=value", kv)
		}
		values[strings.TrimSpace(name)] = ParseBindingValue(strings.TrimSpace(raw))
	}
	return values, nil
}

// ParseBindingValue types a binding literal: yyyy/mm/dd or
// yyyy-mm-dd become dates, anything strconv.ParseFloat accepts
// ("28", "10.50", "1e3") becomes a number, everything else stays a
// string.
func ParseBindingValue(raw string) schema.Value {
	for _, layout := range []string{"2006/01/02", "2006-01-02"} {
		if t, err := time.Parse(layout, raw); err == nil {
			return schema.D(t.Year(), t.Month(), t.Day())
		}
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return schema.N(f)
	}
	return schema.S(raw)
}

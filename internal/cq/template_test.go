package cq

import (
	"strings"
	"testing"

	"mdq/internal/schema"
)

const templateText = `
q(Conf, City) :- conf($topic, Conf, Start, End, City),
                 weather(City, T, Start),
                 T >= $minTemp {0.05},
                 Start >= $from.`

func TestTemplateParams(t *testing.T) {
	tpl, err := ParseTemplate(templateText)
	if err != nil {
		t.Fatal(err)
	}
	got := tpl.Params()
	want := []string{"from", "minTemp", "topic"}
	if len(got) != len(want) {
		t.Fatalf("params = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("params = %v, want %v", got, want)
		}
	}
}

func TestTemplateBind(t *testing.T) {
	tpl, err := ParseTemplate(templateText)
	if err != nil {
		t.Fatal(err)
	}
	q, err := tpl.Bind(map[string]schema.Value{
		"topic":   schema.S("DB"),
		"minTemp": schema.N(28),
		"from":    schema.D(2007, 3, 14),
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[0].Terms[0].Const.Str != "DB" {
		t.Errorf("topic not bound: %s", q.Atoms[0])
	}
	s := q.String()
	if !strings.Contains(s, "'DB'") || !strings.Contains(s, "28") || !strings.Contains(s, "2007/03/14") {
		t.Errorf("bound query missing values: %s", s)
	}
	if strings.Contains(s, "param:") {
		t.Errorf("marker leaked into bound query: %s", s)
	}
	// Bind twice with different values: independent queries.
	q2 := tpl.MustBind(map[string]schema.Value{
		"topic":   schema.S("AI"),
		"minTemp": schema.N(10),
		"from":    schema.D(2008, 1, 1),
	})
	if q2.Atoms[0].Terms[0].Const.Str != "AI" {
		t.Error("second binding broken")
	}
	if q.Atoms[0].Terms[0].Const.Str != "DB" {
		t.Error("bindings share term storage")
	}
}

func TestTemplateBindValidation(t *testing.T) {
	tpl, err := ParseTemplate(templateText)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.Bind(map[string]schema.Value{"topic": schema.S("DB")}); err == nil {
		t.Error("missing parameters accepted")
	}
	if _, err := tpl.Bind(map[string]schema.Value{
		"topic": schema.S("DB"), "minTemp": schema.N(28), "from": schema.D(2007, 3, 14),
		"extra": schema.N(1),
	}); err == nil {
		t.Error("unknown parameter accepted")
	}
}

func TestParseTemplateRejectsPlainQueries(t *testing.T) {
	if _, err := ParseTemplate(`q(X) :- a(X).`); err == nil {
		t.Error("plain query accepted as template")
	}
}

func TestTemplateStructureStableAcrossBindings(t *testing.T) {
	// The paper's point: optimization happens per template because
	// bindings do not change the structure — same atoms, same
	// patterns-relevant shape.
	tpl, err := ParseTemplate(templateText)
	if err != nil {
		t.Fatal(err)
	}
	a := tpl.MustBind(map[string]schema.Value{
		"topic": schema.S("DB"), "minTemp": schema.N(28), "from": schema.D(2007, 3, 14)})
	b := tpl.MustBind(map[string]schema.Value{
		"topic": schema.S("SE"), "minTemp": schema.N(5), "from": schema.D(2009, 6, 1)})
	if len(a.Atoms) != len(b.Atoms) || len(a.Preds) != len(b.Preds) {
		t.Fatal("structure changed across bindings")
	}
	for i := range a.Atoms {
		if a.Atoms[i].Service != b.Atoms[i].Service {
			t.Fatal("atom order changed")
		}
	}
}

package cq

import (
	"strings"
	"testing"

	"mdq/internal/schema"
)

const templateText = `
q(Conf, City) :- conf($topic, Conf, Start, End, City),
                 weather(City, T, Start),
                 T >= $minTemp {0.05},
                 Start >= $from.`

func TestTemplateParams(t *testing.T) {
	tpl, err := ParseTemplate(templateText)
	if err != nil {
		t.Fatal(err)
	}
	got := tpl.Params()
	want := []string{"from", "minTemp", "topic"}
	if len(got) != len(want) {
		t.Fatalf("params = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("params = %v, want %v", got, want)
		}
	}
}

func TestTemplateBind(t *testing.T) {
	tpl, err := ParseTemplate(templateText)
	if err != nil {
		t.Fatal(err)
	}
	q, err := tpl.Bind(map[string]schema.Value{
		"topic":   schema.S("DB"),
		"minTemp": schema.N(28),
		"from":    schema.D(2007, 3, 14),
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[0].Terms[0].Const.Str != "DB" {
		t.Errorf("topic not bound: %s", q.Atoms[0])
	}
	s := q.String()
	if !strings.Contains(s, "'DB'") || !strings.Contains(s, "28") || !strings.Contains(s, "2007/03/14") {
		t.Errorf("bound query missing values: %s", s)
	}
	if strings.Contains(s, "param:") {
		t.Errorf("marker leaked into bound query: %s", s)
	}
	// Bind twice with different values: independent queries.
	q2 := tpl.MustBind(map[string]schema.Value{
		"topic":   schema.S("AI"),
		"minTemp": schema.N(10),
		"from":    schema.D(2008, 1, 1),
	})
	if q2.Atoms[0].Terms[0].Const.Str != "AI" {
		t.Error("second binding broken")
	}
	if q.Atoms[0].Terms[0].Const.Str != "DB" {
		t.Error("bindings share term storage")
	}
}

func TestTemplateBindValidation(t *testing.T) {
	tpl, err := ParseTemplate(templateText)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.Bind(map[string]schema.Value{"topic": schema.S("DB")}); err == nil {
		t.Error("missing parameters accepted")
	}
	if _, err := tpl.Bind(map[string]schema.Value{
		"topic": schema.S("DB"), "minTemp": schema.N(28), "from": schema.D(2007, 3, 14),
		"extra": schema.N(1),
	}); err == nil {
		t.Error("unknown parameter accepted")
	}
}

func TestParseTemplateRejectsPlainQueries(t *testing.T) {
	if _, err := ParseTemplate(`q(X) :- a(X).`); err == nil {
		t.Error("plain query accepted as template")
	}
}

// templateSchema builds signatures for the conf/weather template so
// bound queries can be resolved (TemplateKey requires resolution).
func templateSchema(t *testing.T) *schema.Schema {
	t.Helper()
	topic := schema.Domain{Name: "Topic", Kind: schema.StringValue, DistinctValues: 10}
	city := schema.Domain{Name: "City", Kind: schema.StringValue, DistinctValues: 50}
	date := schema.Domain{Name: "Date", Kind: schema.DateValue}
	temp := schema.Domain{Name: "Temp", Kind: schema.NumberValue}
	name := schema.Domain{Name: "Name", Kind: schema.StringValue}
	conf := &schema.Signature{
		Name: "conf",
		Attrs: []schema.Attribute{
			{Name: "Topic", Domain: topic}, {Name: "Conf", Domain: name},
			{Name: "Start", Domain: date}, {Name: "End", Domain: date},
			{Name: "City", Domain: city},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("ioooo")},
		Stats:    schema.Stats{ERSPI: 5},
	}
	weather := &schema.Signature{
		Name: "weather",
		Attrs: []schema.Attribute{
			{Name: "City", Domain: city}, {Name: "Temp", Domain: temp},
			{Name: "Date", Domain: date},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("ioo")},
		Stats:    schema.Stats{ERSPI: 1},
	}
	sch, err := schema.NewSchema(conf, weather)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func bindResolved(t *testing.T, tpl *Template, sch *schema.Schema, values map[string]schema.Value) *Query {
	t.Helper()
	q, err := tpl.Bind(values)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve(sch); err != nil {
		t.Fatal(err)
	}
	return q
}

// TestTemplateKeySharedAcrossBindings: all bindings of one template
// share a template key (while their canonical keys differ), and an
// in-place statistics refresh changes the canonical key but not the
// template key — the separation the epoch subsystem relies on.
func TestTemplateKeySharedAcrossBindings(t *testing.T) {
	tpl, err := ParseTemplate(templateText)
	if err != nil {
		t.Fatal(err)
	}
	sch := templateSchema(t)
	a := bindResolved(t, tpl, sch, map[string]schema.Value{
		"topic": schema.S("DB"), "minTemp": schema.N(28), "from": schema.D(2007, 3, 14)})
	b := bindResolved(t, tpl, sch, map[string]schema.Value{
		"topic": schema.S("AI"), "minTemp": schema.N(5), "from": schema.D(2009, 6, 1)})
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Fatal("bindings with different constants share a canonical key")
	}
	if a.TemplateKey() != b.TemplateKey() {
		t.Fatalf("bindings do not share a template key:\n%s\n%s", a.TemplateKey(), b.TemplateKey())
	}
	// Statistics drift is invisible to the template key by design.
	beforeTpl, beforeCanon := a.TemplateKey(), a.CanonicalKey()
	a.Atoms[0].Sig.Stats.ERSPI *= 3
	if a.TemplateKey() != beforeTpl {
		t.Error("statistics refresh changed the template key")
	}
	if a.CanonicalKey() == beforeCanon {
		t.Error("statistics refresh did not change the canonical key")
	}
	a.Atoms[0].Sig.Stats.ERSPI /= 3
	// Structural change (a domain) must change the template key.
	a.Atoms[0].Sig.Attrs[0].Domain.DistinctValues++
	if a.TemplateKey() == beforeTpl {
		t.Error("domain change did not change the template key")
	}
	a.Atoms[0].Sig.Attrs[0].Domain.DistinctValues--
}

// TestTemplateKeyMasksPlainConstants: two plain queries differing
// only in literal constants (no template involved) also share a
// template key — parameterized caching applies to any constant-only
// variation.
func TestTemplateKeyMasksPlainConstants(t *testing.T) {
	sch := templateSchema(t)
	parse := func(text string) *Query {
		q, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Resolve(sch); err != nil {
			t.Fatal(err)
		}
		return q
	}
	q1 := parse(`q(Conf) :- conf('DB', Conf, S, E, City), weather(City, T, S), T >= 20.`)
	q2 := parse(`q(Conf) :- conf('SE', Conf, S, E, City), weather(City, T, S), T >= 5.`)
	if q1.TemplateKey() != q2.TemplateKey() {
		t.Fatal("constant-only variation does not share a template key")
	}
	// A different operator is structural: keys must split.
	q3 := parse(`q(Conf) :- conf('DB', Conf, S, E, City), weather(City, T, S), T > 20.`)
	if q1.TemplateKey() == q3.TemplateKey() {
		t.Fatal("different predicate operator shares a template key")
	}
	// Different constant *kinds* are distinguished (a string where a
	// number was) even under masking.
	q4 := parse(`q(Conf) :- conf('DB', Conf, S, E, City), weather(City, T, S), T >= 'warm'.`)
	if q1.TemplateKey() == q4.TemplateKey() {
		t.Fatal("different constant kind shares a template key")
	}
}

// TestTemplateUnboundConstants: literal constants mixed with
// parameters survive binding untouched.
func TestTemplateUnboundConstants(t *testing.T) {
	tpl, err := ParseTemplate(`q(Conf) :- conf('DB', Conf, Start, End, City),
	                                     weather(City, T, Start), T >= $minTemp.`)
	if err != nil {
		t.Fatal(err)
	}
	if got := tpl.Params(); len(got) != 1 || got[0] != "minTemp" {
		t.Fatalf("params = %v, want [minTemp]", got)
	}
	q := tpl.MustBind(map[string]schema.Value{"minTemp": schema.N(10)})
	if q.Atoms[0].Terms[0].Const.Str != "DB" {
		t.Fatalf("literal constant lost: %s", q.Atoms[0])
	}
}

// TestTemplateRepeatedParamAndVars: one parameter appearing in
// several slots (atom term and predicate) is substituted everywhere;
// repeated variables keep their join semantics.
func TestTemplateRepeatedParamAndVars(t *testing.T) {
	tpl, err := ParseTemplate(`q(Conf) :- conf($topic, Conf, Start, Start, City),
	                                     weather(City, T, Start), T >= $minTemp, T - $minTemp >= 0.`)
	if err != nil {
		t.Fatal(err)
	}
	q := tpl.MustBind(map[string]schema.Value{
		"topic": schema.S("DB"), "minTemp": schema.N(7)})
	if q.Atoms[0].Terms[0].Const.Str != "DB" {
		t.Error("atom slot not substituted")
	}
	s := q.String()
	if strings.Contains(s, "param:") {
		t.Fatalf("marker survived in some slot: %s", s)
	}
	if strings.Count(s, "7") < 2 {
		t.Errorf("repeated parameter not substituted everywhere: %s", s)
	}
	// The repeated variable Start must still appear in both atom
	// positions (it is a join, not a parameter).
	if !q.Atoms[0].Terms[2].IsVar() || !q.Atoms[0].Terms[3].IsVar() {
		t.Error("repeated variable collapsed into a constant")
	}
}

// TestTemplateBindMalformedMaps: nil maps, empty maps and wrong
// names fail cleanly instead of producing half-bound queries.
func TestTemplateBindMalformedMaps(t *testing.T) {
	tpl, err := ParseTemplate(templateText)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.Bind(nil); err == nil {
		t.Error("nil binding map accepted")
	}
	if _, err := tpl.Bind(map[string]schema.Value{}); err == nil {
		t.Error("empty binding map accepted")
	}
	if _, err := tpl.Bind(map[string]schema.Value{
		"topic": schema.S("DB"), "minTemp": schema.N(28), "form": schema.D(2007, 3, 14),
	}); err == nil {
		t.Error("misspelled parameter accepted")
	}
}

// TestTemplateDollarEdgeCases: a bare $ is not a parameter, and the
// marker prefix cannot be injected through a string literal.
func TestTemplateDollarEdgeCases(t *testing.T) {
	if _, err := ParseTemplate(`q(X) :- conf('$', X, S, E, C).`); err == nil {
		t.Error("quoted $ treated as a parameter (template with no parameters accepted)")
	}
	tpl, err := ParseTemplate(`q(X) :- conf($t, X, S, E, C), weather(C, T, S), T >= 1.`)
	if err != nil {
		t.Fatal(err)
	}
	if got := tpl.Params(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("params = %v, want [t]", got)
	}
}

func TestTemplateStructureStableAcrossBindings(t *testing.T) {
	// The paper's point: optimization happens per template because
	// bindings do not change the structure — same atoms, same
	// patterns-relevant shape.
	tpl, err := ParseTemplate(templateText)
	if err != nil {
		t.Fatal(err)
	}
	a := tpl.MustBind(map[string]schema.Value{
		"topic": schema.S("DB"), "minTemp": schema.N(28), "from": schema.D(2007, 3, 14)})
	b := tpl.MustBind(map[string]schema.Value{
		"topic": schema.S("SE"), "minTemp": schema.N(5), "from": schema.D(2009, 6, 1)})
	if len(a.Atoms) != len(b.Atoms) || len(a.Preds) != len(b.Preds) {
		t.Fatal("structure changed across bindings")
	}
	for i := range a.Atoms {
		if a.Atoms[i].Service != b.Atoms[i].Service {
			t.Fatal("atom order changed")
		}
	}
}

package cq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"mdq/internal/schema"
)

// Parse reads a conjunctive query in the paper's datalog-like
// concrete syntax:
//
//	q(Conf, City) :- conf('DB', Conf, Start, End, City),
//	                 weather(City, Temp, Start),
//	                 Temp >= 28,
//	                 Start >= '2007/03/14',
//	                 FPrice + HPrice < 2000 {0.01}.
//
// Rules:
//   - the head is name(vars…); ":-" and "<-" both separate head/body;
//   - identifiers starting with an uppercase letter are variables,
//     those starting with a lowercase letter are service names;
//   - constants are numbers or single-quoted strings; string literals
//     shaped like dates ('2007/03/14' or '2007-03-14') become dates;
//   - body items are service atoms or comparison predicates over
//     additive expressions (+, -), with operators =, !=, <>, <, <=,
//     >, >=, and the unicode forms ≤ ≥ ≠;
//   - a predicate may carry a selectivity annotation "{0.01}";
//   - "%" starts a comment running to the end of the line;
//   - the trailing period is optional.
func Parse(input string) (*Query, error) {
	p := &parser{lex: newLexer(input)}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind int

const (
	tokEOF   tokKind = iota
	tokIdent         // lowercase-led identifier
	tokVar           // uppercase-led identifier
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokPeriod
	tokArrow // :- or <-
	tokPlus
	tokMinus
	tokOp // comparison operator, value in text
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return "'" + t.text + "'"
	default:
		return "\"" + t.text + "\""
	}
}

type lexer struct {
	src  []rune
	pos  int
	toks []token
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src)}
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("cq: parse error at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) lexAll() error {
	for {
		t, err := l.next()
		if err != nil {
			return err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		switch {
		case unicode.IsSpace(l.src[l.pos]):
			l.pos++
		case l.src[l.pos] == '%':
			// Datalog-style comment to end of line.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto lex
		}
	}
lex:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '{':
		l.pos++
		return token{kind: tokLBrace, text: "{", pos: start}, nil
	case c == '}':
		l.pos++
		return token{kind: tokRBrace, text: "}", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '.':
		// A period can start a decimal number (.5); a lone period is
		// the query terminator.
		if l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1]) {
			return l.lexNumber()
		}
		l.pos++
		return token{kind: tokPeriod, text: ".", pos: start}, nil
	case c == '+':
		l.pos++
		return token{kind: tokPlus, text: "+", pos: start}, nil
	case c == '-':
		l.pos++
		return token{kind: tokMinus, text: "-", pos: start}, nil
	case c == ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			l.pos += 2
			return token{kind: tokArrow, text: ":-", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected ':'")
	case c == '<':
		if l.pos+1 < len(l.src) {
			switch l.src[l.pos+1] {
			case '-':
				l.pos += 2
				return token{kind: tokArrow, text: "<-", pos: start}, nil
			case '=':
				l.pos += 2
				return token{kind: tokOp, text: "<=", pos: start}, nil
			case '>':
				l.pos += 2
				return token{kind: tokOp, text: "!=", pos: start}, nil
			}
		}
		l.pos++
		return token{kind: tokOp, text: "<", pos: start}, nil
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, text: ">", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")
	case c == '≤':
		l.pos++
		return token{kind: tokOp, text: "<=", pos: start}, nil
	case c == '≥':
		l.pos++
		return token{kind: tokOp, text: ">=", pos: start}, nil
	case c == '≠':
		l.pos++
		return token{kind: tokOp, text: "!=", pos: start}, nil
	case c == '\'':
		return l.lexString()
	case unicode.IsDigit(c):
		return l.lexNumber()
	case unicode.IsLetter(c) || c == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		text := string(l.src[start:l.pos])
		kind := tokIdent
		if unicode.IsUpper([]rune(text)[0]) {
			kind = tokVar
		}
		return token{kind: kind, text: text, pos: start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// doubled quote escapes a quote
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteRune('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteRune(c)
		l.pos++
	}
	return token{}, l.errf(start, "unterminated string literal")
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
	// Exponent suffix (2e+06, 1.5E-3): accepted so that any rendered
	// numeric constant (Query.String uses the shortest 'g' form, which
	// switches to scientific notation for large magnitudes) parses
	// back — the wire round-trip distributed optimization relies on.
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		mark := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
			for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			// Not an exponent after all (e.g. "12eggs"): back off and
			// let the identifier lexer complain as before.
			l.pos = mark
		}
	}
	text := string(l.src[start:l.pos])
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errf(start, "bad number %q", text)
	}
	return token{kind: tokNumber, text: text, num: f, pos: start}, nil
}

type parser struct {
	lex *lexer
	i   int
}

func (p *parser) peek() token       { return p.lex.toks[p.i] }
func (p *parser) take() token       { t := p.lex.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokKind) bool { return p.lex.toks[p.i].kind == k }

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, fmt.Errorf("cq: parse error at offset %d: expected %s, found %s", t.pos, what, t)
	}
	return p.take(), nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.lex.lexAll(); err != nil {
		return nil, err
	}
	q := &Query{}
	name, err := p.expect(tokIdent, "query name")
	if err != nil {
		return nil, err
	}
	q.Name = name.text
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	for !p.at(tokRParen) {
		v, err := p.expect(tokVar, "head variable")
		if err != nil {
			return nil, err
		}
		q.Head = append(q.Head, Var(v.text))
		if p.at(tokComma) {
			p.take()
		} else {
			break
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrow, "':-' or '<-'"); err != nil {
		return nil, err
	}
	for {
		if err := p.parseBodyItem(q); err != nil {
			return nil, err
		}
		if p.at(tokComma) {
			p.take()
			continue
		}
		break
	}
	if p.at(tokPeriod) {
		p.take()
	}
	if !p.at(tokEOF) {
		t := p.peek()
		return nil, fmt.Errorf("cq: parse error at offset %d: trailing input starting with %s", t.pos, t)
	}
	return q, nil
}

func (p *parser) parseBodyItem(q *Query) error {
	// An atom starts with a lowercase identifier followed by '('.
	if p.at(tokIdent) && p.i+1 < len(p.lex.toks) && p.lex.toks[p.i+1].kind == tokLParen {
		return p.parseAtom(q)
	}
	return p.parsePredicate(q)
}

func (p *parser) parseAtom(q *Query) error {
	name := p.take()
	p.take() // '('
	a := &Atom{Service: name.text, Index: len(q.Atoms)}
	for !p.at(tokRParen) {
		t, err := p.parseTerm()
		if err != nil {
			return err
		}
		a.Terms = append(a.Terms, t)
		if p.at(tokComma) {
			p.take()
		} else {
			break
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return err
	}
	q.Atoms = append(q.Atoms, a)
	return nil
}

func (p *parser) parseTerm() (Term, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.take()
		return V(t.text), nil
	case tokNumber:
		p.take()
		return C(schema.N(t.num)), nil
	case tokMinus:
		p.take()
		n, err := p.expect(tokNumber, "number after '-'")
		if err != nil {
			return Term{}, err
		}
		return C(schema.N(-n.num)), nil
	case tokString:
		p.take()
		if d, ok := schema.ParseDate(t.text); ok {
			return C(d), nil
		}
		return C(schema.S(t.text)), nil
	default:
		return Term{}, fmt.Errorf("cq: parse error at offset %d: expected term, found %s", t.pos, t)
	}
}

func (p *parser) parsePredicate(q *Query) error {
	l, err := p.parseExpr()
	if err != nil {
		return err
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return err
	}
	var op CmpOp
	switch opTok.text {
	case "=":
		op = Eq
	case "!=":
		op = Ne
	case "<":
		op = Lt
	case "<=":
		op = Le
	case ">":
		op = Gt
	case ">=":
		op = Ge
	default:
		return fmt.Errorf("cq: parse error at offset %d: unknown operator %q", opTok.pos, opTok.text)
	}
	r, err := p.parseExpr()
	if err != nil {
		return err
	}
	pred := &Predicate{L: l, R: r, Op: op}
	if p.at(tokLBrace) {
		p.take()
		sel, err := p.expect(tokNumber, "selectivity")
		if err != nil {
			return err
		}
		if sel.num <= 0 || sel.num > 1 {
			return fmt.Errorf("cq: parse error at offset %d: selectivity %g out of (0,1]", sel.pos, sel.num)
		}
		pred.Selectivity = sel.num
		if _, err := p.expect(tokRBrace, "'}'"); err != nil {
			return err
		}
	}
	q.Preds = append(q.Preds, pred)
	return nil
}

func (p *parser) parseExpr() (*Expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		opTok := p.take()
		r, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if opTok.kind == tokPlus {
			l = Add(l, r)
		} else {
			l = Sub(l, r)
		}
	}
	return l, nil
}

func (p *parser) parseOperand() (*Expr, error) {
	if p.at(tokLParen) {
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return TermExpr(t), nil
}

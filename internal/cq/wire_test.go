package cq

import (
	"testing"

	"mdq/internal/schema"
)

// TestQueryStringParseRoundTrip: Query.String renders the concrete
// syntax Parse accepts, structurally identically — the property that
// lets a coordinator ship a bound query to remote workers as text.
func TestQueryStringParseRoundTrip(t *testing.T) {
	texts := []string{
		`q(Conf, City) :- conf('DB', Conf, Start, End, City),
		                  weather(City, Temp, Start),
		                  Temp >= 28, Start >= '2007/03/14' {0.25}.`,
		`r(A) :- svc(A, B), other(B, C), A + B < 2000000 {0.01}, C != 'x y'.`,
		`s(X) :- svc(X, Y), Y >= 1.5e+06.`,
	}
	for _, text := range texts {
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, text)
		}
		back, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of String output: %v\n%s", err, q.String())
		}
		if got, want := back.String(), q.String(); got != want {
			t.Fatalf("round trip not a fixpoint:\n first: %s\nsecond: %s", want, got)
		}
	}
}

// TestNumberExponentLiterals: the lexer accepts the scientific
// notation strconv's shortest 'g' rendering emits for large or tiny
// magnitudes, with and without explicit signs.
func TestNumberExponentLiterals(t *testing.T) {
	q, err := Parse(`q(X) :- s(X, Y), Y >= 2e+06, X < 1.5E3, Y != 2.5e-3.`)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2e+06, 1.5e3, 2.5e-3}
	for i, p := range q.Preds {
		v := p.R.Term.Const
		if v.Kind != schema.NumberValue || v.Num != want[i] {
			t.Fatalf("predicate %d parsed constant %v, want %g", i, v, want[i])
		}
	}
}

package cq

import (
	"strings"
	"testing"

	"mdq/internal/schema"
)

func TestParseRunningExample(t *testing.T) {
	src := `
q(Conf, City, HPrice, FPrice, Start, StartTime, End, EndTime, Hotel) :-
    flight('Milano', City, Start, End, StartTime, EndTime, FPrice),
    hotel(Hotel, City, 'luxury', Start, End, HPrice),
    conf('DB', Conf, Start, End, City),
    weather(City, Temperature, Start),
    Start >= '2007/03/14',
    End <= '2007/03/14' + 180,
    Temperature >= 28 {0.05},
    FPrice + HPrice < 2000 {0.01}.`
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Name != "q" {
		t.Errorf("name = %q", q.Name)
	}
	if len(q.Head) != 9 {
		t.Errorf("head arity = %d, want 9", len(q.Head))
	}
	if len(q.Atoms) != 4 {
		t.Fatalf("atoms = %d, want 4", len(q.Atoms))
	}
	if len(q.Preds) != 4 {
		t.Fatalf("preds = %d, want 4", len(q.Preds))
	}
	if q.Atoms[0].Service != "flight" || q.Atoms[3].Service != "weather" {
		t.Errorf("atom order wrong: %v", q.Atoms)
	}
	// Constant 'Milano' in first atom.
	if q.Atoms[0].Terms[0].IsVar() || q.Atoms[0].Terms[0].Const.Str != "Milano" {
		t.Errorf("flight arg 1 = %v, want 'Milano'", q.Atoms[0].Terms[0])
	}
	// Date constant parsed as date.
	if q.Preds[0].R.Term.Const.Kind != schema.DateValue {
		t.Errorf("date literal kind = %v", q.Preds[0].R.Term.Const.Kind)
	}
	// Selectivity annotations.
	if q.Preds[2].Selectivity != 0.05 {
		t.Errorf("temperature selectivity = %g", q.Preds[2].Selectivity)
	}
	if q.Preds[3].Selectivity != 0.01 {
		t.Errorf("price selectivity = %g", q.Preds[3].Selectivity)
	}
	// Expression predicate.
	if q.Preds[3].L.Kind != EAdd {
		t.Errorf("price predicate LHS kind = %v, want EAdd", q.Preds[3].L.Kind)
	}
}

// TestParseRoundTrip: String() output of a parsed query re-parses to
// the same rendering (fixed point).
func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		`q(X) :- a(X, Y), b(Y, Z), Z >= 10.`,
		`q(A, B) :- s('lit', A, B), t(B, 3), A != B {0.5}.`,
		`q(X) <- r(X), X >= '2020/01/01' + 30.`,
		`q(X) :- a(X, -5).`,
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		s1 := q1.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse(%q): %v", s1, err)
		}
		if s2 := q2.String(); s1 != s2 {
			t.Errorf("round trip not a fixed point:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		src, wantSub string
	}{
		{`q(X)`, "expected"},
		{`q(X) :- `, "expected"},
		{`q(X) :- a(X`, "expected"},
		{`q(X) :- a(X) extra`, "trailing input"},
		{`q(X) :- a(Y)`, "unsafe"},        // head var not in body
		{`q(X) :- a(X), Y > 3`, "unsafe"}, // pred var not in body
		{`q(X) :- a(X), X > 3 {2}`, "selectivity"},
		{`q(X) :- a(X), X > 'abc`, "unterminated"},
		{`q(X) :- a(X) ! b(X)`, "unexpected"},
	}
	for _, tc := range bad {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error = %v, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestPredicateEval(t *testing.T) {
	q := MustParse(`q(A, B) :- s(A, B), A + B >= 10, A != B.`)
	bind := func(vals map[Var]schema.Value) func(Var) (schema.Value, bool) {
		return func(v Var) (schema.Value, bool) {
			val, ok := vals[v]
			return val, ok
		}
	}
	ok, err := q.Preds[0].Eval(bind(map[Var]schema.Value{"A": schema.N(4), "B": schema.N(7)}))
	if err != nil || !ok {
		t.Errorf("4+7>=10 = %v, %v", ok, err)
	}
	ok, err = q.Preds[0].Eval(bind(map[Var]schema.Value{"A": schema.N(1), "B": schema.N(2)}))
	if err != nil || ok {
		t.Errorf("1+2>=10 = %v, %v", ok, err)
	}
	if _, err := q.Preds[0].Eval(bind(map[Var]schema.Value{"A": schema.N(1)})); err == nil {
		t.Error("unbound variable should error")
	}
	ok, err = q.Preds[1].Eval(bind(map[Var]schema.Value{"A": schema.N(1), "B": schema.N(1)}))
	if err != nil || ok {
		t.Errorf("1 != 1 = %v, %v", ok, err)
	}
}

func TestCmpOpEval(t *testing.T) {
	tests := []struct {
		op   CmpOp
		l, r schema.Value
		want bool
	}{
		{Eq, schema.N(3), schema.N(3), true},
		{Ne, schema.N(3), schema.N(3), false},
		{Lt, schema.N(2), schema.N(3), true},
		{Le, schema.N(3), schema.N(3), true},
		{Gt, schema.S("b"), schema.S("a"), true},
		{Ge, schema.S("a"), schema.S("b"), false},
	}
	for _, tc := range tests {
		if got := tc.op.Eval(tc.l, tc.r); got != tc.want {
			t.Errorf("%v %v %v = %v, want %v", tc.l, tc.op, tc.r, got, tc.want)
		}
	}
	for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		n := op.Negate()
		if n.Eval(schema.N(1), schema.N(2)) == op.Eval(schema.N(1), schema.N(2)) {
			t.Errorf("%v.Negate() = %v is not complementary", op, n)
		}
	}
}

func TestResolve(t *testing.T) {
	sig := &schema.Signature{
		Name: "s",
		Attrs: []schema.Attribute{
			{Name: "A", Domain: schema.DomCity},
			{Name: "B", Domain: schema.DomPrice},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("io")},
	}
	sch, err := schema.NewSchema(sig)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParse(`q(B) :- s('Milano', B).`)
	if err := q.Resolve(sch); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if q.Atoms[0].Sig != sig {
		t.Error("atom not bound to signature")
	}
	// Unknown service.
	q2 := MustParse(`q(B) :- nope(B).`)
	if err := q2.Resolve(sch); err == nil {
		t.Error("unknown service accepted")
	}
	// Arity mismatch.
	q3 := MustParse(`q(B) :- s(B).`)
	if err := q3.Resolve(sch); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Domain violation: number constant for a string domain.
	q4 := MustParse(`q(B) :- s(42, B).`)
	if err := q4.Resolve(sch); err == nil {
		t.Error("domain violation accepted")
	}
}

func TestVarSet(t *testing.T) {
	q := MustParse(`q(X) :- a(X, Y), b(Y, Z, 'c').`)
	vs := q.Vars()
	for _, v := range []Var{"X", "Y", "Z"} {
		if !vs.Has(v) {
			t.Errorf("missing %s", v)
		}
	}
	if len(vs) != 3 {
		t.Errorf("len = %d, want 3", len(vs))
	}
	if got := vs.String(); got != "{X,Y,Z}" {
		t.Errorf("String = %s", got)
	}
	a := q.Atoms[0].Vars()
	b := q.Atoms[1].Vars()
	if !a.Intersects(b) {
		t.Error("atoms share Y")
	}
	if a.ContainsAll(b) {
		t.Error("a should not contain Z")
	}
}

func TestAtomVarsAt(t *testing.T) {
	q := MustParse(`q(X) :- a('k', X, Y).`)
	atom := q.Atoms[0]
	in := atom.VarsAt([]int{0, 1})
	if in.Has("Y") || !in.Has("X") || len(in) != 1 {
		t.Errorf("VarsAt([0,1]) = %v", in)
	}
}

func TestQueryStringRendersAnnotations(t *testing.T) {
	q := MustParse(`q(X) :- a(X), X >= 5 {0.25}.`)
	s := q.String()
	if !strings.Contains(s, "{0.25}") {
		t.Errorf("selectivity annotation lost: %s", s)
	}
}

func TestParseComments(t *testing.T) {
	q, err := Parse(`
% find things
q(X) :- a(X),   % the only atom
        X >= 3. % a filter`)
	if err != nil {
		t.Fatalf("Parse with comments: %v", err)
	}
	if len(q.Atoms) != 1 || len(q.Preds) != 1 {
		t.Errorf("comments changed the query: %s", q)
	}
}

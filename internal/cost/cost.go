// Package cost implements the cost metrics of §2.3 and §5.3 of Braga
// et al. (VLDB 2008): the sum cost metric (Eq. 3), its
// request–response special case, the execution time metric (Eq. 4),
// and the bottleneck and time-to-screen metrics discussed for
// completeness.
//
// All metrics operate on plans annotated by the card estimator, so
// the invocation counts already reflect the chosen caching model
// ("the values for t_in can be calculated according to any of the
// considered settings", §5.3). All metrics are monotone with respect
// to plan construction: the cost of a partially constructed DAG is a
// valid lower bound for every completion, which is what makes branch
// and bound applicable (§2.4).
//
// Concurrency: the parallel optimizer evaluates metrics from many
// goroutines at once, each on its own plan. Every built-in metric is
// a stateless value type that only reads the plan it is given and
// the resolved signatures behind it, so concurrent use is safe;
// custom Metric implementations must uphold the same contract (no
// mutable state shared across Cost calls, no mutation of the plan).
package cost

import (
	"math"

	"mdq/internal/plan"
)

// Metric maps an annotated plan to a nonnegative cost.
type Metric interface {
	// Name identifies the metric in reports.
	Name() string
	// Cost computes the plan cost; the plan must have been annotated
	// with card.Config.Annotate first.
	Cost(p *plan.Plan) float64
}

// perCall returns m(n), the individual invocation cost of a service
// node; unset profiles default to 1 (so SumCost degrades to
// request–response counting).
func perCall(n *plan.Node) float64 {
	if n.Atom != nil && n.Atom.Sig != nil {
		if c := n.Atom.Sig.Statistics().CostPerCall; c > 0 {
			return c
		}
	}
	return 1
}

// respTime returns τ(n) in seconds; non-service nodes take no time.
func respTime(n *plan.Node) float64 {
	if n.Kind != plan.Service || n.Atom.Sig == nil {
		return 0
	}
	return n.Atom.Sig.Statistics().ResponseTime.Seconds()
}

// fetches returns F(n), 1 for non-chunked nodes.
func fetches(n *plan.Node) float64 {
	if n.Fetches > 1 {
		return float64(n.Fetches)
	}
	return 1
}

// SumCost is the sum cost metric (Eq. 3):
//
//	SCM(G) = Σ_n m(n) · F(n) · calls(n)
//
// summing the per-invocation charge over every request–response
// actually issued (a chunked invocation issues F fetches).
type SumCost struct{}

// Name implements Metric.
func (SumCost) Name() string { return "sum" }

// Cost implements Metric.
func (SumCost) Cost(p *plan.Plan) float64 {
	total := 0.0
	for _, n := range p.Nodes {
		if n.Kind == plan.Service {
			total += perCall(n) * fetches(n) * n.Calls
		}
	}
	return total
}

// RequestResponse counts the number of service requests needed to
// execute the plan (§2.3: the sum cost metric with every invocation
// cost set to 1). It is the metric of choice when network transfer
// dominates.
type RequestResponse struct{}

// Name implements Metric.
func (RequestResponse) Name() string { return "request-response" }

// Cost implements Metric.
func (RequestResponse) Cost(p *plan.Plan) float64 {
	total := 0.0
	for _, n := range p.Nodes {
		if n.Kind == plan.Service {
			total += fetches(n) * n.Calls
		}
	}
	return total
}

// ExecTime is the execution time metric (Eq. 4): for each
// input-to-output path, the bottleneck node's total service time
// (fetches × invocations × τ) plus the pipe fill/drain time (one τ
// for every other node on the path); the plan cost is the maximum
// over paths.
//
//	ETM(G) = max_{P ∈ paths(G)} [ max_{n ∈ P} F_n·calls_n·τ_n + Σ_{m ∈ P\{nbn}} τ_m ]
type ExecTime struct{}

// Name implements Metric.
func (ExecTime) Name() string { return "execution-time" }

// Cost implements Metric.
func (ExecTime) Cost(p *plan.Plan) float64 {
	worst := 0.0
	for _, path := range p.Paths() {
		bottleneck := 0.0
		sum := 0.0
		for _, n := range path {
			t := respTime(n)
			sum += t
			if w := fetches(n) * n.Calls * t; w > bottleneck {
				bottleneck = w
			}
		}
		// Remove the bottleneck node's single-τ contribution from the
		// fill/drain sum (Eq. 4 sums over P \ {nbn}).
		var bnTau float64
		for _, n := range path {
			t := respTime(n)
			if fetches(n)*n.Calls*t == bottleneck && t > bnTau {
				bnTau = t
			}
		}
		if c := bottleneck + sum - bnTau; c > worst {
			worst = c
		}
	}
	return worst
}

// Bottleneck is the metric of Srivastava et al. [16]: the total
// service time of the slowest node, relevant for pipelined execution
// of continuous queries (§2.3). The paper argues it is ill-suited to
// search services, which rarely produce all their tuples; it is
// provided as the baseline.
type Bottleneck struct{}

// Name implements Metric.
func (Bottleneck) Name() string { return "bottleneck" }

// Cost implements Metric.
func (Bottleneck) Cost(p *plan.Plan) float64 {
	worst := 0.0
	for _, n := range p.Nodes {
		if n.Kind != plan.Service {
			continue
		}
		if w := fetches(n) * n.Calls * respTime(n); w > worst {
			worst = w
		}
	}
	return worst
}

// TimeToScreen estimates the time until the first output tuple is
// presented to the user (§2.3): the first answer must traverse the
// longest pipe, paying one response time per node along it.
type TimeToScreen struct{}

// Name implements Metric.
func (TimeToScreen) Name() string { return "time-to-screen" }

// Cost implements Metric.
func (TimeToScreen) Cost(p *plan.Plan) float64 {
	worst := 0.0
	for _, path := range p.Paths() {
		sum := 0.0
		for _, n := range path {
			sum += respTime(n)
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst
}

// ByName returns the metric registered under the given name, for CLI
// use. Known names: sum, request-response, execution-time,
// bottleneck, time-to-screen.
func ByName(name string) (Metric, bool) {
	switch name {
	case "sum", "scm":
		return SumCost{}, true
	case "request-response", "rr", "calls":
		return RequestResponse{}, true
	case "execution-time", "etm", "time":
		return ExecTime{}, true
	case "bottleneck":
		return Bottleneck{}, true
	case "time-to-screen", "tts":
		return TimeToScreen{}, true
	default:
		return nil, false
	}
}

// Infinite is a sentinel cost larger than any real plan cost.
var Infinite = math.Inf(1)

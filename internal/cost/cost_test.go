package cost_test

import (
	"math"
	"testing"

	"mdq/internal/card"
	. "mdq/internal/cost"
	"mdq/internal/plan"
	"mdq/internal/simweb"
)

func annotated(t *testing.T, topo *plan.Topology, fFlight, fHotel int, mode card.CacheMode) *plan.Plan {
	t.Helper()
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, topo, fFlight, fHotel)
	if err != nil {
		t.Fatal(err)
	}
	card.Config{Mode: mode}.Annotate(p)
	return p
}

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// TestExecTimePlanO computes Eq. 4 for the Figure 8 plan by hand:
// with F=(3,4), calls(weather)=20 is the bottleneck (20×1.5=30) on
// both paths; the flight path pays its fill 1.2+9.7, the hotel path
// 1.2+4.9.
func TestExecTimePlanO(t *testing.T) {
	p := annotated(t, simweb.PlanOTopology(), 3, 4, card.OneCall)
	got := ExecTime{}.Cost(p)
	want := 30.0 + 1.2 + 9.7 // flight path dominates
	if !approx(got, want, 1e-9) {
		t.Errorf("ETM(O) = %g, want %g", got, want)
	}
}

// TestExecTimeSerial mirrors Example 5.1's ETM structure for the
// serial plan: single path, bottleneck plus fill of the rest.
func TestExecTimeSerial(t *testing.T) {
	p := annotated(t, simweb.PlanSTopology(), 3, 4, card.OneCall)
	// Path: conf(1×1.2), weather(20×1.5=30), flight(3×1×9.7=29.1),
	// hotel(4×1×4.9=19.6). Bottleneck = weather = 30; fill =
	// 1.2+9.7+4.9.
	want := 30.0 + 1.2 + 9.7 + 4.9
	if got := (ExecTime{}).Cost(p); !approx(got, want, 1e-9) {
		t.Errorf("ETM(S) = %g, want %g", got, want)
	}
}

func TestSumAndRequestResponse(t *testing.T) {
	p := annotated(t, simweb.PlanOTopology(), 3, 4, card.OneCall)
	// calls: conf 1, weather 20, flight 1 (3 fetches), hotel 1 (4
	// fetches) → requests = 1 + 20 + 3 + 4 = 28.
	if got := (RequestResponse{}).Cost(p); !approx(got, 28, 1e-9) {
		t.Errorf("RR(O) = %g, want 28", got)
	}
	// CostPerCall defaults to 1, so SCM = RR here.
	if got := (SumCost{}).Cost(p); !approx(got, 28, 1e-9) {
		t.Errorf("SCM(O) = %g, want 28", got)
	}
}

func TestBottleneckAndTimeToScreen(t *testing.T) {
	p := annotated(t, simweb.PlanOTopology(), 3, 4, card.OneCall)
	// Bottleneck: weather 20×1.5 = 30.
	if got := (Bottleneck{}).Cost(p); !approx(got, 30, 1e-9) {
		t.Errorf("bottleneck = %g, want 30", got)
	}
	// Time to screen: longest pipe = conf+weather+flight = 12.4.
	if got := (TimeToScreen{}).Cost(p); !approx(got, 12.4, 1e-9) {
		t.Errorf("TTS = %g, want 12.4", got)
	}
}

// TestPlanOrdering: the paper's analytical finding — under the
// execution-time metric O < S < P (Example 5.1 / Figure 11's
// prediction).
func TestPlanOrdering(t *testing.T) {
	etm := ExecTime{}
	o := etm.Cost(annotated(t, simweb.PlanOTopology(), 3, 4, card.OneCall))
	s := etm.Cost(annotated(t, simweb.PlanSTopology(), 3, 4, card.OneCall))
	p := etm.Cost(annotated(t, simweb.PlanPTopology(), 3, 4, card.OneCall))
	if !(o < s && s < p) {
		t.Errorf("expected ETM(O) < ETM(S) < ETM(P), got O=%g S=%g P=%g", o, s, p)
	}
}

// TestMonotoneUnderExtension: every metric is monotone when a plan
// is extended with more work (modelled here by increasing fetch
// factors, the phase-3 construction step).
func TestMonotoneUnderExtension(t *testing.T) {
	metrics := []Metric{SumCost{}, RequestResponse{}, ExecTime{}, Bottleneck{}, TimeToScreen{}}
	small := annotated(t, simweb.PlanOTopology(), 1, 1, card.OneCall)
	big := annotated(t, simweb.PlanOTopology(), 5, 7, card.OneCall)
	for _, m := range metrics {
		if m.Cost(small) > m.Cost(big)+1e-9 {
			t.Errorf("%s not monotone in fetches", m.Name())
		}
	}
}

// TestCacheReducesCost: request–response cost under one-call /
// optimal caching never exceeds the no-cache cost.
func TestCacheReducesCost(t *testing.T) {
	for _, topo := range []*plan.Topology{simweb.PlanSTopology(), simweb.PlanPTopology(), simweb.PlanOTopology()} {
		rr := RequestResponse{}
		no := rr.Cost(annotated(t, topo, 2, 2, card.NoCache))
		one := rr.Cost(annotated(t, topo, 2, 2, card.OneCall))
		opt := rr.Cost(annotated(t, topo, 2, 2, card.Optimal))
		if one > no+1e-9 || opt > one+1e-9 {
			t.Errorf("topology %s: RR no=%g one=%g opt=%g not decreasing", topo, no, one, opt)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sum", "request-response", "execution-time", "bottleneck", "time-to-screen", "etm", "rr"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

package simweb

import (
	"mdq/internal/abind"
	"mdq/internal/cq"
	"mdq/internal/plan"
	"mdq/internal/schema"
)

// RunningExampleText is the query of Figure 3: database conferences
// in the next six months, in locations at 28 °C or more, reachable
// with a flight and offering a luxury hotel so that flight plus
// hotel stay under 2000.
//
// Selectivity annotations carry the profile knowledge of §3.4/Table
// 1: the date window is folded into conf's profiled erspi (σ=1), the
// temperature filter is weather's profiled 0.05, and the price
// predicate spanning flight and hotel is the join selectivity 0.01
// used in Example 5.1.
const RunningExampleText = `
q(Conf, City, HPrice, FPrice, Start, StartTime, End, EndTime, Hotel) :-
    flight('Milano', City, Start, End, StartTime, EndTime, FPrice),
    hotel(Hotel, City, 'luxury', Start, End, HPrice),
    conf('DB', Conf, Start, End, City),
    weather(City, Temperature, Start),
    Start >= '2007/03/14' {1},
    End <= '2007/03/14' + 180 {1},
    Temperature >= 28 {0.05},
    FPrice + HPrice < 2000 {0.01}.`

// Atom indexes in the running-example query body (Figure 3 order).
const (
	AtomFlight  = 0
	AtomHotel   = 1
	AtomConf    = 2
	AtomWeather = 3
)

// RunningExampleQuery parses the running example and resolves it
// against the travel schema.
func RunningExampleQuery(sch *schema.Schema) (*cq.Query, error) {
	q, err := cq.Parse(RunningExampleText)
	if err != nil {
		return nil, err
	}
	if err := q.Resolve(sch); err != nil {
		return nil, err
	}
	return q, nil
}

// AssignmentAlpha1 is α1 of Example 4.1: conf by topic (pattern 1),
// flight, hotel with city and dates bound (pattern 1), weather by
// city and date.
func AssignmentAlpha1() abind.Assignment {
	return abind.Assignment{
		AtomFlight:  schema.MustPattern("iiiiooo"),
		AtomHotel:   schema.MustPattern("oiiiio"),
		AtomConf:    schema.MustPattern("ioooo"),
		AtomWeather: schema.MustPattern("ioi"),
	}
}

// PlanSTopology is plan S of §6 (Figure 7a): the serial plan
// conf → weather → flight → hotel suggested by the selective
// heuristics.
func PlanSTopology() *plan.Topology {
	return plan.Chain([]int{AtomConf, AtomWeather, AtomFlight, AtomHotel})
}

// PlanPTopology is plan P of §6 (Figure 7c): weather, flight and
// hotel in parallel right after conf, as suggested by the parallel
// heuristics.
func PlanPTopology() *plan.Topology {
	return plan.Layers([][]int{{AtomConf}, {AtomWeather, AtomFlight, AtomHotel}})
}

// PlanOTopology is the optimal plan O of §6 (Figures 7d and 8):
// conf → weather, then flight and hotel in parallel combined by a
// merge-scan join.
func PlanOTopology() *plan.Topology {
	return plan.Layers([][]int{{AtomConf}, {AtomWeather}, {AtomFlight, AtomHotel}})
}

// BuildPlan constructs and validates one of the named plans against
// the travel world, with the registry's join-method knowledge and
// the given fetch factors for flight and hotel (0 keeps 1).
func (w *TravelWorld) BuildPlan(q *cq.Query, topo *plan.Topology, fFlight, fHotel int) (*plan.Plan, error) {
	p, err := plan.Build(q, AssignmentAlpha1(), topo, plan.Options{ChooseMethod: w.Registry.MethodChooser()})
	if err != nil {
		return nil, err
	}
	if fFlight > 0 {
		p.ServiceNode[AtomFlight].Fetches = fFlight
	}
	if fHotel > 0 {
		p.ServiceNode[AtomHotel].Fetches = fHotel
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

package simweb

import (
	"fmt"
	"time"

	"mdq/internal/cq"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/tabsvc"
)

// MashupWorld is the end-user mash-up scenario motivating §1 and the
// "news management, bibliographic search" domains of §6: a book
// search engine, a review aggregator and a news search engine
// combined into one multi-domain query ("recent news about the
// authors of well-reviewed database books").
type MashupWorld struct {
	Registry *service.Registry
	Schema   *schema.Schema

	Books   *tabsvc.Table
	Reviews *tabsvc.Table
	News    *tabsvc.Table
}

// Calibration of the synthetic catalog.
const (
	MashupTopics        = 6
	BooksPerTopic       = 30
	ReviewsPerBook      = 3
	HeadlinesPerKeyword = 24
)

var (
	bookLatency   = tabsvc.Latency{Base: 900 * time.Millisecond, CacheHit: 60 * time.Millisecond}
	reviewLatency = tabsvc.Latency{Base: 400 * time.Millisecond, CacheHit: 40 * time.Millisecond}
	newsLatency   = tabsvc.Latency{Base: 1100 * time.Millisecond, CacheHit: 80 * time.Millisecond}
)

var (
	domSubject = schema.Domain{Name: "Subject", Kind: schema.StringValue, DistinctValues: MashupTopics}
	domISBN    = schema.Domain{Name: "ISBN", Kind: schema.StringValue, DistinctValues: MashupTopics * BooksPerTopic}
	domAuthor  = schema.Domain{Name: "Author", Kind: schema.StringValue, DistinctValues: 90}
	domOutlet  = schema.Domain{Name: "Outlet", Kind: schema.StringValue, DistinctValues: 8}
)

// MashupSignatures returns the three source signatures.
func MashupSignatures() (book, review, news *schema.Signature) {
	book = &schema.Signature{
		Name: "book",
		Attrs: []schema.Attribute{
			{Name: "Subject", Domain: domSubject},
			{Name: "Title", Domain: schema.DomName},
			{Name: "Author", Domain: domAuthor},
			{Name: "ISBN", Domain: domISBN},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("iooo")},
		Kind:     schema.Search, // ranked by store relevance
		Stats:    schema.Stats{ERSPI: 30, ChunkSize: 5, ResponseTime: bookLatency.Base},
	}
	review = &schema.Signature{
		Name: "review",
		Attrs: []schema.Attribute{
			{Name: "ISBN", Domain: domISBN},
			{Name: "Rating", Domain: schema.DomNumber},
			{Name: "Outlet", Domain: domOutlet},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("ioo")},
		Kind:     schema.Exact,
		Stats:    schema.Stats{ERSPI: ReviewsPerBook, ResponseTime: reviewLatency.Base},
	}
	news = &schema.Signature{
		Name: "news",
		Attrs: []schema.Attribute{
			{Name: "Keyword", Domain: domAuthor},
			{Name: "Headline", Domain: schema.DomName},
			{Name: "Date", Domain: schema.DomDate},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("ioo")},
		Kind:     schema.Search, // ranked by recency/relevance
		Stats:    schema.Stats{ERSPI: HeadlinesPerKeyword, ChunkSize: 8, Decay: 40, ResponseTime: newsLatency.Base},
	}
	return book, review, news
}

// MashupExampleText: news about authors of well-reviewed database
// books.
const MashupExampleText = `
briefing(Title, Author, Headline, Rating) :-
    book('databases', Title, Author, ISBN),
    review(ISBN, Rating, Outlet),
    news(Author, Headline, Date),
    Rating >= 4 {0.3},
    Date >= '2008/01/01' {0.7}.`

// NewMashupWorld builds the synthetic catalog and registers the
// services.
func NewMashupWorld() *MashupWorld {
	bookSig, reviewSig, newsSig := MashupSignatures()
	w := &MashupWorld{Registry: service.NewRegistry()}

	subjects := []string{"databases", "networks", "compilers", "graphics", "security", "ai"}
	author := func(i int) string { return fmt.Sprintf("Author %c. %02d", 'A'+i%26, i%90) }

	var bookRows [][]schema.Value
	isbn := 0
	for si, subj := range subjects {
		for b := 0; b < BooksPerTopic; b++ {
			bookRows = append(bookRows, []schema.Value{
				schema.S(subj),
				schema.S(fmt.Sprintf("%s Vol. %d", subj, b+1)),
				schema.S(author(si*17 + b)),
				schema.S(fmt.Sprintf("ISBN-%04d", isbn)),
			})
			isbn++
		}
	}

	var reviewRows [][]schema.Value
	outlets := []string{"TechRev", "DailyDB", "SysWeekly", "CompJournal", "ACM Notes", "ReadWrite", "ByteMag", "Query"}
	for i := 0; i < isbn; i++ {
		for r := 0; r < ReviewsPerBook; r++ {
			reviewRows = append(reviewRows, []schema.Value{
				schema.S(fmt.Sprintf("ISBN-%04d", i)),
				schema.N(float64(1 + (i*7+r*3)%5)),
				schema.S(outlets[(i+r)%len(outlets)]),
			})
		}
	}

	var newsRows [][]schema.Value
	base := schema.D(2008, 1, 1)
	for a := 0; a < 90; a++ {
		name := fmt.Sprintf("Author %c. %02d", 'A'+a%26, a)
		for h := 0; h < HeadlinesPerKeyword; h++ {
			d := base
			d.Num += float64((a*5 + h*11) % 240)
			if h%3 == 2 {
				d.Num -= 300 // some stale articles fail the date filter
			}
			newsRows = append(newsRows, []schema.Value{
				schema.S(name),
				schema.S(fmt.Sprintf("%s in the news %02d", name, h+1)),
				d,
			})
		}
	}

	w.Books = tabsvc.MustNew(bookSig, bookRows, bookLatency)
	w.Reviews = tabsvc.MustNew(reviewSig, reviewRows, reviewLatency)
	w.News = tabsvc.MustNew(newsSig, newsRows, newsLatency)
	w.Registry.MustRegister(w.Books)
	w.Registry.MustRegister(w.Reviews)
	w.Registry.MustRegister(w.News)
	w.Registry.SetJoinMethod("review", "news", plan.NestedLoop)

	sch, err := w.Registry.Schema()
	if err != nil {
		panic(err)
	}
	w.Schema = sch
	return w
}

// MashupQuery parses and resolves the mashup query.
func (w *MashupWorld) MashupQuery() (*cq.Query, error) {
	q, err := cq.Parse(MashupExampleText)
	if err != nil {
		return nil, err
	}
	if err := q.Resolve(w.Schema); err != nil {
		return nil, err
	}
	return q, nil
}

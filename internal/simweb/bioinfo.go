package simweb

import (
	"fmt"
	"time"

	"mdq/internal/cq"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/tabsvc"
)

// BioWorld simulates the bioinformatics sources of §6 — InterPro,
// UniProt, BLAST and KEGG — with which the paper demonstrates that
// the framework generalizes beyond travel: "we were able to query
// protein repositories to find evolutionary relationships between
// human and mouse proteins including repeated protein domains and
// involved in the glycolysis metabolic pathway".
type BioWorld struct {
	Registry *service.Registry
	Schema   *schema.Schema

	KEGG     *tabsvc.Table
	UniProt  *tabsvc.Table
	InterPro *tabsvc.Table
	BLAST    *tabsvc.Table
}

// Calibration of the synthetic proteome.
const (
	BioProteins     = 400 // per organism
	GlycolysisGenes = 40
)

var (
	keggLatency     = tabsvc.Latency{Base: 800 * time.Millisecond, CacheHit: 50 * time.Millisecond}
	uniprotLatency  = tabsvc.Latency{Base: 500 * time.Millisecond, CacheHit: 50 * time.Millisecond}
	interproLatency = tabsvc.Latency{Base: 1000 * time.Millisecond, CacheHit: 50 * time.Millisecond}
	blastLatency    = tabsvc.Latency{Base: 3000 * time.Millisecond} // alignments are never cached
)

var (
	domProtein  = schema.Domain{Name: "Accession", Kind: schema.StringValue, DistinctValues: 2 * BioProteins}
	domOrganism = schema.Domain{Name: "Organism", Kind: schema.StringValue, DistinctValues: 2}
	domPathway  = schema.Domain{Name: "Pathway", Kind: schema.StringValue, DistinctValues: 12}
	domDomain   = schema.Domain{Name: "ProteinDomain", Kind: schema.StringValue, DistinctValues: 60}
)

// BioSignatures returns the four source signatures.
func BioSignatures() (kegg, uniprot, interpro, blast *schema.Signature) {
	kegg = &schema.Signature{
		Name: "kegg",
		Attrs: []schema.Attribute{
			{Name: "Pathway", Domain: domPathway},
			{Name: "Accession", Domain: domProtein},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("io")},
		Kind:     schema.Exact,
		Stats:    schema.Stats{ERSPI: 35, ResponseTime: keggLatency.Base},
	}
	uniprot = &schema.Signature{
		Name: "uniprot",
		Attrs: []schema.Attribute{
			{Name: "Accession", Domain: domProtein},
			{Name: "Organism", Domain: domOrganism},
			{Name: "Gene", Domain: schema.DomName},
			{Name: "Length", Domain: schema.DomNumber},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("iooo")},
		Kind:     schema.Exact,
		Stats:    schema.Stats{ERSPI: 1, ResponseTime: uniprotLatency.Base},
	}
	interpro = &schema.Signature{
		Name: "interpro",
		Attrs: []schema.Attribute{
			{Name: "Accession", Domain: domProtein},
			{Name: "Domain", Domain: domDomain},
			{Name: "Repeats", Domain: schema.DomNumber},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("ioo")},
		Kind:     schema.Exact,
		Stats:    schema.Stats{ERSPI: 2.5, ResponseTime: interproLatency.Base},
	}
	blast = &schema.Signature{
		Name: "blast",
		Attrs: []schema.Attribute{
			{Name: "Accession", Domain: domProtein},
			{Name: "TargetOrganism", Domain: domOrganism},
			{Name: "Hit", Domain: domProtein},
			{Name: "Score", Domain: schema.DomNumber},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("iioo")},
		Kind:     schema.Search, // ranked by alignment score
		Stats:    schema.Stats{ERSPI: 18, ChunkSize: 10, Decay: 50, ResponseTime: blastLatency.Base},
	}
	return kegg, uniprot, interpro, blast
}

// BioExampleText is the §6 protein query: human glycolysis proteins
// with a repeated domain and their mouse homologs by BLAST score.
const BioExampleText = `
homologs(Acc, Gene, Hit, Score) :-
    kegg('glycolysis', Acc),
    uniprot(Acc, 'human', Gene, Length),
    interpro(Acc, Dom, Repeats),
    blast(Acc, 'mouse', Hit, Score),
    Repeats >= 2 {0.4},
    Score >= 200 {0.6}.`

// NewBioWorld builds the synthetic proteome and registers the four
// services.
func NewBioWorld() *BioWorld {
	keggSig, uniprotSig, interproSig, blastSig := BioSignatures()
	w := &BioWorld{Registry: service.NewRegistry()}

	acc := func(org string, i int) string { return fmt.Sprintf("%s%04d", org[:1], i) }

	var keggRows [][]schema.Value
	pathways := []string{"glycolysis", "tca-cycle", "pentose-phosphate", "fatty-acid", "urea-cycle",
		"calvin", "gluconeogenesis", "ppp-oxidative", "mapk", "wnt", "notch", "apoptosis"}
	for pi, pw := range pathways {
		n := GlycolysisGenes - pi*2
		if n < 8 {
			n = 8
		}
		for g := 0; g < n; g++ {
			keggRows = append(keggRows, []schema.Value{
				schema.S(pw),
				schema.S(acc("human", (pi*53+g*7)%BioProteins)),
			})
		}
	}

	var uniRows [][]schema.Value
	for _, org := range []string{"human", "mouse"} {
		for i := 0; i < BioProteins; i++ {
			uniRows = append(uniRows, []schema.Value{
				schema.S(acc(org, i)),
				schema.S(org),
				schema.S(fmt.Sprintf("GENE%s%03d", org[:1], i)),
				schema.N(float64(120 + (i*37)%900)),
			})
		}
	}

	var iprRows [][]schema.Value
	for _, org := range []string{"human", "mouse"} {
		for i := 0; i < BioProteins; i++ {
			nDom := 1 + i%3
			for d := 0; d < nDom; d++ {
				iprRows = append(iprRows, []schema.Value{
					schema.S(acc(org, i)),
					schema.S(fmt.Sprintf("IPR%05d", (i*11+d*17)%60)),
					schema.N(float64(1 + (i+d)%4)), // repeat count 1..4
				})
			}
		}
	}

	// BLAST: for each human protein, ranked mouse hits with
	// descending score; the top hit is the index-shifted homolog.
	var blastRows [][]schema.Value
	for i := 0; i < BioProteins; i++ {
		nHits := 12 + i%14
		for h := 0; h < nHits; h++ {
			blastRows = append(blastRows, []schema.Value{
				schema.S(acc("human", i)),
				schema.S("mouse"),
				schema.S(acc("mouse", (i+h*13)%BioProteins)),
				schema.N(float64(950 - h*60 - i%30)),
			})
		}
	}

	w.KEGG = tabsvc.MustNew(keggSig, keggRows, keggLatency)
	w.UniProt = tabsvc.MustNew(uniprotSig, uniRows, uniprotLatency)
	w.InterPro = tabsvc.MustNew(interproSig, iprRows, interproLatency)
	w.BLAST = tabsvc.MustNew(blastSig, blastRows, blastLatency)
	w.Registry.MustRegister(w.KEGG)
	w.Registry.MustRegister(w.UniProt)
	w.Registry.MustRegister(w.InterPro)
	w.Registry.MustRegister(w.BLAST)
	w.Registry.SetJoinMethod("interpro", "blast", plan.NestedLoop)

	sch, err := w.Registry.Schema()
	if err != nil {
		panic(err)
	}
	w.Schema = sch
	return w
}

// BioQuery parses and resolves the protein query.
func (w *BioWorld) BioQuery() (*cq.Query, error) {
	q, err := cq.Parse(BioExampleText)
	if err != nil {
		return nil, err
	}
	if err := q.Resolve(w.Schema); err != nil {
		return nil, err
	}
	return q, nil
}

// Package simweb provides the simulated deep-web sources used by the
// paper's experiments (§6): the travel services conf, weather,
// flight and hotel wrapped from conference-service.com,
// accuweather.com, expedia.com and bookings.com, plus the
// bioinformatics domain mentioned as a generalization.
//
// The datasets are synthetic but calibrated so that the call counts
// of Figure 11 are reproduced exactly:
//
//   - conf('DB', …) returns 71 tuples over 54 distinct cities;
//   - 16 of those tuples (11 distinct cities) pass the 28 °C filter;
//   - one hot city has no flights from Milano; the flights available
//     to the other ten sum to 284 tuples over the 16 passing tuples;
//   - consecutive conf tuples never share a city, and the filtered
//     hot subsequence never repeats a city back to back, so the
//     one-call cache saves nothing before the flight stage (as
//     measured by the paper);
//   - the weather source knows 220 cities, 11 of which are hot, so
//     profiling reproduces Table 1's 0.05 expected result size;
//   - conf hosts 100 conferences over 5 topics, so profiling by
//     topic reproduces Table 1's expected result size of 20.
//
// Latencies follow Table 1 (conf 1.2 s, weather 1.5 s, flight 9.7 s,
// hotel 4.9 s). The hotel and weather servers answer repeated
// requests — and later pages of an already-computed query — from
// their own cache (75 ms), while the flight server does not cache at
// all; both behaviours are reported in §6, and the hit latency is
// calibrated so plan S's no-cache makespan lands on the paper's
// 374 s.
package simweb

import (
	"fmt"
	"time"

	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/tabsvc"
)

// Calibration constants (see package comment).
const (
	TotalCities     = 220
	ConfCities      = 54
	HotCities       = 11
	DBConfTuples    = 71
	HotConfTuples   = 16
	FlightTupleSum  = 284
	TotalConfs      = 100
	HotTemperature  = 28
	LuxuryPerCity   = 40
	OtherCategories = 3
	OtherPerCity    = 15
)

// Table 1 latencies and the server-side cache behaviour of §6.
var (
	ConfLatency    = tabsvc.Latency{Base: 1200 * time.Millisecond, CacheHit: 75 * time.Millisecond}
	WeatherLatency = tabsvc.Latency{Base: 1500 * time.Millisecond, CacheHit: 75 * time.Millisecond}
	FlightLatency  = tabsvc.Latency{Base: 9700 * time.Millisecond} // Expedia does not cache (§6)
	HotelLatency   = tabsvc.Latency{Base: 4900 * time.Millisecond, CacheHit: 75 * time.Millisecond}
)

var hotCityNames = []string{
	"Cancun", "Bangkok", "Singapore", "Miami", "Dubai",
	"Cairo", "Phuket", "Honolulu", "Mumbai", "Jakarta", "Manila",
}

var coldCityNames = []string{
	"London", "Auckland", "Milano", "Paris", "Berlin", "Oslo", "Helsinki",
	"Vienna", "Prague", "Warsaw", "Dublin", "Edinburgh", "Boston", "Seattle",
	"Chicago", "Toronto", "Montreal", "Denver", "Portland", "Amsterdam",
	"Brussels", "Copenhagen", "Stockholm", "Zurich", "Geneva", "Munich",
	"Hamburg", "Lyon", "Turin", "Florence", "Bologna", "Madrid", "Porto",
	"Krakow", "Budapest", "Ljubljana", "Zagreb", "Bratislava", "Tallinn",
	"Riga", "Vilnius", "Reykjavik", "Bergen",
}

// TravelWorld bundles the four travel services, their registry and
// schema, and the calibrated ground-truth facts that tests assert.
type TravelWorld struct {
	Registry *service.Registry
	Schema   *schema.Schema

	Conf    *tabsvc.Table
	Weather *tabsvc.Table
	Flight  *tabsvc.Table
	Hotel   *tabsvc.Table
}

// TravelOptions tunes the simulated servers.
type TravelOptions struct {
	// JitterSigma adds deterministic log-normal latency noise (used
	// by the §6 multithreading experiment); 0 keeps Table 1's
	// constants.
	JitterSigma float64
	// DisableServerCache makes every request pay full latency.
	DisableServerCache bool
}

func (o TravelOptions) apply(l tabsvc.Latency) tabsvc.Latency {
	l.JitterSigma = o.JitterSigma
	if o.DisableServerCache {
		l.CacheHit = 0
	}
	return l
}

// TravelSignatures returns the schema of Figure 2 with the profiled
// statistics of Table 1. The weather erspi is registered as 1.0 (one
// temperature tuple per city/date); Table 1's 0.05 is the erspi with
// the query template's Temperature ≥ 28 predicate folded in (§3.4),
// which the running-example query carries as an explicit selectivity
// annotation.
func TravelSignatures() (conf, weather, flight, hotel *schema.Signature) {
	conf = &schema.Signature{
		Name: "conf",
		Attrs: []schema.Attribute{
			{Name: "Topic", Domain: schema.DomTopic},
			{Name: "Name", Domain: schema.DomName},
			{Name: "Start", Domain: schema.DomDate},
			{Name: "End", Domain: schema.DomDate},
			{Name: "City", Domain: schema.DomCity},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("ioooo"), schema.MustPattern("ooooi")},
		Kind:     schema.Exact,
		Stats:    schema.Stats{ERSPI: 20, ResponseTime: ConfLatency.Base},
	}
	weather = &schema.Signature{
		Name: "weather",
		Attrs: []schema.Attribute{
			{Name: "City", Domain: schema.DomCity},
			{Name: "Temperature", Domain: schema.DomTemp},
			{Name: "Date", Domain: schema.DomDate},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("ioi")},
		Kind:     schema.Exact,
		Stats:    schema.Stats{ERSPI: 1, ResponseTime: WeatherLatency.Base},
	}
	flight = &schema.Signature{
		Name: "flight",
		Attrs: []schema.Attribute{
			{Name: "From", Domain: schema.DomCity},
			{Name: "To", Domain: schema.DomCity},
			{Name: "OutDate", Domain: schema.DomDate},
			{Name: "RetDate", Domain: schema.DomDate},
			{Name: "OutTime", Domain: schema.DomTime},
			{Name: "RetTime", Domain: schema.DomTime},
			{Name: "Price", Domain: schema.DomPrice},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("iiiiooo")},
		Kind:     schema.Search,
		Stats:    schema.Stats{ERSPI: 14, ChunkSize: 25, ResponseTime: FlightLatency.Base},
	}
	hotel = &schema.Signature{
		Name: "hotel",
		Attrs: []schema.Attribute{
			{Name: "Name", Domain: schema.DomName},
			{Name: "City", Domain: schema.DomCity},
			{Name: "Category", Domain: schema.DomCat},
			{Name: "CheckInDate", Domain: schema.DomDate},
			{Name: "CheckOutDate", Domain: schema.DomDate},
			{Name: "Price", Domain: schema.DomPrice},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("oiiiio"), schema.MustPattern("oooooo")},
		Kind:     schema.Search,
		Stats:    schema.Stats{ERSPI: 21, ChunkSize: 5, ResponseTime: HotelLatency.Base},
	}
	return conf, weather, flight, hotel
}

// CityName returns the i-th city (0-based): the 11 hot cities first,
// then the 43 cold conference cities, then synthetic fillers up to
// TotalCities.
func CityName(i int) string {
	switch {
	case i < len(hotCityNames):
		return hotCityNames[i]
	case i < len(hotCityNames)+len(coldCityNames):
		return coldCityNames[i-len(hotCityNames)]
	default:
		return fmt.Sprintf("Newtown-%03d", i)
	}
}

// Temperature returns the calibrated average temperature of a city:
// the HotCities first cities are at or above 28 °C, all others
// below.
func Temperature(i int) float64 {
	if i < HotCities {
		return float64(HotTemperature + i%8)
	}
	return float64(5 + (i*7)%23)
}

// confDates returns the shared (start, end) pair of conference-city
// i. Same-city conferences share dates (co-located events), which
// keeps the optimal-cache call counts of Figure 11 exact. All dates
// fall inside the query window [2007/03/14, 2007/03/14+180].
func confDates(i int) (start, end schema.Value) {
	s := schema.D(2007, 3, 20)
	s.Num += float64((i * 3) % 170)
	e := s
	e.Num += 3
	return s, e
}

// DBConfCityOrder returns, in emission order, the conference-city
// index of each of the 71 'DB' tuples. The interleaving guarantees
// no two consecutive tuples share a city — neither in the full
// sequence nor in the subsequence of hot tuples — so the one-call
// cache finds nothing to collapse upstream of flight (Figure 11).
func DBConfCityOrder() []int {
	var order []int
	// First pass: every conference city once, hot and cold
	// interleaved: h0,c0,h1,c1,…,h10,c10,c11,…,c42.
	for i := 0; i < HotCities; i++ {
		order = append(order, i)           // hot city i
		order = append(order, HotCities+i) // cold city i
	}
	for i := HotCities; i < ConfCities-HotCities; i++ {
		order = append(order, HotCities+i)
	}
	// Second pass: the 17 duplicates — hot cities 0..4 and cold
	// cities 0..11 — again interleaved.
	for i := 0; i < 5; i++ {
		order = append(order, i)
		order = append(order, HotCities+i)
	}
	for i := 5; i < 12; i++ {
		order = append(order, HotCities+i)
	}
	return order
}

// FlightsPerHotCity returns the number of Milano flights to hot city
// i (0-based). Hot city 10 (Manila) has none — "for one city no
// flight is found" (§6). The counts are calibrated so the flight
// tuples flowing through the serial plan total 284: duplicated hot
// cities 0–4 contribute twice.
func FlightsPerHotCity(i int) int {
	switch {
	case i < 5:
		return 20 // counted twice: 200 tuples
	case i < 9:
		return 17 // 68 tuples
	case i == 9:
		return 16 // 16 tuples
	default:
		return 0 // hot city 10: no route
	}
}

// NewTravelWorld builds the four calibrated services and registers
// them (merge-scan for the flight/hotel pair, §3.3 registration-time
// choice).
func NewTravelWorld(opts TravelOptions) *TravelWorld {
	confSig, weatherSig, flightSig, hotelSig := TravelSignatures()

	w := &TravelWorld{Registry: service.NewRegistry()}
	w.Conf = tabsvc.MustNew(confSig, confRows(), opts.apply(ConfLatency))
	w.Weather = tabsvc.MustNew(weatherSig, weatherRows(), opts.apply(WeatherLatency))
	w.Flight = tabsvc.MustNew(flightSig, flightRows(), opts.apply(FlightLatency))
	w.Hotel = tabsvc.MustNew(hotelSig, hotelRows(), opts.apply(HotelLatency))

	w.Registry.MustRegister(w.Conf)
	w.Registry.MustRegister(w.Weather)
	w.Registry.MustRegister(w.Flight)
	w.Registry.MustRegister(w.Hotel)
	w.Registry.SetJoinMethod("flight", "hotel", plan.MergeScan)

	sch, err := w.Registry.Schema()
	if err != nil {
		panic(err)
	}
	w.Schema = sch
	return w
}

// ResetCounters clears per-service counters and server caches before
// an experiment run.
func (w *TravelWorld) ResetCounters() {
	w.Conf.ResetServerCache()
	w.Weather.ResetServerCache()
	w.Flight.ResetServerCache()
	w.Hotel.ResetServerCache()
}

func confRows() [][]schema.Value {
	var rows [][]schema.Value
	n := 0
	for _, city := range DBConfCityOrder() {
		start, end := confDates(city)
		n++
		rows = append(rows, []schema.Value{
			schema.S("DB"),
			schema.S(fmt.Sprintf("Intl Conf on Databases %02d (%s)", n, CityName(city))),
			start, end,
			schema.S(CityName(city)),
		})
	}
	// Other topics: 29 conferences so that 100 conferences over 5
	// topics profile to an erspi of 20 (Table 1).
	other := []struct {
		topic string
		count int
	}{{"AI", 12}, {"SE", 9}, {"OS", 3}, {"NET", 5}}
	for _, o := range other {
		for j := 0; j < o.count; j++ {
			city := HotCities + (j*5+len(o.topic))%(ConfCities-HotCities)
			start, end := confDates(city)
			rows = append(rows, []schema.Value{
				schema.S(o.topic),
				schema.S(fmt.Sprintf("Intl Conf on %s %02d (%s)", o.topic, j+1, CityName(city))),
				start, end,
				schema.S(CityName(city)),
			})
		}
	}
	return rows
}

func weatherRows() [][]schema.Value {
	// One tuple per (city, conference start date): the average
	// temperature of the city on that date.
	dates := map[float64]schema.Value{}
	for i := 0; i < ConfCities; i++ {
		s, _ := confDates(i)
		dates[s.Num] = s
	}
	var rows [][]schema.Value
	for i := 0; i < TotalCities; i++ {
		for _, d := range sortedDates(dates) {
			rows = append(rows, []schema.Value{
				schema.S(CityName(i)),
				schema.N(Temperature(i)),
				d,
			})
		}
	}
	return rows
}

func sortedDates(m map[float64]schema.Value) []schema.Value {
	var keys []float64
	for k := range m {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	out := make([]schema.Value, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

var departureTimes = []string{"06:40", "08:15", "10:05", "12:30", "14:45", "17:20", "19:10", "21:35"}

func flightRows() [][]schema.Value {
	var rows [][]schema.Value
	addRoute := func(cityIdx, count int) {
		start, end := confDates(cityIdx)
		for j := 0; j < count; j++ {
			rows = append(rows, []schema.Value{
				schema.S("Milano"),
				schema.S(CityName(cityIdx)),
				start, end,
				schema.S(departureTimes[j%len(departureTimes)]),
				schema.S(departureTimes[(j+3)%len(departureTimes)]),
				schema.N(float64(95 + 13*j)), // ranked by increasing price
			})
		}
	}
	for i := 0; i < HotCities; i++ {
		addRoute(i, FlightsPerHotCity(i))
	}
	// Cold-city routes: London is dense (exceeds one chunk, so
	// profiling detects the 25-tuple chunk size); 18 more cold
	// conference cities get 10 flights each.
	addRoute(HotCities+0, 60) // London
	for i := 1; i <= 18; i++ {
		addRoute(HotCities+i, 10)
	}
	return rows
}

var hotelCategories = []string{"standard", "budget", "hostel"}

func hotelRows() [][]schema.Value {
	var rows [][]schema.Value
	for i := 0; i < ConfCities; i++ {
		start, end := confDates(i)
		city := CityName(i)
		for j := 0; j < LuxuryPerCity; j++ {
			rows = append(rows, []schema.Value{
				schema.S(fmt.Sprintf("Grand Hotel %s %02d", city, j+1)),
				schema.S(city),
				schema.S("luxury"),
				start, end,
				schema.N(float64(180 + 17*j)), // ranked
			})
		}
		for _, cat := range hotelCategories {
			for j := 0; j < OtherPerCity; j++ {
				rows = append(rows, []schema.Value{
					schema.S(fmt.Sprintf("%s Inn %s %02d", cat, city, j+1)),
					schema.S(city),
					schema.S(cat),
					start, end,
					schema.N(float64(60 + 9*j)),
				})
			}
		}
	}
	return rows
}

package simweb

import (
	"fmt"
	"math"
	"time"

	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/tabsvc"
)

// This file provides a synthetic world with deliberately skewed
// (Zipfian) value distributions, the workload on which value-
// sensitive selectivity estimation visibly diverges from the uniform
// model: the same query template costs orders of magnitude more when
// bound to the head of the distribution than to its tail.

// ZipfWeights returns n weights following a Zipf law with exponent s
// (weight i ∝ 1/(i+1)^s), normalized to sum to 1. n ≤ 0 returns nil.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// ZipfTag returns the i-th tag name (0-based, most frequent first).
func ZipfTag(i int) string { return fmt.Sprintf("tag-%02d", i) }

// ZipfWorld bundles a two-service catalog/review world whose catalog
// tags follow a Zipf law, with per-attribute value distributions
// profiled at registration (tabsvc.Table.ProfileValues), so the
// optimizer prices each binding of the canonical template by its
// actual frequency.
type ZipfWorld struct {
	Registry *service.Registry
	Schema   *schema.Schema

	Catalog *tabsvc.Table
	Review  *tabsvc.Table

	// Tags is the number of distinct catalog tags; Weights their
	// Zipfian frequency, most common first.
	Tags    int
	Weights []float64
}

// ZipfExampleText is the canonical query of the Zipf world, bound to
// the most common tag.
var ZipfExampleText = "q(Item, Score) :- catalog('" + ZipfTag(0) + "', Item), review(Item, Score), Score >= 4."

// ZipfTemplateText is the parameterized form of the canonical query,
// for exercising binding-sensitive template re-costing.
const ZipfTemplateText = "q(Item, Score) :- catalog($tag, Item), review(Item, Score), Score >= 4."

// NewZipfWorld builds the skewed world: `rows` catalog items spread
// over `tags` tags by a Zipf law with exponent s (tags ≤ 0 defaults
// to 50, rows ≤ 0 to 2000, s ≤ 0 to 1.1), three reviews per item,
// and value distributions profiled on both tables.
func NewZipfWorld(tags, rows int, s float64) *ZipfWorld {
	if tags <= 0 {
		tags = 50
	}
	if rows <= 0 {
		rows = 2000
	}
	if s <= 0 {
		s = 1.1
	}
	weights := ZipfWeights(tags, s)

	domTag := schema.Domain{Name: "Tag", Kind: schema.StringValue, DistinctValues: tags}
	domItem := schema.Domain{Name: "Item", Kind: schema.StringValue}
	domScore := schema.Domain{Name: "Score", Kind: schema.NumberValue, DistinctValues: 5}

	var catRows [][]schema.Value
	var revRows [][]schema.Value
	total := 0
	for i := 0; i < tags; i++ {
		count := int(math.Round(weights[i] * float64(rows)))
		if count < 1 {
			count = 1
		}
		for j := 0; j < count; j++ {
			item := fmt.Sprintf("item-%02d-%04d", i, j)
			catRows = append(catRows, []schema.Value{schema.S(ZipfTag(i)), schema.S(item)})
			for r := 0; r < 3; r++ {
				score := float64((i+j+r*2)%5 + 1)
				revRows = append(revRows, []schema.Value{schema.S(item), schema.N(score)})
			}
			total++
		}
	}

	catalogSig := &schema.Signature{
		Name: "catalog",
		Attrs: []schema.Attribute{
			{Name: "Tag", Domain: domTag},
			{Name: "Item", Domain: domItem},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("io")},
		Kind:     schema.Exact,
		Stats: schema.Stats{
			ERSPI:        float64(total) / float64(tags),
			ResponseTime: 100 * time.Millisecond,
		},
	}
	reviewSig := &schema.Signature{
		Name: "review",
		Attrs: []schema.Attribute{
			{Name: "Item", Domain: domItem},
			{Name: "Score", Domain: domScore},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("io")},
		Kind:     schema.Exact,
		Stats: schema.Stats{
			ERSPI:        3,
			ResponseTime: 200 * time.Millisecond,
		},
	}

	w := &ZipfWorld{
		Registry: service.NewRegistry(),
		Tags:     tags,
		Weights:  weights,
	}
	w.Catalog = tabsvc.MustNew(catalogSig, catRows, tabsvc.Latency{Base: 100 * time.Millisecond})
	w.Review = tabsvc.MustNew(reviewSig, revRows, tabsvc.Latency{Base: 200 * time.Millisecond})
	w.Catalog.ProfileValues(8, 8)
	w.Review.ProfileValues(8, 8)
	w.Registry.MustRegister(w.Catalog)
	w.Registry.MustRegister(w.Review)

	sch, err := w.Registry.Schema()
	if err != nil {
		panic(err)
	}
	w.Schema = sch
	return w
}

package simweb_test

import (
	"context"
	"testing"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/exec"
	"mdq/internal/opt"
	"mdq/internal/schema"
	"mdq/internal/service"
	. "mdq/internal/simweb"
)

// TestTravelCalibration asserts the ground-truth facts the Figure 11
// reproduction rests on, directly against the generated dataset.
func TestTravelCalibration(t *testing.T) {
	w := NewTravelWorld(TravelOptions{})
	ctx := context.Background()

	// conf('DB', …) returns exactly 71 tuples over 54 distinct
	// cities.
	resp, err := w.Conf.Invoke(ctx, 0, service.Request{Inputs: []schema.Value{schema.S("DB")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != DBConfTuples {
		t.Fatalf("conf(DB) rows = %d, want %d", len(resp.Rows), DBConfTuples)
	}
	cities := map[string]bool{}
	hotTuples := 0
	hotCities := map[string]bool{}
	var hotSeq []string
	for i, row := range resp.Rows {
		city := row[4].Str
		cities[city] = true
		// No two consecutive tuples share a city.
		if i > 0 && resp.Rows[i-1][4].Str == city {
			t.Errorf("conf tuples %d and %d share city %s consecutively", i-1, i, city)
		}
		if isHot(w, t, city, row[2]) {
			hotTuples++
			hotCities[city] = true
			hotSeq = append(hotSeq, city)
		}
	}
	if len(cities) != ConfCities {
		t.Errorf("distinct cities = %d, want %d", len(cities), ConfCities)
	}
	if hotTuples != HotConfTuples {
		t.Errorf("hot tuples = %d, want %d", hotTuples, HotConfTuples)
	}
	if len(hotCities) != HotCities {
		t.Errorf("hot cities = %d, want %d", len(hotCities), HotCities)
	}
	// The hot subsequence never repeats a city back to back (the
	// one-call cache must not collapse anything before flight).
	for i := 1; i < len(hotSeq); i++ {
		if hotSeq[i] == hotSeq[i-1] {
			t.Errorf("hot tuples %d and %d share city %s consecutively", i-1, i, hotSeq[i])
		}
	}

	// Flight tuples over the 16 passing tuples sum to 284; exactly
	// one hot city has no flights.
	total := 0
	noFlight := 0
	for _, row := range resp.Rows {
		city := row[4]
		if !isHot(w, t, city.Str, row[2]) {
			continue
		}
		fr, err := w.Flight.Invoke(ctx, 0, service.Request{
			Inputs: []schema.Value{schema.S("Milano"), city, row[2], row[3]},
		})
		if err != nil {
			t.Fatal(err)
		}
		n := len(fr.Rows)
		for fr.HasMore {
			t.Fatal("hot-city routes must fit one chunk")
		}
		if n == 0 {
			noFlight++
		}
		total += n
	}
	if total != FlightTupleSum {
		t.Errorf("flight tuples over passing conf tuples = %d, want %d", total, FlightTupleSum)
	}
	if noFlight != 1 {
		t.Errorf("hot tuples without flights = %d, want 1 (one city has no route)", noFlight)
	}

	// The weather source knows 220 cities, 11 hot: the 0.05 of
	// Table 1.
	hot := 0
	for i := 0; i < TotalCities; i++ {
		if Temperature(i) >= HotTemperature {
			hot++
		}
	}
	if hot != HotCities {
		t.Errorf("hot cities in the world = %d, want %d", hot, HotCities)
	}
	if got := float64(hot) / float64(TotalCities); got != 0.05 {
		t.Errorf("hot fraction = %g, want 0.05", got)
	}

	// conf hosts 100 conferences over 5 topics (erspi 20).
	if got := w.Conf.Size(); got != TotalConfs {
		t.Errorf("conf table size = %d, want %d", got, TotalConfs)
	}
}

func isHot(w *TravelWorld, t *testing.T, city string, date schema.Value) bool {
	t.Helper()
	resp, err := w.Weather.Invoke(context.Background(), 0, service.Request{
		Inputs: []schema.Value{schema.S(city), date},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 {
		t.Fatalf("weather(%s) rows = %d, want 1", city, len(resp.Rows))
	}
	return resp.Rows[0][1].Num >= HotTemperature
}

// TestLondonChunking: the dense Milano→London route exceeds one
// chunk, so profiling can detect the 25-tuple page size.
func TestLondonChunking(t *testing.T) {
	w := NewTravelWorld(TravelOptions{})
	start, end := londonDates(t, w)
	resp, err := w.Flight.Invoke(context.Background(), 0, service.Request{
		Inputs: []schema.Value{schema.S("Milano"), schema.S("London"), start, end},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 25 || !resp.HasMore {
		t.Errorf("London page 0 = %d rows hasMore=%v, want full chunk", len(resp.Rows), resp.HasMore)
	}
}

func londonDates(t *testing.T, w *TravelWorld) (schema.Value, schema.Value) {
	t.Helper()
	resp, err := w.Conf.Invoke(context.Background(), 0, service.Request{Inputs: []schema.Value{schema.S("DB")}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range resp.Rows {
		if row[4].Str == "London" {
			return row[2], row[3]
		}
	}
	t.Fatal("London hosts no conference")
	return schema.Null, schema.Null
}

// TestBioWorldEndToEnd: the §6 bioinformatics query optimizes and
// executes with non-empty, plausible results.
func TestBioWorldEndToEnd(t *testing.T) {
	w := NewBioWorld()
	q, err := w.BioQuery()
	if err != nil {
		t.Fatal(err)
	}
	o := &opt.Optimizer{
		Metric:       cost.ExecTime{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            10,
		ChooseMethod: w.Registry.MethodChooser(),
	}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("bio query infeasible")
	}
	r := &exec.Runner{Registry: w.Registry, Cache: card.OneCall, K: 10}
	out, err := r.Run(context.Background(), res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 10 {
		t.Fatalf("bio results = %d, want 10", len(out.Rows))
	}
	// Scores respect the predicate.
	ix := map[string]int{}
	for i, v := range out.Head {
		ix[string(v)] = i
	}
	for _, row := range out.Rows {
		if row[ix["Score"]].Num < 200 {
			t.Errorf("result score %g violates predicate", row[ix["Score"]].Num)
		}
	}
	// kegg must be the first node (only directly callable atom).
	if got := res.Best.Topology.Minimal(); len(got) != 1 || q.Atoms[got[0]].Service != "kegg" {
		t.Errorf("bio plan should start from kegg, got %v", got)
	}
}

// TestMashupWorldEndToEnd: the mashup query runs end to end and
// respects its predicates.
func TestMashupWorldEndToEnd(t *testing.T) {
	w := NewMashupWorld()
	q, err := w.MashupQuery()
	if err != nil {
		t.Fatal(err)
	}
	o := &opt.Optimizer{
		Metric:       cost.RequestResponse{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            8,
		ChooseMethod: w.Registry.MethodChooser(),
	}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("mashup query infeasible")
	}
	r := &exec.Runner{Registry: w.Registry, Cache: card.Optimal, K: 8}
	out, err := r.Run(context.Background(), res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 8 {
		t.Fatalf("mashup results = %d, want 8", len(out.Rows))
	}
	ix := map[string]int{}
	for i, v := range out.Head {
		ix[string(v)] = i
	}
	for _, row := range out.Rows {
		if row[ix["Rating"]].Num < 4 {
			t.Errorf("rating %g violates predicate", row[ix["Rating"]].Num)
		}
	}
}

// TestDecayLimitsNews: the news service has a decay of 40 over
// chunks of 8, so no plan should ever fetch more than 5 chunks from
// it (§4.3.2).
func TestDecayLimitsNews(t *testing.T) {
	_, _, news := MashupSignatures()
	if got := news.Stats.MaxFetches(); got != 5 {
		t.Errorf("news max fetches = %d, want 5", got)
	}
}

// Package card estimates tuple cardinalities and invocation counts
// for query plans (§3.4 and §5.2 of Braga et al., VLDB 2008).
//
// For every node n the estimator computes:
//
//	t_in(n)  — tuples arriving at n, each a priori requiring one call;
//	calls(n) — invocations actually required under the caching model;
//	t_out(n) — tuples produced by n.
//
// Three caching models are supported (§5.1): no cache (Eq. 1 — every
// call is repeated), the one-call cache (Eq. 2 — "blocks" of uniform
// tuples originating from proliferative services collapse into one
// call, bounded by the minimal t_out along paths from the producers),
// and the optimal cache (calls bounded by the number of distinct
// input combinations, capped by domain sizes).
//
// On top of the paper's uniform model the estimator consults
// per-attribute value distributions (schema.Stats.Dists) when they
// are profiled: equality and range predicates over bound constants,
// constants in atom input positions, and constrained output fields
// are then priced per value instead of per domain (see value.go),
// which makes the cost of a query depend on its actual bindings.
package card

import (
	"fmt"
	"log"
	"math"
	"sync/atomic"

	"mdq/internal/cq"
	"mdq/internal/plan"
	"mdq/internal/schema"
)

// CacheMode selects the logical caching model of §5.1.
type CacheMode int

// Caching models.
const (
	// NoCache repeats every call (the assumption of [16], Eq. 1).
	NoCache CacheMode = iota
	// OneCall recalls the last call per service, collapsing
	// consecutive identical invocations (Eq. 2).
	OneCall
	// Optimal recalls every call, so the number of invocations per
	// service equals the number of distinct inputs presented to it.
	Optimal
)

// String implements fmt.Stringer.
func (m CacheMode) String() string {
	switch m {
	case NoCache:
		return "no-cache"
	case OneCall:
		return "one-call"
	case Optimal:
		return "optimal"
	default:
		return fmt.Sprintf("CacheMode(%d)", int(m))
	}
}

// ModeByName resolves a caching-model name for CLI and API use. An
// empty name means the paper's recommended one-call default.
func ModeByName(name string) (CacheMode, bool) {
	switch name {
	case "", "one-call", "onecall":
		return OneCall, true
	case "none", "no-cache":
		return NoCache, true
	case "optimal":
		return Optimal, true
	default:
		return 0, false
	}
}

// Config parameterizes the estimator. It is a pure value: Annotate
// writes only into the plan it is passed (cardinality fields and the
// plan's private ancestor cache), never into the Config, the query
// or the signatures — so one Config may annotate distinct plans from
// many goroutines concurrently, which the parallel optimizer relies
// on. A custom DefaultSelectivity function must be pure for the same
// reason. Two goroutines must not annotate the same *plan.Plan.
type Config struct {
	Mode CacheMode
	// DefaultSelectivity supplies σp for predicates without an
	// explicit annotation; nil means DefaultSelectivity.
	DefaultSelectivity func(op cq.CmpOp) float64
	// DefaultEquiJoin is the selectivity assumed for a value
	// equi-join on a variable whose domain size is unknown; 0 means
	// UnknownDomainFallback.
	DefaultEquiJoin float64
	// NoValueStats disables the per-value distribution layer
	// (schema.Stats.Dists): every selectivity reverts to the uniform
	// model of §2.2, as if no histograms were profiled. The flag is
	// part of the optimizer's cache-key fingerprint.
	NoValueStats bool
}

// UnknownDomainFallback is the uniform selectivity charged for an
// equality on an attribute whose domain size is unknown and which has
// no value distribution — the conventional System-R 0.1. It is
// applied explicitly (and logged once per process, see
// logUnknownDomain) rather than silently degrading.
const UnknownDomainFallback = 0.1

// FallbackLogf receives the one-time diagnostic emitted when the
// estimator first resorts to UnknownDomainFallback because neither a
// domain size nor a value distribution was available. It defaults to
// log.Printf; tests replace it to pin the behavior.
var FallbackLogf func(format string, args ...any) = log.Printf

// unknownDomainLogged guards the once-per-process fallback log.
var unknownDomainLogged atomic.Bool

// resetUnknownDomainLog re-arms the one-time log (test hook).
func resetUnknownDomainLog() { unknownDomainLogged.Store(false) }

// uniformFallback returns the equality selectivity to assume when an
// attribute has neither a known domain size nor a value distribution,
// logging the degradation once so silent mis-estimation is visible in
// server logs.
func (c Config) uniformFallback(where string) float64 {
	if unknownDomainLogged.CompareAndSwap(false, true) {
		FallbackLogf("card: %s: attribute has no domain size and no value distribution; assuming uniform selectivity %g", where, c.equiJoinDefault())
	}
	return c.equiJoinDefault()
}

func (c Config) equiJoinDefault() float64 {
	if c.DefaultEquiJoin > 0 {
		return c.DefaultEquiJoin
	}
	return UnknownDomainFallback
}

// DefaultSelectivity is the built-in fallback: equality 0.1,
// inequality ranges 0.3, disequality 0.9 — the conventional System-R
// style magic constants, documented so callers can override them.
func DefaultSelectivity(op cq.CmpOp) float64 {
	switch op {
	case cq.Eq:
		return 0.1
	case cq.Ne:
		return 0.9
	default:
		return 0.3
	}
}

func (c Config) sel(p *cq.Predicate) float64 {
	if p.Selectivity > 0 {
		return p.Selectivity
	}
	if c.DefaultSelectivity != nil {
		return c.DefaultSelectivity(p.Op)
	}
	return DefaultSelectivity(p.Op)
}

// PredSelectivity returns the combined selectivity of a node's local
// predicates.
func (c Config) PredSelectivity(preds []*cq.Predicate) float64 {
	s := 1.0
	for _, p := range preds {
		s *= c.sel(p)
	}
	return s
}

// JoinSelectivity returns σp of a join node: the product of the
// selectivities of the predicates evaluated at the join. The
// lineage equi-join on shared upstream variables has selectivity 1
// by construction (branch tuples from the same upstream tuple agree
// on shared fields).
func (c Config) JoinSelectivity(n *plan.Node) float64 {
	return c.PredSelectivity(n.JoinPreds)
}

// Annotate fills TIn, Calls and TOut on every node of the plan, in
// topological order. It returns the estimated overall result size
// t_out of the plan (the Output node's t_out).
func (c Config) Annotate(p *plan.Plan) float64 {
	order := p.TopoNodes()
	for _, n := range order {
		switch n.Kind {
		case plan.Input:
			// The user always injects one single input tuple (§3.4).
			n.TIn, n.Calls, n.TOut = 1, 1, 1
		case plan.Output:
			n.TIn = n.In[0].TOut
			n.Calls = 0
			n.TOut = n.TIn
		case plan.Join:
			l, r := n.In[0], n.In[1]
			n.TIn = l.TOut + r.TOut
			n.Calls = 0
			n.TOut = joinOut(p, n, l, r) * c.PredSelectivityIn(p.Query, n.JoinPreds) * c.equiJoinSelectivity(p, l, r)
		case plan.Service:
			n.TIn = n.In[0].TOut
			n.Calls = c.calls(p, n)
			boundSel := c.boundOutputSelectivity(p, n)
			predSel := c.PredSelectivityIn(p.Query, n.Preds)
			if n.Chunked() {
				// t_out = cs · F per input tuple (§3.4), filtered by
				// local predicates and bound-output selections. The
				// fetch schedule, not erspi, sizes chunked results, so
				// the per-value input factor does not apply.
				cs := float64(n.Atom.Sig.Statistics().ChunkSize)
				n.TOut = n.TIn * cs * float64(n.Fetches) * predSel * boundSel
			} else {
				n.TOut = n.TIn * n.Atom.Sig.Statistics().ERSPI * c.valueERSPIFactor(n) * predSel * boundSel
			}
		}
	}
	return p.OutputNode().TOut
}

// joinOut computes the size of the lineage-aware Cartesian product
// of two branches. The paper's formula t_out = t_out_l · t_out_m
// (§3.4) assumes the branches are independent; when they fork from a
// common ancestor (the usual case for parallel joins) the product is
// taken per lineage group: t_out_l · t_out_r / t_out_fork.
func joinOut(p *plan.Plan, n, l, r *plan.Node) float64 {
	fork := forkNode(p, l, r)
	base := 1.0
	if fork != nil && fork.TOut > 0 {
		base = fork.TOut
	}
	return l.TOut * r.TOut / base
}

// boundOutputSelectivity charges the implicit selections performed
// when a service is accessed through a pattern whose output fields
// are already constrained: an output position holding a constant, or
// a variable that upstream nodes have already bound, filters the
// returned rows to the matching ones. The selectivity of each such
// equality is estimated from the attribute's value distribution when
// one is profiled (exactly for constants, 1/V̂ from the histogram's
// distinct count for upstream-bound variables), else as 1/V from the
// abstract domain's distinct count (uniformity, §2.2), else the
// explicit uniform fallback (logged once, see UnknownDomainFallback).
//
// This is what makes "call hotel with no inputs, then look for
// conferences in the hotel's city" correctly expensive: conf's
// erspi applies to a topic query, and the city equality must then be
// paid as a 1/V(City) filter.
func (c Config) boundOutputSelectivity(p *plan.Plan, n *plan.Node) float64 {
	if n.Kind != plan.Service {
		return 1
	}
	var upstream cq.VarSet
	if len(n.In) > 0 {
		upstream = p.AvailableVars(n.In[0])
	} else {
		upstream = cq.VarSet{}
	}
	sel := 1.0
	var st schema.Stats
	if n.Atom.Sig != nil {
		st = n.Atom.Sig.Statistics()
	}
	factor := func(pos int, cv schema.Value, isConst bool) float64 {
		sig := n.Atom.Sig
		if sig != nil {
			if isConst && !c.NoValueStats {
				if d := st.Distribution(pos); !d.Empty() {
					if eq, ok := d.EqSelectivity(cv); ok {
						return eq
					}
				}
			}
			if d := sig.Attrs[pos].Domain.DistinctValues; d > 0 {
				return 1 / float64(d)
			}
			if !c.NoValueStats {
				if d := st.Distribution(pos); !d.Empty() && d.Distinct > 0 {
					return 1 / d.Distinct
				}
			}
		}
		return c.uniformFallback("bound-output equality on " + n.Atom.Service)
	}
	for _, pos := range n.Pattern.Outputs() {
		term := n.Atom.Terms[pos]
		if !term.IsVar() {
			sel *= factor(pos, term.Const, true)
			continue
		}
		if upstream.Has(term.Var) {
			sel *= factor(pos, schema.Null, false)
		}
	}
	return sel
}

// equiJoinSelectivity accounts for variables bound independently on
// both branches of a parallel join. Variables bound at or before the
// fork node flow identically into both branches (the lineage
// equi-join, selectivity 1); a variable first bound on each branch
// separately is a genuine value join, estimated System-R style as
// 1/max(V(X)) from the abstract domain's distinct count (§2.2's
// uniformity assumptions), falling back to the histogram's distinct
// estimate when the domain size is unknown, and finally to the
// explicit uniform fallback (logged once).
func (c Config) equiJoinSelectivity(p *plan.Plan, l, r *plan.Node) float64 {
	fork := forkNode(p, l, r)
	forkVars := cq.VarSet{}
	if fork != nil {
		forkVars = p.AvailableVars(fork)
	}
	lVars := p.AvailableVars(l)
	rVars := p.AvailableVars(r)
	sel := 1.0
	for x := range lVars {
		if !rVars.Has(x) || forkVars.Has(x) {
			continue
		}
		if d := queryVarDomain(p.Query, x); d > 0 {
			sel /= d
		} else if dd := valueJoinDistribution(c, p.Query, x); dd != nil {
			sel /= dd.Distinct
		} else {
			sel *= c.uniformFallback("value equi-join on " + string(x))
		}
	}
	return sel
}

// queryVarDomain returns the largest known distinct-value estimate
// among the domains where x occurs in the query, or 0.
func queryVarDomain(q *cq.Query, x cq.Var) float64 {
	best := 0.0
	for _, a := range q.Atoms {
		if a.Sig == nil {
			continue
		}
		for i, t := range a.Terms {
			if t.IsVar() && t.Var == x {
				if d := a.Sig.Attrs[i].Domain.DistinctValues; float64(d) > best {
					best = float64(d)
				}
			}
		}
	}
	return best
}

// forkNode returns the deepest common ancestor of l and r, or nil if
// their only common ancestor is the plan input.
func forkNode(p *plan.Plan, l, r *plan.Node) *plan.Node {
	al := p.Ancestors(l)
	ar := p.Ancestors(r)
	inLeft := func(id int) bool { return id == l.ID || al[id] }
	inRight := func(id int) bool { return id == r.ID || ar[id] }
	var best *plan.Node
	bestDepth := -1
	for _, n := range p.Nodes {
		if !inLeft(n.ID) || !inRight(n.ID) {
			continue
		}
		d := len(p.Ancestors(n))
		if d > bestDepth {
			bestDepth = d
			best = n
		}
	}
	return best
}

// calls estimates the number of invocations of a service node under
// the configured caching model.
func (c Config) calls(p *plan.Plan, n *plan.Node) float64 {
	switch c.Mode {
	case NoCache:
		return n.TIn
	case OneCall:
		return math.Min(n.TIn, c.blockBound(p, n, false))
	case Optimal:
		return math.Min(n.TIn, c.blockBound(p, n, true))
	default:
		return n.TIn
	}
}

// blockBound implements Eq. 2: t_in(n) = ∏_{m ∈ N(n)} ξ_m·t_in_m,
// where N(n) contains, for each input variable X of n, the node with
// minimal t_out among those lying on a path from a producer of X to
// n. Because tuples from proliferative services flow in contiguous
// blocks with constant values for non-dependent fields, the number
// of distinct consecutive input combinations — and hence of calls
// under the one-call cache — is bounded by the product of those
// minima (§5.2).
//
// With capDomain set (optimal cache) each variable's contribution is
// additionally capped by the estimated number of distinct values of
// its abstract domain.
func (c Config) blockBound(p *plan.Plan, n *plan.Node, capDomain bool) float64 {
	anc := p.Ancestors(n)
	minimizers := map[int]float64{} // node ID → contribution
	domCap := 1.0
	hasDomCap := false
	for x := range n.InputVars() {
		m, ok := minContributor(p, anc, n, x)
		if !ok {
			// Variable bound by a constant elsewhere or not produced:
			// contributes nothing.
			continue
		}
		minimizers[m.ID] = m.TOut
		if capDomain {
			if d := varDomainSize(n, x); d > 0 {
				domCap *= d
				hasDomCap = true
			} else {
				hasDomCap = false
				domCap = math.Inf(1)
			}
		}
	}
	bound := 1.0
	for _, v := range minimizers {
		bound *= v
	}
	if capDomain && hasDomCap {
		bound = math.Min(bound, domCap)
	}
	return bound
}

// minContributor finds, for input variable x of n, the ancestor node
// with minimal t_out among nodes on a path from a producer of x to n
// (the producer itself included). Ties prefer the deeper node, which
// collapses more variables onto the same minimizer.
func minContributor(p *plan.Plan, anc map[int]bool, n *plan.Node, x cq.Var) (*plan.Node, bool) {
	// Producers: ancestor service nodes with x in output position.
	var producers []*plan.Node
	for id := range anc {
		m := p.Nodes[id]
		if m.Kind == plan.Service && m.OutputVars().Has(x) {
			producers = append(producers, m)
		}
	}
	if len(producers) == 0 {
		return nil, false
	}
	// Candidates: ancestors of n that are a producer or a descendant
	// of a producer.
	var best *plan.Node
	bestDepth := -1
	for id := range anc {
		m := p.Nodes[id]
		if m.Kind == plan.Input {
			continue
		}
		onPath := false
		mAnc := p.Ancestors(m)
		for _, prod := range producers {
			if prod.ID == m.ID || mAnc[prod.ID] {
				onPath = true
				break
			}
		}
		if !onPath {
			continue
		}
		d := len(mAnc)
		if best == nil || m.TOut < best.TOut || (m.TOut == best.TOut && d > bestDepth) {
			best = m
			bestDepth = d
		}
	}
	return best, best != nil
}

// varDomainSize returns the estimated distinct-value count of the
// abstract domain at the positions where x occurs as an input of n,
// or 0 if unknown.
func varDomainSize(n *plan.Node, x cq.Var) float64 {
	if n.Atom == nil || n.Atom.Sig == nil {
		return 0
	}
	for _, i := range n.Pattern.Inputs() {
		t := n.Atom.Terms[i]
		if t.IsVar() && t.Var == x {
			if d := n.Atom.Sig.Attrs[i].Domain.DistinctValues; d > 0 {
				return float64(d)
			}
		}
	}
	return 0
}

package card_test

import (
	"testing"

	"mdq/internal/abind"
	. "mdq/internal/card"
	"mdq/internal/cq"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/simweb"
)

// zipfPlan builds the serial catalog→review plan of the Zipf world
// for one tag binding.
func zipfPlan(t *testing.T, w *simweb.ZipfWorld, tag string) *plan.Plan {
	t.Helper()
	q, err := cq.Parse("q(Item, Score) :- catalog('" + tag + "', Item), review(Item, Score), Score >= 4.")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve(w.Schema); err != nil {
		t.Fatal(err)
	}
	asn := abind.Assignment{schema.MustPattern("io"), schema.MustPattern("io")}
	p, err := plan.Build(q, asn, plan.Chain([]int{0, 1}), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestValueSensitiveBindings: under profiled Zipf distributions the
// same template priced for the head tag and for a tail tag must give
// very different cardinalities, while the uniform model (NoValueStats)
// cannot tell them apart.
func TestValueSensitiveBindings(t *testing.T) {
	w := simweb.NewZipfWorld(50, 2000, 1.1)
	hot := zipfPlan(t, w, simweb.ZipfTag(0))
	cold := zipfPlan(t, w, simweb.ZipfTag(49))

	cfg := Config{Mode: OneCall}
	hotOut := cfg.Annotate(hot)
	coldOut := cfg.Annotate(cold)
	if hotOut <= coldOut {
		t.Fatalf("head tag must estimate more results than tail tag: %g vs %g", hotOut, coldOut)
	}
	if hotOut/coldOut < 8 {
		t.Fatalf("zipf skew should be clearly visible in estimates: ratio %g", hotOut/coldOut)
	}

	uniform := Config{Mode: OneCall, NoValueStats: true}
	hotU := uniform.Annotate(zipfPlan(t, w, simweb.ZipfTag(0)))
	coldU := uniform.Annotate(zipfPlan(t, w, simweb.ZipfTag(49)))
	if hotU != coldU {
		t.Fatalf("uniform model must not distinguish bindings: %g vs %g", hotU, coldU)
	}
}

// TestValueAwarePredicates: a range predicate over a profiled numeric
// attribute is priced from the histogram (Score ≥ 4 over the uniform
// 1..5 scores ≈ 0.4), not the 0.3 operator default.
func TestValueAwarePredicates(t *testing.T) {
	w := simweb.NewZipfWorld(10, 200, 1.0)
	p := zipfPlan(t, w, simweb.ZipfTag(0))
	cfg := Config{Mode: OneCall}
	cfg.Annotate(p)

	var review *plan.Node
	for _, n := range p.Nodes {
		if n.Kind == plan.Service && n.Atom.Service == "review" {
			review = n
		}
	}
	// t_out(review) = t_in × ξ(3) × σ(Score ≥ 4); with the histogram σ
	// must be near 2/5, clearly away from the 0.3 default.
	sel := review.TOut / (review.TIn * 3)
	if sel < 0.3 || sel > 0.5 {
		t.Fatalf("histogram range selectivity ≈ 0.4 expected, got %g", sel)
	}
	// Explicit annotations still win over the histogram.
	q := p.Query
	q.Preds[0].Selectivity = 0.07
	cfg.Annotate(p)
	sel = review.TOut / (review.TIn * 3)
	if !approx(sel, 0.07, 1e-9) {
		t.Fatalf("explicit selectivity must override histogram, got %g", sel)
	}
}

// TestValueERSPIFactorOnInputs: a constant bound to a profiled input
// position scales the node's effective result size by freq(v)·V.
func TestValueERSPIFactorOnInputs(t *testing.T) {
	w := simweb.NewZipfWorld(20, 1000, 1.2)
	hot := zipfPlan(t, w, simweb.ZipfTag(0))
	cfg := Config{Mode: OneCall}
	cfg.Annotate(hot)
	var catalog *plan.Node
	for _, n := range hot.Nodes {
		if n.Kind == plan.Service && n.Atom.Service == "catalog" {
			catalog = n
		}
	}
	// The head tag's factor must push t_out above the uniform erspi.
	if catalog.TOut <= catalog.Atom.Sig.Stats.ERSPI {
		t.Fatalf("head binding t_out %g must exceed uniform erspi %g",
			catalog.TOut, catalog.Atom.Sig.Stats.ERSPI)
	}
}

package card

import (
	"mdq/internal/cq"
	"mdq/internal/plan"
	"mdq/internal/schema"
)

// This file holds the value-sensitive half of the estimator: when a
// predicate, an atom input or a constrained output position carries a
// bound constant and the attribute it touches has a profiled value
// distribution (schema.Stats.Dists), the selectivity is read off the
// histogram/MCV list instead of the uniform 1/V model. Everything
// degrades to the uniform path when distributions are absent or
// Config.NoValueStats is set, so plans over unprofiled services cost
// exactly as before.

// constExpr evaluates an expression that references no variables,
// reporting ok=false otherwise. It is how the estimator recognizes a
// bound constant side of a predicate ('2007/3/14' + 180 included).
// Eval itself fails on any variable (the binding function always
// reports unbound), so no separate variable scan is needed — this
// runs in the estimator's hot loop.
func constExpr(e *cq.Expr) (schema.Value, bool) {
	if e == nil {
		return schema.Null, false
	}
	v, err := e.Eval(func(cq.Var) (schema.Value, bool) { return schema.Null, false })
	if err != nil {
		return schema.Null, false
	}
	return v, true
}

// varExpr reports whether the expression is a bare variable term.
func varExpr(e *cq.Expr) (cq.Var, bool) {
	if e != nil && e.Kind == cq.ETerm && e.Term.IsVar() {
		return e.Term.Var, true
	}
	return "", false
}

// mirror flips a comparison for swapped operands: c OP X becomes
// X mirror(OP) c.
func mirror(op cq.CmpOp) cq.CmpOp {
	switch op {
	case cq.Lt:
		return cq.Gt
	case cq.Le:
		return cq.Ge
	case cq.Gt:
		return cq.Lt
	case cq.Ge:
		return cq.Le
	default:
		return op // Eq and Ne are symmetric
	}
}

// attrDistribution finds the most informative value distribution for
// a variable: among every attribute position of the query where x
// occurs, the non-empty distribution built from the most rows.
func attrDistribution(q *cq.Query, x cq.Var) *schema.Distribution {
	var best *schema.Distribution
	for _, a := range q.Atoms {
		if a.Sig == nil {
			continue
		}
		for i, t := range a.Terms {
			if !t.IsVar() || t.Var != x {
				continue
			}
			if d := a.Sig.Statistics().Distribution(i); !d.Empty() {
				if best == nil || d.Total > best.Total {
					best = d
				}
			}
		}
	}
	return best
}

// distCmpSelectivity prices X op v against a distribution. ok is
// false when the distribution is empty.
func distCmpSelectivity(d *schema.Distribution, op cq.CmpOp, v schema.Value) (float64, bool) {
	if d.Empty() {
		return 0, false
	}
	eq, _ := d.EqSelectivity(v)
	switch op {
	case cq.Eq:
		return eq, true
	case cq.Ne:
		return clamp01(1 - eq), true
	}
	le, _ := d.LeSelectivity(v)
	var s float64
	switch op {
	case cq.Le:
		s = le
	case cq.Lt:
		s = le - eq
	case cq.Ge:
		s = 1 - le + eq
	case cq.Gt:
		s = 1 - le
	default:
		return 0, false
	}
	// Range predicates keep the same floor as equalities: a plan must
	// never be priced as if a comparison could return strictly nothing.
	if min := d.MinSelectivity(); s < min {
		s = min
	}
	return clamp01(s), true
}

func clamp01(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// valueJoinDistribution returns the distribution backing a value
// equi-join estimate for x, or nil when the value layer is disabled
// or no usable distribution exists. The NoValueStats check comes
// first so the uniform path never pays the attribute scan.
func valueJoinDistribution(c Config, q *cq.Query, x cq.Var) *schema.Distribution {
	if c.NoValueStats {
		return nil
	}
	if d := attrDistribution(q, x); !d.Empty() && d.Distinct > 0 {
		return d
	}
	return nil
}

// valueSel estimates a predicate's selectivity from value
// distributions when one side is a bare variable with a profiled
// attribute and the other side folds to a constant; ok is false
// otherwise (the caller then uses the uniform operator default).
func (c Config) valueSel(q *cq.Query, p *cq.Predicate) (float64, bool) {
	if c.NoValueStats || q == nil {
		return 0, false
	}
	// Probe the cheap variable side first so the common
	// var-vs-var/expr cases bail before any expression evaluation.
	var (
		x  cq.Var
		v  schema.Value
		op = p.Op
		ok bool
	)
	if x, ok = varExpr(p.L); ok {
		if v, ok = constExpr(p.R); !ok {
			return 0, false
		}
	} else if x, ok = varExpr(p.R); ok {
		// Mirrored orientation: const OP var.
		if v, ok = constExpr(p.L); !ok {
			return 0, false
		}
		op = mirror(op)
	} else {
		return 0, false
	}
	d := attrDistribution(q, x)
	if d.Empty() {
		return 0, false
	}
	return distCmpSelectivity(d, op, v)
}

// selIn resolves a predicate's selectivity in the context of a query:
// explicit annotation first, then the value distributions, then the
// uniform operator defaults.
func (c Config) selIn(q *cq.Query, p *cq.Predicate) float64 {
	if p.Selectivity > 0 {
		return p.Selectivity
	}
	if s, ok := c.valueSel(q, p); ok {
		return s
	}
	if c.DefaultSelectivity != nil {
		return c.DefaultSelectivity(p.Op)
	}
	return DefaultSelectivity(p.Op)
}

// PredSelectivityIn returns the combined selectivity of predicates in
// the context of a query, using per-value distributions for
// variable-versus-constant comparisons when profiled. With a nil
// query it equals PredSelectivity.
func (c Config) PredSelectivityIn(q *cq.Query, preds []*cq.Predicate) float64 {
	s := 1.0
	for _, p := range preds {
		s *= c.selIn(q, p)
	}
	return s
}

// valueERSPIFactor scales a service node's expected result size by
// the actual constants bound to its input positions: under uniformity
// every input value yields ξ tuples on average, but a profiled input
// distribution prices binding v as freq(v)·V — above 1 for common
// values, below 1 for rare ones. This is what makes two bindings of
// one template legitimately diverge in cost.
func (c Config) valueERSPIFactor(n *plan.Node) float64 {
	if c.NoValueStats || n.Kind != plan.Service || n.Atom == nil || n.Atom.Sig == nil {
		return 1
	}
	st := n.Atom.Sig.Statistics()
	f := 1.0
	for _, pos := range n.Pattern.Inputs() {
		t := n.Atom.Terms[pos]
		if t.IsVar() {
			continue
		}
		d := st.Distribution(pos)
		if d.Empty() || d.Distinct <= 0 {
			continue
		}
		if eq, ok := d.EqSelectivity(t.Const); ok {
			f *= eq * d.Distinct
		}
	}
	return f
}

package card_test

import (
	"testing"

	"mdq/internal/abind"
	. "mdq/internal/card"
	"mdq/internal/cq"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/simweb"
)

// buildTwoServicePlan wires two resolved atoms into a chain or
// parallel plan for selectivity unit tests.
func buildTwoServicePlan(t *testing.T, aPattern, bPattern string, topo *plan.Topology, share bool) *plan.Plan {
	t.Helper()
	dom := schema.Domain{Name: "K", Kind: schema.StringValue, DistinctValues: 50}
	sigA := &schema.Signature{
		Name: "a",
		Attrs: []schema.Attribute{
			{Name: "X", Domain: dom},
			{Name: "P", Domain: schema.DomNumber},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern(aPattern)},
		Stats:    schema.Stats{ERSPI: 10},
	}
	sigB := &schema.Signature{
		Name: "b",
		Attrs: []schema.Attribute{
			{Name: "X", Domain: dom},
			{Name: "Q", Domain: schema.DomNumber},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern(bPattern)},
		Stats:    schema.Stats{ERSPI: 10},
	}
	xB := "X"
	if !share {
		xB = "Z"
	}
	q := &cq.Query{Name: "u"}
	q.Atoms = append(q.Atoms,
		&cq.Atom{Service: "a", Terms: []cq.Term{cq.V("X"), cq.V("P")}, Index: 0, Sig: sigA},
		&cq.Atom{Service: "b", Terms: []cq.Term{cq.V(xB), cq.V("Q")}, Index: 1, Sig: sigB},
	)
	p, err := plan.Build(q, abind.Assignment{sigA.Patterns[0], sigB.Patterns[0]}, topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBoundOutputSelectivity: accessing b through an all-output
// pattern when X is already bound upstream charges the 1/V(X)
// filter; accessing it with X as input does not.
func TestBoundOutputSelectivity(t *testing.T) {
	cfg := Config{Mode: OneCall}

	// Chain a → b with b's X as input: no bound-output penalty.
	chain := buildTwoServicePlan(t, "oo", "io", plan.Chain([]int{0, 1}), true)
	cfg.Annotate(chain)
	bNode := chain.ServiceNode[1]
	if got := bNode.TOut / bNode.TIn; got != 10 {
		t.Errorf("input-bound access: per-tuple output = %g, want erspi 10", got)
	}

	// Chain a → b with b all-output: X already bound → 10/50 = 0.2
	// expected rows per input tuple.
	chainOut := buildTwoServicePlan(t, "oo", "oo", plan.Chain([]int{0, 1}), true)
	cfg.Annotate(chainOut)
	bOut := chainOut.ServiceNode[1]
	if got := bOut.TOut / bOut.TIn; got != 10.0/50.0 {
		t.Errorf("bound-output access: per-tuple output = %g, want 0.2", got)
	}
}

// TestEquiJoinSelectivity: two parallel all-output branches that
// independently bind X pay 1/V(X) at their join; sharing only
// lineage pays nothing.
func TestEquiJoinSelectivity(t *testing.T) {
	cfg := Config{Mode: OneCall}

	// Parallel with shared X bound on both sides independently.
	par := buildTwoServicePlan(t, "oo", "oo", plan.NewTopology(2), true)
	cfg.Annotate(par)
	join := par.JoinNodes()[0]
	// 10 × 10 × 1/50 = 2.
	if join.TOut != 2 {
		t.Errorf("independent equi-join t_out = %g, want 2", join.TOut)
	}

	// Parallel without shared variables: plain Cartesian product.
	free := buildTwoServicePlan(t, "oo", "oo", plan.NewTopology(2), false)
	cfg.Annotate(free)
	joinFree := free.JoinNodes()[0]
	if joinFree.TOut != 100 {
		t.Errorf("independent product t_out = %g, want 100", joinFree.TOut)
	}
}

// TestLineageSharingPaysNoEquiJoin: in the travel plan O the
// branches share City/Start through the fork node, so no equi-join
// factor applies (already covered by the Figure 8 exact numbers;
// asserted here explicitly).
func TestLineageSharingPaysNoEquiJoin(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	Config{Mode: OneCall}.Annotate(p)
	// 75 × 20 × 0.01 = 15 exactly: any equi-join factor would shrink
	// it below 15.
	if got := p.JoinNodes()[0].TOut; got != 15 {
		t.Errorf("plan O join t_out = %g, want 15 (lineage equi-join is free)", got)
	}
}

// TestDefaultEquiJoinFallback: unknown domain sizes use the
// configurable fallback.
func TestDefaultEquiJoinFallback(t *testing.T) {
	dom := schema.Domain{Name: "", Kind: schema.StringValue} // unknown size
	sig := func(name string) *schema.Signature {
		return &schema.Signature{
			Name: name,
			Attrs: []schema.Attribute{
				{Name: "X", Domain: dom},
			},
			Patterns: []schema.AccessPattern{schema.MustPattern("o")},
			Stats:    schema.Stats{ERSPI: 10},
		}
	}
	q := &cq.Query{Name: "u"}
	q.Atoms = append(q.Atoms,
		&cq.Atom{Service: "a", Terms: []cq.Term{cq.V("X")}, Index: 0, Sig: sig("a")},
		&cq.Atom{Service: "b", Terms: []cq.Term{cq.V("X")}, Index: 1, Sig: sig("b")},
	)
	p, err := plan.Build(q, abind.Assignment{schema.MustPattern("o"), schema.MustPattern("o")},
		plan.NewTopology(2), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	Config{Mode: OneCall}.Annotate(p)
	if got := p.JoinNodes()[0].TOut; got != 10 { // 10·10·0.1
		t.Errorf("default equi-join: t_out = %g, want 10", got)
	}
	p2, _ := plan.Build(q, abind.Assignment{schema.MustPattern("o"), schema.MustPattern("o")},
		plan.NewTopology(2), plan.Options{})
	Config{Mode: OneCall, DefaultEquiJoin: 0.5}.Annotate(p2)
	if got := p2.JoinNodes()[0].TOut; got != 50 { // 10·10·0.5
		t.Errorf("custom equi-join: t_out = %g, want 50", got)
	}
}

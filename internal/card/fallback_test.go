package card

import (
	"fmt"
	"math"
	"testing"

	"mdq/internal/abind"
	"mdq/internal/cq"
	"mdq/internal/plan"
	"mdq/internal/schema"
)

// unknownDomainPlan builds the smallest plan that forces the
// estimator through the unknown-domain path: a single all-output
// service whose output position holds a constant, over an attribute
// with neither a domain size nor a value distribution.
func unknownDomainPlan(t *testing.T) *plan.Plan {
	t.Helper()
	sig := &schema.Signature{
		Name:     "svc",
		Attrs:    []schema.Attribute{{Name: "K", Domain: schema.Domain{Kind: schema.StringValue}}},
		Patterns: []schema.AccessPattern{schema.MustPattern("o")},
		Kind:     schema.Exact,
		Stats:    schema.Stats{ERSPI: 2},
	}
	q := &cq.Query{
		Name:  "q",
		Atoms: []*cq.Atom{{Service: "svc", Terms: []cq.Term{cq.C(schema.S("k"))}, Index: 0, Sig: sig}},
	}
	p, err := plan.Build(q, abind.Assignment{schema.MustPattern("o")}, plan.Chain([]int{0}), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestUnknownDomainFallbackExplicit pins the degradation behavior for
// attributes with zero/unknown domain size: the estimator returns the
// explicit uniform fallback (UnknownDomainFallback, or
// DefaultEquiJoin when configured) instead of silently improvising,
// and logs the degradation exactly once per process.
func TestUnknownDomainFallbackExplicit(t *testing.T) {
	resetUnknownDomainLog()
	var logs []string
	old := FallbackLogf
	FallbackLogf = func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	defer func() { FallbackLogf = old; resetUnknownDomainLog() }()

	p := unknownDomainPlan(t)
	cfg := Config{Mode: OneCall}
	cfg.Annotate(p)
	svc := p.Nodes[1] // input is node 0
	for _, n := range p.Nodes {
		if n.Kind == plan.Service {
			svc = n
		}
	}
	// TOut = 1 (t_in) × 2 (erspi) × UnknownDomainFallback.
	if want := 2 * UnknownDomainFallback; math.Abs(svc.TOut-want) > 1e-12 {
		t.Fatalf("unknown-domain constant output: TOut = %g, want %g", svc.TOut, want)
	}
	if len(logs) != 1 {
		t.Fatalf("fallback must log exactly once on first use, got %d: %v", len(logs), logs)
	}

	// Re-annotating (or annotating other plans) must not log again.
	cfg.Annotate(p)
	Config{Mode: NoCache}.Annotate(unknownDomainPlan(t))
	if len(logs) != 1 {
		t.Fatalf("fallback log must fire once per process, got %d", len(logs))
	}

	// DefaultEquiJoin overrides the fallback magnitude.
	resetUnknownDomainLog()
	logs = nil
	cfgEJ := Config{Mode: OneCall, DefaultEquiJoin: 0.25}
	p2 := unknownDomainPlan(t)
	cfgEJ.Annotate(p2)
	var svc2 *plan.Node
	for _, n := range p2.Nodes {
		if n.Kind == plan.Service {
			svc2 = n
		}
	}
	if want := 2 * 0.25; math.Abs(svc2.TOut-want) > 1e-12 {
		t.Fatalf("DefaultEquiJoin fallback: TOut = %g, want %g", svc2.TOut, want)
	}
	if len(logs) != 1 {
		t.Fatalf("re-armed fallback must log once, got %d", len(logs))
	}
}

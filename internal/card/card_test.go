package card_test

import (
	"math"
	"testing"

	. "mdq/internal/card"
	"mdq/internal/cq"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/simweb"
)

func planFor(t *testing.T, topo *plan.Topology, fFlight, fHotel int) *plan.Plan {
	t.Helper()
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, topo, fFlight, fHotel)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// TestFigure8Annotations reproduces every number printed on the
// paper's Figure 8: the physical access plan for plan O with
// F_flight=3 and F_hotel=4 under the Eq. 2 (one-call) estimate.
func TestFigure8Annotations(t *testing.T) {
	p := planFor(t, simweb.PlanOTopology(), 3, 4)
	cfg := Config{Mode: OneCall}
	tout := cfg.Annotate(p)

	conf := p.ServiceNode[simweb.AtomConf]
	weather := p.ServiceNode[simweb.AtomWeather]
	flight := p.ServiceNode[simweb.AtomFlight]
	hotel := p.ServiceNode[simweb.AtomHotel]
	join := p.JoinNodes()[0]

	checks := []struct {
		name      string
		got, want float64
	}{
		{"t_in(conf)", conf.TIn, 1},
		{"t_out(conf)", conf.TOut, 20},
		{"t_in(weather)", weather.TIn, 20},
		{"calls(weather)", weather.Calls, 20},
		{"t_out(weather)", weather.TOut, 1},
		{"t_in(flight)", flight.Calls, 1},
		{"t_out(flight)", flight.TOut, 75}, // 3 fetches × 25
		{"t_in(hotel)", hotel.Calls, 1},
		{"t_out(hotel)", hotel.TOut, 20}, // 4 fetches × 5
		{"t_MS product", join.TOut / cfg.JoinSelectivity(join), 1500},
		{"t_MS", join.TOut, 15},
		{"t_out(plan)", tout, 15},
	}
	for _, c := range checks {
		if !approx(c.got, c.want, 1e-9) {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
}

// TestExample51SerialEstimates checks the Eq. 2 arithmetic spelled
// out in Example 5.1 for the serial plan: t_in(flight) =
// min(ξconf, ξconf·ξweather) and t_in(hotel) likewise.
func TestExample51SerialEstimates(t *testing.T) {
	p := planFor(t, simweb.PlanSTopology(), 1, 1)
	cfg := Config{Mode: OneCall}
	cfg.Annotate(p)

	flight := p.ServiceNode[simweb.AtomFlight]
	hotel := p.ServiceNode[simweb.AtomHotel]
	if !approx(flight.Calls, 1, 1e-9) { // ξconf·ξweather = 20·0.05
		t.Errorf("calls(flight) = %g, want 1", flight.Calls)
	}
	if !approx(hotel.Calls, 1, 1e-9) {
		t.Errorf("calls(hotel) = %g, want 1", hotel.Calls)
	}
	// Under no cache each input tuple is one invocation (Eq. 1).
	cfgNo := Config{Mode: NoCache}
	cfgNo.Annotate(p)
	if !approx(flight.Calls, 1, 1e-9) {
		// t_in(flight) = 20 × 0.05 = 1 even without caching.
		t.Errorf("no-cache calls(flight) = %g, want 1", flight.Calls)
	}
	if !approx(hotel.TIn, 25, 1e-9) { // flight t_out with F=1
		t.Errorf("t_in(hotel) = %g, want 25", hotel.TIn)
	}
	if !approx(hotel.Calls, 25, 1e-9) {
		t.Errorf("no-cache calls(hotel) = %g, want 25 (every tuple one call)", hotel.Calls)
	}
}

// TestCacheModeOrdering: for every plan shape, estimated calls under
// optimal ≤ one-call ≤ no-cache (the whole point of §5.1).
func TestCacheModeOrdering(t *testing.T) {
	for _, topo := range []*plan.Topology{
		simweb.PlanSTopology(), simweb.PlanPTopology(), simweb.PlanOTopology(),
	} {
		pNo := planFor(t, topo, 2, 3)
		pOne := planFor(t, topo, 2, 3)
		pOpt := planFor(t, topo, 2, 3)
		Config{Mode: NoCache}.Annotate(pNo)
		Config{Mode: OneCall}.Annotate(pOne)
		Config{Mode: Optimal}.Annotate(pOpt)
		for i := range pNo.Nodes {
			n0, n1, n2 := pNo.Nodes[i], pOne.Nodes[i], pOpt.Nodes[i]
			if n0.Kind != plan.Service {
				continue
			}
			if n1.Calls > n0.Calls+1e-9 {
				t.Errorf("topology %s node %s: one-call %g > no-cache %g", topo, n0.Label(), n1.Calls, n0.Calls)
			}
			if n2.Calls > n1.Calls+1e-9 {
				t.Errorf("topology %s node %s: optimal %g > one-call %g", topo, n0.Label(), n2.Calls, n1.Calls)
			}
		}
	}
}

// TestParallelPlanJoinLineage: in plan P all three branches fork at
// conf, so the final result estimate must match plan O's (same
// query, same per-lineage combinatorics).
func TestParallelPlanJoinLineage(t *testing.T) {
	pO := planFor(t, simweb.PlanOTopology(), 3, 4)
	pP := planFor(t, simweb.PlanPTopology(), 3, 4)
	cfg := Config{Mode: OneCall}
	outO := cfg.Annotate(pO)
	outP := cfg.Annotate(pP)
	if !approx(outO, outP, 1e-6) {
		t.Errorf("plan O estimates %g results, plan P %g — lineage-aware join should agree", outO, outP)
	}
}

// TestMonotoneInFetches: output size and node t_out grow with fetch
// factors.
func TestMonotoneInFetches(t *testing.T) {
	small := planFor(t, simweb.PlanOTopology(), 1, 1)
	big := planFor(t, simweb.PlanOTopology(), 4, 6)
	cfg := Config{Mode: OneCall}
	if cfg.Annotate(small) >= cfg.Annotate(big) {
		t.Error("t_out must grow with fetch factors")
	}
}

func TestDefaultSelectivity(t *testing.T) {
	if DefaultSelectivity(cq.Eq) != 0.1 || DefaultSelectivity(cq.Lt) != 0.3 || DefaultSelectivity(cq.Ne) != 0.9 {
		t.Error("built-in defaults changed")
	}
	cfg := Config{}
	pred := &cq.Predicate{Op: cq.Lt, L: cq.TermExpr(cq.V("X")), R: cq.TermExpr(cq.C(schemaN(5)))}
	if got := cfg.PredSelectivity([]*cq.Predicate{pred}); got != 0.3 {
		t.Errorf("default ineq selectivity = %g", got)
	}
	pred.Selectivity = 0.07
	if got := cfg.PredSelectivity([]*cq.Predicate{pred}); got != 0.07 {
		t.Errorf("explicit selectivity ignored: %g", got)
	}
	cfg.DefaultSelectivity = func(cq.CmpOp) float64 { return 0.5 }
	pred.Selectivity = 0
	if got := cfg.PredSelectivity([]*cq.Predicate{pred}); got != 0.5 {
		t.Errorf("custom default ignored: %g", got)
	}
}

// TestOptimalCacheDomainCap: the optimal-cache estimate caps
// invocations by the domain's distinct values.
func TestOptimalCacheDomainCap(t *testing.T) {
	p := planFor(t, simweb.PlanPTopology(), 1, 1)
	cfg := Config{Mode: Optimal}
	cfg.Annotate(p)
	weather := p.ServiceNode[simweb.AtomWeather]
	// 20 estimated inputs, city domain 220 × date 365 — no cap bites,
	// stays at 20.
	if !approx(weather.Calls, 20, 1e-9) {
		t.Errorf("optimal calls(weather) = %g, want 20", weather.Calls)
	}
	if weather.Calls > weather.TIn {
		t.Error("calls must never exceed t_in")
	}
}

func schemaN(f float64) schema.Value { return schema.N(f) }

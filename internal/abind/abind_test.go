package abind_test

import (
	"math/rand"
	"testing"

	. "mdq/internal/abind"
	"mdq/internal/cq"
	"mdq/internal/schema"
	"mdq/internal/simweb"
)

func travelQuery(t *testing.T) *cq.Query {
	t.Helper()
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestExample41 reproduces Example 4.1 of the paper: among the four
// candidate pattern sequences for the running example, α3 (conf by
// city + hotel by city) is not permissible, α1 dominates α2, and the
// most cogent choices are exactly α1 and α4.
func TestExample41(t *testing.T) {
	q := travelQuery(t)
	all, err := EnumerateAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("candidate sequences = %d, want 4 (2 conf × 2 hotel patterns)", len(all))
	}
	perm, err := Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != 3 {
		t.Fatalf("permissible sequences = %d, want 3 (α3 excluded)", len(perm))
	}
	// α3: conf by city (ooooi) together with hotel with city input
	// (oiiiio) leaves City without any producer.
	alpha3 := Assignment{
		simweb.AtomFlight:  schema.MustPattern("iiiiooo"),
		simweb.AtomHotel:   schema.MustPattern("oiiiio"),
		simweb.AtomConf:    schema.MustPattern("ooooi"),
		simweb.AtomWeather: schema.MustPattern("ioi"),
	}
	if Permissible(q, alpha3) {
		t.Error("α3 should not be permissible")
	}
	alpha1 := simweb.AssignmentAlpha1()
	if !Permissible(q, alpha1) {
		t.Error("α1 should be permissible")
	}
	alpha2 := Assignment{
		simweb.AtomFlight:  schema.MustPattern("iiiiooo"),
		simweb.AtomHotel:   schema.MustPattern("oooooo"),
		simweb.AtomConf:    schema.MustPattern("ioooo"),
		simweb.AtomWeather: schema.MustPattern("ioi"),
	}
	alpha4 := Assignment{
		simweb.AtomFlight:  schema.MustPattern("iiiiooo"),
		simweb.AtomHotel:   schema.MustPattern("oooooo"),
		simweb.AtomConf:    schema.MustPattern("ooooi"),
		simweb.AtomWeather: schema.MustPattern("ioi"),
	}
	if !Permissible(q, alpha2) || !Permissible(q, alpha4) {
		t.Fatal("α2 and α4 should be permissible")
	}
	if !alpha1.StrictlyMoreCogent(alpha2) {
		t.Error("α1 ≻IO α2 expected")
	}
	if alpha1.MoreCogent(alpha4) || alpha4.MoreCogent(alpha1) {
		t.Error("α1 and α4 should be incomparable")
	}
	frontier := MostCogent(perm)
	if len(frontier) != 2 {
		t.Fatalf("most cogent count = %d, want 2 (α1, α4)", len(frontier))
	}
	seen := map[string]bool{}
	for _, a := range frontier {
		seen[a.String()] = true
	}
	if !seen[alpha1.String()] || !seen[alpha4.String()] {
		t.Errorf("frontier = %v, want {α1, α4}", frontier)
	}
}

func TestCallableAfter(t *testing.T) {
	q := travelQuery(t)
	asn := simweb.AssignmentAlpha1()
	// Example 5.1: "The only directly callable atom is conf".
	direct := CallableAfter(q, asn, nil)
	if len(direct) != 1 || direct[0] != simweb.AtomConf {
		t.Fatalf("directly callable = %v, want [conf]", direct)
	}
	// After conf, every remaining atom becomes callable.
	after := CallableAfter(q, asn, map[int]bool{simweb.AtomConf: true})
	if len(after) != 3 {
		t.Fatalf("callable after conf = %v, want 3 atoms", after)
	}
}

func TestCallOrder(t *testing.T) {
	q := travelQuery(t)
	order, err := CallOrder(q, simweb.AssignmentAlpha1())
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != simweb.AtomConf {
		t.Errorf("first callable = %d, want conf (%d)", order[0], simweb.AtomConf)
	}
	if len(order) != 4 {
		t.Errorf("order covers %d atoms, want 4", len(order))
	}
	// Non-permissible assignment errors.
	alpha3 := Assignment{
		simweb.AtomFlight:  schema.MustPattern("iiiiooo"),
		simweb.AtomHotel:   schema.MustPattern("oiiiio"),
		simweb.AtomConf:    schema.MustPattern("ooooi"),
		simweb.AtomWeather: schema.MustPattern("ioi"),
	}
	if _, err := CallOrder(q, alpha3); err == nil {
		t.Error("CallOrder should fail on α3")
	}
}

func TestInputOutputVars(t *testing.T) {
	q := travelQuery(t)
	flight := q.Atoms[simweb.AtomFlight]
	p := schema.MustPattern("iiiiooo")
	in := InputVars(flight, p)
	// From is the constant 'Milano', so inputs vars are City, Start, End.
	if len(in) != 3 || !in.Has("City") || !in.Has("Start") || !in.Has("End") {
		t.Errorf("flight input vars = %v", in)
	}
	out := OutputVars(flight, p)
	if len(out) != 3 || !out.Has("FPrice") {
		t.Errorf("flight output vars = %v", out)
	}
}

// TestPermissibleMatchesCallOrder: on random schemas, Permissible
// agrees with CallOrder succeeding (property-based).
func TestPermissibleMatchesCallOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		q, asn := randomQuery(rng)
		p := Permissible(q, asn)
		_, err := CallOrder(q, asn)
		if p != (err == nil) {
			t.Fatalf("trial %d: Permissible=%v but CallOrder err=%v\nquery %s asn %s",
				trial, p, err, q, asn)
		}
	}
}

// randomQuery builds a small random query with shared variables and
// random access patterns.
func randomQuery(rng *rand.Rand) (*cq.Query, Assignment) {
	nAtoms := 1 + rng.Intn(4)
	nVars := 2 + rng.Intn(4)
	vars := make([]cq.Var, nVars)
	for i := range vars {
		vars[i] = cq.Var(string(rune('A' + i)))
	}
	q := &cq.Query{Name: "r"}
	asn := make(Assignment, nAtoms)
	for i := 0; i < nAtoms; i++ {
		arity := 1 + rng.Intn(3)
		terms := make([]cq.Term, arity)
		pattern := make(schema.AccessPattern, arity)
		for j := range terms {
			if rng.Intn(5) == 0 {
				terms[j] = cq.C(schema.N(float64(rng.Intn(3))))
			} else {
				terms[j] = cq.V(string(vars[rng.Intn(nVars)]))
			}
			if rng.Intn(2) == 0 {
				pattern[j] = schema.In
			} else {
				pattern[j] = schema.Out
			}
		}
		q.Atoms = append(q.Atoms, &cq.Atom{Service: "s", Terms: terms, Index: i})
		asn[i] = pattern
	}
	return q, asn
}

func TestSortByCogency(t *testing.T) {
	asns := []Assignment{
		{schema.MustPattern("ooo")},
		{schema.MustPattern("iio")},
		{schema.MustPattern("ioo")},
	}
	SortByCogency(asns)
	if asns[0].InputCount() != 2 || asns[1].InputCount() != 1 || asns[2].InputCount() != 0 {
		t.Errorf("cogency sort wrong: %v", asns)
	}
}

func TestMostCogentKeepsIncomparable(t *testing.T) {
	a := Assignment{schema.MustPattern("io"), schema.MustPattern("oi")}
	b := Assignment{schema.MustPattern("oi"), schema.MustPattern("io")}
	front := MostCogent([]Assignment{a, b})
	if len(front) != 2 {
		t.Errorf("incomparable assignments both belong to the frontier, got %d", len(front))
	}
}

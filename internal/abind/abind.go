// Package abind implements access-pattern selection for conjunctive
// queries over services with binding restrictions (§3.2 and §4.1 of
// Braga et al., VLDB 2008): callability of atoms (Definition 3.1),
// enumeration of permissible pattern sequences, and the cogency
// partial order behind the "bound is better" heuristics.
package abind

import (
	"fmt"
	"sort"
	"strings"

	"mdq/internal/cq"
	"mdq/internal/schema"
)

// Assignment picks one feasible access pattern per query atom,
// indexed by atom position in the body (the paper's sequence α).
type Assignment []schema.AccessPattern

// String renders the assignment as e.g. <conf:ioooo, hotel:oiiiio>.
func (a Assignment) String() string {
	parts := make([]string, len(a))
	for i, p := range a {
		parts[i] = p.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Equal reports whether two assignments pick the same patterns.
func (a Assignment) Equal(b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// MoreCogent reports a ⊒IO b pointwise (§4.1.1): every pattern of a
// is at least as cogent as the corresponding pattern of b.
func (a Assignment) MoreCogent(b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].MoreCogent(b[i]) {
			return false
		}
	}
	return true
}

// StrictlyMoreCogent reports a ≻IO b.
func (a Assignment) StrictlyMoreCogent(b Assignment) bool {
	return a.MoreCogent(b) && !b.MoreCogent(a)
}

// InputCount is the total number of input positions across the
// assignment; used as a heuristic total order refining cogency.
func (a Assignment) InputCount() int {
	n := 0
	for _, p := range a {
		n += len(p.Inputs())
	}
	return n
}

// InputVars returns the variables in input position of atom under
// pattern p.
func InputVars(atom *cq.Atom, p schema.AccessPattern) cq.VarSet {
	return atom.VarsAt(p.Inputs())
}

// OutputVars returns the variables in output position of atom under
// pattern p.
func OutputVars(atom *cq.Atom, p schema.AccessPattern) cq.VarSet {
	return atom.VarsAt(p.Outputs())
}

// InputsBound reports whether every input field of the atom under
// pattern p is filled with a constant or a variable in bound.
func InputsBound(atom *cq.Atom, p schema.AccessPattern, bound cq.VarSet) bool {
	for _, i := range p.Inputs() {
		t := atom.Terms[i]
		if t.IsVar() && !bound.Has(t.Var) {
			return false
		}
	}
	return true
}

// CallableAfter returns the indexes of atoms not in placed that are
// callable given the outputs of the placed atoms (§3.3: an atom A is
// callable after a set N if A ∉ N and A's input fields contain a
// constant or a variable occurring in an output field of an atom in
// N). Passing an empty placed set yields the directly callable
// atoms. The result is sorted by atom index.
func CallableAfter(q *cq.Query, asn Assignment, placed map[int]bool) []int {
	bound := cq.VarSet{}
	for i, a := range q.Atoms {
		if placed[i] {
			bound.AddAll(OutputVars(a, asn[i]))
		}
	}
	var out []int
	for i, a := range q.Atoms {
		if placed[i] {
			continue
		}
		if InputsBound(a, asn[i], bound) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Permissible reports whether every atom of the query is callable
// under the assignment (Definition 3.1), using the linear-time
// fixpoint of Yang, Kifer and Chaudhri [21]: repeatedly add callable
// atoms to the bound set until no progress.
func Permissible(q *cq.Query, asn Assignment) bool {
	if len(asn) != len(q.Atoms) {
		return false
	}
	callable := make([]bool, len(q.Atoms))
	bound := cq.VarSet{}
	remaining := len(q.Atoms)
	for progress := true; progress && remaining > 0; {
		progress = false
		for i, a := range q.Atoms {
			if callable[i] {
				continue
			}
			if InputsBound(a, asn[i], bound) {
				callable[i] = true
				bound.AddAll(OutputVars(a, asn[i]))
				remaining--
				progress = true
			}
		}
	}
	return remaining == 0
}

// CallOrder returns one topological invocation order consistent with
// the assignment (atoms in the order they become callable), or an
// error if the assignment is not permissible.
func CallOrder(q *cq.Query, asn Assignment) ([]int, error) {
	var order []int
	callable := make([]bool, len(q.Atoms))
	bound := cq.VarSet{}
	for len(order) < len(q.Atoms) {
		progress := false
		for i, a := range q.Atoms {
			if callable[i] {
				continue
			}
			if InputsBound(a, asn[i], bound) {
				callable[i] = true
				bound.AddAll(OutputVars(a, asn[i]))
				order = append(order, i)
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("abind: assignment %s is not permissible for query %s", asn, q.Name)
		}
	}
	return order, nil
}

// Enumerate produces every permissible assignment for the query,
// taking the feasible patterns from the resolved signatures. The
// query must have been resolved against a schema first. Results are
// in lexicographic pattern-index order, so output is deterministic.
func Enumerate(q *cq.Query) ([]Assignment, error) {
	for _, a := range q.Atoms {
		if a.Sig == nil {
			return nil, fmt.Errorf("abind: atom %s is not resolved against a schema", a)
		}
		if len(a.Sig.Patterns) == 0 {
			return nil, fmt.Errorf("abind: service %s has no feasible access patterns", a.Service)
		}
	}
	var (
		result  []Assignment
		current = make(Assignment, len(q.Atoms))
	)
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Atoms) {
			if Permissible(q, current) {
				cp := make(Assignment, len(current))
				copy(cp, current)
				result = append(result, cp)
			}
			return
		}
		for _, p := range q.Atoms[i].Sig.Patterns {
			current[i] = p
			rec(i + 1)
		}
	}
	rec(0)
	return result, nil
}

// EnumerateAll is Enumerate without the permissibility filter; it
// returns all candidate assignments (the paper's ∏ m_i^{o_i} space).
func EnumerateAll(q *cq.Query) ([]Assignment, error) {
	for _, a := range q.Atoms {
		if a.Sig == nil {
			return nil, fmt.Errorf("abind: atom %s is not resolved against a schema", a)
		}
	}
	var (
		result  []Assignment
		current = make(Assignment, len(q.Atoms))
	)
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Atoms) {
			cp := make(Assignment, len(current))
			copy(cp, current)
			result = append(result, cp)
			return
		}
		for _, p := range q.Atoms[i].Sig.Patterns {
			current[i] = p
			rec(i + 1)
		}
	}
	rec(0)
	return result, nil
}

// MostCogent filters assignments down to the maximal elements of the
// ⊑IO partial order ("bound is better", §4.1.1): those not strictly
// dominated by another assignment in the input.
func MostCogent(asns []Assignment) []Assignment {
	var out []Assignment
	for i, a := range asns {
		dominated := false
		for j, b := range asns {
			if i != j && b.StrictlyMoreCogent(a) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

// SortByCogency orders assignments so that heuristically better ones
// come first: more total input positions first, then lexicographic by
// pattern string for determinism. This is the exploration order used
// by phase 1 of the branch and bound (§4.1.2): most cogent choices
// first, then the rest.
func SortByCogency(asns []Assignment) {
	sort.SliceStable(asns, func(i, j int) bool {
		ci, cj := asns[i].InputCount(), asns[j].InputCount()
		if ci != cj {
			return ci > cj
		}
		return asns[i].String() < asns[j].String()
	})
}

// Package trace is the per-query tracing plane: a dependency-free
// span tracer threaded through optimization, dispatch, fragment
// execution and individual service calls. A traced query owns one
// Trace — a flat, append-only list of spans linked by parent IDs —
// and every pipeline stage that does work under it opens a child
// span. Plan-node spans additionally carry the optimizer's estimated
// cardinalities (Estimate, copied from the plan annotations of §5.3)
// next to what execution actually observed (Observed), which is the
// estimate-vs-actual audit: the explain-style tree shows exactly
// where the cost model diverged from reality.
//
// The package imports nothing from the rest of the module, so every
// layer (opt, exec, dist, serve, the binaries) can use it without
// cycles. All Span and Trace methods are nil-receiver safe: the
// untraced hot path carries a nil *Span in (or absent from) the
// context and every tracing call degrades to a pointer check —
// near-zero overhead, measured by BenchmarkTraceOverhead.
//
// Spans cross process boundaries by value: a worker executes its
// fragment under a local Trace seeded with the coordinator's trace
// ID, snapshots it (Spans) onto the result frame — piggybacked the
// same way reverse epoch gossip rides fragment results — and the
// coordinator splices the snapshot under the dispatching span
// (Splice), remapping span IDs into its own sequence. The merged
// result is a single tree spanning the fleet.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Estimate is the optimizer's prediction for one plan node, copied
// from the annotated plan (card.Config.Annotate): expected input
// tuples, expected service invocations and expected output tuples.
// Join and output nodes predict no calls.
type Estimate struct {
	// TIn is the estimated input cardinality t_in.
	TIn float64 `json:"tin"`
	// Calls is the estimated number of service invocations.
	Calls float64 `json:"calls"`
	// TOut is the estimated output cardinality t_out.
	TOut float64 `json:"tout"`
}

// Observed is what execution actually measured for one plan node:
// tuples in and out, real service invocations and chunk fetches.
// Together with the span's duration it is the "actual" half of the
// estimate-vs-actual audit.
type Observed struct {
	// InTuples counts tuples the node consumed.
	InTuples int64 `json:"in_tuples"`
	// OutTuples counts tuples the node produced.
	OutTuples int64 `json:"out_tuples"`
	// Calls counts real (cache-missing) service invocations.
	Calls int64 `json:"calls"`
	// Fetches counts chunk fetches across those invocations.
	Fetches int64 `json:"fetches"`
}

// Span is one timed operation in a trace. Spans form a tree through
// Parent IDs; IDs are assigned by the owning Trace in start order and
// remapped when a span snapshot is spliced into another trace. The
// zero Dur of an unfinished span means "still open" (or, for
// cumulative spans, see AddDur).
type Span struct {
	// ID is the span's identity within its trace (1-based).
	ID uint64 `json:"id"`
	// Parent is the parent span's ID; 0 marks a root.
	Parent uint64 `json:"parent,omitempty"`
	// Name says what ran ("opt.phase1.assignments", "node:Hotel2", …).
	Name string `json:"name"`
	// Start is the span's start time in Unix nanoseconds.
	Start int64 `json:"start_ns"`
	// Dur is the span's duration in nanoseconds (0 while open).
	Dur int64 `json:"dur_ns"`
	// Attrs carries free-form string annotations (worker name, cache
	// class, error text, …).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Est is the optimizer's estimate, set on plan-node spans.
	Est *Estimate `json:"est,omitempty"`
	// Obs is the execution-observed counterpart, set on plan-node
	// spans.
	Obs *Observed `json:"obs,omitempty"`

	tr *Trace // owning trace; nil on decoded wire snapshots
}

// Trace collects the spans of one query. The zero value is not
// usable; build one with New. A nil *Trace is valid everywhere and
// all methods no-op on it — that is the sampled-off fast path.
type Trace struct {
	id string

	mu    sync.Mutex
	next  uint64
	spans []*Span
}

// New builds an empty trace. An empty id mints a fresh random one.
func New(id string) *Trace {
	if id == "" {
		id = NewID()
	}
	return &Trace{id: id}
}

// NewID mints a random 16-hex-digit trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a time-derived ID rather than propagating an error through
		// every tracing call site.
		now := uint64(time.Now().UnixNano())
		for i := 0; i < 8; i++ {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a new span under the given parent ID (0 for a
// root). It returns nil on a nil trace.
func (t *Trace) StartSpan(parent uint64, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.next++
	s := &Span{ID: t.next, Parent: parent, Name: name, Start: time.Now().UnixNano(), tr: t}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Root opens a root span. It returns nil on a nil trace.
func (t *Trace) Root(name string) *Span { return t.StartSpan(0, name) }

// Spans returns a snapshot copy of all spans in start order — the
// wire form piggybacked on fragment and search results. The copies
// are detached values safe to marshal concurrently with further
// recording.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		out[i] = *s
		out[i].tr = nil
		if len(s.Attrs) > 0 {
			out[i].Attrs = make(map[string]string, len(s.Attrs))
			for k, v := range s.Attrs {
				out[i].Attrs[k] = v
			}
		}
		if s.Est != nil {
			e := *s.Est
			out[i].Est = &e
		}
		if s.Obs != nil {
			o := *s.Obs
			out[i].Obs = &o
		}
	}
	return out
}

// Splice grafts a remote span snapshot (a worker's Spans) under the
// given local span: every remote ID is remapped into this trace's
// sequence, remote parent links are preserved, and remote roots —
// or spans whose parent is unknown here, such as a worker root
// parented to the coordinator's shipped span ID — attach under
// `under`. This is the coordinator half of the piggyback path.
func (t *Trace) Splice(under *Span, remote []Span) {
	if t == nil || under == nil || len(remote) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idmap := make(map[uint64]uint64, len(remote))
	for _, rs := range remote {
		t.next++
		idmap[rs.ID] = t.next
	}
	for _, rs := range remote {
		cp := rs
		cp.ID = idmap[rs.ID]
		if p, ok := idmap[rs.Parent]; ok {
			cp.Parent = p
		} else {
			cp.Parent = under.ID
		}
		cp.tr = t
		t.spans = append(t.spans, &cp)
	}
}

// Splice grafts a remote span snapshot under s — shorthand for
// Trace.Splice on s's owning trace. A no-op on a nil or detached
// span, so dispatch sites splice unconditionally.
func (s *Span) Splice(remote []Span) {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.Splice(s, remote)
}

// TraceID returns the owning trace's ID, "" when s is nil or
// detached — the value shipped over the dist wire so the remote side
// records into a trace of the same identity.
func (s *Span) TraceID() string {
	if s == nil || s.tr == nil {
		return ""
	}
	return s.tr.ID()
}

// Child opens a new span under s. It returns nil when s is nil, so
// untraced call sites chain through without branching.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.StartSpan(s.ID, name)
}

// SpanID returns s's ID, 0 when s is nil — the value shipped over
// the dist wire as the remote side's parent.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.ID
}

// End closes the span, fixing its duration. Ending twice keeps the
// first duration.
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	if s.Dur == 0 {
		s.Dur = time.Now().UnixNano() - s.Start
	}
	s.tr.mu.Unlock()
}

// AddDur accumulates explicit duration into the span — for
// cumulative spans that aggregate many short operations (the phase-3
// fetch-assignment span sums assigner time across search workers, so
// its duration is CPU-cumulative, not wall-clock).
func (s *Span) AddDur(d time.Duration) {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	s.Dur += int64(d)
	s.tr.mu.Unlock()
}

// Set records a string attribute on the span.
func (s *Span) Set(key, val string) {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[key] = val
	s.tr.mu.Unlock()
}

// SetEst records the optimizer's estimate on a plan-node span.
func (s *Span) SetEst(tin, calls, tout float64) {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	s.Est = &Estimate{TIn: tin, Calls: calls, TOut: tout}
	s.tr.mu.Unlock()
}

// AddObs accumulates observed counters on a plan-node span; safe for
// concurrent use by parallel service calls. Passing all zeros still
// materializes the Obs struct, marking the node as executed.
func (s *Span) AddObs(in, out, calls, fetches int64) {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	if s.Obs == nil {
		s.Obs = &Observed{}
	}
	s.Obs.InTuples += in
	s.Obs.OutTuples += out
	s.Obs.Calls += calls
	s.Obs.Fetches += fetches
	s.tr.mu.Unlock()
}

type ctxKey struct{}

// With returns a context carrying the span (which may be nil,
// detaching any inherited span — workers do this before installing
// their own, mirroring the budget detach).
func With(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// From returns the span carried by the context, nil when absent —
// the single check the untraced hot path pays.
func From(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

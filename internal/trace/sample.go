package trace

import "sync/atomic"

// Sampler decides which requests get a trace. It is deterministic
// and counter-based rather than random: at rate r it admits every
// request k where ⌊k·r⌋ advances, so a rate of 0.1 traces exactly
// every 10th request — predictable under test and under load. The
// zero value (and a nil sampler) admits nothing, which is the
// production default: the untraced hot path never allocates a trace.
type Sampler struct {
	rate float64
	n    atomic.Uint64
}

// NewSampler builds a sampler admitting the given fraction of
// requests: ≤ 0 admits none, ≥ 1 admits all.
func NewSampler(rate float64) *Sampler {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Sampler{rate: rate}
}

// Sample reports whether the next request should be traced.
func (s *Sampler) Sample() bool {
	if s == nil || s.rate <= 0 {
		return false
	}
	if s.rate >= 1 {
		return true
	}
	k := s.n.Add(1)
	return uint64(float64(k)*s.rate) != uint64(float64(k-1)*s.rate)
}

package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	tr := New("")
	if len(tr.ID()) != 16 {
		t.Fatalf("trace ID %q, want 16 hex chars", tr.ID())
	}
	root := tr.Root("query")
	opt := root.Child("optimize")
	opt.Set("class", "miss")
	exec := root.Child("execute")
	node := exec.Child("node:flight")
	node.SetEst(1, 2, 25)
	node.AddObs(1, 3, 2, 2)
	node.AddObs(0, 1, 0, 0)
	node.End()
	exec.End()
	opt.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	roots := Tree(spans)
	if len(roots) != 1 || roots[0].Name != "query" {
		t.Fatalf("tree roots = %v", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(roots[0].Children))
	}
	var nodeSpan *TreeNode
	Walk(roots, func(n *TreeNode) {
		if n.Name == "node:flight" {
			nodeSpan = n
		}
	})
	if nodeSpan == nil {
		t.Fatal("node:flight missing from tree")
	}
	if nodeSpan.Est == nil || nodeSpan.Est.TOut != 25 {
		t.Fatalf("est = %+v, want tout 25", nodeSpan.Est)
	}
	if nodeSpan.Obs == nil || nodeSpan.Obs.OutTuples != 4 || nodeSpan.Obs.Calls != 2 {
		t.Fatalf("obs = %+v, want accumulated out=4 calls=2", nodeSpan.Obs)
	}
}

// TestNilSafety pins the untraced hot path: every method on a nil
// span, nil trace, or detached (wire-decoded) span is a no-op rather
// than a panic.
func TestNilSafety(t *testing.T) {
	var s *Span
	s.End()
	s.Set("k", "v")
	s.SetEst(1, 2, 3)
	s.AddObs(1, 2, 3, 4)
	s.AddDur(time.Second)
	s.Splice([]Span{{ID: 1}})
	if c := s.Child("x"); c != nil {
		t.Fatalf("nil span child = %v, want nil", c)
	}
	if id := s.SpanID(); id != 0 {
		t.Fatalf("nil SpanID = %d", id)
	}
	if id := s.TraceID(); id != "" {
		t.Fatalf("nil TraceID = %q", id)
	}
	var tr *Trace
	if tr.Root("x") != nil || tr.Spans() != nil || tr.ID() != "" {
		t.Fatal("nil trace methods not inert")
	}
	tr.Splice(nil, nil)

	// Detached span (as decoded from the wire): same contract.
	d := &Span{ID: 1, Name: "detached"}
	d.End()
	d.Set("k", "v")
	if d.Child("x") != nil {
		t.Fatal("detached span spawned a child")
	}

	// Absent from context: From yields nil, With(nil) stays retrievable.
	if From(context.Background()) != nil {
		t.Fatal("From(empty ctx) != nil")
	}
	ctx := With(context.Background(), nil)
	if From(ctx) != nil {
		t.Fatal("From(ctx with nil span) != nil")
	}
}

// TestSpliceRemap pins the cross-process graft, including the ID
// collision that motivates parent-0 roots: remote span IDs overlap
// the local sequence, remote parent links must be remapped into fresh
// local IDs, and remote roots land under the splice target.
func TestSpliceRemap(t *testing.T) {
	tr := New("")
	root := tr.Root("query")       // local ID 1
	dsp := root.Child("dispatch")  // local ID 2
	other := root.Child("sibling") // local ID 3
	remote := []Span{
		{ID: 1, Parent: 0, Name: "worker.fragment"},
		{ID: 2, Parent: 1, Name: "node:conf"},
		{ID: 3, Parent: 2, Name: "call:conf"},
	}
	dsp.Splice(remote)
	roots := Tree(tr.Spans())
	if len(roots) != 1 {
		t.Fatalf("tree has %d roots, want 1", len(roots))
	}
	var worker, call *TreeNode
	Walk(roots, func(n *TreeNode) {
		switch n.Name {
		case "worker.fragment":
			worker = n
		case "call:conf":
			call = n
		}
	})
	if worker == nil || call == nil {
		t.Fatalf("spliced spans missing from tree")
	}
	if worker.Parent != dsp.SpanID() {
		t.Fatalf("worker root parent %d, want dispatch %d", worker.Parent, dsp.SpanID())
	}
	if len(worker.Children) != 1 || worker.Children[0].Name != "node:conf" {
		t.Fatalf("worker children = %v", worker.Children)
	}
	// The pre-existing sibling must not have adopted remote children
	// (its ID collides with remote span IDs).
	Walk(roots, func(n *TreeNode) {
		if n.Name == "sibling" && len(n.Children) != 0 {
			t.Fatalf("sibling adopted %d remote spans", len(n.Children))
		}
	})
	_ = other
}

// TestSpliceUnknownParent: a remote span whose parent is neither 0
// nor another remote span still lands under the splice target instead
// of detaching from the tree.
func TestSpliceUnknownParent(t *testing.T) {
	tr := New("")
	root := tr.Root("query")
	dsp := root.Child("dispatch")
	dsp.Splice([]Span{{ID: 40, Parent: 99, Name: "orphan"}})
	var orphan *TreeNode
	Walk(Tree(tr.Spans()), func(n *TreeNode) {
		if n.Name == "orphan" {
			orphan = n
		}
	})
	if orphan == nil {
		t.Fatal("orphan span missing from tree")
	}
	if orphan.Parent != dsp.SpanID() {
		t.Fatalf("orphan parent %d, want dispatch %d", orphan.Parent, dsp.SpanID())
	}
}

func TestSamplerRates(t *testing.T) {
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler sampled")
	}
	off := NewSampler(0)
	for i := 0; i < 10; i++ {
		if off.Sample() {
			t.Fatal("rate 0 sampler sampled a request")
		}
	}
	all := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !all.Sample() {
			t.Fatal("rate 1 sampler skipped a request")
		}
	}
	half := NewSampler(0.5)
	hits := 0
	for i := 0; i < 1000; i++ {
		if half.Sample() {
			hits++
		}
	}
	if hits != 500 {
		t.Fatalf("rate 0.5 sampled %d of 1000, want exactly 500 (deterministic)", hits)
	}
}

func TestStoreRingAndHandler(t *testing.T) {
	st := NewStore(2)
	for _, id := range []string{"aa", "bb", "cc"} {
		tr := New(id)
		sp := tr.Root("query")
		sp.End()
		st.Add(Dump{TraceID: id, Time: time.Now(), Spans: Tree(tr.Spans())})
	}
	if _, ok := st.Get("aa"); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if _, ok := st.Get("cc"); !ok {
		t.Fatal("newest trace missing")
	}
	sums := st.Snapshot()
	if len(sums) != 2 || sums[0].TraceID != "cc" || sums[1].TraceID != "bb" {
		t.Fatalf("snapshot = %+v, want [cc bb]", sums)
	}

	h := st.Handler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/trace", nil))
	var list []Summary
	if err := json.NewDecoder(rr.Body).Decode(&list); err != nil {
		t.Fatalf("decoding /trace: %v", err)
	}
	if len(list) != 2 {
		t.Fatalf("/trace listed %d traces, want 2", len(list))
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/trace/cc", nil))
	var dump Dump
	if err := json.NewDecoder(rr.Body).Decode(&dump); err != nil {
		t.Fatalf("decoding /trace/cc: %v", err)
	}
	if dump.TraceID != "cc" || len(dump.Spans) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/trace/aa", nil))
	if rr.Code != 404 {
		t.Fatalf("evicted trace returned %d, want 404", rr.Code)
	}
}

func TestRender(t *testing.T) {
	tr := New("")
	root := tr.Root("query")
	node := root.Child("node:flight")
	node.SetEst(1, 2, 25)
	node.AddObs(1, 4, 2, 2)
	node.End()
	root.End()
	var buf bytes.Buffer
	Render(&buf, Tree(tr.Spans()))
	out := buf.String()
	for _, want := range []string{"query", "node:flight", "est", "obs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "  node:flight") {
		t.Fatalf("child not indented:\n%s", out)
	}
}

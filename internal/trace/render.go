package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Render writes a span tree as an indented explain-style text tree —
// what mdqrun -trace prints. Each line shows the span name, its
// duration, and for plan-node spans the estimated vs observed
// cardinalities and call counts side by side, so mispriced nodes
// read directly off the output.
func Render(w io.Writer, roots []*TreeNode) {
	for _, n := range roots {
		renderNode(w, n, 0)
	}
}

func renderNode(w io.Writer, n *TreeNode, depth int) {
	indent := strings.Repeat("  ", depth)
	line := fmt.Sprintf("%s%s  %s", indent, n.Name, time.Duration(n.Dur))
	if n.Est != nil || n.Obs != nil {
		line += "  ["
		if n.Est != nil {
			line += fmt.Sprintf("est tin=%.2f calls=%.2f tout=%.2f", n.Est.TIn, n.Est.Calls, n.Est.TOut)
		}
		if n.Obs != nil {
			if n.Est != nil {
				line += " | "
			}
			line += fmt.Sprintf("obs in=%d calls=%d fetches=%d out=%d",
				n.Obs.InTuples, n.Obs.Calls, n.Obs.Fetches, n.Obs.OutTuples)
		}
		line += "]"
	}
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			line += fmt.Sprintf(" %s=%s", k, n.Attrs[k])
		}
	}
	fmt.Fprintln(w, line)
	for _, c := range n.Children {
		renderNode(w, c, depth+1)
	}
}

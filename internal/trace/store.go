package trace

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"time"
)

// TreeNode is one span rendered into nested tree form — the
// explain-style shape returned by POST /query with "trace": true and
// served by GET /trace/{id}.
type TreeNode struct {
	Span
	// Children are the span's child spans in start order.
	Children []*TreeNode `json:"children,omitempty"`
}

// Tree renders a flat span snapshot into its nested tree form.
// Spans whose parent is missing from the snapshot become roots;
// input order (start order) is preserved among siblings.
func Tree(spans []Span) []*TreeNode {
	nodes := make(map[uint64]*TreeNode, len(spans))
	ordered := make([]*TreeNode, 0, len(spans))
	for i := range spans {
		n := &TreeNode{Span: spans[i]}
		n.tr = nil // detach: tree nodes are plain data
		nodes[n.ID] = n
		ordered = append(ordered, n)
	}
	var roots []*TreeNode
	for _, n := range ordered {
		if p, ok := nodes[n.Parent]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// Walk visits every node of a span tree depth-first, parents before
// children.
func Walk(roots []*TreeNode, visit func(n *TreeNode)) {
	for _, n := range roots {
		visit(n)
		Walk(n.Children, visit)
	}
}

// Dump is one finished trace as stored and served: its ID plus the
// rendered span tree.
type Dump struct {
	// TraceID identifies the trace.
	TraceID string `json:"trace_id"`
	// Time is when the trace was stored.
	Time time.Time `json:"time"`
	// Spans is the rendered span tree.
	Spans []*TreeNode `json:"spans"`
}

// Summary is one trace's row in the GET /trace listing.
type Summary struct {
	// TraceID identifies the trace.
	TraceID string `json:"trace_id"`
	// Time is when the trace was stored.
	Time time.Time `json:"time"`
	// Name is the root span's name.
	Name string `json:"name,omitempty"`
	// DurNanos is the root span's duration.
	DurNanos int64 `json:"dur_ns,omitempty"`
	// Spans counts the spans in the trace.
	Spans int `json:"spans"`
}

// Store is a fixed-capacity ring buffer of the most recent finished
// traces, the backing of GET /trace (listing) and GET /trace/{id}
// (full tree). Like the slowlog it trades completeness for bounded
// memory: the newest Cap traces win, recording is O(1) under one
// short lock, and the serving path never blocks on it.
type Store struct {
	mu    sync.Mutex
	ring  []Dump
	next  int
	count int
}

// NewStore builds a store keeping the last cap traces (cap ≤ 0 means
// 64).
func NewStore(cap int) *Store {
	if cap <= 0 {
		cap = 64
	}
	return &Store{ring: make([]Dump, cap)}
}

// Add records a finished trace, evicting the oldest past capacity.
// Nil-safe: a nil store drops the trace.
func (st *Store) Add(d Dump) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.ring[st.next] = d
	st.next = (st.next + 1) % len(st.ring)
	if st.count < len(st.ring) {
		st.count++
	}
	st.mu.Unlock()
}

// Get returns the stored trace with the given ID.
func (st *Store) Get(id string) (Dump, bool) {
	if st == nil {
		return Dump{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := 1; i <= st.count; i++ {
		d := st.ring[(st.next-i+len(st.ring))%len(st.ring)]
		if d.TraceID == id {
			return d, true
		}
	}
	return Dump{}, false
}

// Snapshot lists the held traces newest-first.
func (st *Store) Snapshot() []Summary {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Summary, 0, st.count)
	for i := 1; i <= st.count; i++ {
		d := st.ring[(st.next-i+len(st.ring))%len(st.ring)]
		s := Summary{TraceID: d.TraceID, Time: d.Time, Spans: countNodes(d.Spans)}
		if len(d.Spans) > 0 {
			s.Name = d.Spans[0].Name
			s.DurNanos = d.Spans[0].Dur
		}
		out = append(out, s)
	}
	return out
}

func countNodes(roots []*TreeNode) int {
	n := 0
	Walk(roots, func(*TreeNode) { n++ })
	return n
}

// Handler serves the store over HTTP: GET /trace lists summaries
// newest-first, GET /trace/{id} returns one full trace tree (404
// when evicted or unknown). Mount it at both "/trace" and "/trace/".
func (st *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/trace"), "/")
		w.Header().Set("Content-Type", "application/json")
		if id == "" {
			json.NewEncoder(w).Encode(st.Snapshot())
			return
		}
		d, ok := st.Get(id)
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "no such trace"})
			return
		}
		json.NewEncoder(w).Encode(d)
	})
}

package exec_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	. "mdq/internal/exec"
	"mdq/internal/opt"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/simweb"
)

// streamIx borrows the travel plan's variable layout to handcraft
// operator-level tuples against.
func streamIx(t *testing.T) *VarIndex {
	t.Helper()
	_, p := travelPlan(t, simweb.PlanOTopology())
	return NewVarIndex(p)
}

// randTuples generates n tuples binding the given slots to a small
// random numeric domain, so left/right pairs share values on an
// overlapping slot often enough to join.
func randTuples(rng *rand.Rand, ix *VarIndex, slots []int, n, domain int) []Tuple {
	out := make([]Tuple, n)
	for i := range out {
		tp := NewTuple(ix)
		for _, s := range slots {
			tp = tp.With(s, schema.N(float64(rng.Intn(domain))))
		}
		out[i] = tp
	}
	return out
}

// feed streams tuples into a fresh channel in order and closes it.
func feed(ts []Tuple, buf int) chan Tuple {
	ch := make(chan Tuple, buf)
	go func() {
		for _, t := range ts {
			ch <- t
		}
		close(ch)
	}()
	return ch
}

// TestStreamJoinMatchesJoinPairs is the operator-level differential:
// for random input sequences across sizes, value overlaps, channel
// buffer capacities and both methods, StreamJoin must emit exactly
// the sequence the materializing JoinPairs produces from the fully
// buffered sides.
func TestStreamJoinMatchesJoinPairs(t *testing.T) {
	ix := streamIx(t)
	rng := rand.New(rand.NewSource(20080808))
	for trial := 0; trial < 300; trial++ {
		method := plan.NestedLoop
		if trial%2 == 1 {
			method = plan.MergeScan
		}
		nl, nr := rng.Intn(12), rng.Intn(12)
		dom := 1 + rng.Intn(4)
		left := randTuples(rng, ix, []int{0, 1}, nl, dom)
		right := randTuples(rng, ix, []int{1, 2}, nr, dom)

		want, err := JoinPairs(method, left, right, nil, ix)
		if err != nil {
			t.Fatal(err)
		}
		var got []Tuple
		buf := 1 + rng.Intn(4)
		err = StreamJoin(context.Background(), method, feed(left, buf), feed(right, buf),
			nil, ix, func(m Tuple) error { got = append(got, m); return nil }, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (%v, %d×%d): %d pairs, JoinPairs %d",
				trial, method, nl, nr, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Fatalf("trial %d (%v): pair %d diverges:\n stream: %v\n batch:  %v",
					trial, method, i, got[i], want[i])
			}
		}
	}
}

// TestStreamJoinEmitStopPropagates: an emit error — the downstream
// "K satisfied" signal — stops the join immediately and surfaces
// unchanged, for both methods, even with producers still live.
func TestStreamJoinEmitStopPropagates(t *testing.T) {
	ix := streamIx(t)
	rng := rand.New(rand.NewSource(1))
	left := randTuples(rng, ix, []int{0, 1}, 8, 1)
	right := randTuples(rng, ix, []int{1, 2}, 8, 1)
	for _, method := range []plan.JoinMethod{plan.NestedLoop, plan.MergeScan} {
		emitted := 0
		err := StreamJoin(context.Background(), method, feed(left, 8), feed(right, 8),
			nil, ix, func(Tuple) error {
				emitted++
				if emitted == 3 {
					return context.Canceled
				}
				return nil
			}, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want the emit error back", method, err)
		}
		if emitted != 3 {
			t.Fatalf("%v: emit called %d times after stop at 3", method, emitted)
		}
	}
}

// TestStreamJoinCancelUnblocks: a cancelled context aborts a join
// whose inputs never produce and never close — the stall case a
// cancellation ladder must get right.
func TestStreamJoinCancelUnblocks(t *testing.T) {
	ix := streamIx(t)
	for _, method := range []plan.JoinMethod{plan.NestedLoop, plan.MergeScan} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			done <- StreamJoin(ctx, method, make(chan Tuple), make(chan Tuple),
				nil, ix, func(Tuple) error { return nil }, nil)
		}()
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%v: err = %v, want context.Canceled", method, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%v: join did not unblock on cancellation", method)
		}
	}
}

// TestStreamJoinNestedLoopExcessPeak pins the memory accounting: the
// nested loop's excess buffering is exactly the right tuples that
// arrive while its left side is still open, and the output order is
// unaffected by how many queued up.
func TestStreamJoinNestedLoopExcessPeak(t *testing.T) {
	ix := streamIx(t)
	rng := rand.New(rand.NewSource(2))
	const n = 50
	right := randTuples(rng, ix, []int{1, 2}, n, 2)
	left := randTuples(rng, ix, []int{0, 1}, 2, 2)

	rch := make(chan Tuple, n)
	for _, r := range right {
		rch <- r
	}
	close(rch)
	lch := make(chan Tuple)

	var peak atomic.Int64
	var got []Tuple
	done := make(chan error, 1)
	go func() {
		done <- StreamJoin(context.Background(), plan.NestedLoop, lch, rch,
			nil, ix, func(m Tuple) error { got = append(got, m); return nil }, &peak)
	}()
	// With the left side open and empty, the operator's only progress
	// is consuming the right side into its pending queue.
	deadline := time.Now().Add(5 * time.Second)
	for peak.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("pending peak stuck at %d, want %d", peak.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	for _, l := range left {
		lch <- l
	}
	close(lch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if peak.Load() != n {
		t.Fatalf("excess peak = %d, want exactly %d", peak.Load(), n)
	}
	want, err := JoinPairs(plan.NestedLoop, left, right, nil, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("queued-right nested loop diverged from JoinPairs order")
	}
}

// TestStreamJoinMergeScanNoExcess: merge-scan's buffers are all
// frontier — every retained tuple still pairs with unseen tuples of
// the other side — so the excess gauge must stay untouched.
func TestStreamJoinMergeScanNoExcess(t *testing.T) {
	ix := streamIx(t)
	rng := rand.New(rand.NewSource(3))
	left := randTuples(rng, ix, []int{0, 1}, 40, 2)
	right := randTuples(rng, ix, []int{1, 2}, 40, 2)
	var peak atomic.Int64
	err := StreamJoin(context.Background(), plan.MergeScan, feed(left, 4), feed(right, 4),
		nil, ix, func(Tuple) error { return nil }, &peak)
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 0 {
		t.Fatalf("merge-scan raised the excess gauge to %d", peak.Load())
	}
}

// optimizedPlan builds the cost-optimal plan for a world's canonical
// query against its registry — the same shape production runs execute.
func optimizedPlan(t *testing.T, reg *service.Registry, text string) *plan.Plan {
	t.Helper()
	sch, err := reg.Schema()
	if err != nil {
		t.Fatal(err)
	}
	q, err := cq.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve(sch); err != nil {
		t.Fatal(err)
	}
	o := &opt.Optimizer{
		Metric:       cost.ExecTime{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            10,
		ChooseMethod: reg.MethodChooser(),
	}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Best
}

// streamWorlds is the differential matrix: join-rich travel, the
// chunked bioinfo chain, and the skewed zipf world.
func streamWorlds() []struct {
	name string
	reg  *service.Registry
	text string
} {
	return []struct {
		name string
		reg  *service.Registry
		text string
	}{
		{"travel", simweb.NewTravelWorld(simweb.TravelOptions{}).Registry, simweb.RunningExampleText},
		{"bioinfo", simweb.NewBioWorld().Registry, simweb.BioExampleText},
		{"zipf", simweb.NewZipfWorld(0, 0, 0).Registry, simweb.ZipfExampleText},
	}
}

// TestStreamingMatchesMaterialized is the runner-level differential:
// on every simweb world, the streaming runtime returns results
// tuple-identical (head, row values, binding payloads, call counts)
// to the seed's materializing runtime — full drains and K-limited
// runs alike.
func TestStreamingMatchesMaterialized(t *testing.T) {
	for _, w := range streamWorlds() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			p := optimizedPlan(t, w.reg, w.text)
			for _, k := range []int{0, 3} {
				mat := &Runner{Registry: w.reg, Cache: card.OneCall, K: k, Materialize: true}
				want, err := mat.Run(context.Background(), p)
				if err != nil {
					t.Fatal(err)
				}
				str := &Runner{Registry: w.reg, Cache: card.OneCall, K: k, BufferSize: 4}
				got, err := str.Run(context.Background(), p)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want.Head, got.Head) {
					t.Fatalf("k=%d: head %v vs %v", k, got.Head, want.Head)
				}
				if !reflect.DeepEqual(want.Rows, got.Rows) {
					t.Fatalf("k=%d: rows diverge:\n streaming:     %v\n materializing: %v",
						k, got.Rows, want.Rows)
				}
				if !reflect.DeepEqual(want.Tuples, got.Tuples) {
					t.Fatalf("k=%d: binding payloads diverge", k)
				}
				if k == 0 {
					// Full drains do identical work.
					if !reflect.DeepEqual(want.Stats.Calls, got.Stats.Calls) {
						t.Fatalf("calls diverge: %v vs %v", got.Stats.Calls, want.Stats.Calls)
					}
					continue
				}
				// At K the streaming runtime terminates early — it must
				// never call *more* than the materializing drain, and on
				// these worlds it calls strictly less somewhere (the
				// time-to-first-K win in call-count form).
				strictlyLess := false
				for svc, n := range got.Stats.Calls {
					if n > want.Stats.Calls[svc] {
						t.Fatalf("k=%d: streaming called %s %d times, materializing %d",
							k, svc, n, want.Stats.Calls[svc])
					}
					if n < want.Stats.Calls[svc] {
						strictlyLess = true
					}
				}
				if !strictlyLess {
					t.Fatalf("k=%d: early termination saved no calls: %v", k, got.Stats.Calls)
				}
			}
		})
	}
}

// TestStreamingMatchesMaterializedParallel repeats the differential
// with ParallelCalls, where upstream emission order within a stage is
// nondeterministic in both runtimes — so the contract weakens to the
// same answer multiset and the same call counts.
func TestStreamingMatchesMaterializedParallel(t *testing.T) {
	for _, w := range streamWorlds() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			p := optimizedPlan(t, w.reg, w.text)
			collect := func(materialize bool) (map[string]int, map[string]int64) {
				r := &Runner{Registry: w.reg, Cache: card.OneCall,
					ParallelCalls: true, Materialize: materialize}
				res, err := r.Run(context.Background(), p)
				if err != nil {
					t.Fatal(err)
				}
				m := map[string]int{}
				for _, row := range res.Rows {
					key := ""
					for _, v := range row {
						key += v.Key() + "|"
					}
					m[key]++
				}
				return m, res.Stats.Calls
			}
			wantRows, wantCalls := collect(true)
			gotRows, gotCalls := collect(false)
			if !reflect.DeepEqual(wantRows, gotRows) {
				t.Fatalf("parallel answer multisets diverge:\n streaming:     %v\n materializing: %v",
					gotRows, wantRows)
			}
			if !reflect.DeepEqual(wantCalls, gotCalls) {
				t.Fatalf("parallel call counts diverge: %v vs %v", gotCalls, wantCalls)
			}
		})
	}
}

// TestStreamingFirstRowPrecedesCompletion: the streaming runtime's
// first answer lands strictly before the run completes on a clocked
// plan, and Result.FirstRow records it.
func TestStreamingFirstRowPrecedesCompletion(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanSTopology())
	r := &Runner{Registry: w.Registry, Cache: card.OneCall, Clock: ScaledClock{Factor: 0.0005}}
	res, err := r.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstRow <= 0 {
		t.Fatal("FirstRow not recorded")
	}
	if res.FirstRow >= res.Elapsed {
		t.Fatalf("first row at %v, not before completion at %v", res.FirstRow, res.Elapsed)
	}
}

// TestStreamingSettlesNoGoroutineLeak: the streaming runtime's three
// remaining early-exit paths — satisfied at K, external cancellation
// mid-run, and a mid-stream service failure — leave no stage or join
// goroutines behind. (Budget trips are covered by
// TestBudgetAbortNoGoroutineLeak.)
func TestStreamingSettlesNoGoroutineLeak(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanSTopology())
	flakyReg, fw := flakyTravelWorld(t, 3, "")
	q, err := simweb.RunningExampleQuery(fw.Schema)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := fw.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		// Satisfied at K: cancellation propagates up the pipeline.
		kr := &Runner{Registry: w.Registry, Cache: card.OneCall, K: 2, BufferSize: 2}
		if res, err := kr.Run(context.Background(), p); err != nil || len(res.Rows) != 2 {
			t.Fatalf("run %d: K run: %v (rows %d)", i, err, len(res.Rows))
		}

		// External cancellation racing the run.
		ctx, cancel := context.WithCancel(context.Background())
		go func() { time.Sleep(time.Duration(i) * 100 * time.Microsecond); cancel() }()
		cr := &Runner{Registry: w.Registry, Cache: card.OneCall, BufferSize: 2}
		if _, err := cr.Run(ctx, p); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: cancel run: %v", i, err)
		}
		cancel()

		// Mid-stream service failure.
		fr := &Runner{Registry: flakyReg, Cache: card.NoCache, BufferSize: 2}
		if _, err := fr.Run(context.Background(), fp); err == nil {
			t.Fatalf("run %d: flaky run succeeded", i)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle to baseline %d\n%s",
				before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

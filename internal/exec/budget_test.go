package exec_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mdq/internal/card"
	. "mdq/internal/exec"
	"mdq/internal/serve"
	"mdq/internal/simweb"
)

// TestRunBudgetCallCap: a call-capped budget on the request context
// aborts the run with the typed budget error once the executor's
// invoker has charged the cap — the travel plan needs far more than
// five service calls.
func TestRunBudgetCallCap(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanSTopology())
	b := serve.NewBudget(0, 5)
	ctx, cancel := b.Context(context.Background())
	defer cancel()
	r := &Runner{Registry: w.Registry, Cache: card.NoCache}
	res, err := r.Run(ctx, p)
	if res != nil {
		t.Fatal("capped run still produced a result")
	}
	if !errors.Is(err, serve.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *serve.BudgetError
	if !errors.As(err, &be) || be.Reason != "calls" {
		t.Fatalf("err = %v, want *BudgetError with calls reason", err)
	}
	if b.Calls() <= 5 {
		t.Fatalf("budget recorded %d calls, expected it to have charged past the cap", b.Calls())
	}
}

// TestRunBudgetDeadline: a deadline that expires during execution
// surfaces as the budget error, not as the raw context cancellation
// it causes. An already-expired deadline is the deterministic
// worst case of "expires mid-run".
func TestRunBudgetDeadline(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanSTopology())
	b := serve.NewBudget(time.Nanosecond, 0)
	time.Sleep(time.Millisecond)
	ctx, cancel := b.Context(context.Background())
	defer cancel()
	r := &Runner{Registry: w.Registry, Cache: card.NoCache}
	if _, err := r.Run(ctx, p); !errors.Is(err, serve.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *serve.BudgetError
	err := b.Err()
	if !errors.As(err, &be) || be.Reason != "deadline" {
		t.Fatalf("budget err = %v, want deadline violation", err)
	}
}

// TestRunFragmentBudget: the same budget enforcement holds on the
// worker-side fragment path — a capped fragment aborts with the
// typed error instead of streaming partial tuples as a success.
func TestRunFragmentBudget(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanSTopology())
	b := serve.NewBudget(0, 3)
	ctx, cancel := b.Context(context.Background())
	defer cancel()
	r := &Runner{Registry: w.Registry, Cache: card.NoCache}
	ix := NewVarIndex(p)
	res, err := r.RunFragment(ctx, p, chainS, []Tuple{NewTuple(ix)}, nil)
	if res != nil {
		t.Fatal("capped fragment still returned a result")
	}
	if !errors.Is(err, serve.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestBudgetAbortNoGoroutineLeak: repeated budget aborts — deadline
// and call-cap, full runs and fragments — leave no stage goroutines
// behind.
func TestBudgetAbortNoGoroutineLeak(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanSTopology())
	r := &Runner{Registry: w.Registry, Cache: card.NoCache}
	ix := NewVarIndex(p)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		b := serve.NewBudget(0, 2)
		ctx, cancel := b.Context(context.Background())
		if _, err := r.Run(ctx, p); !errors.Is(err, serve.ErrBudgetExceeded) {
			t.Fatalf("run %d: err = %v, want ErrBudgetExceeded", i, err)
		}
		cancel()

		db := serve.NewBudget(time.Nanosecond, 0)
		ctx, cancel = db.Context(context.Background())
		if _, err := r.RunFragment(ctx, p, chainS, []Tuple{NewTuple(ix)}, nil); !errors.Is(err, serve.ErrBudgetExceeded) {
			t.Fatalf("fragment %d: err = %v, want ErrBudgetExceeded", i, err)
		}
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle to baseline %d\n%s",
				before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package exec_test

import (
	"testing"

	"mdq/internal/card"
	"mdq/internal/cq"
	. "mdq/internal/exec"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/simweb"
)

func travelIndex(t *testing.T) (*VarIndex, *plan.Plan) {
	t.Helper()
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return NewVarIndex(p), p
}

func TestVarIndexLayout(t *testing.T) {
	ix, p := travelIndex(t)
	if ix.Len() != len(p.Query.Vars()) {
		t.Errorf("layout covers %d vars, query has %d", ix.Len(), len(p.Query.Vars()))
	}
	// Deterministic sorted layout.
	vars := ix.Vars()
	for i := 1; i < len(vars); i++ {
		if vars[i-1] >= vars[i] {
			t.Fatal("layout not sorted")
		}
	}
	if _, ok := ix.Pos("City"); !ok {
		t.Error("City missing")
	}
	if _, ok := ix.Pos("Nope"); ok {
		t.Error("unknown var resolved")
	}
}

func TestTupleMerge(t *testing.T) {
	ix, _ := travelIndex(t)
	citySlot, _ := ix.Pos("City")
	confSlot, _ := ix.Pos("Conf")

	a := NewTuple(ix).With(citySlot, schema.S("Miami"))
	b := NewTuple(ix).With(confSlot, schema.S("VLDB"))
	m, ok := a.Merge(b)
	if !ok {
		t.Fatal("disjoint tuples must merge")
	}
	if m.Get(citySlot).Str != "Miami" || m.Get(confSlot).Str != "VLDB" {
		t.Error("merge lost bindings")
	}
	// Agreeing overlap merges.
	c := NewTuple(ix).With(citySlot, schema.S("Miami"))
	if _, ok := a.Merge(c); !ok {
		t.Error("agreeing tuples must merge")
	}
	// Conflicting overlap fails.
	d := NewTuple(ix).With(citySlot, schema.S("Dubai"))
	if _, ok := a.Merge(d); ok {
		t.Error("conflicting tuples must not merge")
	}
	// Merge does not mutate the receivers.
	if a.Get(confSlot).Kind != schema.NullValue {
		t.Error("merge mutated receiver")
	}
}

func TestTupleProjectAndBinding(t *testing.T) {
	ix, _ := travelIndex(t)
	citySlot, _ := ix.Pos("City")
	tup := NewTuple(ix).With(citySlot, schema.S("Miami"))
	vals, err := tup.Project(ix, []cq.Var{"City"})
	if err != nil || len(vals) != 1 || vals[0].Str != "Miami" {
		t.Fatalf("Project = %v, %v", vals, err)
	}
	if _, err := tup.Project(ix, []cq.Var{"Nope"}); err == nil {
		t.Error("projecting an unknown variable must fail")
	}
	bind := tup.Binding(ix)
	if v, ok := bind("City"); !ok || v.Str != "Miami" {
		t.Error("binding broken")
	}
	if _, ok := bind("Conf"); ok {
		t.Error("unbound variable resolved")
	}
}

func TestCacheBehaviours(t *testing.T) {
	entry := Entry{Rows: [][]schema.Value{{schema.N(1)}}, Pages: 1, Exhausted: true}

	no := NewCache(card.NoCache)
	no.Put("s", "k", entry)
	if _, ok := no.Get("s", "k"); ok {
		t.Error("no-cache must always miss")
	}

	one := NewCache(card.OneCall)
	one.Put("s", "k1", entry)
	if _, ok := one.Get("s", "k1"); !ok {
		t.Error("one-call must hit the last key")
	}
	one.Put("s", "k2", entry)
	if _, ok := one.Get("s", "k1"); ok {
		t.Error("one-call must forget older keys")
	}
	if _, ok := one.Get("other", "k2"); ok {
		t.Error("one-call is per service")
	}

	opt := NewCache(card.Optimal)
	opt.Put("s", "k1", entry)
	opt.Put("s", "k2", entry)
	if _, ok := opt.Get("s", "k1"); !ok {
		t.Error("optimal cache must keep everything")
	}
	got, _ := opt.Get("s", "k2")
	if !got.Exhausted || got.Pages != 1 || len(got.Rows) != 1 {
		t.Error("entry content lost")
	}
}

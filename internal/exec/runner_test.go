package exec_test

import (
	"context"
	"testing"

	"mdq/internal/card"
	"mdq/internal/cq"
	. "mdq/internal/exec"
	"mdq/internal/plan"
	"mdq/internal/simweb"
)

func travelPlan(t *testing.T, topo *plan.Topology) (*simweb.TravelWorld, *plan.Plan) {
	t.Helper()
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, topo, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	return w, p
}

func runPlan(t *testing.T, topo *plan.Topology, mode card.CacheMode) (*Result, *simweb.TravelWorld) {
	t.Helper()
	w, p := travelPlan(t, topo)
	r := &Runner{Registry: w.Registry, Cache: mode}
	res, err := r.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	return res, w
}

// TestFigure11CallCounts reproduces the call-count panel of Figure
// 11 exactly: the number of service invocations per plan (S, P, O)
// and per caching setting. conf is always called once and returns 71
// tuples over 54 cities; the remaining counts are the paper's.
func TestFigure11CallCounts(t *testing.T) {
	cases := []struct {
		name                   string
		topo                   *plan.Topology
		mode                   card.CacheMode
		weather, flight, hotel int64
	}{
		{"S/no-cache", simweb.PlanSTopology(), card.NoCache, 71, 16, 284},
		{"P/no-cache", simweb.PlanPTopology(), card.NoCache, 71, 71, 71},
		{"O/no-cache", simweb.PlanOTopology(), card.NoCache, 71, 16, 16},
		{"S/one-call", simweb.PlanSTopology(), card.OneCall, 71, 16, 15},
		{"P/one-call", simweb.PlanPTopology(), card.OneCall, 71, 71, 71},
		{"O/one-call", simweb.PlanOTopology(), card.OneCall, 71, 16, 16},
		{"S/optimal", simweb.PlanSTopology(), card.Optimal, 54, 11, 10},
		{"P/optimal", simweb.PlanPTopology(), card.Optimal, 54, 54, 54},
		{"O/optimal", simweb.PlanOTopology(), card.Optimal, 54, 11, 11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, _ := runPlan(t, tc.topo, tc.mode)
			if got := res.Stats.Calls["conf"]; got != 1 {
				t.Errorf("conf calls = %d, want 1", got)
			}
			if got := res.Stats.Calls["weather"]; got != tc.weather {
				t.Errorf("weather calls = %d, want %d", got, tc.weather)
			}
			if got := res.Stats.Calls["flight"]; got != tc.flight {
				t.Errorf("flight calls = %d, want %d", got, tc.flight)
			}
			if got := res.Stats.Calls["hotel"]; got != tc.hotel {
				t.Errorf("hotel calls = %d, want %d", got, tc.hotel)
			}
		})
	}
}

// TestConfReturns71Tuples: the §6 ground truth — one call to conf
// with topic DB yields 71 tuples over 54 distinct cities, 16 of
// which (11 distinct) survive the 28 °C filter.
func TestConfReturns71Tuples(t *testing.T) {
	res, _ := runPlan(t, simweb.PlanOTopology(), card.NoCache)
	if got := res.Stats.Fetches["conf"]; got != 1 {
		t.Errorf("conf fetches = %d, want 1 (bulk)", got)
	}
	// weather was called once per conf tuple: 71.
	if got := res.Stats.Calls["weather"]; got != 71 {
		t.Errorf("weather calls = %d — conf must emit 71 tuples", got)
	}
	// flight was called once per hot tuple: 16.
	if got := res.Stats.Calls["flight"]; got != 16 {
		t.Errorf("flight calls = %d — 16 hot tuples expected", got)
	}
}

// TestResultsIdenticalAcrossCacheModes: logical caching is
// transparent — the result set must be identical in all three
// settings (same rows, same order).
func TestResultsIdenticalAcrossCacheModes(t *testing.T) {
	base, _ := runPlan(t, simweb.PlanOTopology(), card.NoCache)
	if len(base.Rows) == 0 {
		t.Fatal("plan O produced no answers")
	}
	for _, mode := range []card.CacheMode{card.OneCall, card.Optimal} {
		res, _ := runPlan(t, simweb.PlanOTopology(), mode)
		if len(res.Rows) != len(base.Rows) {
			t.Fatalf("%v: %d rows, no-cache %d", mode, len(res.Rows), len(base.Rows))
		}
		for i := range res.Rows {
			for j := range res.Rows[i] {
				if !res.Rows[i][j].Equal(base.Rows[i][j]) {
					t.Fatalf("%v: row %d differs", mode, i)
				}
			}
		}
	}
}

// TestPlansProduceSameResultSet: S, P and O are plans for the same
// query — same answer multiset (order may differ).
func TestPlansProduceSameResultSet(t *testing.T) {
	collect := func(topo *plan.Topology) map[string]int {
		res, _ := runPlan(t, topo, card.NoCache)
		m := map[string]int{}
		for _, row := range res.Rows {
			k := ""
			for _, v := range row {
				k += v.Key() + "|"
			}
			m[k]++
		}
		return m
	}
	s := collect(simweb.PlanSTopology())
	p := collect(simweb.PlanPTopology())
	o := collect(simweb.PlanOTopology())
	if len(s) == 0 {
		t.Fatal("plan S produced nothing")
	}
	if !sameMultiset(s, o) {
		t.Error("plan S and plan O answer sets differ")
	}
	if !sameMultiset(p, o) {
		t.Error("plan P and plan O answer sets differ")
	}
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestKLimitStopsEarly: with k set, execution stops after k answers
// and issues no more calls than the full drain.
func TestKLimitStopsEarly(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanOTopology())
	r := &Runner{Registry: w.Registry, Cache: card.NoCache, K: 5}
	res, err := r.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	full, _ := runPlan(t, simweb.PlanOTopology(), card.NoCache)
	if res.Stats.Calls["hotel"] > full.Stats.Calls["hotel"] {
		t.Error("k-limited run called hotel more often than a full drain")
	}
	// The first 5 rows agree with the full run (determinism + rank
	// order preservation).
	for i := 0; i < 5; i++ {
		for j := range res.Rows[i] {
			if !res.Rows[i][j].Equal(full.Rows[i][j]) {
				t.Fatalf("row %d differs between k-limited and full run", i)
			}
		}
	}
}

// TestMergeScanOrderConsistency: the MS join's output order must be
// consistent with both input rankings — for any two results from the
// same lineage group, if one uses an earlier flight AND an earlier
// hotel, it must appear first (Fig. 5 diagonal traversal).
func TestMergeScanOrderConsistency(t *testing.T) {
	res, _ := runPlan(t, simweb.PlanOTopology(), card.NoCache)
	ix := indexOf(res.Head)
	type pos struct{ fRank, hRank, out int }
	// Group by lineage: the conference name is unique per upstream
	// tuple, and the order guarantee of [4] holds within each
	// lineage group.
	groups := map[string][]pos{}
	for i, row := range res.Rows {
		lineage := row[ix["Conf"]].Key()
		fp := row[ix["FPrice"]].Num
		hp := row[ix["HPrice"]].Num
		// Prices ascend with rank in the fixture, so use them as rank
		// proxies.
		groups[lineage] = append(groups[lineage], pos{int(fp), int(hp), i})
	}
	for city, ps := range groups {
		for a := 0; a < len(ps); a++ {
			for b := 0; b < len(ps); b++ {
				if ps[a].fRank < ps[b].fRank && ps[a].hRank < ps[b].hRank && ps[a].out > ps[b].out {
					t.Fatalf("city %s: pair dominating in both ranks emitted later (out %d > %d)",
						city, ps[a].out, ps[b].out)
				}
			}
		}
	}
}

func indexOf(head []cq.Var) map[string]int {
	m := map[string]int{}
	for i, v := range head {
		m[string(v)] = i
	}
	return m
}

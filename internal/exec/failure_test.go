package exec_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mdq/internal/card"
	. "mdq/internal/exec"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/simweb"
)

// flakyService wraps a service and fails a configurable subset of
// invocations — the failure-injection harness for the executor.
type flakyService struct {
	service.Service
	failAfter int64  // fail every request–response after this many (-1: never)
	failInput string // fail when the first input holds this string
	calls     atomic.Int64
	errText   string
}

func (f *flakyService) Invoke(ctx context.Context, patternIdx int, req service.Request) (service.Response, error) {
	n := f.calls.Add(1)
	if f.failAfter >= 0 && n > f.failAfter {
		return service.Response{}, errors.New(f.errText)
	}
	if f.failInput != "" && len(req.Inputs) > 0 && req.Inputs[0].Str == f.failInput {
		return service.Response{}, errors.New(f.errText)
	}
	return f.Service.Invoke(ctx, patternIdx, req)
}

// flakyTravelWorld rebuilds the travel registry with a wrapped hotel
// service.
func flakyTravelWorld(t *testing.T, failAfter int64, failInput string) (*service.Registry, *simweb.TravelWorld) {
	t.Helper()
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	reg := service.NewRegistry()
	for _, svc := range w.Registry.Services() {
		if svc.Signature().Name == "hotel" {
			svc = &flakyService{Service: svc, failAfter: failAfter, failInput: failInput,
				errText: "hotel: 503 service unavailable"}
		}
		if err := reg.Register(svc); err != nil {
			t.Fatal(err)
		}
	}
	return reg, w
}

// TestServiceFailurePropagates: a failing service aborts the run
// with its error; no hang, no partial success.
func TestServiceFailurePropagates(t *testing.T) {
	reg, w := flakyTravelWorld(t, 3, "")
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Registry: reg, Cache: card.NoCache}
	done := make(chan error, 1)
	go func() {
		_, err := r.Run(context.Background(), p)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "503") {
			t.Fatalf("want the service error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("runner hung on service failure")
	}
}

// TestFailureAfterKIsHarmless: if the k-th answer is produced before
// the failing input is reached, the run succeeds — early termination
// means later failures never surface. Hotel fails only for Cairo,
// which sits several blocks downstream of the answers that satisfy
// k=3 in the pipe-only plan S; a scaled clock paces the stages so
// the k-limit cancellation propagates first.
func TestFailureAfterKIsHarmless(t *testing.T) {
	reg, w := flakyTravelWorld(t, -1, "Cairo")
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanSTopology(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Registry: reg, Cache: card.OneCall, K: 3, Clock: ScaledClock{Factor: 0.0005}}
	res, err := r.Run(context.Background(), p)
	if err != nil {
		t.Fatalf("run failed although k was reachable: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

// TestExternalCancellation: cancelling the context aborts the run
// with context.Canceled instead of returning a truncated result.
func TestExternalCancellation(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before it starts
	r := &Runner{Registry: w.Registry, Cache: card.NoCache}
	if _, err := r.Run(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestCancellationMidRunWithClock: a slow clocked run is cancelled
// from outside and returns promptly.
func TestCancellationMidRunWithClock(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanSTopology(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Scale: 1 simulated second = 2 real ms → plan S would take
	// ~750 ms; cancel after 50 ms.
	r := &Runner{Registry: w.Registry, Cache: card.NoCache, Clock: ScaledClock{Factor: 0.002}}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = r.Run(ctx, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestScaledClockAccountsLatency: with a scaled clock, the wall time
// of a run reflects the simulated service times.
func TestScaledClockAccountsLatency(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	const factor = 0.0002 // 1 simulated second = 0.2 real ms
	r := &Runner{Registry: w.Registry, Cache: card.OneCall, Clock: ScaledClock{Factor: factor}}
	res, err := r.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	// Plan O busy time ≈ 1.2 + 86 + 155 + 51 ≈ 293 simulated s →
	// ≥ 40 real ms even with branch overlap.
	if res.Elapsed < 40*time.Millisecond {
		t.Errorf("elapsed %v too small for scaled simulated time", res.Elapsed)
	}
}

// TestCountingClockTotals: the counting clock accumulates the busy
// time without sleeping.
func TestCountingClockTotals(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	clock := &CountingClock{}
	r := &Runner{Registry: w.Registry, Cache: card.NoCache, Clock: clock}
	if _, err := r.Run(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	total := clock.Total()
	// Busy time for O/no-cache: 1.2 + 86.1 + 155.2 + ~52 ≈ 295 s.
	if total < 250*time.Second || total > 350*time.Second {
		t.Errorf("busy total = %v, want ≈295s", total)
	}
}

// TestSimulatorFailurePropagates: the discrete-event simulator also
// surfaces service errors.
func TestSimulatorFailurePropagates(t *testing.T) {
	// Registering the flaky world for the simulator.
	reg, w := flakyTravelWorld(t, 0, "") // hotel always fails
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Registry: reg, Cache: card.NoCache}
	if _, err := r.Run(context.Background(), p); err == nil {
		t.Fatal("expected failure")
	}
}

// schemaValueSanity guards the test fixture assumptions.
func TestSchemaValueSanity(t *testing.T) {
	if !schema.N(1).Numeric() {
		t.Fatal("fixture assumption broken")
	}
}

// TestContinuedExecution: §2.2 — re-running a plan with raised fetch
// factors against the same cache produces more answers while only
// the genuinely new fetches reach the services. Exhausted sources
// (flight blocks fit one chunk) are not touched at all.
func TestContinuedExecution(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(card.Optimal)
	r1 := &Runner{Registry: w.Registry, Cache: card.Optimal, SharedCache: cache}
	first, err := r1.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) == 0 {
		t.Fatal("first run empty")
	}

	// Continue: two more hotel pages per city.
	p.ServiceNode[simweb.AtomHotel].Fetches = 3
	r2 := &Runner{Registry: w.Registry, Cache: card.Optimal, SharedCache: cache}
	second, err := r2.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Rows) <= len(first.Rows) {
		t.Fatalf("continuation produced %d rows, first run %d", len(second.Rows), len(first.Rows))
	}
	// No re-fetching of exact services or exhausted flights.
	if second.Stats.Calls["conf"] != 0 || second.Stats.Calls["weather"] != 0 {
		t.Errorf("continuation re-called conf/weather: %v", second.Stats.Calls)
	}
	if second.Stats.Calls["flight"] != 0 {
		t.Errorf("continuation re-called exhausted flight: %d", second.Stats.Calls["flight"])
	}
	// Hotel: one resumed call per distinct city (11), two new pages
	// each.
	if second.Stats.Calls["hotel"] != 11 {
		t.Errorf("continuation hotel calls = %d, want 11", second.Stats.Calls["hotel"])
	}
	if second.Stats.Fetches["hotel"] != 22 {
		t.Errorf("continuation hotel fetches = %d, want 22 (2 new pages × 11 cities)", second.Stats.Fetches["hotel"])
	}
	// The first run's answers are a prefix-compatible subset: every
	// earlier answer appears again.
	seen := map[string]bool{}
	for _, row := range second.Rows {
		k := ""
		for _, v := range row {
			k += v.Key() + "|"
		}
		seen[k] = true
	}
	for i, row := range first.Rows {
		k := ""
		for _, v := range row {
			k += v.Key() + "|"
		}
		if !seen[k] {
			t.Fatalf("first-run answer %d missing from continuation", i)
		}
	}
}

package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"mdq/internal/card"
	"mdq/internal/cq"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/serve"
	"mdq/internal/service"
	"mdq/internal/trace"
)

// nodeSpan opens the plan-node span for a stage when the context is
// traced: named "node:<label>", carrying the optimizer's estimated
// cardinalities from the plan annotations next to an Observed block
// the stage fills in as tuples flow — the estimate-vs-actual audit
// row for this node. It returns the (possibly re-wired) context and
// a nil span on the untraced fast path, where the whole call is one
// pointer check.
func nodeSpan(ctx context.Context, n *plan.Node) (context.Context, *trace.Span) {
	sp := trace.From(ctx)
	if sp == nil {
		return ctx, nil
	}
	nsp := sp.Child("node:" + n.Label())
	nsp.SetEst(n.TIn, n.Calls, n.TOut)
	nsp.AddObs(0, 0, 0, 0) // materialize Obs: the node executed
	return trace.With(ctx, nsp), nsp
}

// budgetAbort translates an execution error into the request budget's
// violation when one tripped: a run cancelled because the budget
// deadline expired surfaces as the budget error (clean JSON at the
// serving layer) instead of a bare context cancellation. Errors with
// no budget behind them pass through unchanged.
func budgetAbort(ctx context.Context, err error) error {
	if b := serve.FromContext(ctx); b != nil {
		if berr := b.Err(); berr != nil {
			return berr
		}
	}
	return err
}

// Runner executes query plans against registered services as a
// concurrent dataflow: one stage per plan node, channels along the
// arcs, logical caching in front of every service, and early
// termination once k answers are produced (§2.2: "we retrieve only
// the fraction of tuples of proliferative services that are
// sufficient to obtain the first k query answers").
type Runner struct {
	// Registry resolves service names to implementations.
	Registry *service.Registry
	// Cache selects the logical caching level (§5.1).
	Cache card.CacheMode
	// K stops execution after k result tuples; 0 drains the plan.
	K int
	// Clock accounts for simulated service time; nil ignores it
	// (counts only).
	Clock Clock
	// ParallelCalls dispatches all pending invocations of a stage
	// concurrently instead of sequentially — the separate
	// multithreading test of §6. It randomizes arrival order, which
	// degrades the one-call cache exactly as the paper observed.
	ParallelCalls bool
	// MaxParallel bounds concurrent invocations per stage in
	// ParallelCalls mode (default 16).
	MaxParallel int
	// SharedCache, when set, is used instead of a fresh cache built
	// from Cache — the mechanism behind continued executions (§2.2):
	// run a plan, raise its fetch factors, and re-run with the same
	// cache so only the new fetches reach the services.
	SharedCache Cache
	// ResultCache, when set, layers a shared service-call result
	// store under the per-run cache (NewTieredCache): lookups fall
	// through to it, writes land in it, and hits cost neither a
	// budget charge nor a logical call. Point it at a
	// rescache.Store bound to the registry's epoch feed so a stats
	// bump can never serve stale rows. Unlike SharedCache it
	// composes with — rather than replaces — the run cache, so §5.1
	// cache-mode semantics within a run are preserved.
	ResultCache Cache
	// BufferSize is the per-arc channel capacity of the dataflow (0
	// means DefaultBufferSize). It is the streaming runtime's
	// memory/latency dial: each arc buffers at most BufferSize tuples,
	// so a larger value lets fast producers run further ahead of slow
	// consumers (fewer stalls, more buffered tuples), while a smaller
	// value bounds memory tighter and applies backpressure sooner.
	BufferSize int
	// Materialize restores the pre-streaming join path: drain both
	// join inputs, then traverse the buffered Cartesian plane with
	// JoinPairs. Output is identical to the streaming operators (the
	// traversal order is the same); only the emission timing and the
	// buffering differ. It exists as the differential baseline the
	// streaming runtime is tested and benchmarked against.
	Materialize bool
	// JoinExcessPeak, when non-nil, is raised to the largest number of
	// tuples any streaming join buffered beyond its still-needed
	// frontier (see StreamJoin). Test instrumentation for the
	// bounded-memory contract; nil costs nothing.
	JoinExcessPeak *atomic.Int64
	// Feedback, when non-nil, closes the adaptive loop: after each
	// run the observed per-service call and fetch cardinalities are
	// offered back to the services' Observed wrappers (§5: profiles
	// are "periodically updated, also taking advantage of subsequent
	// invocations"), refreshing profiled statistics — and bumping
	// their registry epochs — when the policy's thresholds are met.
	// A refresh publishes everything the wrapper observed: the scalar
	// profile (erspi, response time, chunk size) and the per-attribute
	// value distributions accumulated from result rows, so cached
	// template plans revalidate against value-sensitive costs learned
	// from real traffic. Services not wrapped by service.Observe are
	// unaffected; wrap a whole registry with Registry.ObserveAll.
	Feedback *service.FeedbackPolicy
}

// Stats aggregates per-service call accounting for a run; Calls
// counts logical invocations that reached the service (after the
// logical cache), Fetches counts request–responses (a chunked call
// issues up to F).
type Stats struct {
	Calls   map[string]int64
	Fetches map[string]int64
}

// Result is the outcome of a plan execution.
type Result struct {
	// Head names the projected columns.
	Head []cq.Var
	// Rows holds the head projections in production order (the
	// global ranking order composed by the join strategies).
	Rows [][]schema.Value
	// Tuples holds the full variable bindings of each result.
	Tuples []Tuple
	// Stats is the per-service call accounting.
	Stats Stats
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// FirstRow is the wall-clock time from the start of the run to
	// the first result row (0 when the run produced none) — the
	// streaming runtime's time-to-first-answer signal, surfaced as
	// first_row_ms in the serving slowlog and as the
	// mdq_exec_first_row_seconds histogram.
	FirstRow time.Duration
}

// runCache builds the cache stack for one execution: the per-run
// logical cache (or the caller-supplied SharedCache of a continued
// execution), tiered over the shared ResultCache when one is wired.
func (r *Runner) runCache() Cache {
	cache := r.SharedCache
	if cache == nil {
		cache = NewCache(r.Cache)
	}
	if r.ResultCache != nil {
		cache = NewTieredCache(cache, r.ResultCache)
	}
	return cache
}

// bufferSize resolves the per-arc channel capacity.
func (r *Runner) bufferSize() int {
	if r.BufferSize > 0 {
		return r.BufferSize
	}
	return DefaultBufferSize
}

// Run executes the plan. The plan must be resolved and validated.
func (r *Runner) Run(ctx context.Context, p *plan.Plan) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	ex := &execution{
		runner: r,
		plan:   p,
		ix:     NewVarIndex(p),
		cache:  r.runCache(),
		calls:  map[string]*service.Counter{},
		start:  start,
	}
	for _, n := range p.Nodes {
		if n.Kind == plan.Service {
			if _, ok := ex.calls[n.Atom.Service]; !ok {
				ex.calls[n.Atom.Service] = &service.Counter{}
			}
		}
	}
	rows, tuples, err := ex.run(ctx)
	if err != nil {
		return nil, budgetAbort(ctx, err)
	}
	res := &Result{
		Head:     p.Query.Head,
		Rows:     rows,
		Tuples:   tuples,
		Stats:    Stats{Calls: map[string]int64{}, Fetches: map[string]int64{}},
		Elapsed:  time.Since(start),
		FirstRow: ex.firstRow,
	}
	for name, c := range ex.calls {
		res.Stats.Calls[name] = c.Calls()
		res.Stats.Fetches[name] = c.Fetches()
	}
	r.feedback(ex)
	return res, nil
}

// feedback offers each touched service's observation window a
// refresh after the run, per the runner's feedback policy. The
// invocations themselves were already recorded by the Observed
// wrappers as traffic flowed through them; this is the periodic
// "absorb what execution has learned" step, taken service by service
// so only genuinely drifted profiles bump their epochs.
func (r *Runner) feedback(ex *execution) {
	if r.Feedback == nil || r.Registry == nil {
		return
	}
	for name := range ex.calls {
		svc, ok := r.Registry.Lookup(name)
		if !ok {
			continue
		}
		if ob, ok := svc.(*service.Observed); ok {
			ob.MaybeRefresh(*r.Feedback)
		}
	}
}

type execution struct {
	runner *Runner
	plan   *plan.Plan
	ix     *VarIndex
	cache  Cache
	calls  map[string]*service.Counter
	// start anchors firstRow; firstRow is written once, under the
	// output stage's mutex, when the first result row lands.
	start    time.Time
	firstRow time.Duration
}

type edge struct {
	ch chan Tuple
}

func (ex *execution) run(ctx context.Context) ([][]schema.Value, []Tuple, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One channel per arc, indexed by (from, to).
	type arcKey struct{ from, to int }
	arcs := map[arcKey]*edge{}
	for _, n := range ex.plan.Nodes {
		for _, m := range n.Out {
			arcs[arcKey{n.ID, m.ID}] = &edge{ch: make(chan Tuple, ex.runner.bufferSize())}
		}
	}
	ins := func(n *plan.Node) []*edge {
		out := make([]*edge, len(n.In))
		for i, m := range n.In {
			out[i] = arcs[arcKey{m.ID, n.ID}]
		}
		return out
	}
	outs := func(n *plan.Node) []*edge {
		out := make([]*edge, len(n.Out))
		for i, m := range n.Out {
			out[i] = arcs[arcKey{n.ID, m.ID}]
		}
		return out
	}

	errc := make(chan error, len(ex.plan.Nodes))
	var wg sync.WaitGroup
	var (
		mu      sync.Mutex
		rows    [][]schema.Value
		tuples  []Tuple
		reached bool
	)

	for _, n := range ex.plan.Nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			var err error
			switch n.Kind {
			case plan.Input:
				err = ex.runInput(ctx, outs(n))
			case plan.Service:
				err = ex.runService(ctx, n, ins(n)[0], outs(n))
			case plan.Join:
				err = ex.runJoin(ctx, n, ins(n), outs(n))
			case plan.Output:
				err = func() error {
					for t := range ins(n)[0].ch {
						head, perr := t.Project(ex.ix, ex.plan.Query.Head)
						if perr != nil {
							return perr
						}
						mu.Lock()
						if !reached {
							rows = append(rows, head)
							tuples = append(tuples, t)
							if len(rows) == 1 {
								ex.firstRow = time.Since(ex.start)
							}
							if ex.runner.K > 0 && len(rows) >= ex.runner.K {
								reached = true
								cancel()
							}
						}
						mu.Unlock()
					}
					return nil
				}()
			}
			if err != nil && err != context.Canceled {
				select {
				case errc <- err:
				default:
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return nil, nil, err
	default:
	}
	// Distinguish our own k-limit cancellation from an external one:
	// an externally cancelled run must not pass as a complete result.
	if ctx.Err() != nil && !reached {
		return nil, nil, ctx.Err()
	}
	return rows, tuples, nil
}

// emit sends a tuple to every outgoing arc, honoring cancellation.
func emit(ctx context.Context, outs []*edge, t Tuple) error {
	for _, e := range outs {
		select {
		case e.ch <- t:
		case <-ctx.Done():
			return context.Canceled
		}
	}
	return nil
}

func closeAll(outs []*edge) {
	for _, e := range outs {
		close(e.ch)
	}
}

func (ex *execution) runInput(ctx context.Context, outs []*edge) error {
	defer closeAll(outs)
	// The user injects one single input tuple (§3.4).
	return emit(ctx, outs, NewTuple(ex.ix))
}

func (ex *execution) runService(ctx context.Context, n *plan.Node, in *edge, outs []*edge) error {
	defer closeAll(outs)
	ctx, nsp := nodeSpan(ctx, n)
	defer nsp.End()
	iv, err := NewNodeInvoker(ex.runner.Registry, n, ex.ix, ex.cache, ex.calls[n.Atom.Service])
	if err != nil {
		return err
	}
	st := &svcStage{ex: ex, iv: iv}

	if !ex.runner.ParallelCalls {
		for t := range in.ch {
			// A cancelled run (k satisfied downstream, budget trip,
			// external abort) stops invoking services immediately
			// instead of working through the buffered backlog.
			if ctx.Err() != nil {
				return nil
			}
			results, err := st.process(ctx, t)
			if err != nil {
				return err
			}
			nsp.AddObs(1, int64(len(results)), 0, 0)
			for _, rt := range results {
				if err := emit(ctx, outs, rt); err != nil {
					return nil // downstream satisfied
				}
			}
		}
		return nil
	}

	// Multithreaded dispatch (§6): all pending calls of this stage go
	// out on parallel threads; results interleave nondeterministically.
	maxPar := ex.runner.MaxParallel
	if maxPar <= 0 {
		maxPar = 16
	}
	sem := make(chan struct{}, maxPar)
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for t := range in.ch {
		t := t
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			return nil
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results, err := st.process(ctx, t)
			if err != nil {
				mu.Lock()
				if firstErr == nil && err != context.Canceled {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			nsp.AddObs(1, int64(len(results)), 0, 0)
			for _, rt := range results {
				if emit(ctx, outs, rt) != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

type svcStage struct {
	ex *execution
	iv *NodeInvoker
}

// process performs the logical invocation for one input tuple:
// cache lookup, up to F fetches on miss (accounted against the
// clock), row binding and local predicate evaluation.
func (st *svcStage) process(ctx context.Context, t Tuple) ([]Tuple, error) {
	rows, _, elapsed, err := st.iv.Call(ctx, t)
	if err != nil {
		return nil, err
	}
	if st.ex.runner.Clock != nil && elapsed > 0 {
		if err := st.ex.runner.Clock.Sleep(ctx, elapsed); err != nil {
			return nil, context.Canceled
		}
	}
	return st.iv.Expand(t, rows)
}

// runJoin implements the parallel join strategies of §3.3 / [4] as a
// streaming operator: the Cartesian plane is traversed in the
// strategy's order (Figure 5) with pairs emitted as soon as the order
// permits — see StreamJoin for the per-method contract. Tuples pair
// successfully when their shared variables agree (lineage or value
// equi-join) and the join's predicates hold. With Runner.Materialize
// set, the pre-streaming drain-then-JoinPairs path runs instead (the
// differential baseline; output is identical either way).
func (ex *execution) runJoin(ctx context.Context, n *plan.Node, ins []*edge, outs []*edge) error {
	defer closeAll(outs)
	ctx, nsp := nodeSpan(ctx, n)
	defer nsp.End()
	if ex.runner.Materialize {
		return ex.runJoinMaterialized(ctx, n, ins, outs)
	}
	return StreamJoin(ctx, n.Method, ins[0].ch, ins[1].ch, n.JoinPreds, ex.ix, func(m Tuple) error {
		nsp.AddObs(0, 1, 0, 0)
		return emit(ctx, outs, m)
	}, ex.runner.JoinExcessPeak)
}

// runJoinMaterialized is the seed-era join stage: drain both input
// streams, then traverse the buffered plane with JoinPairs. Kept as
// the baseline the streaming operators are differential-tested and
// benchmarked against (Runner.Materialize).
func (ex *execution) runJoinMaterialized(ctx context.Context, n *plan.Node, ins []*edge, outs []*edge) error {
	var left, right []Tuple
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for t := range ins[0].ch {
			left = append(left, t)
		}
	}()
	go func() {
		defer wg.Done()
		for t := range ins[1].ch {
			right = append(right, t)
		}
	}()
	wg.Wait()
	if ctx.Err() != nil {
		return nil
	}

	merged, err := JoinPairs(n.Method, left, right, n.JoinPreds, ex.ix)
	if err != nil {
		return err
	}
	trace.From(ctx).AddObs(0, int64(len(merged)), 0, 0)
	for _, m := range merged {
		if emit(ctx, outs, m) != nil {
			return nil
		}
	}
	return nil
}

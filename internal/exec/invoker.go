package exec

import (
	"context"
	"fmt"
	"time"

	"mdq/internal/cq"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/serve"
	"mdq/internal/service"
	"mdq/internal/trace"
)

// NodeInvoker encapsulates the per-node invocation semantics shared
// by the concurrent Runner and the discrete-event simulator: input
// assembly from the flowing tuple, logical cache lookup, chunked
// fetching with early stop on a short page, result binding and local
// predicate evaluation.
type NodeInvoker struct {
	Node    *plan.Node
	Svc     service.Service
	PatIdx  int
	Ix      *VarIndex
	Cache   Cache
	Counter *service.Counter
}

// NewNodeInvoker resolves the service and pattern for a plan node.
func NewNodeInvoker(reg *service.Registry, n *plan.Node, ix *VarIndex, cache Cache, counter *service.Counter) (*NodeInvoker, error) {
	svc, ok := reg.Lookup(n.Atom.Service)
	if !ok {
		return nil, fmt.Errorf("exec: service %s not registered", n.Atom.Service)
	}
	patIdx, err := service.PatternIndex(svc.Signature(), n.Pattern)
	if err != nil {
		return nil, err
	}
	return &NodeInvoker{Node: n, Svc: svc, PatIdx: patIdx, Ix: ix, Cache: cache, Counter: counter}, nil
}

// Inputs assembles the request inputs for a tuple under the node's
// access pattern.
func (iv *NodeInvoker) Inputs(t Tuple) ([]schema.Value, error) {
	n := iv.Node
	inPos := n.Pattern.Inputs()
	inputs := make([]schema.Value, len(inPos))
	for k, pos := range inPos {
		term := n.Atom.Terms[pos]
		if term.IsVar() {
			slot, ok := iv.Ix.Pos(term.Var)
			if !ok || t.Get(slot).IsNull() {
				return nil, fmt.Errorf("exec: %s input %s unbound at runtime", n.Atom.Service, term.Var)
			}
			inputs[k] = t.Get(slot)
		} else {
			inputs[k] = term.Const
		}
	}
	return inputs, nil
}

// Call performs the logical invocation for one input tuple: cache
// lookup and, on a miss, up to F fetches (stopping early when a page
// reports no more results). A cached entry with fewer pages than the
// node's fetch factor is resumed from where it stopped — this is how
// a continued execution (§2.2) extends earlier answers instead of
// re-fetching them. It returns the rows, whether the logical cache
// fully answered, and the total simulated service time of the new
// fetches (zero on a hit). Counters count only calls that reach the
// service.
func (iv *NodeInvoker) Call(ctx context.Context, t Tuple) (rows [][]schema.Value, hit bool, elapsed time.Duration, err error) {
	inputs, err := iv.Inputs(t)
	if err != nil {
		return nil, false, 0, err
	}
	key := service.Request{Inputs: inputs}.Key()
	fetches := iv.Node.Fetches
	if fetches < 1 {
		fetches = 1
	}
	entry, ok := iv.Cache.Get(iv.Node.Atom.Service, key)
	if ok && (entry.Exhausted || entry.Pages >= fetches) {
		return entry.Rows, true, 0, nil
	}
	if !ok {
		entry = Entry{}
	}
	// The call is about to reach the service: charge it against the
	// request's budget (logical cache hits above cost nothing). A call
	// that would exceed the cap — or whose deadline has passed — is
	// never issued.
	if b := serve.FromContext(ctx); b != nil {
		if err := b.Charge(1); err != nil {
			return nil, false, 0, err
		}
	}
	// Under a traced context the node span counts the real invocation
	// and a child span times it — tracing observes the charge path, it
	// never alters it (the differential suite pins call-count parity).
	nodeSp := trace.From(ctx)
	callSp := nodeSp.Child("call:" + iv.Node.Atom.Service)
	rows = entry.Rows
	pages := 0
	for page := entry.Pages; page < fetches; page++ {
		resp, ferr := iv.Svc.Invoke(ctx, iv.PatIdx, service.Request{Inputs: inputs, Page: page})
		if ferr != nil {
			if ctx.Err() != nil {
				return nil, false, 0, context.Canceled
			}
			callSp.Set("error", ferr.Error())
			callSp.End()
			return nil, false, 0, ferr
		}
		iv.Counter.AddFetch()
		pages++
		elapsed += resp.Elapsed
		rows = append(rows, resp.Rows...)
		entry.Pages = page + 1
		if !resp.HasMore {
			entry.Exhausted = true
			break
		}
	}
	entry.Rows = rows
	iv.Counter.AddCall()
	nodeSp.AddObs(0, 0, 1, int64(pages))
	if callSp != nil {
		callSp.Set("fetches", fmt.Sprint(pages))
		callSp.Set("rows", fmt.Sprint(len(rows)))
		callSp.End()
	}
	iv.Cache.Put(iv.Node.Atom.Service, key, entry)
	return rows, false, elapsed, nil
}

// Expand binds the result rows into the flowing tuple and applies
// the node's local predicates, preserving row (rank) order.
func (iv *NodeInvoker) Expand(t Tuple, rows [][]schema.Value) ([]Tuple, error) {
	var out []Tuple
	for _, row := range rows {
		nt, ok := iv.bindRow(t, row)
		if !ok {
			continue
		}
		pass, err := EvalPreds(iv.Node.Preds, nt, iv.Ix)
		if err != nil {
			return nil, err
		}
		if pass {
			out = append(out, nt)
		}
	}
	return out, nil
}

// bindRow merges a service result row into the flowing tuple:
// output constants act as selections, repeated variables as equality
// constraints.
func (iv *NodeInvoker) bindRow(t Tuple, row []schema.Value) (Tuple, bool) {
	n := iv.Node
	if len(row) != len(n.Atom.Terms) {
		return Tuple{}, false
	}
	nt := t.Clone()
	for pos, term := range n.Atom.Terms {
		if !term.IsVar() {
			if !row[pos].Equal(term.Const) {
				return Tuple{}, false
			}
			continue
		}
		slot, ok := iv.Ix.Pos(term.Var)
		if !ok {
			continue
		}
		cur := nt.Get(slot)
		switch {
		case cur.IsNull():
			nt.vals[slot] = row[pos]
		case !cur.Equal(row[pos]):
			return Tuple{}, false
		}
	}
	return nt, true
}

// EvalPreds evaluates a conjunction of predicates on a tuple.
func EvalPreds(preds []*cq.Predicate, t Tuple, ix *VarIndex) (bool, error) {
	for _, p := range preds {
		ok, err := p.Eval(t.Binding(ix))
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// JoinPairs traverses the Cartesian plane of two buffered branches
// in the order of the join strategy (Figure 5 of the paper; see [4])
// and returns the merged tuples that satisfy the shared-variable
// equality and the join predicates:
//
//   - nested loop: the left (selective) side is fully available;
//     output order is right-major (for each right tuple in rank
//     order, all left matches);
//   - merge-scan: anti-diagonals i+j = 0, 1, 2, …, so the output is
//     consistent with both input orders.
func JoinPairs(method plan.JoinMethod, left, right []Tuple, preds []*cq.Predicate, ix *VarIndex) ([]Tuple, error) {
	var out []Tuple
	try := func(l, r Tuple) error {
		m, ok := l.Merge(r)
		if !ok {
			return nil
		}
		pass, err := EvalPreds(preds, m, ix)
		if err != nil {
			return err
		}
		if pass {
			out = append(out, m)
		}
		return nil
	}
	switch method {
	case plan.NestedLoop:
		for _, r := range right {
			for _, l := range left {
				if err := try(l, r); err != nil {
					return nil, err
				}
			}
		}
	default: // MergeScan
		for d := 0; d < len(left)+len(right)-1; d++ {
			i0 := d - len(right) + 1
			if i0 < 0 {
				i0 = 0
			}
			for i := i0; i <= d && i < len(left); i++ {
				if err := try(left[i], right[d-i]); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

package exec_test

import (
	"context"
	"sync"
	"testing"

	"mdq/internal/card"
	. "mdq/internal/exec"
	"mdq/internal/service"
	"mdq/internal/simweb"
)

// TestRunnerFeedbackRefreshesProfiles: with a feedback policy and an
// observed registry, a run folds the observed traffic back into the
// profiles of the touched services and bumps their stats epochs;
// without the policy nothing changes.
func TestRunnerFeedbackRefreshesProfiles(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanOTopology())
	w.Registry.ObserveAll()
	var mu sync.Mutex
	bumped := map[string]uint64{}
	w.Registry.SubscribeEpochs("test", func(name string, epoch uint64) {
		mu.Lock()
		bumped[name] = epoch
		mu.Unlock()
	})

	// A run without feedback observes but never refreshes.
	r := &Runner{Registry: w.Registry, Cache: card.OneCall}
	if _, err := r.Run(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if len(w.Registry.Epochs()) != 0 {
		t.Fatal("run without feedback bumped epochs")
	}
	ob, ok := w.Registry.Observer("conf")
	if !ok {
		t.Fatal("conf is not observed")
	}
	if calls, _, _ := ob.Observations(); calls == 0 {
		t.Fatal("observer recorded no traffic")
	}

	// The same plan re-run with feedback refreshes the drifted
	// profiles.
	before, _ := w.Registry.Lookup("conf")
	beforeERSPI := before.Signature().Statistics().ERSPI
	r2 := &Runner{Registry: w.Registry, Cache: card.OneCall,
		Feedback: &service.FeedbackPolicy{MinCalls: 1}}
	if _, err := r2.Run(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if w.Registry.Epoch("conf") == 0 {
		t.Fatal("feedback did not bump conf's epoch")
	}
	after, _ := w.Registry.Lookup("conf")
	if after.Signature().Statistics().ERSPI == beforeERSPI {
		t.Fatal("feedback did not refresh conf's profile")
	}
	mu.Lock()
	defer mu.Unlock()
	if bumped["conf"] != w.Registry.Epoch("conf") {
		t.Fatalf("subscriber saw epoch %d, registry has %d", bumped["conf"], w.Registry.Epoch("conf"))
	}
}

// TestRunnerFeedbackHonorsThresholds: a policy demanding more calls
// than the run produced leaves the profiles alone.
func TestRunnerFeedbackHonorsThresholds(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanOTopology())
	w.Registry.ObserveAll()
	r := &Runner{Registry: w.Registry, Cache: card.OneCall,
		Feedback: &service.FeedbackPolicy{MinCalls: 1 << 30}}
	if _, err := r.Run(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if len(w.Registry.Epochs()) != 0 {
		t.Fatal("feedback refreshed below the call threshold")
	}
}

package exec_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mdq/internal/abind"
	"mdq/internal/card"
	"mdq/internal/cq"
	. "mdq/internal/exec"
	"mdq/internal/opt"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/simweb"
	"mdq/internal/tabsvc"
)

// randomWorld builds a random chain-joinable world: services
// s0(X0…), s1(X0, X1…), s2(X1, X2…) over small shared domains, with
// random tables, plus a random comparison predicate. Every valid
// topology of the resulting query must produce exactly the answers
// of a naive relational evaluation.
type randomWorld struct {
	reg    *service.Registry
	tables []*tabsvc.Table
	query  *cq.Query
}

func newRandomWorld(t *testing.T, rng *rand.Rand) *randomWorld {
	t.Helper()
	nSvc := 2 + rng.Intn(3) // 2..4 services
	domainSize := 3 + rng.Intn(3)
	dom := schema.Domain{Name: "D", Kind: schema.NumberValue, DistinctValues: domainSize}

	reg := service.NewRegistry()
	w := &randomWorld{reg: reg}
	queryText := "q("
	var head []string

	var atoms []string
	for i := 0; i < nSvc; i++ {
		// s_i has arity 2: (link_in, link_out) — chained variables.
		// s_0 is all-output; later services require their first
		// argument.
		name := fmt.Sprintf("s%d", i)
		pattern := "io"
		if i == 0 {
			pattern = "oo"
		}
		kind := schema.Exact
		chunk := 0
		if rng.Intn(3) == 0 {
			kind = schema.Search
			chunk = 1 + rng.Intn(3)
		}
		sig := &schema.Signature{
			Name: name,
			Attrs: []schema.Attribute{
				{Name: "A", Domain: dom},
				{Name: "B", Domain: dom},
			},
			Patterns: []schema.AccessPattern{schema.MustPattern(pattern)},
			Kind:     kind,
			Stats:    schema.Stats{ERSPI: 2, ChunkSize: chunk},
		}
		rows := make([][]schema.Value, 0)
		nRows := 3 + rng.Intn(10)
		for r := 0; r < nRows; r++ {
			rows = append(rows, []schema.Value{
				schema.N(float64(rng.Intn(domainSize))),
				schema.N(float64(rng.Intn(domainSize))),
			})
		}
		tab := tabsvc.MustNew(sig, rows, tabsvc.Latency{})
		if err := reg.Register(tab); err != nil {
			t.Fatal(err)
		}
		w.tables = append(w.tables, tab)
		atoms = append(atoms, fmt.Sprintf("%s(X%d, X%d)", name, i, i+1))
		head = append(head, fmt.Sprintf("X%d", i))
	}
	head = append(head, fmt.Sprintf("X%d", nSvc))
	for i, h := range head {
		if i > 0 {
			queryText += ", "
		}
		queryText += h
	}
	queryText += ") :- "
	for i, a := range atoms {
		if i > 0 {
			queryText += ", "
		}
		queryText += a
	}
	// A random selection predicate on the last variable.
	if rng.Intn(2) == 0 {
		queryText += fmt.Sprintf(", X%d >= %d {0.5}", nSvc, rng.Intn(domainSize))
	}
	queryText += "."

	q, err := cq.Parse(queryText)
	if err != nil {
		t.Fatalf("parse %q: %v", queryText, err)
	}
	sch, err := reg.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve(sch); err != nil {
		t.Fatal(err)
	}
	w.query = q
	return w
}

// naiveAnswers evaluates the query by brute force over the full
// tables: the relational ground truth, ignoring access patterns.
func naiveAnswers(t *testing.T, w *randomWorld) map[string]int {
	t.Helper()
	results := map[string]int{}
	var rec func(i int, binding map[cq.Var]schema.Value)
	rec = func(i int, binding map[cq.Var]schema.Value) {
		if i == len(w.query.Atoms) {
			for _, p := range w.query.Preds {
				ok, err := p.Eval(func(v cq.Var) (schema.Value, bool) {
					val, ok := binding[v]
					return val, ok
				})
				if err != nil || !ok {
					return
				}
			}
			key := ""
			for _, h := range w.query.Head {
				key += binding[h].Key() + "|"
			}
			results[key]++
			return
		}
		atom := w.query.Atoms[i]
		tab := w.tables[i]
		for r := 0; r < tab.Size(); r++ {
			row := tableRow(t, tab, r)
			nb := map[cq.Var]schema.Value{}
			for k, v := range binding {
				nb[k] = v
			}
			ok := true
			for pos, term := range atom.Terms {
				if !term.IsVar() {
					if !row[pos].Equal(term.Const) {
						ok = false
						break
					}
					continue
				}
				if cur, bound := nb[term.Var]; bound {
					if !cur.Equal(row[pos]) {
						ok = false
						break
					}
				} else {
					nb[term.Var] = row[pos]
				}
			}
			if ok {
				rec(i+1, nb)
			}
		}
	}
	rec(0, map[cq.Var]schema.Value{})
	return results
}

// tableRow reads a base row via the all-output scan that the first
// pattern may not offer, so it pages through pattern 0 with the
// row's own inputs — instead we simply re-expose rows through the
// sampler-facing API.
func tableRow(t *testing.T, tab *tabsvc.Table, r int) []schema.Value {
	t.Helper()
	return tab.Row(r)
}

// TestExecutorMatchesNaiveEvaluation: for random worlds, every valid
// plan topology under every caching level produces exactly the
// naive multiset of answers.
func TestExecutorMatchesNaiveEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(20080824))
	for trial := 0; trial < 25; trial++ {
		w := newRandomWorld(t, rng)
		want := naiveAnswers(t, w)

		asn := make(abind.Assignment, len(w.query.Atoms))
		for i, a := range w.query.Atoms {
			asn[i] = a.Sig.Patterns[0]
		}
		topos := opt.EnumerateTopologies(w.query, asn)
		if len(topos) == 0 {
			t.Fatalf("trial %d: no topology", trial)
		}
		// Check up to 6 topologies per trial to bound runtime.
		if len(topos) > 6 {
			topos = topos[:6]
		}
		for ti, topo := range topos {
			for _, mode := range []card.CacheMode{card.NoCache, card.OneCall, card.Optimal} {
				p, err := plan.Build(w.query, asn, topo, plan.Options{})
				if err != nil {
					t.Fatalf("trial %d topo %d: %v", trial, ti, err)
				}
				// Generous fetch factors so chunked services drain.
				for _, n := range p.ChunkedNodes() {
					n.Fetches = 64
				}
				r := &Runner{Registry: w.reg, Cache: mode}
				res, err := r.Run(context.Background(), p)
				if err != nil {
					t.Fatalf("trial %d topo %d: %v", trial, ti, err)
				}
				got := map[string]int{}
				for _, row := range res.Rows {
					key := ""
					for _, v := range row {
						key += v.Key() + "|"
					}
					got[key]++
				}
				if !equalMultiset(got, want) {
					t.Fatalf("trial %d topo %s mode %v:\n got %v\nwant %v\nquery %s",
						trial, topo, mode, got, want, w.query)
				}
			}
		}
	}
}

func equalMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestCacheModeNeverIncreasesCalls: on the travel world and random
// worlds, measured calls are monotone across caching levels for
// every service (the §5.1 guarantee, measured rather than
// estimated).
func TestCacheModeNeverIncreasesCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		w := newRandomWorld(t, rng)
		asn := make(abind.Assignment, len(w.query.Atoms))
		for i, a := range w.query.Atoms {
			asn[i] = a.Sig.Patterns[0]
		}
		topos := opt.EnumerateTopologies(w.query, asn)
		topo := topos[rng.Intn(len(topos))]
		var prev map[string]int64
		for _, mode := range []card.CacheMode{card.NoCache, card.OneCall, card.Optimal} {
			p, err := plan.Build(w.query, asn, topo, plan.Options{})
			if err != nil {
				t.Fatal(err)
			}
			r := &Runner{Registry: w.reg, Cache: mode}
			res, err := r.Run(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if prev != nil {
				for svc, n := range res.Stats.Calls {
					if n > prev[svc] {
						t.Fatalf("trial %d: %s calls grew from %d to %d under stronger caching (%v)",
							trial, svc, prev[svc], n, mode)
					}
				}
			}
			prev = res.Stats.Calls
		}
	}
}

// TestMergeScanOrderOnTravel is kept in runner_test.go; here we add
// the same property for the random worlds' search services: results
// sharing all join values appear in base-rank order.
func TestSearchOrderPreservedOnChains(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.BuildPlan(q, simweb.PlanSTopology(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Registry: w.Registry, Cache: card.NoCache}
	res, err := r.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	// Within one lineage (conference), hotel results must appear in
	// increasing price (= rank) order for the serial pipe plan.
	ix := map[string]int{}
	for i, v := range res.Head {
		ix[string(v)] = i
	}
	lastByLineage := map[string][]float64{}
	for _, row := range res.Rows {
		key := row[ix["Conf"]].Key() + row[ix["FPrice"]].Key()
		lastByLineage[key] = append(lastByLineage[key], row[ix["HPrice"]].Num)
	}
	for key, prices := range lastByLineage {
		if !sort.Float64sAreSorted(prices) {
			t.Fatalf("lineage %s: hotel ranks out of order: %v", key, prices)
		}
	}
}

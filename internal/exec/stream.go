package exec

// Streaming join operators: the pipelined half of §3.3 / [4]. The
// materializing JoinPairs (invoker.go) drains both branches and then
// walks the Cartesian plane; StreamJoin walks the *same* plane in the
// same order, but emits each pair at the earliest moment the
// traversal order permits — before the inputs are exhausted. That is
// the paper's point about the join strategies: nested loop and
// merge-scan visit the plane in an order chosen so results surface
// while proliferative services are still producing, which is what
// makes early termination at K (§2.2) cut service calls rather than
// just output size.
//
// Order contract (differential-tested against JoinPairs):
//
//   - nested loop is right-major — for each right tuple in rank
//     order, all left matches in left order. The left (selective)
//     side must therefore be complete before the first pair can be
//     emitted, but each right tuple is joined the moment it arrives
//     and never buffered beyond the in-flight frontier.
//   - merge-scan walks anti-diagonals i+j = 0, 1, 2, …; diagonal d is
//     emittable as soon as both sides either hold more than d tuples
//     or are closed, so the first pairs emit while both sides are
//     still streaming. Both buffers are retained in full — every
//     buffered tuple still pairs with unseen tuples of the other
//     side, so the whole buffer *is* the still-needed frontier.
//
// Both operators read their two inputs concurrently (a select over
// the channels), never stalling one side while waiting on the other.
// This keeps a shared upstream producer live: if the two join inputs
// descend from one node with several consumers, refusing to read one
// input while the other fills would deadlock the producer against the
// bounded arc buffers.

import (
	"context"
	"sync/atomic"

	"mdq/internal/cq"
	"mdq/internal/plan"
)

// DefaultBufferSize is the per-arc channel capacity of the streaming
// runtime when Runner.BufferSize (or dist.Coordinator.BufferSize) is
// unset. Larger buffers absorb producer/consumer rate mismatch at the
// price of proportionally more buffered tuples per arc; smaller
// buffers bound memory tighter but stall fast producers sooner.
const DefaultBufferSize = 128

// notePeak raises a peak gauge to n if n exceeds it. A nil gauge
// records nothing.
func notePeak(peak *atomic.Int64, n int) {
	if peak == nil {
		return
	}
	v := int64(n)
	for {
		cur := peak.Load()
		if v <= cur || peak.CompareAndSwap(cur, v) {
			return
		}
	}
}

// StreamJoin joins two tuple streams incrementally, emitting merged
// pairs in exactly the order JoinPairs would produce them from the
// fully buffered sides (see the package comment above for the order
// contract per method). Channels must be closed by their producers;
// emit is called once per surviving pair and may return an error to
// stop the join early (a downstream-satisfied signal — typically
// context.Canceled — propagates back unchanged). A cancelled ctx
// aborts the join with context.Canceled.
//
// peak, when non-nil, is raised to the largest number of tuples the
// operator ever buffered *beyond* its still-needed frontier: right
// tuples a nested loop queued while its left side was still open.
// Merge-scan never buffers beyond its frontier, so it leaves the
// gauge untouched. Tests pin this gauge to show coordinator memory is
// bounded by arc buffers, not by intermediate-result cardinality.
func StreamJoin(ctx context.Context, method plan.JoinMethod, left, right <-chan Tuple, preds []*cq.Predicate, ix *VarIndex, emit func(Tuple) error, peak *atomic.Int64) error {
	j := &streamJoin{ctx: ctx, preds: preds, ix: ix, emit: emit, peak: peak}
	switch method {
	case plan.NestedLoop:
		return j.nestedLoop(left, right)
	default: // plan.MergeScan
		return j.mergeScan(left, right)
	}
}

type streamJoin struct {
	ctx   context.Context
	preds []*cq.Predicate
	ix    *VarIndex
	emit  func(Tuple) error
	peak  *atomic.Int64
}

// try merges one candidate pair and emits it when the shared
// variables agree and the join predicates hold.
func (j *streamJoin) try(l, r Tuple) error {
	m, ok := l.Merge(r)
	if !ok {
		return nil
	}
	pass, err := EvalPreds(j.preds, m, j.ix)
	if err != nil {
		return err
	}
	if !pass {
		return nil
	}
	return j.emit(m)
}

// nestedLoop buffers the left (selective) side as it arrives and
// joins each right tuple the moment the left side is complete —
// right-major order, with the right side never accumulated beyond
// whatever arrived while the left was still open (tracked in peak).
func (j *streamJoin) nestedLoop(lch, rch <-chan Tuple) error {
	var left, pending []Tuple
	// Phase 1: complete the left side. Right tuples arriving early are
	// queued unjoined (the order contract needs the full left first),
	// but still consumed so a shared upstream never blocks on us.
	for lch != nil {
		select {
		case t, ok := <-lch:
			if !ok {
				lch = nil
				break
			}
			left = append(left, t)
		case t, ok := <-rch:
			if !ok {
				rch = nil
				break
			}
			pending = append(pending, t)
			notePeak(j.peak, len(pending))
		case <-j.ctx.Done():
			return context.Canceled
		}
	}
	// Phase 2: right-major scan, one right tuple at a time.
	scan := func(r Tuple) error {
		for _, l := range left {
			if err := j.try(l, r); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range pending {
		if err := scan(r); err != nil {
			return err
		}
	}
	pending = nil
	for rch != nil {
		select {
		case t, ok := <-rch:
			if !ok {
				rch = nil
				break
			}
			if err := scan(t); err != nil {
				return err
			}
		case <-j.ctx.Done():
			return context.Canceled
		}
	}
	return nil
}

// mergeScan buffers both sides as they arrive and emits anti-diagonal
// d = i+j as soon as each side either holds more than d tuples or is
// closed — the earliest moment the diagonal's membership is fully
// determined. The traversal (and so the output order) is identical to
// the materializing JoinPairs walk.
func (j *streamJoin) mergeScan(lch, rch <-chan Tuple) error {
	var left, right []Tuple
	d := 0
	for {
		// Emit every diagonal whose membership is already determined.
		// The i-range bounds below use the *current* lengths, which is
		// sound exactly under the readiness condition: a side that is
		// still open has more than d tuples, so its bound reduces to
		// the same value the final length would give.
		for (len(left) > d || lch == nil) && (len(right) > d || rch == nil) {
			if lch == nil && rch == nil && d >= len(left)+len(right)-1 {
				return nil
			}
			i0 := d - len(right) + 1
			if i0 < 0 {
				i0 = 0
			}
			for i := i0; i <= d && i < len(left); i++ {
				if err := j.try(left[i], right[d-i]); err != nil {
					return err
				}
			}
			d++
		}
		select {
		case t, ok := <-lch:
			if !ok {
				lch = nil
				break
			}
			left = append(left, t)
		case t, ok := <-rch:
			if !ok {
				rch = nil
				break
			}
			right = append(right, t)
		case <-j.ctx.Done():
			return context.Canceled
		}
	}
}

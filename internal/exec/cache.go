package exec

import (
	"sync"

	"mdq/internal/card"
	"mdq/internal/schema"
)

// Entry is one cached logical invocation: the rows fetched so far,
// how many pages produced them, and whether the source reported the
// end of its results. Keeping the page position lets a continued
// execution (§2.2: "a plan execution can be continued, by producing
// more answers") resume fetching where the previous run stopped
// instead of re-issuing the whole call.
type Entry struct {
	Rows      [][]schema.Value
	Pages     int
	Exhausted bool
}

// Cache is the logical caching facility of §5.1: it remembers the
// results of service invocations so that repeated calls with the
// same input parameters are answered locally.
type Cache interface {
	// Get returns the cached entry for a service/input-key pair.
	Get(service, key string) (Entry, bool)
	// Put records the entry of an invocation.
	Put(service, key string, e Entry)
}

// NewCache builds the cache for a caching level.
func NewCache(mode card.CacheMode) Cache {
	switch mode {
	case card.OneCall:
		return &oneCallCache{last: map[string]cachedCall{}}
	case card.Optimal:
		return &optimalCache{m: map[string]Entry{}}
	default:
		return noCache{}
	}
}

// NewTieredCache composes a per-run logical cache with a shared
// result store (the cross-query sharing layer, see internal/rescache):
// lookups try the run cache first, then the shared store, promoting
// shared hits into the run cache; writes land in both. The run tier
// keeps §5.1 semantics within one execution; the shared tier makes
// identical invocations free *across* executions — other queries,
// other requests, other fragments on the same worker.
func NewTieredCache(run, shared Cache) Cache {
	return &tieredCache{run: run, shared: shared}
}

type tieredCache struct {
	run    Cache
	shared Cache
}

func (c *tieredCache) Get(service, key string) (Entry, bool) {
	if e, ok := c.run.Get(service, key); ok {
		return e, true
	}
	if e, ok := c.shared.Get(service, key); ok {
		c.run.Put(service, key, e)
		return e, true
	}
	return Entry{}, false
}

func (c *tieredCache) Put(service, key string, e Entry) {
	c.run.Put(service, key, e)
	c.shared.Put(service, key, e)
}

// noCache repeats every call (§5.1 "no cache").
type noCache struct{}

func (noCache) Get(string, string) (Entry, bool) { return Entry{}, false }
func (noCache) Put(string, string, Entry)        {}

// oneCallCache recalls the last call to each service and its
// results, enough to avoid re-issuing any immediate second call with
// exactly the same input parameters (§5.1 "one-call cache").
type oneCallCache struct {
	mu   sync.Mutex
	last map[string]cachedCall
}

type cachedCall struct {
	key   string
	entry Entry
}

func (c *oneCallCache) Get(service, key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.last[service]; ok && e.key == key {
		return e.entry, true
	}
	return Entry{}, false
}

func (c *oneCallCache) Put(service, key string, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.last[service] = cachedCall{key: key, entry: e}
}

// optimalCache recalls parameter settings and results of all calls,
// so each service is invoked once per distinct input (§5.1 "optimal
// cache").
type optimalCache struct {
	mu sync.Mutex
	m  map[string]Entry
}

func (c *optimalCache) Get(service, key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[service+"\x00"+key]
	return e, ok
}

func (c *optimalCache) Put(service, key string, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[service+"\x00"+key] = e
}

package exec

import (
	"context"
	"sync/atomic"
	"time"
)

// Clock lets the runner account for the simulated service times
// reported by services. The real executor sleeps (possibly scaled);
// tests use a counting clock that only accumulates.
type Clock interface {
	// Sleep blocks for the (simulated) duration d or until the
	// context is cancelled.
	Sleep(ctx context.Context, d time.Duration) error
}

// ScaledClock sleeps real time scaled by Factor (e.g. 0.001 turns
// the paper's 9.7 s flight calls into 9.7 ms for integration tests).
type ScaledClock struct {
	Factor float64
}

// Sleep implements Clock.
func (c ScaledClock) Sleep(ctx context.Context, d time.Duration) error {
	scaled := time.Duration(float64(d) * c.Factor)
	if scaled <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(scaled)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// CountingClock accumulates requested sleep time without blocking;
// Total is the summed simulated busy time (not the makespan — the
// discrete-event simulator computes that).
type CountingClock struct {
	total atomic.Int64
}

// Sleep implements Clock.
func (c *CountingClock) Sleep(ctx context.Context, d time.Duration) error {
	c.total.Add(int64(d))
	return ctx.Err()
}

// Total returns the accumulated simulated time.
func (c *CountingClock) Total() time.Duration {
	return time.Duration(c.total.Load())
}

package exec_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mdq/internal/card"
	. "mdq/internal/exec"
	"mdq/internal/simweb"
)

// chainS is plan S's serial atom order (conf → weather → flight →
// hotel).
var chainS = []int{simweb.AtomConf, simweb.AtomWeather, simweb.AtomFlight, simweb.AtomHotel}

// TestRunFragmentWholeChain: executing the full serial plan as one
// fragment seeded with the empty tuple reproduces Run's tuple stream
// exactly.
func TestRunFragmentWholeChain(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanSTopology())
	r := &Runner{Registry: w.Registry, Cache: card.OneCall}
	want, err := r.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	ix := NewVarIndex(p)
	got, err := r.RunFragment(context.Background(), p, chainS, []Tuple{NewTuple(ix)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Tuples, got.Tuples) {
		t.Fatalf("fragment tuples diverge from Run:\n fragment: %v\n run:      %v", got.Tuples, want.Tuples)
	}
	if len(got.Stats.Calls) == 0 {
		t.Fatal("fragment recorded no calls")
	}
}

// TestRunFragmentComposition: cutting the chain in two and feeding
// the first fragment's output as the second's seeds composes to the
// same final stream — the property distributed execution relies on.
func TestRunFragmentComposition(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanSTopology())
	r := &Runner{Registry: w.Registry, Cache: card.OneCall}
	want, err := r.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	ix := NewVarIndex(p)
	first, err := r.RunFragment(context.Background(), p, chainS[:2], []Tuple{NewTuple(ix)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Tuples) == 0 {
		t.Fatal("head fragment produced nothing")
	}
	second, err := r.RunFragment(context.Background(), p, chainS[2:], first.Tuples, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Tuples, second.Tuples) {
		t.Fatalf("composed fragments diverge from Run:\n composed: %v\n run:      %v", second.Tuples, want.Tuples)
	}
}

// TestRunFragmentStreaming: the sink receives the same tuples in the
// same order as collection mode, and a sink error aborts the run.
func TestRunFragmentStreaming(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanSTopology())
	r := &Runner{Registry: w.Registry, Cache: card.OneCall}
	ix := NewVarIndex(p)

	collected, err := r.RunFragment(context.Background(), p, chainS, []Tuple{NewTuple(ix)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Tuple
	res, err := r.RunFragment(context.Background(), p, chainS, []Tuple{NewTuple(ix)}, func(t Tuple) error {
		streamed = append(streamed, t)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != nil {
		t.Fatal("streaming run also collected tuples")
	}
	if !reflect.DeepEqual(collected.Tuples, streamed) {
		t.Fatalf("streamed tuples diverge from collected:\n streamed:  %v\n collected: %v", streamed, collected.Tuples)
	}

	boom := errors.New("sink full")
	if _, err := r.RunFragment(context.Background(), p, chainS, []Tuple{NewTuple(ix)}, func(Tuple) error {
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("sink error not surfaced: %v", err)
	}
}

// TestRunFragmentShape: non-chains are rejected up front.
func TestRunFragmentShape(t *testing.T) {
	w, p := travelPlan(t, simweb.PlanSTopology())
	r := &Runner{Registry: w.Registry, Cache: card.OneCall}
	ix := NewVarIndex(p)
	seeds := []Tuple{NewTuple(ix)}

	if _, err := r.RunFragment(context.Background(), p, nil, seeds, nil); err == nil {
		t.Fatal("empty fragment accepted")
	}
	// conf → flight skips weather: not adjacent in the plan DAG.
	if _, err := r.RunFragment(context.Background(), p, []int{simweb.AtomConf, simweb.AtomFlight}, seeds, nil); err == nil {
		t.Fatal("non-adjacent fragment accepted")
	}
	if _, err := r.RunFragment(context.Background(), p, []int{99}, seeds, nil); err == nil {
		t.Fatal("out-of-range atom accepted")
	}
	// Seeds must match the plan layout.
	if _, err := r.RunFragment(context.Background(), p, chainS, []Tuple{TupleOf(nil)}, nil); err == nil {
		t.Fatal("mis-sized seed accepted")
	}
}

package exec

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mdq/internal/plan"
	"mdq/internal/service"
)

// RunFragment executes a linear fragment of a plan — a chain of
// service nodes identified by their atom indexes, in topological
// order — against this runner's registry, seeding the chain's head
// with externally supplied tuples instead of the plan's Input node.
// It is the worker half of distributed plan execution: the
// coordinator cuts the plan DAG at joins and at nodes with several
// consumers, ships each chain to a worker together with the tuples
// flowing into it, and joins the streamed-back outputs itself.
//
// The fragment runs through the ordinary stage machinery (one
// goroutine per node, channels along the arcs, logical caching,
// chunked fetching, local predicates), so a chain produces exactly
// the tuples — in exactly the order — the same nodes would produce
// inside a full Run. Two deliberate differences: the runner's K does
// not apply (an intermediate stream must be complete, or downstream
// joins would see a truncated Cartesian plane; the coordinator
// truncates at the output instead), and ParallelCalls is ignored
// (parallel dispatch reorders results, which would break the
// byte-identical contract fragment execution is differential-tested
// under).
//
// When sink is non-nil every produced tuple is handed to it as soon
// as the chain's tail emits it — the streaming path — and
// Result.Tuples stays nil; a sink error cancels the fragment and is
// returned. With a nil sink the tuples are collected in
// Result.Tuples. Result.Head and Result.Rows are always nil: a
// fragment produces intermediate bindings, not projected answers.
// The runner's Feedback policy applies to the fragment's services
// afterwards, exactly as in Run — this is what makes an executing
// worker's profiles absorb the traffic that flowed near them.
func (r *Runner) RunFragment(ctx context.Context, p *plan.Plan, atoms []int, seeds []Tuple, sink func(Tuple) error) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	chain, err := fragmentChain(p, atoms)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ex := &execution{
		runner: r,
		plan:   p,
		ix:     NewVarIndex(p),
		cache:  r.runCache(),
		calls:  map[string]*service.Counter{},
	}
	for _, n := range chain {
		if _, ok := ex.calls[n.Atom.Service]; !ok {
			ex.calls[n.Atom.Service] = &service.Counter{}
		}
	}
	for _, t := range seeds {
		if t.Width() != ex.ix.Len() {
			return nil, fmt.Errorf("exec: fragment seed has %d slots, plan layout has %d", t.Width(), ex.ix.Len())
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One edge in front of every chain node plus one behind the tail.
	edges := make([]*edge, len(chain)+1)
	for i := range edges {
		edges[i] = &edge{ch: make(chan Tuple, r.bufferSize())}
	}

	// Seed the head.
	go func() {
		defer close(edges[0].ch)
		for _, t := range seeds {
			if emit(ctx, edges[:1], t) != nil {
				return
			}
		}
	}()

	// The stages: parallel dispatch is deliberately disabled so the
	// tail's emission order matches a sequential in-plan run.
	seq := *r
	seq.ParallelCalls = false
	ex.runner = &seq

	errc := make(chan error, len(chain))
	var wg sync.WaitGroup
	for i, n := range chain {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ex.runService(ctx, n, edges[i], edges[i+1:i+2]); err != nil && err != context.Canceled {
				select {
				case errc <- err:
				default:
				}
				cancel()
			}
		}()
	}

	var (
		tuples  []Tuple
		sinkErr error
	)
	for t := range edges[len(chain)].ch {
		if sink != nil {
			if err := sink(t); err != nil {
				sinkErr = err
				cancel()
				break
			}
			continue
		}
		tuples = append(tuples, t)
	}
	// Drain whatever the stages still emit after a sink abort so they
	// can shut down (emit also unblocks on the cancelled context).
	for range edges[len(chain)].ch {
	}
	wg.Wait()

	select {
	case err := <-errc:
		return nil, budgetAbort(ctx, err)
	default:
	}
	if sinkErr != nil {
		return nil, sinkErr
	}
	if ctx.Err() != nil {
		return nil, budgetAbort(ctx, ctx.Err())
	}
	res := &Result{
		Tuples:  tuples,
		Stats:   Stats{Calls: map[string]int64{}, Fetches: map[string]int64{}},
		Elapsed: time.Since(start),
	}
	for name, c := range ex.calls {
		res.Stats.Calls[name] = c.Calls()
		res.Stats.Fetches[name] = c.Fetches()
	}
	r.feedback(ex)
	return res, nil
}

// fragmentChain resolves atom indexes to plan nodes and verifies they
// form a linear chain: each node's only input arc comes from the
// previous node, and each non-tail node's only consumer is the next —
// the shape under which executing the nodes in isolation reproduces
// their in-plan tuple streams exactly.
func fragmentChain(p *plan.Plan, atoms []int) ([]*plan.Node, error) {
	if len(atoms) == 0 {
		return nil, fmt.Errorf("exec: empty fragment")
	}
	chain := make([]*plan.Node, len(atoms))
	for i, ai := range atoms {
		if ai < 0 || ai >= len(p.ServiceNode) {
			return nil, fmt.Errorf("exec: fragment atom %d out of range (plan has %d)", ai, len(p.ServiceNode))
		}
		chain[i] = p.ServiceNode[ai]
	}
	for i, n := range chain {
		if len(n.In) != 1 {
			return nil, fmt.Errorf("exec: fragment node %s has %d input arcs, want 1", n.Label(), len(n.In))
		}
		if i == 0 {
			continue
		}
		prev := chain[i-1]
		if n.In[0] != prev {
			return nil, fmt.Errorf("exec: fragment nodes %s → %s are not adjacent in the plan", prev.Label(), n.Label())
		}
		if len(prev.Out) != 1 {
			return nil, fmt.Errorf("exec: fragment node %s feeds %d consumers, cannot be chain-interior", prev.Label(), len(prev.Out))
		}
	}
	return chain, nil
}

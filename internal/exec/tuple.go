// Package exec is the concurrent execution engine of §5: it runs
// query plans as dataflow computations over registered services,
// with one stage per plan node, logical caching at the three levels
// of §5.1, chunked fetching, rank-preserving parallel joins, and
// optional multithreaded dispatch of the calls within a stage (§6).
package exec

import (
	"fmt"
	"sort"

	"mdq/internal/cq"
	"mdq/internal/plan"
	"mdq/internal/schema"
)

// VarIndex maps query variables to tuple slots.
type VarIndex struct {
	pos  map[cq.Var]int
	vars []cq.Var
}

// NewVarIndex builds the slot layout for a plan's query (sorted for
// determinism).
func NewVarIndex(p *plan.Plan) *VarIndex {
	vars := p.Query.Vars().Sorted()
	idx := &VarIndex{pos: make(map[cq.Var]int, len(vars)), vars: vars}
	for i, v := range vars {
		idx.pos[v] = i
	}
	return idx
}

// Len returns the number of slots.
func (ix *VarIndex) Len() int { return len(ix.vars) }

// Pos returns the slot of a variable.
func (ix *VarIndex) Pos(v cq.Var) (int, bool) {
	i, ok := ix.pos[v]
	return i, ok
}

// Vars returns the variables in slot order.
func (ix *VarIndex) Vars() []cq.Var { return ix.vars }

// Tuple is a partial assignment of query variables, flowing through
// the plan. Unbound slots hold schema.Null.
type Tuple struct {
	vals []schema.Value
}

// NewTuple creates an all-null tuple for the layout.
func NewTuple(ix *VarIndex) Tuple {
	return Tuple{vals: make([]schema.Value, ix.Len())}
}

// Get returns the value bound to slot i.
func (t Tuple) Get(i int) schema.Value { return t.vals[i] }

// Clone copies the tuple.
func (t Tuple) Clone() Tuple {
	vals := make([]schema.Value, len(t.vals))
	copy(vals, t.vals)
	return Tuple{vals: vals}
}

// With returns a copy with slot i bound to v.
func (t Tuple) With(i int, v schema.Value) Tuple {
	c := t.Clone()
	c.vals[i] = v
	return c
}

// Values returns a copy of the tuple's slot values in VarIndex slot
// order — the payload the distributed-execution wire encoding ships
// between processes. Unbound slots are schema.Null.
func (t Tuple) Values() []schema.Value {
	vals := make([]schema.Value, len(t.vals))
	copy(vals, t.vals)
	return vals
}

// TupleOf builds a tuple over the given slot values (copied) — the
// inverse of Values for tuples received off the wire. The caller is
// responsible for the slice matching the plan's VarIndex layout.
func TupleOf(vals []schema.Value) Tuple {
	cp := make([]schema.Value, len(vals))
	copy(cp, vals)
	return Tuple{vals: cp}
}

// Width returns the number of slots.
func (t Tuple) Width() int { return len(t.vals) }

// Binding adapts the tuple to the predicate-evaluation interface.
func (t Tuple) Binding(ix *VarIndex) func(cq.Var) (schema.Value, bool) {
	return func(v cq.Var) (schema.Value, bool) {
		i, ok := ix.Pos(v)
		if !ok || t.vals[i].IsNull() {
			return schema.Null, false
		}
		return t.vals[i], true
	}
}

// Merge combines two tuples; bound slots must agree (the lineage /
// value equi-join condition of parallel joins). ok is false when the
// tuples conflict on some variable.
func (t Tuple) Merge(u Tuple) (Tuple, bool) {
	out := t.Clone()
	for i, v := range u.vals {
		if v.IsNull() {
			continue
		}
		if out.vals[i].IsNull() {
			out.vals[i] = v
		} else if !out.vals[i].Equal(v) {
			return Tuple{}, false
		}
	}
	return out, true
}

// KeyOf returns a canonical key of the values at the given slots
// (group key for joins).
func (t Tuple) KeyOf(slots []int) string {
	key := ""
	for _, i := range slots {
		key += t.vals[i].Key() + "\x1f"
	}
	return key
}

// Project extracts the named variables, for head projection.
func (t Tuple) Project(ix *VarIndex, vars []cq.Var) ([]schema.Value, error) {
	out := make([]schema.Value, len(vars))
	for k, v := range vars {
		i, ok := ix.Pos(v)
		if !ok {
			return nil, fmt.Errorf("exec: head variable %s not in plan layout", v)
		}
		out[k] = t.vals[i]
	}
	return out, nil
}

// String implements fmt.Stringer (debugging aid).
func (t Tuple) String() string {
	s := "("
	for i, v := range t.vals {
		if i > 0 {
			s += ", "
		}
		if v.IsNull() {
			s += "·"
		} else {
			s += v.String()
		}
	}
	return s + ")"
}

// sharedSlots returns the sorted slots of variables bound on both
// sides (used as the join condition).
func sharedSlots(ix *VarIndex, left, right cq.VarSet) []int {
	var slots []int
	for v := range left {
		if right.Has(v) {
			if i, ok := ix.Pos(v); ok {
				slots = append(slots, i)
			}
		}
	}
	sort.Ints(slots)
	return slots
}

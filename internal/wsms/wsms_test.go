package wsms_test

import (
	"testing"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/fetch"
	"mdq/internal/opt"
	"mdq/internal/simweb"
	. "mdq/internal/wsms"
)

// TestBaselinePicksAChain: the WSMS baseline returns a valid
// pipelined chain for the running example.
func TestBaselinePicksAChain(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	o := &Optimizer{}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || len(res.Plan.JoinNodes()) != 0 {
		t.Fatal("baseline must return a pure chain")
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Chains == 0 {
		t.Error("no chains enumerated")
	}
	// A chain has a single path.
	if len(res.Plan.Paths()) != 1 {
		t.Error("chain should have exactly one path")
	}
}

// TestGreedyChainOrdersBySelectivity: on the running example the
// greedy rule of [16] produces conf → weather → flight → hotel (the
// paper's plan S — which §4.2.1 notes is optimal only without
// access limitations and without time metrics).
func TestGreedyChainOrdersBySelectivity(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := GreedyChain(q, simweb.AssignmentAlpha1(), card.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Topology.Equal(simweb.PlanSTopology()) {
		t.Errorf("greedy chain = %s, want plan S", p.Topology)
	}
}

// TestPaperOptimizerBeatsBaselineOnTime: the paper's position (§2.3,
// §7): the bottleneck metric is not advised for search services —
// under the execution-time metric the paper's optimizer finds a plan
// at least as good as (in fact strictly better than) any chain the
// WSMS baseline can produce, because chains cannot parallelize
// flight and hotel.
func TestPaperOptimizerBeatsBaselineOnTime(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	base := &Optimizer{}
	bres, err := base.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ours := &opt.Optimizer{
		Metric:       cost.ExecTime{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            10,
		ChooseMethod: w.Registry.MethodChooser(),
	}
	ores, err := ours.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the baseline's chain under the same conditions: ETM,
	// one-call estimates, and — since WSMS has no notion of chunked
	// fetching — our phase 3 assigns its chain the fetch factors
	// needed for k=10.
	baseline := bres.Plan.Clone()
	fa := &fetch.Assigner{Estimator: card.Config{Mode: card.OneCall}, Metric: cost.ExecTime{}, K: 10}
	fr := fa.Assign(baseline)
	if !fr.Feasible {
		t.Fatal("baseline chain cannot reach k=10")
	}
	if ores.Cost >= fr.Cost {
		t.Errorf("paper optimizer ETM %g not better than WSMS chain ETM %g", ores.Cost, fr.Cost)
	}
}

// Package wsms implements the baseline the paper positions itself
// against: the Web Service Management System of Srivastava, Munagala,
// Widom and Motwani, "Query optimization over web services" (VLDB
// 2006) — reference [16].
//
// The WSMS model differs from the paper's in exactly the ways §2.3,
// §5.2 and §7 call out:
//
//   - all services are treated as exact, with no chunking of results
//     and no ranking;
//   - the optimizer minimizes the bottleneck cost metric — the total
//     service time of the slowest node in a pipelined execution;
//   - the cardinality model is Eq. 1 (no caching): every node's
//     invocations equal the product of the erspi of its
//     predecessors.
//
// The optimizer arranges the query's services into a pipelined chain.
// Without access limitations the optimal arrangement orders services
// by increasing selectivity (the result proved in [16]); with access
// patterns the feasible chains are enumerated and the cheapest is
// returned. This gives the experiments a faithful comparison point:
// what a WSMS-style optimizer would pick for the paper's workloads,
// and how it fares under the execution-time metric once search
// services and chunking enter the picture.
package wsms

import (
	"fmt"

	"mdq/internal/abind"
	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/plan"
)

// Optimizer is the WSMS baseline optimizer.
type Optimizer struct {
	// Estimator defaults to the [16] assumptions: no-cache (Eq. 1).
	// Selectivity defaults apply to unannotated predicates.
	Estimator card.Config
	// MaxChains caps enumeration (0 = 100000).
	MaxChains int
}

// Result reports the chosen chain and its costs.
type Result struct {
	// Plan is the pipelined chain.
	Plan *plan.Plan
	// Bottleneck is the metric the baseline minimizes.
	Bottleneck float64
	// ExecTime is the same plan evaluated under the paper's
	// execution-time metric, for comparison.
	ExecTime float64
	// Chains counts the feasible chains enumerated.
	Chains int
}

// Optimize picks the bottleneck-minimal feasible chain over the
// query's atoms, trying every permissible access-pattern assignment.
func (o *Optimizer) Optimize(q *cq.Query) (*Result, error) {
	for _, a := range q.Atoms {
		if a.Sig == nil {
			return nil, fmt.Errorf("wsms: query %s is not resolved against a schema", q.Name)
		}
	}
	est := o.Estimator
	est.Mode = card.NoCache // [16] repeats every call (§5.2)

	assignments, err := abind.Enumerate(q)
	if err != nil {
		return nil, err
	}
	if len(assignments) == 0 {
		return nil, fmt.Errorf("wsms: no permissible access-pattern sequence for %s", q.Name)
	}
	abind.SortByCogency(assignments)

	maxChains := o.MaxChains
	if maxChains <= 0 {
		maxChains = 100000
	}
	best := &Result{Bottleneck: cost.Infinite}
	for _, asn := range assignments {
		o.chains(q, asn, est, maxChains, best)
	}
	if best.Plan == nil {
		return nil, fmt.Errorf("wsms: no executable chain for %s", q.Name)
	}
	return best, nil
}

// chains enumerates feasible total orders (the WSMS pipeline shape)
// by recursive extension with callable atoms.
func (o *Optimizer) chains(q *cq.Query, asn abind.Assignment, est card.Config, maxChains int, best *Result) {
	n := len(q.Atoms)
	placed := map[int]bool{}
	order := make([]int, 0, n)
	var rec func()
	rec = func() {
		if best.Chains >= maxChains {
			return
		}
		if len(order) == n {
			best.Chains++
			topo := plan.Chain(append([]int(nil), order...))
			p, err := plan.Build(q, asn, topo, plan.Options{})
			if err != nil {
				return
			}
			est.Annotate(p)
			b := (cost.Bottleneck{}).Cost(p)
			if b < best.Bottleneck {
				best.Bottleneck = b
				best.ExecTime = (cost.ExecTime{}).Cost(p)
				best.Plan = p
			}
			return
		}
		for _, i := range abind.CallableAfter(q, asn, placed) {
			placed[i] = true
			order = append(order, i)
			rec()
			order = order[:len(order)-1]
			delete(placed, i)
		}
	}
	rec()
}

// GreedyChain is the selectivity-ordering rule of [16]: repeatedly
// append the callable atom of smallest effective erspi. It is the
// provably optimal arrangement when no access limitations constrain
// the order, and the baseline's fast path.
func GreedyChain(q *cq.Query, asn abind.Assignment, est card.Config) (*plan.Plan, error) {
	n := len(q.Atoms)
	placed := map[int]bool{}
	order := make([]int, 0, n)
	for len(order) < n {
		callable := abind.CallableAfter(q, asn, placed)
		if len(callable) == 0 {
			return nil, fmt.Errorf("wsms: assignment %s not permissible", asn)
		}
		bestIdx, bestE := -1, 0.0
		for _, i := range callable {
			e := q.Atoms[i].Sig.Statistics().ERSPI
			vars := q.Atoms[i].Vars()
			for _, p := range q.Preds {
				if vars.ContainsAll(p.Vars()) {
					e *= est.PredSelectivity([]*cq.Predicate{p})
				}
			}
			if bestIdx < 0 || e < bestE {
				bestIdx, bestE = i, e
			}
		}
		placed[bestIdx] = true
		order = append(order, bestIdx)
	}
	return plan.Build(q, asn, plan.Chain(order), plan.Options{})
}

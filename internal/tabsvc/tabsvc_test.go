package tabsvc_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"mdq/internal/schema"
	. "mdq/internal/tabsvc"
)

func searchSig() *schema.Signature {
	return &schema.Signature{
		Name: "s",
		Attrs: []schema.Attribute{
			{Name: "K", Domain: schema.DomString},
			{Name: "V", Domain: schema.DomNumber},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("io"), schema.MustPattern("oo")},
		Kind:     schema.Search,
		Stats:    schema.Stats{ChunkSize: 3, ERSPI: 5},
	}
}

func rows(n int, key string) [][]schema.Value {
	var out [][]schema.Value
	for i := 0; i < n; i++ {
		out = append(out, []schema.Value{schema.S(key), schema.N(float64(i))})
	}
	return out
}

func TestChunkedPaging(t *testing.T) {
	tb := MustNew(searchSig(), append(rows(7, "a"), rows(2, "b")...), Latency{})
	ctx := context.Background()

	var got []float64
	page := 0
	for {
		resp, err := tb.Invoke(ctx, 0, Request{Inputs: []schema.Value{schema.S("a")}, Page: page})
		if err != nil {
			t.Fatal(err)
		}
		if page == 0 && len(resp.Rows) != 3 {
			t.Fatalf("page 0 size = %d, want 3", len(resp.Rows))
		}
		for _, r := range resp.Rows {
			got = append(got, r[1].Num)
		}
		if !resp.HasMore {
			break
		}
		page++
	}
	if len(got) != 7 {
		t.Fatalf("total rows = %d, want 7", len(got))
	}
	// Ranking order preserved: ascending V as stored.
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatal("rank order broken by paging")
		}
	}
	// Last page short (7 = 3+3+1), HasMore false exactly at the end.
	resp, _ := tb.Invoke(ctx, 0, Request{Inputs: []schema.Value{schema.S("a")}, Page: 2})
	if len(resp.Rows) != 1 || resp.HasMore {
		t.Errorf("last page = %d rows, hasMore=%v", len(resp.Rows), resp.HasMore)
	}
	// Page past the end: empty, no more.
	resp, _ = tb.Invoke(ctx, 0, Request{Inputs: []schema.Value{schema.S("a")}, Page: 9})
	if len(resp.Rows) != 0 || resp.HasMore {
		t.Error("page past end should be empty")
	}
}

func TestAllOutputPattern(t *testing.T) {
	tb := MustNew(searchSig(), append(rows(4, "a"), rows(2, "b")...), Latency{})
	resp, err := tb.Invoke(context.Background(), 1, Request{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 3 || !resp.HasMore {
		t.Errorf("all-output page 0: %d rows hasMore=%v", len(resp.Rows), resp.HasMore)
	}
}

func TestInputValidation(t *testing.T) {
	tb := MustNew(searchSig(), rows(1, "a"), Latency{})
	ctx := context.Background()
	if _, err := tb.Invoke(ctx, 0, Request{}); err == nil {
		t.Error("missing input accepted")
	}
	if _, err := tb.Invoke(ctx, 5, Request{}); err == nil {
		t.Error("bad pattern index accepted")
	}
	bulk := &schema.Signature{
		Name:     "b",
		Attrs:    []schema.Attribute{{Name: "X", Domain: schema.DomString}},
		Patterns: []schema.AccessPattern{schema.MustPattern("o")},
	}
	tb2 := MustNew(bulk, [][]schema.Value{{schema.S("v")}}, Latency{})
	if _, err := tb2.Invoke(ctx, 0, Request{Page: 1}); err == nil {
		t.Error("bulk service accepted page > 0")
	}
	// Arity mismatch in rows rejected at construction.
	if _, err := New(bulk, [][]schema.Value{{schema.S("v"), schema.S("w")}}, Latency{}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestServerCacheLatency(t *testing.T) {
	lat := Latency{Base: time.Second, CacheHit: 100 * time.Millisecond}
	tb := MustNew(searchSig(), rows(2, "a"), lat)
	ctx := context.Background()
	r1, _ := tb.Invoke(ctx, 0, Request{Inputs: []schema.Value{schema.S("a")}})
	if r1.Elapsed != time.Second {
		t.Errorf("first call elapsed = %v, want 1s", r1.Elapsed)
	}
	r2, _ := tb.Invoke(ctx, 0, Request{Inputs: []schema.Value{schema.S("a")}})
	if r2.Elapsed != 100*time.Millisecond {
		t.Errorf("repeat call elapsed = %v, want 100ms (server cache)", r2.Elapsed)
	}
	// Different inputs: full latency again.
	r3, _ := tb.Invoke(ctx, 0, Request{Inputs: []schema.Value{schema.S("b")}})
	if r3.Elapsed != time.Second {
		t.Errorf("different input elapsed = %v, want 1s", r3.Elapsed)
	}
	tb.ResetServerCache()
	r4, _ := tb.Invoke(ctx, 0, Request{Inputs: []schema.Value{schema.S("a")}})
	if r4.Elapsed != time.Second {
		t.Errorf("after reset elapsed = %v, want 1s", r4.Elapsed)
	}
}

// TestJitterDeterministic: jittered latencies depend only on the
// request key, never on call order.
func TestJitterDeterministic(t *testing.T) {
	lat := Latency{Base: time.Second, JitterSigma: 0.5}
	a1 := lat.Elapsed("k1", false)
	a2 := lat.Elapsed("k1", false)
	b := lat.Elapsed("k2", false)
	if a1 != a2 {
		t.Error("same key must give same latency")
	}
	if a1 == b {
		t.Error("different keys should (generically) differ")
	}
	if a1 <= 0 {
		t.Error("latency must stay positive")
	}
}

// TestJitterMeanRoughlyPreserved: the log-normal multiplier has mean
// 1, so the average over many keys stays near Base.
func TestJitterMeanRoughlyPreserved(t *testing.T) {
	lat := Latency{Base: time.Second, JitterSigma: 0.75}
	var sum time.Duration
	n := 2000
	for i := 0; i < n; i++ {
		sum += lat.Elapsed(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i)), false)
	}
	mean := sum / time.Duration(n)
	if mean < 800*time.Millisecond || mean > 1250*time.Millisecond {
		t.Errorf("jittered mean = %v, want ≈1s", mean)
	}
}

func TestCounters(t *testing.T) {
	tb := MustNew(searchSig(), rows(7, "a"), Latency{})
	ctx := context.Background()
	for page := 0; page < 3; page++ {
		if _, err := tb.Invoke(ctx, 0, Request{Inputs: []schema.Value{schema.S("a")}, Page: page}); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Counter.Calls() != 1 {
		t.Errorf("calls = %d, want 1 (page 0 only)", tb.Counter.Calls())
	}
	if tb.Counter.Fetches() != 3 {
		t.Errorf("fetches = %d, want 3", tb.Counter.Fetches())
	}
}

func TestSamplerUniformOverCombos(t *testing.T) {
	// 10 rows under key "a", 1 under "b": sampling must be ~50/50,
	// not 10:1 (profiling unbiased by skew).
	tb := MustNew(searchSig(), append(rows(10, "a"), rows(1, "b")...), Latency{})
	sampler := tb.Sampler()
	counts := map[string]int{}
	rng := newRand()
	for i := 0; i < 1000; i++ {
		in := sampler.Sample(rng, 0)
		counts[in[0].Str]++
	}
	if counts["a"] < 350 || counts["a"] > 650 {
		t.Errorf("sampler skewed: %v", counts)
	}
}

func newRand() *rand.Rand { return rand.New(rand.NewSource(11)) }

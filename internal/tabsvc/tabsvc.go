// Package tabsvc implements table-backed simulated web services: an
// in-memory relation exposed through the access patterns of its
// signature, with chunked paging, a latency model, and an optional
// server-side result cache.
//
// These services stand in for the paper's wrappers over live deep-web
// sources (expedia.com, bookings.com, accuweather.com,
// conference-service.com — §6). The substitution preserves the
// behaviours that matter to the optimizer and executor: access
// limitations, ranking order, chunked fetching, response times, and
// the server-side caching the paper observed ("the saved calls are
// cached on the server of Bookings.com and are therefore answered
// very quickly").
package tabsvc

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"time"

	"mdq/internal/schema"
	"mdq/internal/service"
)

// Latency models the response time of a simulated service.
type Latency struct {
	// Base is the service time of a first-time request–response.
	Base time.Duration
	// CacheHit is the service time when the server-side cache
	// already holds the result (0 disables the server cache).
	CacheHit time.Duration
	// JitterSigma adds deterministic log-normal noise: each request
	// key maps to a fixed multiplier with mean 1 and the given
	// log-σ. Zero means constant latencies.
	JitterSigma float64
}

// Elapsed returns the deterministic simulated duration for a request
// key. The jitter multiplier is derived from a hash of the key, so
// the same request always takes the same time regardless of
// scheduling order — a requirement for reproducible experiments.
func (l Latency) Elapsed(key string, hit bool) time.Duration {
	base := l.Base
	if hit && l.CacheHit > 0 {
		base = l.CacheHit
	}
	if l.JitterSigma <= 0 {
		return base
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], h.Sum64())
	u1 := float64(binary.BigEndian.Uint32(buf[:4]))/float64(1<<32) + 1e-12
	u2 := float64(binary.BigEndian.Uint32(buf[4:])) / float64(1<<32)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	mult := math.Exp(l.JitterSigma*z - l.JitterSigma*l.JitterSigma/2)
	return time.Duration(float64(base) * mult)
}

// Table is a Service backed by an in-memory relation. Rows must be
// stored in ranking order for search services (the first row is the
// most relevant); filtering preserves that order.
type Table struct {
	sig *schema.Signature
	lat Latency

	rows [][]schema.Value

	mu      sync.Mutex
	seen    map[string]bool // server-side cache keys
	combos  map[int][][]schema.Value
	Counter service.Counter
}

// New builds a table service. It validates that every row has the
// signature's arity.
func New(sig *schema.Signature, rows [][]schema.Value, lat Latency) (*Table, error) {
	for i, r := range rows {
		if len(r) != sig.Arity() {
			return nil, fmt.Errorf("tabsvc: %s row %d has %d values, want %d", sig.Name, i, len(r), sig.Arity())
		}
	}
	return &Table{sig: sig, lat: lat, rows: rows, seen: map[string]bool{}, combos: map[int][][]schema.Value{}}, nil
}

// MustNew is New that panics on error.
func MustNew(sig *schema.Signature, rows [][]schema.Value, lat Latency) *Table {
	t, err := New(sig, rows, lat)
	if err != nil {
		panic(err)
	}
	return t
}

// Signature implements service.Service.
func (t *Table) Signature() *schema.Signature { return t.sig }

// Size returns the number of base rows.
func (t *Table) Size() int { return len(t.rows) }

// Row returns the i-th base row (shared slice; callers must not
// mutate it). It exposes the ground truth for verification tests.
func (t *Table) Row(i int) []schema.Value { return t.rows[i] }

// ResetServerCache clears the server-side cache and counters, so
// experiment runs start cold.
func (t *Table) ResetServerCache() {
	t.mu.Lock()
	t.seen = map[string]bool{}
	t.mu.Unlock()
	t.Counter.Reset()
}

// Invoke implements service.Service: it selects the rows matching
// the pattern's input values (equality on each input position),
// pages them by the signature's chunk size, and reports a simulated
// elapsed time from the latency model and server-side cache state.
func (t *Table) Invoke(ctx context.Context, patternIdx int, req Request) (service.Response, error) {
	return t.invoke(ctx, patternIdx, req)
}

// Request aliases service.Request for brevity in this package.
type Request = service.Request

func (t *Table) invoke(ctx context.Context, patternIdx int, req Request) (service.Response, error) {
	if err := ctx.Err(); err != nil {
		return service.Response{}, err
	}
	if patternIdx < 0 || patternIdx >= len(t.sig.Patterns) {
		return service.Response{}, fmt.Errorf("tabsvc: %s has no pattern index %d", t.sig.Name, patternIdx)
	}
	pattern := t.sig.Patterns[patternIdx]
	inPos := pattern.Inputs()
	if len(req.Inputs) != len(inPos) {
		return service.Response{}, fmt.Errorf("tabsvc: %s pattern %s expects %d inputs, got %d",
			t.sig.Name, pattern, len(inPos), len(req.Inputs))
	}

	var matches [][]schema.Value
	for _, row := range t.rows {
		ok := true
		for k, pos := range inPos {
			if !row[pos].Equal(req.Inputs[k]) {
				ok = false
				break
			}
		}
		if ok {
			matches = append(matches, row)
		}
	}

	resp := service.Response{}
	cs := t.sig.Statistics().ChunkSize
	if cs > 0 {
		lo := req.Page * cs
		hi := lo + cs
		if lo > len(matches) {
			lo = len(matches)
		}
		if hi > len(matches) {
			hi = len(matches)
		}
		resp.Rows = matches[lo:hi]
		resp.HasMore = hi < len(matches)
	} else {
		if req.Page != 0 {
			return service.Response{}, fmt.Errorf("tabsvc: %s is a bulk service; page %d requested", t.sig.Name, req.Page)
		}
		resp.Rows = matches
	}

	// Server-side cache: repeated requests for the same inputs are
	// answered from the remote server's own cache, much faster.
	key := fmt.Sprintf("%s/%d/%s", t.sig.Name, patternIdx, req.Key())
	t.mu.Lock()
	hit := t.lat.CacheHit > 0 && t.seen[key]
	t.seen[key] = true
	t.mu.Unlock()
	resp.Elapsed = t.lat.Elapsed(fmt.Sprintf("%s#%d", key, req.Page), hit)

	if req.Page == 0 {
		t.Counter.AddCall()
	}
	t.Counter.AddFetch()
	return resp, nil
}

// ProfileValues computes the exact per-attribute value distributions
// of the backing relation and installs them on the signature
// (schema.Stats.Dists) — the registration-time counterpart of the
// online sketches of service.Observed, available to table services
// because they hold their full relation (§5: registration estimates).
// maxMCVs/maxBuckets bound the distribution size (≤ 0 means 8 each).
// It returns the number of attributes profiled.
func (t *Table) ProfileValues(maxMCVs, maxBuckets int) int {
	if maxMCVs <= 0 {
		maxMCVs = 8
	}
	if maxBuckets <= 0 {
		maxBuckets = 8
	}
	n := 0
	dists := make([]*schema.Distribution, t.sig.Arity())
	col := make([]schema.Value, 0, len(t.rows))
	for i := range t.sig.Attrs {
		col = col[:0]
		for _, row := range t.rows {
			col = append(col, row[i])
		}
		dists[i] = schema.DistributionFromValues(col, maxMCVs, maxBuckets)
		if !dists[i].Empty() {
			n++
		}
	}
	// Publish through the copy-on-write snapshot: concurrent
	// optimizations keep reading a consistent statistics view.
	st := t.sig.Statistics()
	st.Dists = dists
	t.sig.SetStats(st)
	return n
}

// Sampler returns an InputSampler drawing uniformly from the
// distinct input combinations present in the table, so profiling is
// unbiased by row-count skew (§5: estimates by sampling).
func (t *Table) Sampler() service.InputSampler {
	return service.SamplerFunc(func(rng *rand.Rand, patternIdx int) []schema.Value {
		combos := t.distinctCombos(patternIdx)
		if len(combos) == 0 {
			return nil
		}
		return combos[rng.Intn(len(combos))]
	})
}

func (t *Table) distinctCombos(patternIdx int) [][]schema.Value {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.combos[patternIdx]; ok {
		return c
	}
	pattern := t.sig.Patterns[patternIdx]
	inPos := pattern.Inputs()
	seen := map[string]bool{}
	var combos [][]schema.Value
	for _, row := range t.rows {
		combo := make([]schema.Value, len(inPos))
		key := ""
		for k, pos := range inPos {
			combo[k] = row[pos]
			key += row[pos].Key() + "\x1f"
		}
		if !seen[key] {
			seen[key] = true
			combos = append(combos, combo)
		}
	}
	t.combos[patternIdx] = combos
	return combos
}

package opt_test

import (
	"context"
	"testing"
	"time"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/exec"
	. "mdq/internal/opt"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/tabsvc"
)

// expansionWorld reproduces §7's scenario: every in-query service
// requires City as input, so the query is not executable — but the
// schema offers oldTown(City) with City in output.
func expansionWorld(t *testing.T) (*service.Registry, *schema.Schema, *cq.Query, *tabsvc.Table, *tabsvc.Table) {
	t.Helper()
	city := schema.DomCity
	museums := &schema.Signature{
		Name: "museum",
		Attrs: []schema.Attribute{
			{Name: "City", Domain: city},
			{Name: "Name", Domain: schema.DomName},
			{Name: "Fee", Domain: schema.DomPrice},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("ioo")},
		Stats:    schema.Stats{ERSPI: 3, ResponseTime: schemaMs(400)},
	}
	oldTown := &schema.Signature{
		Name: "oldTown",
		Attrs: []schema.Attribute{
			{Name: "City", Domain: city},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("o")},
		Stats:    schema.Stats{ERSPI: 4, ResponseTime: schemaMs(700)},
	}

	museumRows := [][]schema.Value{
		{schema.S("Roma"), schema.S("Museo A"), schema.N(12)},
		{schema.S("Roma"), schema.S("Museo B"), schema.N(8)},
		{schema.S("Paris"), schema.S("Musée C"), schema.N(15)},
		{schema.S("Berlin"), schema.S("Museum D"), schema.N(9)},
		{schema.S("Kyoto"), schema.S("Museum E"), schema.N(6)},
	}
	oldTownRows := [][]schema.Value{
		{schema.S("Roma")},
		{schema.S("Paris")},
		{schema.S("Praha")}, // no museum rows — restricts nothing extra
	}
	reg := service.NewRegistry()
	mt := tabsvc.MustNew(museums, museumRows, tabsvc.Latency{})
	ot := tabsvc.MustNew(oldTown, oldTownRows, tabsvc.Latency{})
	reg.MustRegister(mt)
	reg.MustRegister(ot)
	sch, err := reg.Schema()
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParse(`visits(City, Name, Fee) :- museum(City, Name, Fee), Fee < 14 {0.6}.`)
	if err := q.Resolve(sch); err != nil {
		t.Fatal(err)
	}
	return reg, sch, q, mt, ot
}

func schemaMs(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

// TestExpandMakesQueryExecutable: the §7 expansion adds oldTown and
// the expanded query runs, producing a subset of the full answers.
func TestExpandMakesQueryExecutable(t *testing.T) {
	reg, sch, q, _, _ := expansionWorld(t)

	// The original query is not executable.
	if _, err := (&Optimizer{K: 0}).Optimize(q); err == nil {
		t.Fatal("city-input-only query should not optimize")
	}

	eq, added, err := Expand(q, sch, 2)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if added != 1 {
		t.Errorf("added %d atoms, want 1", added)
	}
	last := eq.Atoms[len(eq.Atoms)-1]
	if last.Service != "oldTown" {
		t.Errorf("expansion used %s, want oldTown", last.Service)
	}
	// The shared variable joins the new atom to the query.
	if !last.Vars().Has("City") {
		t.Errorf("expanded atom does not bind City: %s", last)
	}

	o := &Optimizer{Metric: cost.RequestResponse{}, Estimator: card.Config{Mode: card.OneCall}, K: 0}
	res, err := o.Optimize(eq)
	if err != nil {
		t.Fatal(err)
	}
	r := &exec.Runner{Registry: reg, Cache: card.Optimal}
	out, err := r.Run(context.Background(), res.Best)
	if err != nil {
		t.Fatal(err)
	}
	// Subset semantics: only Roma and Paris museums with fee < 14 —
	// Berlin and Kyoto are unreachable without their city binding.
	want := map[string]bool{"Museo A": true, "Museo B": true, "Musée C": false /* fee 15 */}
	if len(out.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (%v)", len(out.Rows), out.Rows)
	}
	for _, row := range out.Rows {
		name := row[1].Str
		if ok, known := want[name]; !known || !ok {
			t.Errorf("unexpected answer %s", name)
		}
	}
}

// TestExpandNoOpOnExecutableQueries: an already-permissible query is
// returned unchanged.
func TestExpandNoOpOnExecutableQueries(t *testing.T) {
	_, sch, q, _, _ := expansionWorld(t)
	// Bind the city with a constant: executable as-is.
	q2 := cq.MustParse(`visits(Name) :- museum('Roma', Name, Fee).`)
	if err := q2.Resolve(sch); err != nil {
		t.Fatal(err)
	}
	eq, added, err := Expand(q2, sch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || eq != q2 {
		t.Error("executable query must pass through unchanged")
	}
	_ = q
}

// TestExpandFailsWhenNoProviderExists: without any producer of the
// stuck domain, expansion reports a diagnostic error.
func TestExpandFailsWhenNoProviderExists(t *testing.T) {
	reg := service.NewRegistry()
	sig := &schema.Signature{
		Name: "museum",
		Attrs: []schema.Attribute{
			{Name: "City", Domain: schema.DomCity},
			{Name: "Name", Domain: schema.DomName},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("io")},
		Stats:    schema.Stats{ERSPI: 3},
	}
	reg.MustRegister(tabsvc.MustNew(sig, nil, tabsvc.Latency{}))
	sch, err := reg.Schema()
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParse(`v(Name) :- museum(City, Name).`)
	if err := q.Resolve(sch); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Expand(q, sch, 2); err == nil {
		t.Fatal("expansion should fail without a City producer")
	}
}

package opt_test

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	. "mdq/internal/opt"
	"mdq/internal/serve"
	"mdq/internal/simweb"
)

// budgetOptimizer builds the running-example optimizer the budget
// tests drive.
func budgetOptimizer(t *testing.T) (*Optimizer, *cq.Query) {
	t.Helper()
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	o := &Optimizer{
		Metric:    cost.ExecTime{},
		Estimator: card.Config{Mode: card.OneCall},
		K:         10,
	}
	return o, q
}

// TestOptimizeBudgetExpiredDeadline: an optimizer whose budget
// deadline has already passed refuses the search with the typed
// budget error, not a context error or a partial result.
func TestOptimizeBudgetExpiredDeadline(t *testing.T) {
	o, q := budgetOptimizer(t)
	o.Budget = serve.NewBudget(time.Nanosecond, 0)
	time.Sleep(time.Millisecond)
	res, err := o.Optimize(q)
	if res != nil {
		t.Fatal("expired budget still produced a result")
	}
	if !errors.Is(err, serve.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *serve.BudgetError
	if !errors.As(err, &be) || be.Reason != "deadline" {
		t.Fatalf("err = %v, want *BudgetError with deadline reason", err)
	}
}

// TestOptimizeTemplateBudget: the budget gate applies to the template
// serving path too, and a budget abort does not poison the cache —
// the same optimizer with the budget lifted searches and caches
// normally afterwards.
func TestOptimizeTemplateBudget(t *testing.T) {
	o, q := budgetOptimizer(t)
	o.Cache = NewPlanCache(16)
	o.Budget = serve.NewBudget(time.Nanosecond, 0)
	time.Sleep(time.Millisecond)
	if _, err := o.OptimizeTemplate(q); !errors.Is(err, serve.ErrBudgetExceeded) {
		t.Fatalf("template path err = %v, want ErrBudgetExceeded", err)
	}
	o.Budget = nil
	res, err := o.OptimizeTemplate(q)
	if err != nil {
		t.Fatalf("optimize after lifting budget: %v", err)
	}
	if res.Cached || res.TemplateHit {
		t.Fatal("budget abort must not have seeded the template cache")
	}
	again, err := o.OptimizeTemplate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !again.TemplateHit {
		t.Fatal("second optimize should hit the template cached by the first")
	}
}

// TestOptimizeTinyDeadlines sweeps deadlines from "certainly expires
// mid-search" upward: every run either completes or fails with the
// typed budget error — never a bare context error — and the parallel
// walk's goroutines are all reaped.
func TestOptimizeTinyDeadlines(t *testing.T) {
	o, q := budgetOptimizer(t)
	before := runtime.NumGoroutine()
	for _, d := range []time.Duration{
		time.Microsecond, 20 * time.Microsecond, 100 * time.Microsecond,
		500 * time.Microsecond, 2 * time.Millisecond, time.Second,
	} {
		o.Budget = serve.NewBudget(d, 0)
		res, err := o.Optimize(q)
		switch {
		case err == nil:
			if res == nil || res.Best == nil {
				t.Fatalf("deadline %v: nil result without error", d)
			}
		case !errors.Is(err, serve.ErrBudgetExceeded):
			t.Fatalf("deadline %v: err = %v, want ErrBudgetExceeded", d, err)
		}
	}
	waitGoroutines(t, before)
}

// waitGoroutines fails the test when the goroutine count does not
// settle back to (roughly) the baseline — the leak check behind the
// budget-abort paths.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle: %d > baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Package opt implements the paper's main contribution (§2.4, §4 of
// Braga et al., VLDB 2008): the three-phase branch-and-bound
// optimizer that maps a conjunctive query over web services to a
// fully instantiated query plan of minimal cost.
//
// Phase 1 selects an access-pattern assignment ("bound is better"
// first), phase 2 selects the plan topology — a partial order over
// the query atoms ("selective and parallel are better" heuristics
// seed the upper bound), and phase 3 assigns the fetch factors of
// chunked services ("greedy" / "square is better"). All considered
// cost metrics are monotone with respect to this construction, so
// the cost of a partially constructed plan lower-bounds every
// completion and enables safe pruning.
package opt

import (
	"math/bits"
	"sort"

	"mdq/internal/abind"
	"mdq/internal/cq"
	"mdq/internal/plan"
)

// topoState is a node of the phase-2 construction tree: a set of
// placed atoms with a strict partial order over them. States are
// deduplicated, so every partial order is expanded exactly once even
// though many construction sequences reach it.
type topoState struct {
	placed uint64 // bitmask over atom indexes
	topo   *plan.Topology
}

func (s *topoState) key() string {
	// The placed mask is implied by the matrix only for non-trivial
	// orders, so include it explicitly.
	b := make([]byte, 0, 16+s.topo.Size()*s.topo.Size())
	m := s.placed
	for i := 0; i < 8; i++ {
		b = append(b, byte(m>>(8*i)))
	}
	return string(b) + s.topo.Key()
}

// outputsOf caches the output variable sets per atom for an
// assignment.
func outputsOf(q *cq.Query, asn abind.Assignment) []cq.VarSet {
	outs := make([]cq.VarSet, len(q.Atoms))
	for i, a := range q.Atoms {
		outs[i] = abind.OutputVars(a, asn[i])
	}
	return outs
}

// extensions enumerates the ways of placing one more atom: an
// unplaced atom j together with an order ideal D of the placed atoms
// (its set of strict predecessors) such that j is callable after D.
// Each extension yields a strictly larger partial order; transitivity
// is preserved because D is downward closed.
func extensions(q *cq.Query, asn abind.Assignment, outs []cq.VarSet, s *topoState, visit func(j int, ideal uint64)) {
	n := len(q.Atoms)
	var placedIdx []int
	for i := 0; i < n; i++ {
		if s.placed&(1<<i) != 0 {
			placedIdx = append(placedIdx, i)
		}
	}
	for j := 0; j < n; j++ {
		if s.placed&(1<<j) != 0 {
			continue
		}
		// Enumerate subsets of placed atoms as candidate predecessor
		// sets; keep order ideals under which j is callable.
		k := len(placedIdx)
		for sub := 0; sub < 1<<k; sub++ {
			var mask uint64
			for b := 0; b < k; b++ {
				if sub&(1<<b) != 0 {
					mask |= 1 << placedIdx[b]
				}
			}
			if !isIdeal(s.topo, placedIdx, mask) {
				continue
			}
			bound := cq.VarSet{}
			for _, i := range placedIdx {
				if mask&(1<<i) != 0 {
					bound.AddAll(outs[i])
				}
			}
			if !abind.InputsBound(q.Atoms[j], asn[j], bound) {
				continue
			}
			visit(j, mask)
		}
	}
}

// isIdeal reports whether mask is downward closed in the placed
// order: x ∈ mask and y < x imply y ∈ mask.
func isIdeal(t *plan.Topology, placedIdx []int, mask uint64) bool {
	for _, x := range placedIdx {
		if mask&(1<<x) == 0 {
			continue
		}
		for _, y := range placedIdx {
			if t.Less(y, x) && mask&(1<<y) == 0 {
				return false
			}
		}
	}
	return true
}

// apply returns the successor state after placing atom j with the
// given predecessor ideal.
func apply(s *topoState, j int, ideal uint64) *topoState {
	t := s.topo.Clone()
	n := t.Size()
	for i := 0; i < n; i++ {
		if ideal&(1<<i) != 0 {
			t.SetLess(i, j)
		}
	}
	return &topoState{placed: s.placed | 1<<j, topo: t}
}

// EnumerateTopologies returns every valid plan topology for the
// query under the assignment: all strict partial orders over the
// atoms in which each atom's input fields are bound by constants or
// by outputs of its predecessors. For three atoms with no binding
// constraints this yields the paper's 19 alternatives (Example 5.1).
func EnumerateTopologies(q *cq.Query, asn abind.Assignment) []*plan.Topology {
	var result []*plan.Topology
	WalkTopologies(q, asn, func(s *topoState) bool { return true }, func(t *plan.Topology) {
		result = append(result, t)
	})
	sort.Slice(result, func(i, j int) bool { return result[i].Key() < result[j].Key() })
	return result
}

// CountTopologies counts the valid topologies without materializing
// them.
func CountTopologies(q *cq.Query, asn abind.Assignment) int {
	n := 0
	WalkTopologies(q, asn, func(s *topoState) bool { return true }, func(*plan.Topology) { n++ })
	return n
}

// WalkTopologies runs the phase-2 construction: a depth-first walk
// over partial orders, expanding each distinct partial state once.
// keep is consulted on every intermediate state (return false to
// prune the whole subtree — this is where branch and bound hooks
// in); leaf is invoked for every complete topology.
func WalkTopologies(q *cq.Query, asn abind.Assignment, keep func(*topoState) bool, leaf func(*plan.Topology)) {
	n := len(q.Atoms)
	if n > 63 {
		panic("opt: too many atoms")
	}
	outs := outputsOf(q, asn)
	full := uint64(1)<<n - 1
	seen := map[string]bool{}
	var dfs func(s *topoState)
	dfs = func(s *topoState) {
		k := s.key()
		if seen[k] {
			return
		}
		seen[k] = true
		if !keep(s) {
			return
		}
		if s.placed == full {
			leaf(s.topo.Clone())
			return
		}
		extensions(q, asn, outs, s, func(j int, ideal uint64) {
			dfs(apply(s, j, ideal))
		})
	}
	dfs(&topoState{placed: 0, topo: plan.NewTopology(n)})
}

// placedCount returns the number of atoms placed in the state.
func (s *topoState) placedCount() int { return bits.OnesCount64(s.placed) }

// placedList returns the placed atom indexes in increasing order.
func (s *topoState) placedList() []int {
	var out []int
	for i := 0; i < 64; i++ {
		if s.placed&(1<<i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

package opt

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"time"

	"mdq/internal/abind"
	"mdq/internal/cq"
	"mdq/internal/plan"
)

// EpochSource reports the current statistics epoch of a service —
// the counter service.Registry bumps on every in-place statistics
// refresh. The optimizer snapshots an epoch vector into each cache
// entry so staleness is detectable per service instead of per
// registry.
type EpochSource interface {
	Epoch(service string) uint64
}

// Policy configures the cache's eviction behavior for long-running
// servers. The zero value of MaxBytes and TTL disables the
// respective policy; Capacity ≤ 0 defaults to 128 entries.
//
// The three limits compose independently and each eviction is
// attributed to its cause in CacheStats (EvictedLRU / EvictedBytes /
// EvictedTTL; epoch-driven drops count as EvictedEpoch):
//
//   - Capacity is the hard entry count — the least recently used
//     entry goes first when it overflows;
//   - MaxBytes approximates retained memory (plan graphs dominate;
//     see entrySize) and also evicts from the LRU tail;
//   - TTL is a freshness bound rather than a memory bound: it caps
//     how long a plan can outlive the statistics window it was
//     computed in even if epochs never move (e.g. no observers are
//     installed, so nothing ever bumps).
type Policy struct {
	// Capacity bounds the number of entries (LRU beyond it).
	Capacity int
	// MaxBytes bounds the approximate retained size of all cached
	// results; the least recently used entries are dropped until the
	// budget holds.
	MaxBytes int64
	// TTL expires entries by age regardless of use, so a plan can
	// never outlive the statistics window it was computed in by more
	// than the TTL.
	TTL time.Duration
}

// PlanCache is a thread-safe cache of optimization results with two
// kinds of entries:
//
//   - exact entries, keyed by the canonical query signature
//     (cq.Query.CanonicalKey) plus the optimizer's knobs: a hit
//     returns the memoized result verbatim (deep-copied);
//   - template entries, keyed by the constant-masked template
//     signature (cq.Query.TemplateKey) plus the same knobs: a hit
//     returns the winning plan *skeleton* (access-pattern assignment
//     and topology) of one branch-and-bound search, which the
//     optimizer rebuilds and re-costs for the new bindings — many
//     bindings, one search.
//
// Every entry carries the statistics-epoch vector of its services:
// map[service]epoch as of the entry's last (re)validation, where an
// epoch is the counter service.Registry.BumpEpoch advances on every
// in-place statistics refresh. When a service's statistics are
// refreshed (see service.Registry.BumpEpoch), InvalidateService
// drops the exact entries touching it — their keys embed the stale
// statistics and can never be hit again — and marks template entries
// stale, to be revalidated against the fresh statistics on their
// next hit.
//
// A template entry holds one skeleton+baseline slot per *binding
// class* — a bucket over where the bindings' constants sit in the
// profiled value distributions (Optimizer.bindingClass) — so hot and
// cold bindings of one template keep separate cost baselines instead
// of thrashing a single scalar. Each class slot moves through a small
// state machine (driven by Optimizer.OptimizeTemplate; see
// template.go for a worked example), with staleness tracked at the
// entry level:
//
//	         putTemplate (full search)
//	absent ─────────────────────────────► fresh
//	absent ── neighbor class's re-cost ──► fresh  (borrowed serve seeds
//	          accepted within ratio               the class, no search)
//	fresh  ── epoch bump ───────────────► stale
//	fresh  ── hit, re-cost within ratio ─► fresh  (TemplateHit)
//	stale  ── hit, re-cost within ratio ─► fresh  (TemplateHit+Revalidated)
//	any    ── hit, re-cost beyond ratio ─► absent (divergence → full search;
//	                                               other classes unaffected)
//	any    ── TTL / LRU / byte eviction ─► absent (whole entry)
//
// Cached plans are stored frozen: lookups return deep copies, so
// callers may freely re-annotate fetch factors or cardinalities
// without corrupting the cached entry, and concurrent lookups never
// alias each other's plans.
type PlanCache struct {
	mu     sync.Mutex
	policy Policy
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	bytes  int64
	now    func() time.Time // test hook; nil means time.Now

	hits, misses   uint64
	templateHits   uint64
	revalidations  uint64
	divergences    uint64
	borrowedServes uint64
	searches       uint64
	evictLRU       uint64
	evictTTL       uint64
	evictBytes     uint64
	evictEpoch     uint64
}

// entryKind discriminates cache entries.
type entryKind int

const (
	exactEntry entryKind = iota
	templateEntry
)

func (k entryKind) String() string {
	if k == templateEntry {
		return "template"
	}
	return "exact"
}

// classSlot is one binding class's baseline inside a template entry:
// the plan skeleton (assignment + topology, enough to rebuild the
// plan for any binding with one plan.Build plus one fetch
// assignment) and the cost its re-costs are compared against. Binding
// classes partition a template's bindings by where their constants
// sit in the profiled value distributions (Optimizer.bindingClass),
// so a workload alternating between hot and cold bindings — the head
// and tail of a Zipf law — keeps one stable baseline per class
// instead of re-seeding a single scalar on every flip.
type classSlot struct {
	asn  abind.Assignment
	topo *plan.Topology
	// baseCost is the cost of the skeleton when the class was seeded
	// (a full search, or an accepted re-cost borrowed from a
	// neighboring class), the reference the revalidation ratio
	// compares against.
	baseCost float64
	feasible bool
	// stats are the effort counters of the search that produced the
	// skeleton (shared verbatim by classes seeded via borrowing).
	stats Stats
	hits  uint64
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key  string
	kind entryKind
	res  *Result // exact entries: the memoized result
	// classes holds the per-binding-class skeletons and baselines of a
	// template entry; lastClass names the most recently seeded or
	// served class, the preferred lender when a new class borrows.
	classes   map[string]*classSlot
	lastClass string
	// baseCost/feasible mirror the result's cost for exact entries
	// (introspection; template entries keep these per class).
	baseCost float64
	feasible bool
	// epochs maps each service of the query to its statistics epoch
	// when the entry was (re)validated.
	epochs map[string]uint64
	// dists maps each service of the query to the fingerprint of its
	// per-attribute value distributions when the entry was
	// (re)validated (template entries only; empty string when the
	// service has no value statistics). Serialized entries carry it so
	// an importing cache can check whether its local statistics agree
	// with the exporter's.
	dists map[string]string
	// stale marks a template entry whose epoch vector lags the
	// current statistics; it is served only after revalidation.
	stale bool
	bytes int64
	added time.Time
	hits  uint64
}

// NewPlanCache creates a cache holding up to capacity results;
// capacity <= 0 defaults to 128. Byte and TTL limits are off; use
// NewPlanCacheWith to set them.
func NewPlanCache(capacity int) *PlanCache {
	return NewPlanCacheWith(Policy{Capacity: capacity})
}

// NewPlanCacheWith creates a cache with explicit eviction policies.
func NewPlanCacheWith(p Policy) *PlanCache {
	if p.Capacity <= 0 {
		p.Capacity = 128
	}
	return &PlanCache{
		policy: p,
		ll:     list.New(),
		items:  make(map[string]*list.Element, p.Capacity),
	}
}

func (c *PlanCache) clock() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

// expired reports whether the entry's age exceeds the TTL.
func (c *PlanCache) expired(e *cacheEntry, now time.Time) bool {
	return c.policy.TTL > 0 && now.Sub(e.added) > c.policy.TTL
}

// removeLocked drops an element and charges the eviction to cause.
func (c *PlanCache) removeLocked(el *list.Element, cause *uint64) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.bytes
	if cause != nil {
		*cause++
	}
}

// Get returns a private copy of the cached result for an exact key,
// marking the entry most recently used. Expired entries count as
// misses.
func (c *PlanCache) Get(key string) (*Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.kind != exactEntry || c.expired(e, c.clock()) {
		if c.expired(e, c.clock()) {
			c.removeLocked(el, &c.evictTTL)
		}
		c.misses++
		return nil, false
	}
	c.hits++
	e.hits++
	c.ll.MoveToFront(el)
	return copyResult(e.res), true
}

// Put stores a private copy of the result under an exact key,
// evicting least recently used entries when the cache is over its
// entry or byte budget. The epoch vector may be nil when no epoch
// source is wired; push invalidation then cannot match the entry,
// but the key's statistics fingerprint still prevents stale hits.
func (c *PlanCache) Put(key string, res *Result) {
	c.put(key, res, nil)
}

func (c *PlanCache) put(key string, res *Result, epochs map[string]uint64) {
	if c == nil || res == nil {
		return
	}
	c.insert(&cacheEntry{
		key:      key,
		kind:     exactEntry,
		res:      copyResult(res),
		baseCost: res.Cost,
		feasible: res.Feasible,
		epochs:   epochs,
	})
}

// putTemplate stores the skeleton of a completed search as the given
// binding class of a template entry (seeding the entry when the key
// is new, adding or replacing one class slot when it exists). Only
// the skeleton and the search's effort counters are kept — template
// hits rebuild the plan from the bound query, so retaining the
// original plans (or alternatives) would be dead weight against
// MaxBytes.
func (c *PlanCache) putTemplate(key, class string, res *Result, epochs map[string]uint64, dists map[string]string) {
	if c == nil || res == nil || res.Best == nil {
		return
	}
	slot := &classSlot{
		asn:      res.Best.Assignment,
		topo:     res.Best.Topology.Clone(),
		baseCost: res.Cost,
		feasible: res.Feasible,
		stats:    res.Stats,
	}
	c.upsertClass(key, class, slot, epochs, dists, false)
}

// upsertClass merges one binding class's slot into the template
// entry for key, creating the entry when absent. stale marks
// imported slots pending revalidation; a fresh full search (stale
// false) clears entry staleness, since the entry's epoch vector was
// just re-snapshotted under the current statistics.
func (c *PlanCache) upsertClass(key, class string, slot *classSlot, epochs map[string]uint64, dists map[string]string, stale bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.kind == templateEntry {
			old := e.bytes
			e.classes[class] = slot
			e.lastClass = class
			if epochs != nil {
				e.epochs = epochs
			}
			if dists != nil {
				e.dists = dists
			}
			// A fresh full search re-snapshotted the epoch vector under
			// current statistics; a stale import poisons the entry the
			// way whole-entry imports always did.
			e.stale = stale
			e.bytes = entrySize(e)
			c.bytes += e.bytes - old
			c.ll.MoveToFront(el)
			c.enforceLocked()
			return
		}
		// Template keys carry the "tpl|" prefix, so an exact entry under
		// the same key cannot occur; replace defensively if it somehow did.
		c.removeLocked(el, nil)
	}
	e := &cacheEntry{
		key:       key,
		kind:      templateEntry,
		classes:   map[string]*classSlot{class: slot},
		lastClass: class,
		epochs:    epochs,
		dists:     dists,
		stale:     stale,
	}
	e.bytes = entrySize(e)
	e.added = c.clock()
	c.items[key] = c.ll.PushFront(e)
	c.bytes += e.bytes
	c.enforceLocked()
}

// insert adds or replaces an entry and enforces the eviction
// policies.
func (c *PlanCache) insert(e *cacheEntry) {
	e.bytes = entrySize(e)
	e.added = c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		old := el.Value.(*cacheEntry)
		c.bytes += e.bytes - old.bytes
		e.hits = old.hits
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.items[e.key] = c.ll.PushFront(e)
		c.bytes += e.bytes
	}
	c.enforceLocked()
}

// enforceLocked evicts from the LRU tail until the entry and byte
// budgets hold.
func (c *PlanCache) enforceLocked() {
	for c.ll.Len() > c.policy.Capacity {
		c.removeLocked(c.ll.Back(), &c.evictLRU)
	}
	for c.policy.MaxBytes > 0 && c.bytes > c.policy.MaxBytes && c.ll.Len() > 1 {
		c.removeLocked(c.ll.Back(), &c.evictBytes)
	}
}

// templateView is a snapshot of one binding class of a template
// entry, handed to the optimizer's re-cost phase.
type templateView struct {
	asn      abind.Assignment
	topo     *plan.Topology
	baseCost float64
	feasible bool
	stale    bool
	stats    Stats
	// class names the slot the view was read from; borrowed marks a
	// neighboring class's slot standing in because the entry holds
	// nothing for the requested class yet — its accepted re-cost
	// seeds the new class (noteTemplateServed), and its divergence
	// does not condemn the lender (noteDivergence).
	class    string
	borrowed bool
}

// lookupTemplate snapshots the requested binding class of a template
// entry — or, when the entry has never seen that class, a borrowed
// neighbor (preferring the most recently active class) whose
// skeleton is usually right and whose baseline the re-cost phase
// still guards with the ratio check. Counters are not touched — the
// entry is only "hit" once the re-cost phase accepts it (see
// noteTemplateServed), and a fruitless lookup is not counted here
// because the ensuing full search counts its own miss through the
// exact-key Get, keeping one logical optimization at one counter
// tick. Expired entries are dropped.
func (c *PlanCache) lookupTemplate(key, class string) (templateView, bool) {
	if c == nil {
		return templateView{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return templateView{}, false
	}
	e := el.Value.(*cacheEntry)
	if e.kind != templateEntry || len(e.classes) == 0 {
		return templateView{}, false
	}
	if c.expired(e, c.clock()) {
		c.removeLocked(el, &c.evictTTL)
		return templateView{}, false
	}
	from, borrowed := class, false
	slot, ok := e.classes[class]
	if !ok {
		borrowed = true
		from = e.lastClass
		if _, ok := e.classes[from]; !ok {
			// The preferred lender was dropped; fall back to the
			// smallest class key for determinism.
			from = ""
			for k := range e.classes {
				if from == "" || k < from {
					from = k
				}
			}
		}
		slot = e.classes[from]
	}
	return templateView{
		asn:      slot.asn,
		topo:     slot.topo.Clone(),
		baseCost: slot.baseCost,
		feasible: slot.feasible,
		stale:    e.stale,
		stats:    slot.stats,
		class:    from,
		borrowed: borrowed,
	}, true
}

// noteTemplateServed records a successful template hit for a binding
// class: the entry is freshened (epoch vector updated, staleness
// cleared) and counted; a hit on a stale entry additionally counts
// as a revalidation — the lazy path of epoch invalidation. A
// borrowed serve seeds the requested class with the lender's
// skeleton and the accepted re-cost as its own baseline, so the next
// binding of this class compares against its own regime without ever
// paying a full search.
func (c *PlanCache) noteTemplateServed(key, class string, tv templateView, cost float64, feasible bool, epochs map[string]uint64, dists map[string]string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	c.templateHits++
	if tv.stale {
		c.revalidations++
	}
	if tv.borrowed {
		c.borrowedServes++
	}
	el, ok := c.items[key]
	if !ok {
		return
	}
	e := el.Value.(*cacheEntry)
	if e.kind != templateEntry {
		return
	}
	e.stale = false
	if epochs != nil {
		e.epochs = epochs
	}
	if dists != nil {
		e.dists = dists
	}
	if tv.borrowed {
		if lender, ok := e.classes[tv.class]; ok {
			old := e.bytes
			e.classes[class] = &classSlot{
				asn:      lender.asn,
				topo:     lender.topo.Clone(),
				baseCost: cost,
				feasible: feasible,
				stats:    lender.stats,
				hits:     1,
			}
			e.bytes = entrySize(e)
			c.bytes += e.bytes - old
		}
	} else if slot, ok := e.classes[class]; ok {
		slot.hits++
	}
	e.lastClass = class
	e.hits++
	c.ll.MoveToFront(el)
	c.enforceLocked()
}

// noteDivergence reacts to a template hit whose re-estimated cost
// diverged beyond the optimizer's ratio (or whose skeleton no longer
// builds): the binding class's slot is dropped — other classes keep
// their baselines, so a hot/cold workload no longer thrashes the
// whole entry — and the caller falls back to a full search, whose
// exact-key lookup accounts the miss. A borrowed view diverging says
// nothing about the lender's own class, so nothing is dropped; the
// ensuing search seeds the new class.
func (c *PlanCache) noteDivergence(key, class string, borrowed bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.divergences++
	if borrowed {
		return
	}
	el, ok := c.items[key]
	if !ok {
		return
	}
	e := el.Value.(*cacheEntry)
	if e.kind != templateEntry {
		c.removeLocked(el, nil)
		return
	}
	if _, ok := e.classes[class]; !ok {
		return
	}
	old := e.bytes
	delete(e.classes, class)
	if e.lastClass == class {
		e.lastClass = ""
	}
	if len(e.classes) == 0 {
		c.removeLocked(el, nil)
		return
	}
	e.bytes = entrySize(e)
	c.bytes += e.bytes - old
}

// noteSearch counts one full branch-and-bound search run on behalf
// of this cache (i.e. a miss that did real work). Differential tests
// assert amortization through it: N bindings of one template must
// leave Searches at 1.
func (c *PlanCache) noteSearch() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.searches++
	c.mu.Unlock()
}

// InvalidateService reacts to a statistics-epoch bump: exact entries
// that depend on the service are dropped (their keys embed the stale
// statistics fingerprint, so they could never be hit again anyway),
// and template entries are marked stale so their next hit revalidates
// against the fresh statistics. Wire it to the registry with
// Registry.SubscribeEpochs(cache, cache.InvalidateService).
func (c *PlanCache) InvalidateService(name string, epoch uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if old, ok := e.epochs[name]; ok && old != epoch {
			if e.kind == templateEntry {
				e.stale = true
				e.epochs[name] = epoch
			} else {
				c.removeLocked(el, &c.evictEpoch)
			}
		}
		el = next
	}
}

// Len returns the number of cached results.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every entry (counters are preserved).
func (c *PlanCache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.policy.Capacity)
	c.bytes = 0
}

// CacheStats reports cache effectiveness and churn. It is a plain
// comparable value (JSON-friendly for server stats endpoints).
type CacheStats struct {
	// Hits counts served optimizations (template hits included);
	// Misses counts optimizations that found nothing servable and
	// had to search. A template lookup that falls back to the full
	// search counts once, through the search's exact-key lookup.
	Hits, Misses uint64
	// TemplateHits counts hits served from a template entry by
	// re-costing the cached skeleton for new bindings.
	TemplateHits uint64
	// Revalidations counts template hits that first had to
	// revalidate a stale epoch vector against fresh statistics.
	Revalidations uint64
	// Divergences counts template class slots discarded because the
	// re-estimated cost drifted beyond the revalidation ratio (plus
	// borrowed serves that diverged without condemning their lender).
	Divergences uint64
	// BorrowedServes counts template hits served from a neighboring
	// binding class's baseline because the requested class had no slot
	// yet; each one seeds the requested class without a full search.
	BorrowedServes uint64
	// Classes totals the binding-class slots across template entries
	// (≥ the number of template entries).
	Classes int
	// Searches counts full branch-and-bound runs performed on behalf
	// of this cache (misses that did real work).
	Searches uint64
	// Eviction counters by cause.
	EvictedLRU, EvictedTTL, EvictedBytes, EvictedEpoch uint64
	// Occupancy.
	Size, Cap int
	Bytes     int64
	MaxBytes  int64
}

// Stats returns a snapshot of the counters and occupancy.
func (c *PlanCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	classes := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		classes += len(el.Value.(*cacheEntry).classes)
	}
	return CacheStats{
		Hits:           c.hits,
		Misses:         c.misses,
		TemplateHits:   c.templateHits,
		Revalidations:  c.revalidations,
		Divergences:    c.divergences,
		BorrowedServes: c.borrowedServes,
		Classes:        classes,
		Searches:       c.searches,
		EvictedLRU:     c.evictLRU,
		EvictedTTL:     c.evictTTL,
		EvictedBytes:   c.evictBytes,
		EvictedEpoch:   c.evictEpoch,
		Size:           c.ll.Len(),
		Cap:            c.policy.Capacity,
		Bytes:          c.bytes,
		MaxBytes:       c.policy.MaxBytes,
	}
}

// EntryInfo describes one cache entry for introspection endpoints
// (mdqserve GET /cache).
type EntryInfo struct {
	Key      string            `json:"key"`
	Kind     string            `json:"kind"`
	Cost     float64           `json:"cost"`
	Feasible bool              `json:"feasible"`
	Epochs   map[string]uint64 `json:"epochs,omitempty"`
	// Classes maps each binding class of a template entry to its
	// baseline cost (absent on exact entries).
	Classes    map[string]float64 `json:"classes,omitempty"`
	Stale      bool               `json:"stale"`
	Hits       uint64             `json:"hits"`
	Bytes      int64              `json:"bytes"`
	AgeSeconds float64            `json:"age_seconds"`
}

// Entries snapshots every entry, most recently used first.
func (c *PlanCache) Entries() []EntryInfo {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	out := make([]EntryInfo, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		var epochs map[string]uint64
		if len(e.epochs) > 0 {
			epochs = make(map[string]uint64, len(e.epochs))
			for k, v := range e.epochs {
				epochs[k] = v
			}
		}
		info := EntryInfo{
			Key:        e.key,
			Kind:       e.kind.String(),
			Cost:       e.baseCost,
			Feasible:   e.feasible,
			Epochs:     epochs,
			Stale:      e.stale,
			Hits:       e.hits,
			Bytes:      e.bytes,
			AgeSeconds: now.Sub(e.added).Seconds(),
		}
		if len(e.classes) > 0 {
			info.Classes = make(map[string]float64, len(e.classes))
			for cls, s := range e.classes {
				info.Classes[cls] = s.baseCost
			}
			// Report the active class's baseline as the entry cost.
			if s, ok := e.classes[e.lastClass]; ok {
				info.Cost = s.baseCost
				info.Feasible = s.feasible
			}
		}
		out = append(out, info)
	}
	return out
}

// entrySize approximates the retained size of an entry: the key, the
// plan graphs (nodes dominate) and the fixed bookkeeping. It feeds
// the MaxBytes budget; precision matters less than monotonicity in
// plan size.
func entrySize(e *cacheEntry) int64 {
	const (
		entryOverhead = 256
		nodeSize      = 192
	)
	size := int64(entryOverhead + len(e.key))
	planSize := func(p *plan.Plan) int64 {
		if p == nil {
			return 0
		}
		return int64(len(p.Nodes)) * nodeSize
	}
	if e.res != nil {
		size += planSize(e.res.Best)
		for _, a := range e.res.Alternatives {
			size += planSize(a.Plan)
		}
	}
	for cls, s := range e.classes {
		size += 64 + int64(len(cls)) + int64(len(s.asn))*16
		if s.topo != nil {
			size += int64(s.topo.Size()) * 24
		}
	}
	size += int64(len(e.epochs)) * 32
	size += int64(len(e.dists)) * 48
	return size
}

// copyResult deep-copies the plan graphs of a result so cached
// entries and returned values never share mutable nodes. Stats and
// costs are value types; queries, atoms and predicates stay shared
// (they are read-only after resolution).
func copyResult(r *Result) *Result {
	cp := *r
	if r.Best != nil {
		cp.Best = r.Best.Clone()
	}
	if r.Alternatives != nil {
		cp.Alternatives = make([]Scored, len(r.Alternatives))
		for i, a := range r.Alternatives {
			cp.Alternatives[i] = Scored{Plan: a.Plan.Clone(), Cost: a.Cost, Feasible: a.Feasible}
		}
	}
	return &cp
}

// knobKey fingerprints every optimizer knob that changes the search
// outcome: metric, K, estimator configuration, exhaustiveness,
// alternatives, state budget and the caller-provided salt.
// ChooseMethod and a custom DefaultSelectivity function cannot be
// fingerprinted — callers that vary them across optimizations over
// one shared cache must disambiguate via CacheSalt.
func (o *Optimizer) knobKey() string {
	var b strings.Builder
	b.WriteString("||m=")
	b.WriteString(o.metric().Name())
	b.WriteString(";k=")
	b.WriteString(strconv.Itoa(o.K))
	b.WriteString(";fh=")
	b.WriteString(strconv.Itoa(int(o.FetchHeuristic)))
	b.WriteString(";cm=")
	b.WriteString(strconv.Itoa(int(o.Estimator.Mode)))
	b.WriteString(";ej=")
	b.WriteString(strconv.FormatFloat(o.Estimator.DefaultEquiJoin, 'g', -1, 64))
	if o.Estimator.DefaultSelectivity != nil {
		b.WriteString(";sel=custom")
	}
	if o.Estimator.NoValueStats {
		b.WriteString(";nv")
	}
	if o.Exhaustive {
		b.WriteString(";x")
	}
	b.WriteString(";alt=")
	b.WriteString(strconv.Itoa(o.KeepAlternatives))
	b.WriteString(";ms=")
	b.WriteString(strconv.Itoa(o.maxStates()))
	if o.CacheSalt != "" {
		b.WriteString(";salt=")
		b.WriteString(o.CacheSalt)
	}
	return b.String()
}

// cacheKey composes the exact cache key for a query under this
// optimizer's settings: the canonical query signature (atoms,
// constants, patterns, statistics) plus the knob fingerprint, plus
// the shard when one restricts the search — an exact result is
// memoized verbatim, so a shard's best must never answer for another
// shard or for the full space.
func (o *Optimizer) cacheKey(q *cq.Query) string {
	key := q.CanonicalKey() + o.knobKey()
	if o.Shard.enabled() {
		key += ";sh=" + strconv.Itoa(o.Shard.Index) + "/" + strconv.Itoa(o.Shard.Count)
	}
	return key
}

// templateKey composes the template cache key: the constant-masked,
// statistics-free template signature plus the same knob fingerprint.
// Unlike exact keys it is deliberately shard-blind: a template hit
// only ever serves a *skeleton* that is rebuilt and re-costed under
// the current bindings and accepted within RevalidateRatio of its
// baseline, so serving a skeleton found by a different shard (or by
// an unsharded search — the cache-warmup path ships exactly those)
// is the same bounded approximation as serving one found under
// drifted statistics. This is what lets a coordinator's unsharded
// entries warm worker caches and survive fleet resizes.
func (o *Optimizer) templateKey(q *cq.Query) string {
	return "tpl|" + q.TemplateKey() + o.knobKey()
}

package opt

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"mdq/internal/cq"
)

// PlanCache is a thread-safe LRU cache of optimization results keyed
// by the canonical query signature (cq.Query.CanonicalKey) combined
// with the optimizer's own knobs. Repeated queries — the common case
// for a server answering templated multi-domain queries — skip the
// branch-and-bound entirely.
//
// Cached plans are stored frozen: Get returns a deep copy of the
// plan graphs, so callers may freely re-annotate fetch factors or
// cardinalities without corrupting the cached entry, and concurrent
// Gets never alias each other's plans.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses uint64
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key string
	res *Result
}

// NewPlanCache creates a cache holding up to capacity results;
// capacity <= 0 defaults to 128.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &PlanCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns a private copy of the cached result for key, marking
// the entry most recently used.
func (c *PlanCache) Get(key string) (*Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return copyResult(el.Value.(*cacheEntry).res), true
}

// Put stores a private copy of the result under key, evicting the
// least recently used entry when the cache is full.
func (c *PlanCache) Put(key string, res *Result) {
	if c == nil || res == nil {
		return
	}
	frozen := copyResult(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = frozen
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: frozen})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every entry (counters are preserved).
func (c *PlanCache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.cap)
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	Hits, Misses uint64
	Size, Cap    int
}

// Stats returns a snapshot of the hit/miss counters and occupancy.
func (c *PlanCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: c.ll.Len(), Cap: c.cap}
}

// copyResult deep-copies the plan graphs of a result so cached
// entries and returned values never share mutable nodes. Stats and
// costs are value types; queries, atoms and predicates stay shared
// (they are read-only after resolution).
func copyResult(r *Result) *Result {
	cp := *r
	if r.Best != nil {
		cp.Best = r.Best.Clone()
	}
	if r.Alternatives != nil {
		cp.Alternatives = make([]Scored, len(r.Alternatives))
		for i, a := range r.Alternatives {
			cp.Alternatives[i] = Scored{Plan: a.Plan.Clone(), Cost: a.Cost, Feasible: a.Feasible}
		}
	}
	return &cp
}

// cacheKey composes the full cache key for a query under this
// optimizer's settings. The query part comes from cq (atoms,
// constants, patterns, statistics); the optimizer part appends every
// knob that changes the search outcome: metric, K, estimator
// configuration, exhaustiveness, alternatives, state budget and the
// caller-provided salt. ChooseMethod and a custom DefaultSelectivity
// function cannot be fingerprinted — callers that vary them across
// optimizations over one shared cache must disambiguate via
// CacheSalt.
func (o *Optimizer) cacheKey(q *cq.Query) string {
	var b strings.Builder
	b.WriteString(q.CanonicalKey())
	b.WriteString("||m=")
	b.WriteString(o.metric().Name())
	b.WriteString(";k=")
	b.WriteString(strconv.Itoa(o.K))
	b.WriteString(";fh=")
	b.WriteString(strconv.Itoa(int(o.FetchHeuristic)))
	b.WriteString(";cm=")
	b.WriteString(strconv.Itoa(int(o.Estimator.Mode)))
	b.WriteString(";ej=")
	b.WriteString(strconv.FormatFloat(o.Estimator.DefaultEquiJoin, 'g', -1, 64))
	if o.Estimator.DefaultSelectivity != nil {
		b.WriteString(";sel=custom")
	}
	if o.Exhaustive {
		b.WriteString(";x")
	}
	b.WriteString(";alt=")
	b.WriteString(strconv.Itoa(o.KeepAlternatives))
	b.WriteString(";ms=")
	b.WriteString(strconv.Itoa(o.maxStates()))
	if o.CacheSalt != "" {
		b.WriteString(";salt=")
		b.WriteString(o.CacheSalt)
	}
	return b.String()
}

package opt

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives the cache's time for TTL tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

// TestPlanCacheTTLEviction: entries older than the TTL miss and are
// dropped on access, counted as TTL evictions.
func TestPlanCacheTTLEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := NewPlanCacheWith(Policy{Capacity: 8, TTL: time.Minute})
	c.now = clk.now
	c.Put("a", &Result{Cost: 1})
	clk.advance(30 * time.Second)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry missing before TTL")
	}
	clk.advance(31 * time.Second) // age 61s > TTL (Get does not refresh age)
	if _, ok := c.Get("a"); ok {
		t.Fatal("expired entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry retained (%d entries)", c.Len())
	}
	if st := c.Stats(); st.EvictedTTL != 1 {
		t.Fatalf("TTL evictions = %d, want 1", st.EvictedTTL)
	}
	// Re-putting restarts the clock.
	c.Put("a", &Result{Cost: 2})
	clk.advance(59 * time.Second)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh entry expired early")
	}
}

// TestPlanCacheByteBudget: inserts beyond the byte budget evict LRU
// entries until the budget holds (but never the newest entry).
func TestPlanCacheByteBudget(t *testing.T) {
	c := NewPlanCacheWith(Policy{Capacity: 1024, MaxBytes: 2000})
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("k%d", i), &Result{Cost: float64(i)})
	}
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, st.MaxBytes)
	}
	if st.EvictedBytes == 0 {
		t.Fatal("no byte evictions recorded")
	}
	if c.Len() == 0 {
		t.Fatal("budget evicted everything including the newest entry")
	}
	// The newest entry survives.
	if _, ok := c.Get("k7"); !ok {
		t.Fatal("newest entry evicted by byte budget")
	}
	// The oldest is gone.
	if _, ok := c.Get("k0"); ok {
		t.Fatal("oldest entry survived a binding byte budget")
	}
}

// TestPlanCacheByteAccounting: bytes track inserts, overwrites and
// purges exactly.
func TestPlanCacheByteAccounting(t *testing.T) {
	c := NewPlanCacheWith(Policy{Capacity: 8})
	c.Put("a", &Result{Cost: 1})
	one := c.Stats().Bytes
	if one <= 0 {
		t.Fatal("entry has no size")
	}
	c.Put("a", &Result{Cost: 2}) // overwrite, same shape
	if got := c.Stats().Bytes; got != one {
		t.Fatalf("overwrite changed accounted bytes: %d vs %d", got, one)
	}
	c.Put("b", &Result{Cost: 3})
	if got := c.Stats().Bytes; got <= one {
		t.Fatalf("second entry not accounted: %d", got)
	}
	c.Purge()
	if got := c.Stats().Bytes; got != 0 {
		t.Fatalf("purge left %d bytes accounted", got)
	}
}

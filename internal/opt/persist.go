package opt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"mdq/internal/abind"
	"mdq/internal/plan"
	"mdq/internal/schema"
)

// FingerprintSource reports a stable fingerprint of a service's
// current per-attribute value distributions (empty when the service
// is unknown or has none); service.Registry implements it. The
// optimizer snapshots fingerprints into template cache entries, and
// importing caches use the source to decide whether a deserialized
// skeleton may be served fresh or must revalidate first.
type FingerprintSource interface {
	DistFingerprint(service string) string
}

// TemplateWireEntry is the serializable form of one template-level
// plan cache entry: everything a remote (or restarted) cache needs to
// serve warm skeletons — the template key, the winning access-pattern
// assignment and topology, the baseline cost the revalidation ratio
// compares against, and the epoch vector plus per-service
// distribution fingerprints that let the importer judge statistical
// agreement. Exact entries are deliberately not serialized: their
// keys embed the exporter's statistics fingerprints, which another
// process (or a later restart) will not reproduce, so they could
// never be hit.
type TemplateWireEntry struct {
	// Key is the full template cache key (template signature + knob
	// fingerprint). Both sides must run compatible optimizer settings
	// for keys to match; a mismatched key is simply never hit.
	Key string `json:"key"`
	// Class is the binding class the skeleton's baseline belongs to —
	// one wire entry per key+class pair. Files written before
	// per-class baselines carry no class and import as class "",
	// which any binding may borrow from (see PlanCache).
	Class string `json:"class,omitempty"`
	// Assignment holds one access pattern per query atom, in the
	// "ioo" notation.
	Assignment []string `json:"assignment"`
	// Topology is the winning partial order over the atoms.
	Topology *plan.Topology `json:"topology"`
	// BaseCost is the plan cost at the exporter's last full search.
	BaseCost float64 `json:"base_cost"`
	// Feasible reports whether that search reached k.
	Feasible bool `json:"feasible"`
	// Stats are the effort counters of the original search.
	Stats Stats `json:"stats"`
	// Epochs is the exporter's statistics-epoch vector.
	Epochs map[string]uint64 `json:"epochs,omitempty"`
	// Dists maps each service to the fingerprint of its value
	// distributions at the exporter (empty string: no statistics).
	Dists map[string]string `json:"dists,omitempty"`
}

// cacheFile is the on-disk envelope of PlanCache.Save/Load.
type cacheFile struct {
	Version   int                 `json:"version"`
	Templates []TemplateWireEntry `json:"templates"`
}

// cacheFileVersion guards the Save/Load format.
const cacheFileVersion = 1

// ExportTemplates snapshots every template entry in wire form, most
// recently used first, one wire entry per binding class (classes
// sorted for stable output). Exact entries are skipped (see
// TemplateWireEntry).
func (c *PlanCache) ExportTemplates() []TemplateWireEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []TemplateWireEntry
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if e.kind != templateEntry {
			continue
		}
		classes := make([]string, 0, len(e.classes))
		for cls := range e.classes {
			classes = append(classes, cls)
		}
		sort.Strings(classes)
		for _, cls := range classes {
			s := e.classes[cls]
			if s.topo == nil {
				continue
			}
			w := TemplateWireEntry{
				Key:      e.key,
				Class:    cls,
				Topology: s.topo.Clone(),
				BaseCost: s.baseCost,
				Feasible: s.feasible,
				Stats:    s.stats,
				Epochs:   copyEpochs(e.epochs),
				Dists:    copyDists(e.dists),
			}
			for _, p := range s.asn {
				w.Assignment = append(w.Assignment, p.String())
			}
			out = append(out, w)
		}
	}
	return out
}

// ImportTemplates installs wire entries as template entries and
// returns how many were accepted (malformed entries are skipped). An
// imported skeleton enters fresh only when src confirms that every
// service's local distribution fingerprint matches the exporter's;
// otherwise — src nil, fingerprints absent, or any mismatch — it
// enters stale, so the existing revalidation machinery re-costs it
// against local statistics before it is ever served
// (Optimizer.OptimizeTemplate reports such serves as Revalidated).
func (c *PlanCache) ImportTemplates(entries []TemplateWireEntry, src FingerprintSource) int {
	if c == nil {
		return 0
	}
	n := 0
	for _, w := range entries {
		slot, err := w.toSlot()
		if err != nil {
			continue
		}
		stale := !fingerprintsAgree(w.Dists, src)
		c.upsertClass(w.Key, w.Class, slot, copyEpochs(w.Epochs), copyDists(w.Dists), stale)
		n++
	}
	return n
}

// toSlot validates and converts a wire entry into one binding
// class's slot.
func (w TemplateWireEntry) toSlot() (*classSlot, error) {
	if w.Key == "" || w.Topology == nil {
		return nil, fmt.Errorf("opt: wire entry without key or topology")
	}
	if len(w.Assignment) != w.Topology.Size() {
		return nil, fmt.Errorf("opt: wire entry has %d patterns for %d atoms", len(w.Assignment), w.Topology.Size())
	}
	asn := make(abind.Assignment, len(w.Assignment))
	for i, s := range w.Assignment {
		p, err := schema.ParsePattern(s)
		if err != nil {
			return nil, err
		}
		asn[i] = p
	}
	return &classSlot{
		asn:      asn,
		topo:     w.Topology.Clone(),
		baseCost: w.BaseCost,
		feasible: w.Feasible,
		stats:    w.Stats,
	}, nil
}

// fingerprintsAgree reports whether the local statistics match the
// exporter's for every service of the entry. No recorded
// fingerprints, or no source to check against, count as disagreement:
// the safe default is to revalidate.
func fingerprintsAgree(dists map[string]string, src FingerprintSource) bool {
	if len(dists) == 0 || src == nil {
		return false
	}
	for svc, fp := range dists {
		if src.DistFingerprint(svc) != fp {
			return false
		}
	}
	return true
}

// Save serializes the cache's template entries as JSON — the
// persistence half of cache warmup: a server writes it at shutdown
// and Loads it at the next start, so template skeletons survive
// restarts and the first binding of a known template skips the
// branch-and-bound.
func (c *PlanCache) Save(w io.Writer) error {
	entries := c.ExportTemplates()
	if entries == nil {
		entries = []TemplateWireEntry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(cacheFile{Version: cacheFileVersion, Templates: entries})
}

// Load reads a Save stream and imports its template entries,
// returning how many were accepted. Entries enter stale unless src
// confirms the local value distributions match the saved fingerprints
// (see ImportTemplates); pass the registry as src.
func (c *PlanCache) Load(r io.Reader, src FingerprintSource) (int, error) {
	var f cacheFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return 0, err
	}
	if f.Version != cacheFileVersion {
		return 0, fmt.Errorf("opt: cache file version %d, want %d", f.Version, cacheFileVersion)
	}
	return c.ImportTemplates(f.Templates, src), nil
}

// SaveFile persists the template entries to a file atomically (write
// to a sibling temp file, then rename) — the shutdown half of the
// -cache-file flag on mdqserve and mdqworker.
func (c *PlanCache) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile imports a SaveFile from disk (see Load). A missing file
// is reported via os.IsNotExist on the returned error — first starts
// treat it as an empty cache.
func (c *PlanCache) LoadFile(path string, src FingerprintSource) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return c.Load(f, src)
}

// copyEpochs clones an epoch vector (nil stays nil).
func copyEpochs(m map[string]uint64) map[string]uint64 {
	if m == nil {
		return nil
	}
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// copyDists clones a fingerprint vector (nil stays nil).
func copyDists(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

package opt_test

import (
	"strings"
	"testing"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/fetch"
	. "mdq/internal/opt"
	"mdq/internal/simweb"
)

// smallTravelText is a two-atom slice of the running example — conf
// seeding a chunked hotel lookup — small enough that cache tests pay
// milliseconds per search instead of seconds.
const smallTravelText = `
q(Conf, City, Hotel, HPrice) :-
    conf('DB', Conf, Start, End, City),
    hotel(Hotel, City, 'luxury', Start, End, HPrice).`

func travelQuery(t *testing.T, text string) (*simweb.TravelWorld, *cq.Query) {
	t.Helper()
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := cq.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve(w.Schema); err != nil {
		t.Fatal(err)
	}
	return w, q
}

// TestPlanCacheHitMiss: the first optimization misses and fills the
// cache, the second hits, returns the identical plan, and skips the
// search; counters track both.
func TestPlanCacheHitMiss(t *testing.T) {
	w, q := travelQuery(t, smallTravelText)
	c := NewPlanCache(8)
	o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: w.Registry.MethodChooser(), Cache: c}
	r1, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first optimization reported a cache hit")
	}
	r2, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("second optimization missed the cache")
	}
	if r2.Cost != r1.Cost || r2.Best.Signature() != r1.Best.Signature() {
		t.Fatalf("cached plan differs: %s/%g vs %s/%g",
			r2.Best.Signature(), r2.Cost, r1.Best.Signature(), r1.Cost)
	}
	if r2.Stats != r1.Stats {
		t.Errorf("cached result lost the original search stats")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("cache stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

// TestPlanCacheReturnsPrivateCopies: mutating a returned plan (as
// executors do when re-assigning fetch factors) must not corrupt the
// cached entry or other callers' copies.
func TestPlanCacheReturnsPrivateCopies(t *testing.T) {
	w, q := travelQuery(t, smallTravelText)
	c := NewPlanCache(8)
	o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: w.Registry.MethodChooser(), Cache: c}
	r1, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	want := r1.Best.Signature()
	for _, n := range r1.Best.ChunkedNodes() {
		n.Fetches += 100
	}
	r2, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("expected a cache hit")
	}
	if got := r2.Best.Signature(); got != want {
		t.Fatalf("cached plan absorbed caller mutation: %s, want %s", got, want)
	}
	if r2.Best == r1.Best {
		t.Fatal("cache returned an aliased plan")
	}
}

// TestPlanCacheDistinguishesConstants: two queries differing only in
// a constant describe different optimization problems and must never
// share an entry.
func TestPlanCacheDistinguishesConstants(t *testing.T) {
	_, q1 := travelQuery(t, smallTravelText)
	text2 := strings.Replace(smallTravelText, "'DB'", "'AI'", 1)
	if text2 == smallTravelText {
		t.Fatal("running example text no longer contains the 'DB' constant")
	}
	w, q2 := travelQuery(t, text2)
	if q1.CanonicalKey() == q2.CanonicalKey() {
		t.Fatal("queries differing only in a constant share a canonical key")
	}
	c := NewPlanCache(8)
	o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: w.Registry.MethodChooser(), Cache: c}
	if _, err := o.Optimize(q1); err != nil {
		t.Fatal(err)
	}
	r, err := o.Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Fatal("constant-differing query served from the cache")
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
}

// TestPlanCacheDistinguishesKnobs: the optimizer mixes metric, K and
// salt into the key, so changing any of them bypasses stale entries.
func TestPlanCacheDistinguishesKnobs(t *testing.T) {
	w, q := travelQuery(t, smallTravelText)
	c := NewPlanCache(16)
	base := Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: w.Registry.MethodChooser(), Cache: c}
	if _, err := base.Optimize(q); err != nil {
		t.Fatal(err)
	}
	variants := []Optimizer{base, base, base, base}
	variants[0].K = 5
	variants[1].Metric = cost.RequestResponse{}
	variants[2].CacheSalt = "reg@2"
	variants[3].FetchHeuristic = fetch.Square
	for i := range variants {
		r, err := variants[i].Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cached {
			t.Errorf("variant %d served a stale cached plan", i)
		}
	}
	again, err := base.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("original settings no longer hit their own entry")
	}
}

// TestPlanCacheLRUEviction: inserting beyond capacity evicts the
// least recently used entry; a Get refreshes recency.
func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2)
	c.Put("a", &Result{Cost: 1})
	c.Put("b", &Result{Cost: 2})
	if _, ok := c.Get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("entry a missing before eviction")
	}
	c.Put("c", &Result{Cost: 3})
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Error("least recently used entry b survived eviction")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Get(key); !ok {
			t.Errorf("entry %s evicted out of LRU order", key)
		}
	}
	c.Put("a", &Result{Cost: 9}) // overwrite refreshes, no growth
	if c.Len() != 2 {
		t.Errorf("overwrite grew the cache to %d entries", c.Len())
	}
	if r, _ := c.Get("a"); r == nil || r.Cost != 9 {
		t.Error("overwrite did not replace the entry")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Error("purge left entries behind")
	}
}

// TestPlanCacheNilReceiver: a nil cache is a valid no-op, so callers
// can thread an optional cache without guards.
func TestPlanCacheNilReceiver(t *testing.T) {
	var c *PlanCache
	if _, ok := c.Get("k"); ok {
		t.Error("nil cache reported a hit")
	}
	c.Put("k", &Result{})
	if c.Len() != 0 || c.Stats() != (CacheStats{}) {
		t.Error("nil cache not empty")
	}
}

// TestCanonicalKeyStructural: the key ignores the query name but
// covers head, predicates and profiled statistics.
func TestCanonicalKeyStructural(t *testing.T) {
	_, q1 := travelQuery(t, smallTravelText)
	renamed := strings.Replace(smallTravelText, "q(", "other(", 1)
	_, q2 := travelQuery(t, renamed)
	if q1.CanonicalKey() != q2.CanonicalKey() {
		t.Error("renaming the query changed its canonical key")
	}
	// A re-profiled service (changed statistics) must change the key,
	// invalidating plans computed against the old profile.
	w3, q3 := travelQuery(t, smallTravelText)
	_ = w3
	before := q3.CanonicalKey()
	q3.Atoms[0].Sig.Stats.ERSPI *= 2
	if q3.CanonicalKey() == before {
		t.Error("changing profiled statistics did not change the canonical key")
	}
	q3.Atoms[0].Sig.Stats.ERSPI /= 2
}

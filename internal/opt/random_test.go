package opt_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mdq/internal/abind"
	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/fetch"
	. "mdq/internal/opt"
	"mdq/internal/plan"
	"mdq/internal/schema"
)

// randomResolvedQuery builds a random query over 2–4 services with
// 1–2 feasible patterns each, guaranteed permissible: service i
// produces variable Xi and may require X(i-1).
func randomResolvedQuery(rng *rand.Rand) (*cq.Query, bool) {
	n := 2 + rng.Intn(3)
	q := &cq.Query{Name: "r"}
	for i := 0; i < n; i++ {
		arity := 2
		attrs := []schema.Attribute{
			{Name: "A", Domain: schema.Domain{Name: "D", Kind: schema.NumberValue, DistinctValues: 4}},
			{Name: "B", Domain: schema.Domain{Name: "D", Kind: schema.NumberValue, DistinctValues: 4}},
		}
		patterns := []schema.AccessPattern{}
		if i == 0 || rng.Intn(2) == 0 {
			patterns = append(patterns, schema.MustPattern("oo"))
		}
		patterns = append(patterns, schema.MustPattern("io"))
		chunk := 0
		kind := schema.Exact
		if rng.Intn(3) == 0 {
			chunk = 2 + rng.Intn(4)
			kind = schema.Search
		}
		sig := &schema.Signature{
			Name:     fmt.Sprintf("s%d", i),
			Attrs:    attrs[:arity],
			Patterns: patterns,
			Kind:     kind,
			Stats: schema.Stats{
				ERSPI:        0.5 + rng.Float64()*4,
				ChunkSize:    chunk,
				ResponseTime: schemaMs(100 + rng.Intn(2000)),
			},
		}
		prev := i - 1
		if i == 0 {
			prev = i // self chain start
		}
		q.Atoms = append(q.Atoms, &cq.Atom{
			Service: sig.Name,
			Terms:   []cq.Term{cq.V(fmt.Sprintf("X%d", prev)), cq.V(fmt.Sprintf("X%d", i))},
			Index:   i,
			Sig:     sig,
		})
	}
	// Random predicate.
	if rng.Intn(2) == 0 {
		q.Preds = append(q.Preds, &cq.Predicate{
			L:           cq.TermExpr(cq.V(fmt.Sprintf("X%d", n-1))),
			R:           cq.TermExpr(cq.C(schema.N(float64(rng.Intn(4))))),
			Op:          cq.Ge,
			Selectivity: 0.25 + rng.Float64()/2,
		})
	}
	perm, err := abind.Enumerate(q)
	if err != nil || len(perm) == 0 {
		return q, false
	}
	return q, true
}

// TestBranchAndBoundMatchesExhaustiveOnRandomWorlds: the pruned
// search returns the exhaustive optimum on randomized schemas,
// patterns, statistics and metrics — the §2.4 soundness property
// beyond the single running example.
func TestBranchAndBoundMatchesExhaustiveOnRandomWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(562))
	metrics := []cost.Metric{cost.ExecTime{}, cost.RequestResponse{}, cost.SumCost{}, cost.Bottleneck{}}
	checked := 0
	for trial := 0; checked < 20 && trial < 60; trial++ {
		q, ok := randomResolvedQuery(rng)
		if !ok {
			continue
		}
		metric := metrics[rng.Intn(len(metrics))]
		k := 1 + rng.Intn(8)
		mode := card.CacheMode(rng.Intn(3))
		pruned := &Optimizer{Metric: metric, Estimator: card.Config{Mode: mode}, K: k}
		full := &Optimizer{Metric: metric, Estimator: card.Config{Mode: mode}, K: k, Exhaustive: true}
		rp, err1 := pruned.Optimize(q)
		rf, err2 := full.Optimize(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: pruned err=%v, full err=%v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if rp.Feasible != rf.Feasible {
			t.Fatalf("trial %d (%s, k=%d): feasibility differs: %v vs %v\nquery %s",
				trial, metric.Name(), k, rp.Feasible, rf.Feasible, q)
		}
		if rp.Cost != rf.Cost {
			t.Fatalf("trial %d (%s, k=%d, cache %v): pruned cost %g != exhaustive %g\nquery %s\npruned:\n%s\nfull:\n%s",
				trial, metric.Name(), k, mode, rp.Cost, rf.Cost, q, rp.Best.ASCII(), rf.Best.ASCII())
		}
		if rp.Stats.Leaves > rf.Stats.Leaves {
			t.Fatalf("trial %d: pruned search costed more plans than exhaustive", trial)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d random instances checked", checked)
	}
}

// TestTopologiesRespectBindings: every enumerated topology keeps
// each atom callable after its predecessors, on random instances.
func TestTopologiesRespectBindings(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		q, ok := randomResolvedQuery(rng)
		if !ok {
			continue
		}
		perm, err := abind.Enumerate(q)
		if err != nil || len(perm) == 0 {
			continue
		}
		asn := perm[rng.Intn(len(perm))]
		for _, topo := range EnumerateTopologies(q, asn) {
			if !topo.IsPartialOrder() {
				t.Fatalf("trial %d: invalid order %s", trial, topo)
			}
			if _, err := plan.Build(q, asn, topo, plan.Options{}); err != nil {
				t.Fatalf("trial %d: unbuildable topology %s: %v", trial, topo, err)
			}
		}
	}
}

// TestFetchAssignerAgreesWithClosedFormSingle: with exactly one
// chunked service on the output path, the assigner's vector matches
// Eq. 5's ⌈k/(Ξ·cs)⌉ on random parameters.
func TestFetchAssignerAgreesWithClosedFormSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		cs := 2 + rng.Intn(9)
		bulk := 0.5 + rng.Float64()*3
		k := 1 + rng.Intn(60)
		sig := &schema.Signature{
			Name: "bulk",
			Attrs: []schema.Attribute{
				{Name: "A", Domain: schema.DomNumber},
			},
			Patterns: []schema.AccessPattern{schema.MustPattern("o")},
			Stats:    schema.Stats{ERSPI: bulk, ResponseTime: schemaMs(500)},
		}
		chunked := &schema.Signature{
			Name: "paged",
			Attrs: []schema.Attribute{
				{Name: "A", Domain: schema.DomNumber},
				{Name: "B", Domain: schema.DomNumber},
			},
			Patterns: []schema.AccessPattern{schema.MustPattern("io")},
			Kind:     schema.Search,
			Stats:    schema.Stats{ERSPI: 10, ChunkSize: cs, ResponseTime: schemaMs(900)},
		}
		q := &cq.Query{Name: "cf"}
		q.Atoms = append(q.Atoms,
			&cq.Atom{Service: "bulk", Terms: []cq.Term{cq.V("X")}, Index: 0, Sig: sig},
			&cq.Atom{Service: "paged", Terms: []cq.Term{cq.V("X"), cq.V("Y")}, Index: 1, Sig: chunked},
		)
		p, err := plan.Build(q, abind.Assignment{schema.MustPattern("o"), schema.MustPattern("io")},
			plan.Chain([]int{0, 1}), plan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fa := &fetch.Assigner{Estimator: card.Config{Mode: card.OneCall}, Metric: cost.RequestResponse{}, K: k}
		res := fa.Assign(p)
		if !res.Feasible {
			t.Fatalf("trial %d infeasible (k=%d, cs=%d, bulk=%g)", trial, k, cs, bulk)
		}
		want := fetch.SingleChunked(k, bulk, cs)
		if res.Vector[0] != want {
			t.Fatalf("trial %d: assigner F=%d, Eq.5 F=%d (k=%d, Ξ=%g, cs=%d)",
				trial, res.Vector[0], want, k, bulk, cs)
		}
	}
}

package opt

import (
	"fmt"
	"math"

	"mdq/internal/cq"
	"mdq/internal/fetch"
	"mdq/internal/plan"
)

// DefaultRevalidateRatio is the cost-divergence bound used when
// Optimizer.RevalidateRatio is unset: a template skeleton whose
// re-estimated cost is more than 4× (or less than ¼ of) the cost
// recorded at its last full search is considered diverged and a
// fresh branch-and-bound runs.
//
// Divergence has two independent sources, both priced by the same
// re-cost phase: statistics drift (a service's profile was refreshed
// since the search) and binding drift (the new constants hit a very
// different region of a profiled value distribution). A worked
// example of the second, on the simweb Zipf world (catalog tags
// follow a Zipf law, value distributions profiled at registration):
//
//	tpl: q(Item, Score) :- catalog($tag, Item), review(Item, Score), Score >= 4.
//
//	bind tag=tag-00  → miss: full search. Plan catalog→review, cost
//	                   C₀ ≈ 104 (the head tag matches ~29% of the
//	                   catalog). Skeleton cached with baseCost C₀.
//	bind tag=tag-01  → template hit: skeleton rebuilt for tag-01,
//	                   re-cost C₁ ≈ C₀/2 (frequency ratio 2^1.1).
//	                   C₀/C₁ < 4 ⇒ served, its own cost reported.
//	bind tag=tag-49  → re-cost C₄₉ ≈ C₀/50 (tail of the Zipf law).
//	                   C₀/C₄₉ > 4 ⇒ noteDivergence drops the entry, a
//	                   full search runs (the tail tag may even prefer
//	                   a different plan), and its result re-seeds the
//	                   template entry with baseCost C₄₉.
//
// Under the uniform model (Config.NoValueStats) every binding
// re-costs to exactly baseCost and the fallback never fires — which
// is why it effectively did not fire before value distributions
// existed.
//
// Baselines are kept per *binding class* (see Optimizer.bindingClass
// and classSlot): bindings are bucketed by MCV membership and the
// log-ratio band of the selectivity their constants price to, and
// each class keeps its own skeleton and cost baseline. A workload
// alternating between bindings whose costs sit more than the ratio
// apart (head and tail of a heavy Zipf law) therefore pays at most
// one search per class — often zero, since a new class first borrows
// a neighbor's skeleton and, when the re-cost lands within the
// ratio, seeds its own baseline from it — instead of re-seeding a
// single scalar on every flip.
const DefaultRevalidateRatio = 4.0

func (o *Optimizer) revalidateRatio() float64 {
	if o.RevalidateRatio <= 1 {
		return DefaultRevalidateRatio
	}
	return o.RevalidateRatio
}

// epochVector snapshots the statistics epoch of every service the
// query touches (0 when no epoch source is wired — push invalidation
// then keys off the service names alone).
func (o *Optimizer) epochVector(q *cq.Query) map[string]uint64 {
	m := make(map[string]uint64, len(q.Atoms))
	for _, a := range q.Atoms {
		if _, ok := m[a.Service]; ok {
			continue
		}
		var e uint64
		if o.Epochs != nil {
			e = o.Epochs.Epoch(a.Service)
		}
		m[a.Service] = e
	}
	return m
}

// distVector snapshots the value-distribution fingerprint of every
// service the query touches, when the epoch source can provide them
// (service.Registry implements FingerprintSource). Template cache
// entries carry the vector so that, serialized and shipped to another
// process, the importing cache can check its local statistics against
// the exporter's before serving the skeleton fresh.
func (o *Optimizer) distVector(q *cq.Query) map[string]string {
	src, ok := o.Epochs.(FingerprintSource)
	if !ok {
		return nil
	}
	m := make(map[string]string, len(q.Atoms))
	for _, a := range q.Atoms {
		if _, ok := m[a.Service]; ok {
			continue
		}
		m[a.Service] = src.DistFingerprint(a.Service)
	}
	return m
}

// OptimizeTemplate optimizes a bound query through the template level
// of the plan cache: queries that differ only in constant values (the
// bindings of one cq.Template) share a single cache entry holding the
// winning plan skeleton of one branch-and-bound search. On a hit only
// the cheap cost phase re-runs — the skeleton is rebuilt for the new
// bindings and phase 3 re-estimates the selectivity and fetch vectors
// under the current statistics. When the re-estimated cost diverges
// from the skeleton's last full-search cost beyond RevalidateRatio
// (statistics drifted so far the cached structure is suspect), the
// entry is discarded and a full search runs instead.
//
// Without a cache this is exactly Optimize. Alternatives
// (KeepAlternatives) are only populated by full searches, never by
// template hits.
//
// Under an external Bound (distributed shard searches) the skeleton
// cached on a miss may come from a bound-truncated walk: a shard
// whose true best was already beaten by another shard's bound can
// return — and memoize — a slightly worse plan of its shard. This is
// accepted by design: the winning shard's search is never truncated
// below its own best (pruning is strict, so optimal-cost plans
// survive any valid bound), and a later serve of a non-winning
// skeleton is still a valid plan re-costed within RevalidateRatio of
// its baseline — the exact relaxation template serving already makes
// for statistics drift. Exact results are never cached under a
// bound (see Optimizer.Bound).
func (o *Optimizer) OptimizeTemplate(q *cq.Query) (*Result, error) {
	if o.Cache == nil {
		return o.Optimize(q)
	}
	for _, a := range q.Atoms {
		if a.Sig == nil {
			return nil, fmt.Errorf("opt: query %s is not resolved against a schema", q.Name)
		}
	}
	// The budget gate applies to template serving too: even a cheap
	// re-cost must not run for a query whose deadline already passed.
	if err := o.budgetErr(); err != nil {
		return nil, err
	}
	csp := o.Span.Child("opt.cache.template")
	tkey := o.templateKey(q)
	class := o.bindingClass(q)
	csp.Set("binding_class", class)
	if tv, ok := o.Cache.lookupTemplate(tkey, class); ok {
		if res := o.recost(q, tkey, class, tv); res != nil {
			if csp != nil {
				if res.Revalidated {
					csp.Set("class", "revalidated")
				} else {
					csp.Set("class", "template")
				}
				if tv.borrowed {
					csp.Set("borrowed_from", tv.class)
				}
				csp.End()
			}
			res.BindingClass = class
			return res, nil
		}
	}
	if csp != nil {
		csp.Set("class", "miss")
		csp.End()
	}
	res, err := o.Optimize(q)
	if err != nil {
		return nil, err
	}
	res.BindingClass = class
	o.Cache.putTemplate(tkey, class, res, o.epochVector(q), o.distVector(q))
	return res, nil
}

// recost runs the cheap phase of a template hit: rebuild the cached
// skeleton against the bound query, assign fetch factors under the
// current statistics, and accept the plan when its cost stayed within
// the revalidation ratio of the binding class's baseline (a borrowed
// neighbor class's baseline when this class has no slot yet; its
// accepted re-cost then seeds the class). Returns nil when the caller
// must fall back to a full search (the class slot is then already
// dropped — other classes keep theirs).
func (o *Optimizer) recost(q *cq.Query, key, class string, tv templateView) *Result {
	if len(tv.asn) != len(q.Atoms) {
		o.Cache.noteDivergence(key, class, tv.borrowed)
		return nil
	}
	p, err := plan.Build(q, tv.asn, tv.topo, plan.Options{ChooseMethod: o.ChooseMethod})
	if err != nil {
		o.Cache.noteDivergence(key, class, tv.borrowed)
		return nil
	}
	if err := p.Validate(); err != nil {
		o.Cache.noteDivergence(key, class, tv.borrowed)
		return nil
	}
	assigner := &fetch.Assigner{
		Estimator: o.Estimator,
		Metric:    o.metric(),
		K:         o.K,
		Heuristic: o.FetchHeuristic,
	}
	fr := assigner.Assign(p)
	feasible := fr.Feasible || o.K <= 0
	if !feasible && tv.feasible {
		// The skeleton reached k under the old statistics but no
		// longer does: the structure itself is stale.
		o.Cache.noteDivergence(key, class, tv.borrowed)
		return nil
	}
	if costDiverged(fr.Cost, tv.baseCost, o.revalidateRatio()) {
		o.Cache.noteDivergence(key, class, tv.borrowed)
		return nil
	}
	o.Cache.noteTemplateServed(key, class, tv, fr.Cost, feasible, o.epochVector(q), o.distVector(q))
	return &Result{
		Best:        p,
		Cost:        fr.Cost,
		Feasible:    feasible,
		Stats:       tv.stats,
		Cached:      true,
		TemplateHit: true,
		Revalidated: tv.stale,
	}
}

// UniformCost re-prices a result's chosen plan with the
// value-distribution layer disabled: the cost the same plan would be
// assigned under the paper's uniform model. CLIs print it next to
// the value-sensitive estimate so the histograms' effect per binding
// is visible. The plan is cloned, so the result's annotations are
// untouched.
func (o *Optimizer) UniformCost(res *Result) float64 {
	if res == nil || res.Best == nil {
		return 0
	}
	clone := res.Best.Clone()
	cfg := o.Estimator
	cfg.NoValueStats = true
	cfg.Annotate(clone)
	return o.metric().Cost(clone)
}

// costDiverged reports whether the re-estimated cost left the
// [base/ratio, base·ratio] band around the baseline.
func costDiverged(got, base, ratio float64) bool {
	if math.IsInf(got, 1) || math.IsInf(base, 1) {
		return got != base
	}
	if got <= 0 || base <= 0 {
		return got != base
	}
	r := got / base
	if r < 1 {
		r = 1 / r
	}
	return r > ratio
}

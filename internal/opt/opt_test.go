package opt_test

import (
	"fmt"
	"testing"

	"mdq/internal/abind"
	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	. "mdq/internal/opt"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/simweb"
)

// freeQuery builds a query of n atoms with no binding constraints
// (every service has a single all-output pattern), so every partial
// order over the atoms is a valid topology.
func freeQuery(n int) (*cq.Query, abind.Assignment) {
	q := &cq.Query{Name: "free"}
	asn := make(abind.Assignment, n)
	for i := 0; i < n; i++ {
		sig := &schema.Signature{
			Name:     fmt.Sprintf("s%d", i),
			Attrs:    []schema.Attribute{{Name: "X", Domain: schema.DomNumber}},
			Patterns: []schema.AccessPattern{schema.MustPattern("o")},
			Stats:    schema.Stats{ERSPI: 2},
		}
		q.Atoms = append(q.Atoms, &cq.Atom{
			Service: sig.Name,
			Terms:   []cq.Term{cq.V(fmt.Sprintf("X%d", i))},
			Index:   i,
			Sig:     sig,
		})
	}
	return q, asn
}

// TestTopologyCountsArePosetNumbers: with no binding constraints the
// number of plan topologies over n atoms equals the number of
// strict partial orders on n labeled elements: 1, 1, 3, 19, 219.
// The n=3 case is exactly the paper's Example 5.1: "there are 19
// alternative plans".
func TestTopologyCountsArePosetNumbers(t *testing.T) {
	want := []int{1, 1, 3, 19, 219}
	for n := 0; n <= 4; n++ {
		q, asn := freeQuery(n)
		for i := range q.Atoms {
			asn[i] = schema.MustPattern("o")
		}
		if got := CountTopologies(q, asn); got != want[n] {
			t.Errorf("topologies over %d atoms = %d, want %d", n, got, want[n])
		}
	}
}

// TestExample51NineteenPlans: the running example under α1 has conf
// forced first and the other three atoms free — 19 alternative
// plans.
func TestExample51NineteenPlans(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	topos := EnumerateTopologies(q, simweb.AssignmentAlpha1())
	if len(topos) != 19 {
		t.Fatalf("plans for α1 = %d, want 19 (Example 5.1)", len(topos))
	}
	// All distinct, all valid partial orders, conf before everything
	// that needs it... every topology must place conf first w.r.t.
	// every other atom or in parallel? No: conf is the only producer
	// of City/Start/End, so every other atom must follow conf.
	seen := map[string]bool{}
	for _, topo := range topos {
		if seen[topo.Key()] {
			t.Fatal("duplicate topology enumerated")
		}
		seen[topo.Key()] = true
		if !topo.IsPartialOrder() {
			t.Fatalf("topology %s is not a partial order", topo)
		}
		for _, other := range []int{simweb.AtomWeather, simweb.AtomFlight, simweb.AtomHotel} {
			if !topo.Less(simweb.AtomConf, other) {
				t.Fatalf("topology %s does not place conf before atom %d", topo, other)
			}
		}
	}
}

// TestSerialHeuristicOrder: "selective is better" sequences the
// running example as conf → weather → flight → hotel (the paper's
// plan S: increasing erspi).
func TestSerialHeuristicOrder(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	topo := SerialHeuristic(q, simweb.AssignmentAlpha1(), card.Config{Mode: card.OneCall})
	if topo == nil {
		t.Fatal("serial heuristic failed")
	}
	if !topo.Equal(simweb.PlanSTopology()) {
		t.Errorf("serial heuristic = %s, want plan S %s", topo, simweb.PlanSTopology())
	}
}

// TestParallelHeuristicOrder: "parallel is better" yields plan P.
func TestParallelHeuristicOrder(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	topo := ParallelHeuristic(q, simweb.AssignmentAlpha1())
	if topo == nil {
		t.Fatal("parallel heuristic failed")
	}
	if !topo.Equal(simweb.PlanPTopology()) {
		t.Errorf("parallel heuristic = %s, want plan P %s", topo, simweb.PlanPTopology())
	}
}

// TestOptimizerFindsPlanO: the full three-phase search under the
// execution-time metric with k=10 returns plan O — conf → weather →
// (flight ∥ hotel) with a merge-scan join — as the paper's Example
// 5.1 derives analytically and §6 confirms experimentally.
func TestOptimizerFindsPlanO(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	o := &Optimizer{
		Metric:       cost.ExecTime{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            10,
		ChooseMethod: w.Registry.MethodChooser(),
	}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("optimizer found no feasible plan")
	}
	if !res.Best.Topology.Equal(simweb.PlanOTopology()) {
		t.Errorf("best topology = %s, want plan O; plan:\n%s", res.Best.Topology, res.Best.ASCII())
	}
	if !res.Best.Assignment.Equal(simweb.AssignmentAlpha1()) {
		t.Errorf("best assignment = %s, want α1", res.Best.Assignment)
	}
	if res.Best.JoinNodes()[0].Method != plan.MergeScan {
		t.Error("plan O join must be merge-scan")
	}
	if res.Stats.PermissibleAssignments != 3 {
		t.Errorf("permissible assignments = %d, want 3", res.Stats.PermissibleAssignments)
	}
	if res.Stats.CandidateAssignments != 4 {
		t.Errorf("candidate assignments = %d, want 4", res.Stats.CandidateAssignments)
	}
}

// TestBranchAndBoundMatchesExhaustive: with pruning enabled the
// optimizer returns a plan of exactly the same cost as exhaustive
// enumeration, while visiting fewer or equal states — the
// correctness contract of §2.4.
func TestBranchAndBoundMatchesExhaustive(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []cost.Metric{cost.ExecTime{}, cost.RequestResponse{}, cost.SumCost{}} {
		pruned := &Optimizer{Metric: metric, Estimator: card.Config{Mode: card.OneCall}, K: 10,
			ChooseMethod: w.Registry.MethodChooser()}
		full := &Optimizer{Metric: metric, Estimator: card.Config{Mode: card.OneCall}, K: 10,
			ChooseMethod: w.Registry.MethodChooser(), Exhaustive: true}
		rp, err := pruned.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := full.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Cost != rf.Cost {
			t.Errorf("%s: pruned cost %g != exhaustive cost %g", metric.Name(), rp.Cost, rf.Cost)
		}
		if rp.Stats.Leaves > rf.Stats.Leaves {
			t.Errorf("%s: pruning evaluated more leaves (%d) than exhaustive (%d)",
				metric.Name(), rp.Stats.Leaves, rf.Stats.Leaves)
		}
	}
}

// TestPruningActuallyPrunes: on the running example the bound must
// cut part of the search space (Example 5.1 prunes the plans with
// the Figure 7b prefix).
func TestPruningActuallyPrunes(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall}, K: 10,
		ChooseMethod: w.Registry.MethodChooser()}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StatesPruned == 0 {
		t.Error("expected nonzero pruned states on the running example")
	}
}

// TestOptimizerKeepsAlternatives: with KeepAlternatives=-1 every
// evaluated plan is reported, enabling the plan-space analyses.
func TestOptimizerKeepsAlternatives(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall}, K: 10,
		ChooseMethod: w.Registry.MethodChooser(), Exhaustive: true, KeepAlternatives: -1}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// 19 topologies for α1 plus the two heuristic seeds re-evaluated,
	// plus the other assignments' plans; at minimum the 19 of α1 are
	// all present.
	if len(res.Alternatives)+1 < 19 {
		t.Errorf("alternatives = %d, want at least 18 besides the best", len(res.Alternatives))
	}
	for i := 1; i < len(res.Alternatives); i++ {
		a, b := res.Alternatives[i-1], res.Alternatives[i]
		if a.Feasible == b.Feasible && a.Cost > b.Cost {
			t.Fatal("alternatives not sorted by cost")
		}
	}
	if res.Alternatives[0].Cost < res.Cost {
		t.Error("an alternative beats the best plan")
	}
}

// TestOptimizerRejectsUnresolved: optimizing an unresolved query is
// an error, not a panic.
func TestOptimizerRejectsUnresolved(t *testing.T) {
	q := cq.MustParse(`q(X) :- a(X).`)
	o := &Optimizer{}
	if _, err := o.Optimize(q); err == nil {
		t.Error("unresolved query accepted")
	}
}

// TestOptimizerNoPermissiblePattern: a query whose variables can
// never be bound yields a diagnostic error.
func TestOptimizerNoPermissiblePattern(t *testing.T) {
	sig := &schema.Signature{
		Name:     "s",
		Attrs:    []schema.Attribute{{Name: "A", Domain: schema.DomNumber}},
		Patterns: []schema.AccessPattern{schema.MustPattern("i")},
		Stats:    schema.Stats{ERSPI: 1},
	}
	sch, _ := schema.NewSchema(sig)
	q := cq.MustParse(`q(X) :- s(X).`)
	if err := q.Resolve(sch); err != nil {
		t.Fatal(err)
	}
	o := &Optimizer{}
	if _, err := o.Optimize(q); err == nil {
		t.Error("expected 'no permissible sequence' error")
	}
}

// TestBoundIsBetterHeuristicHelps: phase 1 explores most cogent
// assignments first; for the running example the winner is α1, which
// is on the cogency frontier — so the very first assignment explored
// already yields the global optimum cost.
func TestBoundIsBetterHeuristicHelps(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := abind.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	abind.SortByCogency(perm)
	if !perm[0].Equal(simweb.AssignmentAlpha1()) {
		t.Errorf("first explored assignment = %s, want α1", perm[0])
	}
}

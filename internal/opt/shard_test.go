package opt_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	. "mdq/internal/opt"
	"mdq/internal/schema"
	"mdq/internal/simweb"
)

// threeAtomTravelText exercises several permissible assignments so
// shards are non-trivial while searches stay fast.
const threeAtomTravelText = `
q(Conf, City, Hotel, HPrice, FPrice) :-
    flight('Milano', City, Start, End, StartTime, EndTime, FPrice),
    hotel(Hotel, City, 'luxury', Start, End, HPrice),
    conf('DB', Conf, Start, End, City),
    FPrice + HPrice < 2000 {0.01}.`

// shardOptimizer builds a sequential optimizer over one shard.
func shardOptimizer(w *simweb.TravelWorld, idx, count int, b *Bound) *Optimizer {
	return &Optimizer{
		Metric:       cost.ExecTime{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            10,
		ChooseMethod: w.Registry.MethodChooser(),
		Shard:        Shard{Index: idx, Count: count},
		Bound:        b,
	}
}

// TestShardUnionMatchesFullSearch: merging per-shard winners under
// the (feasible, cost, signature) order reproduces the unsharded
// optimum exactly, for several shard counts — the invariant the
// distributed coordinator's merge rests on.
func TestShardUnionMatchesFullSearch(t *testing.T) {
	w, q := travelQuery(t, threeAtomTravelText)
	full := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: w.Registry.MethodChooser()}
	want, err := full.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{2, 3, 5} {
		bestCost := math.Inf(1)
		bestSig := ""
		feasible := false
		found := 0
		for idx := 0; idx < count; idx++ {
			res, err := shardOptimizer(w, idx, count, nil).Optimize(q)
			if errors.Is(err, ErrNoPlanInShard) {
				continue
			}
			if err != nil {
				t.Fatalf("shard %d/%d: %v", idx, count, err)
			}
			found++
			sig := res.Best.Signature()
			better := false
			switch {
			case res.Feasible != feasible:
				better = res.Feasible
			case res.Cost != bestCost:
				better = res.Cost < bestCost
			default:
				better = sig < bestSig
			}
			if better {
				bestCost, bestSig, feasible = res.Cost, sig, res.Feasible
			}
		}
		if found == 0 {
			t.Fatalf("count %d: every shard came back empty", count)
		}
		if bestCost != want.Cost || bestSig != want.Best.Signature() || feasible != want.Feasible {
			t.Fatalf("count %d: merged (%g, %s, %v), full search (%g, %s, %v)",
				count, bestCost, bestSig, feasible, want.Cost, want.Best.Signature(), want.Feasible)
		}
	}
}

// TestShardExternalBoundPreservesOptimum: seeding every shard with a
// foreign incumbent — even one tighter than anything the shard will
// find — never changes the merged optimum, only the effort spent.
func TestShardExternalBoundPreservesOptimum(t *testing.T) {
	w, q := travelQuery(t, threeAtomTravelText)
	full := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: w.Registry.MethodChooser()}
	want, err := full.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}

	const count = 2
	bestCost := math.Inf(1)
	bestSig := ""
	for idx := 0; idx < count; idx++ {
		b := NewBound()
		// The optimum's own cost is the tightest externally valid
		// bound (it is the cost of a feasible plan).
		b.Offer(want.Cost)
		res, err := shardOptimizer(w, idx, count, b).Optimize(q)
		if errors.Is(err, ErrNoPlanInShard) {
			continue
		}
		if err != nil {
			t.Fatalf("shard %d: %v", idx, err)
		}
		if sig := res.Best.Signature(); res.Cost < bestCost || (res.Cost == bestCost && sig < bestSig) {
			bestCost, bestSig = res.Cost, sig
		}
		if got := b.Load(); got > want.Cost {
			t.Fatalf("shard %d: bound rose to %g after seeding %g", idx, got, want.Cost)
		}
	}
	if bestCost != want.Cost || bestSig != want.Best.Signature() {
		t.Fatalf("bounded merge (%g, %s), want (%g, %s)", bestCost, bestSig, want.Cost, want.Best.Signature())
	}
}

// TestShardEmptyAndCacheBypass: more shards than permissible
// assignments yields ErrNoPlanInShard for the empty ones, and an
// external bound bypasses the exact-key cache (a bound-truncated
// result must never be memoized under a bound-blind key).
func TestShardEmptyAndCacheBypass(t *testing.T) {
	w, q := travelQuery(t, smallTravelText)
	probe := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: w.Registry.MethodChooser()}
	res, err := probe.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	perm := res.Stats.PermissibleAssignments
	count := perm + 3
	empty := 0
	for idx := 0; idx < count; idx++ {
		_, err := shardOptimizer(w, idx, count, nil).Optimize(q)
		if errors.Is(err, ErrNoPlanInShard) {
			empty++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if empty != count-perm {
		t.Fatalf("%d empty shards for %d assignments over %d shards, want %d", empty, perm, count, count-perm)
	}

	c := NewPlanCache(8)
	o := shardOptimizer(w, 0, 2, NewBound())
	o.Cache = c
	if _, err := o.Optimize(q); err != nil {
		t.Fatal(err)
	}
	r2, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Fatal("bounded search served from the exact-key cache")
	}
	if st := c.Stats(); st.Searches != 2 {
		t.Fatalf("searches = %d, want 2 (cache bypassed)", st.Searches)
	}
}

// TestCacheSaveLoadRoundTrip: template entries survive
// serialization; without a fingerprint source they come back stale
// and the first hit revalidates, with a matching source they come
// back fresh.
func TestCacheSaveLoadRoundTrip(t *testing.T) {
	w := simweb.NewZipfWorld(8, 120, 1.1)
	tpl, err := cq.ParseTemplate(simweb.ZipfTemplateText)
	if err != nil {
		t.Fatal(err)
	}
	q, err := tpl.Bind(map[string]schema.Value{"tag": schema.S(simweb.ZipfTag(0))})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve(w.Schema); err != nil {
		t.Fatal(err)
	}
	c := NewPlanCache(8)
	o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 5, ChooseMethod: w.Registry.MethodChooser(), Cache: c, Epochs: w.Registry}
	if _, err := o.OptimizeTemplate(q); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	// Import without a source: stale, first hit revalidates.
	blind := NewPlanCache(8)
	n, err := blind.Load(bytes.NewReader([]byte(saved)), nil)
	if err != nil || n != 1 {
		t.Fatalf("blind load = (%d, %v), want (1, nil)", n, err)
	}
	o2 := *o
	o2.Cache = blind
	r2, err := o2.OptimizeTemplate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.TemplateHit || !r2.Revalidated {
		t.Fatalf("blind import served hit=%v revalidated=%v, want template hit with revalidation", r2.TemplateHit, r2.Revalidated)
	}

	// Import with the registry as source: fingerprints match, entry
	// is fresh, serve without revalidation.
	warm := NewPlanCache(8)
	if n, err := warm.Load(bytes.NewReader([]byte(saved)), w.Registry); err != nil || n != 1 {
		t.Fatalf("warm load = (%d, %v), want (1, nil)", n, err)
	}
	o3 := *o
	o3.Cache = warm
	r3, err := o3.OptimizeTemplate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.TemplateHit || r3.Revalidated {
		t.Fatalf("warm import served hit=%v revalidated=%v, want fresh template hit", r3.TemplateHit, r3.Revalidated)
	}
	if st := warm.Stats(); st.Searches != 0 {
		t.Fatalf("warm cache ran %d searches, want 0", st.Searches)
	}
}

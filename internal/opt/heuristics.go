package opt

import (
	"sort"

	"mdq/internal/abind"
	"mdq/internal/card"
	"mdq/internal/cq"
	"mdq/internal/plan"
)

// atomERSPI estimates the effective erspi of an atom for heuristic
// ordering: the profiled erspi with the selectivities of the
// predicates local to the atom folded in (§3.4). For chunked
// services the profiled erspi characterizes the underlying relation.
func atomERSPI(est card.Config, q *cq.Query, atom *cq.Atom) float64 {
	e := 1.0
	if atom.Sig != nil {
		e = atom.Sig.Statistics().ERSPI
	}
	vars := atom.Vars()
	for _, p := range q.Preds {
		if vars.ContainsAll(p.Vars()) {
			e *= est.PredSelectivity([]*cq.Predicate{p})
		}
	}
	return e
}

// SerialHeuristic builds the "selective is better" topology
// (§4.2.1): a single chain, greedily extended with the callable atom
// of smallest effective erspi. Sequencing selective services first
// minimizes the number of downstream invocations; in the absence of
// access limitations this is the optimal order for invocation-count
// metrics (as proved in [16]).
func SerialHeuristic(q *cq.Query, asn abind.Assignment, est card.Config) *plan.Topology {
	n := len(q.Atoms)
	erspi := make([]float64, n)
	for i, a := range q.Atoms {
		erspi[i] = atomERSPI(est, q, a)
	}
	placed := map[int]bool{}
	var order []int
	for len(order) < n {
		callable := abind.CallableAfter(q, asn, placed)
		if len(callable) == 0 {
			return nil // not permissible
		}
		sort.Slice(callable, func(a, b int) bool {
			if erspi[callable[a]] != erspi[callable[b]] {
				return erspi[callable[a]] < erspi[callable[b]]
			}
			return callable[a] < callable[b]
		})
		next := callable[0]
		placed[next] = true
		order = append(order, next)
	}
	return plan.Chain(order)
}

// ParallelHeuristic builds the "parallel is better" topology
// (§4.2.1): layer after layer, every atom that is callable after the
// placed ones is placed immediately, maximizing parallelism. This
// favors time-oriented metrics.
func ParallelHeuristic(q *cq.Query, asn abind.Assignment) *plan.Topology {
	n := len(q.Atoms)
	placed := map[int]bool{}
	var layers [][]int
	for count := 0; count < n; {
		callable := abind.CallableAfter(q, asn, placed)
		if len(callable) == 0 {
			return nil // not permissible
		}
		layers = append(layers, callable)
		for _, i := range callable {
			placed[i] = true
		}
		count += len(callable)
	}
	// plan.Layers needs atoms listed per layer, indexes preserved.
	return layersTopology(n, layers)
}

func layersTopology(n int, layers [][]int) *plan.Topology {
	t := plan.NewTopology(n)
	for a := 0; a < len(layers); a++ {
		for b := a + 1; b < len(layers); b++ {
			for _, i := range layers[a] {
				for _, j := range layers[b] {
					t.SetLess(i, j)
				}
			}
		}
	}
	return t
}

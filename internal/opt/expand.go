package opt

import (
	"fmt"

	"mdq/internal/abind"
	"mdq/internal/cq"
	"mdq/internal/schema"
)

// Expand implements the query expansion sketched in §7 of the paper:
// when a query admits no permissible choice of access patterns —
// some variable only ever occurs in input fields — it may still be
// possible to obtain a subset of the answers by invoking "off-query"
// services from the schema whose output fields provide bindings of
// the same abstract domain. The paper's example: if every service
// requires City as input but the schema offers oldTown(City) with
// City in output, adding the off-query atom oldTown(C) makes the
// query executable and yields an approximation of the original
// answer set.
//
// Expand returns the original query unchanged when it is already
// permissible. Otherwise it searches for up to maxExtra off-query
// atoms (services not mentioned in the query, joined on a stuck
// variable through a domain-compatible output field) whose addition
// makes the query permissible. The returned count says how many
// atoms were added; the expanded query computes a subset of the
// original query's answers (each added conjunct only restricts the
// bindings).
func Expand(q *cq.Query, sch *schema.Schema, maxExtra int) (*cq.Query, int, error) {
	if ok, err := isPermissible(q); err != nil {
		return nil, 0, err
	} else if ok {
		return q, 0, nil
	}
	if maxExtra <= 0 {
		maxExtra = 2
	}
	used := map[string]bool{}
	for _, a := range q.Atoms {
		used[a.Service] = true
	}

	type candidate struct {
		svc    *schema.Signature
		patIdx int
		outPos int
		x      cq.Var
	}
	candidates := func(cur *cq.Query) []candidate {
		var out []candidate
		for _, x := range stuckInputVars(cur).Sorted() {
			doms := varDomains(cur, x)
			for _, svc := range sch.Services() {
				if used[svc.Name] {
					continue
				}
				for pi, pat := range svc.Patterns {
					for _, pos := range pat.Outputs() {
						for _, d := range doms {
							if svc.Attrs[pos].Domain.Compatible(d) {
								out = append(out, candidate{svc: svc, patIdx: pi, outPos: pos, x: x})
							}
						}
					}
				}
			}
		}
		return out
	}

	// Depth-first search over expansions, smallest first.
	var search func(cur *cq.Query, added int) (*cq.Query, int)
	search = func(cur *cq.Query, added int) (*cq.Query, int) {
		if added > 0 {
			if ok, _ := isPermissible(cur); ok {
				return cur, added
			}
		}
		if added >= maxExtra {
			return nil, 0
		}
		seen := map[string]bool{}
		for _, c := range candidates(cur) {
			key := fmt.Sprintf("%s/%d/%d/%s", c.svc.Name, c.patIdx, c.outPos, c.x)
			if seen[key] {
				continue
			}
			seen[key] = true
			next := addAtom(cur, c.svc, c.outPos, c.x, added)
			if got, n := search(next, added+1); got != nil {
				return got, n
			}
		}
		return nil, 0
	}
	got, n := search(q, 0)
	if got == nil {
		return nil, 0, fmt.Errorf("opt: query %s is not executable and no off-query expansion with ≤ %d atoms makes it so",
			q.Name, maxExtra)
	}
	return got, n, nil
}

// isPermissible reports whether any pattern assignment makes the
// query executable.
func isPermissible(q *cq.Query) (bool, error) {
	for _, a := range q.Atoms {
		if a.Sig == nil {
			return false, fmt.Errorf("opt: query %s not resolved", q.Name)
		}
	}
	perm, err := abind.Enumerate(q)
	if err != nil {
		return false, err
	}
	return len(perm) > 0, nil
}

// stuckInputVars returns variables that occur in some input position
// under every feasible pattern of their atoms and in no output
// position of any atom under any pattern — the variables that can
// never be seeded from inside the query.
func stuckInputVars(q *cq.Query) cq.VarSet {
	producible := cq.VarSet{}
	for _, a := range q.Atoms {
		for _, p := range a.Sig.Patterns {
			producible.AddAll(abind.OutputVars(a, p))
		}
	}
	stuck := cq.VarSet{}
	for _, a := range q.Atoms {
		for _, p := range a.Sig.Patterns {
			for v := range abind.InputVars(a, p) {
				if !producible.Has(v) {
					stuck.Add(v)
				}
			}
		}
	}
	return stuck
}

// varDomains collects the abstract domains at which x occurs.
func varDomains(q *cq.Query, x cq.Var) []schema.Domain {
	var out []schema.Domain
	for _, a := range q.Atoms {
		for i, t := range a.Terms {
			if t.IsVar() && t.Var == x {
				out = append(out, a.Sig.Attrs[i].Domain)
			}
		}
	}
	return out
}

// addAtom appends an off-query atom for svc with variable x at
// outPos and fresh variables elsewhere.
func addAtom(q *cq.Query, svc *schema.Signature, outPos int, x cq.Var, serial int) *cq.Query {
	nq := &cq.Query{Name: q.Name, Head: q.Head, Preds: q.Preds}
	for i, a := range q.Atoms {
		nq.Atoms = append(nq.Atoms, &cq.Atom{Service: a.Service, Terms: a.Terms, Index: i, Sig: a.Sig})
	}
	terms := make([]cq.Term, svc.Arity())
	for i := range terms {
		if i == outPos {
			terms[i] = cq.Term{Var: x}
		} else {
			terms[i] = cq.V(fmt.Sprintf("XQ%d_%d", serial, i))
		}
	}
	nq.Atoms = append(nq.Atoms, &cq.Atom{
		Service: svc.Name,
		Terms:   terms,
		Index:   len(nq.Atoms),
		Sig:     svc,
	})
	return nq
}

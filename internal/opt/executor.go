package opt

import "sync"

// executor is the bounded worker pool behind a parallel search: a
// fixed set of goroutines pulling closures from an unbounded LIFO
// queue. Tasks may submit further tasks (the phase-2 walk expands
// construction states into child states), so completion is "queue
// empty and nothing running", not "queue empty". LIFO order keeps
// the expansion depth-first per worker, bounding the frontier the
// queue has to hold.
type executor struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	active int
	closed bool
	wg     sync.WaitGroup
}

// newExecutor starts workers goroutines; call close when done.
func newExecutor(workers int) *executor {
	e := &executor{}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// submit enqueues a task. Safe to call from within a task. The wake
// is a broadcast: workers and a drainer share the one condition
// variable, and a lone Signal could wake only the drainer and leave
// the task unserved.
func (e *executor) submit(f func()) {
	e.mu.Lock()
	e.queue = append(e.queue, f)
	e.mu.Unlock()
	e.cond.Broadcast()
}

func (e *executor) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		f := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		e.active++
		e.mu.Unlock()
		f()
		e.mu.Lock()
		e.active--
		if e.active == 0 && len(e.queue) == 0 {
			e.cond.Broadcast()
		}
		e.mu.Unlock()
	}
}

// drain blocks until every submitted task (including transitively
// spawned ones) has finished. Must not be called from a worker.
func (e *executor) drain() {
	e.mu.Lock()
	for e.active > 0 || len(e.queue) > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// close shuts the pool down after the queue drains and waits for the
// workers to exit.
func (e *executor) close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cond.Broadcast()
	e.wg.Wait()
}

package opt_test

import (
	"strings"
	"testing"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	. "mdq/internal/opt"
	"mdq/internal/simweb"
)

// sameWorldQuery resolves another query text against an existing
// world, so statistics mutations are visible to every query of the
// test (travelQuery would build an independent world per call).
func sameWorldQuery(t *testing.T, w *simweb.TravelWorld, text string) *cq.Query {
	t.Helper()
	q, err := cq.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve(w.Schema); err != nil {
		t.Fatal(err)
	}
	return q
}

// stubEpochs is a map-backed EpochSource for tests.
type stubEpochs map[string]uint64

func (s stubEpochs) Epoch(name string) uint64 { return s[name] }

// TestOptimizeTemplateOneSearchManyBindings is the amortization
// contract: two queries differing only in a constant (two bindings
// of one template) run exactly one branch-and-bound search; the
// second is served by re-costing the cached skeleton.
func TestOptimizeTemplateOneSearchManyBindings(t *testing.T) {
	w, q1 := travelQuery(t, smallTravelText)
	_, q2 := travelQuery(t, strings.Replace(smallTravelText, "'DB'", "'AI'", 1))
	c := NewPlanCache(16)
	o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: w.Registry.MethodChooser(), Cache: c}

	r1, err := o.OptimizeTemplate(q1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.TemplateHit {
		t.Fatal("first binding did not search")
	}
	r2, err := o.OptimizeTemplate(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.TemplateHit || !r2.Cached {
		t.Fatalf("second binding was not a template hit: %+v", r2)
	}
	if r2.Revalidated {
		t.Error("fresh entry reported a revalidation")
	}
	if r2.Best.Signature() != r1.Best.Signature() {
		t.Fatalf("skeleton changed across bindings: %s vs %s",
			r2.Best.Signature(), r1.Best.Signature())
	}
	if r2.Cost != r1.Cost {
		t.Fatalf("re-costed binding diverged with unchanged statistics: %g vs %g", r2.Cost, r1.Cost)
	}
	// The rebuilt plan must carry the *new* query (new constants).
	if r2.Best.Query != q2 {
		t.Fatal("template hit returned a plan bound to the old query")
	}
	st := c.Stats()
	if st.Searches != 1 {
		t.Fatalf("searches = %d, want exactly 1 for two bindings", st.Searches)
	}
	if st.TemplateHits != 1 {
		t.Fatalf("template hits = %d, want 1", st.TemplateHits)
	}
	// A third binding repeats the original constants: the *exact*
	// entry may serve it; either way no new search.
	_, q3 := travelQuery(t, smallTravelText)
	if _, err := o.OptimizeTemplate(q3); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Searches; got != 1 {
		t.Fatalf("searches after third binding = %d, want 1", got)
	}
}

// TestOptimizeTemplateRevalidatesOnEpochBump: a statistics refresh
// marks the template entry stale; the next binding revalidates it
// against the fresh statistics (new cost, no new search when the
// drift is mild).
func TestOptimizeTemplateRevalidatesOnEpochBump(t *testing.T) {
	w, q1 := travelQuery(t, smallTravelText)
	q2 := sameWorldQuery(t, w, strings.Replace(smallTravelText, "'DB'", "'AI'", 1))
	epochs := stubEpochs{}
	c := NewPlanCache(16)
	o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: w.Registry.MethodChooser(), Cache: c, Epochs: epochs}

	r1, err := o.OptimizeTemplate(q1)
	if err != nil {
		t.Fatal(err)
	}

	// Mild in-place refresh of conf's statistics (as an Observed
	// would do), then the epoch bump reaches the cache.
	sig := q1.Atoms[0].Sig
	sig.Stats.ERSPI *= 1.25
	epochs["conf"] = 1
	c.InvalidateService("conf", 1)

	r2, err := o.OptimizeTemplate(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.TemplateHit {
		t.Fatalf("mild drift was not served by revalidation: %+v", c.Stats())
	}
	if !r2.Revalidated {
		t.Fatal("stale entry served without revalidation flag")
	}
	if r2.Cost == r1.Cost {
		t.Fatal("revalidated plan still priced with stale statistics")
	}
	st := c.Stats()
	if st.Searches != 1 || st.Revalidations != 1 {
		t.Fatalf("stats = %+v, want 1 search and 1 revalidation", st)
	}
}

// TestOptimizeTemplateDivergenceForcesSearch: statistics that drift
// beyond the revalidation ratio evict the skeleton and re-run the
// full search — a stale plan is never served.
func TestOptimizeTemplateDivergenceForcesSearch(t *testing.T) {
	w, q1 := travelQuery(t, smallTravelText)
	q2 := sameWorldQuery(t, w, strings.Replace(smallTravelText, "'DB'", "'AI'", 1))
	epochs := stubEpochs{}
	c := NewPlanCache(16)
	o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: w.Registry.MethodChooser(), Cache: c, Epochs: epochs,
		RevalidateRatio: 2}

	if _, err := o.OptimizeTemplate(q1); err != nil {
		t.Fatal(err)
	}
	// Massive drift: conf now proliferates 50×, the cached skeleton's
	// cost estimate is far off.
	q1.Atoms[0].Sig.Stats.ERSPI *= 50
	epochs["conf"] = 1
	c.InvalidateService("conf", 1)

	r2, err := o.OptimizeTemplate(q2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.TemplateHit {
		t.Fatal("diverged entry was served instead of re-searched")
	}
	st := c.Stats()
	if st.Searches != 2 {
		t.Fatalf("searches = %d, want 2 (divergence re-searches)", st.Searches)
	}
	if st.Divergences != 1 {
		t.Fatalf("divergences = %d, want 1", st.Divergences)
	}
	// The re-search refreshed the entry: the next binding hits again.
	q3 := sameWorldQuery(t, w, strings.Replace(smallTravelText, "'DB'", "'SE'", 1))
	r3, err := o.OptimizeTemplate(q3)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.TemplateHit {
		t.Fatalf("refreshed entry missed: %+v", c.Stats())
	}
	if got := c.Stats().Searches; got != 2 {
		t.Fatalf("searches after refresh = %d, want 2", got)
	}
}

// TestOptimizeTemplateExactEntryEvictedOnEpochBump: exact-key
// entries touching a refreshed service are dropped eagerly (their
// key embeds the stale statistics and would only rot in the LRU).
func TestOptimizeTemplateExactEntryEvictedOnEpochBump(t *testing.T) {
	w, q := travelQuery(t, smallTravelText)
	epochs := stubEpochs{}
	c := NewPlanCache(16)
	o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: w.Registry.MethodChooser(), Cache: c, Epochs: epochs}
	if _, err := o.Optimize(q); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
	epochs["hotel"] = 1
	c.InvalidateService("hotel", 1)
	if c.Len() != 0 {
		t.Fatalf("stale exact entry survived the epoch bump (%d entries)", c.Len())
	}
	if got := c.Stats().EvictedEpoch; got != 1 {
		t.Fatalf("epoch evictions = %d, want 1", got)
	}
}

// TestOptimizeTemplateWithoutCache degrades to a plain optimization.
func TestOptimizeTemplateWithoutCache(t *testing.T) {
	w, q := travelQuery(t, smallTravelText)
	o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, ChooseMethod: w.Registry.MethodChooser()}
	res, err := o.OptimizeTemplate(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || res.TemplateHit {
		t.Fatal("cacheless optimization reported a cache hit")
	}
	if res.Best == nil {
		t.Fatal("no plan")
	}
}

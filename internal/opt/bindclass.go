package opt

import (
	"math"
	"strconv"
	"strings"

	"mdq/internal/cq"
	"mdq/internal/schema"
)

// bindingClass buckets a bound query by where its constants sit in
// the profiled value distributions: each constant contributes one
// token — MCV membership ("m") or histogram-bucket interpolation
// ("b") plus the log-RevalidateRatio band of the selectivity it
// prices to. Two bindings in one class therefore re-cost within the
// revalidation ratio of each other by construction, so a class's
// baseline never thrashes; bindings from different cost regimes (the
// head and tail of a Zipf law) land in different classes and keep
// separate baselines (see classSlot).
//
// Constants without a usable distribution all map to "u" — one
// shared class, which degenerates to the pre-class single-baseline
// behavior; under the uniform model (NoValueStats) the class is
// empty, because every binding re-costs identically there.
func (o *Optimizer) bindingClass(q *cq.Query) string {
	if o.Estimator.NoValueStats {
		return ""
	}
	ratio := o.revalidateRatio()
	var b strings.Builder
	for _, a := range q.Atoms {
		if a.Sig == nil {
			continue
		}
		st := a.Sig.Statistics()
		for i, t := range a.Terms {
			if t.IsVar() {
				continue
			}
			b.WriteString(classToken(st.Distribution(i), cq.Eq, t.Const, ratio))
			b.WriteByte(';')
		}
	}
	for _, p := range q.Preds {
		op, x, v, ok := constantComparison(p)
		if !ok {
			continue
		}
		b.WriteString(classToken(bestDistribution(q, x), op, v, ratio))
		b.WriteByte(';')
	}
	return b.String()
}

// constantComparison extracts the var-op-constant shape of a
// predicate, reversing the operator when the constant is on the left.
// Arithmetic forms and var-var joins report ok=false: their
// selectivity does not vary with a single binding constant in a way
// the class needs to track.
func constantComparison(p *cq.Predicate) (op cq.CmpOp, x cq.Var, v schema.Value, ok bool) {
	if p.L == nil || p.R == nil || p.L.Kind != cq.ETerm || p.R.Kind != cq.ETerm {
		return 0, "", schema.Null, false
	}
	l, r := p.L.Term, p.R.Term
	switch {
	case l.IsVar() && !r.IsVar():
		return p.Op, l.Var, r.Const, true
	case !l.IsVar() && r.IsVar():
		return reverseOp(p.Op), r.Var, l.Const, true
	}
	return 0, "", schema.Null, false
}

// reverseOp mirrors a comparison so "const op var" reads as "var op'
// const".
func reverseOp(op cq.CmpOp) cq.CmpOp {
	switch op {
	case cq.Lt:
		return cq.Gt
	case cq.Le:
		return cq.Ge
	case cq.Gt:
		return cq.Lt
	case cq.Ge:
		return cq.Le
	default:
		return op // Eq and Ne are symmetric
	}
}

// bestDistribution finds the most informative value distribution for
// a variable: among every attribute position where it occurs, the
// non-empty distribution built from the most rows (the same choice
// the cardinality estimator makes when pricing the predicate).
func bestDistribution(q *cq.Query, x cq.Var) *schema.Distribution {
	var best *schema.Distribution
	for _, a := range q.Atoms {
		if a.Sig == nil {
			continue
		}
		st := a.Sig.Statistics()
		for i, t := range a.Terms {
			if !t.IsVar() || t.Var != x {
				continue
			}
			if d := st.Distribution(i); !d.Empty() {
				if best == nil || d.Total > best.Total {
					best = d
				}
			}
		}
	}
	return best
}

// classToken renders one constant's class contribution: "u" when no
// distribution can price it, otherwise an "m" (MCV member) or "b"
// (bucket-interpolated) prefix plus the floor of log_ratio of the
// selectivity the operator prices to. Banding by the revalidation
// ratio bounds the within-class cost spread to the same ratio the
// baseline comparison tolerates.
func classToken(d *schema.Distribution, op cq.CmpOp, v schema.Value, ratio float64) string {
	if d.Empty() {
		return "u"
	}
	var sel float64
	switch op {
	case cq.Eq:
		sel, _ = d.EqSelectivity(v)
	case cq.Ne:
		eq, _ := d.EqSelectivity(v)
		sel = 1 - eq
	case cq.Le, cq.Lt:
		sel, _ = d.LeSelectivity(v)
	case cq.Ge, cq.Gt:
		le, _ := d.LeSelectivity(v)
		sel = 1 - le
	default:
		return "u"
	}
	prefix := "b"
	if op == cq.Eq && isMCV(d, v) {
		prefix = "m"
	}
	if sel <= 0 {
		return prefix + "z" // floored by MinSelectivity in practice
	}
	if sel > 1 {
		sel = 1
	}
	band := int(math.Floor(math.Log(sel) / math.Log(ratio)))
	return prefix + strconv.Itoa(band)
}

// isMCV reports whether v is one of the distribution's most common
// values.
func isMCV(d *schema.Distribution, v schema.Value) bool {
	for _, m := range d.MCVs {
		if m.Value.Equal(v) {
			return true
		}
	}
	return false
}

package opt_test

import (
	"testing"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	. "mdq/internal/opt"
	"mdq/internal/schema"
	"mdq/internal/simweb"
)

// zipfTemplateFixture wires an optimizer with a template cache over
// the Zipf world and returns a bind-and-optimize closure: the
// hot/cold binding workload that used to thrash the single-scalar
// template baseline.
func zipfTemplateFixture(t *testing.T, cfg card.Config) (*simweb.ZipfWorld, *PlanCache, func(tag string) *Result) {
	t.Helper()
	w := simweb.NewZipfWorld(0, 0, 0)
	tpl, err := cq.ParseTemplate(simweb.ZipfTemplateText)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPlanCache(64)
	o := &Optimizer{
		Metric:       cost.ExecTime{},
		Estimator:    cfg,
		K:            10,
		ChooseMethod: w.Registry.MethodChooser(),
		Parallelism:  1,
		Epochs:       w.Registry,
		Cache:        pc,
		CacheSalt:    w.Registry.CacheSalt(),
	}
	return w, pc, func(tag string) *Result {
		q, err := tpl.Bind(map[string]schema.Value{"tag": schema.S(tag)})
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Resolve(w.Schema); err != nil {
			t.Fatal(err)
		}
		res, err := o.OptimizeTemplate(q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
}

// TestBindingClassesStopHotColdThrash pins the per-binding-class
// behavior on the canonical Zipf workload: the head tag (~29% of the
// catalog), its neighbor, and a tail tag ~50× rarer. Under a single
// shared baseline every hot/cold flip re-seeded the scalar and
// triggered a fresh search; with per-class baselines the whole
// workload — including repeated alternation — costs one search per
// diverged class.
func TestBindingClassesStopHotColdThrash(t *testing.T) {
	_, pc, bind := zipfTemplateFixture(t, card.Config{Mode: card.OneCall})

	hot := bind(simweb.ZipfTag(0)) // miss: full search seeds the hot class
	if hot.TemplateHit || hot.BindingClass == "" {
		t.Fatalf("first binding: hit=%v class=%q, want a classed miss", hot.TemplateHit, hot.BindingClass)
	}
	warm := bind(simweb.ZipfTag(1)) // near-hot: borrows within the ratio
	if !warm.TemplateHit {
		t.Fatal("neighbor tag did not serve from the template cache")
	}
	cold := bind(simweb.ZipfTag(49)) // tail: borrowed re-cost diverges, one search
	if cold.BindingClass == hot.BindingClass {
		t.Fatalf("head and tail tags share class %q", cold.BindingClass)
	}

	// The thrash workload: alternate hot and cold bindings. Every
	// serve must now come from its class's own baseline.
	for i := 0; i < 3; i++ {
		for _, tag := range []string{simweb.ZipfTag(0), simweb.ZipfTag(49)} {
			if res := bind(tag); !res.TemplateHit {
				t.Fatalf("alternation round %d: tag %s fell back to a full search", i, tag)
			}
		}
	}

	cs := pc.Stats()
	if cs.Searches != 2 {
		t.Fatalf("searches = %d, want 2 (hot seed + tail divergence) — stats %+v", cs.Searches, cs)
	}
	if cs.Classes != 3 {
		t.Fatalf("binding classes = %d, want 3 (hot, neighbor, tail)", cs.Classes)
	}
	if cs.BorrowedServes == 0 {
		t.Fatalf("no borrowed serves — new classes should seed from a neighbor's skeleton: %+v", cs)
	}
	if cs.Divergences != 1 {
		t.Fatalf("divergences = %d, want 1 (the tail's borrowed re-cost) — %+v", cs.Divergences, cs)
	}
	// Same binding → same class, stable across the run.
	if again := bind(simweb.ZipfTag(0)); again.BindingClass != hot.BindingClass {
		t.Fatalf("hot class drifted: %q then %q", hot.BindingClass, again.BindingClass)
	}
}

// TestBindingClassEmptyUnderUniformModel: without value statistics
// every binding re-costs identically, so classing is disabled and
// results carry no class.
func TestBindingClassEmptyUnderUniformModel(t *testing.T) {
	_, pc, bind := zipfTemplateFixture(t, card.Config{Mode: card.OneCall, NoValueStats: true})
	for _, tag := range []string{simweb.ZipfTag(0), simweb.ZipfTag(49), simweb.ZipfTag(0)} {
		if res := bind(tag); res.BindingClass != "" {
			t.Fatalf("uniform model produced binding class %q", res.BindingClass)
		}
	}
	cs := pc.Stats()
	if cs.Searches != 1 || cs.Classes != 1 {
		t.Fatalf("uniform model: %d searches, %d classes, want one shared slot (%+v)", cs.Searches, cs.Classes, cs)
	}
}

// TestBindingClassPersistRoundTrip: per-class baselines survive
// Save/Load — each class exports its own wire entry, and an importing
// cache with matching statistics serves both hot and tail bindings
// without a single fresh search.
func TestBindingClassPersistRoundTrip(t *testing.T) {
	w, pc, bind := zipfTemplateFixture(t, card.Config{Mode: card.OneCall})
	bind(simweb.ZipfTag(0))
	bind(simweb.ZipfTag(49))

	entries := pc.ExportTemplates()
	classes := map[string]bool{}
	for _, e := range entries {
		classes[e.Class] = true
	}
	if len(entries) < 2 || len(classes) < 2 {
		t.Fatalf("export carried %d entries over %d classes, want one per class", len(entries), len(classes))
	}

	fresh := NewPlanCache(64)
	if n := fresh.ImportTemplates(entries, w.Registry); n != len(entries) {
		t.Fatalf("imported %d of %d entries", n, len(entries))
	}
	o := &Optimizer{
		Metric:       cost.ExecTime{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            10,
		ChooseMethod: w.Registry.MethodChooser(),
		Parallelism:  1,
		Epochs:       w.Registry,
		Cache:        fresh,
		CacheSalt:    w.Registry.CacheSalt(),
	}
	tpl, err := cq.ParseTemplate(simweb.ZipfTemplateText)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{simweb.ZipfTag(0), simweb.ZipfTag(49)} {
		q, err := tpl.Bind(map[string]schema.Value{"tag": schema.S(tag)})
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Resolve(w.Schema); err != nil {
			t.Fatal(err)
		}
		res, err := o.OptimizeTemplate(q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.TemplateHit {
			t.Fatalf("tag %s missed after import", tag)
		}
	}
	if cs := fresh.Stats(); cs.Searches != 0 {
		t.Fatalf("imported cache still ran %d searches (%+v)", cs.Searches, cs)
	}
}

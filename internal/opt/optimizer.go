package opt

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mdq/internal/abind"
	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/fetch"
	"mdq/internal/plan"
	"mdq/internal/serve"
	"mdq/internal/trace"
)

// AutoParallelism makes the optimizer use one search worker per
// available CPU (runtime.GOMAXPROCS).
const AutoParallelism = -1

// Optimizer configures the three-phase branch-and-bound search.
type Optimizer struct {
	// Metric is minimized; nil means cost.ExecTime (the paper's
	// examples use the execution time and request–response metrics,
	// §2.3). Implementations must be safe for concurrent use from
	// multiple goroutines when Parallelism enables them (the built-in
	// metrics are stateless and safe).
	Metric cost.Metric
	// Estimator sets the caching model and default selectivities
	// used to annotate candidate plans. A custom DefaultSelectivity
	// function must be pure: workers call it concurrently.
	Estimator card.Config
	// K is the number of answers to optimize for; 0 disables the
	// feasibility requirement (all fetch factors stay at 1).
	K int
	// FetchHeuristic seeds phase 3 (greedy by default).
	FetchHeuristic fetch.Heuristic
	// ChooseMethod picks parallel join methods (registration-time
	// knowledge, §3.3); nil means plan.DefaultMethodChooser. Must be
	// safe for concurrent use (the registry's chooser is).
	ChooseMethod plan.MethodChooser
	// Exhaustive disables pruning, forcing full enumeration; used to
	// validate that branch and bound preserves optimality.
	Exhaustive bool
	// MaxStates caps the number of construction states visited per
	// assignment (safety valve; 0 means 1 << 20).
	MaxStates int
	// KeepAlternatives retains the N best complete plans beyond the
	// optimum (-1 keeps every evaluated plan, for plan-space
	// reports). When set, pruning uses only bounds discovered within
	// each assignment's own search, never the cross-assignment
	// incumbent: the set of plans evaluated — and hence the reported
	// alternatives — is then independent of the phase-1 exploration
	// order, so parallel and sequential searches return identical
	// orderings.
	KeepAlternatives int
	// Parallelism is the number of worker goroutines searching
	// concurrently, sharing one incumbent bound so an improvement
	// found by any worker immediately tightens pruning in all
	// others. The pool works at two granularities: each permissible
	// assignment is a job, and — unless KeepAlternatives pins the
	// walk to its deterministic sequential order — every phase-2
	// construction state is one too, so a single assignment with a
	// huge topology space still spreads across all workers. 0 or 1
	// searches sequentially; AutoParallelism (-1) uses one worker
	// per CPU. The best plan, its cost, and (with KeepAlternatives)
	// the alternatives ordering are deterministic and identical
	// across all parallelism levels; only the StatesVisited/
	// StatesPruned effort counters may vary with worker timing. The
	// one exception is a search truncated by the MaxStates safety
	// valve: which states consume the budget then depends on worker
	// timing, so a truncated parallel search may return a different
	// (still valid) plan than the sequential one.
	Parallelism int
	// Cache, when non-nil, memoizes whole optimization results keyed
	// by the canonical query signature (atoms, constants, patterns,
	// profiled statistics) plus every optimizer knob above. A hit
	// returns a private copy of the cached result with Cached set,
	// skipping the search entirely.
	Cache *PlanCache
	// CacheSalt is mixed into the cache key for state the optimizer
	// cannot fingerprint itself — e.g. the registry version behind
	// ChooseMethod, or the identity of a custom DefaultSelectivity.
	CacheSalt string
	// Epochs, when non-nil, supplies the per-service statistics
	// epochs (service.Registry implements it) that cached entries
	// snapshot, enabling epoch-based invalidation and revalidation.
	Epochs EpochSource
	// RevalidateRatio bounds the cost divergence tolerated when a
	// template cache hit is re-costed for new bindings or refreshed
	// statistics: beyond it the cached skeleton is discarded and a
	// full search runs. Values ≤ 1 mean DefaultRevalidateRatio.
	RevalidateRatio float64
	// Shard restricts phase 1 to one slice of the assignment space
	// (see Shard); the zero value searches the whole space. Distributed
	// optimization gives each remote worker one shard and merges the
	// per-shard winners with the usual plan-signature tie-breaks.
	Shard Shard
	// Bound, when non-nil, is an externally owned incumbent bound
	// shared beyond this search — typically across the workers of a
	// distributed optimization, where a sync loop min-merges the
	// workers' bounds so one worker's feasible plan prunes the others'
	// walks. It may arrive pre-seeded. When nil, each Optimize call
	// creates a private bound. An external bound never changes the
	// plan returned for the searched (sub)space, but the exact-key
	// result cache is bypassed while one is set: how much of a shard's
	// space survives pruning depends on externally delivered bounds,
	// so memoizing those results under a key that cannot express the
	// bound would poison later lookups.
	Bound *Bound
	// Budget, when non-nil, is the serving layer's per-query execution
	// budget (serve.Budget): the search walk checks it at every
	// construction state, so an expired deadline aborts optimization
	// mid-search with a budget-exceeded error instead of returning a
	// truncated result. Call budgets do not apply here — optimization
	// issues no service calls — but the same Budget travels on to
	// execution, which charges them. mdqserve sets this from the
	// request context (serve.FromContext).
	Budget *serve.Budget
	// Span, when non-nil, is the trace span the search records under:
	// each Optimize call opens child spans for phase 1 (access-pattern
	// enumeration), phase 2 (the topology walk), phase 3 (fetch
	// assignment, cumulative across search workers), the cache lookup
	// and the winning plan's pricing. Nil — the default — records
	// nothing and costs one pointer check per phase.
	Span *trace.Span
}

// budgetErr reports the optimizer's budget violation, nil without a
// budget. Sticky: once the deadline passes, every later check in any
// search goroutine sees the same violation (see serve.Budget).
func (o *Optimizer) budgetErr() error {
	if o.Budget == nil {
		return nil
	}
	return o.Budget.Err()
}

// Shard names one slice of the phase-1 assignment space: the
// assignments at positions ≡ Index (mod Count) of the cogency-sorted
// permissible sequence. Sharding by congruence class keeps every
// shard anchored near the heuristically best assignments ("bound is
// better" sorts them first), so each worker finds a decent incumbent
// early instead of one worker getting all the good prefixes. A Count
// ≤ 1 disables sharding; the union of all Count shards is exactly the
// full space, each assignment in exactly one shard.
type Shard struct {
	// Index is the 0-based shard picked by this search.
	Index int
	// Count is the total number of shards.
	Count int
}

// enabled reports whether the shard actually restricts the space.
func (s Shard) enabled() bool { return s.Count > 1 }

// ErrNoPlanInShard reports that a shard-restricted search found no
// executable plan in its slice of the assignment space — an expected
// outcome when there are more workers than permissible assignments
// (or when a shard's assignments all fail to build), not a failure of
// the query: the coordinator treats it as an empty contribution and
// merges the other shards.
var ErrNoPlanInShard = errors.New("opt: no executable plan in shard")

// Scored is a complete plan with its evaluated cost.
type Scored struct {
	Plan     *plan.Plan
	Cost     float64
	Feasible bool
}

// Stats reports search effort.
type Stats struct {
	// CandidateAssignments is the size of the full phase-1 space
	// (∏ m_i of feasible patterns per atom).
	CandidateAssignments int
	// PermissibleAssignments survive the callability check.
	PermissibleAssignments int
	// StatesVisited counts phase-2 construction states expanded.
	StatesVisited int
	// StatesPruned counts states cut by the lower bound.
	StatesPruned int
	// Leaves counts complete topologies evaluated (phase 3 runs on
	// each).
	Leaves int
	// FetchVectors counts fetch vectors evaluated in phase 3.
	FetchVectors int
}

// add merges another worker's counters into s.
func (s *Stats) add(t Stats) {
	s.StatesVisited += t.StatesVisited
	s.StatesPruned += t.StatesPruned
	s.Leaves += t.Leaves
	s.FetchVectors += t.FetchVectors
}

// Result is the outcome of an optimization.
type Result struct {
	Best     *plan.Plan
	Cost     float64
	Feasible bool
	Stats    Stats
	// Alternatives holds further evaluated plans, best first (see
	// Optimizer.KeepAlternatives).
	Alternatives []Scored
	// Cached reports that the result was served from the plan cache
	// without running the search; Stats then describe the original
	// search.
	Cached bool
	// TemplateHit reports that the result was served from a
	// template-level cache entry: the plan skeleton came from a
	// previous search on different bindings and only the cost phase
	// re-ran (see Optimizer.OptimizeTemplate).
	TemplateHit bool
	// Revalidated reports that the serving template entry had a
	// stale statistics-epoch vector and was revalidated against the
	// fresh statistics before being served.
	Revalidated bool
	// BindingClass is the query's binding class under the template
	// cache's per-class baselines (set by OptimizeTemplate): a bucket
	// over where the bound constants sit in the profiled value
	// distributions. Empty under the uniform model or plain Optimize.
	BindingClass string
}

func (o *Optimizer) metric() cost.Metric {
	if o.Metric == nil {
		return cost.ExecTime{}
	}
	return o.Metric
}

func (o *Optimizer) maxStates() int {
	if o.MaxStates <= 0 {
		return 1 << 20
	}
	return o.MaxStates
}

// workerCount resolves the Parallelism knob.
func (o *Optimizer) workerCount() int {
	p := o.Parallelism
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Bound is the incumbent bound shared by all search workers: the
// cost of the cheapest feasible plan found so far, +Inf before the
// first. Lowering it in any goroutine immediately tightens pruning in
// all others. Costs are nonnegative, so the float64 bit patterns
// order like the values and a CAS loop suffices.
//
// A Bound is also the unit of wire-level bound sharing: distributed
// optimization hands every worker the same logical bound by seeding
// each worker's local Bound and periodically min-merging them
// (Offer is idempotent and monotone, so merges commute and late
// deliveries are harmless). Sharing a bound never changes which plan
// an exact search returns — pruning cuts only states whose lower
// bound strictly exceeds the cost of some feasible plan, and every
// optimal-cost plan survives that cut — it only changes how much of
// the space is visited on the way.
type Bound struct {
	bits atomic.Uint64
}

// NewBound returns a bound at +Inf.
func NewBound() *Bound {
	b := &Bound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Load returns the current bound.
func (b *Bound) Load() float64 { return math.Float64frombits(b.bits.Load()) }

// Offer lowers the bound to c if c improves it (monotone min-merge);
// offers that do not improve are ignored.
func (b *Bound) Offer(c float64) {
	for {
		cur := b.bits.Load()
		if math.Float64frombits(cur) <= c {
			return
		}
		if b.bits.CompareAndSwap(cur, math.Float64bits(c)) {
			return
		}
	}
}

// Optimize runs the full three-phase search on a resolved query and
// returns the cheapest executable plan. The search is exact up to
// the estimator: with Exhaustive set the same optimum is found by
// full enumeration, and the optimum is identical at every
// Parallelism level (both asserted by the test suite).
func (o *Optimizer) Optimize(q *cq.Query) (*Result, error) {
	for _, a := range q.Atoms {
		if a.Sig == nil {
			return nil, fmt.Errorf("opt: query %s is not resolved against a schema", q.Name)
		}
	}
	if err := o.budgetErr(); err != nil {
		return nil, err
	}
	// The exact-key cache is bypassed while an external bound is
	// shared (see the Bound field); searches still count.
	useExactCache := o.Cache != nil && o.Bound == nil
	var key string
	if useExactCache {
		csp := o.Span.Child("opt.cache.exact")
		key = o.cacheKey(q)
		if res, ok := o.Cache.Get(key); ok {
			res.Cached = true
			csp.Set("class", "exact")
			csp.End()
			return res, nil
		}
		csp.Set("class", "miss")
		csp.End()
	}

	p1 := o.Span.Child("opt.phase1.patterns")
	res := &Result{Cost: cost.Infinite}
	all, err := abind.EnumerateAll(q)
	if err != nil {
		return nil, err
	}
	res.Stats.CandidateAssignments = len(all)
	perm, err := abind.Enumerate(q)
	if err != nil {
		return nil, err
	}
	if len(perm) == 0 {
		return nil, fmt.Errorf("opt: query %s admits no permissible access-pattern sequence", q.Name)
	}
	// Candidate and permissible counts always describe the full
	// space, even under sharding: they characterize the query, and
	// a coordinator reads them off any one shard result.
	res.Stats.PermissibleAssignments = len(perm)
	// Phase 1 order: bound is better (§4.1.1) — most cogent first.
	abind.SortByCogency(perm)
	if o.Shard.enabled() {
		if o.Shard.Index < 0 || o.Shard.Index >= o.Shard.Count {
			return nil, fmt.Errorf("opt: shard index %d out of range for %d shards", o.Shard.Index, o.Shard.Count)
		}
		sharded := perm[:0:0]
		for i, asn := range perm {
			if i%o.Shard.Count == o.Shard.Index {
				sharded = append(sharded, asn)
			}
		}
		perm = sharded
		if len(perm) == 0 {
			return nil, fmt.Errorf("%w: query %s, shard %d/%d", ErrNoPlanInShard, q.Name, o.Shard.Index, o.Shard.Count)
		}
	}

	if p1 != nil {
		p1.Set("candidates", strconv.Itoa(res.Stats.CandidateAssignments))
		p1.Set("permissible", strconv.Itoa(res.Stats.PermissibleAssignments))
		p1.Set("searched", strconv.Itoa(len(perm)))
		p1.End()
	}

	if len(q.Atoms) > 63 {
		return nil, fmt.Errorf("opt: query %s has %d atoms; the topology walk supports at most 63", q.Name, len(q.Atoms))
	}
	// Count the search only once real work begins: an empty shard
	// returns before doing any, and must not inflate the Searches
	// counter distributed tests amortize against.
	if o.Cache != nil {
		o.Cache.noteSearch()
	}

	// Phases 2–3 per assignment are independent searches coupled only
	// through the shared incumbent; fan them out over the workers.
	// Each search accumulates into a private asnResult, merged in
	// assignment order afterwards, so the outcome does not depend on
	// goroutine arrival. With KeepAlternatives each assignment is one
	// sequential job (the deterministic-ordering contract); otherwise
	// the assignment walks themselves fan out state by state, so even
	// a single dominant assignment uses every worker.
	shared := o.Bound
	if shared == nil {
		shared = NewBound()
	}
	p2 := o.Span.Child("opt.phase2.topologies")
	results := make([]*asnResult, len(perm))
	if workers := o.workerCount(); workers <= 1 {
		for i, asn := range perm {
			results[i] = o.searchAssignment(q, asn, shared)
		}
	} else {
		ex := newExecutor(workers)
		for i, asn := range perm {
			i, asn := i, asn
			if o.KeepAlternatives != 0 {
				ex.submit(func() { results[i] = o.searchAssignment(q, asn, shared) })
			} else {
				results[i] = o.startParallelSearch(q, asn, shared, ex)
			}
		}
		ex.drain()
		ex.close()
	}
	p2.End()
	// A budget-truncated walk stopped expanding states the moment the
	// deadline passed; whatever incumbent it holds must not be served
	// as the optimum.
	if err := o.budgetErr(); err != nil {
		return nil, err
	}
	o.merge(res, results)
	if p2 != nil {
		p2.Set("states_visited", strconv.Itoa(res.Stats.StatesVisited))
		p2.Set("states_pruned", strconv.Itoa(res.Stats.StatesPruned))
		var fetchNanos int64
		for _, ar := range results {
			if ar != nil {
				fetchNanos += ar.fetchNanos
			}
		}
		// Phase 3 runs inside every leaf of the walk, so its span
		// reports CPU-cumulative time across search workers (it can
		// exceed the phase-2 wall clock) rather than a wall interval.
		p3 := o.Span.Child("opt.phase3.fetch")
		p3.AddDur(time.Duration(fetchNanos))
		p3.Set("cumulative", "true")
		p3.Set("leaves", strconv.Itoa(res.Stats.Leaves))
		p3.Set("fetch_vectors", strconv.Itoa(res.Stats.FetchVectors))
	}

	if res.Best == nil {
		if o.Shard.enabled() {
			return nil, fmt.Errorf("%w: query %s, shard %d/%d", ErrNoPlanInShard, q.Name, o.Shard.Index, o.Shard.Count)
		}
		return nil, fmt.Errorf("opt: no executable plan found for query %s", q.Name)
	}
	if sp := o.Span.Child("opt.plan"); sp != nil {
		// The winner's pricing summary: the per-node estimates live on
		// the plan annotations and reappear on the execution node spans.
		sp.Set("signature", res.Best.Signature())
		sp.Set("cost", strconv.FormatFloat(res.Cost, 'g', -1, 64))
		sp.Set("feasible", strconv.FormatBool(res.Feasible))
		sp.End()
	}
	if useExactCache {
		o.Cache.put(key, res, o.epochVector(q))
	}
	return res, nil
}

// asnResult accumulates one assignment's search: the local incumbent,
// the retained alternatives and the effort counters. The mutex makes
// it safe for the state-parallel walk, where many workers evaluate
// leaves of the same assignment; the sequential walk pays only an
// uncontended lock.
type asnResult struct {
	mu      sync.Mutex
	best    Scored
	bestSig string
	hasBest bool
	alts    []Scored
	stats   Stats
	// fetchNanos accumulates phase-3 assigner time, recorded only
	// under a traced search (Optimizer.Span) and reported on the
	// opt.phase3.fetch span.
	fetchNanos int64
}

// addStates records visited/pruned construction states.
func (ar *asnResult) addStates(visited, pruned int) {
	ar.mu.Lock()
	ar.stats.StatesVisited += visited
	ar.stats.StatesPruned += pruned
	ar.mu.Unlock()
}

// feasibleBound returns the cost of the local feasible incumbent, or
// +Inf before one exists.
func (ar *asnResult) feasibleBound() float64 {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	if ar.hasBest && ar.best.Feasible {
		return ar.best.Cost
	}
	return math.Inf(1)
}

// searchAssignment runs phases 2 and 3 for one access-pattern
// assignment. Pruning consults the local incumbent and — unless
// alternatives are being collected — the shared cross-assignment
// bound.
func (o *Optimizer) searchAssignment(q *cq.Query, asn abind.Assignment, shared *Bound) *asnResult {
	ar := &asnResult{}
	useShared := o.KeepAlternatives == 0

	// Heuristic seeds (§4.2.1) give the branch and bound a good
	// initial upper bound.
	if t := SerialHeuristic(q, asn, o.Estimator); t != nil {
		o.evalLeaf(q, asn, t, ar, shared, useShared)
	}
	if t := ParallelHeuristic(q, asn); t != nil {
		o.evalLeaf(q, asn, t, ar, shared, useShared)
	}

	visited := 0
	keep := func(s *topoState) bool {
		if o.budgetErr() != nil {
			return false
		}
		visited++
		ar.addStates(1, 0)
		if visited > o.maxStates() {
			return false
		}
		if o.shouldPrune(q, asn, s, ar, shared, useShared) {
			ar.addStates(0, 1)
			return false
		}
		return true
	}
	WalkTopologies(q, asn, keep, func(t *plan.Topology) {
		o.evalLeaf(q, asn, t, ar, shared, useShared)
	})
	return ar
}

// shouldPrune applies the branch-and-bound cut to a construction
// state: prune when the monotone lower bound of the partial plan
// already exceeds the best feasible incumbent visible to this search.
func (o *Optimizer) shouldPrune(q *cq.Query, asn abind.Assignment, s *topoState, ar *asnResult, shared *Bound, useShared bool) bool {
	if o.Exhaustive || s.placedCount() == 0 {
		return false
	}
	bound := ar.feasibleBound()
	if useShared {
		bound = math.Min(bound, shared.Load())
	}
	if math.IsInf(bound, 1) {
		return false
	}
	lb, ok := o.partialCost(q, asn, s)
	return ok && lb > bound
}

// walkCtx is the shared state of one assignment's state-parallel
// walk: the dedup set and visit budget live behind one mutex; leaf
// and bound bookkeeping go through the thread-safe asnResult.
type walkCtx struct {
	o      *Optimizer
	q      *cq.Query
	asn    abind.Assignment
	outs   []cq.VarSet
	full   uint64
	ar     *asnResult
	shared *Bound
	ex     *executor

	mu      sync.Mutex
	seen    map[string]bool
	visited int
}

// startParallelSearch launches phases 2–3 for one assignment on the
// executor and returns its accumulator immediately; the caller drains
// the executor before reading it. Used only without KeepAlternatives:
// state expansion order then depends on worker timing, which may
// shift the effort counters but — because pruning only ever discards
// strictly-worse completions — never the returned optimum.
func (o *Optimizer) startParallelSearch(q *cq.Query, asn abind.Assignment, shared *Bound, ex *executor) *asnResult {
	ar := &asnResult{}
	w := &walkCtx{
		o: o, q: q, asn: asn,
		outs:   outputsOf(q, asn),
		full:   uint64(1)<<len(q.Atoms) - 1,
		ar:     ar,
		shared: shared,
		ex:     ex,
		seen:   map[string]bool{},
	}
	ex.submit(func() {
		// Heuristic seeds first (§4.2.1): they publish the initial
		// upper bound the whole pool prunes against.
		if t := SerialHeuristic(q, asn, o.Estimator); t != nil {
			o.evalLeaf(q, asn, t, ar, shared, true)
		}
		if t := ParallelHeuristic(q, asn); t != nil {
			o.evalLeaf(q, asn, t, ar, shared, true)
		}
		w.expand(&topoState{placed: 0, topo: plan.NewTopology(len(q.Atoms))})
	})
	return ar
}

// expand processes construction states: dedup, budget, bound check,
// then either evaluate the complete topology or fan the successors
// out. The first successor continues inline (the worker walks one
// spine of the tree itself, keeping per-task overhead off the hot
// path); the siblings become fresh tasks for idle workers to steal.
func (w *walkCtx) expand(s *topoState) {
	for s != nil {
		if w.o.budgetErr() != nil {
			return
		}
		k := s.key()
		w.mu.Lock()
		if w.seen[k] {
			w.mu.Unlock()
			return
		}
		w.seen[k] = true
		w.visited++
		over := w.visited > w.o.maxStates()
		w.mu.Unlock()
		w.ar.addStates(1, 0)
		if over {
			return
		}
		if w.o.shouldPrune(w.q, w.asn, s, w.ar, w.shared, true) {
			w.ar.addStates(0, 1)
			return
		}
		if s.placed == w.full {
			w.o.evalLeaf(w.q, w.asn, s.topo.Clone(), w.ar, w.shared, true)
			return
		}
		var first *topoState
		cur := s
		extensions(w.q, w.asn, w.outs, cur, func(j int, ideal uint64) {
			child := apply(cur, j, ideal)
			if first == nil {
				first = child
			} else {
				w.ex.submit(func() { w.expand(child) })
			}
		})
		s = first
	}
}

// evalLeaf runs phase 3 on a complete topology and offers the scored
// plan to the assignment's local result.
func (o *Optimizer) evalLeaf(q *cq.Query, asn abind.Assignment, topo *plan.Topology, ar *asnResult, shared *Bound, useShared bool) {
	p, err := plan.Build(q, asn, topo, plan.Options{ChooseMethod: o.ChooseMethod})
	if err != nil {
		return
	}
	if err := p.Validate(); err != nil {
		return
	}
	assigner := &fetch.Assigner{
		Estimator: o.Estimator,
		Metric:    o.metric(),
		K:         o.K,
		Heuristic: o.FetchHeuristic,
	}
	var t0 time.Time
	if o.Span != nil {
		t0 = time.Now()
	}
	fr := assigner.Assign(p)
	if o.Span != nil {
		d := int64(time.Since(t0))
		ar.mu.Lock()
		ar.fetchNanos += d
		ar.mu.Unlock()
	}
	s := Scored{Plan: p, Cost: fr.Cost, Feasible: fr.Feasible || o.K <= 0}
	if useShared && s.Feasible {
		shared.Offer(s.Cost)
	}
	ar.offer(s, fr.Explored, o.KeepAlternatives)
}

// offer records one evaluated leaf: effort counters, the local
// incumbent, and the retained alternatives. Ties break on the
// canonical plan signature, which makes the chosen incumbent — and,
// through merge, the final result — a pure function of the set of
// evaluated plans rather than of evaluation order.
func (ar *asnResult) offer(s Scored, fetchVectors, keepAlt int) {
	sig := s.Plan.Signature()
	ar.mu.Lock()
	defer ar.mu.Unlock()
	ar.stats.Leaves++
	ar.stats.FetchVectors += fetchVectors
	better := false
	switch {
	case !ar.hasBest:
		better = true
	case s.Feasible != ar.best.Feasible:
		better = s.Feasible
	case s.Cost != ar.best.Cost:
		better = s.Cost < ar.best.Cost
	default:
		better = sig < ar.bestSig
	}
	if better {
		if ar.hasBest && keepAlt != 0 {
			ar.alts = append(ar.alts, ar.best)
		}
		ar.best, ar.bestSig, ar.hasBest = s, sig, true
	} else if keepAlt != 0 {
		ar.alts = append(ar.alts, s)
	}
	if keepAlt > 0 && len(ar.alts) > keepAlt {
		sortScored(ar.alts)
		ar.alts = ar.alts[:keepAlt]
	}
}

// merge folds the per-assignment results into the final one, in
// assignment order: effort counters are summed and the plans compete
// under the same deterministic order used locally.
func (o *Optimizer) merge(res *Result, results []*asnResult) {
	var candidates []Scored
	for _, ar := range results {
		if ar == nil {
			continue
		}
		res.Stats.add(ar.stats)
		if ar.hasBest {
			candidates = append(candidates, ar.best)
		}
		candidates = append(candidates, ar.alts...)
	}
	if len(candidates) == 0 {
		return
	}
	sortScored(candidates)
	res.Best, res.Cost, res.Feasible = candidates[0].Plan, candidates[0].Cost, candidates[0].Feasible
	if o.KeepAlternatives != 0 {
		res.Alternatives = candidates[1:]
		if o.KeepAlternatives > 0 && len(res.Alternatives) > o.KeepAlternatives {
			res.Alternatives = res.Alternatives[:o.KeepAlternatives]
		}
	}
}

// sortScored orders plans feasible-first, then by cost, then by
// canonical plan signature — a total order independent of insertion
// (and therefore goroutine) order.
func sortScored(s []Scored) {
	sigs := make([]string, len(s))
	for i := range s {
		sigs[i] = s[i].Plan.Signature()
	}
	sort.SliceStable(s, func(i, j int) bool {
		a, b := s[i], s[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return sigs[i] < sigs[j]
	})
}

// partialCost computes the monotone lower bound for a construction
// state: the cost of the partially constructed plan over the placed
// atoms, with every fetch factor at its minimum of 1. Completing the
// plan can only append work after the placed nodes (never between
// them), so their invocation estimates are final and the partial
// cost bounds every completion (§2.4).
func (o *Optimizer) partialCost(q *cq.Query, asn abind.Assignment, s *topoState) (float64, bool) {
	placed := s.placedList()
	sub, subAsn, subTopo := subProblem(q, asn, s.topo, placed)
	p, err := plan.Build(sub, subAsn, subTopo, plan.Options{ChooseMethod: o.ChooseMethod})
	if err != nil {
		return 0, false
	}
	o.Estimator.Annotate(p)
	return o.metric().Cost(p), true
}

// subProblem restricts a query, assignment and topology to a subset
// of atoms (re-indexed), keeping the predicates whose variables are
// all covered by the subset.
func subProblem(q *cq.Query, asn abind.Assignment, topo *plan.Topology, placed []int) (*cq.Query, abind.Assignment, *plan.Topology) {
	sub := &cq.Query{Name: q.Name + "†"}
	subAsn := make(abind.Assignment, len(placed))
	avail := cq.VarSet{}
	for newIdx, i := range placed {
		a := q.Atoms[i]
		sub.Atoms = append(sub.Atoms, &cq.Atom{
			Service: a.Service,
			Terms:   a.Terms,
			Index:   newIdx,
			Sig:     a.Sig,
		})
		subAsn[newIdx] = asn[i]
		avail.AddAll(a.Vars())
	}
	for _, p := range q.Preds {
		if avail.ContainsAll(p.Vars()) {
			sub.Preds = append(sub.Preds, p)
		}
	}
	st := plan.NewTopology(len(placed))
	for a, i := range placed {
		for b, j := range placed {
			if topo.Less(i, j) {
				st.SetLess(a, b)
			}
		}
	}
	return sub, subAsn, st
}
